// Batched lookup (paper §5.1): match_batch must be observationally identical
// to per-packet match() on every workload — prefetching and pipelining are
// allowed to change timing only, never results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <span>
#include <thread>

#include "classbench/generator.hpp"
#include "common/rng.hpp"
#include "cutsplit/cutsplit.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "nuevomatch/online.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

struct BatchCase {
  AppClass app;
  size_t n;
  bool tm;  // remainder engine
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const BatchCase& c) {
    return os << ruleset_name(c.app, 1) << "_n" << c.n << (c.tm ? "_tm" : "_cs") << "_s"
              << c.seed;
  }
};

class BatchEquivalence : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchEquivalence, BatchEqualsScalarMatch) {
  const auto& c = GetParam();
  const RuleSet rules = generate_classbench(c.app, 1, c.n, c.seed);
  NuevoMatchConfig cfg;
  if (c.tm) {
    cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
    cfg.min_iset_coverage = 0.05;
  } else {
    cfg.remainder_factory = [] { return std::make_unique<CutSplit>(); };
    cfg.min_iset_coverage = 0.25;
  }
  NuevoMatch nm(cfg);
  nm.build(rules);

  TraceConfig tc;
  tc.n_packets = 4096 + 7;  // deliberately not a tile multiple
  tc.seed = c.seed ^ 0xAB;
  const auto trace = generate_trace(rules, tc);
  std::vector<MatchResult> batched(trace.size());
  nm.match_batch(trace, batched);
  for (size_t i = 0; i < trace.size(); ++i) {
    const MatchResult want = nm.match(trace[i]);
    ASSERT_EQ(batched[i].rule_id, want.rule_id) << "packet " << i;
    ASSERT_EQ(batched[i].priority, want.priority) << "packet " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchEquivalence,
                         ::testing::Values(BatchCase{AppClass::kAcl, 3000, true, 1},
                                           BatchCase{AppClass::kAcl, 3000, false, 2},
                                           BatchCase{AppClass::kFw, 5000, true, 3},
                                           BatchCase{AppClass::kIpc, 5000, false, 4},
                                           BatchCase{AppClass::kAcl, 20000, true, 5}));

// The batch pipeline handles ragged tails at every layer (AVX2 groups of 8,
// SSE2 groups of 4, scalar tail, partial final tile): every trace length
// 1..17 plus a just-past-one-tile length must equal per-packet match().
TEST(Batch, RaggedTraceLengthsEqualScalarMatch) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 2000, 6);
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<CutSplit>(); };
  NuevoMatch nm(cfg);
  nm.build(rules);

  TraceConfig tc;
  tc.n_packets = 64 + 17;
  tc.seed = 77;
  const auto trace = generate_trace(rules, tc);
  for (size_t len = 1; len <= 17; ++len) {
    std::vector<MatchResult> out(len);
    nm.match_batch(std::span<const Packet>{trace.data(), len}, out);
    for (size_t i = 0; i < len; ++i) {
      const MatchResult want = nm.match(trace[i]);
      ASSERT_EQ(out[i].rule_id, want.rule_id) << "len " << len << " packet " << i;
    }
  }
  std::vector<MatchResult> out(trace.size());
  nm.match_batch(trace, out);
  for (size_t i = 0; i < trace.size(); ++i)
    ASSERT_EQ(out[i].rule_id, nm.match(trace[i]).rule_id) << "packet " << i;
}

// Staged batch API consistency: predict_batch/search_batch must agree with
// the scalar staged calls element-for-element (the batch pipeline's building
// blocks, exercised directly).
TEST(Batch, StagedBatchApiEqualsScalarStages) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 4000, 8);
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<CutSplit>(); };
  NuevoMatch nm(cfg);
  nm.build(rules);
  ASSERT_FALSE(nm.isets().empty());

  TraceConfig tc;
  tc.n_packets = 257;
  tc.seed = 21;
  const auto trace = generate_trace(rules, tc);
  for (const IsetIndex& is : nm.isets()) {
    std::vector<uint32_t> vals(trace.size());
    for (size_t i = 0; i < trace.size(); ++i) vals[i] = trace[i][is.field()];
    std::vector<rqrmi::Prediction> preds(vals.size());
    is.predict_batch(vals, preds);
    std::vector<int32_t> pos(vals.size());
    is.search_batch(vals, preds, pos);
    for (size_t i = 0; i < vals.size(); ++i) {
      const rqrmi::Prediction want = is.predict(vals[i], rqrmi::SimdLevel::kSerial);
      ASSERT_EQ(preds[i].index, want.index) << "packet " << i;
      ASSERT_EQ(preds[i].search_error, want.search_error) << "packet " << i;
      ASSERT_EQ(pos[i], is.search(vals[i], preds[i])) << "packet " << i;
    }
  }
}

// Batch==scalar equivalence through a generation swap: take an epoch-pinned
// view of the live generation + update layer, run Pin::match_batch and
// per-key Pin::match against the SAME pin, and demand identical results —
// while a writer thread pushes absorption over the retrain threshold so
// background swaps (and copy-on-write layer commits) land between pins.
// Per-batch generation pinning is exactly the property under test: the
// pinned view must be immune to concurrent commits and swaps (layers are
// immutable, reclamation waits for the pin), and successive pins must
// observe new generations. Unlike the PR 3 rwlock pin, the writer never
// stalls while a pin is held — the updater thread needs no yield window.
TEST(Batch, BatchEqualsScalarOnPinnedGenerationAcrossSwap) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 1500, 11);
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.retrain_threshold = 0.01;
  cfg.update_shards = 4;
  OnlineNuevoMatch online{cfg};
  online.build(rules);
  const uint64_t gen0 = online.generations();

  TraceConfig tc;
  tc.n_packets = 1024;
  tc.seed = 12;
  const auto trace = generate_trace(rules, tc);

  std::atomic<bool> run{true};
  std::thread updater([&] {
    Rng rng{13};
    uint32_t next_id = 700'000;
    while (run.load(std::memory_order_relaxed)) {
      Rule r = rules[rng.below(rules.size())];
      r.id = next_id++;
      r.priority = 2'000'000 + static_cast<int32_t>(next_id);
      online.insert(r);
    }
  });

  uint64_t last_gen = gen0;
  int gen_changes = 0;
  size_t off = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((gen_changes < 2 || online.generations() == gen0) &&
         std::chrono::steady_clock::now() < deadline) {
    const OnlineNuevoMatch::Pin pin = online.pin();
    if (pin.generation() != last_gen) {
      ++gen_changes;
      last_gen = pin.generation();
    }
    const size_t len = std::min<size_t>(128, trace.size() - off);
    const std::span<const Packet> batch{trace.data() + off, len};
    std::vector<MatchResult> out(len);
    pin.match_batch(batch, out);  // full view: frozen index + update layer
    for (size_t i = 0; i < len; ++i) {
      const MatchResult want = pin.match(batch[i]);
      ASSERT_EQ(out[i].rule_id, want.rule_id)
          << "generation " << pin.generation() << " packet " << i;
      ASSERT_EQ(out[i].priority, want.priority)
          << "generation " << pin.generation() << " packet " << i;
    }
    off = (off + len) % trace.size();
  }
  run.store(false);
  updater.join();
  online.quiesce();
  EXPECT_GE(gen_changes, 1) << "no swap was ever observed: the straddle was "
                               "never exercised";
}

TEST(Batch, EmptyAndTinyInputs) {
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  NuevoMatch nm(cfg);
  nm.build(generate_classbench(AppClass::kAcl, 1, 500, 9));
  nm.match_batch({}, {});  // no packets: must be a no-op

  TraceConfig tc;
  tc.n_packets = 3;  // below one tile
  tc.seed = 10;
  const auto trace = generate_trace(generate_classbench(AppClass::kAcl, 1, 500, 9), tc);
  std::vector<MatchResult> out(trace.size());
  nm.match_batch(trace, out);
  for (size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(out[i].rule_id, nm.match(trace[i]).rule_id);
}

}  // namespace
}  // namespace nuevomatch
