// Batched lookup (paper §5.1): match_batch must be observationally identical
// to per-packet match() on every workload — prefetching and pipelining are
// allowed to change timing only, never results.
#include <gtest/gtest.h>

#include "classbench/generator.hpp"
#include "cutsplit/cutsplit.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

struct BatchCase {
  AppClass app;
  size_t n;
  bool tm;  // remainder engine
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const BatchCase& c) {
    return os << ruleset_name(c.app, 1) << "_n" << c.n << (c.tm ? "_tm" : "_cs") << "_s"
              << c.seed;
  }
};

class BatchEquivalence : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchEquivalence, BatchEqualsScalarMatch) {
  const auto& c = GetParam();
  const RuleSet rules = generate_classbench(c.app, 1, c.n, c.seed);
  NuevoMatchConfig cfg;
  if (c.tm) {
    cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
    cfg.min_iset_coverage = 0.05;
  } else {
    cfg.remainder_factory = [] { return std::make_unique<CutSplit>(); };
    cfg.min_iset_coverage = 0.25;
  }
  NuevoMatch nm(cfg);
  nm.build(rules);

  TraceConfig tc;
  tc.n_packets = 4096 + 7;  // deliberately not a tile multiple
  tc.seed = c.seed ^ 0xAB;
  const auto trace = generate_trace(rules, tc);
  std::vector<MatchResult> batched(trace.size());
  nm.match_batch(trace, batched);
  for (size_t i = 0; i < trace.size(); ++i) {
    const MatchResult want = nm.match(trace[i]);
    ASSERT_EQ(batched[i].rule_id, want.rule_id) << "packet " << i;
    ASSERT_EQ(batched[i].priority, want.priority) << "packet " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchEquivalence,
                         ::testing::Values(BatchCase{AppClass::kAcl, 3000, true, 1},
                                           BatchCase{AppClass::kAcl, 3000, false, 2},
                                           BatchCase{AppClass::kFw, 5000, true, 3},
                                           BatchCase{AppClass::kIpc, 5000, false, 4},
                                           BatchCase{AppClass::kAcl, 20000, true, 5}));

TEST(Batch, EmptyAndTinyInputs) {
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  NuevoMatch nm(cfg);
  nm.build(generate_classbench(AppClass::kAcl, 1, 500, 9));
  nm.match_batch({}, {});  // no packets: must be a no-op

  TraceConfig tc;
  tc.n_packets = 3;  // below one tile
  tc.seed = 10;
  const auto trace = generate_trace(generate_classbench(AppClass::kAcl, 1, 500, 9), tc);
  std::vector<MatchResult> out(trace.size());
  nm.match_batch(trace, out);
  for (size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(out[i].rule_id, nm.match(trace[i]).rule_id);
}

}  // namespace
}  // namespace nuevomatch
