// iSet partitioning invariants (paper §3.6): per-iSet disjointness, exact
// conservation of rules, coverage monotonicity, thresholds.
#include <gtest/gtest.h>

#include <set>

#include "classbench/generator.hpp"
#include "isets/partition.hpp"

namespace nuevomatch {
namespace {

void check_invariants(const RuleSet& rules, const IsetPartition& part) {
  // Conservation: every rule exactly once.
  std::multiset<uint32_t> seen;
  for (const auto& is : part.isets)
    for (const Rule& r : is.rules) seen.insert(r.id);
  for (const Rule& r : part.remainder) seen.insert(r.id);
  ASSERT_EQ(seen.size(), rules.size());
  for (const Rule& r : rules) EXPECT_EQ(seen.count(r.id), 1u) << "rule " << r.id;

  // Disjointness + sortedness within each iSet.
  for (const auto& is : part.isets) {
    for (size_t i = 1; i < is.rules.size(); ++i) {
      const Range& prev = is.rules[i - 1].field[static_cast<size_t>(is.field)];
      const Range& cur = is.rules[i].field[static_cast<size_t>(is.field)];
      EXPECT_LT(prev.hi, cur.lo);
    }
  }
}

TEST(Partition, InvariantsHoldOnClassBench) {
  for (auto app : {AppClass::kAcl, AppClass::kFw, AppClass::kIpc}) {
    const RuleSet rules = generate_classbench(app, 1, 3000, 7);
    IsetPartitionConfig cfg;
    cfg.min_coverage_fraction = 0.01;
    const IsetPartition part = partition_rules(rules, cfg);
    check_invariants(rules, part);
    // Small FW sets are dominated by the overlapping core and legitimately
    // cover little (paper Table 2: 1K rule-sets average 20% +- 19).
    EXPECT_GT(part.coverage(), app == AppClass::kFw ? 0.05 : 0.25)
        << ruleset_name(app, 1);
  }
}

TEST(Partition, IsetsAreExtractedLargestFirst) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 5000, 9);
  IsetPartitionConfig cfg;
  cfg.min_coverage_fraction = 0.01;
  cfg.max_isets = 6;
  const IsetPartition part = partition_rules(rules, cfg);
  for (size_t i = 1; i < part.isets.size(); ++i)
    EXPECT_GE(part.isets[i - 1].rules.size(), part.isets[i].rules.size());
}

TEST(Partition, CoverageMonotoneInMaxIsets) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 4000, 11);
  double prev = 0.0;
  for (int k = 0; k <= 5; ++k) {
    IsetPartitionConfig cfg;
    cfg.max_isets = k;
    cfg.min_coverage_fraction = 0.01;
    const double cov = partition_rules(rules, cfg).coverage();
    EXPECT_GE(cov, prev - 1e-12);
    prev = cov;
  }
}

TEST(Partition, ZeroIsetsMeansAllRemainder) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 500, 3);
  IsetPartitionConfig cfg;
  cfg.max_isets = 0;
  const IsetPartition part = partition_rules(rules, cfg);
  EXPECT_TRUE(part.isets.empty());
  EXPECT_EQ(part.remainder.size(), rules.size());
  EXPECT_DOUBLE_EQ(part.coverage(), 0.0);
}

TEST(Partition, CoverageFloorDiscardsSmallIsets) {
  // With an impossibly high floor nothing qualifies.
  const RuleSet rules = generate_classbench(AppClass::kFw, 3, 1000, 5);
  IsetPartitionConfig cfg;
  cfg.min_coverage_fraction = 0.99;
  const IsetPartition part = partition_rules(rules, cfg);
  EXPECT_TRUE(part.isets.empty());
}

TEST(Partition, EmptyInput) {
  const IsetPartition part = partition_rules({}, {});
  EXPECT_TRUE(part.isets.empty());
  EXPECT_TRUE(part.remainder.empty());
  EXPECT_DOUBLE_EQ(part.coverage(), 0.0);
}

TEST(Partition, SingleRule) {
  RuleSet rules(1);
  for (int f = 0; f < kNumFields; ++f) rules[0].field[static_cast<size_t>(f)] = full_range(f);
  canonicalize(rules);
  IsetPartitionConfig cfg;
  cfg.min_coverage_fraction = 0.5;
  const IsetPartition part = partition_rules(rules, cfg);
  EXPECT_EQ(part.isets.size(), 1u);
  EXPECT_DOUBLE_EQ(part.coverage(), 1.0);
}

}  // namespace
}  // namespace nuevomatch
