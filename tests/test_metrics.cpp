// Telemetry-layer suite (ISSUE 10):
//
//   * log2 histogram bucket boundaries are EXACT (bucket b >= 1 spans
//     [2^(b-1), 2^b - 1], bucket 0 is {0}, the top bucket clamps), merge is
//     bucketwise addition, and percentile extraction follows the
//     nuevomatch::percentile rank convention — proven by expanding a
//     snapshot into its assumed per-bucket sample spread and comparing
//     against the real nuevomatch::percentile over that expansion;
//   * sharded counters aggregate exactly vs a serial oracle under 4 racing
//     threads (and stay monotone under snapshot-during-churn), relaxed
//     atomics throughout — the TSAN CI leg runs this suite;
//   * the registry rejects name/type conflicts and renders Prometheus text
//     exposition + JSON; telemetry::Snapshot joins the health surfaces
//     (flow cache stats, replica layer) into the same exposition;
//   * MetricsExporter answers a real loopback scrape (Prometheus and JSON)
//     and dumps interval files;
//   * an instrumented pipeline run populates the end-to-end burst latency
//     histogram (nm_pipeline_burst_ns) and the scheduler fire histogram
//     feeds p50/p99 from real samples.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/metrics_exporter.hpp"
#include "pipeline/telemetry.hpp"

namespace nuevomatch {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::HistogramSnapshot;
using telemetry::MetricType;
using telemetry::Registry;

// --- histogram bucket math --------------------------------------------------

TEST(MetricsHistogram, BucketBoundariesExact) {
  EXPECT_EQ(HistogramSnapshot::bucket_of(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(2), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(3), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(4), 3u);
  // Every power of two starts a new bucket; its predecessor ends one.
  for (size_t b = 1; b + 1 < HistogramSnapshot::kBuckets; ++b) {
    const uint64_t lo = uint64_t{1} << (b - 1);
    const uint64_t hi = (uint64_t{1} << b) - 1;
    EXPECT_EQ(HistogramSnapshot::bucket_of(lo), b) << "lo of bucket " << b;
    EXPECT_EQ(HistogramSnapshot::bucket_of(hi), b) << "hi of bucket " << b;
    EXPECT_EQ(HistogramSnapshot::bucket_lo(b), lo);
    EXPECT_EQ(HistogramSnapshot::bucket_hi(b), hi);
  }
  // The top bucket absorbs everything, including values past 2^62.
  EXPECT_EQ(HistogramSnapshot::bucket_of(~uint64_t{0}),
            HistogramSnapshot::kBuckets - 1);
  EXPECT_EQ(HistogramSnapshot::bucket_of(uint64_t{1} << 62),
            HistogramSnapshot::kBuckets - 1);
}

TEST(MetricsHistogram, RecordLandsInExactBucket) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(1000);   // [512, 1023] -> bucket 10
  h.record(1023);
  h.record(1024);   // bucket 11
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count[0], 1u);
  EXPECT_EQ(s.count[1], 1u);
  EXPECT_EQ(s.count[10], 2u);
  EXPECT_EQ(s.count[11], 1u);
  EXPECT_EQ(s.total(), 5u);
  EXPECT_EQ(s.sum_ns, 0u + 1 + 1000 + 1023 + 1024);
}

TEST(MetricsHistogram, MergeIsBucketwiseAddition) {
  Histogram a, b;
  for (int i = 0; i < 10; ++i) a.record(100);
  for (int i = 0; i < 5; ++i) b.record(5000);
  b.record(0);
  HistogramSnapshot sa = a.snapshot();
  const HistogramSnapshot sb = b.snapshot();
  sa.merge(sb);
  EXPECT_EQ(sa.total(), 16u);
  EXPECT_EQ(sa.count[HistogramSnapshot::bucket_of(100)], 10u);
  EXPECT_EQ(sa.count[HistogramSnapshot::bucket_of(5000)], 5u);
  EXPECT_EQ(sa.count[0], 1u);
  EXPECT_EQ(sa.sum_ns, 10u * 100 + 5u * 5000);
}

/// Expand a snapshot into the per-bucket evenly-spread samples its
/// percentile() assumes (sample j of k in bucket b sits at
/// lo + (hi-lo)*(j+0.5)/k), then compare percentile() against the REAL
/// nuevomatch::percentile over that expansion. Equality here proves the
/// histogram follows the existing rank convention exactly.
std::vector<double> assumed_samples(const HistogramSnapshot& s) {
  std::vector<double> xs;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    const uint64_t k = s.count[b];
    if (k == 0) continue;
    const double lo = static_cast<double>(HistogramSnapshot::bucket_lo(b));
    const double hi = static_cast<double>(HistogramSnapshot::bucket_hi(b));
    for (uint64_t j = 0; j < k; ++j)
      xs.push_back(lo + (hi - lo) * ((static_cast<double>(j) + 0.5) /
                                     static_cast<double>(k)));
  }
  return xs;
}

TEST(MetricsHistogram, PercentileMatchesNuevomatchConvention) {
  Histogram h;
  // A deliberately lumpy distribution across several buckets.
  for (int i = 0; i < 100; ++i) h.record(700);      // bucket 10
  for (int i = 0; i < 40; ++i) h.record(3000);      // bucket 12
  for (int i = 0; i < 9; ++i) h.record(100'000);    // bucket 17
  h.record(2'000'000);                              // bucket 21
  const HistogramSnapshot s = h.snapshot();
  const std::vector<double> xs = assumed_samples(s);
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_NEAR(s.percentile(p), percentile(xs, p), 1e-6)
        << "p = " << p;
  }
}

TEST(MetricsHistogram, PercentileEdgeCases) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.percentile(50.0), 0.0);

  Histogram one;
  one.record(1000);  // bucket 10: [512, 1023]
  const HistogramSnapshot s = one.snapshot();
  // A single sample sits at its bucket's midpoint at EVERY percentile.
  const double mid = 512.0 + (1023.0 - 512.0) * 0.5;
  EXPECT_DOUBLE_EQ(s.percentile(0.0), mid);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), mid);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), mid);
  // And the relative error vs the true value is bounded by bucket width.
  EXPECT_LT(std::abs(s.p50() - 1000.0) / 1000.0, 1.0);
}

TEST(MetricsHistogram, P50P99OrderedOnSkewedLoad) {
  Histogram h;
  for (int i = 0; i < 990; ++i) h.record(1000);
  for (int i = 0; i < 10; ++i) h.record(1'000'000);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_LE(s.p50(), s.p99());
  EXPECT_LE(s.p99(), s.p999());
  EXPECT_LT(s.p50(), 2048.0);       // within the 1000ns bucket's decade
  EXPECT_GT(s.p999(), 500'000.0);   // tail sees the slow samples
}

// --- sharded counters vs serial oracle --------------------------------------

TEST(MetricsCounter, FourRacingThreadsMatchSerialOracle) {
  Registry reg;
  Counter& c = reg.counter("nm_test_oracle_total");
  Histogram& h = reg.histogram("nm_test_oracle_ns");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 200'000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c, &h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1 + (i & 3));  // mixed increments, deterministic serial sum
        if ((i & 1023) == 0) h.record(100 + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& t : ts) t.join();
  uint64_t oracle = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) oracle += 1 + (i & 3);
  EXPECT_EQ(c.value(), oracle * kThreads);
  // (i & 1023) == 0 fires at i = 0, 1024, ... -> ceil(kPerThread/1024) each.
  EXPECT_EQ(h.snapshot().total(), kThreads * ((kPerThread + 1023) / 1024));
}

TEST(MetricsCounter, SnapshotDuringChurnIsMonotone) {
  Registry reg;
  Counter& c = reg.counter("nm_test_churn_total");
  Gauge& g = reg.gauge("nm_test_churn_depth");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.add(1);
        g.add(1);
      }
    });
  }
  uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    const telemetry::RegistrySnapshot snap = reg.snapshot();
    const telemetry::MetricValue* m = snap.find("nm_test_churn_total");
    ASSERT_NE(m, nullptr);
    // Counters are monotone: a snapshot racing increments can never run
    // backwards (each slot is read once, relaxed, and only ever grows).
    EXPECT_GE(m->counter, prev);
    prev = m->counter;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  EXPECT_EQ(reg.snapshot().find("nm_test_churn_total")->counter,
            static_cast<uint64_t>(
                reg.snapshot().find("nm_test_churn_depth")->gauge));
}

// --- registry ---------------------------------------------------------------

TEST(MetricsRegistry, TypeConflictThrows) {
  Registry reg;
  reg.counter("nm_test_dup");
  EXPECT_THROW(reg.gauge("nm_test_dup"), std::runtime_error);
  EXPECT_THROW(reg.histogram("nm_test_dup"), std::runtime_error);
  // Same name + same type is find-or-create, never a new object.
  Counter& a = reg.counter("nm_test_dup");
  Counter& b = reg.counter("nm_test_dup");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, PrometheusAndJsonExposition) {
  Registry reg;
  reg.counter("nm_test_hits_total", "hits").add(5);
  reg.gauge("nm_test_depth", "queue depth").set(7);
  Histogram& h = reg.histogram("nm_test_lat_ns", "latency");
  h.record(100);
  h.record(100);
  h.record(3000);
  const telemetry::RegistrySnapshot snap = reg.snapshot();

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE nm_test_hits_total counter"), std::string::npos);
  EXPECT_NE(prom.find("nm_test_hits_total 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nm_test_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("nm_test_depth 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nm_test_lat_ns histogram"), std::string::npos);
  // Cumulative buckets: le="127" covers the two 100ns samples, +Inf all 3.
  EXPECT_NE(prom.find("nm_test_lat_ns_bucket{le=\"127\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("nm_test_lat_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("nm_test_lat_ns_sum 3200"), std::string::npos);
  EXPECT_NE(prom.find("nm_test_lat_ns_count 3"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"nm_test_hits_total\":5"), std::string::npos);
  EXPECT_NE(json.find("\"nm_test_depth\":7"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ns\":"), std::string::npos);
}

// --- telemetry::Snapshot join -----------------------------------------------

TEST(TelemetrySnapshot, JoinsHealthSurfacesInBothFormats) {
  telemetry::Snapshot s;
  // Health surfaces only — the registry part may be empty.
  EngineHealth eh;
  eh.generation = 3;
  eh.in_backoff = true;
  eh.backoff_ms = 250;
  s.engine = eh;
  pipeline::FlowCache::Stats cs;
  cs.hits = 42;
  cs.misses = 8;
  cs.retained = 17;
  s.cache = cs;
  s.cache_entries = 10;
  s.cache_capacity = 1024;
  pipeline::PipelineHealth ph;
  ph.runtime.restarts = 2;
  ph.replicas.resize(2);
  ph.replicas[1].state = pipeline::ReplicaHealth::State::kQuarantined;
  ph.replicas[1].quarantines = 1;
  s.pipeline = ph;

  const std::string prom = s.to_prometheus();
  EXPECT_NE(prom.find("nm_engine_generation 3"), std::string::npos);
  EXPECT_NE(prom.find("nm_engine_backoff_ms 250"), std::string::npos);
  EXPECT_NE(prom.find("nm_flowcache_hits_total 42"), std::string::npos);
  EXPECT_NE(prom.find("nm_flowcache_retained_total 17"), std::string::npos);
  EXPECT_NE(prom.find("nm_flowcache_capacity 1024"), std::string::npos);
  EXPECT_NE(prom.find("nm_runtime_restarts_total 2"), std::string::npos);
  EXPECT_NE(prom.find("nm_replica_live{replica=\"0\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("nm_replica_live{replica=\"1\"} 0"), std::string::npos);
  EXPECT_NE(prom.find("nm_replica_quarantines_total{replica=\"1\"} 1"),
            std::string::npos);

  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"engine\":{"), std::string::npos);
  EXPECT_NE(json.find("\"generation\":3"), std::string::npos);
  EXPECT_NE(json.find("\"flowcache\":{"), std::string::npos);
  EXPECT_NE(json.find("\"hits\":42"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"quarantined\""), std::string::npos);
}

// --- MetricsExporter --------------------------------------------------------

/// One blocking scrape against the exporter's loopback listener. The
/// exporter's accept is nonblocking and served by poll(), so the client
/// connects first (the listen backlog holds it), then poll() serves it.
std::string scrape(int port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string req = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(MetricsExporter, ServesPrometheusAndJsonScrapes) {
  // Ensure at least one global-registry series exists for the scrape body.
  telemetry::registry()
      .counter("nm_test_scrape_total", "scrape-test marker")
      .add(9);

  pipeline::MetricsExporter::Options o;
  o.port = 0;  // ephemeral
  pipeline::MetricsExporter exp(o);
  const int port = exp.ensure_listener();
  ASSERT_GT(port, 0);

  // Client connects (backlog), then poll() accepts and serves.
  std::thread server([&exp] {
    for (int i = 0; i < 200; ++i) {
      if (exp.poll()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const std::string prom = scrape(port, "/metrics");
  server.join();
  EXPECT_NE(prom.find("200 OK"), std::string::npos);
  EXPECT_NE(prom.find("text/plain"), std::string::npos);
  EXPECT_NE(prom.find("nm_test_scrape_total 9"), std::string::npos);

  std::thread server2([&exp] {
    for (int i = 0; i < 200; ++i) {
      if (exp.poll()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const std::string json = scrape(port, "/json");
  server2.join();
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"nm_test_scrape_total\":"), std::string::npos);
  EXPECT_EQ(exp.scrapes(), 2u);
}

TEST(MetricsExporter, DumpsFileOnFinish) {
  const std::string path = "/tmp/nm_test_metrics_dump.prom";
  std::remove(path.c_str());
  telemetry::registry().counter("nm_test_dump_total").add(1);
  {
    pipeline::MetricsExporter::Options o;
    o.file = path;
    o.interval_ms = 1'000'000;  // only the finish() dump fires
    pipeline::MetricsExporter exp(o);
    exp.finish();
    EXPECT_EQ(exp.dumps(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("nm_test_dump_total"), std::string::npos);
  std::remove(path.c_str());
}

// --- instrumented pipeline populates latency histograms ---------------------
// (Compiled out under -DNM_METRICS=OFF: these two assert on the hot-path
// instrumentation the kill switch exists to strip.)
#if NM_METRICS

TEST(MetricsPipeline, BurstLatencyHistogramPopulated) {
  // Enough packets that the 1-in-32 burst sampler must fire: 256 bursts.
  std::vector<Packet> pkts(256 * pipeline::kBurstSize);
  for (size_t i = 0; i < pkts.size(); ++i) {
    pkts[i] = Packet{};
    pkts[i].field[0] = static_cast<uint32_t>(i);
  }
  pipeline::Graph g;
  auto& src = g.add(std::make_unique<pipeline::TraceSource>(std::move(pkts)));
  auto& snk = g.add(std::make_unique<pipeline::Sink>());
  g.connect(src, 0, snk);
  const uint64_t before =
      telemetry::registry().histogram("nm_pipeline_burst_ns").snapshot().total();
  const uint64_t n = g.run();
  EXPECT_EQ(n, 256u * pipeline::kBurstSize);
  const telemetry::HistogramSnapshot s =
      telemetry::registry().histogram("nm_pipeline_burst_ns").snapshot();
  EXPECT_GE(s.total(), before + 256 / 32);
  EXPECT_GT(s.p50(), 0.0);
  EXPECT_LE(s.p50(), s.p99());
  // The burst/packet counters advanced in lockstep with the run.
  EXPECT_GE(telemetry::registry().counter("nm_pipeline_packets_total").value(),
            n);
}

TEST(MetricsSampling, OneInNIsExact) {
  int fired = 0;
  for (int i = 0; i < 640; ++i)
    if (NM_SAMPLE_EVERY(64)) ++fired;
  EXPECT_EQ(fired, 10);
}

#endif  // NM_METRICS

}  // namespace
}  // namespace nuevomatch
