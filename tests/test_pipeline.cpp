// The dataplane pipeline subsystem (src/pipeline): config-language parsing
// and wiring, the update-coherent FlowCache, Dispatch routing, and the
// end-to-end differential the ISSUE 5 acceptance criteria name — a pcap
// run through FlowCache -> Classifier -> sinks produces decisions
// byte-identical to a scalar oracle, with the cache enabled, live rule
// updates landing mid-stream, and ≥3 forced retrain swaps.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "classbench/generator.hpp"
#include "classbench/parser.hpp"
#include "classifiers/linear.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"
#include "trace/pcap.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

using pipeline::Burst;
using pipeline::Decision;
using pipeline::FlowCache;
using pipeline::Graph;
using pipeline::kBurstSize;

std::string tmp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::shared_ptr<OnlineNuevoMatch> make_online(const RuleSet& rules,
                                              bool auto_retrain = false) {
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.auto_retrain = auto_retrain;
  cfg.retrain_threshold = 1.0;
  auto online = std::make_shared<OnlineNuevoMatch>(std::move(cfg));
  online->build(rules);
  return online;
}

// --- FlowCache --------------------------------------------------------------

TEST(FlowCacheTest, HitMissAndFullKeyCompare) {
  FlowCache cache{64, 2};
  Packet p;
  p.field = {1, 2, 3, 4, 5};
  Decision d;
  EXPECT_FALSE(cache.lookup(p, d));
  cache.insert(p, Decision{7, 7, 1}, cache.current_stamp());
  ASSERT_TRUE(cache.lookup(p, d));
  EXPECT_EQ(d.rule_id, 7);
  EXPECT_EQ(d.action, 1);

  // A different five-tuple is a miss even if it hashed onto the same set —
  // the full key is compared, never just the hash.
  Packet q = p;
  q.field[kProto] = 6;
  EXPECT_FALSE(cache.lookup(q, d));
  const FlowCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
}

TEST(FlowCacheTest, StaleEntriesDieOnCoherenceStampBump) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 400, 11);
  auto online = make_online(rules);
  FlowCache cache{256};
  cache.set_stamp_source(online.get());

  // Cache the decision for a packet that hits some base rule.
  const std::vector<Packet> pkts = representative_packets(rules, 11);
  const Packet& p = pkts[5];
  const uint64_t stamp = cache.current_stamp();
  const MatchResult before = online->match(p);
  ASSERT_TRUE(before.hit());
  cache.insert(p, Decision{before.rule_id, before.priority, 0}, stamp);
  Decision d;
  ASSERT_TRUE(cache.lookup(p, d));

  // A better rule covering everything lands: the old decision is WRONG now.
  Rule shadow;
  for (int f = 0; f < kNumFields; ++f) shadow.field[static_cast<size_t>(f)] = full_range(f);
  shadow.id = 900'000;
  shadow.priority = -1;
  ASSERT_TRUE(online->insert(shadow));

  // The commit bumped the stamp: the cached decision must NOT be served.
  EXPECT_FALSE(cache.lookup(p, d));
  EXPECT_EQ(cache.stats().stale, 1u);
  EXPECT_EQ(online->match(p).rule_id, 900'000);

  // Refill under the new stamp; an erase invalidates again (tombstone-only
  // erases mutate in place, with no layer publication — they must bump too).
  const uint64_t stamp2 = cache.current_stamp();
  const MatchResult after = online->match(p);
  cache.insert(p, Decision{after.rule_id, after.priority, 0}, stamp2);
  ASSERT_TRUE(cache.lookup(p, d));
  EXPECT_EQ(d.rule_id, 900'000);
  ASSERT_TRUE(online->erase(900'000));
  EXPECT_FALSE(cache.lookup(p, d));
  EXPECT_EQ(online->match(p).rule_id, before.rule_id);
}

TEST(FlowCacheTest, RetrainSwapInvalidatesConservatively) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 300, 12);
  auto online = make_online(rules);
  FlowCache cache{128};
  cache.set_stamp_source(online.get());
  const Packet p = representative_packets(rules, 12)[0];
  const uint64_t stamp = cache.current_stamp();
  const MatchResult r = online->match(p);
  cache.insert(p, Decision{r.rule_id, r.priority, 0}, stamp);
  online->retrain_now();
  online->quiesce();
  Decision d;
  EXPECT_FALSE(cache.lookup(p, d));  // swap bumps the stamp
  EXPECT_EQ(online->match(p).rule_id, r.rule_id);  // ...but answers held
}

TEST(FlowCacheTest, EvictionIsBoundedToTheSet) {
  FlowCache cache{FlowCache::kWays * 2, 1};  // tiny: 2 sets, 4 ways
  for (uint32_t i = 0; i < 64; ++i) {
    Packet p;
    p.field = {i, i + 1, i + 2, i + 3, 6};
    cache.insert(p, Decision{static_cast<int32_t>(i), 0, 0}, 0);
  }
  const FlowCache::Stats s = cache.stats();
  EXPECT_EQ(s.inserts, 64u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(cache.capacity(), 8u);
}

// --- config language --------------------------------------------------------

TEST(GraphParse, DeclarationsChainsPortsAndComments) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 200, 13);
  const std::string rules_path = tmp_path("parse.rules");
  {
    std::ofstream out{rules_path};
    write_classbench(out, rules);
  }
  const std::string config =
      "# a comment\n"
      "cls :: Classifier(" + rules_path + ", manual);\n"
      "disp :: Dispatch(permit, deny);  // trailing comment\n"
      "TraceSource(" + rules_path + ", 256, zipf:1.1) -> FlowCache(1024) -> cls;\n"
      "cls -> disp;\n"
      "disp[0] -> Counter(permit) -> Sink(record);\n"
      "disp[1] -> Sink();\n";
  Graph g = Graph::parse(config);
  EXPECT_NE(g.find("cls"), nullptr);
  EXPECT_NE(g.find("disp"), nullptr);
  EXPECT_NE(g.find_kind<pipeline::FlowCacheElement>(), nullptr);
  const uint64_t n = g.run();
  EXPECT_EQ(n, 256u);
  auto* counter = g.find_kind<pipeline::Counter>();
  auto* disp = static_cast<pipeline::Dispatch*>(g.find("disp"));
  // Every generated packet matches SOME rule (actions default to 0 =>
  // port 0), so the permit counter saw every packet that hit.
  EXPECT_EQ(counter->packets(), disp->port_packets(0));
  EXPECT_EQ(disp->port_packets(0) + disp->port_packets(1), 256u);
}

TEST(GraphParse, ErrorsAreDiagnosedWithLineNumbers) {
  EXPECT_THROW((void)Graph::parse("Nope(1) -> Sink();"), std::runtime_error);
  EXPECT_THROW((void)Graph::parse("unknown_name -> Sink();"), std::runtime_error);
  EXPECT_THROW((void)Graph::parse("a :: Counter();\na -> Sink(); a -> Sink();"),
               std::runtime_error);  // port 0 connected twice
  EXPECT_THROW((void)Graph::parse("a :: Counter();\na[3] -> Sink();"),
               std::runtime_error);  // no such port
  EXPECT_THROW((void)Graph::parse("a :: Counter(x"), std::runtime_error);
  // Overlong port numbers fail as a diagnosed parse error, not an
  // out_of_range escaping from the number conversion.
  EXPECT_THROW(
      (void)Graph::parse("a :: Counter();\na[99999999999999999999] -> Sink();"),
      std::runtime_error);
  // A port selector on a chain's final element selects a port but connects
  // nothing — rejected, not silently dropped.
  EXPECT_THROW((void)Graph::parse("a :: Counter();\na -> Sink()[1];"),
               std::runtime_error);
  try {
    (void)Graph::parse("a :: Counter();\nb :: Bogus();");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

// Asserts that parsing `config` fails with a diagnostic that names `line`
// and contains `fragment`. Every parser error must carry its line number —
// a config error in a 50-line graph is useless without one.
static void expect_parse_error(const std::string& config, int line,
                               const std::string& fragment) {
  try {
    (void)Graph::parse(config);
    FAIL() << "expected parse error containing '" << fragment << "'";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pipeline config line " + std::to_string(line)),
              std::string::npos)
        << "wrong/missing line number in: " << what;
    EXPECT_NE(what.find(fragment), std::string::npos)
        << "missing '" << fragment << "' in: " << what;
  }
}

TEST(GraphParse, NegativeSuiteDiagnosesEveryMalformation) {
  // Unknown element kind in a declaration and in a chain.
  expect_parse_error("bad :: Nope(1);", 1, "unknown element kind 'Nope'");
  expect_parse_error("# leading comment\nNope() -> Sink();", 2,
                     "unknown element kind 'Nope'");
  // Reference to a name that was never declared.
  expect_parse_error("a :: Counter();\nghost -> Sink();", 2,
                     "unknown element 'ghost'");
  // Malformed declarations: missing '(', unterminated argument list,
  // missing identifier, and a declaration with a dangling tail.
  expect_parse_error("a :: Counter;", 1, "expected '(' after kind 'Counter'");
  expect_parse_error("a :: Counter(x", 1, "unterminated '('");
  // The missing ';' is detected at the NEXT token, so the diagnostic
  // points at line 2 — where the parser stopped, like a compiler would.
  expect_parse_error("a :: Counter()\nb :: Counter();", 2,
                     "expected ';' or '->' after declaration");
  // Duplicate element names are caught where the SECOND declaration sits.
  expect_parse_error("a :: Counter();\na :: Counter();", 2,
                     "duplicate element name 'a'");
  // Port selector abuse: out-of-range port, overlong digits (must be a
  // diagnosed parse error, not std::out_of_range escaping the converter),
  // unterminated selector, and a selector that ends a chain (selects a
  // port but connects nothing).
  expect_parse_error("a :: Counter();\na[3] -> Sink();", 2,
                     "has no output port");
  expect_parse_error("a :: Counter();\na[99999999999999999999] -> Sink();", 2,
                     "out of range");
  expect_parse_error("a :: Counter();\na[0 -> Sink();", 2,
                     "expected ']' after port number");
  expect_parse_error("a :: Counter();\nSink()[0];", 2, "ends the chain");
  // Double-connecting one output port.
  expect_parse_error("a :: Counter();\na -> Sink();\na -> Sink();", 3,
                     "connected twice");
  // Statements that parse to nothing.
  expect_parse_error("a :: Counter();\na;", 2, "statement has no effect");
  expect_parse_error("a :: Counter();\n-> Sink();", 2,
                     "expected an identifier");
  // A config-built cycle is rejected at initialize() (topology, not
  // syntax, so no line number — assert the named-element message instead).
  Graph g = Graph::parse(
      "a :: Counter(a);\nb :: Counter(b);\na -> b;\nb -> a;");
  try {
    g.initialize();
    FAIL() << "expected cycle rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos)
        << e.what();
  }
}

// One coherence stamp cannot cover two distinct online engines: a cache in
// such a graph would keep serving decisions one engine's updates should
// have invalidated. The wiring must be rejected, not silently incoherent.
// Two classifiers sharing ONE engine are fine.
TEST(GraphParse, OneCacheOverTwoOnlineEnginesIsRejected) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 200, 19);
  const auto build = [&](bool shared_engine) {
    Graph g;
    auto& cache = g.add(std::make_unique<pipeline::FlowCacheElement>(256), "cache");
    auto a = std::make_unique<pipeline::ClassifierElement>();
    auto b = std::make_unique<pipeline::ClassifierElement>();
    auto engine = make_online(rules);
    a->attach(engine);
    b->attach(shared_engine ? engine : make_online(rules));
    auto& ca = g.add(std::move(a), "a");
    auto& cb = g.add(std::move(b), "b");
    auto& disp = g.add(
        std::make_unique<pipeline::Dispatch>(std::vector<std::string>{"x", "y"}),
        "disp");
    g.connect(cache, 0, disp);
    g.connect(disp, 0, ca);
    g.connect(disp, 1, cb);
    g.initialize();
  };
  EXPECT_NO_THROW(build(/*shared_engine=*/true));
  EXPECT_THROW(build(/*shared_engine=*/false), std::runtime_error);
}

TEST(GraphParse, CyclesAreRejected) {
  Graph g;
  auto& a = g.add(std::make_unique<pipeline::Counter>("a"), "a");
  auto& b = g.add(std::make_unique<pipeline::Counter>("b"), "b");
  g.connect(a, 0, b);
  g.connect(b, 0, a);
  EXPECT_THROW(g.initialize(), std::runtime_error);
}

// --- Dispatch ---------------------------------------------------------------

TEST(DispatchTest, RoutesOnRuleActionWithMissToLastPort) {
  // Hand-built rules with distinct actions; trace packets aimed at each.
  RuleSet rules = generate_classbench(AppClass::kAcl, 1, 300, 14);
  for (Rule& r : rules) r.action = static_cast<int32_t>(r.id % 2);

  auto online = make_online(rules);
  std::vector<Packet> pkts = representative_packets(rules, 14);
  Packet miss;  // the generator never emits proto 255 rules covering this
  miss.field = {0, 0, 0, 0, 255};
  LinearSearch oracle;
  oracle.build(rules);
  if (!oracle.match(miss).hit()) pkts.push_back(miss);

  Graph g;
  auto& src = g.add(std::make_unique<pipeline::TraceSource>(pkts), "src");
  auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
  cls_owned->attach(online);
  cls_owned->set_actions(rules);
  auto& cls = g.add(std::move(cls_owned), "cls");
  auto& disp = g.add(
      std::make_unique<pipeline::Dispatch>(std::vector<std::string>{"a0", "a1", "other"}),
      "disp");
  auto& s0 = g.add(std::make_unique<pipeline::Sink>(true), "s0");
  auto& s1 = g.add(std::make_unique<pipeline::Sink>(true), "s1");
  auto& s2 = g.add(std::make_unique<pipeline::Sink>(true), "s2");
  g.connect(src, 0, cls);
  g.connect(cls, 0, disp);
  g.connect(disp, 0, s0);
  g.connect(disp, 1, s1);
  g.connect(disp, 2, s2);
  g.run();

  uint64_t checked = 0;
  for (const auto* sink : {&s0, &s1, &s2}) {
    const int32_t want_action = sink == &s2 ? -1 : (sink == &s1 ? 1 : 0);
    for (const auto& rec : sink->records()) {
      const MatchResult r = oracle.match(pkts[rec.index]);
      EXPECT_EQ(rec.rule_id, r.rule_id);
      if (want_action >= 0) {
        ASSERT_GE(rec.rule_id, 0);
        EXPECT_EQ(rules[static_cast<size_t>(rec.rule_id)].action, want_action);
      } else {
        EXPECT_EQ(rec.rule_id, MatchResult::kNoMatch);
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, pkts.size());
}

// --- end-to-end: the acceptance differential --------------------------------

// Pcap in -> FlowCache -> Classifier -> Dispatch -> record sinks, with live
// insert/erase commits AND forced retrain swaps landing mid-stream between
// bursts. Every emitted decision must equal a scalar oracle evaluated
// against the rule-set AS OF that packet's position in the stream — with
// the cache enabled throughout, so any stale-serve after an update is an
// immediate mismatch.
TEST(PipelineEndToEnd, PcapDecisionsMatchScalarOracleThroughUpdatesAndSwaps) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 600, 15);
  const std::string rules_path = tmp_path("e2e.rules");
  {
    std::ofstream out{rules_path};
    write_classbench(out, rules);
  }
  // Re-read: the classifier and the oracle must see the identical (file-
  // round-tripped) rule-set.
  std::ifstream rin{rules_path};
  const RuleSet file_rules = parse_classbench(rin);
  ASSERT_EQ(file_rules.size(), rules.size());

  // A skewed trace so the flow cache genuinely serves hits. Packets whose
  // protocol carries no L4 ports cannot transport ports through a frame —
  // zero them so the pcap round-trip is exact (same projection the wire
  // itself would impose).
  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kZipf;
  tc.zipf_alpha = 1.15;
  tc.n_packets = 6'000;
  std::vector<Packet> trace = generate_trace(file_rules, tc);
  for (Packet& p : trace) {
    if (!proto_has_ports(static_cast<uint8_t>(p[kProto]))) {
      p.field[kSrcPort] = 0;
      p.field[kDstPort] = 0;
    }
  }
  const std::string pcap_path = tmp_path("e2e.pcap");
  ASSERT_TRUE(write_pcap_packets(pcap_path, trace));

  const std::string config =
      "src   :: PcapSource(" + pcap_path + ");\n"
      "cache :: FlowCache(4096);\n"
      "cls   :: Classifier(" + rules_path + ", manual);\n"
      "disp  :: Dispatch(permit, deny);\n"
      "hit_sink  :: Sink(record);\n"
      "miss_sink :: Sink(record);\n"
      "src -> cache -> cls -> disp;\n"
      "disp[0] -> hit_sink;\n"
      "disp[1] -> miss_sink;\n";
  Graph g = Graph::parse(config);
  auto* cls = g.find_kind<pipeline::ClassifierElement>();
  ASSERT_NE(cls, nullptr);
  OnlineNuevoMatch* online = cls->online();
  ASSERT_NE(online, nullptr);

  // Mid-stream events, applied between bursts by the run() tick hook. Each
  // CHANGES answers: a global shadow rule appears, then disappears, then a
  // swap is forced — decisions cached before each event are stale after it.
  Rule shadow;
  for (int f = 0; f < kNumFields; ++f)
    shadow.field[static_cast<size_t>(f)] = full_range(f);
  shadow.id = 700'000;
  shadow.priority = -10;
  const uint64_t n = trace.size();
  const uint64_t gen0 = online->generations();
  uint64_t insert_at = 0, erase_at = 0;
  int phase = 0;
  g.run([&](uint64_t done) {
    if (phase == 0 && done * 5 >= n) {
      ASSERT_TRUE(online->insert(shadow));
      insert_at = done;
      online->retrain_now();  // swap #1 races the next bursts
      ++phase;
    } else if (phase == 1 && done * 5 >= 2 * n) {
      online->quiesce();
      ASSERT_TRUE(online->erase(shadow.id));
      erase_at = done;
      ++phase;
    } else if ((phase == 2 && done * 5 >= 3 * n) ||
               (phase == 3 && done * 5 >= 4 * n)) {
      online->retrain_now();  // swaps #2 and #3, mid-stream
      online->quiesce();
      ++phase;
    }
  });
  online->quiesce();
  EXPECT_GE(online->generations() - gen0, 3u) << "three swaps must have landed";
  EXPECT_EQ(phase, 4);

  // Scalar oracles for the three rule-set epochs of the stream.
  NuevoMatchConfig ocfg;
  ocfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  ocfg.min_iset_coverage = 0.05;
  NuevoMatch base_oracle{ocfg};
  base_oracle.build(file_rules);
  RuleSet with_shadow = file_rules;
  with_shadow.push_back(shadow);
  NuevoMatchConfig ocfg2 = ocfg;
  NuevoMatch shadow_oracle{ocfg2};
  shadow_oracle.build(with_shadow);

  std::vector<pipeline::Sink::Record> decisions;
  for (const char* name : {"hit_sink", "miss_sink"}) {
    const auto& recs = static_cast<pipeline::Sink*>(g.find(name))->records();
    decisions.insert(decisions.end(), recs.begin(), recs.end());
  }
  ASSERT_EQ(decisions.size(), trace.size());
  uint64_t mismatches = 0;
  for (const auto& d : decisions) {
    const bool shadowed = d.index >= insert_at && d.index < erase_at;
    const NuevoMatch& oracle = shadowed ? shadow_oracle : base_oracle;
    if (oracle.match(trace[d.index]).rule_id != d.rule_id) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u)
      << "pipeline decisions diverged from the scalar oracle";

  // The differential is only meaningful if the cache served real hits.
  const FlowCache::Stats cs =
      g.find_kind<pipeline::FlowCacheElement>()->cache().stats();
  EXPECT_GT(cs.hits, 0u) << "flow cache never hit - differential vacuous";
  EXPECT_GT(cs.stale, 0u) << "updates should have invalidated cached entries";
}

// A Classifier sitting on a Dispatch leg must still honor the upstream
// FlowCache's fill obligation: the cache-fill note travels with the split
// bursts, so misses routed through Dispatch get cached and a second pass
// over the same traffic HITS.
TEST(DispatchTest, CacheFillNoteSurvivesTheSplit) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 300, 21);
  auto online = make_online(rules);
  std::vector<Packet> pkts = representative_packets(rules, 21);
  pkts.resize(64);

  Graph g;
  auto& src = g.add(std::make_unique<pipeline::TraceSource>(pkts), "src");
  auto& cache = g.add(std::make_unique<pipeline::FlowCacheElement>(1024), "cache");
  auto& disp = g.add(
      std::make_unique<pipeline::Dispatch>(std::vector<std::string>{"all"}), "disp");
  auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
  cls_owned->attach(online);
  auto& cls = g.add(std::move(cls_owned), "cls");
  auto& sink = g.add(std::make_unique<pipeline::Sink>(), "sink");
  g.connect(src, 0, cache);
  g.connect(cache, 0, disp);
  g.connect(disp, 0, cls);
  g.connect(cls, 0, sink);

  g.run();  // first pass: all misses, fills through the Dispatch leg
  EXPECT_EQ(cache.cache().stats().hits, 0u);
  src.rewind();
  g.run();  // second pass: the fills must have landed
  EXPECT_EQ(cache.cache().stats().hits, pkts.size());
}

// --- golden fixtures ---------------------------------------------------------

// The CI example smoke runs example_pipeline_router over checked-in fixtures
// (examples/data/golden64.pcap + router_acl.rules). This test pins their
// provenance: regenerating them from the recipe must reproduce the committed
// bytes, so the fixtures can never silently drift from the generator (and a
// corrupted checkout fails here, not in CI archaeology).
TEST(GoldenData, CheckedInFixturesMatchTheGeneratorRecipe) {
  // THE RECIPE (keep in sync with examples/data/README.md): ClassBench
  // acl variant 1, 256 rules, seed 5; one representative packet per rule,
  // first 64, ports zeroed for port-less protocols; default pcap options.
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 256, 5);
  std::vector<Packet> pkts = representative_packets(rules, 5);
  pkts.resize(64);
  for (Packet& p : pkts) {
    if (!proto_has_ports(static_cast<uint8_t>(p[kProto]))) {
      p.field[kSrcPort] = 0;
      p.field[kDstPort] = 0;
    }
  }
  const std::string regen = tmp_path("golden_regen.pcap");
  ASSERT_TRUE(write_pcap_packets(regen, pkts));

  const auto slurp = [](const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    EXPECT_TRUE(in.good()) << path;
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
  };
  const std::string root = NM_SOURCE_ROOT;
  EXPECT_EQ(slurp(regen), slurp(root + "/examples/data/golden64.pcap"))
      << "golden64.pcap no longer matches its generator recipe";

  std::ostringstream rules_text;
  write_classbench(rules_text, rules);
  EXPECT_EQ(rules_text.str(), slurp(root + "/examples/data/router_acl.rules"))
      << "router_acl.rules no longer matches its generator recipe";
}

// TraceSource bursts are exactly kBurstSize except the tail.
TEST(PipelineEndToEnd, BurstBoundaries) {
  std::vector<Packet> pkts(kBurstSize * 2 + 5);
  Graph g;
  auto& src = g.add(std::make_unique<pipeline::TraceSource>(pkts), "src");
  auto& counter = g.add(std::make_unique<pipeline::Counter>(), "c");
  g.connect(src, 0, counter);
  EXPECT_EQ(g.run(), pkts.size());
  EXPECT_EQ(counter.packets(), pkts.size());
  EXPECT_EQ(counter.bursts(), 3u);
}

}  // namespace
}  // namespace nuevomatch
