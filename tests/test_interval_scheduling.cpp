// Interval scheduling maximization vs exhaustive search, plus the paper's
// diversity/centrality metrics (§3.7).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isets/interval_scheduling.hpp"

namespace nuevomatch {
namespace {

RuleSet random_rules(size_t n, uint64_t seed, uint32_t domain = 1000) {
  Rng rng{seed};
  RuleSet rules(n);
  for (auto& r : rules) {
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
    const auto lo = static_cast<uint32_t>(rng.below(domain));
    const auto hi = static_cast<uint32_t>(std::min<uint64_t>(domain - 1, lo + rng.below(domain / 4)));
    r.field[kDstIp] = Range{lo, hi};
  }
  canonicalize(rules);
  return rules;
}

/// Exhaustive maximum independent set over one field (n <= ~16).
size_t brute_force_best(const RuleSet& rules, int field) {
  const size_t n = rules.size();
  size_t best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool ok = true;
    for (size_t i = 0; i < n && ok; ++i) {
      if (!(mask & (1u << i))) continue;
      for (size_t j = i + 1; j < n && ok; ++j) {
        if (!(mask & (1u << j))) continue;
        if (rules[i].field[static_cast<size_t>(field)].overlaps(
                rules[j].field[static_cast<size_t>(field)]))
          ok = false;
      }
    }
    if (ok) best = std::max(best, static_cast<size_t>(__builtin_popcount(mask)));
  }
  return best;
}

class SchedulingOptimality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulingOptimality, GreedyMatchesBruteForce) {
  const RuleSet rules = random_rules(12, GetParam());
  const auto greedy = max_independent_set(rules, kDstIp);
  EXPECT_EQ(greedy.size(), brute_force_best(rules, kDstIp));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingOptimality, ::testing::Range<uint64_t>(1, 25));

TEST(Scheduling, OutputIsDisjointAndSorted) {
  const RuleSet rules = random_rules(500, 77);
  const auto set = max_independent_set(rules, kDstIp);
  for (size_t i = 1; i < set.size(); ++i) {
    const Range& prev = rules[set[i - 1]].field[kDstIp];
    const Range& cur = rules[set[i]].field[kDstIp];
    EXPECT_LT(prev.hi, cur.lo);
  }
}

TEST(Scheduling, AllDisjointInputTakenWhole) {
  RuleSet rules(100);
  for (size_t i = 0; i < rules.size(); ++i) {
    for (int f = 0; f < kNumFields; ++f) rules[i].field[static_cast<size_t>(f)] = full_range(f);
    rules[i].field[kDstIp] = Range{static_cast<uint32_t>(i * 10),
                                   static_cast<uint32_t>(i * 10 + 5)};
  }
  canonicalize(rules);
  EXPECT_EQ(max_independent_set(rules, kDstIp).size(), rules.size());
}

TEST(Scheduling, AllOverlappingInputYieldsOne) {
  RuleSet rules(50);
  for (auto& r : rules) {
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
  }
  canonicalize(rules);
  EXPECT_EQ(max_independent_set(rules, kDstIp).size(), 1u);
}

TEST(Scheduling, EmptyInput) {
  EXPECT_TRUE(max_independent_set({}, kDstIp).empty());
}

TEST(Diversity, ExactMatchDiversity) {
  RuleSet rules(10);
  for (size_t i = 0; i < rules.size(); ++i) {
    for (int f = 0; f < kNumFields; ++f) rules[i].field[static_cast<size_t>(f)] = full_range(f);
    rules[i].field[kDstPort] = Range{static_cast<uint32_t>(i % 5), static_cast<uint32_t>(i % 5)};
  }
  canonicalize(rules);
  EXPECT_DOUBLE_EQ(ruleset_diversity(rules, kDstPort), 0.5);
  EXPECT_DOUBLE_EQ(ruleset_diversity({}, kDstPort), 0.0);
}

TEST(Diversity, UpperBoundsLargestIsetFraction) {
  // Paper §3.7: diversity upper-bounds the largest iSet's fraction for
  // exact-match fields.
  Rng rng{5};
  RuleSet rules(200);
  for (auto& r : rules) {
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
    const auto v = static_cast<uint32_t>(rng.below(37));
    r.field[kDstPort] = Range{v, v};
  }
  canonicalize(rules);
  const double diversity = ruleset_diversity(rules, kDstPort);
  const double largest =
      static_cast<double>(max_independent_set(rules, kDstPort).size()) /
      static_cast<double>(rules.size());
  EXPECT_LE(largest, diversity + 1e-12);
}

TEST(Centrality, MaxOverlapDepth) {
  RuleSet rules(3);
  for (auto& r : rules)
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
  rules[0].field[kDstIp] = Range{0, 100};
  rules[1].field[kDstIp] = Range{50, 150};
  rules[2].field[kDstIp] = Range{200, 300};
  canonicalize(rules);
  EXPECT_EQ(ruleset_centrality(rules, kDstIp), 2u);
}

TEST(Centrality, LowerBoundsIsetCount) {
  // A set with centrality k needs >= k iSets for full coverage in that field.
  RuleSet rules(8);
  for (size_t i = 0; i < rules.size(); ++i) {
    for (int f = 0; f < kNumFields; ++f) rules[i].field[static_cast<size_t>(f)] = full_range(f);
    rules[i].field[kDstIp] = Range{0, static_cast<uint32_t>(100 + i)};  // all share 0
  }
  canonicalize(rules);
  EXPECT_EQ(ruleset_centrality(rules, kDstIp), rules.size());
  EXPECT_EQ(max_independent_set(rules, kDstIp).size(), 1u);
}

}  // namespace
}  // namespace nuevomatch
