#include <gtest/gtest.h>

#include "common/types.hpp"

namespace nuevomatch {
namespace {

TEST(Range, ContainsEndpoints) {
  const Range r{10, 20};
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(20));
  EXPECT_TRUE(r.contains(15));
  EXPECT_FALSE(r.contains(9));
  EXPECT_FALSE(r.contains(21));
}

TEST(Range, OverlapsIsSymmetricAndInclusive) {
  const Range a{0, 10};
  const Range b{10, 20};
  const Range c{21, 30};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c) == c.overlaps(b));
}

TEST(Range, SpanHandlesFullDomain) {
  EXPECT_EQ((Range{0, 0xFFFFFFFFu}).span(), 0x100000000ull);
  EXPECT_EQ((Range{5, 5}).span(), 1ull);
}

TEST(Range, FullRangePerField) {
  EXPECT_EQ(full_range(kSrcIp).hi, 0xFFFFFFFFu);
  EXPECT_EQ(full_range(kSrcPort).hi, 0xFFFFu);
  EXPECT_EQ(full_range(kProto).hi, 0xFFu);
}

TEST(Rule, MatchesAllFieldsConjunctively) {
  Rule r;
  r.field[kSrcIp] = {100, 200};
  r.field[kDstIp] = full_range(kDstIp);
  r.field[kSrcPort] = full_range(kSrcPort);
  r.field[kDstPort] = {80, 80};
  r.field[kProto] = {6, 6};
  Packet p{{150, 42, 1234, 80, 6}};
  EXPECT_TRUE(r.matches(p));
  p.field[kDstPort] = 81;
  EXPECT_FALSE(r.matches(p));
  p.field[kDstPort] = 80;
  p.field[kSrcIp] = 99;
  EXPECT_FALSE(r.matches(p));
}

TEST(Rule, WildcardDetection) {
  Rule r;
  for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
  EXPECT_TRUE(r.is_wildcard(kSrcIp));
  r.field[kSrcIp] = {0, 10};
  EXPECT_FALSE(r.is_wildcard(kSrcIp));
}

TEST(MatchResult, BeatsPrefersLowerPriorityValue) {
  const MatchResult a{1, 5};
  const MatchResult b{2, 7};
  EXPECT_TRUE(a.beats(b));
  EXPECT_FALSE(b.beats(a));
}

TEST(MatchResult, BeatsBreaksTiesById) {
  const MatchResult a{1, 5};
  const MatchResult b{2, 5};
  EXPECT_TRUE(a.beats(b));
  EXPECT_FALSE(b.beats(a));
}

TEST(MatchResult, MissNeverBeats) {
  const MatchResult miss;
  const MatchResult hit{0, 100};
  EXPECT_FALSE(miss.beats(hit));
  EXPECT_TRUE(hit.beats(miss));
  EXPECT_FALSE(miss.beats(miss));
  EXPECT_FALSE(miss.hit());
}

TEST(RuleSet, CanonicalizeAssignsDenseIdsAndPriorities) {
  RuleSet rules(5);
  canonicalize(rules);
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, i);
    EXPECT_EQ(rules[i].priority, static_cast<int32_t>(i));
  }
}

TEST(RuleSet, ValidateAcceptsCanonical) {
  RuleSet rules(3);
  for (auto& r : rules)
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
  canonicalize(rules);
  EXPECT_EQ(validate_ruleset(rules), "");
}

TEST(RuleSet, ValidateRejectsInvertedRange) {
  RuleSet rules(1);
  canonicalize(rules);
  rules[0].field[kSrcIp] = {10, 5};
  EXPECT_NE(validate_ruleset(rules), "");
}

TEST(RuleSet, ValidateRejectsDomainOverflow) {
  RuleSet rules(1);
  canonicalize(rules);
  rules[0].field[kSrcPort] = {0, 0x10000};
  EXPECT_NE(validate_ruleset(rules), "");
}

TEST(RuleSet, ValidateRejectsDuplicateIds) {
  RuleSet rules(2);
  canonicalize(rules);
  rules[1].id = 0;
  EXPECT_NE(validate_ruleset(rules), "");
}

TEST(ToString, RendersRuleAndPacket) {
  Rule r;
  canonicalize(*new RuleSet{});  // no-op sanity for empty set
  r.id = 3;
  r.priority = 1;
  EXPECT_NE(to_string(r).find("rule{id=3"), std::string::npos);
  Packet p{{1, 2, 3, 4, 5}};
  EXPECT_EQ(to_string(p), "pkt{1 2 3 4 5}");
  EXPECT_EQ(to_string(Range{1, 2}), "[1,2]");
}

}  // namespace
}  // namespace nuevomatch
