#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/zipf.hpp"

namespace nuevomatch {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c{124};
  bool all_equal = true;
  Rng a2{123};
  for (int i = 0; i < 10; ++i) all_equal &= (a2.next_u64() == c.next_u64());
  EXPECT_FALSE(all_equal);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng{5};
  for (uint64_t n : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng{6};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng{8};
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.next_double();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Zipf, FrequenciesDecreaseByRank) {
  const ZipfSampler z{100, 1.1};
  Rng rng{9};
  std::array<int, 100> counts{};
  for (int i = 0; i < 200000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[50]);
}

TEST(Zipf, TopShareMatchesPaperCalibration) {
  // Figure 12: with alpha=1.05 the top 3% of 500K flows should carry
  // roughly 80% of the traffic (the paper's axis labeling).
  const ZipfSampler z{500'000, 1.05};
  const double share = z.top_share(500'000 * 3 / 100);
  EXPECT_GT(share, 0.70);
  EXPECT_LT(share, 0.92);
}

TEST(Zipf, AlphaLookupMatchesFigure12) {
  EXPECT_DOUBLE_EQ(zipf_alpha_for_top3_share(0.80), 1.05);
  EXPECT_DOUBLE_EQ(zipf_alpha_for_top3_share(0.85), 1.10);
  EXPECT_DOUBLE_EQ(zipf_alpha_for_top3_share(0.90), 1.15);
  EXPECT_DOUBLE_EQ(zipf_alpha_for_top3_share(0.95), 1.25);
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument); }

TEST(Zipf, SingleItemAlwaysSampled) {
  const ZipfSampler z{1, 1.0};
  Rng rng{10};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.118, 1e-3);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 2.0);
  const std::vector<double> ones{1, 1, 1};
  EXPECT_DOUBLE_EQ(geometric_mean(ones), 1.0);
}

TEST(Stats, Percentile) {
  const std::vector<double> xs{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

}  // namespace
}  // namespace nuevomatch
