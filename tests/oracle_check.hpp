// Shared test helper: compare any classifier against the LinearSearch oracle
// on generated traces. Used by every engine's equivalence suite.
#pragma once

#include <gtest/gtest.h>

#include "classifiers/classifier.hpp"
#include "classifiers/linear.hpp"
#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace nuevomatch::testing_support {

/// Assert `cls` and the oracle agree on every packet of a trace drawn from
/// `rules` plus some guaranteed-miss packets.
inline void expect_matches_oracle(Classifier& cls, const RuleSet& rules,
                                  size_t n_packets = 4000, uint64_t seed = 123) {
  LinearSearch oracle;
  oracle.build(rules);

  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kUniform;
  tc.n_packets = n_packets;
  tc.seed = seed;
  const auto trace = generate_trace(rules, tc);
  for (size_t i = 0; i < trace.size(); ++i) {
    const MatchResult expect = oracle.match(trace[i]);
    const MatchResult got = cls.match(trace[i]);
    ASSERT_EQ(got.rule_id, expect.rule_id)
        << cls.name() << " diverges from oracle on packet " << i << ": "
        << to_string(trace[i]) << " expected rule " << expect.rule_id << " got "
        << got.rule_id;
  }

  // Random packets (mostly misses / partial matches).
  Rng rng{seed ^ 0xFACE};
  for (int i = 0; i < 500; ++i) {
    Packet p;
    for (int f = 0; f < kNumFields; ++f)
      p.field[static_cast<size_t>(f)] =
          static_cast<uint32_t>(rng.below(kFieldDomain[static_cast<size_t>(f)] + 1));
    const MatchResult expect = oracle.match(p);
    const MatchResult got = cls.match(p);
    ASSERT_EQ(got.rule_id, expect.rule_id)
        << cls.name() << " diverges on random packet " << to_string(p);
  }
}

/// Assert match_with_floor is consistent with match for any engine: it must
/// return the same rule when the floor does not exclude it, and a miss (or a
/// strictly better rule) when it does.
inline void expect_floor_consistency(Classifier& cls, const RuleSet& rules,
                                     uint64_t seed = 321) {
  TraceConfig tc;
  tc.n_packets = 600;
  tc.seed = seed;
  const auto trace = generate_trace(rules, tc);
  for (const Packet& p : trace) {
    const MatchResult full = cls.match(p);
    if (!full.hit()) continue;
    const MatchResult same = cls.match_with_floor(p, full.priority + 1);
    ASSERT_EQ(same.rule_id, full.rule_id) << cls.name();
    const MatchResult cut = cls.match_with_floor(p, full.priority);
    ASSERT_FALSE(cut.hit()) << cls.name() << ": floor at own priority must exclude";
  }
}

}  // namespace nuevomatch::testing_support
