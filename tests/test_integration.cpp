// Cross-engine integration: every classifier in the repo must agree with
// every other on identical workloads, across traffic models — the strongest
// end-to-end consistency property we can state.
#include <gtest/gtest.h>

#include <memory>

#include "classbench/generator.hpp"
#include "classbench/stanford.hpp"
#include "classifiers/linear.hpp"
#include "cutsplit/cutsplit.hpp"
#include "neurocuts/neurocuts.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

std::vector<std::unique_ptr<Classifier>> all_engines() {
  std::vector<std::unique_ptr<Classifier>> out;
  out.push_back(std::make_unique<LinearSearch>());
  out.push_back(std::make_unique<TupleMerge>());
  out.push_back(std::make_unique<TupleSpaceSearch>());
  out.push_back(std::make_unique<CutSplit>());
  NeuroCutsConfig nc;
  nc.search_iterations = 4;
  out.push_back(std::make_unique<NeuroCutsLike>(nc));
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  out.push_back(std::make_unique<NuevoMatch>(cfg));
  return out;
}

struct WorkloadCase {
  AppClass app;
  int variant;
  size_t n;
  TraceConfig::Kind traffic;
  friend std::ostream& operator<<(std::ostream& os, const WorkloadCase& c) {
    os << ruleset_name(c.app, c.variant) << "_n" << c.n << "_";
    switch (c.traffic) {
      case TraceConfig::Kind::kUniform: return os << "uniform";
      case TraceConfig::Kind::kZipf: return os << "zipf";
      case TraceConfig::Kind::kCaidaLike: return os << "caida";
    }
    return os;
  }
};

class CrossEngine : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(CrossEngine, AllEnginesAgree) {
  const auto& c = GetParam();
  const RuleSet rules = generate_classbench(c.app, c.variant, c.n, 17);
  auto engines = all_engines();
  for (auto& e : engines) e->build(rules);

  TraceConfig tc;
  tc.kind = c.traffic;
  tc.n_packets = 1200;
  tc.zipf_alpha = 1.15;
  const auto trace = generate_trace(rules, tc);
  for (const Packet& p : trace) {
    const MatchResult truth = engines[0]->match(p);  // linear oracle
    for (size_t e = 1; e < engines.size(); ++e) {
      const MatchResult got = engines[e]->match(p);
      ASSERT_EQ(got.rule_id, truth.rule_id)
          << engines[e]->name() << " vs oracle on " << to_string(p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrossEngine,
    ::testing::Values(
        WorkloadCase{AppClass::kAcl, 1, 1500, TraceConfig::Kind::kUniform},
        WorkloadCase{AppClass::kAcl, 2, 1500, TraceConfig::Kind::kZipf},
        WorkloadCase{AppClass::kFw, 1, 1500, TraceConfig::Kind::kUniform},
        WorkloadCase{AppClass::kFw, 3, 1000, TraceConfig::Kind::kCaidaLike},
        WorkloadCase{AppClass::kIpc, 1, 1500, TraceConfig::Kind::kZipf},
        WorkloadCase{AppClass::kIpc, 2, 800, TraceConfig::Kind::kUniform}));

TEST(CrossEngineStanford, AllEnginesAgreeOnForwarding) {
  const RuleSet rules = generate_stanford_like(2, 8000, 18);
  auto engines = all_engines();
  for (auto& e : engines) e->build(rules);
  TraceConfig tc;
  tc.n_packets = 1500;
  for (const Packet& p : generate_trace(rules, tc)) {
    const MatchResult truth = engines[0]->match(p);
    for (size_t e = 1; e < engines.size(); ++e)
      ASSERT_EQ(engines[e]->match(p).rule_id, truth.rule_id) << engines[e]->name();
  }
}

TEST(MemoryAccounting, EveryEngineReportsNonTrivialIndex) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 2000, 19);
  for (auto& e : all_engines()) {
    e->build(rules);
    EXPECT_GT(e->memory_bytes(), 0u) << e->name();
    EXPECT_EQ(e->size(), rules.size()) << e->name();
  }
}

TEST(MemoryAccounting, NuevoMatchModelsAreCacheSized) {
  // Paper §5.2.1: RQ-RMI sizes stay within L1/L2-scale regardless of rule
  // count; verify the model part is tiny relative to the rule bodies.
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 20'000, 20);
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  NuevoMatch nm{cfg};
  nm.build(rules);
  size_t model_bytes = 0;
  for (const auto& is : nm.isets()) model_bytes += is.model_bytes();
  EXPECT_LT(model_bytes, 128 * 1024u);
  EXPECT_LT(model_bytes, rules.size() * sizeof(Rule) / 4);
}

}  // namespace
}  // namespace nuevomatch
