// Fault-tolerant online serving (DESIGN.md "Failure model"): injected
// retrain/build/replay failures must never corrupt classification — the
// engine keeps serving the old generation + churn delta oracle-exactly,
// records the error it used to swallow, retries under seeded exponential
// backoff, degrades gracefully at the consecutive-failure limit, and
// recovers through retrain_now(). Overload control (kShed / kBlock) bounds
// the churn delta without ever dropping an accepted update.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "classbench/generator.hpp"
#include "classifiers/linear.hpp"
#include "common/failpoint.hpp"
#include "nuevomatch/online.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

using failpoint::Trigger;

OnlineConfig make_cfg() {
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.auto_retrain = false;
  cfg.backoff_initial_ms = 4;   // keep fault drills fast
  cfg.backoff_max_ms = 32;
  return cfg;
}

/// Fresh rules with ids disjoint from any classbench base set. Priorities
/// derive from the id so every extra across every batch in one test is
/// unique — equal priorities would make the engine/oracle winner ambiguous.
RuleSet make_extras(size_t n, uint32_t id0, uint64_t seed) {
  RuleSet extras = generate_classbench(AppClass::kFw, 2, n, seed);
  for (size_t i = 0; i < extras.size(); ++i) {
    extras[i].id = id0 + static_cast<uint32_t>(i);
    extras[i].priority = -static_cast<int32_t>(id0 % 100'000 + i) - 1;
  }
  return extras;
}

void expect_oracle_exact(const Classifier& engine, const RuleSet& logical,
                         uint64_t seed) {
  LinearSearch oracle;
  oracle.build(logical);
  TraceConfig tc;
  tc.n_packets = 2000;
  tc.seed = seed;
  for (const Packet& p : generate_trace(logical, tc))
    ASSERT_EQ(engine.match(p).rule_id, oracle.match(p).rule_id) << to_string(p);
}

// Satellite #1: the exception retrain_cycle() used to swallow is recorded —
// and with max_retrain_failures=1 the first failure degrades immediately
// (no retry), so the post-quiesce state is fully deterministic.
TEST(FaultRetrain, FailureRecordsErrorAndDegradesAtLimit) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 800, 301);
  OnlineConfig cfg = make_cfg();
  cfg.max_retrain_failures = 1;
  OnlineNuevoMatch online{cfg};
  online.build(rules);
  ASSERT_EQ(online.generations(), 1u);

  failpoint::arm(failpoint::kOnlineRetrain, Trigger::always());
  online.retrain_now();
  online.quiesce();

  EngineHealth h = online.health();
  EXPECT_FALSE(h.ok());
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.retrain_failures, 1u);
  EXPECT_EQ(h.retrain_failures_total, 1u);
  EXPECT_NE(h.last_error.find("online.retrain"), std::string::npos)
      << "the injected exception's what() must surface: " << h.last_error;
  EXPECT_FALSE(h.in_backoff);
  EXPECT_EQ(online.generations(), 1u) << "no broken generation may publish";
  expect_oracle_exact(online, rules, 302);  // degraded serving stays exact

  // Operator recovery: disarm the fault, force a retrain.
  failpoint::disarm(failpoint::kOnlineRetrain);
  online.retrain_now();
  online.quiesce();
  h = online.health();
  EXPECT_TRUE(h.ok());
  EXPECT_FALSE(h.degraded);
  EXPECT_EQ(h.retrain_failures, 0u);
  EXPECT_EQ(h.retrain_failures_total, 1u) << "lifetime counter never resets";
  EXPECT_TRUE(h.last_error.empty());
  EXPECT_EQ(online.generations(), 2u);
  expect_oracle_exact(online, rules, 303);
}

// Below the degraded limit, failures self-heal: fail twice, back off twice,
// succeed on the third attempt with no operator involvement.
TEST(FaultRetrain, BackoffRetryAutoRecovers) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 700, 311);
  OnlineConfig cfg = make_cfg();
  cfg.max_retrain_failures = 5;
  OnlineNuevoMatch online{cfg};
  online.build(rules);

  failpoint::Scoped arm{failpoint::kOnlineRetrain, Trigger::first(2)};
  online.retrain_now();
  online.quiesce();  // waits through fail -> backoff -> fail -> backoff -> swap

  EXPECT_EQ(failpoint::fires(failpoint::kOnlineRetrain), 2u);
  const EngineHealth h = online.health();
  EXPECT_TRUE(h.ok());
  EXPECT_FALSE(h.degraded);
  EXPECT_EQ(h.retrain_failures, 0u);
  EXPECT_EQ(h.retrain_failures_total, 2u);
  EXPECT_TRUE(h.last_error.empty());
  EXPECT_EQ(online.generations(), 2u);
  expect_oracle_exact(online, rules, 312);
}

// Degraded mode suppresses auto-retrain (no failure loop under churn) but
// keeps absorbing updates exactly; retrain_now() is the way out.
TEST(FaultRetrain, DegradedSuppressesAutoRetrainUntilForced) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 800, 321);
  OnlineConfig cfg = make_cfg();
  cfg.auto_retrain = true;
  cfg.retrain_threshold = 0.001;  // any insert crosses it
  cfg.max_retrain_failures = 1;
  OnlineNuevoMatch online{cfg};
  online.build(rules);

  failpoint::arm(failpoint::kOnlineRetrain, Trigger::always());
  const RuleSet extras = make_extras(40, 100'000, 322);
  ASSERT_EQ(online.insert_batch(extras), extras.size());  // triggers retrain
  online.quiesce();
  ASSERT_TRUE(online.health().degraded);
  const uint64_t fired_at_degrade = failpoint::fires(failpoint::kOnlineRetrain);

  // Further auto-triggering inserts are absorbed but spawn no new attempts.
  const RuleSet extras2 = make_extras(40, 110'000, 323);
  ASSERT_EQ(online.insert_batch(extras2), extras2.size());
  online.quiesce();
  EXPECT_EQ(failpoint::fires(failpoint::kOnlineRetrain), fired_at_degrade)
      << "degraded mode must not auto-retry into the same fault";
  EXPECT_EQ(online.generations(), 1u);
  EXPECT_EQ(online.size(), rules.size() + extras.size() + extras2.size());

  RuleSet logical = rules;
  logical.insert(logical.end(), extras.begin(), extras.end());
  logical.insert(logical.end(), extras2.begin(), extras2.end());
  expect_oracle_exact(online, logical, 324);  // exact while degraded

  failpoint::disarm(failpoint::kOnlineRetrain);
  online.retrain_now();
  online.quiesce();
  const EngineHealth h = online.health();
  EXPECT_TRUE(h.ok());
  EXPECT_EQ(online.generations(), 2u);
  EXPECT_DOUBLE_EQ(h.absorption, 0.0) << "swap absorbed the churn delta";
  expect_oracle_exact(online, logical, 325);
}

// An initial build() failure falls back to remainder-only classification:
// every rule lands in the remainder engine, answers stay oracle-exact, and
// health() reports the degradation instead of the constructor throwing away
// the serving path.
TEST(FaultBuild, InitialBuildFallsBackToRemainderOnly) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 900, 331);
  OnlineNuevoMatch online{make_cfg()};

  failpoint::arm(failpoint::kOnlineBuild, Trigger::always());
  online.build(rules);  // must not throw
  failpoint::disarm(failpoint::kOnlineBuild);

  EngineHealth h = online.health();
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.retrain_failures, 1u);
  EXPECT_NE(h.last_error.find("initial build"), std::string::npos)
      << h.last_error;
  EXPECT_EQ(online.generations(), 1u);
  EXPECT_EQ(online.size(), rules.size());
  expect_oracle_exact(online, rules, 332);  // remainder-only, still exact

  // Recovery trains the real RQ-RMI index over the same logical rule-set.
  online.retrain_now();
  online.quiesce();
  h = online.health();
  EXPECT_TRUE(h.ok());
  EXPECT_FALSE(h.degraded);
  EXPECT_TRUE(h.last_error.empty());
  EXPECT_EQ(online.generations(), 2u);
  expect_oracle_exact(online, rules, 333);
}

// A replay failure mid-swap abandons the cycle without losing any journaled
// update: the retry replays the same logical state and the final rule count
// and answers account for every accepted insert.
TEST(FaultReplay, ReplayFailureLosesNoUpdates) {
  // A rule-set large enough that training holds the journal open for many
  // milliseconds — the window the drill below must land an insert in.
  const RuleSet rules = generate_classbench(AppClass::kAcl, 3, 4000, 341);
  OnlineNuevoMatch online{make_cfg()};
  online.build(rules);

  RuleSet inserted;
  uint32_t next_id = 200'000;
  uint64_t replay_fired = 0;
  // The journal only fills while a retrain is in flight, so inject ops into
  // that window: the instant retrain_now() is requested, feed inserts until
  // one lands in the journal (journal_depth > 0 guarantees the replay loop —
  // and its failpoint — runs) or the cycle ends. No wait-for-start spin:
  // retrain_now() marks the retrain pending synchronously, and if the
  // scheduler lets the whole cycle finish before an insert lands, the
  // attempt just retries. The deadline bounds a pathological scheduler.
  for (int attempt = 0; attempt < 20 && replay_fired == 0; ++attempt) {
    failpoint::arm(failpoint::kOnlineReplay, Trigger::first(1));
    online.retrain_now();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (online.retrain_in_progress() && online.health().journal_depth == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      RuleSet one = make_extras(1, next_id++, 342);
      if (online.insert_batch(one) == 1) inserted.push_back(one[0]);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    online.quiesce();
    replay_fired = failpoint::fires(failpoint::kOnlineReplay);
    failpoint::disarm(failpoint::kOnlineReplay);
  }
  ASSERT_GT(replay_fired, 0u) << "drill never caught the replay window";

  const EngineHealth h = online.health();
  EXPECT_GE(h.retrain_failures_total, 1u) << "the abandoned cycle must count";
  EXPECT_TRUE(h.ok()) << "the retry (failpoint exhausted) must recover";
  EXPECT_EQ(online.size(), rules.size() + inserted.size())
      << "no journaled insert may be lost across abandon + retry";
  RuleSet logical = rules;
  logical.insert(logical.end(), inserted.begin(), inserted.end());
  expect_oracle_exact(online, logical, 343);
}

// kShed: inserts beyond max_churn_rules are refused (prefix acceptance,
// shed_ops counted); erases and swaps free capacity.
TEST(FaultOverload, ShedCapsChurnAndCountsRefusals) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 600, 351);
  OnlineConfig cfg = make_cfg();
  cfg.max_churn_rules = 10;
  cfg.overload_policy = OverloadPolicy::kShed;
  OnlineNuevoMatch online{cfg};
  online.build(rules);

  const RuleSet extras = make_extras(30, 300'000, 352);
  EXPECT_EQ(online.insert_batch(extras), 10u) << "cap admits a prefix";
  EngineHealth h = online.health();
  EXPECT_EQ(h.churn_rules, 10u);
  EXPECT_EQ(h.shed_ops, 20u);
  EXPECT_FALSE(online.insert(extras[10]));  // full: scalar insert refused
  EXPECT_EQ(online.health().shed_ops, 21u);
  EXPECT_EQ(online.size(), rules.size() + 10);

  // The accepted prefix — and only it — is serving.
  RuleSet logical = rules;
  logical.insert(logical.end(), extras.begin(), extras.begin() + 10);
  expect_oracle_exact(online, logical, 353);

  // Erases always pass and free capacity for new inserts.
  const std::vector<uint32_t> victims{300'000, 300'001, 300'002};
  EXPECT_EQ(online.erase_batch(victims), victims.size());
  EXPECT_EQ(online.insert_batch(std::span{extras}.subspan(10, 5)), 3u);
  EXPECT_EQ(online.health().churn_rules, 10u);

  // A swap drains the delta entirely: full capacity returns.
  online.retrain_now();
  online.quiesce();
  EXPECT_EQ(online.health().churn_rules, 0u);
  EXPECT_EQ(online.insert_batch(std::span{extras}.subspan(20, 8)), 8u);
}

// kBlock: a writer over the cap waits for capacity instead of shedding, and
// proceeds the moment an erase frees room; with no relief it sheds only
// after the configured timeout.
TEST(FaultOverload, BlockWaitsForCapacityThenShedsOnTimeout) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 600, 361);
  OnlineConfig cfg = make_cfg();
  cfg.max_churn_rules = 8;
  cfg.overload_policy = OverloadPolicy::kBlock;
  cfg.overload_block_timeout_ms = 2000;
  OnlineNuevoMatch online{cfg};
  online.build(rules);

  const RuleSet first = make_extras(8, 400'000, 362);
  ASSERT_EQ(online.insert_batch(first), 8u);  // exactly at the cap

  const RuleSet more = make_extras(4, 400'100, 363);
  std::atomic<size_t> accepted{~size_t{0}};
  std::thread writer{[&] { accepted.store(online.insert_batch(more)); }};
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::vector<uint32_t> victims{400'000, 400'001, 400'002, 400'003};
  EXPECT_EQ(online.erase_batch(victims), victims.size());  // frees 4 slots
  writer.join();
  EXPECT_EQ(accepted.load(), 4u) << "blocked writer must admit the batch "
                                    "once erases free capacity";
  EngineHealth h = online.health();
  EXPECT_EQ(h.shed_ops, 0u);
  EXPECT_EQ(h.churn_rules, 8u);

  // Timeout path on a separate engine with a short fuse and no relief.
  OnlineConfig tcfg = cfg;
  tcfg.overload_block_timeout_ms = 50;
  OnlineNuevoMatch timed{tcfg};
  timed.build(rules);
  ASSERT_EQ(timed.insert_batch(first), 8u);
  const RuleSet overflow = make_extras(3, 400'200, 364);
  EXPECT_EQ(timed.insert_batch(overflow), 0u);
  EXPECT_EQ(timed.health().shed_ops, 3u);
}

// health() on an untroubled engine: the all-clear snapshot.
TEST(FaultHealth, SnapshotReflectsSteadyState) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 500, 371);
  OnlineNuevoMatch online{make_cfg()};
  online.build(rules);

  EngineHealth h = online.health();
  EXPECT_TRUE(h.ok());
  EXPECT_FALSE(h.degraded);
  EXPECT_EQ(h.generation, 1u);
  EXPECT_EQ(h.retrain_failures, 0u);
  EXPECT_EQ(h.retrain_failures_total, 0u);
  EXPECT_TRUE(h.last_error.empty());
  EXPECT_FALSE(h.retrain_pending);
  EXPECT_FALSE(h.in_backoff);
  EXPECT_EQ(h.journal_depth, 0u);
  EXPECT_EQ(h.churn_rules, 0u);
  EXPECT_EQ(h.shed_ops, 0u);
  EXPECT_DOUBLE_EQ(h.absorption, 0.0);

  const RuleSet extras = make_extras(12, 500'000, 372);
  ASSERT_EQ(online.insert_batch(extras), extras.size());
  h = online.health();
  EXPECT_EQ(h.churn_rules, extras.size());
  EXPECT_GT(h.absorption, 0.0);
  EXPECT_TRUE(h.ok()) << "churn alone is not a fault";
}

}  // namespace
}  // namespace nuevomatch
