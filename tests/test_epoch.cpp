// epoch::Domain — the grow-on-demand chunked slot directory (ROADMAP item
// retired in PR 5): oversubscribing the registered-reader slots must GROW
// capacity instead of spinning, previously-claimed slot indices must stay
// valid across growth (chunks never move), and the reclamation protocol
// must stay exact while readers occupy slots in late chunks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "nuevomatch/epoch.hpp"

namespace nuevomatch::epoch {
namespace {

TEST(EpochDomain, OversubscriptionGrowsInsteadOfSpinning) {
  Domain d;
  EXPECT_EQ(d.capacity(), Domain::kInitialSlots);

  // Claim far more slots than one chunk holds WITHOUT exiting any — the
  // pre-growth Domain would spin forever right here.
  constexpr size_t kClaim = Domain::kInitialSlots * 3 + 7;
  std::vector<size_t> slots;
  slots.reserve(kClaim);
  for (size_t i = 0; i < kClaim; ++i) slots.push_back(d.enter());
  EXPECT_GE(d.capacity(), kClaim);

  // Every claim got a distinct slot.
  std::vector<size_t> sorted = slots;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());

  // All readers are announced; releasing them all quiesces the domain.
  EXPECT_NE(d.min_active(), kQuiescent);
  for (const size_t s : slots) d.exit(s);
  EXPECT_EQ(d.min_active(), kQuiescent);

  // Slots claimed before growth remain valid afterwards (chunks are
  // install-only): re-claim and release a low slot now that capacity is 4x.
  const size_t again = d.enter();
  EXPECT_LT(again, d.capacity());
  d.exit(again);
}

TEST(EpochDomain, ReclamationStaysExactAcrossGrowth) {
  Domain d;
  // Push one chunk's worth of readers in so the next enter() grows.
  std::vector<size_t> held;
  for (size_t i = 0; i < Domain::kInitialSlots; ++i) held.push_back(d.enter());

  // A reader in a GROWN chunk must block reclamation exactly like one in
  // chunk 0.
  const size_t late = d.enter();
  EXPECT_GE(late, Domain::kInitialSlots);
  for (const size_t s : held) d.exit(s);

  RetireList retired;
  auto obj = std::make_shared<int>(42);
  std::weak_ptr<int> watch = obj;
  retired.retire(std::move(obj), d.retire_stamp());
  retired.collect(d.min_active());
  EXPECT_FALSE(watch.expired()) << "freed under an active late-chunk reader";

  d.exit(late);
  retired.collect(d.min_active());
  EXPECT_TRUE(watch.expired());
}

// Many threads enter/exit while a writer retires + collects: the directory
// install CASes race the scans. Run under TSAN in CI; the functional
// assertion is that nothing retired is freed while its reader is inside.
TEST(EpochDomain, ConcurrentGrowthAndReclamation) {
  Domain d;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> entries{0};
  constexpr int kThreads = 8;
  constexpr int kHeldPerThread = 24;

  // Pre-fill most of chunk 0 from this thread so the reader threads' claims
  // overflow it and race the chunk-1/2 installs against each other and
  // against the writer's directory scans (regardless of how the scheduler
  // interleaves them, any one thread's 24 held slots exceed the 8 left).
  std::vector<size_t> pinned;
  for (size_t i = 0; i < Domain::kInitialSlots - 8; ++i) pinned.push_back(d.enter());

  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      std::vector<size_t> held;
      held.reserve(kHeldPerThread);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kHeldPerThread; ++i) held.push_back(d.enter());
        entries.fetch_add(kHeldPerThread, std::memory_order_relaxed);
        for (const size_t s : held) d.exit(s);
        held.clear();
      }
    });
  }

  RetireList retired;
  std::vector<std::weak_ptr<int>> watches;
  for (int round = 0; round < 200; ++round) {
    auto obj = std::make_shared<int>(round);
    watches.emplace_back(obj);
    retired.retire(std::move(obj), d.retire_stamp());
    retired.collect(d.min_active());
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  for (const size_t s : pinned) d.exit(s);

  retired.collect(d.min_active());
  EXPECT_EQ(retired.size(), 0u);
  for (const auto& w : watches) EXPECT_TRUE(w.expired());
  EXPECT_GT(entries.load(), 0u);
  EXPECT_GE(d.capacity(), 2 * Domain::kChunkSlots);
}

}  // namespace
}  // namespace nuevomatch::epoch
