#include <gtest/gtest.h>

#include "classbench/generator.hpp"
#include "neurocuts/neurocuts.hpp"
#include "oracle_check.hpp"

namespace nuevomatch {
namespace {

using testing_support::expect_floor_consistency;
using testing_support::expect_matches_oracle;

TEST(NeuroCuts, MatchesOracleAcl) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 2000, 1);
  NeuroCutsLike nc;
  nc.build(rules);
  expect_matches_oracle(nc, rules);
}

TEST(NeuroCuts, MatchesOracleFw) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 3, 1500, 2);
  NeuroCutsLike nc;
  nc.build(rules);
  expect_matches_oracle(nc, rules);
}

TEST(NeuroCuts, FloorConsistency) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 1000, 3);
  NeuroCutsLike nc;
  nc.build(rules);
  expect_floor_consistency(nc, rules);
}

TEST(NeuroCuts, SearchIsDeterministicPerSeed) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 1000, 4);
  NeuroCutsConfig cfg;
  cfg.seed = 99;
  NeuroCutsLike a{cfg};
  NeuroCutsLike b{cfg};
  a.build(rules);
  b.build(rules);
  EXPECT_EQ(a.memory_bytes(), b.memory_bytes());
  EXPECT_EQ(a.chosen_config().max_fanout, b.chosen_config().max_fanout);
  EXPECT_EQ(a.chose_top_partition(), b.chose_top_partition());
}

TEST(NeuroCuts, SpaceRewardYieldsSmallerTrees) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 4000, 5);
  NeuroCutsConfig time_cfg;
  time_cfg.reward = NeuroCutsConfig::Reward::kTime;
  time_cfg.search_iterations = 10;
  NeuroCutsConfig space_cfg = time_cfg;
  space_cfg.reward = NeuroCutsConfig::Reward::kSpace;
  NeuroCutsLike nt{time_cfg};
  NeuroCutsLike ns{space_cfg};
  nt.build(rules);
  ns.build(rules);
  EXPECT_LE(ns.memory_bytes(), nt.memory_bytes() * 2)
      << "space-optimized tree should not be much bigger than time-optimized";
}

TEST(NeuroCuts, MoreIterationsNeverWorseScore) {
  // With the same seed, a longer search sees a superset of configurations.
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 1500, 6);
  NeuroCutsConfig small;
  small.search_iterations = 2;
  small.reward = NeuroCutsConfig::Reward::kSpace;
  NeuroCutsConfig large = small;
  large.search_iterations = 12;
  NeuroCutsLike a{small};
  NeuroCutsLike b{large};
  a.build(rules);
  b.build(rules);
  EXPECT_LE(b.memory_bytes(), a.memory_bytes());
}

TEST(NeuroCuts, EmptyRuleSet) {
  NeuroCutsLike nc;
  nc.build({});
  EXPECT_FALSE(nc.match(Packet{}).hit());
}

}  // namespace
}  // namespace nuevomatch
