#include <gtest/gtest.h>

#include "classifiers/linear.hpp"

namespace nuevomatch {
namespace {

RuleSet figure2_rules() {
  // The paper's Figure 2 classifier (IP ranges abstracted to integers).
  RuleSet rules(5);
  auto set = [&](size_t i, Range dst, Range dport) {
    for (int f = 0; f < kNumFields; ++f) rules[i].field[static_cast<size_t>(f)] = full_range(f);
    rules[i].field[kDstIp] = dst;
    rules[i].field[kDstPort] = dport;
  };
  set(0, Range{0x0A0A0000, 0x0A0AFFFF}, Range{10, 18});   // R0 10.10.*.*
  set(1, Range{0x0A0A0100, 0x0A0A01FF}, Range{15, 25});   // R1 10.10.1.*
  set(2, Range{0x0A000000, 0x0AFFFFFF}, Range{5, 8});     // R2 10.*.*.*
  set(3, Range{0x0A0A0300, 0x0A0A03FF}, Range{7, 20});    // R3 10.10.3.*
  set(4, Range{0x0A0A0364, 0x0A0A0364}, Range{19, 19});   // R4 10.10.3.100
  canonicalize(rules);
  return rules;
}

TEST(Linear, ReproducesPaperFigure2) {
  LinearSearch cls;
  cls.build(figure2_rules());
  // Packet 10.10.3.100:19 matches R3 and R4; R3 has higher priority.
  const Packet p{{0, 0x0A0A0364, 0, 19, 6}};
  const MatchResult r = cls.match(p);
  EXPECT_EQ(r.rule_id, 3);
}

TEST(Linear, MissWhenNothingMatches) {
  LinearSearch cls;
  cls.build(figure2_rules());
  const Packet p{{0, 0x0B000000, 0, 19, 6}};
  EXPECT_FALSE(cls.match(p).hit());
}

TEST(Linear, FloorExcludesEqualAndWorse) {
  LinearSearch cls;
  cls.build(figure2_rules());
  const Packet p{{0, 0x0A0A0364, 0, 19, 6}};  // matches prio 3 (R3) and 4 (R4)
  EXPECT_EQ(cls.match_with_floor(p, 4).rule_id, 3);
  EXPECT_FALSE(cls.match_with_floor(p, 3).hit());
  EXPECT_FALSE(cls.match_with_floor(p, 0).hit());
}

TEST(Linear, InsertMaintainsPriorityOrder) {
  LinearSearch cls;
  cls.build(figure2_rules());
  Rule r;
  for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
  r.id = 100;
  r.priority = -1;  // beats everything
  cls.insert(r);
  const Packet p{{0, 0x0A0A0364, 0, 19, 6}};
  EXPECT_EQ(cls.match(p).rule_id, 100);
}

TEST(Linear, EraseRemovesRule) {
  LinearSearch cls;
  cls.build(figure2_rules());
  EXPECT_TRUE(cls.erase(3));
  const Packet p{{0, 0x0A0A0364, 0, 19, 6}};
  EXPECT_EQ(cls.match(p).rule_id, 4);  // R4 now wins
  EXPECT_FALSE(cls.erase(3));          // second erase fails
  EXPECT_EQ(cls.size(), 4u);
}

TEST(Linear, SupportsUpdatesAndAccounting) {
  LinearSearch cls;
  cls.build(figure2_rules());
  EXPECT_TRUE(cls.supports_updates());
  EXPECT_EQ(cls.size(), 5u);
  EXPECT_EQ(cls.memory_bytes(), 5 * sizeof(Rule));
  EXPECT_EQ(cls.name(), "linear");
}

TEST(Linear, EmptyClassifierMisses) {
  LinearSearch cls;
  cls.build({});
  EXPECT_FALSE(cls.match(Packet{}).hit());
}

}  // namespace
}  // namespace nuevomatch
