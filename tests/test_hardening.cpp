// Adversarial and invariant tests for the performance-critical machinery:
// the cut tree's hard replication budget, TupleMerge's flat bucket layout
// under heavy update churn, and the iSet's packed-metadata fast paths.
#include <gtest/gtest.h>

#include <algorithm>

#include "classbench/generator.hpp"
#include "classifiers/linear.hpp"
#include "common/prefix.hpp"
#include "common/rng.hpp"
#include "cutsplit/cut_tree.hpp"
#include "isets/iset_index.hpp"
#include "isets/partition.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

// --- cut tree: replication budget is a hard post-condition -------------------

RuleSet adversarial_wildcards(size_t n, uint64_t seed) {
  // Worst case for cutting: rules wildcard in most dimensions with short,
  // heavily overlapping prefixes — every cut replicates nearly every rule.
  Rng rng{seed};
  RuleSet rules;
  for (size_t i = 0; i < n; ++i) {
    Rule r;
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
    const int len = static_cast<int>(rng.between(1, 6));
    r.field[rng.chance(0.5) ? kSrcIp : kDstIp] = prefix_to_range(rng.next_u32(), len);
    if (rng.chance(0.3)) {
      const auto lo = static_cast<uint32_t>(rng.below(60000));
      r.field[kDstPort] = Range{lo, std::min(65535u, lo + 8192)};
    }
    rules.push_back(r);
  }
  canonicalize(rules);
  return rules;
}

class ReplicationBudget : public ::testing::TestWithParam<double> {};

TEST_P(ReplicationBudget, HoldsOnAdversarialWildcardRules) {
  const RuleSet rules = adversarial_wildcards(3000, 17);
  CutTreeConfig cfg;
  cfg.ref_budget_factor = GetParam();
  CutTree tree;
  tree.build(rules, cfg);
  EXPECT_LE(tree.stats().replication, cfg.ref_budget_factor)
      << "budget must be a hard post-condition";

  // And the tree must still answer correctly.
  LinearSearch oracle;
  oracle.build(rules);
  TraceConfig tc;
  tc.n_packets = 3000;
  tc.seed = 18;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(tree.match(p).rule_id, oracle.match(p).rule_id);
}

INSTANTIATE_TEST_SUITE_P(Budgets, ReplicationBudget, ::testing::Values(2.0, 8.0, 20.0));

TEST(ReplicationBudget, BudgetBelowOneStillBuilds) {
  // Degenerate budget: the tree must fall back to one leaf, not crash.
  const RuleSet rules = adversarial_wildcards(200, 19);
  CutTreeConfig cfg;
  cfg.ref_budget_factor = 0.0;
  CutTree tree;
  tree.build(rules, cfg);
  EXPECT_LE(tree.stats().replication, 1.0 + 1e-9);
  LinearSearch oracle;
  oracle.build(rules);
  TraceConfig tc;
  tc.n_packets = 500;
  tc.seed = 20;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(tree.match(p).rule_id, oracle.match(p).rule_id);
}

// --- TupleMerge: flat layout under update churn -------------------------------

TEST(TupleMergeChurn, InsertEraseCyclesStayConsistent) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 2000, 21);
  TupleMerge tm;
  tm.build(rules);
  LinearSearch oracle;
  oracle.build(rules);

  Rng rng{22};
  std::vector<Rule> live(rules.begin(), rules.end());
  std::vector<Rule> dead;
  uint32_t next_id = static_cast<uint32_t>(rules.size());
  for (int round = 0; round < 400; ++round) {
    if (!live.empty() && rng.chance(0.5)) {
      const size_t k = rng.below(live.size());
      ASSERT_TRUE(tm.erase(live[k].id)) << "round " << round;
      dead.push_back(live[k]);
      live.erase(live.begin() + static_cast<long>(k));
    } else {
      Rule r = dead.empty() ? rules[rng.below(rules.size())] : dead.back();
      if (!dead.empty()) dead.pop_back();
      r.id = next_id++;
      r.priority = static_cast<int32_t>(r.id);
      ASSERT_TRUE(tm.insert(r));
      live.push_back(r);
    }
  }
  EXPECT_EQ(tm.size(), live.size());

  LinearSearch fresh;
  fresh.build(live);
  TraceConfig tc;
  tc.n_packets = 4000;
  tc.seed = 23;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(tm.match(p).rule_id, fresh.match(p).rule_id);
}

TEST(TupleMergeChurn, EraseOfUnknownIdFails) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 300, 24);
  TupleMerge tm;
  tm.build(rules);
  EXPECT_FALSE(tm.erase(999'999));
  EXPECT_EQ(tm.size(), rules.size());
  ASSERT_TRUE(tm.erase(rules[7].id));
  EXPECT_FALSE(tm.erase(rules[7].id)) << "double erase must fail";
}

TEST(TupleMergeChurn, MemoryShrinksAfterCompactingErasures) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 4000, 25);
  TupleMerge tm;
  tm.build(rules);
  const size_t before = tm.memory_bytes();
  for (size_t i = 0; i < rules.size(); i += 2) ASSERT_TRUE(tm.erase(rules[i].id));
  // Erasing half the rules must eventually compact tables.
  EXPECT_LT(tm.memory_bytes(), before);
  EXPECT_EQ(tm.size(), rules.size() - rules.size() / 2);
}

// --- iSet packed-metadata fast paths ------------------------------------------

IsetIndex build_iset(const RuleSet& rules) {
  IsetPartitionConfig pc;
  pc.max_isets = 1;
  pc.min_coverage_fraction = 0.01;
  IsetPartition part = partition_rules(rules, pc);
  IsetIndex idx;
  idx.build(part.isets.at(0).field, std::move(part.isets.at(0).rules),
            rqrmi::default_config(1000));
  return idx;
}

TEST(IsetFastPath, FloorRejectsWithoutChangingSemantics) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 3000, 26);
  const IsetIndex idx = build_iset(rules);
  TraceConfig tc;
  tc.n_packets = 5000;
  tc.seed = 27;
  for (const Packet& p : generate_trace(rules, tc)) {
    const MatchResult full = idx.lookup(p);
    // Floor above the hit keeps it; floor at/below the hit suppresses it.
    if (full.hit()) {
      const MatchResult keep = idx.lookup_with_floor(p, full.priority + 1);
      ASSERT_EQ(keep.rule_id, full.rule_id);
      const MatchResult cut = idx.lookup_with_floor(p, full.priority);
      ASSERT_FALSE(cut.hit());
    } else {
      ASSERT_FALSE(idx.lookup_with_floor(p, 123).hit());
    }
  }
}

TEST(IsetFastPath, WildcardShortcutAgreesWithFullValidation) {
  // Single-field rules: every rule is wildcard outside the indexed field, so
  // the shortcut path answers everything — and must agree with a from-scratch
  // check against the rule bodies.
  RuleSet rules;
  Rng rng{28};
  uint32_t at = 0;
  for (int i = 0; i < 500; ++i) {
    Rule r;
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
    const uint32_t len = 1 + static_cast<uint32_t>(rng.below(1000));
    r.field[kDstIp] = Range{at, at + len - 1};
    at += len + 1 + static_cast<uint32_t>(rng.below(1000));
    rules.push_back(r);
  }
  canonicalize(rules);
  IsetIndex idx;
  idx.build(kDstIp, rules, rqrmi::default_config(rules.size()));
  LinearSearch oracle;
  oracle.build(rules);
  TraceConfig tc;
  tc.n_packets = 5000;
  tc.seed = 29;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(idx.lookup(p).rule_id, oracle.match(p).rule_id);
}

TEST(IsetFastPath, ErasedRuleNeverReturnedThroughShortcut) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 3, 1500, 30);
  IsetIndex idx = build_iset(rules);
  ASSERT_GT(idx.size(), 10u);
  const Rule victim = idx.rules()[idx.size() / 2];
  ASSERT_TRUE(idx.erase(victim.id));
  Packet p;
  for (int f = 0; f < kNumFields; ++f)
    p.field[static_cast<size_t>(f)] = victim.field[static_cast<size_t>(f)].lo;
  const MatchResult r = idx.lookup(p);
  EXPECT_NE(r.rule_id, static_cast<int32_t>(victim.id));
}

}  // namespace
}  // namespace nuevomatch
