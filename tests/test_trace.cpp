#include <gtest/gtest.h>

#include <map>

#include "classbench/generator.hpp"
#include "classifiers/linear.hpp"
#include "trace/trace.hpp"

namespace nuevomatch {
namespace {

TEST(Trace, RepresentativePacketsMatchTheirRules) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 1000, 1);
  const auto pkts = representative_packets(rules, 2);
  ASSERT_EQ(pkts.size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i)
    EXPECT_TRUE(rules[i].matches(pkts[i])) << "rule " << i;
}

TEST(Trace, UniformTraceAlwaysHits) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 500, 3);
  LinearSearch oracle;
  oracle.build(rules);
  TraceConfig tc;
  tc.n_packets = 2000;
  for (const Packet& p : generate_trace(rules, tc)) EXPECT_TRUE(oracle.match(p).hit());
}

TEST(Trace, RequestedLength) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 100, 4);
  TraceConfig tc;
  tc.n_packets = 12345;
  EXPECT_EQ(generate_trace(rules, tc).size(), 12345u);
  tc.n_packets = 0;
  EXPECT_TRUE(generate_trace(rules, tc).empty());
  EXPECT_TRUE(generate_trace({}, tc).empty());
}

TEST(Trace, ZipfIsSkewedUniformIsNot) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 2000, 5);
  const auto count_top_share = [&](TraceConfig::Kind kind, double alpha) {
    TraceConfig tc;
    tc.kind = kind;
    tc.zipf_alpha = alpha;
    tc.n_packets = 60'000;
    std::map<uint32_t, size_t> freq;
    for (const Packet& p : generate_trace(rules, tc)) ++freq[p[kDstIp]];
    std::vector<size_t> counts;
    for (const auto& [k, v] : freq) counts.push_back(v);
    std::sort(counts.rbegin(), counts.rend());
    size_t top = 0;
    size_t total = 0;
    const size_t top_n = std::max<size_t>(1, counts.size() * 3 / 100);
    for (size_t i = 0; i < counts.size(); ++i) {
      total += counts[i];
      if (i < top_n) top += counts[i];
    }
    return static_cast<double>(top) / static_cast<double>(total);
  };
  const double uniform_share = count_top_share(TraceConfig::Kind::kUniform, 1.0);
  const double zipf_share = count_top_share(TraceConfig::Kind::kZipf, 1.25);
  EXPECT_GT(zipf_share, uniform_share + 0.2)
      << "zipf=" << zipf_share << " uniform=" << uniform_share;
  EXPECT_GT(zipf_share, 0.5);
}

TEST(Trace, HigherAlphaMoreSkew) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 1000, 6);
  const auto top_flow_count = [&](double alpha) {
    TraceConfig tc;
    tc.kind = TraceConfig::Kind::kZipf;
    tc.zipf_alpha = alpha;
    tc.n_packets = 30'000;
    tc.seed = 7;
    std::map<uint32_t, size_t> freq;
    for (const Packet& p : generate_trace(rules, tc)) ++freq[p[kSrcIp] ^ p[kDstIp]];
    size_t best = 0;
    for (const auto& [k, v] : freq) best = std::max(best, v);
    return best;
  };
  EXPECT_GT(top_flow_count(1.25), top_flow_count(1.05));
}

TEST(Trace, CaidaLikeHasTemporalLocality) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 3000, 8);
  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kCaidaLike;
  tc.n_packets = 20'000;
  const auto trace = generate_trace(rules, tc);
  // Measure repeat probability within a sliding window of 64 packets.
  size_t repeats = 0;
  for (size_t i = 1; i < trace.size(); ++i) {
    const size_t lo = i > 64 ? i - 64 : 0;
    for (size_t j = lo; j < i; ++j) {
      if (trace[j].field == trace[i].field) {
        ++repeats;
        break;
      }
    }
  }
  const double rate = static_cast<double>(repeats) / static_cast<double>(trace.size());
  EXPECT_GT(rate, 0.4) << "locality-preserving trace must revisit recent flows";
}

TEST(Trace, DeterministicPerSeed) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 200, 9);
  TraceConfig tc;
  tc.n_packets = 100;
  tc.seed = 42;
  const auto a = generate_trace(rules, tc);
  const auto b = generate_trace(rules, tc);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].field, b[i].field);
}

}  // namespace
}  // namespace nuevomatch
