// The libpcap-free pcap reader/writer (trace/pcap.hpp): round-trips through
// every header variant the reader claims to support — both magic-number
// byte orders AND the nanosecond-timestamp magic — plus the frame
// parse/synthesize differential and the failure paths (bad magic,
// truncated records), so PcapSource can trust the layer beneath it.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <algorithm>
#include <span>

#include "classbench/generator.hpp"
#include "common/failpoint.hpp"
#include "trace/pcap.hpp"
#include "trace/trace.hpp"

namespace nuevomatch {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// Deterministic mixed-protocol packet sample: TCP, UDP, ICMP (port-less),
/// SCTP, odd protocols — the synthesis/parse pair must round-trip each.
std::vector<Packet> sample_packets() {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 200, 7);
  std::vector<Packet> pkts = representative_packets(rules, 7);
  pkts.resize(64);
  const uint32_t protos[] = {6, 17, 1, 132, 47};  // tcp udp icmp sctp gre
  for (size_t i = 0; i < pkts.size(); ++i) {
    pkts[i].field[kProto] = protos[i % std::size(protos)];
    if (pkts[i][kProto] == 1 || pkts[i][kProto] == 47) {
      // Port-less protocols carry no L4 ports on the wire; the parsed
      // packet comes back with 0 there, so put 0 in to round-trip exactly.
      pkts[i].field[kSrcPort] = 0;
      pkts[i].field[kDstPort] = 0;
    }
  }
  return pkts;
}

struct Variant {
  bool nanosecond;
  bool byte_swapped;
};

class PcapRoundTrip : public ::testing::TestWithParam<Variant> {};

TEST_P(PcapRoundTrip, PacketsAndTimestampsSurviveEveryHeaderVariant) {
  const auto [nanosecond, swapped] = GetParam();
  const std::vector<Packet> pkts = sample_packets();
  const std::string path = tmp_path("roundtrip.pcap");

  PcapWriterOptions opts;
  opts.nanosecond = nanosecond;
  opts.byte_swapped = swapped;
  constexpr uint64_t kBase = 1'700'000'000ull * 1'000'000'000ull;
  ASSERT_TRUE(write_pcap_packets(path, pkts, opts, kBase));

  PcapReader r{path};
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.nanosecond(), nanosecond);
  EXPECT_EQ(r.byte_swapped(), swapped);
  EXPECT_EQ(r.link_type(), kLinkEthernet);

  PcapRecord rec;
  size_t i = 0;
  while (r.next(rec)) {
    ASSERT_LT(i, pkts.size());
    // 1 µs spacing is exact in both timestamp precisions.
    EXPECT_EQ(rec.ts_ns, kBase + i * 1'000) << "packet " << i;
    const auto parsed = parse_frame(rec.frame, r.link_type());
    ASSERT_TRUE(parsed.has_value()) << "packet " << i;
    EXPECT_EQ(parsed->field, pkts[i].field) << "packet " << i;
    ++i;
  }
  EXPECT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(i, pkts.size());

  // The convenience loader agrees.
  size_t skipped = 123;
  const auto all = read_pcap_packets(path, &skipped);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(all->size(), pkts.size());
  for (size_t k = 0; k < pkts.size(); ++k) EXPECT_EQ((*all)[k].field, pkts[k].field);
}

INSTANTIATE_TEST_SUITE_P(Variants, PcapRoundTrip,
                         ::testing::Values(Variant{false, false},
                                           Variant{false, true},
                                           Variant{true, false},
                                           Variant{true, true}),
                         [](const auto& info) {
                           return std::string(info.param.nanosecond ? "nsec" : "usec") +
                                  (info.param.byte_swapped ? "_swapped" : "_native");
                         });

TEST(PcapRoundTripRaw, RawLinkTypeFilesRoundTripToo) {
  const std::vector<Packet> pkts = sample_packets();
  const std::string path = tmp_path("roundtrip_raw.pcap");
  PcapWriterOptions opts;
  opts.link_type = kLinkRawIpv4;  // records are bare IP datagrams
  ASSERT_TRUE(write_pcap_packets(path, pkts, opts));
  PcapReader r{path};
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.link_type(), kLinkRawIpv4);
  size_t skipped = 9;
  const auto back = read_pcap_packets(path, &skipped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(back->size(), pkts.size());
  for (size_t i = 0; i < pkts.size(); ++i) EXPECT_EQ((*back)[i].field, pkts[i].field);

  // A link type the parser cannot read back is refused up front, never
  // written as a silently unparseable file.
  PcapWriterOptions bogus;
  bogus.link_type = 12345;
  EXPECT_FALSE(write_pcap_packets(tmp_path("bogus_lt.pcap"), pkts, bogus));
}

TEST(PcapFrameParse, SynthesisDifferentialPerProtocol) {
  for (const uint32_t proto : {6u, 17u, 132u, 136u}) {
    Packet p;
    p.field = {0x0A000001, 0xC0A80102, 443, 51515, proto};
    const auto back = parse_frame(synthesize_frame(p));
    ASSERT_TRUE(back.has_value()) << "proto " << proto;
    EXPECT_EQ(back->field, p.field) << "proto " << proto;
  }
  // Port-less protocol: ports do not survive (there is no L4 header).
  Packet icmp;
  icmp.field = {1, 2, 0, 0, 1};
  const auto back = parse_frame(synthesize_frame(icmp));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->field, icmp.field);
}

TEST(PcapFrameParse, VlanTagAndRawLinkType) {
  Packet p;
  p.field = {0x01020304, 0x05060708, 1000, 2000, 6};
  std::vector<uint8_t> frame = synthesize_frame(p);
  // Splice one 802.1Q tag after the MACs: TPID 0x8100, TCI, old ethertype.
  std::vector<uint8_t> tagged(frame.begin(), frame.begin() + 12);
  tagged.insert(tagged.end(), {0x81, 0x00, 0x00, 0x2A});
  tagged.insert(tagged.end(), frame.begin() + 12, frame.end());
  const auto via_vlan = parse_frame(tagged);
  ASSERT_TRUE(via_vlan.has_value());
  EXPECT_EQ(via_vlan->field, p.field);

  // LINKTYPE_RAW: the frame IS the IP datagram.
  const std::vector<uint8_t> ip_only(frame.begin() + 14, frame.end());
  const auto via_raw = parse_frame(ip_only, kLinkRawIpv4);
  ASSERT_TRUE(via_raw.has_value());
  EXPECT_EQ(via_raw->field, p.field);
}

TEST(PcapFrameParse, RejectsWhatItCannotProject) {
  Packet p;
  p.field = {1, 2, 3, 4, 6};
  std::vector<uint8_t> frame = synthesize_frame(p);

  // Non-IPv4 ethertype (ARP).
  std::vector<uint8_t> arp = frame;
  arp[12] = 0x08;
  arp[13] = 0x06;
  EXPECT_FALSE(parse_frame(arp).has_value());

  // Truncated mid-IP-header.
  EXPECT_FALSE(parse_frame({frame.data(), 20}).has_value());
  EXPECT_FALSE(parse_frame({frame.data(), 0}).has_value());

  // Non-first fragment: no L4 header to read; ports must come back 0, not
  // garbage read from payload bytes.
  std::vector<uint8_t> frag = frame;
  frag[14 + 6] = 0x00;
  frag[14 + 7] = 0x10;  // fragment offset 16
  const auto parsed = parse_frame(frag);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)[kSrcPort], 0u);
  EXPECT_EQ((*parsed)[kDstPort], 0u);
  EXPECT_EQ((*parsed)[kProto], 6u);
}

TEST(PcapReaderErrors, BadMagicAndTruncatedRecord) {
  const std::string bad = tmp_path("bad_magic.pcap");
  {
    std::FILE* f = std::fopen(bad.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const uint8_t junk[24] = {0xDE, 0xAD, 0xBE, 0xEF};
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  PcapReader r1{bad};
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.error().find("magic"), std::string::npos);

  // A valid file cut off mid-record must report an error, not a clean EOF.
  const std::string truncated = tmp_path("truncated.pcap");
  const std::vector<Packet> pkts = sample_packets();
  ASSERT_TRUE(write_pcap_packets(truncated, {pkts.data(), 2}));
  const auto full = std::filesystem::file_size(truncated);
  std::filesystem::resize_file(truncated, full - 7);
  PcapReader r2{truncated};
  ASSERT_TRUE(r2.ok());
  PcapRecord rec;
  EXPECT_TRUE(r2.next(rec));   // first record intact
  EXPECT_FALSE(r2.next(rec));  // second is cut off...
  EXPECT_FALSE(r2.ok());       // ...and that is an ERROR, not EOF
}

TEST(PcapReaderErrors, MissingFile) {
  PcapReader r{tmp_path("does_not_exist.pcap")};
  EXPECT_FALSE(r.ok());
}

// --- hardening: corrupt captures fail cleanly, never crash ------------------

std::vector<uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + got);
  std::fclose(f);
  return bytes;
}

void spit(const std::string& path, std::span<const uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(PcapHardening, TruncationAtEveryByteFailsCleanlyOrEofExactly) {
  // A capture cut at ANY byte must either read back as a clean EOF (cuts
  // exactly on a record boundary) or surface an error — never crash, never
  // silently drop a half-read record. The boundary set makes the assertion
  // exact, not just "no crash".
  std::vector<Packet> pkts = sample_packets();
  pkts.resize(3);
  const std::string full_path = tmp_path("sweep_full.pcap");
  ASSERT_TRUE(write_pcap_packets(full_path, pkts));
  const std::vector<uint8_t> full = slurp(full_path);

  std::vector<size_t> boundaries{24};  // global header alone = empty capture
  for (const Packet& p : pkts)
    boundaries.push_back(boundaries.back() + 16 + synthesize_frame(p).size());
  ASSERT_EQ(boundaries.back(), full.size());

  const std::string cut_path = tmp_path("sweep_cut.pcap");
  for (size_t keep = 0; keep < full.size(); ++keep) {
    spit(cut_path, std::span{full}.first(keep));
    PcapReader r{cut_path};
    if (keep < 24) {
      EXPECT_FALSE(r.ok()) << "keep " << keep;
      EXPECT_FALSE(r.error().empty()) << "keep " << keep;
      continue;
    }
    ASSERT_TRUE(r.ok()) << "keep " << keep;
    PcapRecord rec;
    size_t n = 0;
    while (r.next(rec)) ++n;
    const bool on_boundary =
        std::find(boundaries.begin(), boundaries.end(), keep) != boundaries.end();
    EXPECT_EQ(r.ok(), on_boundary) << "keep " << keep;
    if (!on_boundary) EXPECT_FALSE(r.error().empty()) << "keep " << keep;
  }
}

TEST(PcapHardening, GarbageLinkTypeRejectedAtOpen) {
  const std::vector<Packet> pkts = sample_packets();
  const std::string path = tmp_path("badlink.pcap");
  ASSERT_TRUE(write_pcap_packets(path, {pkts.data(), 2}));
  std::vector<uint8_t> bytes = slurp(path);
  bytes[20] = 147;  // network field (offset 20), little-endian
  bytes[21] = bytes[22] = bytes[23] = 0;
  spit(path, bytes);
  PcapReader r{path};
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("unsupported pcap link type 147"), std::string::npos)
      << r.error();
  EXPECT_NE(r.error().find("badlink.pcap"), std::string::npos)
      << "per-file errors must name the file: " << r.error();
}

TEST(PcapHardening, BadVersionRejectedAtOpen) {
  const std::vector<Packet> pkts = sample_packets();
  const std::string path = tmp_path("badver.pcap");
  ASSERT_TRUE(write_pcap_packets(path, {pkts.data(), 1}));
  std::vector<uint8_t> bytes = slurp(path);
  bytes[4] = 7;  // version_major (offset 4), little-endian
  bytes[5] = 0;
  spit(path, bytes);
  PcapReader r{path};
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("unsupported pcap version 7"), std::string::npos)
      << r.error();
}

TEST(PcapHardening, CorruptLengthsCarryRecordIndex) {
  const std::vector<Packet> pkts = sample_packets();
  const std::string path = tmp_path("badlen.pcap");
  ASSERT_TRUE(write_pcap_packets(path, {pkts.data(), 2}));
  const std::vector<uint8_t> good = slurp(path);
  const size_t rec2 = 24 + 16 + synthesize_frame(pkts[0]).size();

  // incl_len > orig_len: declared capture longer than the original frame.
  {
    std::vector<uint8_t> bytes = good;
    bytes[rec2 + 8] += 1;  // incl_len (record header offset 8), little-endian
    spit(path, bytes);
    PcapReader r{path};
    ASSERT_TRUE(r.ok());
    PcapRecord rec;
    EXPECT_TRUE(r.next(rec));   // record 1 untouched
    EXPECT_FALSE(r.next(rec));  // record 2 corrupt
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error().find("record 2"), std::string::npos) << r.error();
    EXPECT_NE(r.error().find("incl_len exceeds orig_len"), std::string::npos)
        << r.error();
  }

  // Absurd incl_len: rejected before any allocation attempt.
  {
    std::vector<uint8_t> bytes = good;
    bytes[rec2 + 8] = bytes[rec2 + 9] = bytes[rec2 + 10] = 0xFF;
    bytes[rec2 + 11] = 0x7F;
    spit(path, bytes);
    PcapReader r{path};
    ASSERT_TRUE(r.ok());
    PcapRecord rec;
    EXPECT_TRUE(r.next(rec));
    EXPECT_FALSE(r.next(rec));
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error().find("record 2"), std::string::npos) << r.error();
    EXPECT_NE(r.error().find("implausibly large"), std::string::npos) << r.error();
  }
}

TEST(PcapFailpoint, InjectedParseFailureCountsAsSkip) {
  const std::vector<Packet> pkts = sample_packets();
  const std::string path = tmp_path("fp_parse.pcap");
  ASSERT_TRUE(write_pcap_packets(path, {pkts.data(), 5}));

  {
    // Exactly the 2nd frame "fails to parse": skipped, not fatal.
    failpoint::Scoped arm{failpoint::kPcapParse, failpoint::Trigger::nth(2)};
    size_t skipped = 0;
    const auto got = read_pcap_packets(path, &skipped);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(skipped, 1u);
    EXPECT_EQ(got->size(), 4u);
    EXPECT_EQ((*got)[1].field, pkts[2].field) << "the skip must not shift "
                                                 "neighboring frames";
  }
  // Disarmed: the same file reads in full.
  size_t skipped = 9;
  const auto got = read_pcap_packets(path, &skipped);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(got->size(), 5u);
}

}  // namespace
}  // namespace nuevomatch
