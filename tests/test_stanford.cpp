#include <gtest/gtest.h>

#include "classbench/stanford.hpp"
#include "isets/partition.hpp"

namespace nuevomatch {
namespace {

TEST(Stanford, SingleFieldRules) {
  const RuleSet rules = generate_stanford_like(1, 10'000, 1);
  EXPECT_EQ(rules.size(), 10'000u);
  EXPECT_EQ(validate_ruleset(rules), "");
  for (const Rule& r : rules) {
    EXPECT_TRUE(r.is_wildcard(kSrcIp));
    EXPECT_TRUE(r.is_wildcard(kSrcPort));
    EXPECT_TRUE(r.is_wildcard(kDstPort));
    EXPECT_TRUE(r.is_wildcard(kProto));
    EXPECT_FALSE(r.is_wildcard(kDstIp));
  }
}

TEST(Stanford, DefaultSizeMatchesDataset) {
  EXPECT_EQ(kStanfordRules, 183'376u);  // paper §5.1.1 / Table 2 last row
}

TEST(Stanford, RoutersDiffer) {
  const RuleSet a = generate_stanford_like(1, 1000, 1);
  const RuleSet b = generate_stanford_like(2, 1000, 1);
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i)
    differs |= a[i].field[kDstIp].lo != b[i].field[kDstIp].lo;
  EXPECT_TRUE(differs);
}

TEST(Stanford, CoverageBandsMatchPaperShape) {
  // Paper Table 2 last row: 57.8 / 91.6 / 96.5 / 98.2 (% with 1-4 iSets).
  // Assert the qualitative bands on a 30K sample (structure is scale-free).
  const RuleSet rules = generate_stanford_like(0, 30'000, 2);
  IsetPartitionConfig cfg;
  cfg.min_coverage_fraction = 0.0;
  double prev = 0.0;
  double cov1 = 0.0;
  double cov3 = 0.0;
  for (int k = 1; k <= 4; ++k) {
    cfg.max_isets = k;
    const double cov = partition_rules(rules, cfg).coverage();
    EXPECT_GE(cov, prev);
    prev = cov;
    if (k == 1) cov1 = cov;
    if (k == 3) cov3 = cov;
  }
  EXPECT_GT(cov1, 0.40);
  EXPECT_LT(cov1, 0.80);
  EXPECT_GT(cov3, 0.85);
}

TEST(Stanford, PrefixesOnly) {
  const RuleSet rules = generate_stanford_like(3, 5000, 3);
  for (const Rule& r : rules) {
    // Every dst range must be a prefix block (forwarding table semantics).
    const auto span = r.field[kDstIp].span();
    EXPECT_TRUE((span & (span - 1)) == 0) << "span must be a power of two";
  }
}

}  // namespace
}  // namespace nuevomatch
