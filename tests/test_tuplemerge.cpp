#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "classbench/generator.hpp"
#include "oracle_check.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

using testing_support::expect_floor_consistency;
using testing_support::expect_matches_oracle;

struct TmCase {
  AppClass app;
  int variant;
  size_t n;
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const TmCase& c) {
    return os << ruleset_name(c.app, c.variant) << "_n" << c.n << "_s" << c.seed;
  }
};

class TupleMergeOracle : public ::testing::TestWithParam<TmCase> {};

TEST_P(TupleMergeOracle, MatchesLinearSearch) {
  const auto& c = GetParam();
  const RuleSet rules = generate_classbench(c.app, c.variant, c.n, c.seed);
  TupleMerge tm;
  tm.build(rules);
  expect_matches_oracle(tm, rules);
}

TEST_P(TupleMergeOracle, TssMatchesLinearSearch) {
  const auto& c = GetParam();
  const RuleSet rules = generate_classbench(c.app, c.variant, c.n, c.seed);
  TupleSpaceSearch tss;
  tss.build(rules);
  expect_matches_oracle(tss, rules);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TupleMergeOracle,
                         ::testing::Values(TmCase{AppClass::kAcl, 1, 1000, 1},
                                           TmCase{AppClass::kAcl, 3, 3000, 2},
                                           TmCase{AppClass::kFw, 1, 1000, 3},
                                           TmCase{AppClass::kFw, 4, 3000, 4},
                                           TmCase{AppClass::kIpc, 1, 2000, 5},
                                           TmCase{AppClass::kIpc, 2, 500, 6}));

TEST(TupleMerge, FloorConsistency) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 1500, 7);
  TupleMerge tm;
  tm.build(rules);
  expect_floor_consistency(tm, rules);
}

TEST(TupleMerge, MergingUsesFewerTablesThanTss) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 5000, 8);
  TupleMerge tm;
  TupleSpaceSearch tss;
  tm.build(rules);
  tss.build(rules);
  EXPECT_LT(tm.num_tables(), tss.num_tables());
  EXPECT_GT(tm.num_tables(), 0u);
}

TEST(TupleMerge, InsertThenMatch) {
  RuleSet rules = generate_classbench(AppClass::kAcl, 1, 500, 9);
  TupleMerge tm;
  tm.build(rules);
  Rule fresh;
  for (int f = 0; f < kNumFields; ++f) fresh.field[static_cast<size_t>(f)] = full_range(f);
  fresh.field[kDstIp] = Range{0x01020304, 0x01020304};
  fresh.id = 100000;
  fresh.priority = -5;  // best priority
  ASSERT_TRUE(tm.insert(fresh));
  Packet p{};
  p.field[kDstIp] = 0x01020304;
  EXPECT_EQ(tm.match(p).rule_id, 100000);
  EXPECT_EQ(tm.size(), rules.size() + 1);
}

TEST(TupleMerge, EraseRemovesOnlyTarget) {
  RuleSet rules = generate_classbench(AppClass::kFw, 2, 800, 10);
  TupleMerge tm;
  tm.build(rules);
  LinearSearch oracle;
  oracle.build(rules);
  // Erase 50 random rules from both, then compare.
  Rng rng{11};
  for (int i = 0; i < 50; ++i) {
    const auto victim = static_cast<uint32_t>(rng.below(rules.size()));
    const bool a = tm.erase(victim);
    const bool b = oracle.erase(victim);
    EXPECT_EQ(a, b);
  }
  // Compare the two post-erase instances directly on a trace drawn from the
  // original set (erased rules' packets now hit their next-best match).
  TraceConfig tc;
  tc.n_packets = 1500;
  tc.seed = 13;
  for (const Packet& p : generate_trace(rules, tc))
    EXPECT_EQ(tm.match(p).rule_id, oracle.match(p).rule_id);
}

// Regression (found by the churn serializer tests): erasing a table's BEST
// rule raises that table's best_priority, and the table array must be
// re-sorted or match_with_floor's early-termination break skips later
// tables that still hold better matches — plain match() misses live rules.
TEST(TupleMerge, EraseOfTableBestKeepsFloorSearchExact) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 1200, 51);
  TupleMerge tm;
  tm.build(rules);
  // Erase the globally best rules one by one: each erase is maximally likely
  // to raise some table's best_priority past its neighbors'.
  std::vector<uint32_t> order;
  for (const Rule& r : rules) order.push_back(r.id);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return rules[a].priority < rules[b].priority;
  });
  LinearSearch oracle;
  oracle.build(rules);
  TraceConfig tc;
  tc.n_packets = 800;
  tc.seed = 52;
  const auto trace = generate_trace(rules, tc);
  for (size_t i = 0; i < 60; ++i) {
    ASSERT_EQ(tm.erase(order[i]), oracle.erase(order[i]));
    for (const Packet& p : trace) {
      ASSERT_EQ(tm.match(p).rule_id, oracle.match(p).rule_id)
          << "after erasing the " << i << " best rules: " << to_string(p);
    }
    expect_floor_consistency(tm, rules, 60 + i);
  }
}

TEST(TupleMerge, SupportsUpdatesFlag) {
  TupleMerge tm;
  EXPECT_TRUE(tm.supports_updates());
}

TEST(TupleMerge, MemoryGrowsWithRules) {
  TupleMerge small;
  TupleMerge big;
  small.build(generate_classbench(AppClass::kAcl, 1, 500, 14));
  big.build(generate_classbench(AppClass::kAcl, 1, 5000, 14));
  EXPECT_GT(big.memory_bytes(), small.memory_bytes());
}

TEST(TupleMerge, EmptyRuleSet) {
  TupleMerge tm;
  tm.build({});
  EXPECT_FALSE(tm.match(Packet{}).hit());
  EXPECT_EQ(tm.size(), 0u);
}

TEST(TupleMerge, CollisionLimitTriggersSplit) {
  // Many rules sharing one relaxed tuple but distinct exact tuples: the
  // collision limit must spill them into exact tables.
  RuleSet rules;
  for (uint32_t i = 0; i < 200; ++i) {
    Rule r;
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
    // Same /24 block -> same masked key in a /24-relaxed table.
    r.field[kDstIp] = Range{0x0A0A0A00u + i, 0x0A0A0A00u + i};
    rules.push_back(r);
  }
  canonicalize(rules);
  TupleMergeConfig cfg;
  cfg.collision_limit = 8;
  cfg.ip_len_granularity = 8;
  TupleMerge tm{cfg};
  tm.build(rules);
  expect_matches_oracle(tm, rules, 1000, 15);
}

}  // namespace
}  // namespace nuevomatch
