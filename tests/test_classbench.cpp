#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "classbench/generator.hpp"
#include "classbench/parser.hpp"
#include "isets/interval_scheduling.hpp"

namespace nuevomatch {
namespace {

TEST(Generator, ProducesRequestedSizeAndValidRules) {
  for (auto app : {AppClass::kAcl, AppClass::kFw, AppClass::kIpc}) {
    const RuleSet rules = generate_classbench(app, 1, 2345, 1);
    EXPECT_EQ(rules.size(), 2345u);
    EXPECT_EQ(validate_ruleset(rules), "");
  }
}

TEST(Generator, DeterministicPerSeedAndVariant) {
  const RuleSet a = generate_classbench(AppClass::kAcl, 2, 500, 7);
  const RuleSet b = generate_classbench(AppClass::kAcl, 2, 500, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].field[kDstIp].lo, b[i].field[kDstIp].lo);
  const RuleSet c = generate_classbench(AppClass::kAcl, 3, 500, 7);
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i)
    differs |= a[i].field[kDstIp].lo != c[i].field[kDstIp].lo;
  EXPECT_TRUE(differs) << "variants must generate different sets";
}

TEST(Generator, DiversityGrowsWithSize) {
  // The structural property behind paper Table 2: larger sets are dominated
  // by distinct specific rules, so dst-IP diversity rises with n.
  const double d1k = ruleset_diversity(generate_classbench(AppClass::kAcl, 1, 1000, 3), kDstIp);
  const double d50k =
      ruleset_diversity(generate_classbench(AppClass::kAcl, 1, 50'000, 3), kDstIp);
  EXPECT_GT(d50k, d1k);
}

TEST(Generator, FwHasMoreWildcardsThanAcl) {
  const RuleSet acl = generate_classbench(AppClass::kAcl, 1, 5000, 4);
  const RuleSet fw = generate_classbench(AppClass::kFw, 1, 5000, 4);
  const auto wildcard_frac = [](const RuleSet& rs, int field) {
    size_t n = 0;
    for (const Rule& r : rs) n += r.is_wildcard(field);
    return static_cast<double>(n) / static_cast<double>(rs.size());
  };
  EXPECT_GT(wildcard_frac(fw, kSrcPort) + wildcard_frac(fw, kDstPort),
            wildcard_frac(acl, kSrcPort) + wildcard_frac(acl, kDstPort) - 0.05);
}

TEST(Generator, PaperSuiteHasTwelveNamedSets) {
  const auto suite = paper_suite();
  ASSERT_EQ(suite.size(), 12u);
  EXPECT_EQ(ruleset_name(suite[0].first, suite[0].second), "ACL1");
  EXPECT_EQ(ruleset_name(suite[5].first, suite[5].second), "FW1");
  EXPECT_EQ(ruleset_name(suite[10].first, suite[10].second), "IPC1");
}

TEST(Generator, LowDiversityHasFewUniqueValues) {
  const RuleSet rules = generate_low_diversity(5000, 8, 5);
  EXPECT_EQ(rules.size(), 5000u);
  EXPECT_EQ(validate_ruleset(rules), "");
  std::unordered_set<uint32_t> uniq;
  for (const Rule& r : rules) uniq.insert(r.field[kDstIp].lo);
  EXPECT_LE(uniq.size(), 8u);
  EXPECT_LT(ruleset_diversity(rules, kDstIp), 0.01);
}

TEST(Generator, BlendReplacesRequestedFraction) {
  const RuleSet base = generate_classbench(AppClass::kAcl, 1, 4000, 6);
  const RuleSet mixed = blend_low_diversity(base, 0.5, 7);
  ASSERT_EQ(mixed.size(), base.size());
  // Low-diversity rules are exact in all fields; count them.
  size_t exact_all = 0;
  for (const Rule& r : mixed) {
    bool all = true;
    for (int f = 0; f < kNumFields; ++f) all &= r.field[static_cast<size_t>(f)].is_exact();
    exact_all += all;
  }
  EXPECT_NEAR(static_cast<double>(exact_all) / mixed.size(), 0.5, 0.1);
}

TEST(Parser, ParsesCanonicalLine) {
  const auto r =
      parse_classbench_line("@1.2.3.0/24\t10.0.0.0/8\t0 : 65535\t80 : 80\t6/0xFF");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->field[kSrcIp].lo, 0x01020300u);
  EXPECT_EQ(r->field[kSrcIp].hi, 0x010203FFu);
  EXPECT_EQ(r->field[kDstIp].lo, 0x0A000000u);
  EXPECT_EQ(r->field[kSrcPort], (Range{0, 65535}));
  EXPECT_EQ(r->field[kDstPort], (Range{80, 80}));
  EXPECT_EQ(r->field[kProto], (Range{6, 6}));
}

TEST(Parser, WildcardProtocolMask) {
  const auto r = parse_classbench_line("@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0/0x00");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->field[kProto], full_range(kProto));
}

TEST(Parser, IgnoresTrailingColumns) {
  const auto r = parse_classbench_line(
      "@1.2.3.4/32 5.6.7.8/32 10 : 20 30 : 40 17/0xFF 0x0000/0x0200");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->field[kProto], (Range{17, 17}));
}

TEST(Parser, RejectsMalformedLines) {
  EXPECT_FALSE(parse_classbench_line("").has_value());
  EXPECT_FALSE(parse_classbench_line("# comment").has_value());
  EXPECT_FALSE(parse_classbench_line("@1.2.3/24 ...").has_value());
  EXPECT_FALSE(parse_classbench_line("@1.2.3.4/33 5.6.7.8/32 0:1 0:1 6/0xFF").has_value());
  EXPECT_FALSE(parse_classbench_line("@1.2.3.4/32 5.6.7.8/32 20 : 10 0 : 1 6/0xFF").has_value());
}

TEST(Parser, RoundTripsGeneratedRules) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 300, 8);
  std::ostringstream os;
  write_classbench(os, rules);
  std::istringstream is{os.str()};
  size_t skipped = 0;
  const RuleSet back = parse_classbench(is, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(back.size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    // IP prefixes and exact protos round-trip exactly; port ranges too.
    EXPECT_EQ(back[i].field[kSrcPort], rules[i].field[kSrcPort]) << i;
    EXPECT_EQ(back[i].field[kDstPort], rules[i].field[kDstPort]) << i;
    EXPECT_EQ(back[i].field[kDstIp], rules[i].field[kDstIp]) << i;
  }
}

TEST(Parser, StreamSkipsJunkLines) {
  std::istringstream is{
      "# classbench header\n"
      "@1.2.3.0/24 0.0.0.0/0 0 : 65535 80 : 80 6/0xFF\n"
      "not a rule\n"
      "@4.5.6.0/24 0.0.0.0/0 0 : 65535 443 : 443 6/0xFF\n"};
  size_t skipped = 0;
  const RuleSet rules = parse_classbench(is, &skipped);
  EXPECT_EQ(rules.size(), 2u);
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(rules[0].id, 0u);
  EXPECT_EQ(rules[1].priority, 1);
}

}  // namespace
}  // namespace nuevomatch
