// Task fault domains and the pipeline recovery ladder (ISSUE 9): the
// scheduler's SupervisorPolicy (escalate / restart-with-backoff /
// quarantine), the cooperative watchdog, the suppressed-error counter, and
// the ReplicatedGraph quarantine → re-steer → drain → rejoin path with
// trainer failover — all driven deterministically through the pipeline
// failpoints. Runs under the TSAN and ASan/UBSan CI legs: a crash-during-
// burst must be leak-clean (the in-flight burst is dropped, not leaked).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "classbench/generator.hpp"
#include "classifiers/linear.hpp"
#include "common/failpoint.hpp"
#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/replicate.hpp"
#include "pipeline/scheduler.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

using pipeline::Graph;
using pipeline::PipelineHealth;
using pipeline::ReplicaHealth;
using pipeline::ReplicatedGraph;
using pipeline::ReplicatedRunOptions;
using pipeline::RuntimeHealth;
using pipeline::Scheduler;
using pipeline::SupervisorPolicy;
using pipeline::Task;
using pipeline::TaskHealth;
using pipeline::TaskPhase;
using pipeline::TaskState;

std::shared_ptr<OnlineNuevoMatch> make_online(const RuleSet& rules,
                                              double retrain_threshold = 1.0) {
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.auto_retrain = false;
  cfg.retrain_threshold = retrain_threshold;
  auto online = std::make_shared<OnlineNuevoMatch>(std::move(cfg));
  online->build(rules);
  return online;
}

TaskHealth task_health(const RuntimeHealth& h, const std::string& label) {
  for (const TaskHealth& t : h.tasks) {
    if (t.label == label) return t;
  }
  ADD_FAILURE() << "no task labeled " << label;
  return TaskHealth{};
}

// --- restart with backoff ---------------------------------------------------

// kRestart rides out transient failures: three throwing fires re-arm the
// task through the seeded backoff ladder (the engine's PR 6 shape) and the
// fourth fire onward completes normally — run() never sees an error, the
// restart count and the preserved last_error tell the story.
TEST(SupervisorRestart, BackoffConvergesAfterTransientFailures) {
  Scheduler sched(1);
  uint64_t attempts = 0;
  Task::Options topt;
  topt.label = "flaky";
  topt.policy = SupervisorPolicy::kRestart;
  topt.max_restarts = 5;
  topt.backoff_initial_ms = 1;
  topt.backoff_max_ms = 4;
  Task& t = sched.add(
      [&]() -> TaskState {
        if (++attempts <= 3) throw std::runtime_error("transient glitch");
        return attempts >= 8 ? TaskState::kDone : TaskState::kWorked;
      },
      std::move(topt));
  sched.run();  // converged: nothing escalates

  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.phase(), TaskPhase::kDone);
  EXPECT_EQ(t.restarts(), 3u);
  EXPECT_EQ(t.quarantines(), 0u);
  EXPECT_EQ(attempts, 8u);
  EXPECT_EQ(t.fires(), 8u);  // failed fires count as fires (bit-identical)

  const RuntimeHealth h = sched.health();
  EXPECT_EQ(h.restarts, 3u);
  EXPECT_EQ(h.quarantines, 0u);
  EXPECT_EQ(h.suppressed_errors, 0u);
  EXPECT_EQ(task_health(h, "flaky").last_error, "transient glitch");
}

// A task that exhausts max_restarts falls through to quarantine: the run
// ends cleanly (nothing else was alive), the task is left detached with its
// restart/quarantine counters and error preserved — not rethrown.
TEST(SupervisorRestart, ExhaustedRestartsFallThroughToQuarantine) {
  Scheduler sched(1);
  Task::Options topt;
  topt.label = "hopeless";
  topt.policy = SupervisorPolicy::kRestart;
  topt.max_restarts = 2;
  topt.backoff_initial_ms = 1;
  topt.backoff_max_ms = 2;
  Task& t = sched.add(
      []() -> TaskState { throw std::runtime_error("permanent fault"); },
      std::move(topt));
  sched.run();  // the quarantine releases liveness; no escalation

  EXPECT_FALSE(t.done());
  EXPECT_EQ(t.phase(), TaskPhase::kQuarantined);
  EXPECT_EQ(t.restarts(), 2u);
  EXPECT_EQ(t.quarantines(), 1u);
  const RuntimeHealth h = sched.health();
  EXPECT_EQ(h.restarts, 2u);
  EXPECT_EQ(h.quarantines, 1u);
  EXPECT_EQ(task_health(h, "hopeless").last_error, "permanent fault");
}

// --- quarantine -------------------------------------------------------------

// A quarantined task is detached, not fatal: its sibling keeps firing to
// completion and run() returns normally — the stop-the-world behavior is
// gone under kQuarantine (and ONLY under kQuarantine).
TEST(SupervisorQuarantine, IsolatesFailureFromSiblings) {
  Scheduler sched(1);
  Task::Options bad_opt;
  bad_opt.label = "bad";
  bad_opt.policy = SupervisorPolicy::kQuarantine;
  Task& bad = sched.add(
      []() -> TaskState { throw std::runtime_error("isolated crash"); },
      std::move(bad_opt));
  uint64_t good_fires = 0;
  Task& good = sched.add([&]() -> TaskState {
    return ++good_fires >= 50 ? TaskState::kDone : TaskState::kWorked;
  });
  sched.run();

  EXPECT_EQ(bad.phase(), TaskPhase::kQuarantined);
  EXPECT_EQ(bad.quarantines(), 1u);
  EXPECT_TRUE(good.done());
  EXPECT_EQ(good_fires, 50u);
  const RuntimeHealth h = sched.health();
  EXPECT_EQ(h.quarantines, 1u);
  EXPECT_EQ(h.suppressed_errors, 0u);  // quarantine suppresses NOTHING
  EXPECT_EQ(task_health(h, "bad").last_error, "isolated crash");
}

// The on_quarantine hook runs synchronously on the catching thread BEFORE
// liveness is released: a hook that reinstate()s keeps the scheduler alive
// through the failure even when the quarantined task was the only live one,
// and the task then completes its remaining work.
TEST(SupervisorQuarantine, HookReinstatesAndTaskCompletes) {
  Scheduler sched(1);
  uint64_t attempts = 0;
  Task::Options topt;
  topt.label = "phoenix";
  topt.policy = SupervisorPolicy::kQuarantine;
  Task& t = sched.add(
      [&]() -> TaskState {
        if (++attempts == 1) throw std::runtime_error("die once");
        return attempts >= 6 ? TaskState::kDone : TaskState::kWorked;
      },
      std::move(topt));
  int hook_calls = 0;
  sched.set_on_quarantine([&](Task& tk) {
    ++hook_calls;
    EXPECT_TRUE(sched.reinstate(tk));
  });
  sched.run();

  EXPECT_EQ(hook_calls, 1);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.quarantines(), 1u);
  EXPECT_EQ(attempts, 6u);
  EXPECT_FALSE(sched.reinstate(t));  // done, not quarantined
}

// --- escalation (the PR 7 semantics, unchanged) -----------------------------

// The default policy preserves stop-and-rethrow exactly: same exception out
// of run(), the healthy sibling is stopped undone, nothing is suppressed.
TEST(SupervisorEscalate, DefaultPolicyPreservesStopAndRethrow) {
  Scheduler sched(2);
  uint64_t fires = 0;
  Task& bomb = sched.add([&]() -> TaskState {
    if (++fires >= 5) throw std::runtime_error("boom");
    return TaskState::kWorked;
  });
  Task& forever = sched.add([]() -> TaskState { return TaskState::kWorked; });

  try {
    sched.run();
    FAIL() << "escalation must rethrow out of run()";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_TRUE(bomb.done());  // escalation finishes the task (original path)
  EXPECT_EQ(bomb.phase(), TaskPhase::kDone);
  EXPECT_FALSE(forever.done());
  const RuntimeHealth h = sched.health();
  EXPECT_EQ(h.quarantines, 0u);
  EXPECT_EQ(h.restarts, 0u);
  EXPECT_EQ(h.suppressed_errors, 0u);
}

// The satellite bugfix: errors beyond the first used to vanish without a
// trace. Two daemons failing their drain fires (which always run through
// ALL daemons, even after one throws) now surface as first_error_ plus a
// counted suppression — a multi-task failure is distinguishable again.
TEST(SupervisorEscalate, LaterErrorsAreCountedNotSwallowed) {
  Scheduler sched(1);
  uint64_t fires = 0;
  sched.add([&]() -> TaskState {
    // Finishes within one quantum, so neither daemon is fired before the
    // drain pass (threads=1: this task is popped first and runs to kDone).
    return ++fires >= 3 ? TaskState::kDone : TaskState::kWorked;
  });
  for (const char* what : {"drain failure A", "drain failure B"}) {
    Task::Options dopt;
    dopt.daemon = true;
    dopt.label = what;
    sched.add([what]() -> TaskState { throw std::runtime_error(what); },
              std::move(dopt));
  }

  EXPECT_THROW(sched.run(), std::runtime_error);
  const RuntimeHealth h = sched.health();
  EXPECT_EQ(h.suppressed_errors, 1u)
      << "the second drain failure was dropped without being counted";
  EXPECT_EQ(task_health(h, "drain failure A").last_error, "drain failure A");
  EXPECT_EQ(task_health(h, "drain failure B").last_error, "drain failure B");
}

// --- cooperative watchdog ---------------------------------------------------

// A task that keeps claiming kWorked without advancing its heartbeat is
// flagged stalled after stall_fires consecutive fires; a beating sibling
// with the same configuration never is. Budget overruns are counted for
// fires that exceed fire_budget_ns (sampled between fires — cooperative).
TEST(SupervisorWatchdog, FlagsStalledTaskAndCountsBudgetOverruns) {
  Scheduler sched(1);
  Task::Options liar_opt;
  liar_opt.label = "liar";
  liar_opt.stall_fires = 8;
  liar_opt.fire_budget_ns = 1;  // every real fire overruns 1ns
  uint64_t liar_fires = 0;
  Task& liar = sched.add(
      [&]() -> TaskState {
        volatile uint64_t sink = 0;
        for (int i = 0; i < 1000; ++i) sink += static_cast<uint64_t>(i);
        return ++liar_fires >= 40 ? TaskState::kDone : TaskState::kWorked;
      },
      std::move(liar_opt));
  Task::Options honest_opt;
  honest_opt.label = "honest";
  honest_opt.stall_fires = 8;
  uint64_t honest_fires = 0;
  Task& honest = sched.add(
      [&]() -> TaskState {
        Scheduler::current_task()->beat();  // real progress, every fire
        return ++honest_fires >= 40 ? TaskState::kDone : TaskState::kWorked;
      },
      std::move(honest_opt));
  sched.run();

  EXPECT_TRUE(liar.stalled()) << "40 no-progress kWorked fires, never flagged";
  EXPECT_GE(liar.budget_overruns(), 1u);
  EXPECT_FALSE(honest.stalled());
  const RuntimeHealth h = sched.health();
  EXPECT_TRUE(task_health(h, "liar").stalled);
  EXPECT_FALSE(task_health(h, "honest").stalled);
}

// reinstate() resets the watchdog with the restart ladder: a task flagged
// stalled BEFORE its quarantine must come back clean — its state was
// rebuilt, so a sticky STALLED flag in RuntimeHealth would be a lie.
TEST(SupervisorWatchdog, ReinstateClearsWatchdogState) {
  Scheduler sched(1);
  Task::Options topt;
  topt.label = "recoverer";
  topt.policy = SupervisorPolicy::kQuarantine;
  topt.stall_fires = 4;
  uint64_t fires = 0;
  Task& t = sched.add(
      [&]() -> TaskState {
        ++fires;
        if (fires <= 6) return TaskState::kWorked;  // no beat(): stalls at 4
        if (fires == 7) throw std::runtime_error("die stalled");
        Scheduler::current_task()->beat();  // healthy after the rejoin
        return fires >= 12 ? TaskState::kDone : TaskState::kWorked;
      },
      std::move(topt));
  bool stalled_at_quarantine = false;
  sched.set_on_quarantine([&](Task& tk) {
    stalled_at_quarantine = tk.stalled();
    EXPECT_TRUE(sched.reinstate(tk));
  });
  sched.run();

  EXPECT_TRUE(stalled_at_quarantine) << "the stall never registered";
  EXPECT_TRUE(t.done());
  EXPECT_FALSE(t.stalled()) << "reinstate left the pre-quarantine flag set";
  EXPECT_FALSE(task_health(sched.health(), "recoverer").stalled);
}

// --- the replicated recovery ladder -----------------------------------------

namespace {
struct ReplicatedFixture {
  RuleSet rules;
  std::shared_ptr<OnlineNuevoMatch> online;
  std::vector<Packet> trace;
  LinearSearch oracle;

  explicit ReplicatedFixture(uint64_t seed, size_t n_packets,
                             double retrain_threshold = 1.0) {
    rules = generate_classbench(AppClass::kAcl, 1, 300, seed);
    online = make_online(rules, retrain_threshold);
    TraceConfig tc;
    tc.kind = TraceConfig::Kind::kZipf;
    tc.n_packets = n_packets;
    trace = generate_trace(rules, tc);
    oracle.build(rules);
  }

  [[nodiscard]] ReplicatedGraph make_graph(uint32_t replicas,
                                           size_t cache = 1024) const {
    return ReplicatedGraph(replicas, [&](uint32_t, uint32_t) {
      Graph g;
      auto& src = g.add(std::make_unique<pipeline::TraceSource>(trace), "src");
      auto& fc =
          g.add(std::make_unique<pipeline::FlowCacheElement>(cache), "cache");
      auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
      cls_owned->attach(online);
      cls_owned->set_actions(rules);
      auto& cls = g.add(std::move(cls_owned), "cls");
      auto& sink = g.add(std::make_unique<pipeline::Sink>(true), "sink");
      g.connect(src, 0, fc);
      g.connect(fc, 0, cls);
      g.connect(cls, 0, sink);
      return g;
    });
  }

  // Every record must carry the oracle's answer; indices must cover each
  // position at most once (exactly-once when `complete`).
  void check_records(const std::vector<pipeline::Sink::Record>& got,
                     bool complete) const {
    std::vector<uint8_t> seen(trace.size(), 0);
    for (const auto& r : got) {
      ASSERT_LT(r.index, trace.size());
      EXPECT_EQ(++seen[r.index], 1) << "position served twice";
      EXPECT_EQ(r.rule_id, oracle.match(trace[r.index]).rule_id)
          << "stale/wrong decision at position " << r.index;
    }
    if (complete) EXPECT_EQ(got.size(), trace.size());
  }
};
}  // namespace

// THE acceptance drill: a failpoint kills replica 0 on its very first
// scheduled fire (the between-bursts seam — the lossless fault domain).
// The quarantine ladder re-steers its slice, drains its cache, rejoins it,
// and migrates the trainer — and the merged differential still matches the
// oracle EXACTLY: every position served exactly once, zero stale decisions.
TEST(ReplicatedRecovery, ReplicaCrashAtFireSeamLosesNothing) {
  const ReplicatedFixture fx(51, 4'000);
  ReplicatedGraph rg = fx.make_graph(2);
  const failpoint::Scoped crash(failpoint::kPipelineTaskFire,
                                failpoint::Trigger::nth(1));
  ReplicatedRunOptions opts;
  opts.threads = 1;  // deterministic: fire 1 is replica 0's first fire
  opts.policy = SupervisorPolicy::kQuarantine;
  const uint64_t total = rg.run(opts);

  EXPECT_EQ(total, fx.trace.size());
  fx.check_records(rg.merged_records(), /*complete=*/true);

  const PipelineHealth h = rg.health();
  ASSERT_EQ(h.replicas.size(), 2u);
  EXPECT_EQ(h.replicas[0].state, ReplicaHealth::State::kRejoined);
  EXPECT_EQ(h.replicas[0].quarantines, 1u);
  EXPECT_EQ(h.replicas[0].rejoins, 1u);
  EXPECT_EQ(h.replicas[1].state, ReplicaHealth::State::kLive);
  EXPECT_EQ(h.runtime.quarantines, 1u);
  EXPECT_EQ(h.rejoin_failures, 0u);
  EXPECT_EQ(h.steer_epochs, 3u);  // [0,C) full | [C,C+W) survivor | [C+W,∞) full
  EXPECT_GT(h.recovery_ns, 0u);
  // Replica 0 hosted the trainer; its death migrated the duties to the
  // lowest live replica — and they deliberately do NOT fail back on rejoin.
  EXPECT_EQ(h.trainer, 1u);
  EXPECT_EQ(h.trainer_failovers, 1u);
  EXPECT_FALSE(h.to_string().empty());
}

// Two crashes landing near-simultaneously on DIFFERENT scheduler threads:
// each catching thread runs the full recovery ladder, and the ladders must
// serialize (recovery_mu_) — concurrent steering appends, trainer
// failovers, or a premature un-pause would corrupt the re-steer. Under the
// TSAN leg this is the regression test for that race. first:2 fires on the
// first two scheduled fires, whichever threads get there first.
TEST(ReplicatedRecovery, ConcurrentReplicaCrashesSerializeAndLoseNothing) {
  const ReplicatedFixture fx(54, 4'000);
  ReplicatedGraph rg = fx.make_graph(3);
  const failpoint::Scoped crash(failpoint::kPipelineTaskFire,
                                failpoint::Trigger::first(2));
  ReplicatedRunOptions opts;
  opts.threads = 3;  // the two crashes race on separate catching threads
  opts.policy = SupervisorPolicy::kQuarantine;
  const uint64_t total = rg.run(opts);

  EXPECT_EQ(total, fx.trace.size());
  fx.check_records(rg.merged_records(), /*complete=*/true);

  const PipelineHealth h = rg.health();
  EXPECT_EQ(h.runtime.quarantines, 2u);
  uint32_t quarantines = 0, rejoins = 0;
  for (const ReplicaHealth& r : h.replicas) {
    quarantines += r.quarantines;
    rejoins += r.rejoins;
    EXPECT_NE(r.state, ReplicaHealth::State::kQuarantined)
        << "a crashed replica never rejoined";
  }
  EXPECT_EQ(quarantines, 2u);
  EXPECT_EQ(rejoins, 2u);
  EXPECT_EQ(h.rejoin_failures, 0u);
}

// Crash mid-burst instead (pipeline.push, inside element forwarding): the
// in-flight burst is lost — and ONLY that burst. The run still completes,
// the survivors' records all match the oracle, and nothing is served twice.
// Under the ASan leg this doubles as the crash-during-burst leak check.
TEST(ReplicatedRecovery, MidBurstCrashLosesAtMostOneBurst) {
  const ReplicatedFixture fx(52, 4'000);
  ReplicatedGraph rg = fx.make_graph(2);
  const failpoint::Scoped crash(failpoint::kPipelinePush,
                                failpoint::Trigger::first(1));
  ReplicatedRunOptions opts;
  opts.threads = 1;
  opts.policy = SupervisorPolicy::kQuarantine;
  const uint64_t total = rg.run(opts);

  const std::vector<pipeline::Sink::Record> got = rg.merged_records();
  EXPECT_LT(got.size(), fx.trace.size()) << "the crash never fired";
  EXPECT_GE(got.size(), fx.trace.size() - pipeline::kBurstSize)
      << "a mid-burst crash may lose at most ONE burst";
  EXPECT_EQ(total, got.size());
  fx.check_records(got, /*complete=*/false);

  const PipelineHealth h = rg.health();
  EXPECT_EQ(h.runtime.quarantines, 1u);
  EXPECT_EQ(h.replicas[0].quarantines + h.replicas[1].quarantines, 1u);
}

// rejoin=false is the deliberate lossy degraded mode: the dead replica
// stays down, survivors serve its slice from the cutover on, and only the
// not-yet-resteered remainder of the dead slice is missing. The records
// that ARE served still all match the oracle, and the trainer still fails
// over away from the dead replica.
TEST(ReplicatedRecovery, NoRejoinDegradesButServesCorrectly) {
  const ReplicatedFixture fx(53, 4'000);
  ReplicatedGraph rg = fx.make_graph(3);
  const failpoint::Scoped crash(failpoint::kPipelineTaskFire,
                                failpoint::Trigger::nth(1));
  ReplicatedRunOptions opts;
  opts.threads = 1;
  opts.policy = SupervisorPolicy::kQuarantine;
  opts.rejoin = false;
  const uint64_t total = rg.run(opts);
  (void)total;

  const std::vector<pipeline::Sink::Record> got = rg.merged_records();
  fx.check_records(got, /*complete=*/false);
  // Crash on fire 1: the cutover is position 0, so the WHOLE dead slice is
  // re-steered to the survivors and nothing at all is missing — degraded
  // mode loses only what sat between the dead replica's position and the
  // cutover (here: nothing).
  EXPECT_EQ(got.size(), fx.trace.size());

  const PipelineHealth h = rg.health();
  EXPECT_EQ(h.replicas[0].state, ReplicaHealth::State::kQuarantined);
  EXPECT_EQ(h.replicas[0].rejoins, 0u);
  EXPECT_EQ(h.steer_epochs, 2u);  // no rejoin → no restore epoch
  EXPECT_EQ(h.trainer, 1u);
  EXPECT_EQ(h.trainer_failovers, 1u);
}

// An injected rejoin failure (pipeline.replica.rejoin) turns a would-be
// rejoin into a lossy quarantine and is counted as such.
TEST(ReplicatedRecovery, InjectedRejoinFailureIsCountedAndSurvivable) {
  const ReplicatedFixture fx(54, 3'000);
  ReplicatedGraph rg = fx.make_graph(2);
  const failpoint::Scoped crash(failpoint::kPipelineTaskFire,
                                failpoint::Trigger::nth(1));
  const failpoint::Scoped no_rejoin(failpoint::kPipelineRejoin,
                                    failpoint::Trigger::always());
  ReplicatedRunOptions opts;
  opts.threads = 1;
  opts.policy = SupervisorPolicy::kQuarantine;
  rg.run(opts);

  fx.check_records(rg.merged_records(), /*complete=*/true);  // cutover was 0
  const PipelineHealth h = rg.health();
  EXPECT_EQ(h.rejoin_failures, 1u);
  EXPECT_EQ(h.replicas[0].state, ReplicaHealth::State::kQuarantined);
  EXPECT_EQ(h.replicas[0].rejoins, 0u);
}

// Trainer failover end to end: the retrain daemon keeps publishing
// generations AFTER the replica hosting training duties died — pre-run
// churn puts absorption past threshold, the crash migrates the duties, and
// the daemon (gated on a live trainer) still kicks the swap.
TEST(ReplicatedRecovery, TrainerFailoverStillPublishesGenerations) {
  ReplicatedFixture fx(55, 3'000, /*retrain_threshold=*/0.01);
  for (uint32_t i = 0; i < 20; ++i) {
    Rule r = fx.rules[i % fx.rules.size()];
    r.id = 900'000 + i;
    r.priority = 1'000 + static_cast<int32_t>(i);
    ASSERT_TRUE(fx.online->insert(r));
  }
  const uint64_t gen0 = fx.online->generations();

  ReplicatedGraph rg = fx.make_graph(2);
  const failpoint::Scoped crash(failpoint::kPipelineTaskFire,
                                failpoint::Trigger::nth(1));
  ReplicatedRunOptions opts;
  opts.threads = 1;
  opts.policy = SupervisorPolicy::kQuarantine;
  opts.retrain_task = true;
  rg.run(opts);
  fx.online->quiesce();

  const PipelineHealth h = rg.health();
  EXPECT_EQ(h.trainer, 1u);
  EXPECT_EQ(h.trainer_failovers, 1u);
  EXPECT_GT(fx.online->generations(), gen0)
      << "the migrated retrain daemon never published a generation";
  // Churn rules are WORSE-priority than every base rule, so the oracle
  // differential is unchanged by the pre-run inserts.
  fx.check_records(rg.merged_records(), /*complete=*/true);
}

// Default-policy guard: a supervised option set that never crashes must be
// byte-identical to the unsupervised run — same records, same totals — and
// an ESCALATE run with a crash must still rethrow (the PR 7 surface through
// the ReplicatedGraph layer, not just the bare scheduler).
TEST(ReplicatedRecovery, QuietSupervisedRunMatchesUnsupervised) {
  const ReplicatedFixture fx(56, 3'000);
  ReplicatedGraph plain = fx.make_graph(2);
  EXPECT_EQ(plain.run(), fx.trace.size());
  const std::vector<pipeline::Sink::Record> want = plain.merged_records();

  ReplicatedGraph supervised = fx.make_graph(2);
  ReplicatedRunOptions opts;
  opts.policy = SupervisorPolicy::kQuarantine;  // armed but never triggered
  EXPECT_EQ(supervised.run(opts), fx.trace.size());
  const std::vector<pipeline::Sink::Record> got = supervised.merged_records();

  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index);
    EXPECT_EQ(got[i].rule_id, want[i].rule_id);
    EXPECT_EQ(got[i].priority, want[i].priority);
  }
  const PipelineHealth h = supervised.health();
  EXPECT_EQ(h.runtime.quarantines, 0u);
  EXPECT_EQ(h.steer_epochs, 1u);

  ReplicatedGraph escalating = fx.make_graph(2);
  const failpoint::Scoped crash(failpoint::kPipelineTaskFire,
                                failpoint::Trigger::nth(1));
  EXPECT_THROW(escalating.run(), std::runtime_error);
}

}  // namespace
}  // namespace nuevomatch
