// Batched inference differential tests (DESIGN.md "Batched inference
// engine"): lookup_batch must return byte-identical Predictions to the
// per-key scalar reference lookup(key, kSerial) at EVERY SIMD level,
// for every batch shape — including ragged tails — and the flat arena must
// be rebuilt transparently by the serializer's load path.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "rqrmi/kernel.hpp"
#include "rqrmi/model.hpp"
#include "serialize/serialize.hpp"

namespace nuevomatch::rqrmi {
namespace {

std::vector<KeyInterval> make_intervals(size_t n, uint64_t seed) {
  Rng rng{seed};
  std::vector<KeyInterval> ivs;
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = (0.5 + rng.next_double()) / static_cast<double>(n);
    ivs.push_back(KeyInterval{x, x + w * 0.8, static_cast<uint32_t>(i)});
    x += w;
  }
  for (auto& iv : ivs) {
    iv.lo /= x;
    iv.hi /= x;
  }
  return ivs;
}

std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> out{SimdLevel::kSerial};
  if (simd_level_available(SimdLevel::kSse)) out.push_back(SimdLevel::kSse);
  if (simd_level_available(SimdLevel::kAvx)) out.push_back(SimdLevel::kAvx);
  return out;
}

/// Keys stressing the whole routing space: uniform, plus bucket-boundary
/// neighbourhoods where a one-ulp difference would flip the routed submodel.
std::vector<float> make_keys(size_t n, uint64_t seed) {
  Rng rng{seed};
  std::vector<float> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 == 3) {
      // Near k/256 bucket edges of the widest stage.
      const double edge = static_cast<double>(rng.below(256)) / 256.0;
      keys.push_back(std::nextafter(static_cast<float>(edge),
                                    (i % 2 != 0) ? 2.0f : -2.0f));
    } else {
      keys.push_back(static_cast<float>(rng.next_double()));
    }
    if (keys.back() < 0.0f) keys.back() = 0.0f;
    if (keys.back() >= 1.0f) keys.back() = kOneBelow;
  }
  return keys;
}

void expect_batch_equals_scalar(const RqRmi& model, std::span<const float> keys,
                                const char* ctx) {
  std::vector<Prediction> want(keys.size());
  for (size_t i = 0; i < keys.size(); ++i)
    want[i] = model.lookup(keys[i], SimdLevel::kSerial);
  for (const SimdLevel level : available_levels()) {
    std::vector<Prediction> got(keys.size(), Prediction{0xDEAD, 0xDEAD});
    model.lookup_batch(keys, got, level);
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(got[i].index, want[i].index)
          << ctx << " level=" << to_string(level) << " key[" << i
          << "]=" << keys[i];
      ASSERT_EQ(got[i].search_error, want[i].search_error)
          << ctx << " level=" << to_string(level) << " key[" << i
          << "]=" << keys[i];
    }
  }
}

struct ModelCase {
  size_t n;
  std::vector<uint32_t> widths;
  uint64_t seed;
};

class BatchDifferential : public ::testing::TestWithParam<ModelCase> {};

TEST_P(BatchDifferential, BatchMatchesScalarLookup) {
  const ModelCase& c = GetParam();
  RqRmiConfig cfg;
  cfg.stage_widths = c.widths;
  RqRmi model;
  model.build(make_intervals(c.n, c.seed), cfg);
  ASSERT_TRUE(model.trained());
  const auto keys = make_keys(4096, c.seed ^ 0xBEEF);
  expect_batch_equals_scalar(model, keys, "full");
}

TEST_P(BatchDifferential, RaggedTailSizes) {
  const ModelCase& c = GetParam();
  RqRmiConfig cfg;
  cfg.stage_widths = c.widths;
  RqRmi model;
  model.build(make_intervals(c.n, c.seed), cfg);
  const auto keys = make_keys(17, c.seed ^ 0xACE);
  // Every size 1..17 covers: below one SSE group, between SSE and AVX group
  // sizes, exact multiples, and multiples plus ragged tails.
  for (size_t len = 1; len <= keys.size(); ++len) {
    expect_batch_equals_scalar(
        model, std::span<const float>{keys.data(), len},
        ("len=" + std::to_string(len)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BatchDifferential,
    ::testing::Values(ModelCase{200, {1, 4}, 11}, ModelCase{1500, {1, 4, 16}, 12},
                      ModelCase{5000, {1, 4, 128}, 13},
                      ModelCase{20000, {1, 8, 256}, 14},
                      ModelCase{1, {1, 4}, 15}, ModelCase{3, {1, 4}, 16}));

TEST(BatchLookup, TrivialModelYieldsEmptyPredictions) {
  RqRmi model;
  model.build({}, default_config(0));
  const std::vector<float> keys{0.1f, 0.5f, 0.9f};
  std::vector<Prediction> out(keys.size(), Prediction{7, 7});
  model.lookup_batch(keys, out);
  for (const Prediction& p : out) {
    EXPECT_EQ(p.index, 0u);
    EXPECT_EQ(p.search_error, 0u);
  }
}

TEST(BatchLookup, ArenaRebuiltBySerializerLoadPath) {
  RqRmiConfig cfg;
  cfg.stage_widths = {1, 4, 16};
  RqRmi model;
  model.build(make_intervals(2000, 21), cfg);
  const auto bytes = serialize::save_model(model);
  const auto loaded = serialize::load_model(bytes);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_FALSE(loaded->arena().empty());
  const auto keys = make_keys(513, 22);
  expect_batch_equals_scalar(*loaded, keys, "loaded");
  // Loaded-model batch predictions equal original-model batch predictions.
  std::vector<Prediction> a(keys.size());
  std::vector<Prediction> b(keys.size());
  model.lookup_batch(keys, a);
  loaded->lookup_batch(keys, b);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].search_error, b[i].search_error);
  }
}

TEST(BatchLookup, DispatchCeilingIsAvailable) {
  EXPECT_TRUE(simd_level_available(dispatch_ceiling()));
  EXPECT_TRUE(cpu_supports(SimdLevel::kSerial));
}

TEST(BatchLookup, ArenaAccountsMemory) {
  RqRmiConfig cfg;
  cfg.stage_widths = {1, 4};
  RqRmi model;
  model.build(make_intervals(100, 31), cfg);
  EXPECT_GT(model.arena_bytes(), 0u);
  // Transposed copy holds the same 25 floats per submodel plus padding and
  // the leaf table; it must stay the same order of magnitude as the packed
  // representation (cache-residency argument, paper Figure 1).
  EXPECT_LT(model.arena_bytes(), 16 * model.memory_bytes() + 4096);
}

}  // namespace
}  // namespace nuevomatch::rqrmi
