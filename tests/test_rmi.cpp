// Classic RMI baseline (paper §3.1/§3.2): the exact-key learned index whose
// limitations motivate RQ-RMI. These tests pin down (a) the guarantee RMI
// DOES give — every TRAINING key is found within the certified bound — and
// (b) the costs RQ-RMI removes: exhaustive range enumeration, whose blow-up
// we verify against the paper's own 46,592-pair example.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/prefix.hpp"
#include "common/rng.hpp"
#include "rmi/rmi.hpp"
#include "rqrmi/model.hpp"

namespace nuevomatch::rmi {
namespace {

std::vector<KeyIndex> dense_sorted_keys(size_t n, uint64_t seed) {
  Rng rng{seed};
  std::vector<double> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(rng.next_double());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<KeyIndex> out;
  out.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i)
    out.push_back(KeyIndex{keys[i], static_cast<uint32_t>(i)});
  return out;
}

void expect_training_keys_within_bound(const Rmi& model, std::span<const KeyIndex> pairs) {
  for (const KeyIndex& p : pairs) {
    const auto pred = model.lookup(static_cast<float>(p.key));
    const auto lo = static_cast<int64_t>(pred.index) - pred.search_error;
    const auto hi = static_cast<int64_t>(pred.index) + pred.search_error;
    ASSERT_TRUE(static_cast<int64_t>(p.index) >= lo && static_cast<int64_t>(p.index) <= hi)
        << "key=" << p.key << " true=" << p.index << " pred=" << pred.index
        << " err=" << pred.search_error;
  }
}

struct RmiCase {
  size_t n;
  std::vector<uint32_t> widths;
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const RmiCase& c) {
    os << "n" << c.n << "_w";
    for (uint32_t w : c.widths) os << w << "_";
    return os << "s" << c.seed;
  }
};

class RmiTrainingGuarantee : public ::testing::TestWithParam<RmiCase> {};

TEST_P(RmiTrainingGuarantee, AllTrainingKeysWithinCertifiedBound) {
  const auto& c = GetParam();
  const auto pairs = dense_sorted_keys(c.n, c.seed);
  RmiConfig cfg;
  cfg.stage_widths = c.widths;
  cfg.seed = c.seed;
  Rmi model;
  model.build(pairs, cfg);
  ASSERT_TRUE(model.trained());
  expect_training_keys_within_bound(model, pairs);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RmiTrainingGuarantee,
                         ::testing::Values(RmiCase{16, {1, 4}, 1},
                                           RmiCase{200, {1, 4}, 2},
                                           RmiCase{1000, {1, 4, 16}, 3},
                                           RmiCase{5000, {1, 4, 16}, 4},
                                           RmiCase{5000, {1, 8, 64}, 5},
                                           RmiCase{20000, {1, 8, 128}, 6}));

TEST(Rmi, EmptyAndSingleKey) {
  Rmi empty;
  empty.build({}, RmiConfig{});
  EXPECT_FALSE(empty.trained());
  EXPECT_EQ(empty.lookup(0.5f).index, 0u);

  Rmi one;
  one.build({KeyIndex{0.25, 0}}, RmiConfig{});
  EXPECT_TRUE(one.trained());
  const auto pred = one.lookup(0.25f);
  EXPECT_LE(pred.index, pred.search_error);  // position 0 within bound
}

TEST(Rmi, DuplicateKeysKeepSmallestIndex) {
  std::vector<KeyIndex> pairs{{0.1, 3}, {0.1, 1}, {0.5, 2}};
  Rmi model;
  model.build(pairs, RmiConfig{});
  EXPECT_EQ(model.num_keys(), 2u);
  expect_training_keys_within_bound(model, std::vector<KeyIndex>{{0.1, 1}, {0.5, 2}});
}

TEST(Rmi, RejectsBadStageWidths) {
  Rmi model;
  RmiConfig cfg;
  cfg.stage_widths = {4, 4};
  EXPECT_THROW(model.build({KeyIndex{0.5, 0}}, cfg), std::invalid_argument);
  cfg.stage_widths.clear();
  EXPECT_THROW(model.build({KeyIndex{0.5, 0}}, cfg), std::invalid_argument);
}

TEST(Rmi, MemoryAccountsAllSubmodels) {
  const auto pairs = dense_sorted_keys(2000, 7);
  RmiConfig cfg;
  cfg.stage_widths = {1, 4, 16};
  Rmi model;
  model.build(pairs, cfg);
  EXPECT_EQ(model.num_submodels(), 21u);
  EXPECT_EQ(model.memory_bytes(),
            21 * rqrmi::Submodel::packed_bytes() + 16 * sizeof(uint32_t));
}

// --- enumeration costs (the Section 3.2 blow-up) ---------------------------

TEST(Enumeration, PaperWildcardExampleIs46592Pairs) {
  // Paper §3.2: dst 0.0.0.* (256 keys) x port 10-100 (91 keys) x
  // protocol TCP/UDP (2 keys) = 46,592 distinct key-index pairs.
  Rule r;
  r.field[kDstIp] = Range{0, 255};
  r.field[kDstPort] = Range{10, 100};
  r.field[kProto] = Range{6, 7};  // two protocol values
  const int fields[] = {kDstIp, kDstPort, kProto};
  EXPECT_EQ(enumeration_cost(r, fields), 46'592u);
}

TEST(Enumeration, SaturatesInsteadOfOverflowing) {
  Rule r;
  for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
  const int fields[] = {kSrcIp, kDstIp, kSrcPort, kDstPort, kProto};
  EXPECT_EQ(enumeration_cost(r, fields), UINT64_MAX);
}

TEST(Enumeration, RulesetCostIsSumOfSpans) {
  RuleSet rules(3);
  rules[0].field[kDstPort] = Range{0, 9};      // 10 keys
  rules[1].field[kDstPort] = Range{100, 100};  // 1 key
  rules[2].field[kDstPort] = Range{50, 57};    // 8 keys
  canonicalize(rules);
  EXPECT_EQ(enumeration_cost(rules, kDstPort), 19u);
}

TEST(Enumeration, MaterializationHonorsPriorities) {
  // Two overlapping ranges: the higher-priority rule must own the overlap.
  RuleSet rules(2);
  rules[0].field[kDstPort] = Range{10, 20};  // priority 0 (wins)
  rules[1].field[kDstPort] = Range{15, 30};  // priority 1
  canonicalize(rules);
  const auto pairs = enumerate_range_keys(rules, kDstPort, 1u << 20);
  ASSERT_EQ(pairs.size(), 21u);  // keys 10..30
  const uint64_t domain = kFieldDomain[kDstPort];
  for (const KeyIndex& p : pairs) {
    const auto key = static_cast<uint64_t>(
        std::llround(p.key * static_cast<double>(domain + 1)));
    const uint32_t want = key <= 20 ? 0u : 1u;
    EXPECT_EQ(p.index, want) << "key=" << key;
  }
}

TEST(Enumeration, CapAbortsOversizedMaterialization) {
  RuleSet rules(1);
  rules[0].field[kDstIp] = full_range(kDstIp);
  canonicalize(rules);
  EXPECT_TRUE(enumerate_range_keys(rules, kDstIp, 1u << 20).empty());
}

// --- RMI vs RQ-RMI on the same data ----------------------------------------

TEST(RmiVsRqRmi, EnumeratedRangesMatchIntervalTraining) {
  // On a small port-range rule-set, the RMI CAN index the ranges — after
  // materializing every key. RQ-RMI indexes the same ranges directly. Both
  // must answer every in-range key within their bounds; the point of the
  // contrast is the input size: RMI needed `cost` pairs, RQ-RMI needed n.
  Rng rng{11};
  RuleSet rules;
  uint32_t at = 0;
  for (int i = 0; i < 64; ++i) {
    Rule r;
    const uint32_t len = 1 + static_cast<uint32_t>(rng.below(200));
    r.field[kDstPort] = Range{at, at + len - 1};
    at += len + 1 + static_cast<uint32_t>(rng.below(50));
    rules.push_back(r);
  }
  canonicalize(rules);

  const uint64_t cost = enumeration_cost(rules, kDstPort);
  EXPECT_GT(cost, rules.size());  // strictly more pairs than ranges

  const auto pairs = enumerate_range_keys(rules, kDstPort, 1u << 20);
  ASSERT_EQ(pairs.size(), cost);
  Rmi rmi;
  RmiConfig rcfg;
  rcfg.stage_widths = {1, 4};
  rmi.build(pairs, rcfg);

  std::vector<rqrmi::KeyInterval> ivs;
  const uint64_t domain = kFieldDomain[kDstPort];
  for (const Rule& r : rules) {
    ivs.push_back(rqrmi::KeyInterval{
        rqrmi::normalize_key_exact(r.field[kDstPort].lo, domain),
        rqrmi::normalize_key_exact(static_cast<uint64_t>(r.field[kDstPort].hi) + 1, domain),
        r.id});
  }
  rqrmi::RqRmi rq;
  rqrmi::RqRmiConfig qcfg;
  qcfg.stage_widths = {1, 4};
  rq.build(ivs, qcfg);

  // RMI: every materialized key enjoys the training-key guarantee.
  expect_training_keys_within_bound(rmi, pairs);
  // RQ-RMI: the guarantee holds for every key by construction — verify it on
  // the same enumeration without having trained on it.
  for (const Rule& r : rules) {
    for (uint32_t k = r.field[kDstPort].lo; k <= r.field[kDstPort].hi; ++k) {
      const auto qp = rq.lookup(rqrmi::normalize_key(k, domain));
      ASSERT_LE(std::abs(static_cast<int64_t>(r.id) - static_cast<int64_t>(qp.index)),
                static_cast<int64_t>(qp.search_error));
    }
  }
}

}  // namespace
}  // namespace nuevomatch::rmi
