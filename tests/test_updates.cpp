// Rule updates (paper §3.9): deletions tombstone iSet rules, additions land
// in the remainder, matching-set changes are delete+insert, and periodic
// rebuild() restores the trained state. Results must stay oracle-exact
// through arbitrary update sequences.
#include <gtest/gtest.h>

#include <memory>

#include "classbench/generator.hpp"
#include "classifiers/linear.hpp"
#include "common/rng.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

NuevoMatch make_nm() {
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  return NuevoMatch{cfg};
}

void expect_equal_on_trace(Classifier& a, Classifier& b, const RuleSet& rules,
                           uint64_t seed) {
  TraceConfig tc;
  tc.n_packets = 2500;
  tc.seed = seed;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(a.match(p).rule_id, b.match(p).rule_id) << to_string(p);
}

TEST(Updates, DeletionsStayExact) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 3000, 1);
  NuevoMatch nm = make_nm();
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);
  Rng rng{2};
  for (int i = 0; i < 300; ++i) {
    const auto victim = static_cast<uint32_t>(rng.below(rules.size()));
    EXPECT_EQ(nm.erase(victim), oracle.erase(victim)) << "victim " << victim;
  }
  expect_equal_on_trace(nm, oracle, rules, 3);
}

TEST(Updates, InsertionsGoToRemainderAndStayExact) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 2000, 4);
  NuevoMatch nm = make_nm();
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);
  const size_t rem_before = nm.remainder_size();
  RuleSet extra = generate_classbench(AppClass::kFw, 2, 200, 5);
  for (size_t i = 0; i < extra.size(); ++i) {
    extra[i].id = static_cast<uint32_t>(100'000 + i);
    extra[i].priority = -static_cast<int32_t>(i) - 1;  // new rules on top
    ASSERT_TRUE(nm.insert(extra[i]));
    ASSERT_TRUE(oracle.insert(extra[i]));
  }
  EXPECT_EQ(nm.remainder_size(), rem_before + extra.size());
  RuleSet all = rules;
  all.insert(all.end(), extra.begin(), extra.end());
  expect_equal_on_trace(nm, oracle, all, 6);
}

TEST(Updates, MatchingSetChangeIsDeletePlusInsert) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 1500, 7);
  NuevoMatch nm = make_nm();
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);
  // Narrow rule 10's dst port (a matching-set change, §3.9 type iii).
  Rule changed = rules[10];
  changed.field[kDstPort] = Range{80, 80};
  ASSERT_TRUE(nm.erase(10));
  ASSERT_TRUE(nm.insert(changed));
  ASSERT_TRUE(oracle.erase(10));
  ASSERT_TRUE(oracle.insert(changed));
  expect_equal_on_trace(nm, oracle, rules, 8);
}

TEST(Updates, PressureTracksMigratedFraction) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 1000, 9);
  NuevoMatch nm = make_nm();
  nm.build(rules);
  EXPECT_DOUBLE_EQ(nm.update_pressure(), 0.0);
  Rule r = rules[0];
  r.id = 50'000;
  nm.insert(r);
  EXPECT_NEAR(nm.update_pressure(), 1.0 / 1000.0, 1e-9);
}

TEST(Updates, RebuildResetsPressureAndStaysExact) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 2000, 10);
  NuevoMatch nm = make_nm();
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);
  Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    Rule r = rules[rng.below(rules.size())];
    r.id = static_cast<uint32_t>(200'000 + i);
    r.priority = 100'000 + i;  // lowest priority: purely additive
    nm.insert(r);
    oracle.insert(r);
  }
  EXPECT_GT(nm.update_pressure(), 0.0);
  nm.rebuild();  // the paper's periodic retraining
  EXPECT_DOUBLE_EQ(nm.update_pressure(), 0.0);
  expect_equal_on_trace(nm, oracle, rules, 12);
}

TEST(Updates, EraseUnknownIdFails) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 300, 13);
  NuevoMatch nm = make_nm();
  nm.build(rules);
  EXPECT_FALSE(nm.erase(0xDEAD0000));
  EXPECT_EQ(nm.size(), rules.size());
}

TEST(Updates, ActionChangeNeedsNoStructuralUpdate) {
  // §3.9 type (i): the action lives in the value array; rule bodies are
  // shared. Verify lookup is unaffected by action rewrite.
  RuleSet rules = generate_classbench(AppClass::kAcl, 3, 500, 14);
  NuevoMatch nm = make_nm();
  nm.build(rules);
  TraceConfig tc;
  tc.n_packets = 300;
  const auto before = generate_trace(rules, tc);
  std::vector<int32_t> ids;
  for (const Packet& p : before) ids.push_back(nm.match(p).rule_id);
  for (Rule& r : rules) r.action ^= 0x7;  // rewrite actions only
  size_t i = 0;
  for (const Packet& p : before) EXPECT_EQ(nm.match(p).rule_id, ids[i++]);
}

}  // namespace
}  // namespace nuevomatch
