// Rule updates (paper §3.9): deletions tombstone iSet rules, additions land
// in the remainder, matching-set changes are delete+insert, and periodic
// rebuild() restores the trained state. Results must stay oracle-exact
// through arbitrary update sequences.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "classbench/generator.hpp"
#include "classifiers/linear.hpp"
#include "common/rng.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "nuevomatch/online.hpp"
#include "serialize/serialize.hpp"
#include "trace/trace.hpp"
#include "trace/verification.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

NuevoMatch make_nm() {
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  return NuevoMatch{cfg};
}

void expect_equal_on_trace(Classifier& a, Classifier& b, const RuleSet& rules,
                           uint64_t seed) {
  TraceConfig tc;
  tc.n_packets = 2500;
  tc.seed = seed;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(a.match(p).rule_id, b.match(p).rule_id) << to_string(p);
}

TEST(Updates, DeletionsStayExact) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 3000, 1);
  NuevoMatch nm = make_nm();
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);
  Rng rng{2};
  for (int i = 0; i < 300; ++i) {
    const auto victim = static_cast<uint32_t>(rng.below(rules.size()));
    EXPECT_EQ(nm.erase(victim), oracle.erase(victim)) << "victim " << victim;
  }
  expect_equal_on_trace(nm, oracle, rules, 3);
}

TEST(Updates, InsertionsGoToRemainderAndStayExact) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 2000, 4);
  NuevoMatch nm = make_nm();
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);
  const size_t rem_before = nm.remainder_size();
  RuleSet extra = generate_classbench(AppClass::kFw, 2, 200, 5);
  for (size_t i = 0; i < extra.size(); ++i) {
    extra[i].id = static_cast<uint32_t>(100'000 + i);
    extra[i].priority = -static_cast<int32_t>(i) - 1;  // new rules on top
    ASSERT_TRUE(nm.insert(extra[i]));
    ASSERT_TRUE(oracle.insert(extra[i]));
  }
  EXPECT_EQ(nm.remainder_size(), rem_before + extra.size());
  RuleSet all = rules;
  all.insert(all.end(), extra.begin(), extra.end());
  expect_equal_on_trace(nm, oracle, all, 6);
}

TEST(Updates, MatchingSetChangeIsDeletePlusInsert) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 1500, 7);
  NuevoMatch nm = make_nm();
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);
  // Narrow rule 10's dst port (a matching-set change, §3.9 type iii).
  Rule changed = rules[10];
  changed.field[kDstPort] = Range{80, 80};
  ASSERT_TRUE(nm.erase(10));
  ASSERT_TRUE(nm.insert(changed));
  ASSERT_TRUE(oracle.erase(10));
  ASSERT_TRUE(oracle.insert(changed));
  expect_equal_on_trace(nm, oracle, rules, 8);
}

TEST(Updates, PressureTracksMigratedFraction) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 1000, 9);
  NuevoMatch nm = make_nm();
  nm.build(rules);
  EXPECT_DOUBLE_EQ(nm.update_pressure(), 0.0);
  Rule r = rules[0];
  r.id = 50'000;
  nm.insert(r);
  EXPECT_NEAR(nm.update_pressure(), 1.0 / 1000.0, 1e-9);
}

TEST(Updates, RebuildResetsPressureAndStaysExact) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 2000, 10);
  NuevoMatch nm = make_nm();
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);
  Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    Rule r = rules[rng.below(rules.size())];
    r.id = static_cast<uint32_t>(200'000 + i);
    r.priority = 100'000 + i;  // lowest priority: purely additive
    nm.insert(r);
    oracle.insert(r);
  }
  EXPECT_GT(nm.update_pressure(), 0.0);
  nm.rebuild();  // the paper's periodic retraining
  EXPECT_DOUBLE_EQ(nm.update_pressure(), 0.0);
  expect_equal_on_trace(nm, oracle, rules, 12);
}

TEST(Updates, EraseUnknownIdFails) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 300, 13);
  NuevoMatch nm = make_nm();
  nm.build(rules);
  EXPECT_FALSE(nm.erase(0xDEAD0000));
  EXPECT_EQ(nm.size(), rules.size());
}

TEST(Updates, DuplicateIdInsertFails) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 400, 15);
  NuevoMatch nm = make_nm();
  nm.build(rules);
  EXPECT_FALSE(nm.insert(rules[5])) << "ids are unique across the rule-set";
  EXPECT_EQ(nm.size(), rules.size());
}

TEST(Updates, ActionChangeNeedsNoStructuralUpdate) {
  // §3.9 type (i): the action lives in the value array; rule bodies are
  // shared. Verify lookup is unaffected by action rewrite.
  RuleSet rules = generate_classbench(AppClass::kAcl, 3, 500, 14);
  NuevoMatch nm = make_nm();
  nm.build(rules);
  TraceConfig tc;
  tc.n_packets = 300;
  const auto before = generate_trace(rules, tc);
  std::vector<int32_t> ids;
  for (const Packet& p : before) ids.push_back(nm.match(p).rule_id);
  for (Rule& r : rules) r.action ^= 0x7;  // rewrite actions only
  size_t i = 0;
  for (const Packet& p : before) EXPECT_EQ(nm.match(p).rule_id, ids[i++]);
}

// ---------------------------------------------------------------------------
// OnlineNuevoMatch: the concurrent update subsystem (remainder absorption +
// background retrain + RCU generation swap). Stable-core methodology: churn
// only ever adds/removes rules with strictly *worse* priority than every
// base rule, and verification packets are pre-filtered to ones that hit a
// base rule — so their expected answer is invariant under churn and every
// lookup can be checked against a static linear-search oracle while updates
// and retrains race it.
// ---------------------------------------------------------------------------

OnlineConfig make_online_cfg(double threshold = 0.05, bool auto_retrain = true) {
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.retrain_threshold = threshold;
  cfg.auto_retrain = auto_retrain;
  return cfg;
}

TEST(OnlineUpdates, InsertThenMatchIsImmediatelyVisible) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 1500, 21);
  OnlineNuevoMatch nm{make_online_cfg(/*threshold=*/1.0)};  // no auto retrain
  nm.build(rules);

  // A top-priority rule matching one specific packet.
  Packet p;
  for (int f = 0; f < kNumFields; ++f) p.field[static_cast<size_t>(f)] = 1u;
  Rule r;
  for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = Range{1, 1};
  r.id = 77'000;
  r.priority = -100;
  ASSERT_TRUE(nm.insert(r));
  EXPECT_EQ(nm.match(p).rule_id, 77'000);
  EXPECT_GT(nm.absorption(), 0.0);
}

TEST(OnlineUpdates, RemoveThenMatchDropsRule) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 1500, 22);
  OnlineNuevoMatch nm{make_online_cfg(/*threshold=*/1.0)};
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);
  const StableCore core = make_stable_core(rules, 1500, 23);
  ASSERT_FALSE(core.packets.empty());
  // Erase the rule answering the first core packet; both must agree after.
  const auto victim = static_cast<uint32_t>(core.expected[0]);
  ASSERT_TRUE(nm.erase(victim));
  ASSERT_TRUE(oracle.erase(victim));
  for (size_t i = 0; i < core.packets.size(); ++i) {
    ASSERT_EQ(nm.match(core.packets[i]).rule_id, oracle.match(core.packets[i]).rule_id)
        << "packet " << i;
  }
}

TEST(OnlineUpdates, RetrainSwapUnderConcurrentLookups) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 2500, 24);
  OnlineNuevoMatch nm{make_online_cfg(/*threshold=*/0.02)};
  nm.build(rules);
  const uint64_t gen0 = nm.generations();
  const StableCore core = make_stable_core(rules, 2500, 25);
  ASSERT_GT(core.packets.size(), 100u);

  // Readers hammer the stable core while the updater pushes absorption past
  // the threshold; the auto-triggered background retrain swaps generations
  // underneath them.
  std::atomic<bool> run{true};
  std::atomic<uint64_t> lookups{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      size_t i = 0;
      while (run.load(std::memory_order_relaxed)) {
        const size_t k = i++ % core.packets.size();
        if (nm.match(core.packets[k]).rule_id != core.expected[k])
          mismatches.fetch_add(1);
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng{26};
  for (int i = 0; i < 200; ++i) {  // 200/2500 = 8% absorption >> 2% threshold
    Rule r = rules[rng.below(rules.size())];
    r.id = static_cast<uint32_t>(300'000 + i);
    r.priority = 500'000 + i;  // strictly worse than every base rule
    ASSERT_TRUE(nm.insert(r));
  }
  nm.quiesce();
  run.store(false);
  for (auto& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0) << "lookups diverged during retrain/swap";
  EXPECT_GT(nm.generations(), gen0) << "background retrain never swapped";
  EXPECT_LT(nm.absorption(), 0.02) << "swap should reset absorption";
  EXPECT_GT(lookups.load(), 0u);

  // Batched path agrees with the scalar path post-swap.
  std::vector<MatchResult> out(core.packets.size());
  nm.match_batch(core.packets, out);
  for (size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i].rule_id, core.expected[i]) << "batch packet " << i;
}

TEST(OnlineUpdates, JournalReplayPreservesUpdatesDuringRetrain) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 2000, 27);
  OnlineNuevoMatch nm{make_online_cfg(/*threshold=*/1.0, /*auto=*/false)};
  nm.build(rules);
  const StableCore core = make_stable_core(rules, 1000, 28);
  ASSERT_FALSE(core.packets.empty());

  // Kick a manual retrain, then race updates against it. Wherever each
  // update lands relative to the snapshot — before it, in the journal, or
  // after the swap — the final state must contain all of them.
  nm.retrain_now();
  Packet hit;
  for (int f = 0; f < kNumFields; ++f) hit.field[static_cast<size_t>(f)] = 3u;
  Rule add;
  for (int f = 0; f < kNumFields; ++f) add.field[static_cast<size_t>(f)] = Range{3, 3};
  add.id = 400'000;
  add.priority = -200;
  ASSERT_TRUE(nm.insert(add));
  const auto victim = static_cast<uint32_t>(core.expected[0]);
  ASSERT_TRUE(nm.erase(victim));
  nm.quiesce();

  EXPECT_EQ(nm.match(hit).rule_id, 400'000) << "insert lost across the swap";
  LinearSearch oracle;
  oracle.build(rules);
  ASSERT_TRUE(oracle.erase(victim));
  for (size_t i = 0; i < core.packets.size(); ++i) {
    ASSERT_EQ(nm.match(core.packets[i]).rule_id, oracle.match(core.packets[i]).rule_id)
        << "erase lost across the swap, packet " << i;
  }
}

TEST(OnlineUpdates, SerializeRoundTripAfterEraseThenReinsertSameId) {
  // Regression: an id erased from an iSet and reinserted (the §3.9
  // matching-set change) lives in the remainder while its tombstone stays
  // in the iSet array. The checkpoint must keep exactly the live copy —
  // neither resurrect the dead one nor drop the reincarnation.
  const RuleSet rules = generate_classbench(AppClass::kAcl, 3, 1500, 33);
  OnlineNuevoMatch nm{make_online_cfg(/*threshold=*/1.0)};
  nm.build(rules);

  size_t changed = 0;
  for (uint32_t id = 0; id < 50; ++id) {
    Rule moved = rules[id];
    ASSERT_TRUE(nm.erase(id));
    moved.field[kDstPort] = full_range(kDstPort);
    if (nm.insert(moved)) ++changed;  // same id, new matching set
  }
  ASSERT_EQ(changed, 50u);
  ASSERT_EQ(nm.size(), rules.size());

  const auto bytes = serialize::save_online(nm);
  auto back = serialize::load_online(bytes, make_online_cfg(/*threshold=*/1.0));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->size(), rules.size()) << "reinserted rules were dropped";

  RuleSet logical = rules;  // the post-update rule-set, for trace generation
  for (uint32_t id = 0; id < 50; ++id)
    logical[id].field[kDstPort] = full_range(kDstPort);
  TraceConfig tc;
  tc.n_packets = 3000;
  tc.seed = 34;
  for (const Packet& p : generate_trace(logical, tc))
    ASSERT_EQ(back->match(p).rule_id, nm.match(p).rule_id) << to_string(p);

  // The loaded copy must stay updatable on those ids: exactly one live
  // incarnation each.
  EXPECT_TRUE(back->erase(3));
  EXPECT_FALSE(back->erase(3));
}

TEST(OnlineUpdates, SerializeRoundTripCarriesShardOpCounters) {
  // v3: the online frame is shard-aware — per-shard applied-op counters
  // round-trip, and a checkpoint loaded into a different shard count keeps
  // the aggregate (the id→shard map is recomputed from the hash anyway).
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 900, 51);
  OnlineConfig cfg = make_online_cfg(/*threshold=*/1.0);
  cfg.update_shards = 4;
  OnlineNuevoMatch nm{cfg};
  nm.build(rules);

  Rng rng{52};
  for (int i = 0; i < 60; ++i) {
    Rule r = rules[rng.below(rules.size())];
    r.id = static_cast<uint32_t>(800'000 + i);
    r.priority = 900'000 + i;
    ASSERT_TRUE(nm.insert(r));
  }
  for (uint32_t id = 0; id < 20; ++id) ASSERT_TRUE(nm.erase(id));
  ASSERT_EQ(nm.update_ops(), 80u);

  const auto bytes = serialize::save_online(nm);
  auto back = serialize::load_online(bytes, cfg);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->update_shards(), 4);
  EXPECT_EQ(back->shard_op_counts(), nm.shard_op_counts())
      << "same shard count must restore counters verbatim";
  EXPECT_EQ(back->update_ops(), 80u);

  OnlineConfig resharded = make_online_cfg(/*threshold=*/1.0);
  resharded.update_shards = 7;
  auto re = serialize::load_online(bytes, resharded);
  ASSERT_NE(re, nullptr);
  EXPECT_EQ(re->update_shards(), 7);
  EXPECT_EQ(re->update_ops(), 80u) << "resharding must preserve the total";

  // And the classifier behind the frame still answers identically.
  TraceConfig tc;
  tc.n_packets = 2000;
  tc.seed = 53;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(re->match(p).rule_id, nm.match(p).rule_id) << to_string(p);
}

// Regression for the reader-preference starvation bench_updates §(d)
// documented in PR 3: saturated readers on the old rwlock drove writers to
// ~0 updates/s. With epoch-pinned readers there is no reader-side lock to
// prefer, so a writer must complete a fixed op budget while every reader
// spins flat-out (no duty cycle, no yields). Bounded-wait: the main thread
// waits on a deadline instead of joining blindly, so a starved writer fails
// the test instead of hanging it.
TEST(OnlineUpdates, WritersProgressUnderSaturatedReaders) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 2000, 61);
  OnlineNuevoMatch nm{make_online_cfg(/*threshold=*/1.0, /*auto=*/false)};
  nm.build(rules);
  const StableCore core = make_stable_core(rules, 1500, 62);
  ASSERT_GT(core.packets.size(), 50u);

  constexpr size_t kOps = 3000;
  std::atomic<bool> stop{false};
  std::atomic<bool> abort_writer{false};
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t) * 17;
      while (!stop.load(std::memory_order_relaxed)) {  // fully saturated
        const size_t k = i++ % core.packets.size();
        if (nm.match(core.packets[k]).rule_id != core.expected[k])
          mismatches.fetch_add(1);
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<size_t> done_ops{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  std::thread writer([&] {
    Rng rng{63};
    std::vector<uint32_t> live;
    for (size_t i = 0; i < kOps && !abort_writer.load(); ++i) {
      if (live.size() > 128) {
        if (nm.erase(live.front())) done_ops.fetch_add(1);
        live.erase(live.begin());
        continue;
      }
      Rule r = rules[rng.below(rules.size())];
      r.id = 700'000 + static_cast<uint32_t>(i);
      r.priority = 2'000'000 + static_cast<int32_t>(i);
      if (nm.insert(r)) {
        live.push_back(r.id);
        done_ops.fetch_add(1);
      }
    }
    std::lock_guard lk{done_mu};
    done = true;
    done_cv.notify_all();
  });

  {
    std::unique_lock lk{done_mu};
    const bool finished =
        done_cv.wait_for(lk, std::chrono::seconds(60), [&] { return done; });
    EXPECT_TRUE(finished) << "writer starved: only " << done_ops.load() << "/"
                          << kOps << " ops under saturated readers";
  }
  abort_writer.store(true);
  writer.join();
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(done_ops.load(), kOps);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(lookups.load(), 0u) << "readers never ran";
}

// Batched writer commits: one lock hold + one copy-on-write publication per
// burst must be observationally identical to the per-op loop — same
// accept/reject decisions (duplicates skipped, unknown ids skipped), same
// final answers vs the linear oracle, batch-atomic visibility afterwards.
TEST(OnlineUpdates, BatchCommitsMatchScalarSemantics) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 1800, 71);
  OnlineNuevoMatch nm{make_online_cfg(/*threshold=*/1.0, /*auto=*/false)};
  LinearSearch oracle;
  nm.build(rules);
  oracle.build(rules);

  // Burst of inserts, with one in-burst duplicate and one duplicate of a
  // base rule: exactly those two must be rejected.
  std::vector<Rule> burst;
  Rng rng{72};
  for (int i = 0; i < 96; ++i) {
    Rule r = rules[rng.below(rules.size())];
    r.id = 810'000 + static_cast<uint32_t>(i);
    r.priority = -1000 - i;  // beats every base rule: visible in answers
    burst.push_back(r);
  }
  burst.push_back(burst[3]);   // in-burst duplicate id
  burst.push_back(rules[10]);  // duplicate of a live base id
  EXPECT_EQ(nm.insert_batch(burst), 96u);
  for (int i = 0; i < 96; ++i) ASSERT_TRUE(oracle.insert(burst[static_cast<size_t>(i)]));
  EXPECT_EQ(nm.size(), rules.size() + 96);

  expect_equal_on_trace(nm, oracle, rules, 73);

  // Burst of erases spanning all three residences — churn rules (just
  // inserted), iSet rules and base-remainder rules — plus unknown ids.
  std::vector<uint32_t> ids;
  for (int i = 0; i < 40; ++i) ids.push_back(810'000 + static_cast<uint32_t>(i));
  for (uint32_t id = 0; id < 30; ++id) ids.push_back(id);  // base rules
  ids.push_back(0xDEAD0000);  // unknown
  ids.push_back(810'000);     // already erased above → reject
  EXPECT_EQ(nm.erase_batch(ids), 70u);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(oracle.erase(810'000 + static_cast<uint32_t>(i)));
  for (uint32_t id = 0; id < 30; ++id) ASSERT_TRUE(oracle.erase(id));
  EXPECT_EQ(nm.size(), rules.size() + 96 - 70);

  expect_equal_on_trace(nm, oracle, rules, 74);

  // And the journal/telemetry accounting matches the accepted ops.
  EXPECT_EQ(nm.update_ops(), 96u + 70u);
}

// Retrain cost control: iSets whose rule arrays are unchanged since the
// last swap reuse the trained model + certified error bounds instead of
// retraining. Remainder-only churn (inserts + churn erases, never touching
// an iSet rule) must reuse EVERY iSet; erasing an iSet rule must disqualify
// exactly the owning iSet at the next retrain.
TEST(OnlineUpdates, RetrainReusesModelsForUnchangedIsets) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 2500, 81);
  OnlineNuevoMatch nm{make_online_cfg(/*threshold=*/1.0, /*auto=*/false)};
  nm.build(rules);
  const size_t n_isets = [&] {
    size_t n = 0;
    nm.with_stable_view([&](const NuevoMatch& v) { n = v.isets().size(); });
    return n;
  }();
  ASSERT_GT(n_isets, 0u);

  // Remainder-only churn: worse-priority inserts land in the update layer.
  Rng rng{82};
  for (int i = 0; i < 120; ++i) {
    Rule r = rules[rng.below(rules.size())];
    r.id = 900'000 + static_cast<uint32_t>(i);
    r.priority = 2'000'000 + i;
    ASSERT_TRUE(nm.insert(r));
  }
  nm.retrain_now();
  nm.quiesce();
  EXPECT_EQ(nm.last_retrain_reused_isets(), n_isets)
      << "remainder-only churn must retrain no iSet";

  // Verify the reused models still answer exactly.
  const StableCore core = make_stable_core(rules, 1500, 83);
  for (size_t i = 0; i < core.packets.size(); ++i)
    ASSERT_EQ(nm.match(core.packets[i]).rule_id, core.expected[i]) << "packet " << i;

  // Now tombstone one iSet rule: the next retrain's snapshot drops it, so
  // at least one iSet array changes and reuse must drop below full.
  uint32_t iset_victim = 0;
  bool found = false;
  nm.with_stable_view([&](const NuevoMatch& v) {
    for (const IsetIndex& is : v.isets()) {
      for (size_t i = 0; i < is.rules().size(); ++i) {
        if (is.alive(i)) {
          iset_victim = is.rules()[i].id;
          found = true;
          return;
        }
      }
    }
  });
  ASSERT_TRUE(found);
  ASSERT_TRUE(nm.erase(iset_victim));
  nm.retrain_now();
  nm.quiesce();
  EXPECT_LT(nm.last_retrain_reused_isets(), n_isets)
      << "a changed iSet array must not reuse its model";
}

// The offline build-with-reuse primitive the online path rides on: identical
// rule-set → every iSet model reused, answers unchanged.
TEST(Updates, BuildWithReuseIsExactOnIdenticalArrays) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 2000, 84);
  NuevoMatch a = make_nm();
  a.build(rules);
  ASSERT_FALSE(a.isets().empty());

  NuevoMatch b = make_nm();
  b.build(rules, &a);
  EXPECT_EQ(b.reused_isets(), a.isets().size());
  expect_equal_on_trace(a, b, rules, 85);

  // Without a donor, nothing is reused.
  NuevoMatch c = make_nm();
  c.build(rules);
  EXPECT_EQ(c.reused_isets(), 0u);
}

TEST(OnlineUpdates, SerializeRoundTripWithPendingRemainderRules) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 2, 1800, 29);
  OnlineNuevoMatch nm{make_online_cfg(/*threshold=*/1.0)};  // keep updates pending
  nm.build(rules);

  Rng rng{30};
  for (int i = 0; i < 40; ++i) {  // pending inserts → remainder absorption
    Rule r = rules[rng.below(rules.size())];
    r.id = static_cast<uint32_t>(600'000 + i);
    r.priority = 700'000 + i;
    ASSERT_TRUE(nm.insert(r));
  }
  for (uint32_t id = 0; id < 30; ++id) ASSERT_TRUE(nm.erase(id));  // tombstones
  const double pressure = nm.absorption();
  ASSERT_GT(pressure, 0.0);

  const auto bytes = serialize::save_online(nm);
  ASSERT_FALSE(bytes.empty());
  auto back = serialize::load_online(bytes, make_online_cfg(/*threshold=*/1.0));
  ASSERT_NE(back, nullptr);

  EXPECT_EQ(back->size(), nm.size());
  EXPECT_DOUBLE_EQ(back->absorption(), pressure) << "pressure must survive";
  TraceConfig tc;
  tc.n_packets = 3000;
  tc.seed = 31;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(back->match(p).rule_id, nm.match(p).rule_id) << to_string(p);
}

}  // namespace
}  // namespace nuevomatch
