// IsetIndex: RQ-RMI-backed single-field index with secondary search and
// multi-field validation (paper Figure 1 left path).
#include <gtest/gtest.h>

#include "classbench/generator.hpp"
#include "common/rng.hpp"
#include "isets/iset_index.hpp"
#include "isets/partition.hpp"
#include "trace/trace.hpp"

namespace nuevomatch {
namespace {

/// Build an iSet index over the largest iSet of a generated rule-set.
struct Fixture {
  RuleSet all;
  IsetIndex index;
  std::vector<Rule> iset_rules;
  int field = 0;

  explicit Fixture(AppClass app, size_t n, uint64_t seed) {
    all = generate_classbench(app, 1, n, seed);
    IsetPartitionConfig pc;
    pc.max_isets = 1;
    pc.min_coverage_fraction = 0.01;
    IsetPartition part = partition_rules(all, pc);
    EXPECT_FALSE(part.isets.empty());
    field = part.isets[0].field;
    iset_rules = part.isets[0].rules;
    auto cfg = rqrmi::default_config(iset_rules.size());
    cfg.seed = seed;
    index.build(field, iset_rules, cfg);
  }
};

TEST(IsetIndex, FindsEveryOwnRule) {
  Fixture fx{AppClass::kAcl, 2000, 5};
  const auto pkts = representative_packets(fx.iset_rules, 17);
  for (size_t i = 0; i < fx.iset_rules.size(); ++i) {
    const MatchResult r = fx.index.lookup(pkts[i]);
    // The packet matches rule i on the indexed field by construction; the
    // index must return it (no other iSet rule can contain the same value).
    ASSERT_TRUE(r.hit()) << "rule " << fx.iset_rules[i].id;
    EXPECT_EQ(static_cast<uint32_t>(r.rule_id), fx.iset_rules[i].id);
  }
}

TEST(IsetIndex, ValidationRejectsWrongOtherFields) {
  Fixture fx{AppClass::kAcl, 1000, 6};
  // Find a rule with a non-wildcard port; flip the packet's port outside.
  for (const Rule& r : fx.iset_rules) {
    if (r.field[kDstPort].hi < 0xFFFF || r.field[kDstPort].lo > 0) {
      Packet p;
      for (int f = 0; f < kNumFields; ++f)
        p.field[static_cast<size_t>(f)] = r.field[static_cast<size_t>(f)].lo;
      p.field[kDstPort] = r.field[kDstPort].hi < 0xFFFF ? r.field[kDstPort].hi + 1
                                                        : r.field[kDstPort].lo - 1;
      const MatchResult m = fx.index.lookup(p);
      if (m.hit()) {
        EXPECT_NE(static_cast<uint32_t>(m.rule_id), r.id);
      }
      return;
    }
  }
  GTEST_SKIP() << "no port-constrained rule in sample";
}

TEST(IsetIndex, MissOnUncoveredKey) {
  // Two far-apart exact values: keys between them must miss.
  RuleSet rules(2);
  for (auto& r : rules)
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
  rules[0].field[kDstIp] = Range{100, 200};
  rules[1].field[kDstIp] = Range{0xF0000000, 0xF0000100};
  canonicalize(rules);
  IsetIndex idx;
  idx.build(kDstIp, rules, rqrmi::default_config(2));
  Packet p;
  p.field[kDstIp] = 5000;
  EXPECT_FALSE(idx.lookup(p).hit());
  p.field[kDstIp] = 150;
  EXPECT_TRUE(idx.lookup(p).hit());
}

TEST(IsetIndex, StagedApiAgreesWithLookup) {
  Fixture fx{AppClass::kIpc, 1500, 8};
  const auto pkts = representative_packets(fx.iset_rules, 23);
  for (size_t i = 0; i < pkts.size(); i += 7) {
    const uint32_t v = pkts[i][fx.field];
    const auto pred = fx.index.predict(v);
    const int32_t pos = fx.index.search(v, pred);
    const MatchResult staged = fx.index.validate(pos, pkts[i]);
    const MatchResult direct = fx.index.lookup(pkts[i]);
    EXPECT_EQ(staged.rule_id, direct.rule_id);
  }
}

TEST(IsetIndex, EraseTombstonesRule) {
  Fixture fx{AppClass::kAcl, 800, 9};
  const auto pkts = representative_packets(fx.iset_rules, 31);
  const Rule& victim = fx.iset_rules[fx.iset_rules.size() / 2];
  ASSERT_TRUE(fx.index.erase(victim.id));
  EXPECT_EQ(fx.index.live_rules(), fx.iset_rules.size() - 1);
  const MatchResult m = fx.index.lookup(pkts[fx.iset_rules.size() / 2]);
  if (m.hit()) {
    EXPECT_NE(static_cast<uint32_t>(m.rule_id), victim.id);
  }
  EXPECT_FALSE(fx.index.erase(victim.id)) << "double erase must fail";
  EXPECT_FALSE(fx.index.erase(0xFFFFFFFF));
}

TEST(IsetIndex, ModelBytesAreCacheScale) {
  Fixture fx{AppClass::kAcl, 4000, 10};
  // The RQ-RMI part must be small (paper: KBs), the rule store is separate.
  EXPECT_LT(fx.index.model_bytes(), 64 * 1024u);
  EXPECT_GT(fx.index.rule_storage_bytes(), fx.index.size() * sizeof(Rule));
}

TEST(IsetIndex, RejectsOverlappingRules) {
  RuleSet rules(2);
  for (auto& r : rules)
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
  rules[0].field[kDstIp] = Range{0, 100};
  rules[1].field[kDstIp] = Range{50, 150};
  canonicalize(rules);
  IsetIndex idx;
  EXPECT_THROW(idx.build(kDstIp, rules, rqrmi::default_config(2)), std::invalid_argument);
}

TEST(IsetIndex, PortFieldIndexing) {
  // iSets can be built on 16-bit fields too (paper Figure 6 uses Port).
  RuleSet rules(100);
  for (size_t i = 0; i < rules.size(); ++i) {
    for (int f = 0; f < kNumFields; ++f) rules[i].field[static_cast<size_t>(f)] = full_range(f);
    rules[i].field[kDstPort] = Range{static_cast<uint32_t>(i * 600),
                                     static_cast<uint32_t>(i * 600 + 500)};
  }
  rules.resize(109 < rules.size() ? 109 : rules.size());
  RuleSet valid;
  for (auto& r : rules)
    if (r.field[kDstPort].hi <= 0xFFFF) valid.push_back(r);
  canonicalize(valid);
  IsetIndex idx;
  idx.build(kDstPort, valid, rqrmi::default_config(valid.size()));
  for (const Rule& r : valid) {
    Packet p;
    p.field[kDstPort] = r.field[kDstPort].lo + 250;
    const MatchResult m = idx.lookup(p);
    ASSERT_TRUE(m.hit());
    EXPECT_EQ(static_cast<uint32_t>(m.rule_id), r.id);
  }
}

}  // namespace
}  // namespace nuevomatch
