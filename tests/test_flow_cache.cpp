// Targeted FlowCache unit suite for the dependency-aware (priority-band)
// invalidation scheme and the shard-grouped burst probes (ISSUE 8):
//
//   * a commit in ANOTHER band keeps a cached entry serving (and counts it
//     as `retained`); a commit in the SAME band retires it;
//   * a cached MISS lives in the catch-all band: erases never kill it,
//     inserts always do;
//   * a fresher-than-probe entry is a provable HIT (counted `future`) —
//     the pre-band cache miscounted these as cold misses;
//   * insert() dropping an older-stamped re-insert is counted, and a
//     stale-retired way (stamp cleared, key left behind) is reused by the
//     next fill instead of evicting a live neighbor;
//   * lookup_burst/insert_burst group lanes by shard, probe with the band
//     marks re-checked per shard hold, and stay coherent while commits and
//     retrain swaps race mid-burst (run under TSAN in CI).
//
// The rule-set is handcrafted so every band is addressable: rule i matches
// exactly one src-ip and has priority i*10, so with 160 rules the installed
// band map splits [0, 1590] into 16 bands of width 100 — decisions land in
// a band the test can pick by choosing which rule a packet hits.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "classbench/parser.hpp"
#include "nuevomatch/online.hpp"
#include "pipeline/flow_cache.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

using pipeline::Decision;
using pipeline::FlowCache;

constexpr uint32_t kSrcBase = 1000;
constexpr int kNRules = 160;  // priorities 0..1590 → 16 bands of width 100

RuleSet band_rules() {
  RuleSet rules;
  rules.reserve(kNRules);
  for (int i = 0; i < kNRules; ++i) {
    Rule r;
    for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
    const uint32_t src = kSrcBase + static_cast<uint32_t>(i);
    r.field[kSrcIp] = Range{src, src};
    r.priority = i * 10;
    r.id = static_cast<uint32_t>(i);
    r.action = 0;
    rules.push_back(r);
  }
  return rules;
}

/// A packet matching exactly rule i (and nothing else).
Packet pkt(int i) {
  Packet p;
  p.field = {kSrcBase + static_cast<uint32_t>(i), 1, 2, 3, 4};
  return p;
}

std::shared_ptr<OnlineNuevoMatch> make_online(const RuleSet& rules) {
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.auto_retrain = false;
  cfg.retrain_threshold = 1.0;
  auto online = std::make_shared<OnlineNuevoMatch>(std::move(cfg));
  online->build(rules);
  return online;
}

Rule worse_rule(uint32_t src, int32_t priority, uint32_t id) {
  Rule r;
  for (int f = 0; f < kNumFields; ++f) r.field[static_cast<size_t>(f)] = full_range(f);
  r.field[kSrcIp] = Range{src, src};
  r.priority = priority;
  r.id = id;
  return r;
}

// --- band map ---------------------------------------------------------------

TEST(FlowCacheBands, BandMapSplitsThePriorityRange) {
  auto online = make_online(band_rules());
  EXPECT_EQ(online->coherence_band(0), 0);
  EXPECT_EQ(online->coherence_band(1590), OnlineNuevoMatch::kCoherenceBands - 1);
  // Monotone in priority, clamped at both ends.
  int prev = 0;
  for (int prio = 0; prio <= 1590; prio += 10) {
    const int b = online->coherence_band(prio);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, OnlineNuevoMatch::kCoherenceBands);
    prev = b;
  }
  EXPECT_EQ(online->coherence_band(-100), 0);
  EXPECT_EQ(online->coherence_band(10'000'000),
            OnlineNuevoMatch::kCoherenceBands - 1);
}

// --- dependency-aware invalidation ------------------------------------------

TEST(FlowCacheBands, CommitInAnotherBandKeepsTheEntry) {
  auto online = make_online(band_rules());
  FlowCache cache{256};
  cache.set_stamp_source(online.get());

  // Cache the decision for a packet whose best match is priority 30 (band 0).
  const Packet p = pkt(3);
  const uint64_t stamp = cache.current_stamp();
  const MatchResult r = online->match(p);
  ASSERT_EQ(r.rule_id, 3);
  cache.insert(p, Decision{r.rule_id, r.priority, 0}, stamp);

  // A WORSE-priority insert (top band) cannot beat the cached match: the
  // entry must keep serving — this is the whole point of the bands.
  ASSERT_TRUE(online->insert(worse_rule(50'000, 100'000, 777)));
  Decision d;
  ASSERT_TRUE(cache.lookup(p, d));
  EXPECT_EQ(d.rule_id, 3);
  EXPECT_EQ(online->match(p).rule_id, 3);  // the served answer is current

  // An erase in a DIFFERENT band (priority 1500 → band 15) cannot change a
  // band-0 decision either.
  ASSERT_TRUE(online->erase(150));
  ASSERT_TRUE(cache.lookup(p, d));
  EXPECT_EQ(d.rule_id, 3);

  const FlowCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.stale, 0u);
  EXPECT_EQ(s.retained, 2u);  // both hits survived commits
}

TEST(FlowCacheBands, SameBandCommitRetiresTheEntry) {
  auto online = make_online(band_rules());
  FlowCache cache{256};
  cache.set_stamp_source(online.get());

  const Packet p = pkt(3);
  const uint64_t stamp = cache.current_stamp();
  const MatchResult r = online->match(p);
  ASSERT_EQ(r.rule_id, 3);
  cache.insert(p, Decision{r.rule_id, r.priority, 0}, stamp);

  // Erasing the matched rule IS a same-band commit: the entry is dead.
  ASSERT_TRUE(online->erase(3));
  Decision d;
  EXPECT_FALSE(cache.lookup(p, d));
  EXPECT_EQ(cache.stats().stale, 1u);
  EXPECT_FALSE(online->match(p).hit());

  // A BETTER-priority insert invalidates every worse band, including the
  // band a cached decision lives in.
  const Packet q = pkt(150);  // priority 1500 → band 15
  const uint64_t stamp2 = cache.current_stamp();
  const MatchResult r2 = online->match(q);
  ASSERT_EQ(r2.rule_id, 150);
  cache.insert(q, Decision{r2.rule_id, r2.priority, 0}, stamp2);
  // Priority 800 → band 8 <= 15: the suffix bump must kill the entry (the
  // new rule doesn't even need to match the packet — invalidation is
  // per-band, not per-flow).
  ASSERT_TRUE(online->insert(worse_rule(60'000, 800, 778)));
  EXPECT_FALSE(cache.lookup(q, d));
  EXPECT_EQ(cache.stats().stale, 2u);
}

TEST(FlowCacheBands, CachedMissSurvivesErasesAndDiesOnInsert) {
  auto online = make_online(band_rules());
  FlowCache cache{256};
  cache.set_stamp_source(online.get());

  Packet p;
  p.field = {999'999, 1, 2, 3, 4};  // matches nothing
  const uint64_t stamp = cache.current_stamp();
  const MatchResult r = online->match(p);
  ASSERT_FALSE(r.hit());
  cache.insert(p, Decision{r.rule_id, r.priority, -1}, stamp);

  // Erases can never turn a miss into a hit — the catch-all band is not
  // marked, so the cached miss keeps serving.
  ASSERT_TRUE(online->erase(7));
  ASSERT_TRUE(online->erase(120));
  Decision d;
  ASSERT_TRUE(cache.lookup(p, d));
  EXPECT_EQ(d.rule_id, MatchResult::kNoMatch);

  // ANY insert can turn a miss into a hit (the inserted rule could cover
  // this flow), so every insert marks the catch-all.
  ASSERT_TRUE(online->insert(worse_rule(70'000, 100'000, 779)));
  EXPECT_FALSE(cache.lookup(p, d));
  EXPECT_EQ(cache.stats().stale, 1u);
}

// --- accounting fixes (satellites) ------------------------------------------

TEST(FlowCacheStats, FutureStampedEntryIsAHitCountedAsFuture) {
  // No stamp source: current_stamp() is pinned to 0, so an entry stamped 5
  // is FRESHER than any probe's view. The band marks (pinned to 0) prove it
  // current — it must be served, and counted in the `future` sub-bucket
  // (the pre-band cache returned a plain miss here).
  FlowCache cache{64, 2};
  Packet p;
  p.field = {1, 2, 3, 4, 5};
  cache.insert(p, Decision{7, 7, 1}, 5);
  Decision d;
  ASSERT_TRUE(cache.lookup(p, d));
  EXPECT_EQ(d.rule_id, 7);
  const FlowCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.future, 1u);
  EXPECT_EQ(s.retained, 0u);
  EXPECT_EQ(s.misses, 0u);
}

TEST(FlowCacheStats, OlderStampedReinsertIsDroppedAndCounted) {
  FlowCache cache{64, 2};
  Packet p;
  p.field = {1, 2, 3, 4, 5};
  cache.insert(p, Decision{7, 7, 1}, 5);
  // A re-insert carrying an OLDER stamp must not downgrade the entry — and
  // must no longer vanish without a trace.
  cache.insert(p, Decision{8, 8, 2}, 3);
  const FlowCache::Stats s = cache.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.insert_drops, 1u);
  Decision d;
  ASSERT_TRUE(cache.lookup(p, d));
  EXPECT_EQ(d.rule_id, 7);  // the fresher decision won
}

TEST(FlowCacheStats, RetiredWayIsReusedByTheNextFill) {
  // One set (capacity == kWays, 1 shard): four flows in four DIFFERENT
  // bands fill it exactly. Retiring one must free ITS way for the refill —
  // not shadow accounting or evict a live neighbor.
  auto online = make_online(band_rules());
  FlowCache cache{FlowCache::kWays, 1};
  cache.set_stamp_source(online.get());
  const int flows[4] = {3, 50, 100, 150};  // bands 0, 5, 10, 15
  const uint64_t stamp = cache.current_stamp();
  for (const int i : flows) {
    const MatchResult r = online->match(pkt(i));
    ASSERT_EQ(r.rule_id, i);
    cache.insert(pkt(i), Decision{r.rule_id, r.priority, 0}, stamp);
  }
  ASSERT_EQ(cache.stats().evictions, 0u);

  // Same-band commit for flow 3 only: its lookup retires the way (stamp
  // cleared, key left behind).
  ASSERT_TRUE(online->erase(3));
  Decision d;
  EXPECT_FALSE(cache.lookup(pkt(3), d));
  EXPECT_EQ(cache.stats().stale, 1u);

  // The refill must land in the retired way: zero evictions, and the other
  // three flows still serve.
  const uint64_t stamp2 = cache.current_stamp();
  const MatchResult r = online->match(pkt(3));
  cache.insert(pkt(3), Decision{r.rule_id, r.priority, -1}, stamp2);
  EXPECT_EQ(cache.stats().evictions, 0u);
  ASSERT_TRUE(cache.lookup(pkt(3), d));
  EXPECT_EQ(d.rule_id, MatchResult::kNoMatch);
  for (const int i : {50, 100, 150}) {
    ASSERT_TRUE(cache.lookup(pkt(i), d));
    EXPECT_EQ(d.rule_id, i);
  }
}

TEST(FlowCacheStats, LookupsDenominatorAndIntervalDelta) {
  FlowCache cache{64, 2};
  Packet p;
  p.field = {1, 2, 3, 4, 5};
  Decision d;
  EXPECT_FALSE(cache.lookup(p, d));  // miss
  cache.insert(p, Decision{7, 7, 1}, 0);
  EXPECT_TRUE(cache.lookup(p, d));  // hit
  const FlowCache::Stats a = cache.stats();
  EXPECT_EQ(a.lookups(), a.hits + a.misses + a.stale);
  EXPECT_EQ(a.lookups(), 2u);
  EXPECT_TRUE(cache.lookup(p, d));
  const FlowCache::Stats delta = cache.stats() - a;
  EXPECT_EQ(delta.hits, 1u);
  EXPECT_EQ(delta.misses, 0u);
  EXPECT_EQ(delta.lookups(), 1u);
  EXPECT_DOUBLE_EQ(delta.hit_rate(), 1.0);
}

// size() is point-in-time occupancy — what a quarantine drain actually
// drops — NOT the cumulative insert count (re-stamping a cached flow grows
// inserts but not occupancy; clear() zeroes occupancy but not inserts).
TEST(FlowCacheStats, SizeIsOccupancyNotCumulativeInserts) {
  FlowCache cache{64, 2};
  EXPECT_EQ(cache.size(), 0u);
  for (uint32_t i = 0; i < 8; ++i) {
    Packet p;
    p.field = {i, i + 1, i + 2, i + 3, i + 4};
    cache.insert(p, Decision{static_cast<int32_t>(i), 0, 0}, 0);
  }
  EXPECT_EQ(cache.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) {
    Packet p;
    p.field = {i, i + 1, i + 2, i + 3, i + 4};
    cache.insert(p, Decision{static_cast<int32_t>(i), 0, 0}, 1);
  }
  EXPECT_EQ(cache.size(), 8u) << "a re-stamp must not grow occupancy";
  EXPECT_EQ(cache.stats().inserts, 16u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().inserts, 16u) << "clear drops entries, not stats";
}

// --- shard-grouped burst probes ---------------------------------------------

TEST(FlowCacheBurst, BurstProbeGroupsByShardAndHonorsBands) {
  auto online = make_online(band_rules());
  FlowCache cache{1024, 4};
  cache.set_stamp_source(online.get());

  // 32 flows spanning the shards: lanes 0..15 hit low-band rules (bands
  // 0..1), lanes 16..31 hit top-band rules 144..159 (bands 14..15).
  std::array<Packet, 32> ps;
  std::array<Decision, 32> ds;
  for (int i = 0; i < 32; ++i) {
    const int rule = i < 16 ? i : 144 + (i - 16);
    ps[static_cast<size_t>(i)] = pkt(rule);
    const MatchResult r = online->match(ps[static_cast<size_t>(i)]);
    ASSERT_EQ(r.rule_id, rule);
    ds[static_cast<size_t>(i)] = Decision{r.rule_id, r.priority, 0};
  }
  const uint64_t stamp = cache.current_stamp();
  cache.insert_burst(ps.data(), 32, ~uint32_t{0}, ds.data(), stamp);
  EXPECT_EQ(cache.stats().inserts, 32u);

  // A partial probe only touches the lanes under n.
  std::array<Decision, 32> out;
  EXPECT_EQ(cache.lookup_burst(ps.data(), 8, ~uint32_t{0}, out.data()), 0xFFu);

  // Erase the top-band rules: bands 14..15 are marked, bands 0..1 are not.
  std::vector<uint32_t> dead;
  for (uint32_t id = 144; id < 160; ++id) dead.push_back(id);
  ASSERT_EQ(online->erase_batch(dead), dead.size());

  const uint32_t hits = cache.lookup_burst(ps.data(), 32, ~uint32_t{0}, out.data());
  EXPECT_EQ(hits, 0x0000'FFFFu);  // low bands retained, top bands retired
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<size_t>(i)].rule_id, i);
  EXPECT_EQ(cache.stats().stale, 16u);

  // Refill the retired lanes under a fresh stamp; the whole burst then hits.
  const uint64_t stamp2 = cache.current_stamp();
  for (int i = 16; i < 32; ++i) {
    const MatchResult r = online->match(ps[static_cast<size_t>(i)]);
    EXPECT_FALSE(r.hit());
    ds[static_cast<size_t>(i)] = Decision{r.rule_id, r.priority, -1};
  }
  cache.insert_burst(ps.data(), 32, 0xFFFF'0000u, ds.data(), stamp2);
  EXPECT_EQ(cache.lookup_burst(ps.data(), 32, ~uint32_t{0}, out.data()),
            ~uint32_t{0});
}

TEST(FlowCacheBurst, BurstProbesStayCoherentAcrossRacingCommitsAndSwaps) {
  // The mid-commit gate, as a race: a writer hammers worse-priority churn
  // (insert_batch + erase_batch, with periodic forced retrain swaps) while
  // the main thread runs burst probe/fill cycles over a stable core whose
  // answers are invariant under the churn. Every decision a burst probe
  // serves must equal the invariant answer — a band bump hoisted over the
  // burst (instead of re-checked per shard hold) would flunk this under
  // TSAN and often functionally too. CI runs this suite under TSAN.
  auto online = make_online(band_rules());
  FlowCache cache{4096, 8};
  cache.set_stamp_source(online.get());

  constexpr int kCore = 64;
  std::array<Packet, kCore> core;
  std::array<int32_t, kCore> expected;
  for (int i = 0; i < kCore; ++i) {
    const int rule = i % kNRules;
    core[static_cast<size_t>(i)] = pkt(rule);
    expected[static_cast<size_t>(i)] = rule;
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint32_t next_id = 1'000'000;
    for (int iter = 0; !stop.load(std::memory_order_relaxed); ++iter) {
      std::vector<Rule> burst;
      std::vector<uint32_t> ids;
      for (int j = 0; j < 8; ++j) {
        const Rule r = worse_rule(500'000 + static_cast<uint32_t>(j),
                                  5'000'000 + j, next_id++);
        burst.push_back(r);
        ids.push_back(r.id);
      }
      (void)online->insert_batch(burst);
      (void)online->erase_batch(ids);
      if (iter % 64 == 0) online->retrain_now();
    }
    online->quiesce();
  });

  // Loop until retained hits are observed (the writer provably committed
  // between a fill and a later probe) rather than a fixed count: on a
  // single-core host a fixed reader loop can finish before the writer
  // thread is ever scheduled. The cap keeps a broken build from hanging.
  uint64_t mismatches = 0;
  uint64_t rounds = 0;
  constexpr uint64_t kMaxRounds = 200'000;
  while (rounds < kMaxRounds) {
    const auto iter = static_cast<int>(rounds++);
    const size_t off = (static_cast<size_t>(iter) * 32) % kCore;
    const Packet* ps = core.data() + off;
    const int32_t* want = expected.data() + off;
    const uint64_t stamp = cache.current_stamp();
    std::array<Decision, 32> out;
    const uint32_t hits = cache.lookup_burst(ps, 32, ~uint32_t{0}, out.data());
    std::array<Decision, 32> fill;
    uint32_t fill_mask = 0;
    for (int i = 0; i < 32; ++i) {
      if ((hits >> i) & 1u) {
        if (out[static_cast<size_t>(i)].rule_id != want[i]) ++mismatches;
      } else {
        const MatchResult r = online->match(ps[i]);
        if (r.rule_id != want[i]) ++mismatches;
        fill[static_cast<size_t>(i)] = Decision{r.rule_id, r.priority, 0};
        fill_mask |= 1u << i;
      }
    }
    if (fill_mask != 0) cache.insert_burst(ps, 32, fill_mask, fill.data(), stamp);
    if ((rounds & 63) == 0) {
      if (rounds >= 256 && cache.stats().retained > 0) break;
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(mismatches, 0u);
  // The bands must have RETAINED entries across the churn — if every commit
  // still invalidated everything, this loop would never have broken out.
  EXPECT_LT(rounds, kMaxRounds);
  EXPECT_GT(cache.stats().retained, 0u);
}

}  // namespace
}  // namespace nuevomatch
