// Two-thread batched execution (paper §4): results must be identical to the
// single-core path, for aligned and ragged batch sizes.
#include <gtest/gtest.h>

#include <memory>

#include "classbench/generator.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "nuevomatch/parallel.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

TEST(Parallel, MatchesSequentialResults) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 3000, 1);
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  NuevoMatch nm{cfg};
  nm.build(rules);

  TraceConfig tc;
  tc.n_packets = 4096;
  const auto trace = generate_trace(rules, tc);

  BatchParallelEngine engine{nm};
  std::vector<MatchResult> out(trace.size());
  for (size_t off = 0; off < trace.size(); off += kDefaultBatchSize) {
    const size_t len = std::min(kDefaultBatchSize, trace.size() - off);
    engine.classify({trace.data() + off, len}, {out.data() + off, len});
  }
  for (size_t i = 0; i < trace.size(); ++i)
    ASSERT_EQ(out[i].rule_id, nm.match(trace[i]).rule_id) << "packet " << i;
}

TEST(Parallel, RaggedAndTinyBatches) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 2, 1000, 2);
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  NuevoMatch nm{cfg};
  nm.build(rules);
  TraceConfig tc;
  tc.n_packets = 301;
  const auto trace = generate_trace(rules, tc);
  BatchParallelEngine engine{nm};
  for (size_t batch : {1u, 3u, 7u, 301u}) {
    std::vector<MatchResult> out(trace.size());
    for (size_t off = 0; off < trace.size(); off += batch) {
      const size_t len = std::min(batch, trace.size() - off);
      engine.classify({trace.data() + off, len}, {out.data() + off, len});
    }
    for (size_t i = 0; i < trace.size(); ++i)
      ASSERT_EQ(out[i].rule_id, nm.match(trace[i]).rule_id);
  }
}

TEST(Parallel, EmptyBatchIsNoop) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 200, 3);
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  NuevoMatch nm{cfg};
  nm.build(rules);
  BatchParallelEngine engine{nm};
  engine.classify({}, {});  // must not deadlock
  SUCCEED();
}

TEST(Parallel, MultipleEnginesOverOneClassifier) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 500, 4);
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  NuevoMatch nm{cfg};
  nm.build(rules);
  TraceConfig tc;
  tc.n_packets = 256;
  const auto trace = generate_trace(rules, tc);
  BatchParallelEngine a{nm};
  BatchParallelEngine b{nm};
  std::vector<MatchResult> oa(trace.size());
  std::vector<MatchResult> ob(trace.size());
  a.classify(trace, oa);
  b.classify(trace, ob);
  for (size_t i = 0; i < trace.size(); ++i) EXPECT_EQ(oa[i].rule_id, ob[i].rule_id);
}

}  // namespace
}  // namespace nuevomatch
