#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "rqrmi/trainer.hpp"

namespace nuevomatch::rqrmi {
namespace {

std::vector<TrainSample> linear_data(double a, double b, int n = 256) {
  std::vector<TrainSample> out;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / (n - 1);
    out.push_back(TrainSample{x, a * x + b});
  }
  return out;
}

TEST(Trainer, FitsLinearFunctionExactly) {
  const auto data = linear_data(0.5, 0.2);
  const Submodel m = fit_submodel(data, TrainerConfig{0, 5e-3, 1});  // LS only
  EXPECT_LT(mse(m, data), 1e-8);
}

TEST(Trainer, FitsMonotoneStaircase) {
  // A CDF-like staircase of 64 steps: the typical leaf target.
  std::vector<TrainSample> data;
  Rng rng{3};
  for (int i = 0; i < 2048; ++i) {
    const double x = rng.next_double();
    const double y = std::floor(x * 64) / 64.0;
    data.push_back(TrainSample{x, y});
  }
  const Submodel m = fit_submodel(data, TrainerConfig{100, 5e-3, 1});
  // 8 linear pieces over a uniform 64-step staircase: error well under one
  // step on average.
  EXPECT_LT(mse(m, data), 1e-4);
}

TEST(Trainer, AdamDoesNotRegressBelowInit) {
  std::vector<TrainSample> data;
  Rng rng{4};
  for (int i = 0; i < 1024; ++i) {
    const double x = rng.next_double();
    data.push_back(TrainSample{x, 0.5 + 0.3 * std::sin(6.0 * x)});
  }
  const Submodel ls = fit_submodel(data, TrainerConfig{0, 5e-3, 1});
  const Submodel adam = fit_submodel(data, TrainerConfig{200, 5e-3, 1});
  EXPECT_LE(mse(adam, data), mse(ls, data) * 1.001);
}

TEST(Trainer, EmptyDatasetGivesZeroModel) {
  const Submodel m = fit_submodel({}, TrainerConfig{});
  EXPECT_EQ(eval(m, 0.5f), 0.0f);
  EXPECT_EQ(mse(m, {}), 0.0);
}

TEST(Trainer, SingleSampleFits) {
  const std::vector<TrainSample> data{{0.5, 0.25}};
  const Submodel m = fit_submodel(data, TrainerConfig{50, 5e-3, 1});
  EXPECT_NEAR(eval_raw(m, 0.5), 0.25, 1e-3);
}

TEST(Trainer, DeterministicGivenSeed) {
  const auto data = linear_data(0.9, 0.05);
  const Submodel a = fit_submodel(data, TrainerConfig{50, 5e-3, 7});
  const Submodel b = fit_submodel(data, TrainerConfig{50, 5e-3, 7});
  for (int k = 0; k < kHiddenWidth; ++k) {
    EXPECT_EQ(a.w2[static_cast<size_t>(k)], b.w2[static_cast<size_t>(k)]);
  }
  EXPECT_EQ(a.b2, b.b2);
}

TEST(Trainer, FloatDeviationBoundsActualDifference) {
  Rng rng{11};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TrainSample> data;
    for (int i = 0; i < 512; ++i) {
      const double x = rng.next_double();
      data.push_back(TrainSample{x, rng.next_double()});
    }
    const Submodel m = fit_submodel(data, TrainerConfig{30, 5e-3, 1});
    const double dev = float_eval_deviation(m);
    for (int i = 0; i < 500; ++i) {
      const auto xf = static_cast<float>(rng.next_double());
      const double diff = std::abs(static_cast<double>(eval(m, xf, SimdLevel::kSerial)) -
                                   eval_exact(m, static_cast<double>(xf)));
      EXPECT_LE(diff, dev) << "trial=" << trial;
      if (simd_level_available(SimdLevel::kAvx)) {
        const double davx = std::abs(static_cast<double>(eval(m, xf, SimdLevel::kAvx)) -
                                     eval_exact(m, static_cast<double>(xf)));
        EXPECT_LE(davx, dev);
      }
    }
  }
}

TEST(Trainer, MseComputesMeanSquaredError) {
  Submodel m;  // zero model: N(x) = 0
  const std::vector<TrainSample> data{{0.1, 1.0}, {0.2, 1.0}};
  EXPECT_DOUBLE_EQ(mse(m, data), 1.0);
}

}  // namespace
}  // namespace nuevomatch::rqrmi
