// Piecewise-linear analysis: trigger inputs, quantized pieces and transition
// inputs must agree with a dense numeric scan of the actual model function,
// for hand-built and randomly-generated submodels alike.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "rqrmi/nn.hpp"
#include "rqrmi/pwl.hpp"

namespace nuevomatch::rqrmi {
namespace {

Submodel random_submodel(uint64_t seed, double scale = 4.0) {
  Rng rng{seed};
  Submodel m;
  for (int k = 0; k < kHiddenWidth; ++k) {
    m.w1[static_cast<size_t>(k)] = static_cast<float>((rng.next_double() * 2 - 1) * scale);
    m.b1[static_cast<size_t>(k)] = static_cast<float>((rng.next_double() * 2 - 1) * scale / 2);
    m.w2[static_cast<size_t>(k)] = static_cast<float>((rng.next_double() * 2 - 1));
  }
  m.b2 = static_cast<float>(rng.next_double() * 0.5);
  return m;
}

TEST(Pwl, KernelsAgreeWithinDeviationBound) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Submodel m = random_submodel(seed);
    for (double x = 0.0; x <= 1.0; x += 0.001) {
      const auto xf = static_cast<float>(x);
      const float serial = eval(m, xf, SimdLevel::kSerial);
      const double exact = eval_exact(m, static_cast<double>(xf));
      EXPECT_NEAR(serial, exact, 1e-5) << "seed=" << seed << " x=" << x;
      if (simd_level_available(SimdLevel::kSse)) {
        EXPECT_NEAR(eval(m, xf, SimdLevel::kSse), exact, 1e-5);
      }
      if (simd_level_available(SimdLevel::kAvx)) {
        EXPECT_NEAR(eval(m, xf, SimdLevel::kAvx), exact, 1e-5);
      }
    }
  }
}

TEST(Pwl, ClampKeepsOutputInUnitInterval) {
  for (uint64_t seed = 100; seed < 130; ++seed) {
    const Submodel m = random_submodel(seed, 30.0);  // large weights force clipping
    for (double x = 0.0; x <= 1.0; x += 0.0005) {
      const float y = eval(m, static_cast<float>(x));
      EXPECT_GE(y, 0.0f);
      EXPECT_LT(y, 1.0f);
    }
  }
}

TEST(Pwl, TriggerInputsContainDomainEnds) {
  const Submodel m = random_submodel(7);
  const auto t = trigger_inputs(m, 0.0, 1.0);
  ASSERT_GE(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.front(), 0.0);
  EXPECT_DOUBLE_EQ(t.back(), 1.0);
  for (size_t i = 1; i < t.size(); ++i) EXPECT_LT(t[i - 1], t[i]);
}

TEST(Pwl, FunctionIsLinearBetweenTriggerInputs) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const Submodel m = random_submodel(seed, 6.0);
    const auto t = trigger_inputs(m, 0.0, 1.0);
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      const double p = t[i];
      const double q = t[i + 1];
      if (q - p < 1e-9) continue;
      const double mp = eval_exact(m, p);
      const double mq = eval_exact(m, q);
      // Check the midpoint lies on the chord (linearity).
      const double mid = eval_exact(m, (p + q) / 2);
      EXPECT_NEAR(mid, (mp + mq) / 2, 1e-9)
          << "seed=" << seed << " segment [" << p << "," << q << "]";
    }
  }
}

TEST(Pwl, QuantizedPiecesTileTheDomain) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Submodel m = random_submodel(seed);
    for (uint32_t width : {1u, 4u, 16u, 256u}) {
      const auto pieces = quantized_pieces(m, width, 0.0, 1.0);
      ASSERT_FALSE(pieces.empty());
      EXPECT_DOUBLE_EQ(pieces.front().x0, 0.0);
      EXPECT_DOUBLE_EQ(pieces.back().x1, 1.0);
      for (size_t i = 1; i < pieces.size(); ++i) {
        EXPECT_DOUBLE_EQ(pieces[i].x0, pieces[i - 1].x1);
        EXPECT_NE(pieces[i].bucket, pieces[i - 1].bucket) << "pieces must be maximal";
      }
      for (const auto& p : pieces) EXPECT_LT(p.bucket, width);
    }
  }
}

TEST(Pwl, QuantizedPiecesMatchNumericScan) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    const Submodel m = random_submodel(seed);
    const uint32_t width = 64;
    const auto pieces = quantized_pieces(m, width, 0.0, 1.0);
    for (const auto& piece : pieces) {
      // Sample strictly inside the piece; boundary points may sit exactly on
      // a quantization edge.
      const double w = piece.x1 - piece.x0;
      if (w < 1e-9) continue;
      for (double frac : {0.25, 0.5, 0.75}) {
        const double x = piece.x0 + frac * w;
        const auto bucket = std::min(
            width - 1, static_cast<uint32_t>(eval_exact(m, x) * width));
        EXPECT_EQ(bucket, piece.bucket) << "seed=" << seed << " x=" << x;
      }
    }
  }
}

TEST(Pwl, TransitionInputsSeparateBuckets) {
  for (uint64_t seed = 21; seed <= 30; ++seed) {
    const Submodel m = random_submodel(seed);
    const uint32_t width = 32;
    const auto trans = transition_inputs(m, width, 0.0, 1.0);
    const double eps = 1e-7;
    for (double t : trans) {
      const auto bucket = [&](double x) {
        return std::min(width - 1, static_cast<uint32_t>(eval_exact(m, x) * width));
      };
      EXPECT_NE(bucket(t - eps), bucket(t + eps)) << "transition at " << t;
    }
  }
}

TEST(Pwl, ConstantModelHasSinglePiece) {
  Submodel m;  // all zeros -> M(x) = 0 everywhere
  const auto pieces = quantized_pieces(m, 16, 0.0, 1.0);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].bucket, 0u);
}

TEST(Pwl, BestSimdLevelIsAvailable) {
  EXPECT_TRUE(simd_level_available(best_simd_level()));
  EXPECT_TRUE(simd_level_available(SimdLevel::kSerial));
}

}  // namespace
}  // namespace nuevomatch::rqrmi
