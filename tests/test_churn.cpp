// Churn tests (the concurrency proof for the online serving path): the
// seeded churn harness (churn_harness.hpp) runs multi-writer insert/erase
// schedules against OnlineNuevoMatch while scalar readers and online
// BatchParallelEngine readers race the updates and the background
// retrain/swap cycles — every lookup differentially checked, first against
// the churn-invariant stable core (concurrently), then against a
// step-synchronized LinearSearch oracle (exactly). Run under ThreadSanitizer
// in CI; the assertions here are the functional half of the claim, TSAN is
// the data-race half.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "churn_harness.hpp"

namespace nuevomatch {
namespace {

struct ChurnCase {
  uint64_t seed;
  int shards;
  double threshold;
  bool auto_retrain;
  friend std::ostream& operator<<(std::ostream& os, const ChurnCase& c) {
    return os << "seed" << c.seed << "_shards" << c.shards << "_thr" << c.threshold
              << (c.auto_retrain ? "_auto" : "_manual");
  }
};

class ChurnDifferential : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(ChurnDifferential, MultiWriterMultiReaderThroughSwaps) {
  const ChurnCase& c = GetParam();
  ChurnConfig cfg;
  cfg.seed = c.seed;
  cfg.update_shards = c.shards;
  cfg.retrain_threshold = c.threshold;
  cfg.auto_retrain = c.auto_retrain;
  cfg.n_writers = 2;
  cfg.n_scalar_readers = 1;
  cfg.n_batch_readers = 1;
  ChurnHarness harness{cfg};
  ASSERT_GT(harness.core().packets.size(), 100u) << "stable core too small";

  const ChurnResult res = harness.run();

  // Disjoint per-writer id spaces: every scheduled op must be accepted.
  EXPECT_EQ(res.applied_ops, res.scheduled_ops);
  EXPECT_EQ(res.concurrent_mismatches, 0u)
      << "a reader racing writers/swaps saw a wrong answer ("
      << res.concurrent_lookups << " lookups)";
  EXPECT_GT(res.concurrent_lookups, 0u);
  EXPECT_EQ(res.probe_mismatches, 0u)
      << "classifier diverged from the step-synchronized oracle ("
      << res.probes << " probes)";
  EXPECT_GT(res.probes, 0u);
  EXPECT_GE(res.swaps, cfg.min_swaps)
      << "background retrain/swap cycles never ran";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChurnDifferential,
    ::testing::Values(
        // One shard reproduces the single-writer-mutex semantics under the
        // same concurrency; the other cases scale the sharded path.
        ChurnCase{11, 1, 0.02, true},
        ChurnCase{22, 4, 0.01, true},
        // Threshold never fires: swaps come only from the harness's forced
        // background retrains (manual-retrain deployments).
        ChurnCase{33, 8, 1.0, false}));

// Fuzzer mode: seeded draws over the whole knob space — rule-set shape,
// writer/reader mix, shard count, retrain policy, TupleMerge vs CutSplit
// remainder. Every draw must satisfy the same invariants as the fixed sweep
// above. Defaults to a 2-iteration smoke slice (what the TSAN CI leg runs on
// every PR); an overnight run is
//   NM_CHURN_FUZZ_ITERS=500 [NM_CHURN_FUZZ_SEED=...] ./test_churn \
//       --gtest_filter='ChurnFuzzer.*'
TEST(ChurnFuzzer, EnvSeededRandomizedConfigs) {
  const char* iters_env = std::getenv("NM_CHURN_FUZZ_ITERS");
  const char* seed_env = std::getenv("NM_CHURN_FUZZ_SEED");
  const int iters = iters_env != nullptr ? std::atoi(iters_env) : 2;
  const uint64_t seed =
      seed_env != nullptr ? std::strtoull(seed_env, nullptr, 10) : 0xF022ED5EEDull;
  Rng rng{seed};
  for (int i = 0; i < iters; ++i) {
    const ChurnConfig cfg = randomized_churn_config(rng);
    SCOPED_TRACE(::testing::Message()
                 << "iter " << i << " seed " << seed << ": app "
                 << static_cast<int>(cfg.app) << "/" << cfg.app_variant << " n "
                 << cfg.n_rules << " w " << cfg.n_writers << " r "
                 << cfg.n_scalar_readers << "+" << cfg.n_batch_readers
                 << " shards " << cfg.update_shards << " thr "
                 << cfg.retrain_threshold << (cfg.auto_retrain ? " auto" : " manual")
                 << (cfg.cutsplit_remainder ? " cutsplit" : " tuplemerge"));
    ChurnHarness harness{cfg};
    ASSERT_GT(harness.core().packets.size(), 0u);
    const ChurnResult res = harness.run();
    EXPECT_EQ(res.applied_ops, res.scheduled_ops);
    EXPECT_EQ(res.concurrent_mismatches, 0u)
        << res.concurrent_lookups << " concurrent lookups";
    EXPECT_EQ(res.probe_mismatches, 0u) << res.probes << " probes";
    EXPECT_EQ(res.cache_mismatches, 0u)
        << res.cache_probes << " cache-fronted probes";
    EXPECT_GE(res.swaps, cfg.min_swaps);
  }
}

// The ISSUE 5 acceptance gate: a FlowCache-fronted reader races insert/erase
// commits across ≥3 retrain swaps with ZERO stale-decision oracle
// mismatches. Two layers again: concurrent cache-fronted readers verify
// against the stable core while writers and per-step forced swaps race them
// (the TSAN half), and the persistent probe cache re-probes every packet
// earlier steps touched against the step-synchronized oracle — an entry
// that survived the commit that should have invalidated it diverges there
// (the functional half). cache_served > 0 proves the cache actually serves
// hits (a cache that never hits would pass vacuously).
TEST(ChurnFlowCache, CacheFrontedReadersCoherentAcrossSwaps) {
  ChurnConfig cfg;
  cfg.seed = 77;
  cfg.n_rules = 800;
  cfg.n_writers = 2;
  cfg.n_scalar_readers = 0;
  cfg.n_batch_readers = 1;
  cfg.n_cache_readers = 2;
  cfg.n_steps = 4;
  cfg.swap_each_step = true;   // 4 swaps land while cached entries persist
  cfg.cache_probes = true;
  cfg.auto_retrain = false;    // deterministic: swaps only where forced
  cfg.retrain_threshold = 1.0;
  cfg.min_swaps = 3;
  ChurnHarness harness{cfg};

  const ChurnResult res = harness.run();

  EXPECT_EQ(res.applied_ops, res.scheduled_ops);
  EXPECT_EQ(res.concurrent_mismatches, 0u)
      << "a cache-fronted or batch reader racing writers/swaps saw a wrong "
         "answer (" << res.concurrent_lookups << " lookups)";
  EXPECT_EQ(res.probe_mismatches, 0u);
  EXPECT_EQ(res.cache_mismatches, 0u)
      << "the flow cache served a STALE decision (" << res.cache_probes
      << " cache-fronted probes, " << res.cache_served << " hits)";
  EXPECT_GT(res.cache_served, 0u)
      << "the probe cache never served a hit - the staleness oracle is vacuous";
  EXPECT_GE(res.swaps, 3u) << "cached decisions must ride through >=3 swaps";
}

// Readers that are REAL pipeline replicas (the ISSUE 7 churn gate): each
// reader pass builds a 3-replica TraceSource → FlowCache → Classifier →
// Sink graph fanned into the churning engine and runs it on a 2-thread
// Click-style scheduler. Every merged record — produced through the RSS
// split, per-replica caches, and scheduler work stealing — must carry the
// stable core's invariant answer at its global stream index while writers
// and one forced swap per step race the passes.
TEST(ChurnReplicatedPipeline, ReplicaGraphReadersMatchCoreAcrossSwaps) {
  ChurnConfig cfg;
  cfg.seed = 93;
  cfg.n_rules = 700;
  cfg.n_writers = 2;
  cfg.n_scalar_readers = 0;
  cfg.n_batch_readers = 0;
  cfg.n_replica_readers = 1;
  cfg.replica_count = 3;
  cfg.replica_threads = 2;
  cfg.n_steps = 3;
  cfg.swap_each_step = true;
  cfg.auto_retrain = false;
  cfg.retrain_threshold = 1.0;
  cfg.min_swaps = 3;
  ChurnHarness harness{cfg};

  const ChurnResult res = harness.run();

  EXPECT_EQ(res.applied_ops, res.scheduled_ops);
  EXPECT_GT(res.concurrent_lookups, 0u)
      << "no replicated-graph pass completed - the mode is vacuous";
  EXPECT_EQ(res.concurrent_mismatches, 0u)
      << "a replicated-pipeline reader racing writers/swaps saw a wrong "
         "answer (" << res.concurrent_lookups << " merged records checked)";
  EXPECT_EQ(res.probe_mismatches, 0u);
  EXPECT_GE(res.swaps, 3u);
}

// The ISSUE 9 acceptance gate: a failpoint kills a replica task mid-churn
// — between bursts, the lossless fault domain — in every replicated pass,
// while writers and one forced swap per step race the recovery ladder
// (quarantine → quiesce → re-steer → drain → respawn → rejoin). The merged
// differential must STILL carry every core packet's invariant answer with
// zero mismatches: no lost slice, no double-served position, no stale
// decision surviving the drained cache. The tallies prove the drill was
// not vacuous — crashes actually landed and the replicas actually rejoined.
// Runs under the TSAN CI leg.
TEST(ChurnReplicatedPipeline, ReplicaCrashMidChurnRecoversWithZeroMismatches) {
  ChurnConfig cfg;
  cfg.seed = 97;
  cfg.n_rules = 700;
  cfg.n_writers = 2;
  cfg.n_scalar_readers = 0;
  cfg.n_batch_readers = 0;
  cfg.n_replica_readers = 1;
  cfg.replica_count = 3;
  cfg.replica_threads = 2;
  cfg.replica_crash = true;
  cfg.n_steps = 3;
  cfg.swap_each_step = true;
  cfg.auto_retrain = false;
  cfg.retrain_threshold = 1.0;
  cfg.min_swaps = 3;
  ChurnHarness harness{cfg};

  const ChurnResult res = harness.run();

  EXPECT_EQ(res.applied_ops, res.scheduled_ops);
  EXPECT_GT(res.replica_passes, 0u)
      << "no replicated-graph pass completed - the drill is vacuous";
  EXPECT_GE(res.replica_quarantines, 1u)
      << "the injected crash never landed on a replica task";
  EXPECT_GE(res.replica_rejoins, 1u)
      << "no quarantined replica ever respawned and rejoined";
  EXPECT_EQ(res.replica_rejoins, res.replica_quarantines)
      << "a rejoin failed (nothing was armed to fail it)";
  EXPECT_EQ(res.concurrent_mismatches, 0u)
      << "the recovery ladder served a wrong or stale answer, or lost/"
         "duplicated part of the dead replica's slice ("
      << res.concurrent_lookups << " merged records checked, "
      << res.replica_quarantines << " quarantines across "
      << res.replica_passes << " passes)";
  EXPECT_EQ(res.probe_mismatches, 0u);
  EXPECT_GE(res.swaps, 3u);
}

// The ISSUE 6 acceptance gate: the retrain failpoint armed to fail 3
// consecutive attempts mid-churn. The engine must serve with ZERO oracle
// mismatches through failure → backoff → degraded (3 == max_retrain_failures
// consecutive failures), health() must report the failures, the backoff
// window, the degraded flag and the preserved error message — and a later
// unarmed forced retrain must recover to a fresh, healthy generation. Runs
// under the TSAN CI leg with writers and readers racing the whole ladder.
TEST(ChurnFaultInjection, ThreeFailuresDegradeThenRecover) {
  ChurnConfig cfg;
  cfg.seed = 101;
  cfg.n_rules = 800;
  cfg.n_writers = 2;
  cfg.n_scalar_readers = 1;
  cfg.n_batch_readers = 1;
  cfg.n_steps = 3;                 // drill fires after step 1's writers join
  cfg.fault_retrain_failures = 3;
  cfg.max_retrain_failures = 3;    // the third failure crosses into degraded
  cfg.backoff_initial_ms = 8;      // two observable backoff windows (8, 16 ms)
  cfg.auto_retrain = false;        // deterministic: only the drill's retrains
  cfg.retrain_threshold = 1.0;
  cfg.min_swaps = 1;
  ChurnHarness harness{cfg};

  const ChurnResult res = harness.run();

  // Serving stayed correct through the whole failure ladder.
  EXPECT_EQ(res.applied_ops, res.scheduled_ops);
  EXPECT_EQ(res.concurrent_mismatches, 0u)
      << "a reader racing the failing retrains saw a wrong answer ("
      << res.concurrent_lookups << " lookups)";
  EXPECT_EQ(res.probe_mismatches, 0u)
      << "the engine diverged from the oracle while degraded (" << res.probes
      << " probes)";

  // health() told the whole story while it happened...
  EXPECT_EQ(res.fault_failures_seen, 3u)
      << "health() never reported the 3 consecutive retrain failures";
  EXPECT_TRUE(res.backoff_seen) << "health() never reported a backoff window";
  EXPECT_TRUE(res.degraded_seen)
      << "3 consecutive failures must cross into degraded mode";
  EXPECT_TRUE(res.fault_error_seen)
      << "the injected error message was swallowed";

  // ...and the disarmed forced retrain recovered to a fresh generation.
  EXPECT_GE(res.swaps, 1u) << "recovery never published a fresh generation";
  EXPECT_TRUE(res.final_health.ok())
      << "post-recovery health still unhealthy: degraded="
      << res.final_health.degraded
      << " failures=" << res.final_health.retrain_failures
      << " last_error=" << res.final_health.last_error;
  EXPECT_FALSE(res.final_health.degraded);
  EXPECT_EQ(res.final_health.retrain_failures, 0u);
  EXPECT_TRUE(res.final_health.last_error.empty());
  EXPECT_EQ(res.final_health.retrain_failures_total, 3u);
}

// Below the degraded threshold the ladder must recover BY ITSELF: two
// injected failures back off and retry, the third attempt trains for real
// and swaps — no operator action, no degraded flag, failure state wiped.
TEST(ChurnFaultInjection, BackoffAutoRecoveryBelowDegradedThreshold) {
  ChurnConfig cfg;
  cfg.seed = 202;
  cfg.n_rules = 600;
  cfg.n_writers = 1;
  cfg.n_scalar_readers = 1;
  cfg.n_batch_readers = 0;
  cfg.n_steps = 3;
  cfg.fault_retrain_failures = 2;
  cfg.max_retrain_failures = 5;    // ladder succeeds before the threshold
  cfg.backoff_initial_ms = 8;
  cfg.auto_retrain = false;
  cfg.retrain_threshold = 1.0;
  cfg.min_swaps = 1;
  ChurnHarness harness{cfg};

  const ChurnResult res = harness.run();

  EXPECT_EQ(res.concurrent_mismatches, 0u);
  EXPECT_EQ(res.probe_mismatches, 0u);
  EXPECT_EQ(res.fault_failures_seen, 2u);
  EXPECT_TRUE(res.backoff_seen);
  EXPECT_FALSE(res.degraded_seen)
      << "2 failures with max=5 must never report degraded";
  EXPECT_GE(res.swaps, 1u);
  EXPECT_TRUE(res.final_health.ok());
  EXPECT_EQ(res.final_health.retrain_failures_total, 2u);
}

// Two writers inserting the SAME rule-id serialize on the writer lock;
// exactly one insert() may win, and the journal must carry the winner once —
// never the loser, never a duplicate. Regression for the duplicate-insert
// race window called out in ISSUE 3: a double-journaled insert would
// survive the next swap's replay.
TEST(ChurnRaces, ConcurrentDuplicateInsertAcceptedExactlyOnce) {
  const RuleSet base = generate_classbench(AppClass::kAcl, 1, 800, 44);
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.retrain_threshold = 1.0;
  cfg.auto_retrain = false;
  cfg.update_shards = 4;
  OnlineNuevoMatch online{cfg};
  online.build(base);

  constexpr int kRounds = 32;
  constexpr uint32_t kIdBase = 900'000;
  Rng rng{45};
  for (int round = 0; round < kRounds; ++round) {
    Rule r = base[rng.below(base.size())];
    r.id = kIdBase + static_cast<uint32_t>(round);
    r.priority = 2'000'000 + round;
    // Keep a retrain snapshot window open for half the rounds so the race
    // also runs against an open journal.
    if (round % 8 == 0) online.retrain_now();
    std::atomic<int> wins{0};
    std::vector<std::thread> racers;
    for (int t = 0; t < 2; ++t) {
      racers.emplace_back([&] {
        if (online.insert(r)) wins.fetch_add(1);
      });
    }
    for (auto& th : racers) th.join();
    ASSERT_EQ(wins.load(), 1) << "round " << round;
  }
  online.retrain_now();
  online.quiesce();

  // After the swap(s), each id must exist exactly once — a double-journaled
  // insert or a replay duplicate would break one of these.
  EXPECT_EQ(online.size(), base.size() + kRounds);
  for (int round = 0; round < kRounds; ++round) {
    const uint32_t id = kIdBase + static_cast<uint32_t>(round);
    EXPECT_TRUE(online.erase(id)) << "id " << id << " lost";
    EXPECT_FALSE(online.erase(id)) << "id " << id << " existed twice";
  }
}

// The per-shard op counters are the serialized churn telemetry; they must
// agree with the number of accepted updates regardless of shard count.
TEST(ChurnRaces, ShardOpCountsSumToAppliedOps) {
  const RuleSet base = generate_classbench(AppClass::kFw, 1, 600, 46);
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.retrain_threshold = 1.0;
  cfg.update_shards = 3;
  OnlineNuevoMatch online{cfg};
  online.build(base);
  EXPECT_EQ(online.update_shards(), 3);

  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      Rng rng{static_cast<uint64_t>(100 + w)};
      for (int i = 0; i < 50; ++i) {
        Rule r = base[rng.below(base.size())];
        r.id = 500'000 + static_cast<uint32_t>(w) * 1000 + static_cast<uint32_t>(i);
        r.priority = 2'000'000;
        if (online.insert(r)) accepted.fetch_add(1);
        if (i % 5 == 4 && online.erase(r.id)) accepted.fetch_add(1);
      }
    });
  }
  for (auto& th : writers) th.join();

  const auto counts = online.shard_op_counts();
  EXPECT_EQ(counts.size(), 3u);
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  EXPECT_EQ(total, accepted.load());
  EXPECT_EQ(online.update_ops(), accepted.load());

  // The counters are "updates since build/load": a rebuild starts them over.
  online.build(base);
  EXPECT_EQ(online.update_ops(), 0u);
}

}  // namespace
}  // namespace nuevomatch
