// Churn-test harness: a seeded generator of interleaved insert/erase/lookup
// schedules with a step-synchronized linear oracle, used to differentially
// test the online update subsystem (OnlineNuevoMatch) and the online
// parallel engine under real multi-writer / multi-reader concurrency.
//
// Verification runs on two levels at once:
//
//  * CONCURRENT (readers race writers and retrain swaps): reader threads —
//    scalar match() readers and BatchParallelEngine batch readers — hammer a
//    stable verification core (trace/verification.hpp) for the whole run.
//    Schedules only ever insert rules with strictly worse priority than
//    every base rule and only ever erase (a) churn rules or (b) base rules
//    that are not the expected answer of any core packet, so every core
//    answer is invariant under churn and each concurrent lookup is exactly
//    checkable while writers and background retrains race it.
//
//  * STEP-SYNCHRONIZED (exact differential): the schedule is pre-generated
//    from a seed, so after each step's writers join, the SAME ops are
//    replayed onto a LinearSearch oracle and the classifier is probed
//    against it — on a fresh seeded trace plus targeted packets aimed at
//    each rule this step inserted or erased (so an update that silently
//    failed to land, or an erase that resurrected, is caught immediately,
//    not just statistically). Probes run with writers quiescent but with
//    retrains/swaps still free to land mid-probe: a swap must never change
//    an answer, because journal replay has already linearized every applied
//    update into both generations.
//
// Ops across writers touch disjoint rule-ids (per-writer id namespaces and
// disjoint erasable-base slices), so the oracle replay order across writers
// is immaterial and every scheduled op must succeed on both sides.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "classbench/generator.hpp"
#include "classifiers/linear.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "cutsplit/cutsplit.hpp"
#include "nuevomatch/online.hpp"
#include "nuevomatch/parallel.hpp"
#include "pipeline/flow_cache.hpp"
#include "pipeline/replicate.hpp"
#include "trace/trace.hpp"
#include "trace/verification.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {

struct ChurnConfig {
  AppClass app = AppClass::kAcl;
  int app_variant = 1;
  size_t n_rules = 1000;
  uint64_t seed = 1;

  int n_writers = 2;
  int n_scalar_readers = 1;  ///< OnlineNuevoMatch::match readers
  int n_batch_readers = 1;   ///< BatchParallelEngine (online mode) readers
  /// Readers fronted by ONE shared update-coherent pipeline::FlowCache:
  /// hits serve cached decisions, misses classify-and-fill, every served
  /// answer is still checked against the stable core while writers and
  /// swaps race — the cache must never let a commit leak a stale decision.
  /// Readers ALTERNATE scalar probes with shard-grouped burst probes
  /// (lookup_burst/insert_burst), so the per-shard band-mark re-check races
  /// commits landing mid-burst too.
  int n_cache_readers = 0;
  size_t cache_capacity = 4096;
  /// Readers that are REAL pipeline replicas: each reader thread repeatedly
  /// builds an N-replica TraceSource → FlowCache → Classifier → Sink graph
  /// over the stable core (all replicas fanned into the one online engine
  /// under churn) and runs it on a Click-style scheduler, then checks the
  /// merged records against the core answers. This is the full dataplane —
  /// RSS split, per-replica caches, scheduler migration, epoch pinning —
  /// racing writers and swaps, not a hand-rolled lookup loop.
  int n_replica_readers = 0;
  uint32_t replica_count = 2;   ///< replicas per replicated-graph pass
  size_t replica_threads = 2;   ///< scheduler threads per pass
  /// Replica-crash drill (the ISSUE 9 acceptance gate): every replicated
  /// pass runs under SupervisorPolicy::kQuarantine with the
  /// pipeline.task.fire failpoint armed to kill one replica task at a
  /// seeded fire index mid-pass. The quarantine → re-steer → drain →
  /// rejoin ladder must serve every core packet's invariant answer anyway
  /// — the existing zero-mismatch check stays in force, and the harness
  /// additionally tallies quarantines/rejoins so a drill where the crash
  /// never landed is detectable as vacuous. Meaningful with exactly ONE
  /// replica reader (the failpoint registry is process-global; a second
  /// reader's arming would reset the first's trigger counters).
  bool replica_crash = false;

  int n_steps = 5;
  int inserts_per_writer_step = 40;
  int erases_per_writer_step = 16;

  size_t core_trace_len = 2000;  ///< raw trace length before hit-filtering
  size_t probes_per_step = 250;  ///< seeded exact-differential probes

  /// Step-synchronized cache-staleness oracle: probes run through a
  /// PERSISTENT FlowCache that carries entries across steps (and across the
  /// forced swaps below), re-probing every rule earlier steps touched. An
  /// entry cached before an erase/insert that changes its packet's answer
  /// MUST be invalidated by the commit's coherence-stamp bump — a served
  /// stale decision diverges from the oracle right here.
  bool cache_probes = false;

  /// Force one background retrain/swap inside every schedule step, so
  /// cached decisions and epoch pins ride through swaps mid-schedule (the
  /// ISSUE 5 acceptance gate: ≥3 swaps with a cache-fronted reader).
  bool swap_each_step = false;

  /// Fault-injection drill (the ISSUE 6 acceptance gate): at the schedule's
  /// midpoint step, arm the `online.retrain` failpoint to fail this many
  /// consecutive training attempts, force a retrain, and ride the
  /// failure → backoff → retry ladder while writers and readers keep
  /// racing — capturing what health() reported along the way. After the
  /// schedule the point is disarmed and a forced retrain must recover. The
  /// oracle checks run unchanged throughout: a failed retrain must never
  /// change an answer. 0 = off.
  int fault_retrain_failures = 0;
  /// Engine fault knobs in drill mode (passed through to OnlineConfig;
  /// small backoff values keep the drill fast under test).
  int max_retrain_failures = 5;
  uint32_t backoff_initial_ms = 4;
  uint32_t backoff_max_ms = 64;

  int update_shards = 4;
  double retrain_threshold = 0.02;
  bool auto_retrain = true;
  /// run() keeps forcing (background) retrains until at least this many
  /// generation swaps have been published, so every configuration exercises
  /// the snapshot → journal → merge → swap cycle even with auto-retrain off.
  uint64_t min_swaps = 3;
  /// Remainder engine behind the online classifier: TupleMerge (default) or
  /// CutSplit — the two §3.9 remainder backends, with very different
  /// base-deletion internals for the layer's rebuild path to chew on.
  bool cutsplit_remainder = false;
};

/// Fuzzer mode (ROADMAP "Churn harness as a fuzzer"): one seeded draw of the
/// whole knob space — rule-set shape, writer/reader mix, shard count,
/// retrain policy, remainder engine. A long-running loop over successive
/// draws (tests/test_churn.cpp, ChurnFuzzer; iterations via
/// NM_CHURN_FUZZ_ITERS, base seed via NM_CHURN_FUZZ_SEED) turns the harness
/// into an overnight concurrency fuzzer; the TSAN CI leg runs a short smoke
/// slice of the same loop on every PR.
[[nodiscard]] inline ChurnConfig randomized_churn_config(Rng& rng) {
  ChurnConfig c;
  constexpr AppClass kApps[] = {AppClass::kAcl, AppClass::kFw, AppClass::kIpc};
  c.app = kApps[rng.below(3)];
  c.app_variant = static_cast<int>(rng.between(1, 3));
  c.n_rules = 400 + rng.below(1200);
  c.seed = rng.next_u64();
  c.n_writers = static_cast<int>(rng.between(1, 3));
  c.n_scalar_readers = static_cast<int>(rng.between(0, 2));
  c.n_batch_readers = static_cast<int>(rng.between(0, 2));
  if (c.n_scalar_readers + c.n_batch_readers == 0) c.n_scalar_readers = 1;
  c.n_steps = static_cast<int>(rng.between(2, 4));
  c.inserts_per_writer_step = static_cast<int>(rng.between(10, 50));
  c.erases_per_writer_step = static_cast<int>(rng.between(4, 24));
  c.core_trace_len = 1200 + rng.below(1500);
  c.probes_per_step = 120 + rng.below(150);
  c.update_shards = static_cast<int>(rng.between(1, 8));
  constexpr double kThresholds[] = {0.005, 0.02, 0.1, 1.0};
  c.retrain_threshold = kThresholds[rng.below(4)];
  c.auto_retrain = rng.chance(0.5);
  c.min_swaps = rng.between(1, 3);
  c.cutsplit_remainder = rng.chance(0.35);
  c.n_cache_readers = static_cast<int>(rng.between(0, 2));
  if (rng.chance(0.5)) {
    c.n_replica_readers = 1;
    c.replica_count = static_cast<uint32_t>(rng.between(2, 4));
    c.replica_threads = rng.between(1, 2);
    // A third of the replicated draws also run the replica-crash drill —
    // quarantine/rejoin racing writers and swaps, still zero-mismatch.
    c.replica_crash = rng.chance(0.34);
  }
  c.cache_probes = rng.chance(0.5);
  c.swap_each_step = rng.chance(0.3);
  // A quarter of the draws run the retrain fault drill too, sometimes deep
  // enough to cross into degraded mode mid-churn.
  if (rng.chance(0.25)) {
    c.fault_retrain_failures = static_cast<int>(rng.between(1, 4));
    c.max_retrain_failures = static_cast<int>(rng.between(2, 5));
  }
  return c;
}

struct ChurnResult {
  uint64_t concurrent_lookups = 0;    ///< reader lookups racing writers/swaps
  uint64_t concurrent_mismatches = 0; ///< stable-core divergences (want 0)
  uint64_t probes = 0;                ///< step-synchronized oracle probes
  uint64_t probe_mismatches = 0;      ///< oracle divergences (want 0)
  uint64_t cache_probes = 0;          ///< probes served through the probe cache
  uint64_t cache_served = 0;          ///< ...of which were cache HITS
  uint64_t cache_mismatches = 0;      ///< cache-served oracle divergences (want 0)
  uint64_t scheduled_ops = 0;         ///< ops the schedule generated
  uint64_t applied_ops = 0;           ///< ops the classifier accepted
  uint64_t swaps = 0;                 ///< generations published after build

  // Replica-crash drill tallies (populated when replica_crash is set).
  uint64_t replica_passes = 0;        ///< replicated-graph passes completed
  uint64_t replica_quarantines = 0;   ///< replica tasks quarantined mid-pass
  uint64_t replica_rejoins = 0;       ///< ...of which respawned and rejoined

  // Fault-drill observations (populated when fault_retrain_failures > 0).
  uint64_t fault_failures_seen = 0;  ///< max consecutive failures health() showed
  bool degraded_seen = false;        ///< health().degraded observed mid-drill
  bool backoff_seen = false;         ///< health().in_backoff observed mid-drill
  bool fault_error_seen = false;     ///< health().last_error was non-empty
  EngineHealth final_health;         ///< snapshot after the run's last swap
};

class ChurnHarness {
 public:
  struct Op {
    enum class Kind : uint8_t { kInsert, kErase };
    Kind kind;
    Rule rule;  ///< insert payload; for erases, the body (for targeted probes)
    uint32_t id;
  };

  explicit ChurnHarness(ChurnConfig cfg)
      : cfg_(cfg),
        base_(generate_classbench(cfg.app, cfg.app_variant, cfg.n_rules, cfg.seed)) {
    core_ = make_stable_core(base_, cfg_.core_trace_len, cfg_.seed ^ 0x5ca1ab1eULL);
    assert(!core_.packets.empty());
    // Base rules that answer a core packet must never be erased (their
    // answers are the invariant the concurrent readers verify); everything
    // else is fair game, split into disjoint per-writer slices.
    std::unordered_set<int32_t> protected_ids(core_.expected.begin(),
                                              core_.expected.end());
    std::vector<std::vector<uint32_t>> erasable(
        static_cast<size_t>(cfg_.n_writers));
    size_t next = 0;
    for (const Rule& r : base_) {
      if (protected_ids.contains(static_cast<int32_t>(r.id))) continue;
      erasable[next++ % erasable.size()].push_back(r.id);
    }
    generate_schedule(erasable);
  }

  [[nodiscard]] const RuleSet& base() const noexcept { return base_; }
  [[nodiscard]] const StableCore& core() const noexcept { return core_; }
  [[nodiscard]] uint64_t scheduled_ops() const noexcept { return scheduled_ops_; }

  /// Build the online classifier + oracle, run the full schedule with
  /// concurrent readers, and return the tallies. Deterministic given the
  /// config (up to thread interleaving, which the invariants absorb).
  ChurnResult run() {
    OnlineConfig ocfg;
    if (cfg_.cutsplit_remainder) {
      ocfg.base.remainder_factory = [] { return std::make_unique<CutSplit>(); };
    } else {
      ocfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
    }
    ocfg.base.min_iset_coverage = 0.05;
    ocfg.retrain_threshold = cfg_.retrain_threshold;
    ocfg.auto_retrain = cfg_.auto_retrain;
    ocfg.update_shards = cfg_.update_shards;
    ocfg.max_retrain_failures = cfg_.max_retrain_failures;
    ocfg.backoff_initial_ms = cfg_.backoff_initial_ms;
    ocfg.backoff_max_ms = cfg_.backoff_max_ms;
    OnlineNuevoMatch online{ocfg};
    online.build(base_);
    const uint64_t gen0 = online.generations();

    LinearSearch oracle;  // the step-synchronized oracle
    oracle.build(base_);

    ChurnResult res;
    res.scheduled_ops = scheduled_ops_;

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> mismatches{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < cfg_.n_scalar_readers; ++t) {
      readers.emplace_back([&, t] {
        size_t i = static_cast<size_t>(t) * 13;
        while (!stop.load(std::memory_order_relaxed)) {
          const size_t k = i++ % core_.packets.size();
          if (online.match(core_.packets[k]).rule_id != core_.expected[k])
            mismatches.fetch_add(1);
          lookups.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // Cache-fronted readers share ONE update-coherent flow cache in front
    // of the classifier (the pipeline's FlowCache -> Classifier shape,
    // without the graph): a hit serves the cached decision, a miss reads
    // the coherence stamp BEFORE classifying and fills. Commits racing
    // these readers invalidate entries via the stamp; every served answer —
    // cached or fresh — must still equal the stable core's.
    pipeline::FlowCache shared_cache{cfg_.cache_capacity};
    shared_cache.set_stamp_source(&online);
    for (int t = 0; t < cfg_.n_cache_readers; ++t) {
      readers.emplace_back([&, t] {
        size_t i = static_cast<size_t>(t) * 29;
        uint64_t turn = static_cast<uint64_t>(t);
        while (!stop.load(std::memory_order_relaxed)) {
          if (turn++ % 2 == 0) {
            // Scalar probe.
            const size_t k = i++ % core_.packets.size();
            const Packet& p = core_.packets[k];
            pipeline::Decision d;
            int32_t got;
            if (shared_cache.lookup(p, d)) {
              got = d.rule_id;
            } else {
              const uint64_t stamp = shared_cache.current_stamp();
              const MatchResult r = online.match(p);
              got = r.rule_id;
              shared_cache.insert(p, pipeline::Decision{r.rule_id, r.priority, -1},
                                  stamp);
            }
            if (got != core_.expected[k]) mismatches.fetch_add(1);
            lookups.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          // Shard-grouped burst probe over a contiguous core window (the
          // pipeline's FlowCacheElement fast path): one stamp read fronts
          // the whole burst's fills, while the serve/retire verdicts come
          // from the band marks re-read per shard hold.
          const size_t k = i % core_.packets.size();
          const auto n = static_cast<uint32_t>(std::min(
              pipeline::FlowCache::kBurstLanes, core_.packets.size() - k));
          i += n;
          const Packet* ps = core_.packets.data() + k;
          std::array<pipeline::Decision, pipeline::FlowCache::kBurstLanes> out;
          const uint64_t stamp = shared_cache.current_stamp();
          const uint32_t hits = shared_cache.lookup_burst(ps, n, ~uint32_t{0},
                                                          out.data());
          std::array<pipeline::Decision, pipeline::FlowCache::kBurstLanes> fill;
          uint32_t fill_mask = 0;
          for (uint32_t j = 0; j < n; ++j) {
            int32_t got;
            if ((hits >> j) & 1u) {
              got = out[j].rule_id;
            } else {
              const MatchResult r = online.match(ps[j]);
              got = r.rule_id;
              fill[j] = pipeline::Decision{r.rule_id, r.priority, -1};
              fill_mask |= 1u << j;
            }
            if (got != core_.expected[k + j]) mismatches.fetch_add(1);
          }
          if (fill_mask != 0)
            shared_cache.insert_burst(ps, n, fill_mask, fill.data(), stamp);
          lookups.fetch_add(n, std::memory_order_relaxed);
        }
      });
    }
    // Replicated-pipeline readers: each pass is a fresh N-replica graph
    // (ReplicatedGraph is one-shot) over the stable core, fanned into the
    // online engine via a non-owning alias. The merged records — produced
    // through per-replica caches, the RSS split, and scheduler migration —
    // must carry every core packet's invariant answer, keyed by the global
    // stream index, while writers and swaps race the passes.
    const auto online_alias =
        std::shared_ptr<OnlineNuevoMatch>(std::shared_ptr<void>{}, &online);
    std::atomic<uint64_t> replica_passes{0};
    std::atomic<uint64_t> replica_quarantines{0};
    std::atomic<uint64_t> replica_rejoins{0};
    for (int t = 0; t < cfg_.n_replica_readers; ++t) {
      readers.emplace_back([&, online_alias, t] {
        // Crash drill: each pass arms a seeded one-shot kill of whatever
        // task reaches the Nth scheduled fire — the between-bursts seam,
        // so recovery must be lossless and the zero-mismatch check below
        // applies unchanged through quarantine → re-steer → rejoin.
        Rng crash_rng{cfg_.seed ^ 0xC4A5Dull ^ (static_cast<uint64_t>(t) << 32)};
        while (!stop.load(std::memory_order_relaxed)) {
          if (cfg_.replica_crash) {
            failpoint::arm(failpoint::kPipelineTaskFire,
                           failpoint::Trigger::nth(1 + crash_rng.below(24)));
          }
          pipeline::ReplicatedGraph rg{
              cfg_.replica_count, [&](uint32_t, uint32_t) {
                pipeline::Graph g;
                auto& src = g.add(
                    std::make_unique<pipeline::TraceSource>(core_.packets),
                    "src");
                auto& cache = g.add(std::make_unique<pipeline::FlowCacheElement>(
                                        cfg_.cache_capacity),
                                    "cache");
                auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
                cls_owned->attach(online_alias);
                auto& cls = g.add(std::move(cls_owned), "cls");
                auto& sink = g.add(std::make_unique<pipeline::Sink>(true), "sink");
                g.connect(src, 0, cache);
                g.connect(cache, 0, cls);
                g.connect(cls, 0, sink);
                return g;
              }};
          pipeline::ReplicatedRunOptions ropts;
          ropts.threads = cfg_.replica_threads;
          if (cfg_.replica_crash)
            ropts.policy = pipeline::SupervisorPolicy::kQuarantine;
          rg.run(ropts);
          if (cfg_.replica_crash) {
            failpoint::disarm(failpoint::kPipelineTaskFire);
            const pipeline::PipelineHealth h = rg.health();
            for (const pipeline::ReplicaHealth& r : h.replicas) {
              replica_quarantines.fetch_add(r.quarantines,
                                            std::memory_order_relaxed);
              replica_rejoins.fetch_add(r.rejoins, std::memory_order_relaxed);
            }
            replica_passes.fetch_add(1, std::memory_order_relaxed);
          }
          const std::vector<pipeline::Sink::Record> recs = rg.merged_records();
          if (recs.size() != core_.packets.size()) mismatches.fetch_add(1);
          for (const pipeline::Sink::Record& r : recs) {
            if (r.index >= core_.expected.size() ||
                r.rule_id != core_.expected[r.index])
              mismatches.fetch_add(1);
          }
          lookups.fetch_add(recs.size(), std::memory_order_relaxed);
        }
      });
    }
    for (int t = 0; t < cfg_.n_batch_readers; ++t) {
      readers.emplace_back([&, t] {
        // Each batch reader owns an engine; classify() pins one generation
        // per batch, so every result is checkable against the core even
        // while a swap lands between batches.
        BatchParallelEngine engine{online};
        std::vector<MatchResult> out(kDefaultBatchSize);
        size_t off = (static_cast<size_t>(t) * 41) % core_.packets.size();
        while (!stop.load(std::memory_order_relaxed)) {
          const size_t len =
              std::min(kDefaultBatchSize, core_.packets.size() - off);
          engine.classify({core_.packets.data() + off, len}, {out.data(), len});
          for (size_t i = 0; i < len; ++i) {
            if (out[i].rule_id != core_.expected[off + i]) mismatches.fetch_add(1);
          }
          lookups.fetch_add(len, std::memory_order_relaxed);
          off = (off + len) % core_.packets.size();
        }
      });
    }

    // Probe engine: exercises the batched two-core path during the
    // step-synchronized phases (no writers active, swaps still possible).
    BatchParallelEngine probe_engine{online};
    // Persistent probe cache for the staleness oracle: entries survive from
    // step to step — exactly what must NOT survive is a decision whose rule
    // the next step's writers erase.
    pipeline::FlowCache probe_cache{cfg_.cache_capacity};
    probe_cache.set_stamp_source(&online);

    std::atomic<uint64_t> applied{0};
    for (int s = 0; s < cfg_.n_steps; ++s) {
      std::vector<std::thread> writers;
      writers.reserve(static_cast<size_t>(cfg_.n_writers));
      for (int w = 0; w < cfg_.n_writers; ++w) {
        writers.emplace_back([&, w, s] {
          for (const Op& op : schedule_[static_cast<size_t>(w)][static_cast<size_t>(s)]) {
            const bool ok = op.kind == Op::Kind::kInsert ? online.insert(op.rule)
                                                         : online.erase(op.id);
            if (ok) applied.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      for (auto& th : writers) th.join();

      // Step-synchronize the oracle (ops across writers are id-disjoint, so
      // replay order between writers is immaterial).
      for (int w = 0; w < cfg_.n_writers; ++w) {
        for (const Op& op : schedule_[static_cast<size_t>(w)][static_cast<size_t>(s)]) {
          if (op.kind == Op::Kind::kInsert) {
            oracle.insert(op.rule);
          } else {
            oracle.erase(op.id);
          }
        }
      }
      if (cfg_.swap_each_step) {
        // Land one retrain/swap per step with cached decisions and epoch
        // pins from earlier steps still live.
        online.retrain_now();
        online.quiesce();
      }
      if (cfg_.fault_retrain_failures > 0 && s == cfg_.n_steps / 2) {
        // The drill: the next fault_retrain_failures training attempts
        // throw. Force a retrain and ride the failure → backoff → retry
        // ladder, sampling health() — readers keep hammering the stable
        // core and the step oracle below keeps probing, so any answer the
        // failure path changes is caught immediately.
        failpoint::arm(failpoint::kOnlineRetrain,
                       failpoint::Trigger::first(
                           static_cast<uint64_t>(cfg_.fault_retrain_failures)));
        online.retrain_now();
        for (;;) {
          const EngineHealth h = online.health();
          res.fault_failures_seen =
              std::max(res.fault_failures_seen, h.retrain_failures);
          res.degraded_seen |= h.degraded;
          res.backoff_seen |= h.in_backoff;
          res.fault_error_seen |= !h.last_error.empty();
          // The ladder ends in recovery (pending clears on success) or in
          // degraded mode (auto-retries stop).
          if (h.degraded || !h.retrain_pending) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      verify_step(online, probe_engine, oracle, probe_cache, s, res);
    }

    if (cfg_.fault_retrain_failures > 0) {
      // Recovery: disarm and force one clean retrain. A still-degraded
      // engine accepts the forced attempt (that is the operator's
      // recovery path); success must clear every failure flag.
      failpoint::disarm(failpoint::kOnlineRetrain);
      online.retrain_now();
      online.quiesce();
    }

    // Drive the system through the demanded number of swap cycles even when
    // the configured threshold never fires; the readers keep racing each
    // swap. Bounded so a wedged retrain path fails the test instead of
    // hanging it.
    int guard = 0;
    while (online.generations() - gen0 < cfg_.min_swaps && guard++ < 16) {
      online.retrain_now();
      online.quiesce();
    }
    stop.store(true);
    for (auto& th : readers) th.join();
    if (cfg_.replica_crash) failpoint::disarm(failpoint::kPipelineTaskFire);
    online.quiesce();

    res.concurrent_lookups = lookups.load();
    res.concurrent_mismatches = mismatches.load();
    res.replica_passes = replica_passes.load();
    res.replica_quarantines = replica_quarantines.load();
    res.replica_rejoins = replica_rejoins.load();
    res.applied_ops = applied.load();
    res.swaps = online.generations() - gen0;
    res.final_health = online.health();
    return res;
  }

 private:
  void generate_schedule(const std::vector<std::vector<uint32_t>>& erasable) {
    schedule_.assign(static_cast<size_t>(cfg_.n_writers), {});
    Rng rng{cfg_.seed ^ 0xfeedf00dULL};
    std::vector<size_t> erasable_next(static_cast<size_t>(cfg_.n_writers), 0);
    // Per-writer live churn rules (id → rule) and FIFO order, so erases can
    // target rules the same writer inserted in an earlier step.
    std::vector<std::vector<Rule>> backlog(static_cast<size_t>(cfg_.n_writers));
    for (int w = 0; w < cfg_.n_writers; ++w) {
      auto& steps = schedule_[static_cast<size_t>(w)];
      steps.resize(static_cast<size_t>(cfg_.n_steps));
      uint32_t next_id = kChurnIdBase + static_cast<uint32_t>(w) * kChurnIdStride;
      for (int s = 0; s < cfg_.n_steps; ++s) {
        auto& ops = steps[static_cast<size_t>(s)];
        for (int i = 0; i < cfg_.inserts_per_writer_step; ++i) {
          Rule r = base_[rng.below(base_.size())];
          r.id = next_id++;
          // Strictly worse than every base priority (generator emits
          // priority = index < n_rules), so core answers never change.
          r.priority = kChurnPriorityBase + static_cast<int32_t>(r.id & 0xFFFFF);
          ops.push_back(Op{Op::Kind::kInsert, r, r.id});
          backlog[static_cast<size_t>(w)].push_back(r);
        }
        for (int i = 0; i < cfg_.erases_per_writer_step; ++i) {
          auto& bl = backlog[static_cast<size_t>(w)];
          const auto& mine = erasable[static_cast<size_t>(w)];
          // Alternate: retire own churn rules and erasable base rules.
          if (i % 2 == 0 && bl.size() > static_cast<size_t>(cfg_.inserts_per_writer_step)) {
            const Rule victim = bl.front();
            bl.erase(bl.begin());
            ops.push_back(Op{Op::Kind::kErase, victim, victim.id});
          } else if (erasable_next[static_cast<size_t>(w)] < mine.size()) {
            const uint32_t id = mine[erasable_next[static_cast<size_t>(w)]++];
            ops.push_back(Op{Op::Kind::kErase, base_[id], id});
          }
        }
        scheduled_ops_ += ops.size();
      }
    }
  }

  void verify_step(const OnlineNuevoMatch& online, BatchParallelEngine& engine,
                   const LinearSearch& oracle, pipeline::FlowCache& cache,
                   int step, ChurnResult& res) {
    // Seeded probes over the base distribution...
    TraceConfig tc;
    tc.n_packets = cfg_.probes_per_step;
    tc.seed = cfg_.seed * 1000 + static_cast<uint64_t>(step);
    std::vector<Packet> probes = generate_trace(base_, tc);
    // ...plus a targeted packet inside every rule this step touched: an
    // insert that never landed, or an erase that resurrected, answers
    // differently from the oracle right here.
    std::vector<Packet> targeted;
    for (int w = 0; w < cfg_.n_writers; ++w) {
      for (const Op& op : schedule_[static_cast<size_t>(w)][static_cast<size_t>(step)]) {
        Packet p;
        for (int f = 0; f < kNumFields; ++f)
          p.field[static_cast<size_t>(f)] = op.rule.field[static_cast<size_t>(f)].lo;
        probes.push_back(p);
        targeted.push_back(p);
      }
    }
    // ...plus, for the cache-staleness oracle, every packet EARLIER steps
    // targeted: their answers are precisely the ones this step's ops (and
    // the ops of the steps between) may have changed, and the persistent
    // probe cache may still hold a decision for them from a previous
    // verify pass — which the intervening commits must have invalidated.
    if (cfg_.cache_probes) {
      probes.insert(probes.end(), probe_history_.begin(), probe_history_.end());
      probe_history_.insert(probe_history_.end(), targeted.begin(), targeted.end());
    }

    std::vector<MatchResult> batched(probes.size());
    for (size_t off = 0; off < probes.size(); off += kDefaultBatchSize) {
      const size_t len = std::min(kDefaultBatchSize, probes.size() - off);
      engine.classify({probes.data() + off, len}, {batched.data() + off, len});
    }
    for (size_t i = 0; i < probes.size(); ++i) {
      const int32_t want = oracle.match(probes[i]).rule_id;
      ++res.probes;
      if (online.match(probes[i]).rule_id != want) ++res.probe_mismatches;
      if (batched[i].rule_id != want) ++res.probe_mismatches;
    }

    if (!cfg_.cache_probes) return;
    // Cache-staleness differential: two passes through the persistent cache.
    // Pass 0 mostly misses (every step's commits bumped the stamp since the
    // last verify) and re-fills; pass 1 re-probes the SAME packets — with
    // writers quiescent the stamp is stable, so these are genuine cache
    // hits (asserted via res.cache_served) and every served decision, hit
    // or fill, must match the oracle. A coherence bug shows up in pass 0:
    // an entry filled at step s-1 whose packet's answer changed at step s
    // would be served stale here.
    for (int pass = 0; pass < 2; ++pass) {
      for (const Packet& p : probes) {
        pipeline::Decision d;
        int32_t got;
        if (cache.lookup(p, d)) {
          got = d.rule_id;
          ++res.cache_served;
        } else {
          const uint64_t stamp = cache.current_stamp();
          const MatchResult r = online.match(p);
          got = r.rule_id;
          cache.insert(p, pipeline::Decision{r.rule_id, r.priority, -1}, stamp);
        }
        ++res.cache_probes;
        if (got != oracle.match(p).rule_id) ++res.cache_mismatches;
      }
    }
    // Pass 2, bursted: the SAME probes again through lookup_burst /
    // insert_burst — the shard-grouped path the pipeline elements use. The
    // scalar passes above left the cache warm, so this pass is nearly all
    // hits; any decision the per-shard band-mark check lets through that the
    // scalar probe path would have retired diverges from the oracle here.
    for (size_t off = 0; off < probes.size();
         off += pipeline::FlowCache::kBurstLanes) {
      const auto n = static_cast<uint32_t>(
          std::min(pipeline::FlowCache::kBurstLanes, probes.size() - off));
      const Packet* ps = probes.data() + off;
      std::array<pipeline::Decision, pipeline::FlowCache::kBurstLanes> out;
      const uint64_t stamp = cache.current_stamp();
      const uint32_t hits = cache.lookup_burst(ps, n, ~uint32_t{0}, out.data());
      std::array<pipeline::Decision, pipeline::FlowCache::kBurstLanes> fill;
      uint32_t fill_mask = 0;
      for (uint32_t j = 0; j < n; ++j) {
        int32_t got;
        if ((hits >> j) & 1u) {
          got = out[j].rule_id;
          ++res.cache_served;
        } else {
          const MatchResult r = online.match(ps[j]);
          got = r.rule_id;
          fill[j] = pipeline::Decision{r.rule_id, r.priority, -1};
          fill_mask |= 1u << j;
        }
        ++res.cache_probes;
        if (got != oracle.match(ps[j]).rule_id) ++res.cache_mismatches;
      }
      if (fill_mask != 0) cache.insert_burst(ps, n, fill_mask, fill.data(), stamp);
    }
  }

  static constexpr uint32_t kChurnIdBase = 1'000'000;
  static constexpr uint32_t kChurnIdStride = 1'000'000;
  static constexpr int32_t kChurnPriorityBase = 2'000'000;

  ChurnConfig cfg_;
  RuleSet base_;
  StableCore core_;
  // schedule_[writer][step] → op list
  std::vector<std::vector<std::vector<Op>>> schedule_;
  // Every packet any completed step targeted (cache-staleness re-probes).
  std::vector<Packet> probe_history_;
  uint64_t scheduled_ops_ = 0;
};

}  // namespace nuevomatch
