// Failpoint framework tests: trigger semantics (always / first:N / nth:N /
// seeded probability), spec-string and env arming, counters, the RAII
// Scoped helper, the cheap disarmed gate — and the one failpoint whose
// graceful-degradation contract lives below the engine: epoch.grow, which
// must turn chunk-allocation failure into the pre-growth spin, never a
// crash.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "nuevomatch/epoch.hpp"

namespace nuevomatch {
namespace {

using failpoint::Trigger;

// Registered (and therefore run) FIRST in this binary: NM_FAILPOINTS is
// parsed once, before the first gate check, so the variable must be set
// before anything in this process evaluates a failpoint.
TEST(FailpointEnv, NmFailpointsArmsBeforeFirstEvaluation) {
  ::setenv("NM_FAILPOINTS", "env.test=first:2,env.other=always", 1);
  EXPECT_TRUE(failpoint::should_fire("env.test"));
  EXPECT_TRUE(failpoint::should_fire("env.test"));
  EXPECT_FALSE(failpoint::should_fire("env.test"));  // first:2 exhausted
  EXPECT_TRUE(failpoint::should_fire("env.other"));
  failpoint::disarm_all();
  ::unsetenv("NM_FAILPOINTS");
}

TEST(FailpointTriggers, DisarmedIsNeverAndFree) {
  failpoint::disarm_all();
  EXPECT_FALSE(failpoint::any_armed());
  EXPECT_FALSE(failpoint::should_fire("nobody.armed.this"));
  EXPECT_EQ(failpoint::evaluations("nobody.armed.this"), 0u);
}

TEST(FailpointTriggers, AlwaysFirstNthSemantics) {
  failpoint::Scoped always{"t.always", Trigger::always()};
  failpoint::Scoped first{"t.first", Trigger::first(3)};
  failpoint::Scoped nth{"t.nth", Trigger::nth(3)};
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(failpoint::should_fire("t.always")) << i;
    EXPECT_EQ(failpoint::should_fire("t.first"), i <= 3) << i;
    EXPECT_EQ(failpoint::should_fire("t.nth"), i == 3) << i;
  }
  EXPECT_EQ(failpoint::evaluations("t.always"), 5u);
  EXPECT_EQ(failpoint::fires("t.always"), 5u);
  EXPECT_EQ(failpoint::fires("t.first"), 3u);
  EXPECT_EQ(failpoint::fires("t.nth"), 1u);
}

TEST(FailpointTriggers, ProbIsSeededAndReplaysExactly) {
  std::vector<bool> run1, run2;
  failpoint::arm("t.prob", Trigger::prob(0.5, 42));
  for (int i = 0; i < 200; ++i) run1.push_back(failpoint::should_fire("t.prob"));
  failpoint::arm("t.prob", Trigger::prob(0.5, 42));  // re-arm resets the stream
  for (int i = 0; i < 200; ++i) run2.push_back(failpoint::should_fire("t.prob"));
  EXPECT_EQ(run1, run2) << "a seeded failure schedule must replay bit-for-bit";
  const uint64_t fired = failpoint::fires("t.prob");
  EXPECT_GT(fired, 50u);   // p=0.5 over 200 draws
  EXPECT_LT(fired, 150u);
  failpoint::disarm("t.prob");

  failpoint::Scoped never{"t.p0", Trigger::prob(0.0)};
  failpoint::Scoped ever{"t.p1", Trigger::prob(1.0)};
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(failpoint::should_fire("t.p0"));
    EXPECT_TRUE(failpoint::should_fire("t.p1"));
  }
}

TEST(FailpointTriggers, ThreadSafeFirstNFiresExactlyN) {
  failpoint::Scoped arm{"t.race", Trigger::first(100)};
  std::atomic<uint64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (failpoint::should_fire("t.race")) fired.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fired.load(), 100u)
      << "first:N must fire on exactly N evaluations across threads";
  EXPECT_EQ(failpoint::evaluations("t.race"), 4000u);
}

TEST(FailpointSpec, ParsesEveryTriggerAndSkipsMalformed) {
  failpoint::disarm_all();
  // 5 well-formed entries (a bare name means "always"); the malformed ones
  // (empty name, bad count, out-of-range probability) are skipped.
  EXPECT_EQ(failpoint::arm_from_spec("s.a=always,s.b=first:2;s.c=nth:3,"
                                     "s.d=prob:0.25:9,s.e,"
                                     "=bad,s.x=first:oops,s.y=prob:2.0"),
            5u);
  EXPECT_EQ(failpoint::armed_points().size(), 5u);
  EXPECT_TRUE(failpoint::should_fire("s.a"));
  EXPECT_TRUE(failpoint::should_fire("s.e"));
  EXPECT_TRUE(failpoint::should_fire("s.b"));
  EXPECT_FALSE(failpoint::should_fire("s.c"));  // nth:3, evaluation 1
  EXPECT_FALSE(failpoint::should_fire("s.x"));  // skipped, not armed
  // "off" disarms through the same grammar.
  EXPECT_EQ(failpoint::arm_from_spec("s.a=off"), 0u);
  EXPECT_FALSE(failpoint::should_fire("s.a"));
  EXPECT_EQ(failpoint::armed_points().size(), 4u);
  failpoint::disarm_all();
  EXPECT_FALSE(failpoint::any_armed());
}

TEST(FailpointScoped, DisarmsOnScopeExitEvenAcrossReturn) {
  {
    failpoint::Scoped arm{"t.scoped", Trigger::always()};
    EXPECT_TRUE(failpoint::should_fire("t.scoped"));
  }
  EXPECT_FALSE(failpoint::should_fire("t.scoped"));
  EXPECT_FALSE(failpoint::any_armed());
}

// The epoch.grow contract: an injected chunk-allocation failure must leave
// enter() spinning (the pre-growth behavior) rather than crashing, existing
// readers untouched, and growth must resume the moment the point is
// disarmed.
TEST(FailpointEpoch, GrowFailureDegradesToSpinThenRecovers) {
  epoch::Domain d;
  ASSERT_EQ(d.capacity(), epoch::Domain::kInitialSlots);

  failpoint::arm(failpoint::kEpochGrow, Trigger::always());
  // Saturate every pre-installed slot.
  std::vector<size_t> held;
  for (size_t i = 0; i < epoch::Domain::kInitialSlots; ++i)
    held.push_back(d.enter());
  EXPECT_EQ(d.capacity(), epoch::Domain::kInitialSlots);

  // The oversubscribed reader degrades to waiting for a free slot — and
  // proceeds the moment one frees, proving the spin is live, not a wedge.
  std::atomic<bool> entered{false};
  std::thread straggler{[&] {
    const size_t s = d.enter();
    entered.store(true, std::memory_order_release);
    d.exit(s);
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(entered.load(std::memory_order_acquire))
      << "enter() must not grow while the failpoint injects alloc failure";
  EXPECT_GT(failpoint::fires(failpoint::kEpochGrow), 0u)
      << "the saturated probe rounds never reached grow()";
  d.exit(held.back());
  held.pop_back();
  straggler.join();
  EXPECT_TRUE(entered.load());
  EXPECT_EQ(d.capacity(), epoch::Domain::kInitialSlots);

  // Disarm: the next oversubscribed enter() grows for real.
  failpoint::disarm(failpoint::kEpochGrow);
  held.push_back(d.enter());  // re-saturate (the straggler released its slot)
  const size_t grown = d.enter();
  EXPECT_EQ(d.capacity(), 2 * epoch::Domain::kInitialSlots);
  d.exit(grown);
  for (const size_t s : held) d.exit(s);
}

}  // namespace
}  // namespace nuevomatch
