// The Click-style task scheduler (src/pipeline/scheduler.hpp) and the
// per-core replicated dataplane built on it (src/pipeline/replicate.hpp).
// The archetype here is differential: a replicated, scheduled, work-stolen
// run must be PROVABLY equivalent to the scalar single-thread oracle —
// identical per-packet decisions joined on the global stream index,
// identical aggregate counter totals — including across forced mid-stream
// generation swaps of the one shared online engine. The scheduler unit
// tests pin the mechanics that equivalence rests on: quantum fairness,
// migration between fires only, clean shutdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "classbench/generator.hpp"
#include "classbench/parser.hpp"
#include "classifiers/linear.hpp"
#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/replicate.hpp"
#include "pipeline/scheduler.hpp"
#include "trace/pcap.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

using pipeline::Graph;
using pipeline::ReplicatedGraph;
using pipeline::ReplicatedRunOptions;
using pipeline::Scheduler;
using pipeline::Task;
using pipeline::TaskState;

std::string tmp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::shared_ptr<OnlineNuevoMatch> make_online(const RuleSet& rules,
                                              double retrain_threshold = 1.0) {
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;
  cfg.auto_retrain = false;
  cfg.retrain_threshold = retrain_threshold;
  auto online = std::make_shared<OnlineNuevoMatch>(std::move(cfg));
  online->build(rules);
  return online;
}

// --- scheduler unit tests ---------------------------------------------------

// The quantum bounds how long one task can monopolize a thread: with two
// always-ready tasks on ONE thread, task A can fire at most `quantum`
// consecutive times between two fires of task B. This is the no-starvation
// property — a saturated source cannot lock a classifier task out.
TEST(SchedulerCore, QuantumBoundsConsecutiveFiresOfOneTask) {
  constexpr uint32_t kQuantum = 4;
  Scheduler::Options opt;
  opt.quantum = kQuantum;
  Scheduler sched(1, opt);

  uint64_t a_fires = 0;
  uint64_t b_fires = 0;
  uint64_t last_a_at_b = 0;
  uint64_t max_gap = 0;
  sched.add([&]() -> TaskState {
    return ++a_fires >= 400 ? TaskState::kDone : TaskState::kWorked;
  });
  sched.add([&]() -> TaskState {
    max_gap = std::max(max_gap, a_fires - last_a_at_b);
    last_a_at_b = a_fires;
    return ++b_fires >= 100 ? TaskState::kDone : TaskState::kWorked;
  });
  sched.run();

  EXPECT_EQ(a_fires, 400u);
  EXPECT_EQ(b_fires, 100u);
  // While both tasks were live, B observed at most one full A-quantum
  // between its own fires.
  EXPECT_LE(max_gap, kQuantum);
  EXPECT_EQ(sched.stats().fires, 500u);
}

// An idle thread steals a migratable task; migration happens only between
// fires, so the task's own fire sequence stays totally ordered. The
// migrant refuses to make progress on its home thread — it can ONLY finish
// if work stealing moves it.
TEST(SchedulerCore, IdleThreadStealsMigratableTask) {
  Scheduler sched(2);
  std::atomic<bool> migrant_done{false};
  std::set<int> migrant_threads;
  std::mutex mu;
  uint64_t migrant_work = 0;

  Task& migrant = sched.add(
      [&]() -> TaskState {
        if (Scheduler::current_thread() == 0) return TaskState::kIdle;
        {
          const std::lock_guard<std::mutex> lk(mu);
          migrant_threads.insert(Scheduler::current_thread());
        }
        if (++migrant_work < 10) return TaskState::kWorked;
        migrant_done.store(true);
        return TaskState::kDone;
      },
      {.home = 0, .migratable = true, .daemon = false, .label = "migrant"});
  // Keeps thread 0 busy (and the scheduler alive) until the migrant lands.
  Task::Options pinned;
  pinned.home = 0;
  pinned.migratable = false;
  sched.add(
      [&]() -> TaskState {
        return migrant_done.load() ? TaskState::kDone : TaskState::kWorked;
      },
      std::move(pinned));
  sched.run();

  EXPECT_TRUE(migrant.done());
  EXPECT_GE(migrant.migrations(), 1u);
  EXPECT_EQ(migrant_work, 10u);
  EXPECT_EQ(migrant.worked(), 9u);  // the final kDone fire is not "worked"
  EXPECT_EQ(migrant_threads, std::set<int>{1});  // never worked on home
  EXPECT_GE(sched.stats().steals, 1u);
}

// A non-migratable task is never stolen, no matter how idle other threads
// are: every one of its fires happens on its home thread.
TEST(SchedulerCore, NonMigratableTaskStaysOnHomeThread) {
  Scheduler sched(2);
  std::set<int> seen;
  uint64_t fires = 0;
  Task::Options pinned;
  pinned.home = 1;
  pinned.migratable = false;
  Task& t = sched.add(
      [&]() -> TaskState {
        seen.insert(Scheduler::current_thread());
        return ++fires >= 200 ? TaskState::kDone : TaskState::kWorked;
      },
      std::move(pinned));
  sched.run();
  EXPECT_EQ(seen, std::set<int>{1});
  EXPECT_EQ(t.migrations(), 0u);
}

// request_stop() from inside a fire: every thread finishes its current
// fire and drains out; nothing is leaked (the ASan leg verifies), and the
// not-yet-done tasks are simply left undone.
TEST(SchedulerCore, RequestStopDrainsCleanly) {
  Scheduler sched(2);
  uint64_t fires = 0;
  // Closure state that would leak if shutdown abandoned queue entries.
  auto payload = std::make_shared<std::vector<int>>(1024, 7);
  Task& forever = sched.add([payload]() -> TaskState {
    return TaskState::kWorked;
  });
  sched.add([&]() -> TaskState {
    if (++fires >= 50) {
      sched.request_stop();
      return TaskState::kIdle;
    }
    return TaskState::kWorked;
  });
  sched.run();
  EXPECT_FALSE(forever.done());
  EXPECT_GE(fires, 50u);
  EXPECT_GT(sched.stats().fires, 0u);
}

// A throwing task stops the whole scheduler cleanly and run() rethrows the
// first exception after every worker joined.
TEST(SchedulerCore, TaskExceptionPropagatesOutOfRun) {
  Scheduler sched(2);
  uint64_t fires = 0;
  sched.add([&]() -> TaskState {
    if (++fires >= 5) throw std::runtime_error("boom");
    return TaskState::kWorked;
  });
  sched.add([]() -> TaskState { return TaskState::kWorked; });
  EXPECT_THROW(sched.run(), std::runtime_error);
}

// --- graph step() -----------------------------------------------------------

TEST(GraphStep, RequiresExactlyOneSource) {
  {
    Graph g;
    g.add(std::make_unique<pipeline::Counter>(), "c");
    EXPECT_THROW((void)g.step(), std::runtime_error);  // no source
  }
  {
    Graph g;
    g.add(std::make_unique<pipeline::TraceSource>(std::vector<Packet>(8)), "a");
    g.add(std::make_unique<pipeline::TraceSource>(std::vector<Packet>(8)), "b");
    EXPECT_THROW((void)g.step(), std::runtime_error);  // ambiguous
  }
}

TEST(GraphStep, StepsMatchRunSemantics) {
  std::vector<Packet> pkts(pipeline::kBurstSize * 2 + 5);
  Graph g;
  auto& src = g.add(std::make_unique<pipeline::TraceSource>(pkts), "src");
  auto& cnt = g.add(std::make_unique<pipeline::Counter>(), "cnt");
  g.connect(src, 0, cnt);
  uint64_t pumped = 0;
  size_t steps = 0;
  while (g.step(&pumped)) ++steps;
  g.finish_run();
  EXPECT_EQ(pumped, pkts.size());
  EXPECT_EQ(steps, 3u);
  EXPECT_EQ(cnt.packets(), pkts.size());
  EXPECT_FALSE(g.step(&pumped));  // EOS latches
}

// --- RSS replica split ------------------------------------------------------

// The splitter partitions the trace: every packet lands on exactly one
// replica (union = whole trace, no duplicates), and always the replica its
// five-tuple hashes to — the flow-affinity invariant.
TEST(ReplicaSplit, SourcesPartitionTheTraceByFlowHash) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 200, 31);
  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kZipf;
  tc.n_packets = 3'000;
  const std::vector<Packet> trace = generate_trace(rules, tc);

  constexpr uint32_t kReplicas = 4;
  ReplicatedGraph rg(kReplicas, [&](uint32_t, uint32_t) {
    Graph g;
    auto& src = g.add(std::make_unique<pipeline::TraceSource>(trace), "src");
    auto& sink = g.add(std::make_unique<pipeline::Sink>(true), "sink");
    g.connect(src, 0, sink);
    return g;
  });
  const uint64_t total = rg.run();  // 1 thread: deterministic
  EXPECT_EQ(total, trace.size());

  std::vector<uint8_t> seen(trace.size(), 0);
  for (uint32_t r = 0; r < kReplicas; ++r) {
    const auto* sink =
        static_cast<const pipeline::Sink*>(rg.replica(r).find("sink"));
    for (const auto& rec : sink->records()) {
      ASSERT_LT(rec.index, trace.size());
      EXPECT_EQ(pipeline::rss_hash(trace[rec.index]) % kReplicas, r)
          << "packet on the wrong replica";
      ++seen[rec.index];
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](uint8_t c) { return c == 1; }))
      << "split is not a partition";
}

// --- the differential layer -------------------------------------------------

// Per-flow (here: per-replica, which is coarser) record order must survive
// scheduling, quanta, and work stealing: within one replica's sink the
// global indices arrive strictly increasing, because a replica is one task
// and a task's fires are totally ordered no matter where they run.
TEST(ReplicaDifferential, PerReplicaOrderSurvivesMigration) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 300, 37);
  auto online = make_online(rules);
  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kZipf;
  tc.n_packets = 4'000;
  const std::vector<Packet> trace = generate_trace(rules, tc);

  constexpr uint32_t kReplicas = 4;
  ReplicatedGraph rg(kReplicas, [&](uint32_t, uint32_t) {
    Graph g;
    auto& src = g.add(std::make_unique<pipeline::TraceSource>(trace), "src");
    auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
    cls_owned->attach(online);
    cls_owned->set_actions(rules);
    auto& cls = g.add(std::move(cls_owned), "cls");
    auto& sink = g.add(std::make_unique<pipeline::Sink>(true), "sink");
    g.connect(src, 0, cls);
    g.connect(cls, 0, sink);
    return g;
  });
  ReplicatedRunOptions opts;
  opts.threads = 2;
  opts.quantum = 2;  // short slices force interleaving and steals
  EXPECT_EQ(rg.run(opts), trace.size());

  for (uint32_t r = 0; r < kReplicas; ++r) {
    const auto& recs =
        static_cast<const pipeline::Sink*>(rg.replica(r).find("sink"))
            ->records();
    for (size_t i = 1; i < recs.size(); ++i) {
      ASSERT_LT(recs[i - 1].index, recs[i].index)
          << "replica " << r << " emitted out of order";
    }
  }
  EXPECT_EQ(rg.merged_records().size(), trace.size());
}

// THE acceptance differential: the golden pcap through a 1-thread scalar
// graph and through a 4-replica scheduled graph (4 threads, shared engine,
// ≥3 forced mid-stream generation swaps) must produce identical per-packet
// decisions and identical aggregate Counter totals. The rule-set never
// changes, so the swaps must be answer-invariant — any divergence is a
// scheduler/fan-in bug. Runs under TSAN in CI.
TEST(ReplicaDifferential, FourReplicasMatchScalarOracleOnGoldenPcap) {
  const std::string root = NM_SOURCE_ROOT;
  const std::string config =
      "src   :: PcapSource(" + root + "/examples/data/golden64.pcap);\n"
      "cache :: FlowCache(1024);\n"
      "cls   :: Classifier(" + root + "/examples/data/router_acl.rules, manual);\n"
      "cnt   :: Counter(all);\n"
      "disp  :: Dispatch(permit, deny);\n"
      "hit   :: Sink(record);\n"
      "miss  :: Sink(record);\n"
      "src -> cache -> cls -> cnt -> disp;\n"
      "disp[0] -> hit;\n"
      "disp[1] -> miss;\n";

  // Scalar oracle run.
  Graph scalar = Graph::parse(config);
  const uint64_t scalar_total = scalar.run();
  std::vector<pipeline::Sink::Record> want;
  for (const char* s : {"hit", "miss"}) {
    const auto& recs =
        static_cast<const pipeline::Sink*>(scalar.find(s))->records();
    want.insert(want.end(), recs.begin(), recs.end());
  }
  std::sort(want.begin(), want.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  const uint64_t scalar_counted =
      static_cast<const pipeline::Counter*>(scalar.find("cnt"))->packets();

  // Replicated run: 4 replicas on 4 scheduler threads, one shared engine,
  // three forced generation swaps landing mid-stream.
  ReplicatedGraph rg = ReplicatedGraph::parse(config, 4);
  OnlineNuevoMatch* online = rg.shared_online();
  ASSERT_NE(online, nullptr);
  const uint64_t gen0 = online->generations();

  std::mutex swap_mu;
  int swaps = 0;
  // Tick values arrive out of order across scheduler threads, so fire
  // every threshold the cumulative count has passed, not just the next.
  constexpr uint64_t kSwapAt[3] = {16, 32, 48};
  ReplicatedRunOptions opts;
  opts.threads = 4;
  opts.quantum = 1;  // every burst reschedules: maximal interleaving
  opts.tick = [&](uint64_t done) {
    const std::lock_guard<std::mutex> lk(swap_mu);
    while (swaps < 3 && done >= kSwapAt[swaps]) {
      online->retrain_now();
      online->quiesce();  // each forced swap must actually publish
      ++swaps;
    }
  };
  const uint64_t total = rg.run(opts);
  online->quiesce();

  EXPECT_EQ(total, scalar_total);
  EXPECT_EQ(swaps, 3);
  EXPECT_GE(online->generations() - gen0, 3u);

  const std::vector<pipeline::Sink::Record> got = rg.merged_records();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index);
    EXPECT_EQ(got[i].rule_id, want[i].rule_id) << "packet " << want[i].index;
    EXPECT_EQ(got[i].priority, want[i].priority) << "packet " << want[i].index;
    EXPECT_EQ(got[i].action, want[i].action) << "packet " << want[i].index;
  }
  EXPECT_EQ(rg.total_counter_packets(), scalar_counted);
  EXPECT_EQ(rg.total_sink_packets(), scalar_total);
}

// The same differential at trace scale, against an independent LinearSearch
// oracle, with per-replica FlowCaches in the path (so the update-coherence
// machinery is exercised across the swaps) and enough packets that every
// replica sees real cache hits.
TEST(ReplicaDifferential, TraceScaleMatchesLinearOracleThroughSwaps) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 600, 41);
  auto online = make_online(rules);
  TraceConfig tc;
  tc.kind = TraceConfig::Kind::kZipf;
  tc.zipf_alpha = 1.15;
  tc.n_packets = 6'000;
  const std::vector<Packet> trace = generate_trace(rules, tc);
  LinearSearch oracle;
  oracle.build(rules);

  constexpr uint32_t kReplicas = 4;
  ReplicatedGraph rg(kReplicas, [&](uint32_t, uint32_t) {
    Graph g;
    auto& src = g.add(std::make_unique<pipeline::TraceSource>(trace), "src");
    auto& cache =
        g.add(std::make_unique<pipeline::FlowCacheElement>(2048), "cache");
    auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
    cls_owned->attach(online);
    cls_owned->set_actions(rules);
    auto& cls = g.add(std::move(cls_owned), "cls");
    auto& cnt = g.add(std::make_unique<pipeline::Counter>(), "cnt");
    auto& sink = g.add(std::make_unique<pipeline::Sink>(true), "sink");
    g.connect(src, 0, cache);
    g.connect(cache, 0, cls);
    g.connect(cls, 0, cnt);
    g.connect(cnt, 0, sink);
    return g;
  });

  const uint64_t gen0 = online->generations();
  std::mutex swap_mu;
  int swaps = 0;
  const uint64_t n = trace.size();
  const uint64_t swap_at[3] = {n / 4, n / 2, 3 * n / 4};
  ReplicatedRunOptions opts;
  opts.threads = 2;
  opts.quantum = 2;
  opts.tick = [&](uint64_t done) {  // reorder-robust: see golden-pcap test
    const std::lock_guard<std::mutex> lk(swap_mu);
    while (swaps < 3 && done >= swap_at[swaps]) {
      online->retrain_now();
      online->quiesce();
      ++swaps;
    }
  };
  EXPECT_EQ(rg.run(opts), n);
  online->quiesce();
  EXPECT_EQ(swaps, 3);
  EXPECT_GE(online->generations() - gen0, 3u);

  const std::vector<pipeline::Sink::Record> got = rg.merged_records();
  ASSERT_EQ(got.size(), n);
  uint64_t mismatches = 0;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i].index, i);  // exactly-once, every position covered
    if (oracle.match(trace[i]).rule_id != got[i].rule_id) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u)
      << "replicated decisions diverged from the scalar oracle";
  EXPECT_EQ(rg.total_counter_packets(), n);

  // Non-vacuous: the skewed trace must have produced real cache hits.
  uint64_t hits = 0;
  for (uint32_t r = 0; r < kReplicas; ++r) {
    hits += static_cast<pipeline::FlowCacheElement*>(rg.replica(r).find("cache"))
                ->cache()
                .stats()
                .hits;
  }
  EXPECT_GT(hits, 0u) << "flow caches never hit — differential vacuous";
}

// Background retrain as "just another task": a daemon task watches the
// shared engine's absorption ratio and kicks retrain_now() from whatever
// scheduler thread it lands on. With pre-run churn pushing absorption past
// the threshold, the run itself must publish a new generation.
TEST(ReplicaDifferential, RetrainDaemonTaskPublishesGeneration) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 400, 43);
  auto online = make_online(rules, /*retrain_threshold=*/0.01);
  TraceConfig tc;
  tc.n_packets = 2'000;
  const std::vector<Packet> trace = generate_trace(rules, tc);

  // Churn BEFORE the run: absorption is already past threshold when the
  // daemon task first fires.
  for (uint32_t i = 0; i < 20; ++i) {
    Rule r = rules[i % rules.size()];
    r.id = 800'000 + i;
    r.priority = 1'000 + static_cast<int32_t>(i);
    ASSERT_TRUE(online->insert(r));
  }
  const uint64_t gen0 = online->generations();

  ReplicatedGraph rg(2, [&](uint32_t, uint32_t) {
    Graph g;
    auto& src = g.add(std::make_unique<pipeline::TraceSource>(trace), "src");
    auto cls_owned = std::make_unique<pipeline::ClassifierElement>();
    cls_owned->attach(online);
    auto& cls = g.add(std::move(cls_owned), "cls");
    auto& sink = g.add(std::make_unique<pipeline::Sink>(), "sink");
    g.connect(src, 0, cls);
    g.connect(cls, 0, sink);
    return g;
  });
  ReplicatedRunOptions opts;
  opts.threads = 2;
  opts.retrain_task = true;
  EXPECT_EQ(rg.run(opts), trace.size());
  online->quiesce();
  const EngineHealth h = online->health();
  EXPECT_GT(online->generations(), gen0)
      << "the retrain daemon task never kicked a swap (absorption="
      << online->absorption() << ", failures=" << h.retrain_failures_total
      << ", sched worked=" << rg.last_stats().worked
      << ", fires=" << rg.last_stats().fires << ")";
}

}  // namespace
}  // namespace nuevomatch
