// End-to-end RQ-RMI correctness: the paper's central guarantee (§3.3,
// Appendix A) is that for EVERY key inside an indexed range — sampled during
// training or not — the true array position lies within the certified search
// window around the prediction. We verify it exhaustively on 16-bit domains
// and densely (every range's endpoints, interior probes, and float-boundary
// neighbours) on 32-bit domains, across interval shapes and model configs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "rqrmi/model.hpp"

namespace nuevomatch::rqrmi {
namespace {

struct IntervalSet {
  std::vector<KeyInterval> intervals;  // normalized
  std::vector<std::pair<uint64_t, uint64_t>> raw;  // integer [lo, hi] inclusive
  uint64_t domain_max = 0;
};

/// Random disjoint integer ranges over [0, domain_max], optionally clustered.
IntervalSet make_intervals(size_t n, uint64_t domain_max, uint64_t seed,
                           bool clustered = false) {
  IntervalSet out;
  out.domain_max = domain_max;
  Rng rng{seed};
  // Draw 2n distinct-ish sorted cut points.
  std::vector<uint64_t> points;
  const uint64_t span = clustered ? domain_max / 64 : domain_max;
  const uint64_t base = clustered ? domain_max / 2 : 0;
  for (size_t i = 0; i < 2 * n; ++i) points.push_back(base + rng.below(span + 1));
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  for (size_t i = 0; i + 1 < points.size() && out.raw.size() < n; i += 2) {
    const uint64_t lo = points[i];
    const uint64_t hi = points[i + 1] > points[i] ? points[i + 1] - 1 : points[i];
    if (hi < lo) continue;
    out.raw.emplace_back(lo, hi);
  }
  for (size_t i = 0; i < out.raw.size(); ++i) {
    out.intervals.push_back(KeyInterval{
        normalize_key_exact(out.raw[i].first, domain_max),
        normalize_key_exact(out.raw[i].second + 1, domain_max),
        static_cast<uint32_t>(i)});
  }
  return out;
}

void expect_key_found(const RqRmi& model, const IntervalSet& s, uint64_t key,
                      size_t true_idx, const char* ctx) {
  const float norm = normalize_key(static_cast<uint32_t>(key), s.domain_max);
  const Prediction pred = model.lookup(norm);
  const auto lo = static_cast<int64_t>(pred.index) - pred.search_error;
  const auto hi = static_cast<int64_t>(pred.index) + pred.search_error;
  EXPECT_TRUE(static_cast<int64_t>(true_idx) >= lo && static_cast<int64_t>(true_idx) <= hi)
      << ctx << ": key=" << key << " true=" << true_idx << " pred=" << pred.index
      << " err=" << pred.search_error;
}

void check_all_boundaries(const RqRmi& model, const IntervalSet& s, const char* ctx) {
  Rng rng{99};
  for (size_t i = 0; i < s.raw.size(); ++i) {
    const auto [lo, hi] = s.raw[i];
    expect_key_found(model, s, lo, i, ctx);
    expect_key_found(model, s, hi, i, ctx);
    for (int probe = 0; probe < 4; ++probe)
      expect_key_found(model, s, rng.between(lo, hi), i, ctx);
  }
}

TEST(RqRmi, ExhaustiveSixteenBitDomain) {
  // Port-sized domain: check EVERY representable key.
  const IntervalSet s = make_intervals(200, 0xFFFF, 42);
  RqRmiConfig cfg = default_config(s.intervals.size());
  cfg.seed = 42;
  RqRmi model;
  model.build(s.intervals, cfg);
  size_t idx = 0;
  for (uint64_t key = 0; key <= 0xFFFF; ++key) {
    while (idx < s.raw.size() && s.raw[idx].second < key) ++idx;
    if (idx >= s.raw.size()) break;
    if (key < s.raw[idx].first) continue;  // gap: no guarantee required
    expect_key_found(model, s, key, idx, "exhaustive16");
  }
}

struct RqRmiCase {
  size_t n;
  uint64_t domain;
  uint64_t seed;
  bool clustered;
};

class RqRmiProperty : public ::testing::TestWithParam<RqRmiCase> {};

TEST_P(RqRmiProperty, EveryRangeKeyWithinSearchWindow) {
  const auto& c = GetParam();
  const IntervalSet s = make_intervals(c.n, c.domain, c.seed, c.clustered);
  ASSERT_FALSE(s.intervals.empty());
  RqRmiConfig cfg = default_config(s.intervals.size());
  cfg.seed = c.seed;
  RqRmi model;
  model.build(s.intervals, cfg);
  check_all_boundaries(model, s, "property");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RqRmiProperty,
    ::testing::Values(
        RqRmiCase{16, 0xFFFFFFFFull, 1, false}, RqRmiCase{16, 0xFFFFFFFFull, 2, true},
        RqRmiCase{256, 0xFFFFFFFFull, 3, false}, RqRmiCase{256, 0xFFFFFFFFull, 4, true},
        RqRmiCase{2000, 0xFFFFFFFFull, 5, false}, RqRmiCase{2000, 0xFFFFFFFFull, 6, true},
        RqRmiCase{12000, 0xFFFFFFFFull, 7, false}, RqRmiCase{12000, 0xFFFFFFFFull, 8, true},
        RqRmiCase{500, 0xFFFFull, 9, false}, RqRmiCase{100, 0xFFull, 10, false},
        RqRmiCase{3000, 0xFFFFFFFFull, 11, true}, RqRmiCase{1, 0xFFFFFFFFull, 12, false},
        RqRmiCase{2, 0xFFFFFFFFull, 13, false}, RqRmiCase{7, 0xFFFFull, 14, false}));

TEST(RqRmi, SimdKernelsAgreeOnPredictions) {
  const IntervalSet s = make_intervals(1500, 0xFFFFFFFFull, 77);
  RqRmi model;
  model.build(s.intervals, default_config(s.intervals.size()));
  Rng rng{7};
  for (int i = 0; i < 5000; ++i) {
    const float key = static_cast<float>(rng.next_double());
    const Prediction serial = model.lookup(key, SimdLevel::kSerial);
    const Prediction best = model.lookup(key);
    // Different summation orders may shift the prediction by a few slots;
    // both must stay within each other's certified windows.
    const auto diff = static_cast<int64_t>(serial.index) - static_cast<int64_t>(best.index);
    EXPECT_LE(std::llabs(diff),
              static_cast<int64_t>(serial.search_error + best.search_error));
  }
}

TEST(RqRmi, EmptyInputYieldsTrivialModel) {
  RqRmi model;
  model.build({}, default_config(0));
  EXPECT_FALSE(model.trained());
  const Prediction p = model.lookup(0.5f);
  EXPECT_EQ(p.index, 0u);
  EXPECT_EQ(p.search_error, 0u);
}

TEST(RqRmi, RejectsMalformedIntervals) {
  RqRmiConfig cfg;
  RqRmi model;
  // Wrong index.
  EXPECT_THROW(model.build({KeyInterval{0.0, 0.5, 1}}, cfg), std::invalid_argument);
  // Empty interval.
  EXPECT_THROW(model.build({KeyInterval{0.5, 0.5, 0}}, cfg), std::invalid_argument);
  // Overlap.
  EXPECT_THROW(model.build({KeyInterval{0.0, 0.6, 0}, KeyInterval{0.5, 0.9, 1}}, cfg),
               std::invalid_argument);
  // Bad widths.
  cfg.stage_widths = {4};
  EXPECT_THROW(model.build({KeyInterval{0.0, 0.5, 0}}, cfg), std::invalid_argument);
}

TEST(RqRmi, MemoryFootprintMatchesPaperScale) {
  // Paper §1: 500K rules indexed in ~tens of KB. A [1,8,512] model is
  // 521 submodels * 100B ~ 52KB; ensure our accounting is in that ballpark
  // and independent of the number of indexed intervals.
  const IntervalSet s = make_intervals(20000, 0xFFFFFFFFull, 5);
  RqRmiConfig cfg;
  cfg.stage_widths = {1, 8, 512};
  RqRmi model;
  model.build(s.intervals, cfg);
  EXPECT_GT(model.memory_bytes(), 40'000u);
  EXPECT_LT(model.memory_bytes(), 80'000u);
  EXPECT_EQ(model.num_submodels(), 1u + 8u + 512u);
}

TEST(RqRmi, DefaultConfigFollowsPaperTable4) {
  EXPECT_EQ(default_config(500).stage_widths, (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(default_config(5'000).stage_widths, (std::vector<uint32_t>{1, 4, 16}));
  EXPECT_EQ(default_config(50'000).stage_widths, (std::vector<uint32_t>{1, 4, 128}));
  EXPECT_EQ(default_config(200'000).stage_widths, (std::vector<uint32_t>{1, 8, 256}));
  EXPECT_EQ(default_config(500'000).stage_widths, (std::vector<uint32_t>{1, 8, 512}));
}

TEST(RqRmi, LeafResponsibilitiesCoverIndexedDomain) {
  const IntervalSet s = make_intervals(800, 0xFFFFFFFFull, 21);
  RqRmiConfig cfg = default_config(s.intervals.size());
  RqRmi model;
  model.build(s.intervals, cfg);
  // Union of leaf responsibilities must cover every indexed interval.
  const auto& resp = model.leaf_responsibilities();
  for (const auto& iv : s.intervals) {
    for (double x : {iv.lo, (iv.lo + iv.hi) / 2}) {
      bool covered = false;
      for (const auto& leaf : resp) {
        for (const auto& r : leaf) {
          if (x >= r.lo && x < r.hi) {
            covered = true;
            break;
          }
        }
        if (covered) break;
      }
      EXPECT_TRUE(covered) << "x=" << x;
    }
  }
}

TEST(RqRmi, TighterThresholdNeverLoosensAchievedError) {
  const IntervalSet s = make_intervals(4000, 0xFFFFFFFFull, 31);
  RqRmiConfig strict = default_config(s.intervals.size());
  strict.error_threshold = 16;
  strict.max_retrain_attempts = 5;
  RqRmiConfig loose = strict;
  loose.error_threshold = 512;
  loose.max_retrain_attempts = 0;
  RqRmi ms;
  RqRmi ml;
  ms.build(s.intervals, strict);
  ml.build(s.intervals, loose);
  EXPECT_LE(ms.max_search_error(), ml.max_search_error() + 16)
      << "retraining against a tight threshold should not end up far worse";
  EXPECT_GE(ms.training_rounds(), ml.training_rounds());
}

}  // namespace
}  // namespace nuevomatch::rqrmi
