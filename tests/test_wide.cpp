// Long-field (Section 4) machinery: 128-bit value arithmetic, prefix
// construction, the two encodings' key functions, partitioning invariants,
// and end-to-end oracle equivalence of WideClassifier under BOTH encodings —
// the float encoding must stay exact even where its keys collapse.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "wide/wide.hpp"
#include "wide/wide_index.hpp"

namespace nuevomatch::wide {
namespace {

TEST(WideValue, OrderingIsLexicographic) {
  WideValue a, b;
  a.limb = {1, 0, 0, 0};
  b.limb = {0, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu};
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(a > b);
  EXPECT_EQ(a, a);
}

TEST(WideValue, NextCarriesAcrossLimbs) {
  WideValue v;
  v.limb = {0, 0, 0, 0xFFFFFFFFu};
  const WideValue n = v.next();
  EXPECT_EQ(n.limb[2], 1u);
  EXPECT_EQ(n.limb[3], 0u);
  EXPECT_EQ(WideValue::max().next(), WideValue::max()) << "saturates, never wraps";
}

TEST(WideValue, FromU64LandsInLowLimbs) {
  const WideValue v = WideValue::from_u64(0x1122334455667788ull);
  EXPECT_EQ(v.limb[0], 0u);
  EXPECT_EQ(v.limb[1], 0u);
  EXPECT_EQ(v.limb[2], 0x11223344u);
  EXPECT_EQ(v.limb[3], 0x55667788u);
}

TEST(WidePrefix, CoversExactlyTheBlock) {
  WideValue base;
  base.limb = {0x20010db8u, 0x12345678u, 0xAAAAAAAAu, 0x55555555u};
  const WideRange p48 = wide_prefix(base, 48);
  EXPECT_EQ(p48.lo.limb[0], 0x20010db8u);
  EXPECT_EQ(p48.lo.limb[1], 0x12340000u);
  EXPECT_EQ(p48.lo.limb[2], 0u);
  EXPECT_EQ(p48.hi.limb[1], 0x1234FFFFu);
  EXPECT_EQ(p48.hi.limb[3], 0xFFFFFFFFu);
  EXPECT_TRUE(p48.contains(base));
  const WideRange p0 = wide_prefix(base, 0);
  EXPECT_EQ(p0, WideRange::full());
  const WideRange p128 = wide_prefix(base, 128);
  EXPECT_TRUE(p128.is_exact());
  EXPECT_EQ(p128.lo, base);
}

TEST(SubfieldRange, InformativeOnlyBelowExactLimbs) {
  WideRule r;
  r.field.resize(1);
  WideValue base;
  base.limb = {0xAABBCCDDu, 0x11220000u, 0, 0};
  r.field[0] = wide_prefix(base, 48);  // limb0 exact, limb1 = [0x11220000, 0x1122FFFF]
  EXPECT_EQ(subfield_range(r, 0, 0), (Range{0xAABBCCDDu, 0xAABBCCDDu}));
  EXPECT_EQ(subfield_range(r, 0, 1), (Range{0x11220000u, 0x1122FFFFu}));
  // limb1 ranges, so limbs 2..3 carry no usable constraint.
  EXPECT_EQ(subfield_range(r, 0, 2), (Range{0u, 0xFFFFFFFFu}));
  EXPECT_EQ(subfield_range(r, 0, 3), (Range{0u, 0xFFFFFFFFu}));
}

TEST(NormalizeWide, MonotoneAndUnitRange) {
  Rng rng{3};
  double prev = -1.0;
  WideValue v;
  for (int i = 0; i < 1000; ++i) {
    // Ascending random values: bump a random limb.
    v.limb[static_cast<size_t>(rng.below(2)) + 2] += rng.next_u32() >> 8;
    v.limb[0] += static_cast<uint32_t>(i);
    const double k = normalize_wide(v);
    EXPECT_GE(k, 0.0);
    EXPECT_LT(k, 1.0);
    EXPECT_GE(k, prev) << "must be monotone non-decreasing";
    prev = k;
  }
  EXPECT_DOUBLE_EQ(normalize_wide(WideValue{}), 0.0);
}

TEST(NormalizeWide, CollapsesBeyondMantissa) {
  // Two values differing only in the last limb of a shared high prefix
  // collapse — this is the IPv6 failure mode of Section 4.
  WideValue a, b;
  a.limb = {0x20010db8u, 0x00010000u, 0, 1};
  b.limb = {0x20010db8u, 0x00010000u, 0, 2};
  EXPECT_EQ(normalize_wide(a), normalize_wide(b));
  // ...while 48-bit MACs (low limbs, high limbs zero) stay distinct.
  const WideValue m1 = WideValue::from_u64(0x0000AABBCCDD0001ull);
  const WideValue m2 = WideValue::from_u64(0x0000AABBCCDD0002ull);
  EXPECT_NE(normalize_wide(m1), normalize_wide(m2));
}

// --- partitioning ------------------------------------------------------------

void check_partition_invariants(const WideRuleSet& rules, const WidePartition& part,
                                Encoding enc) {
  std::multiset<uint32_t> seen;
  for (const auto& is : part.isets)
    for (const auto& r : is.rules) seen.insert(r.id);
  for (const auto& r : part.remainder) seen.insert(r.id);
  ASSERT_EQ(seen.size(), rules.size());
  for (const auto& r : rules) EXPECT_EQ(seen.count(r.id), 1u);
  // Disjointness in each iSet's own key space.
  for (const auto& is : part.isets) {
    for (size_t i = 1; i < is.rules.size(); ++i) {
      if (enc == Encoding::kSplit) {
        const Range a = subfield_range(is.rules[i - 1], is.field, is.limb);
        const Range b = subfield_range(is.rules[i], is.field, is.limb);
        EXPECT_LT(a.hi, b.lo);
      }
    }
  }
}

TEST(WidePartition, InvariantsHoldOnBothWorkloadsAndEncodings) {
  for (auto enc : {Encoding::kSplit, Encoding::kFloat}) {
    for (bool mac : {true, false}) {
      const WideRuleSet rules =
          mac ? generate_mac_rules(3000, 5) : generate_ipv6_rules(3000, 5);
      WidePartitionConfig cfg;
      cfg.encoding = enc;
      const WidePartition part = partition_wide(rules, cfg);
      check_partition_invariants(rules, part, enc);
    }
  }
}

TEST(WidePartition, SplitBeatsFloatOnIpv6) {
  // Paper Section 4: "with IPv6, splitting into multiple fields worked
  // better" — the float keys collapse under the shared /32, so one iSet can
  // hold at most one rule per distinct double.
  const WideRuleSet rules = generate_ipv6_rules(5000, 9);
  WidePartitionConfig split_cfg, float_cfg;
  split_cfg.encoding = Encoding::kSplit;
  float_cfg.encoding = Encoding::kFloat;
  const double split_cov = partition_wide(rules, split_cfg).coverage();
  const double float_cov = partition_wide(rules, float_cfg).coverage();
  EXPECT_GT(split_cov, float_cov + 0.10)
      << "split=" << split_cov << " float=" << float_cov;
  EXPECT_GT(split_cov, 0.5);
}

TEST(WidePartition, EncodingsComparableOnMac) {
  // "The two showed similar results for iSet partitioning with MAC
  // addresses" — 48-bit keys fit the double mantissa exactly.
  const WideRuleSet rules = generate_mac_rules(5000, 9);
  WidePartitionConfig split_cfg, float_cfg;
  split_cfg.encoding = Encoding::kSplit;
  float_cfg.encoding = Encoding::kFloat;
  const double split_cov = partition_wide(rules, split_cfg).coverage();
  const double float_cov = partition_wide(rules, float_cfg).coverage();
  EXPECT_NEAR(split_cov, float_cov, 0.05);
  EXPECT_GT(float_cov, 0.8);
}

// --- end-to-end oracle equivalence -------------------------------------------

struct WideCase {
  bool mac;
  Encoding enc;
  size_t n;
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const WideCase& c) {
    return os << (c.mac ? "mac" : "ipv6") << "_" << to_string(c.enc) << "_n" << c.n
              << "_s" << c.seed;
  }
};

class WideOracle : public ::testing::TestWithParam<WideCase> {};

TEST_P(WideOracle, ClassifierMatchesLinearSearch) {
  const auto& c = GetParam();
  const WideRuleSet rules =
      c.mac ? generate_mac_rules(c.n, c.seed) : generate_ipv6_rules(c.n, c.seed);
  WideClassifier::Config cfg;
  cfg.encoding = c.enc;
  cfg.seed = c.seed;
  WideClassifier cls;
  cls.build(rules, cfg);
  WideLinearSearch oracle;
  oracle.build(rules);
  const auto trace = generate_wide_trace(rules, 5000, c.seed ^ 0xBEE);
  for (const WidePacket& p : trace) {
    const auto got = cls.match(p);
    const auto want = oracle.match(p);
    ASSERT_EQ(got.rule_id, want.rule_id);
    ASSERT_EQ(got.priority, want.priority);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WideOracle,
    ::testing::Values(WideCase{true, Encoding::kSplit, 2000, 1},
                      WideCase{true, Encoding::kFloat, 2000, 2},
                      WideCase{false, Encoding::kSplit, 2000, 3},
                      WideCase{false, Encoding::kFloat, 2000, 4},
                      WideCase{true, Encoding::kFloat, 8000, 5},
                      WideCase{false, Encoding::kSplit, 8000, 6},
                      WideCase{false, Encoding::kFloat, 8000, 7}));

TEST(WideClassifier, EmptyRuleSet) {
  WideClassifier cls;
  cls.build({}, WideClassifier::Config{});
  EXPECT_FALSE(cls.match(WidePacket{WideValue{}}).hit());
  EXPECT_DOUBLE_EQ(cls.coverage(), 0.0);
}

}  // namespace
}  // namespace nuevomatch::wide
