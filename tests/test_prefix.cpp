#include <gtest/gtest.h>

#include "common/prefix.hpp"

namespace nuevomatch {
namespace {

TEST(Prefix, ZeroLengthIsWildcard) {
  const Range r = prefix_to_range(0xDEADBEEF, 0);
  EXPECT_EQ(r.lo, 0u);
  EXPECT_EQ(r.hi, 0xFFFFFFFFu);
}

TEST(Prefix, FullLengthIsExact) {
  const Range r = prefix_to_range(0xDEADBEEF, 32);
  EXPECT_EQ(r.lo, 0xDEADBEEFu);
  EXPECT_EQ(r.hi, 0xDEADBEEFu);
}

TEST(Prefix, Slash24Block) {
  const Range r = prefix_to_range(0x0A0A0A63, 24);  // 10.10.10.99/24
  EXPECT_EQ(r.lo, 0x0A0A0A00u);
  EXPECT_EQ(r.hi, 0x0A0A0AFFu);
}

class PrefixRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrefixRoundTrip, RangeToPrefixInvertsPrefixToRange) {
  const int len = GetParam();
  const uint32_t addr = 0xC0A80102u;  // 192.168.1.2
  const Range r = prefix_to_range(addr, len);
  const auto back = range_to_prefix_len(r);
  ASSERT_TRUE(back.has_value()) << "len=" << len;
  EXPECT_EQ(*back, len);
  EXPECT_EQ(r.span(), uint64_t{1} << (32 - len));
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixRoundTrip, ::testing::Range(0, 33));

TEST(Prefix, NonPrefixRangeHasNoLength) {
  EXPECT_FALSE(range_to_prefix_len(Range{1, 3}).has_value());   // misaligned
  EXPECT_FALSE(range_to_prefix_len(Range{0, 2}).has_value());   // size not 2^k
  EXPECT_TRUE(range_to_prefix_len(Range{0, 3}).has_value());
  EXPECT_FALSE(range_to_prefix_len(Range{2, 5}).has_value());
}

TEST(Prefix, CoveringPrefixLen) {
  EXPECT_EQ(covering_prefix_len(Range{5, 5}), 32);
  EXPECT_EQ(covering_prefix_len(Range{0x0A000000, 0x0AFFFFFF}), 8);
  // Range crossing a /8 boundary must be covered by something shorter.
  EXPECT_LT(covering_prefix_len(Range{0x0AFFFFFF, 0x0B000000}), 8);
}

TEST(Prefix, ParseIpv4Valid) {
  EXPECT_EQ(parse_ipv4("10.10.3.100"), 0x0A0A0364u);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xFFFFFFFFu);
}

TEST(Prefix, ParseIpv4Invalid) {
  EXPECT_FALSE(parse_ipv4("10.10.3").has_value());
  EXPECT_FALSE(parse_ipv4("10.10.3.256").has_value());
  EXPECT_FALSE(parse_ipv4("10.10.3.1.2").has_value());
  EXPECT_FALSE(parse_ipv4("a.b.c.d").has_value());
  EXPECT_FALSE(parse_ipv4("").has_value());
}

TEST(Prefix, FormatRoundTrips) {
  for (uint32_t a : {0u, 0x0A0A0364u, 0xFFFFFFFFu, 0x01020304u}) {
    EXPECT_EQ(parse_ipv4(format_ipv4(a)), a);
  }
}

TEST(Prefix, CommonPrefixBits) {
  EXPECT_EQ(common_prefix_bits(0, 0), 32);
  EXPECT_EQ(common_prefix_bits(0, 0x80000000u), 0);
  EXPECT_EQ(common_prefix_bits(0x0A0A0A00u, 0x0A0A0AFFu), 24);
}

}  // namespace
}  // namespace nuevomatch
