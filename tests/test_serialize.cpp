// Serialization round-trips and failure injection. The invariants: a loaded
// model answers every query exactly as the saved one did; any corrupted,
// truncated, or mislabeled buffer loads as std::nullopt — never as a
// classifier that answers queries.
#include <gtest/gtest.h>

#include <cstdio>

#include "classbench/generator.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "serialize/bytes.hpp"
#include "serialize/serialize.hpp"
#include "trace/trace.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch::serialize {
namespace {

rqrmi::RqRmi trained_model(size_t n, uint64_t seed) {
  Rng rng{seed};
  std::vector<rqrmi::KeyInterval> ivs;
  double at = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double len = (0.2 + 0.8 * rng.next_double()) / static_cast<double>(2 * n);
    const double gap = 0.5 / static_cast<double>(2 * n);
    ivs.push_back(rqrmi::KeyInterval{at, at + len, static_cast<uint32_t>(i)});
    at += len + gap;
  }
  rqrmi::RqRmi model;
  rqrmi::RqRmiConfig cfg;
  cfg.stage_widths = n > 500 ? std::vector<uint32_t>{1, 4, 16} : std::vector<uint32_t>{1, 4};
  cfg.seed = seed;
  model.build(std::move(ivs), cfg);
  return model;
}

TEST(SerializeBytes, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(SerializeBytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u32(0xDEADBEEFu);
  w.put_i32(-42);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_f32(1.5f);
  w.put_f64(-2.25);
  const auto bytes = std::move(w).finish();

  ByteReader r{bytes};
  ASSERT_TRUE(r.check_crc());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_f32(), 1.5f);
  EXPECT_EQ(r.get_f64(), -2.25);
  EXPECT_TRUE(r.at_end());
}

TEST(SerializeBytes, ReaderFailsSoftOnTruncation) {
  ByteWriter w;
  w.put_u32(1);
  const auto bytes = std::move(w).finish();
  ByteReader r{std::span<const uint8_t>(bytes).subspan(0, 2)};
  EXPECT_FALSE(r.check_crc());
  EXPECT_EQ(r.get_u32(), 0u);  // all reads after failure return zero
  EXPECT_FALSE(r.ok());
}

struct ModelCase {
  size_t n;
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const ModelCase& c) {
    return os << "n" << c.n << "_s" << c.seed;
  }
};

class ModelRoundTrip : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ModelRoundTrip, LoadedModelPredictsIdentically) {
  const auto& c = GetParam();
  const rqrmi::RqRmi original = trained_model(c.n, c.seed);
  const auto bytes = save_model(original);
  const auto loaded = load_model(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_intervals(), original.num_intervals());
  EXPECT_EQ(loaded->memory_bytes(), original.memory_bytes());
  EXPECT_EQ(loaded->max_search_error(), original.max_search_error());
  Rng rng{c.seed ^ 0xF00D};
  for (int i = 0; i < 2000; ++i) {
    const auto key = static_cast<float>(rng.next_double());
    const auto a = original.lookup(key);
    const auto b = loaded->lookup(key);
    ASSERT_EQ(a.index, b.index) << "key=" << key;
    ASSERT_EQ(a.search_error, b.search_error) << "key=" << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModelRoundTrip,
                         ::testing::Values(ModelCase{1, 1}, ModelCase{10, 2},
                                           ModelCase{300, 3}, ModelCase{2000, 4}));

TEST(ModelSerialize, EmptyModelRoundTrips) {
  rqrmi::RqRmi empty;
  const auto bytes = save_model(empty);
  const auto loaded = load_model(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->trained());
}

TEST(RulesSerialize, RoundTripPreservesEveryField) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 2, 500, 5);
  const auto bytes = save_rules(rules);
  const auto loaded = load_rules(bytes);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    for (int f = 0; f < kNumFields; ++f)
      EXPECT_EQ((*loaded)[i].field[static_cast<size_t>(f)], rules[i].field[static_cast<size_t>(f)]);
    EXPECT_EQ((*loaded)[i].priority, rules[i].priority);
    EXPECT_EQ((*loaded)[i].id, rules[i].id);
    EXPECT_EQ((*loaded)[i].action, rules[i].action);
  }
}

NuevoMatchConfig tm_config() {
  NuevoMatchConfig cfg;
  cfg.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.min_iset_coverage = 0.05;
  return cfg;
}

TEST(ClassifierSerialize, RoundTripMatchesOnFullTrace) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 4000, 6);
  NuevoMatch nm{tm_config()};
  nm.build(rules);
  ASSERT_GT(nm.coverage(), 0.0);

  const auto bytes = save_classifier(nm);
  auto loaded = load_classifier(bytes, tm_config());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), nm.size());
  EXPECT_DOUBLE_EQ(loaded->coverage(), nm.coverage());
  EXPECT_EQ(loaded->max_search_error(), nm.max_search_error());

  TraceConfig tc;
  tc.n_packets = 20'000;
  tc.seed = 77;
  for (const Packet& p : generate_trace(rules, tc)) {
    const auto a = nm.match(p);
    const auto b = loaded->match(p);
    ASSERT_EQ(a.rule_id, b.rule_id);
    ASSERT_EQ(a.priority, b.priority);
  }
}

TEST(ClassifierSerialize, LoadedClassifierStillAcceptsUpdates) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 2000, 7);
  NuevoMatch nm{tm_config()};
  nm.build(rules);
  auto loaded = load_classifier(save_classifier(nm), tm_config());
  ASSERT_TRUE(loaded.has_value());
  Rule extra;
  extra.field[kDstIp] = Range{42, 42};
  for (int f : {kSrcIp, kSrcPort, kDstPort, kProto})
    extra.field[static_cast<size_t>(f)] = full_range(f);
  extra.id = static_cast<uint32_t>(rules.size());
  extra.priority = -1;  // beats everything
  ASSERT_TRUE(loaded->insert(extra));
  Packet p;
  p.field[kDstIp] = 42;
  EXPECT_EQ(loaded->match(p).rule_id, static_cast<int32_t>(extra.id));
}

// --- failure injection -------------------------------------------------------

class CorruptionSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CorruptionSweep, BitFlipNeverLoads) {
  const rqrmi::RqRmi model = trained_model(100, 11);
  auto bytes = save_model(model);
  const size_t stride = GetParam();
  for (size_t pos = 0; pos < bytes.size(); pos += stride) {
    auto bad = bytes;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(load_model(bad).has_value()) << "flip at " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, CorruptionSweep, ::testing::Values(17, 97));

TEST(Corruption, TruncationNeverLoads) {
  const rqrmi::RqRmi model = trained_model(64, 12);
  const auto bytes = save_model(model);
  for (size_t keep = 0; keep < bytes.size(); keep += 13)
    EXPECT_FALSE(load_model(std::span<const uint8_t>(bytes).subspan(0, keep)).has_value());
}

TEST(Corruption, WrongMagicRejected) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 100, 13);
  const auto rule_bytes = save_rules(rules);
  EXPECT_FALSE(load_model(rule_bytes).has_value());

  NuevoMatch nm{tm_config()};
  nm.build(rules);
  EXPECT_FALSE(load_rules(save_classifier(nm)).has_value());
}

TEST(Corruption, TrailingGarbageRejected) {
  const auto bytes = save_rules(generate_classbench(AppClass::kAcl, 3, 50, 14));
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(load_rules(padded).has_value());
}

// --- corrupt-input fuzz sweeps ----------------------------------------------
// Exhaustive, not sampled: EVERY truncated prefix and EVERY single-bit flip
// of a valid blob must come back nullopt/nullptr — never a crash, never a
// classifier built from garbage. Inputs are kept small: each prefix/flip
// pays an O(n) CRC pass, so the sweeps are O(n^2).

OnlineConfig online_cfg() {
  OnlineConfig cfg;
  cfg.base = tm_config();
  cfg.auto_retrain = false;
  return cfg;
}

std::vector<uint8_t> small_online_blob() {
  OnlineNuevoMatch online{online_cfg()};
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 60, 21);
  online.build(rules);
  return save_online(online);
}

/// Rewrite the CRC-32 trailer so a corrupted body passes check_crc() — the
/// only way to drive the structural validation behind the checksum.
void refresh_crc(std::vector<uint8_t>& b) {
  ASSERT_GE(b.size(), 4u);
  const uint32_t c = crc32(std::span<const uint8_t>(b).first(b.size() - 4));
  for (size_t i = 0; i < 4; ++i)
    b[b.size() - 4 + i] = static_cast<uint8_t>(c >> (8 * i));
}

TEST(CorruptionFuzz, ModelEveryTruncatedPrefixRejected) {
  const auto bytes = save_model(trained_model(24, 41));
  const std::span<const uint8_t> all{bytes};
  for (size_t keep = 0; keep < bytes.size(); ++keep)
    ASSERT_FALSE(load_model(all.subspan(0, keep)).has_value()) << "keep " << keep;
}

TEST(CorruptionFuzz, OnlineEveryTruncatedPrefixRejected) {
  const auto bytes = small_online_blob();
  const std::span<const uint8_t> all{bytes};
  for (size_t keep = 0; keep < bytes.size(); ++keep)
    ASSERT_EQ(load_online(all.subspan(0, keep), online_cfg()), nullptr)
        << "keep " << keep;
}

TEST(CorruptionFuzz, ModelEveryBitFlipRejected) {
  const auto bytes = save_model(trained_model(24, 42));
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = bytes;
      bad[pos] ^= static_cast<uint8_t>(1u << bit);
      // A body flip breaks the CRC; a trailer flip breaks it from the other
      // side. Either way: no model.
      ASSERT_FALSE(load_model(bad).has_value()) << "pos " << pos << " bit " << bit;
    }
  }
}

TEST(CorruptionFuzz, OnlineEveryBitFlipRejected) {
  const auto bytes = small_online_blob();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = bytes;
      bad[pos] ^= static_cast<uint8_t>(1u << bit);
      ASSERT_EQ(load_online(bad, online_cfg()), nullptr)
          << "pos " << pos << " bit " << bit;
    }
  }
}

TEST(CorruptionFuzz, ModelBitFlipBehindValidCrcNeverCrashes) {
  // With the checksum healed, the flip reaches the structural checks. A
  // payload flip (a weight, an error bound) may legitimately load — the
  // contract is: reject OR return a well-formed model, never crash or
  // allocate absurdly on a poisoned length field.
  const auto bytes = save_model(trained_model(24, 43));
  for (size_t pos = 0; pos + 4 < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = bytes;
      bad[pos] ^= static_cast<uint8_t>(1u << bit);
      refresh_crc(bad);
      const auto m = load_model(bad);
      if (m.has_value()) {
        (void)m->lookup(0.5f);
        (void)m->num_intervals();
      }
    }
  }
}

TEST(CorruptionFuzz, OnlineBitFlipBehindValidCrcNeverCrashes) {
  // Same contract for the NMOL frame. Each successful load constructs a
  // full engine (worker thread included), so sweep one rotating bit per
  // third byte instead of all eight per byte — every region of the frame is
  // still hit.
  const auto bytes = small_online_blob();
  Packet probe{};
  for (size_t pos = 0; pos + 4 < bytes.size(); pos += 3) {
    auto bad = bytes;
    bad[pos] ^= static_cast<uint8_t>(1u << ((pos * 5 + 3) % 8));
    refresh_crc(bad);
    const auto engine = load_online(bad, online_cfg());
    if (engine != nullptr) {
      (void)engine->match(probe);
      (void)engine->size();
    }
  }
}

TEST(SerializeFailpoint, LoadFailpointFailsEveryLoader) {
  const auto model_bytes = save_model(trained_model(16, 44));
  const auto rule_bytes = save_rules(generate_classbench(AppClass::kIpc, 1, 40, 45));
  NuevoMatch nm{tm_config()};
  nm.build(generate_classbench(AppClass::kAcl, 1, 60, 46));
  const auto cls_bytes = save_classifier(nm);
  const auto online_bytes = small_online_blob();
  {
    failpoint::Scoped arm{failpoint::kSerializeLoad,
                          failpoint::Trigger::always()};
    EXPECT_FALSE(load_model(model_bytes).has_value());
    EXPECT_FALSE(load_rules(rule_bytes).has_value());
    EXPECT_FALSE(load_classifier(cls_bytes, tm_config()).has_value());
    EXPECT_EQ(load_online(online_bytes, online_cfg()), nullptr);
  }
  // Disarmed, the same bytes load fine: the failpoint is injection, not
  // state corruption.
  EXPECT_TRUE(load_model(model_bytes).has_value());
  EXPECT_TRUE(load_rules(rule_bytes).has_value());
  EXPECT_TRUE(load_classifier(cls_bytes, tm_config()).has_value());
  EXPECT_NE(load_online(online_bytes, online_cfg()), nullptr);
}

TEST(Files, WriteReadRoundTrip) {
  const auto bytes = save_rules(generate_classbench(AppClass::kAcl, 1, 64, 15));
  const std::string path = ::testing::TempDir() + "/nm_serialize_test.bin";
  ASSERT_TRUE(write_file(path, bytes));
  const auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
  std::remove(path.c_str());
  EXPECT_FALSE(read_file(path + ".does-not-exist").has_value());
}

}  // namespace
}  // namespace nuevomatch::serialize
