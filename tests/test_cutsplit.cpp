#include <gtest/gtest.h>

#include "classbench/generator.hpp"
#include "cutsplit/cutsplit.hpp"
#include "oracle_check.hpp"

namespace nuevomatch {
namespace {

using testing_support::expect_floor_consistency;
using testing_support::expect_matches_oracle;

struct CsCase {
  AppClass app;
  int variant;
  size_t n;
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const CsCase& c) {
    return os << ruleset_name(c.app, c.variant) << "_n" << c.n << "_s" << c.seed;
  }
};

class CutSplitOracle : public ::testing::TestWithParam<CsCase> {};

TEST_P(CutSplitOracle, MatchesLinearSearch) {
  const auto& c = GetParam();
  const RuleSet rules = generate_classbench(c.app, c.variant, c.n, c.seed);
  CutSplit cs;
  cs.build(rules);
  expect_matches_oracle(cs, rules);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CutSplitOracle,
                         ::testing::Values(CsCase{AppClass::kAcl, 1, 1000, 1},
                                           CsCase{AppClass::kAcl, 4, 3000, 2},
                                           CsCase{AppClass::kFw, 2, 1500, 3},
                                           CsCase{AppClass::kFw, 5, 3000, 4},
                                           CsCase{AppClass::kIpc, 1, 2500, 5},
                                           CsCase{AppClass::kIpc, 2, 600, 6}));

TEST(CutSplit, FloorConsistency) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 2, 1200, 7);
  CutSplit cs;
  cs.build(rules);
  expect_floor_consistency(cs, rules);
}

TEST(CutSplit, PartitionBySmallFieldsIsExhaustive) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 2000, 8);
  const auto groups = partition_by_small_fields(rules, 16);
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, rules.size());
  // Group membership must reflect the predicate.
  const uint64_t limit = uint64_t{1} << 16;
  for (const Rule& r : groups[0]) {
    EXPECT_GT(r.field[kSrcIp].span(), limit);
    EXPECT_GT(r.field[kDstIp].span(), limit);
  }
  for (const Rule& r : groups[3]) {
    EXPECT_LE(r.field[kSrcIp].span(), limit);
    EXPECT_LE(r.field[kDstIp].span(), limit);
  }
}

TEST(CutTree, RespectsBinthInLeaves) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 3000, 9);
  CutTreeConfig cfg;
  cfg.binth = 8;
  CutTree tree;
  tree.build(rules, cfg);
  const auto s = tree.stats();
  // Leaves may exceed binth only when refinement stalls; on ACL-style rules
  // the bulk must respect it.
  EXPECT_LE(s.max_leaf_rules, 512u);
  EXPECT_GT(s.leaves, rules.size() / 64);
}

TEST(CutTree, ReplicationIsBounded) {
  // max_replication bounds the per-node estimate; multiplied across levels
  // the total ref count can still grow, but must stay far from the
  // exponential blow-up HiCuts suffers (paper §2.1).
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 2000, 10);
  CutTreeConfig cfg;
  CutTree tree;
  tree.build(rules, cfg);
  EXPECT_LT(tree.stats().replication, 24.0) << "rule replication explosion";
}

TEST(CutTree, PureCutModeStillCorrect) {
  const RuleSet rules = generate_classbench(AppClass::kIpc, 1, 800, 11);
  CutTreeConfig cfg;
  cfg.enable_split_phase = false;
  CutTree tree;
  tree.build(rules, cfg);
  LinearSearch oracle;
  oracle.build(rules);
  TraceConfig tc;
  tc.n_packets = 2000;
  tc.seed = 12;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(tree.match(p).rule_id, oracle.match(p).rule_id);
}

TEST(CutTree, EmptyAndSingleRule) {
  CutTree empty;
  empty.build({}, CutTreeConfig{});
  EXPECT_FALSE(empty.match(Packet{}).hit());

  RuleSet one(1);
  for (int f = 0; f < kNumFields; ++f) one[0].field[static_cast<size_t>(f)] = full_range(f);
  canonicalize(one);
  CutTree single;
  single.build(one, CutTreeConfig{});
  EXPECT_EQ(single.match(Packet{}).rule_id, 0);
}

TEST(CutSplit, MemoryAccountedAndUpdateSupport) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 1000, 13);
  CutSplit cs;
  cs.build(rules);
  EXPECT_GT(cs.memory_bytes(), 0u);
  EXPECT_TRUE(cs.supports_updates());
  EXPECT_EQ(cs.name(), "cutsplit");
  EXPECT_EQ(cs.size(), rules.size());
}

TEST(CutSplit, InsertLandsInOverflowEraseTombstonesTree) {
  // §3.9 on the decision-tree backend: inserts go to the overflow list
  // (probed after the trees), deletions tombstone inside the owning tree.
  const RuleSet rules = generate_classbench(AppClass::kFw, 1, 800, 17);
  CutSplit cs;
  cs.build(rules);

  Rule extra = rules[3];
  extra.id = 50'000;
  extra.priority = -1;  // on top of everything
  ASSERT_TRUE(cs.insert(extra));
  EXPECT_EQ(cs.overflow_size(), 1u);
  ASSERT_TRUE(cs.erase(7));
  EXPECT_FALSE(cs.erase(7)) << "double-erase must fail";
  EXPECT_EQ(cs.size(), rules.size());  // +1 insert, -1 erase

  RuleSet expected;  // the logical post-update rule-set, for a fresh oracle
  for (const Rule& r : rules)
    if (r.id != 7) expected.push_back(r);
  expected.push_back(extra);
  expect_matches_oracle(cs, expected);
}

TEST(CutSplit, OverflowTiesBreakBySmallerIdLikeTheOracle) {
  // Two equal-priority overflow rules matching the same packet: the
  // (priority, id) order of types.hpp must pick the smaller id, exactly as
  // LinearSearch does — insertion order must not matter.
  RuleSet rules = generate_classbench(AppClass::kAcl, 1, 200, 19);
  CutSplit cs;
  cs.build(rules);
  Packet p;
  for (int f = 0; f < kNumFields; ++f) p.field[static_cast<size_t>(f)] = 2u;
  Rule a, b;
  for (int f = 0; f < kNumFields; ++f) {
    a.field[static_cast<size_t>(f)] = Range{2, 2};
    b.field[static_cast<size_t>(f)] = Range{2, 2};
  }
  a.id = 9'200;
  b.id = 9'100;  // smaller id, inserted second
  a.priority = b.priority = -5;
  ASSERT_TRUE(cs.insert(a));
  ASSERT_TRUE(cs.insert(b));
  EXPECT_EQ(cs.match(p).rule_id, 9'100);
}

}  // namespace
}  // namespace nuevomatch
