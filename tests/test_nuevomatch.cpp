// NuevoMatch end-to-end equivalence with the oracle across application
// classes, rule-set sizes, remainder backends and configurations — the
// repo's most important integration property.
#include <gtest/gtest.h>

#include <memory>

#include "classbench/generator.hpp"
#include "classbench/stanford.hpp"
#include "cutsplit/cutsplit.hpp"
#include "neurocuts/neurocuts.hpp"
#include "nuevomatch/nuevomatch.hpp"
#include "oracle_check.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
namespace {

using testing_support::expect_floor_consistency;
using testing_support::expect_matches_oracle;

NuevoMatchConfig base_config(ClassifierFactory remainder) {
  NuevoMatchConfig cfg;
  cfg.remainder_factory = std::move(remainder);
  cfg.min_iset_coverage = 0.05;
  return cfg;
}

struct NmCase {
  AppClass app;
  int variant;
  size_t n;
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const NmCase& c) {
    return os << ruleset_name(c.app, c.variant) << "_n" << c.n << "_s" << c.seed;
  }
};

class NuevoMatchOracle : public ::testing::TestWithParam<NmCase> {};

TEST_P(NuevoMatchOracle, WithTupleMergeRemainder) {
  const auto& c = GetParam();
  const RuleSet rules = generate_classbench(c.app, c.variant, c.n, c.seed);
  NuevoMatch nm{base_config([] { return std::make_unique<TupleMerge>(); })};
  nm.build(rules);
  expect_matches_oracle(nm, rules);
}

TEST_P(NuevoMatchOracle, WithCutSplitRemainder) {
  const auto& c = GetParam();
  const RuleSet rules = generate_classbench(c.app, c.variant, c.n, c.seed);
  NuevoMatch nm{base_config([] { return std::make_unique<CutSplit>(); })};
  nm.build(rules);
  expect_matches_oracle(nm, rules);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NuevoMatchOracle,
                         ::testing::Values(NmCase{AppClass::kAcl, 1, 1000, 1},
                                           NmCase{AppClass::kAcl, 3, 4000, 2},
                                           NmCase{AppClass::kFw, 1, 1000, 3},
                                           NmCase{AppClass::kFw, 4, 4000, 4},
                                           NmCase{AppClass::kIpc, 1, 2500, 5},
                                           NmCase{AppClass::kIpc, 2, 800, 6},
                                           NmCase{AppClass::kAcl, 5, 8000, 7}));

TEST(NuevoMatch, WithNeuroCutsRemainder) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 2, 2000, 8);
  NuevoMatch nm{base_config([] {
    NeuroCutsConfig nc;
    nc.search_iterations = 4;
    return std::make_unique<NeuroCutsLike>(nc);
  })};
  nm.build(rules);
  expect_matches_oracle(nm, rules);
}

TEST(NuevoMatch, EarlyTerminationDoesNotChangeResults) {
  const RuleSet rules = generate_classbench(AppClass::kFw, 2, 3000, 9);
  NuevoMatchConfig with_et = base_config([] { return std::make_unique<TupleMerge>(); });
  NuevoMatchConfig without_et = with_et;
  without_et.early_termination = false;
  NuevoMatch a{with_et};
  NuevoMatch b{without_et};
  a.build(rules);
  b.build(rules);
  TraceConfig tc;
  tc.n_packets = 4000;
  tc.seed = 10;
  for (const Packet& p : generate_trace(rules, tc))
    ASSERT_EQ(a.match(p).rule_id, b.match(p).rule_id);
}

TEST(NuevoMatch, FloorConsistency) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 4, 2000, 11);
  NuevoMatch nm{base_config([] { return std::make_unique<TupleMerge>(); })};
  nm.build(rules);
  expect_floor_consistency(nm, rules);
}

TEST(NuevoMatch, StanfordSingleFieldDataset) {
  const RuleSet rules = generate_stanford_like(1, 20'000, 12);
  NuevoMatch nm{base_config([] { return std::make_unique<TupleMerge>(); })};
  nm.build(rules);
  expect_matches_oracle(nm, rules, 3000, 13);
  EXPECT_GT(nm.coverage(), 0.4);
}

TEST(NuevoMatch, FallsBackWhenNoIsetQualifies) {
  // Low-diversity Cartesian rules: partitioning should segregate them to the
  // remainder; the classifier must still be exact (paper §5.2 "it promptly
  // identifies the rule-sets expected to be slow and falls back").
  const RuleSet rules = generate_low_diversity(2000, 4, 14);
  NuevoMatchConfig cfg = base_config([] { return std::make_unique<TupleMerge>(); });
  cfg.min_iset_coverage = 0.25;
  NuevoMatch nm{cfg};
  nm.build(rules);
  expect_matches_oracle(nm, rules);
  EXPECT_LT(nm.coverage(), 0.5);
}

TEST(NuevoMatch, CoverageReportingConsistent) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 5000, 15);
  NuevoMatch nm{base_config([] { return std::make_unique<TupleMerge>(); })};
  nm.build(rules);
  size_t covered = 0;
  for (const auto& is : nm.isets()) covered += is.size();
  EXPECT_EQ(covered + nm.remainder_size(), rules.size());
  EXPECT_NEAR(nm.coverage(),
              static_cast<double>(covered) / static_cast<double>(rules.size()), 1e-12);
}

TEST(NuevoMatch, IndexMemoryIsSmallerThanBaseline) {
  // The headline claim (paper Figure 13): the nm index (RQ-RMI + remainder)
  // is much smaller than the baseline indexing the whole rule-set.
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 30'000, 16);
  TupleMerge tm;
  tm.build(rules);
  NuevoMatchConfig cfg = base_config([] { return std::make_unique<TupleMerge>(); });
  NuevoMatch nm{cfg};
  nm.build(rules);
  EXPECT_LT(nm.memory_bytes(), tm.memory_bytes() / 2)
      << "nm=" << nm.memory_bytes() << " tm=" << tm.memory_bytes()
      << " coverage=" << nm.coverage();
}

TEST(NuevoMatch, RequiresRemainderFactory) {
  EXPECT_THROW(NuevoMatch{NuevoMatchConfig{}}, std::invalid_argument);
}

TEST(NuevoMatch, EmptyRuleSet) {
  NuevoMatch nm{base_config([] { return std::make_unique<TupleMerge>(); })};
  nm.build({});
  EXPECT_FALSE(nm.match(Packet{}).hit());
  EXPECT_EQ(nm.size(), 0u);
  EXPECT_DOUBLE_EQ(nm.coverage(), 0.0);
}

TEST(NuevoMatch, NameIncludesRemainder) {
  NuevoMatch nm{base_config([] { return std::make_unique<CutSplit>(); })};
  EXPECT_EQ(nm.name(), "nuevomatch(cutsplit)");
}

TEST(NuevoMatch, MaxSearchErrorWithinConfiguredBallpark) {
  const RuleSet rules = generate_classbench(AppClass::kAcl, 1, 10'000, 17);
  NuevoMatchConfig cfg = base_config([] { return std::make_unique<TupleMerge>(); });
  cfg.error_threshold = 64;
  NuevoMatch nm{cfg};
  nm.build(rules);
  ASSERT_FALSE(nm.isets().empty());
  // Threshold + float slack; the bound is certified, not a target, so allow
  // headroom for non-converged leaves (paper §3.5.6 allows the same).
  EXPECT_LT(nm.max_search_error(), 1024u);
}

}  // namespace
}  // namespace nuevomatch
