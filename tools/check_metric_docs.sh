#!/usr/bin/env bash
# Every nm_* metric series the code emits must appear (backticked) in the
# DESIGN.md "Telemetry" metric table. CI runs this in the docs job; it exits
# nonzero listing any undocumented names.
#
# Extraction rule: any "nm_..." string literal in src/ or examples/ is
# considered a metric name. Test-only names (tests/ uses nm_test_* markers)
# are exempt — tests exercise the registry, they don't define the dataplane's
# metric surface.
set -euo pipefail
cd "$(dirname "$0")/.."

names=$(grep -rhoE '"nm_[a-z0-9_]+"' src/ examples/ | tr -d '"' | sort -u)

missing=0
for n in $names; do
  if ! grep -q "\`$n\`" DESIGN.md; then
    echo "undocumented metric: $n (add it to the DESIGN.md telemetry table)"
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  exit 1
fi
echo "all $(echo "$names" | wc -l) nm_* metric names are documented in DESIGN.md"
