# Empty dependencies file for test_iset_index.
# This may be replaced when dependencies are built.
