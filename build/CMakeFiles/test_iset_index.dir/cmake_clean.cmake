file(REMOVE_RECURSE
  "CMakeFiles/test_iset_index.dir/tests/test_iset_index.cpp.o"
  "CMakeFiles/test_iset_index.dir/tests/test_iset_index.cpp.o.d"
  "test_iset_index"
  "test_iset_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iset_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
