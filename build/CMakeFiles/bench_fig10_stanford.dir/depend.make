# Empty dependencies file for bench_fig10_stanford.
# This may be replaced when dependencies are built.
