file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_stanford.dir/bench/bench_fig10_stanford.cpp.o"
  "CMakeFiles/bench_fig10_stanford.dir/bench/bench_fig10_stanford.cpp.o.d"
  "bench_fig10_stanford"
  "bench_fig10_stanford.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_stanford.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
