file(REMOVE_RECURSE
  "CMakeFiles/test_cutsplit.dir/tests/test_cutsplit.cpp.o"
  "CMakeFiles/test_cutsplit.dir/tests/test_cutsplit.cpp.o.d"
  "test_cutsplit"
  "test_cutsplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cutsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
