# Empty dependencies file for test_cutsplit.
# This may be replaced when dependencies are built.
