# Empty dependencies file for bench_fig17_small_rulesets.
# This may be replaced when dependencies are built.
