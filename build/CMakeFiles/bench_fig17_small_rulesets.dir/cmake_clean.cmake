file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_small_rulesets.dir/bench/bench_fig17_small_rulesets.cpp.o"
  "CMakeFiles/bench_fig17_small_rulesets.dir/bench/bench_fig17_small_rulesets.cpp.o.d"
  "bench_fig17_small_rulesets"
  "bench_fig17_small_rulesets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_small_rulesets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
