# Empty dependencies file for bench_fig13_memory.
# This may be replaced when dependencies are built.
