# Empty dependencies file for test_interval_scheduling.
# This may be replaced when dependencies are built.
