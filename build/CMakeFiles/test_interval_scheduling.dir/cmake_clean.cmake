file(REMOVE_RECURSE
  "CMakeFiles/test_interval_scheduling.dir/tests/test_interval_scheduling.cpp.o"
  "CMakeFiles/test_interval_scheduling.dir/tests/test_interval_scheduling.cpp.o.d"
  "test_interval_scheduling"
  "test_interval_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
