# Empty dependencies file for bench_fig9_classbench_singlecore.
# This may be replaced when dependencies are built.
