file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_classbench_singlecore.dir/bench/bench_fig9_classbench_singlecore.cpp.o"
  "CMakeFiles/bench_fig9_classbench_singlecore.dir/bench/bench_fig9_classbench_singlecore.cpp.o.d"
  "bench_fig9_classbench_singlecore"
  "bench_fig9_classbench_singlecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_classbench_singlecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
