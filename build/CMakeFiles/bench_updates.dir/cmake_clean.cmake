file(REMOVE_RECURSE
  "CMakeFiles/bench_updates.dir/bench/bench_updates.cpp.o"
  "CMakeFiles/bench_updates.dir/bench/bench_updates.cpp.o.d"
  "bench_updates"
  "bench_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
