file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_skew.dir/bench/bench_fig12_skew.cpp.o"
  "CMakeFiles/bench_fig12_skew.dir/bench/bench_fig12_skew.cpp.o.d"
  "bench_fig12_skew"
  "bench_fig12_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
