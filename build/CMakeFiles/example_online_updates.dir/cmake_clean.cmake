file(REMOVE_RECURSE
  "CMakeFiles/example_online_updates.dir/examples/online_updates.cpp.o"
  "CMakeFiles/example_online_updates.dir/examples/online_updates.cpp.o.d"
  "example_online_updates"
  "example_online_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_online_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
