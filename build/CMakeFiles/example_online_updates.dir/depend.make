# Empty dependencies file for example_online_updates.
# This may be replaced when dependencies are built.
