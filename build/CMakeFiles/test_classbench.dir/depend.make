# Empty dependencies file for test_classbench.
# This may be replaced when dependencies are built.
