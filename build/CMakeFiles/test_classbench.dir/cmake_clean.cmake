file(REMOVE_RECURSE
  "CMakeFiles/test_classbench.dir/tests/test_classbench.cpp.o"
  "CMakeFiles/test_classbench.dir/tests/test_classbench.cpp.o.d"
  "test_classbench"
  "test_classbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
