file(REMOVE_RECURSE
  "CMakeFiles/test_pwl.dir/tests/test_pwl.cpp.o"
  "CMakeFiles/test_pwl.dir/tests/test_pwl.cpp.o.d"
  "test_pwl"
  "test_pwl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pwl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
