file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rqrmi.dir/bench/bench_ablation_rqrmi.cpp.o"
  "CMakeFiles/bench_ablation_rqrmi.dir/bench/bench_ablation_rqrmi.cpp.o.d"
  "bench_ablation_rqrmi"
  "bench_ablation_rqrmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rqrmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
