# Empty dependencies file for bench_ablation_rqrmi.
# This may be replaced when dependencies are built.
