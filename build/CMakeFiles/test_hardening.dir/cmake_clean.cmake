file(REMOVE_RECURSE
  "CMakeFiles/test_hardening.dir/tests/test_hardening.cpp.o"
  "CMakeFiles/test_hardening.dir/tests/test_hardening.cpp.o.d"
  "test_hardening"
  "test_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
