# Empty dependencies file for test_hardening.
# This may be replaced when dependencies are built.
