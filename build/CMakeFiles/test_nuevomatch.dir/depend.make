# Empty dependencies file for test_nuevomatch.
# This may be replaced when dependencies are built.
