file(REMOVE_RECURSE
  "CMakeFiles/test_nuevomatch.dir/tests/test_nuevomatch.cpp.o"
  "CMakeFiles/test_nuevomatch.dir/tests/test_nuevomatch.cpp.o.d"
  "test_nuevomatch"
  "test_nuevomatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nuevomatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
