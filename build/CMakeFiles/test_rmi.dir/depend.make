# Empty dependencies file for test_rmi.
# This may be replaced when dependencies are built.
