file(REMOVE_RECURSE
  "CMakeFiles/test_rmi.dir/tests/test_rmi.cpp.o"
  "CMakeFiles/test_rmi.dir/tests/test_rmi.cpp.o.d"
  "test_rmi"
  "test_rmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
