# Empty dependencies file for test_stanford.
# This may be replaced when dependencies are built.
