file(REMOVE_RECURSE
  "CMakeFiles/test_stanford.dir/tests/test_stanford.cpp.o"
  "CMakeFiles/test_stanford.dir/tests/test_stanford.cpp.o.d"
  "test_stanford"
  "test_stanford.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stanford.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
