file(REMOVE_RECURSE
  "CMakeFiles/test_tuplemerge.dir/tests/test_tuplemerge.cpp.o"
  "CMakeFiles/test_tuplemerge.dir/tests/test_tuplemerge.cpp.o.d"
  "test_tuplemerge"
  "test_tuplemerge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuplemerge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
