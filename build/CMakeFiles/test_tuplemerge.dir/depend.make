# Empty dependencies file for test_tuplemerge.
# This may be replaced when dependencies are built.
