# Empty dependencies file for test_rqrmi.
# This may be replaced when dependencies are built.
