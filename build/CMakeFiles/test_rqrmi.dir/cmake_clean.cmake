file(REMOVE_RECURSE
  "CMakeFiles/test_rqrmi.dir/tests/test_rqrmi.cpp.o"
  "CMakeFiles/test_rqrmi.dir/tests/test_rqrmi.cpp.o.d"
  "test_rqrmi"
  "test_rqrmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rqrmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
