# Empty dependencies file for bench_ablation_rmi.
# This may be replaced when dependencies are built.
