file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rmi.dir/bench/bench_ablation_rmi.cpp.o"
  "CMakeFiles/bench_ablation_rmi.dir/bench/bench_ablation_rmi.cpp.o.d"
  "bench_ablation_rmi"
  "bench_ablation_rmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
