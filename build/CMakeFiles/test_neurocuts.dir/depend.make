# Empty dependencies file for test_neurocuts.
# This may be replaced when dependencies are built.
