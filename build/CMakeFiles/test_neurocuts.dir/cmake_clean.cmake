file(REMOVE_RECURSE
  "CMakeFiles/test_neurocuts.dir/tests/test_neurocuts.cpp.o"
  "CMakeFiles/test_neurocuts.dir/tests/test_neurocuts.cpp.o.d"
  "test_neurocuts"
  "test_neurocuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neurocuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
