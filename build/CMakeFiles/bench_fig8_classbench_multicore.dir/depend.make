# Empty dependencies file for bench_fig8_classbench_multicore.
# This may be replaced when dependencies are built.
