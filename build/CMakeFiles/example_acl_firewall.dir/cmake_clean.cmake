file(REMOVE_RECURSE
  "CMakeFiles/example_acl_firewall.dir/examples/acl_firewall.cpp.o"
  "CMakeFiles/example_acl_firewall.dir/examples/acl_firewall.cpp.o.d"
  "example_acl_firewall"
  "example_acl_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_acl_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
