# Empty dependencies file for example_acl_firewall.
# This may be replaced when dependencies are built.
