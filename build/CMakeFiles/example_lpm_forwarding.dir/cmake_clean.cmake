file(REMOVE_RECURSE
  "CMakeFiles/example_lpm_forwarding.dir/examples/lpm_forwarding.cpp.o"
  "CMakeFiles/example_lpm_forwarding.dir/examples/lpm_forwarding.cpp.o.d"
  "example_lpm_forwarding"
  "example_lpm_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lpm_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
