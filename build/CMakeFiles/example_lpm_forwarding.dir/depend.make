# Empty dependencies file for example_lpm_forwarding.
# This may be replaced when dependencies are built.
