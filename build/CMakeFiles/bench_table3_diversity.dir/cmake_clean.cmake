file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_diversity.dir/bench/bench_table3_diversity.cpp.o"
  "CMakeFiles/bench_table3_diversity.dir/bench/bench_table3_diversity.cpp.o.d"
  "bench_table3_diversity"
  "bench_table3_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
