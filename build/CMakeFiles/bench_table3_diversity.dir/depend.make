# Empty dependencies file for bench_table3_diversity.
# This may be replaced when dependencies are built.
