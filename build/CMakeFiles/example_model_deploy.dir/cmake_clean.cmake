file(REMOVE_RECURSE
  "CMakeFiles/example_model_deploy.dir/examples/model_deploy.cpp.o"
  "CMakeFiles/example_model_deploy.dir/examples/model_deploy.cpp.o.d"
  "example_model_deploy"
  "example_model_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
