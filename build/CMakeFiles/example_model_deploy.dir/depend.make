# Empty dependencies file for example_model_deploy.
# This may be replaced when dependencies are built.
