file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_vectorization.dir/bench/bench_table1_vectorization.cpp.o"
  "CMakeFiles/bench_table1_vectorization.dir/bench/bench_table1_vectorization.cpp.o.d"
  "bench_table1_vectorization"
  "bench_table1_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
