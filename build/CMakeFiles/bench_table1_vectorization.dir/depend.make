# Empty dependencies file for bench_table1_vectorization.
# This may be replaced when dependencies are built.
