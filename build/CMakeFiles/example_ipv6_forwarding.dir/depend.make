# Empty dependencies file for example_ipv6_forwarding.
# This may be replaced when dependencies are built.
