file(REMOVE_RECURSE
  "CMakeFiles/example_ipv6_forwarding.dir/examples/ipv6_forwarding.cpp.o"
  "CMakeFiles/example_ipv6_forwarding.dir/examples/ipv6_forwarding.cpp.o.d"
  "example_ipv6_forwarding"
  "example_ipv6_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ipv6_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
