file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_longfields.dir/bench/bench_ablation_longfields.cpp.o"
  "CMakeFiles/bench_ablation_longfields.dir/bench/bench_ablation_longfields.cpp.o.d"
  "bench_ablation_longfields"
  "bench_ablation_longfields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_longfields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
