# Empty dependencies file for bench_ablation_longfields.
# This may be replaced when dependencies are built.
