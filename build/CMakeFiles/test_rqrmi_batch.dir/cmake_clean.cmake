file(REMOVE_RECURSE
  "CMakeFiles/test_rqrmi_batch.dir/tests/test_rqrmi_batch.cpp.o"
  "CMakeFiles/test_rqrmi_batch.dir/tests/test_rqrmi_batch.cpp.o.d"
  "test_rqrmi_batch"
  "test_rqrmi_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rqrmi_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
