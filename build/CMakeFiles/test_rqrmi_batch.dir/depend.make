# Empty dependencies file for test_rqrmi_batch.
# This may be replaced when dependencies are built.
