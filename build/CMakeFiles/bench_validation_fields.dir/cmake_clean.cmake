file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_fields.dir/bench/bench_validation_fields.cpp.o"
  "CMakeFiles/bench_validation_fields.dir/bench/bench_validation_fields.cpp.o.d"
  "bench_validation_fields"
  "bench_validation_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
