# Empty dependencies file for bench_validation_fields.
# This may be replaced when dependencies are built.
