# Empty dependencies file for example_ovs_cache_accel.
# This may be replaced when dependencies are built.
