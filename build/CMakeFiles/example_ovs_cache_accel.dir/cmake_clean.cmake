file(REMOVE_RECURSE
  "CMakeFiles/example_ovs_cache_accel.dir/examples/ovs_cache_accel.cpp.o"
  "CMakeFiles/example_ovs_cache_accel.dir/examples/ovs_cache_accel.cpp.o.d"
  "example_ovs_cache_accel"
  "example_ovs_cache_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ovs_cache_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
