# Empty dependencies file for bench_fig15_training_time.
# This may be replaced when dependencies are built.
