# Empty dependencies file for nuevomatch.
# This may be replaced when dependencies are built.
