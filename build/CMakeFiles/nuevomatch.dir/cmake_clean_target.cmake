file(REMOVE_RECURSE
  "libnuevomatch.a"
)
