
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classbench/generator.cpp" "CMakeFiles/nuevomatch.dir/src/classbench/generator.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/classbench/generator.cpp.o.d"
  "/root/repo/src/classbench/parser.cpp" "CMakeFiles/nuevomatch.dir/src/classbench/parser.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/classbench/parser.cpp.o.d"
  "/root/repo/src/classbench/stanford.cpp" "CMakeFiles/nuevomatch.dir/src/classbench/stanford.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/classbench/stanford.cpp.o.d"
  "/root/repo/src/classifiers/linear.cpp" "CMakeFiles/nuevomatch.dir/src/classifiers/linear.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/classifiers/linear.cpp.o.d"
  "/root/repo/src/common/prefix.cpp" "CMakeFiles/nuevomatch.dir/src/common/prefix.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/common/prefix.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/nuevomatch.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/types.cpp" "CMakeFiles/nuevomatch.dir/src/common/types.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/common/types.cpp.o.d"
  "/root/repo/src/common/zipf.cpp" "CMakeFiles/nuevomatch.dir/src/common/zipf.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/common/zipf.cpp.o.d"
  "/root/repo/src/cutsplit/cut_tree.cpp" "CMakeFiles/nuevomatch.dir/src/cutsplit/cut_tree.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/cutsplit/cut_tree.cpp.o.d"
  "/root/repo/src/cutsplit/cutsplit.cpp" "CMakeFiles/nuevomatch.dir/src/cutsplit/cutsplit.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/cutsplit/cutsplit.cpp.o.d"
  "/root/repo/src/isets/interval_scheduling.cpp" "CMakeFiles/nuevomatch.dir/src/isets/interval_scheduling.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/isets/interval_scheduling.cpp.o.d"
  "/root/repo/src/isets/iset_index.cpp" "CMakeFiles/nuevomatch.dir/src/isets/iset_index.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/isets/iset_index.cpp.o.d"
  "/root/repo/src/isets/partition.cpp" "CMakeFiles/nuevomatch.dir/src/isets/partition.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/isets/partition.cpp.o.d"
  "/root/repo/src/neurocuts/neurocuts.cpp" "CMakeFiles/nuevomatch.dir/src/neurocuts/neurocuts.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/neurocuts/neurocuts.cpp.o.d"
  "/root/repo/src/nuevomatch/nuevomatch.cpp" "CMakeFiles/nuevomatch.dir/src/nuevomatch/nuevomatch.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/nuevomatch/nuevomatch.cpp.o.d"
  "/root/repo/src/nuevomatch/parallel.cpp" "CMakeFiles/nuevomatch.dir/src/nuevomatch/parallel.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/nuevomatch/parallel.cpp.o.d"
  "/root/repo/src/rmi/rmi.cpp" "CMakeFiles/nuevomatch.dir/src/rmi/rmi.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/rmi/rmi.cpp.o.d"
  "/root/repo/src/rqrmi/kernel.cpp" "CMakeFiles/nuevomatch.dir/src/rqrmi/kernel.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/rqrmi/kernel.cpp.o.d"
  "/root/repo/src/rqrmi/model.cpp" "CMakeFiles/nuevomatch.dir/src/rqrmi/model.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/rqrmi/model.cpp.o.d"
  "/root/repo/src/rqrmi/nn.cpp" "CMakeFiles/nuevomatch.dir/src/rqrmi/nn.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/rqrmi/nn.cpp.o.d"
  "/root/repo/src/rqrmi/pwl.cpp" "CMakeFiles/nuevomatch.dir/src/rqrmi/pwl.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/rqrmi/pwl.cpp.o.d"
  "/root/repo/src/rqrmi/trainer.cpp" "CMakeFiles/nuevomatch.dir/src/rqrmi/trainer.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/rqrmi/trainer.cpp.o.d"
  "/root/repo/src/serialize/serialize.cpp" "CMakeFiles/nuevomatch.dir/src/serialize/serialize.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/serialize/serialize.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/nuevomatch.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/trace/trace.cpp.o.d"
  "/root/repo/src/tuplemerge/tuple_space_search.cpp" "CMakeFiles/nuevomatch.dir/src/tuplemerge/tuple_space_search.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/tuplemerge/tuple_space_search.cpp.o.d"
  "/root/repo/src/tuplemerge/tuple_table.cpp" "CMakeFiles/nuevomatch.dir/src/tuplemerge/tuple_table.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/tuplemerge/tuple_table.cpp.o.d"
  "/root/repo/src/tuplemerge/tuplemerge.cpp" "CMakeFiles/nuevomatch.dir/src/tuplemerge/tuplemerge.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/tuplemerge/tuplemerge.cpp.o.d"
  "/root/repo/src/wide/wide.cpp" "CMakeFiles/nuevomatch.dir/src/wide/wide.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/wide/wide.cpp.o.d"
  "/root/repo/src/wide/wide_index.cpp" "CMakeFiles/nuevomatch.dir/src/wide/wide_index.cpp.o" "gcc" "CMakeFiles/nuevomatch.dir/src/wide/wide_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
