#include "nuevomatch/nuevomatch.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <stdexcept>
#include <unordered_set>

namespace nuevomatch {

NuevoMatch::NuevoMatch(NuevoMatchConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.remainder_factory)
    throw std::invalid_argument{"NuevoMatchConfig.remainder_factory must be set"};
  remainder_ = cfg_.remainder_factory();
}

rqrmi::RqRmiConfig NuevoMatch::rqrmi_config(size_t iset_size) const {
  rqrmi::RqRmiConfig rc = rqrmi::default_config(iset_size);
  if (!cfg_.stage_widths_override.empty()) rc.stage_widths = cfg_.stage_widths_override;
  rc.error_threshold = cfg_.error_threshold;
  rc.initial_samples = cfg_.initial_samples;
  rc.adam_epochs = cfg_.adam_epochs;
  rc.max_retrain_attempts = cfg_.max_retrain_attempts;
  rc.seed = cfg_.seed;
  return rc;
}

void NuevoMatch::rebuild_pos_map() {
  pos_by_id_.clear();
  pos_by_id_.reserve(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) pos_by_id_.emplace(rules_[i].id, i);
}

void NuevoMatch::build(std::span<const Rule> rules) { build(rules, nullptr); }

namespace {

/// Index-relevant rule identity: ranges, priority and id. Actions are
/// deliberately NOT compared — the index never consults them, so an action
/// rewrite keeps a trained (model, array) pair valid.
bool same_index_rule(const Rule& a, const Rule& b) {
  if (a.id != b.id || a.priority != b.priority) return false;
  for (int f = 0; f < kNumFields; ++f) {
    const auto fi = static_cast<size_t>(f);
    if (a.field[fi].lo != b.field[fi].lo || a.field[fi].hi != b.field[fi].hi)
      return false;
  }
  return true;
}

}  // namespace

void NuevoMatch::build(std::span<const Rule> rules, const NuevoMatch* reuse_models_from) {
  rules_.assign(rules.begin(), rules.end());
  rebuild_pos_map();
  isets_.clear();
  built_size_ = rules_.size();
  migrated_ = 0;
  reused_isets_ = 0;

  IsetPartitionConfig pc;
  pc.max_isets = cfg_.max_isets;
  pc.min_coverage_fraction = cfg_.min_iset_coverage;

  // Model-reuse plan (retrain cost control): a donor iSet whose rule array
  // is fully intact in the new rule-set — every rule present with identical
  // ranges/priority — can be PINNED: its trained model and certified §3.3
  // error bounds stay valid verbatim, because the certification is a
  // property of the (model, sorted array) pair and the array is unchanged.
  // Pinning is partition-independent (a fresh partition of the same logical
  // set may tie-break differently around churn duplicates), so the
  // leftovers are partitioned into the remaining iSet slots and the whole
  // plan is GATED on not losing coverage vs a full re-partition: if pinning
  // would cost more than reuse_coverage_slack of the rule-set, fall back to
  // the full plan and retrain everything. Remainder-only churn therefore
  // retrains nothing; structural drift retrains exactly when it matters.
  // NOTE: the donor scan reads only immutable post-build state (field, rule
  // arrays, models) — never the tombstone flags or live counters, which the
  // online engine flips concurrently during a background retrain. A donor
  // with tombstoned rules disqualifies itself through the snapshot: the
  // dead id is either absent or reincarnated with a different body.
  std::optional<IsetPartition> full;  // computed once; the gate and the
                                      // fallback plan share it
  if (reuse_models_from != nullptr && !reuse_models_from->isets_.empty()) {
    std::vector<const IsetIndex*> pinned;
    for (const IsetIndex& donor : reuse_models_from->isets_) {
      if (static_cast<int>(pinned.size()) >= cfg_.max_isets) break;
      bool intact = !donor.rules().empty();
      for (const Rule& r : donor.rules()) {
        const auto it = pos_by_id_.find(r.id);
        if (it == pos_by_id_.end() || !same_index_rule(rules_[it->second], r)) {
          intact = false;
          break;
        }
      }
      if (intact) pinned.push_back(&donor);
    }
    if (!pinned.empty()) {
      std::unordered_set<uint32_t> pinned_ids;
      for (const IsetIndex* is : pinned)
        for (const Rule& r : is->rules()) pinned_ids.insert(r.id);
      std::vector<Rule> leftover;
      leftover.reserve(rules_.size() - pinned_ids.size());
      for (const Rule& r : rules_)
        if (!pinned_ids.contains(r.id)) leftover.push_back(r);

      IsetPartition lpart;
      IsetPartitionConfig lpc = pc;
      lpc.max_isets = cfg_.max_isets - static_cast<int>(pinned.size());
      if (lpc.max_isets > 0 && !leftover.empty()) {
        // Keep the candidacy threshold relative to the FULL rule-set, not
        // the leftover slice.
        lpc.min_coverage_fraction =
            std::min(1.0, pc.min_coverage_fraction *
                              static_cast<double>(rules_.size()) /
                              static_cast<double>(leftover.size()));
        lpart = partition_rules(leftover, lpc);
      } else {
        lpart.remainder = std::move(leftover);
        lpart.total_rules = lpart.remainder.size();
      }

      size_t pinned_cov = pinned_ids.size();
      for (const auto& s : lpart.isets) pinned_cov += s.rules.size();
      full = partition_rules(rules_, pc);
      size_t full_cov = 0;
      for (const auto& s : full->isets) full_cov += s.rules.size();
      const double slack =
          cfg_.reuse_coverage_slack * static_cast<double>(rules_.size());
      if (static_cast<double>(pinned_cov) + slack >= static_cast<double>(full_cov)) {
        isets_.reserve(pinned.size() + lpart.isets.size());
        for (const IsetIndex* donor : pinned) {
          // Rebuild the array from the snapshot's rule bodies (identical
          // ranges/priority/id, possibly rewritten actions) in donor order.
          std::vector<Rule> arr;
          arr.reserve(donor->rules().size());
          for (const Rule& r : donor->rules())
            arr.push_back(rules_[pos_by_id_.at(r.id)]);
          IsetIndex idx;
          idx.restore(donor->field(), std::move(arr), donor->model());
          isets_.push_back(std::move(idx));
          ++reused_isets_;
        }
        for (auto& s : lpart.isets) {
          IsetIndex idx;
          const size_t n = s.rules.size();
          idx.build(s.field, std::move(s.rules), rqrmi_config(n));
          isets_.push_back(std::move(idx));
        }
        remainder_ = cfg_.remainder_factory();
        remainder_->build(lpart.remainder);
        return;
      }
      // Gate failed: the pinned plan would cost coverage — fall through to
      // the full retrain.
    }
  }

  IsetPartition part =
      full.has_value() ? std::move(*full) : partition_rules(rules_, pc);
  isets_.reserve(part.isets.size());
  for (auto& is : part.isets) {
    IsetIndex idx;
    const size_t n = is.rules.size();
    idx.build(is.field, std::move(is.rules), rqrmi_config(n));
    isets_.push_back(std::move(idx));
  }
  remainder_ = cfg_.remainder_factory();
  remainder_->build(part.remainder);
}

MatchResult NuevoMatch::match_isets(const Packet& p) const {
  // The running best priority is threaded through as a floor so later iSets
  // reject their candidates from packed metadata without fetching rule
  // bodies (cross-iSet early termination, an extension of paper Section 4).
  MatchResult best;
  for (const IsetIndex& is : isets_) {
    const MatchResult r = is.lookup_with_floor(p, best.priority);
    if (r.beats(best)) best = r;
  }
  return best;
}

namespace {
constexpr size_t kTile = 32;  ///< batch pipeline tile width
}

void NuevoMatch::match_isets_tile(const Packet* packets, size_t tile,
                                  MatchResult* out) const {
  // Three-stage software pipeline for one tile (DESIGN.md "Batched inference
  // engine"). Stage 1 runs the whole tile through the lane-per-packet RQ-RMI
  // kernels — one predict_batch call per iSet instead of a scalar predict
  // per packet x iSet. Stage 2 walks the bounded search windows with
  // wave-ahead prefetch. Stage 3 validates per packet in iSet order so the
  // cross-iSet early-termination floor behaves exactly like match_isets().
  constexpr size_t kMaxIsets = 8;
  const size_t n_isets = std::min(isets_.size(), kMaxIsets);
  std::array<uint32_t, kTile * kMaxIsets> vals;
  std::array<rqrmi::Prediction, kTile * kMaxIsets> preds;
  std::array<int32_t, kTile * kMaxIsets> pos;

  // Stage 1: batched model inference, one iSet (= one model) at a time.
  for (size_t s = 0; s < n_isets; ++s) {
    uint32_t* v = vals.data() + s * kTile;
    for (size_t t = 0; t < tile; ++t) v[t] = packets[t][isets_[s].field()];
    isets_[s].predict_batch({v, tile}, {preds.data() + s * kTile, tile});
  }
  // Stage 2: batched bounded secondary search (windows prefetched a wave
  // ahead inside search_batch).
  for (size_t s = 0; s < n_isets; ++s) {
    isets_[s].search_batch({vals.data() + s * kTile, tile},
                           {preds.data() + s * kTile, tile},
                           {pos.data() + s * kTile, tile});
  }
  // Stage 3: validation per packet.
  for (size_t t = 0; t < tile; ++t) {
    const Packet& p = packets[t];
    MatchResult best;
    for (size_t s = 0; s < n_isets; ++s) {
      const MatchResult r = isets_[s].validate(pos[s * kTile + t], p, best.priority);
      if (r.beats(best)) best = r;
    }
    // Any iSets beyond the pipeline width take the scalar path.
    for (size_t s = n_isets; s < isets_.size(); ++s) {
      const MatchResult r = isets_[s].lookup_with_floor(p, best.priority);
      if (r.beats(best)) best = r;
    }
    out[t] = best;
  }
}

void NuevoMatch::match_batch(std::span<const Packet> packets,
                             std::span<MatchResult> out) const {
  for (size_t base = 0; base < packets.size(); base += kTile) {
    const size_t tile = std::min(kTile, packets.size() - base);
    match_isets_tile(packets.data() + base, tile, out.data() + base);
    // Remainder merge per packet, still within the tile for locality.
    for (size_t t = 0; t < tile; ++t) {
      const Packet& p = packets[base + t];
      MatchResult best = out[base + t];
      const MatchResult rem = cfg_.early_termination && best.hit()
                                  ? remainder_->match_with_floor(p, best.priority)
                                  : remainder_->match(p);
      if (rem.beats(best)) best = rem;
      out[base + t] = best;
    }
  }
}

void NuevoMatch::match_isets_batch(std::span<const Packet> packets,
                                   std::span<MatchResult> out) const {
  for (size_t base = 0; base < packets.size(); base += kTile) {
    const size_t tile = std::min(kTile, packets.size() - base);
    match_isets_tile(packets.data() + base, tile, out.data() + base);
  }
}

MatchResult NuevoMatch::match(const Packet& p) const {
  MatchResult best = match_isets(p);
  const MatchResult rem =
      cfg_.early_termination && best.hit()
          ? remainder_->match_with_floor(p, best.priority)
          : remainder_->match(p);
  if (rem.beats(best)) best = rem;
  return best;
}

MatchResult NuevoMatch::match_with_floor(const Packet& p, int32_t priority_floor) const {
  MatchResult r = match(p);
  if (r.hit() && r.priority >= priority_floor) return MatchResult{};
  return r;
}

bool NuevoMatch::supports_updates() const { return remainder_->supports_updates(); }

bool NuevoMatch::insert(const Rule& r) {
  if (pos_by_id_.contains(r.id)) return false;  // ids are unique; see header
  if (!remainder_->insert(r)) return false;
  pos_by_id_.emplace(r.id, rules_.size());
  rules_.push_back(r);
  ++migrated_;
  return true;
}

bool NuevoMatch::erase_in_isets(uint32_t rule_id) noexcept {
  for (IsetIndex& is : isets_) {
    if (is.erase(rule_id)) return true;
  }
  return false;
}

bool NuevoMatch::erase(uint32_t rule_id) {
  const auto it = pos_by_id_.find(rule_id);
  if (it == pos_by_id_.end()) return false;
  bool removed = false;
  for (IsetIndex& is : isets_) {
    if (is.erase(rule_id)) {
      removed = true;
      break;
    }
  }
  if (!removed && !remainder_->erase(rule_id)) return false;
  // Swap-and-pop: the logical rule list is unordered (partitioning re-sorts
  // on rebuild), so erasure stays O(1).
  const size_t pos = it->second;
  const size_t last = rules_.size() - 1;
  if (pos != last) {
    rules_[pos] = std::move(rules_[last]);
    pos_by_id_[rules_[pos].id] = pos;
  }
  rules_.pop_back();
  pos_by_id_.erase(rule_id);
  return true;
}

std::vector<Rule> NuevoMatch::remainder_rules() const {
  // rules_ is the logical rule list; subtract live iSet membership (a hash
  // set, NOT an id-indexed array: update ids are caller-chosen uint32s, so
  // indexing by id would let one large id force a multi-GB allocation).
  // Rules erased from an iSet are tombstoned there and absent from rules_ —
  // and must not mark their id here: the id may have been reinserted since,
  // and that reincarnation lives in the remainder.
  std::unordered_set<uint32_t> in_iset;
  for (const IsetIndex& is : isets_) {
    for (size_t i = 0; i < is.rules().size(); ++i) {
      if (is.alive(i)) in_iset.insert(is.rules()[i].id);
    }
  }
  std::vector<Rule> out;
  for (const Rule& r : rules_) {
    if (!in_iset.contains(r.id)) out.push_back(r);
  }
  return out;
}

double NuevoMatch::update_pressure() const noexcept {
  if (built_size_ == 0) return 0.0;
  return static_cast<double>(migrated_) / static_cast<double>(built_size_);
}

void NuevoMatch::rebuild() {
  const std::vector<Rule> snapshot = rules_;
  build(snapshot);
}

void NuevoMatch::restore(std::vector<IsetIndex> isets, std::vector<Rule> remainder_rules) {
  restore(std::move(isets), std::move(remainder_rules), {}, kAutoBuiltSize, 0);
}

void NuevoMatch::restore(std::vector<IsetIndex> isets, std::vector<Rule> remainder_rules,
                         std::span<const uint32_t> erased_ids, size_t built_size,
                         size_t migrated) {
  isets_ = std::move(isets);
  // Deletions applied after the last (re)build live as tombstones inside the
  // iSet arrays (the model needs the full array); re-apply them FIRST, so
  // the logical rule list below contains only live rules — in particular,
  // an id that was erased from an iSet and later reinserted (now living in
  // the remainder) must appear exactly once.
  for (const uint32_t id : erased_ids) {
    for (IsetIndex& is : isets_) {
      if (is.erase(id)) break;
    }
  }
  rules_.clear();
  for (const IsetIndex& is : isets_) {
    for (size_t i = 0; i < is.rules().size(); ++i) {
      if (is.alive(i)) rules_.push_back(is.rules()[i]);
    }
  }
  rules_.insert(rules_.end(), remainder_rules.begin(), remainder_rules.end());
  rebuild_pos_map();
  built_size_ = built_size == kAutoBuiltSize ? rules_.size() : built_size;
  migrated_ = migrated;
  remainder_ = cfg_.remainder_factory();
  remainder_->build(remainder_rules);
}

size_t NuevoMatch::memory_bytes() const {
  size_t bytes = remainder_->memory_bytes();
  for (const IsetIndex& is : isets_) bytes += is.model_bytes();
  return bytes;
}

std::string NuevoMatch::name() const { return "nuevomatch(" + remainder_->name() + ")"; }

double NuevoMatch::coverage() const noexcept {
  if (built_size_ == 0) return 0.0;
  size_t covered = 0;
  for (const IsetIndex& is : isets_) covered += is.size();
  return static_cast<double>(covered) / static_cast<double>(built_size_);
}

uint32_t NuevoMatch::max_search_error() const noexcept {
  uint32_t e = 0;
  for (const IsetIndex& is : isets_) e = std::max(e, is.max_search_error());
  return e;
}

}  // namespace nuevomatch
