// NuevoMatch (paper Figure 1): iSets indexed by RQ-RMIs + a remainder set
// indexed by an external classifier, with a selector returning the highest
// priority validated match. Acts as an accelerator for the remainder engine:
// construct it with the factory of whichever classifier you want to speed up.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "classifiers/classifier.hpp"
#include "isets/iset_index.hpp"
#include "isets/partition.hpp"
#include "rqrmi/model.hpp"

namespace nuevomatch {

struct NuevoMatchConfig {
  /// iSet extraction (paper §5.1 uses max 4 iSets; coverage floor 25% vs
  /// decision trees, 5% vs TupleMerge).
  int max_isets = 4;
  double min_iset_coverage = 0.25;

  /// RQ-RMI training (paper §5.1: error threshold 64; Table 4 widths are
  /// auto-selected per iSet size unless stage_widths_override is non-empty).
  uint32_t error_threshold = 64;
  std::vector<uint32_t> stage_widths_override{};
  int initial_samples = 512;
  int adam_epochs = 100;
  int max_retrain_attempts = 4;

  /// Query the remainder only when the iSet result can still be beaten, and
  /// let the remainder engine cut its own search (paper §4).
  bool early_termination = true;

  /// Retrain cost control (build(rules, reuse)): coverage — as a fraction
  /// of the rule-set — that a model-reusing build may lose vs a full
  /// re-partition before it falls back to retraining everything. 0 demands
  /// exact parity; the default tolerates partition tie-break noise around
  /// churn duplicates without letting reuse erode the speedup.
  double reuse_coverage_slack = 0.02;

  /// Builds the remainder classifier (and the fallback when no iSet covers
  /// enough rules). Must be set.
  ClassifierFactory remainder_factory;

  uint64_t seed = 7;
};

class NuevoMatch final : public Classifier {
 public:
  explicit NuevoMatch(NuevoMatchConfig cfg);

  void build(std::span<const Rule> rules) override;
  /// Build, reusing trained models from `reuse_models_from`: donor iSets
  /// whose rule arrays are fully intact in `rules` (every rule present with
  /// identical ranges/priority) are pinned verbatim — model, certified §3.3
  /// error bounds and all — and only the leftover rules are partitioned
  /// into the remaining iSet slots. Reuse is exact, not approximate: the
  /// certification is a property of the (model, sorted array) pair, and the
  /// array is unchanged. The plan is gated on `reuse_coverage_slack`: if
  /// pinning would lose more coverage than a full re-partition allows, the
  /// build falls back to retraining everything. Under remainder-only churn
  /// a retrain therefore skips every iSet and costs only the remainder
  /// rebuild. Safe to call with a donor whose tombstone flags are being
  /// flipped concurrently (the scan reads only immutable state).
  void build(std::span<const Rule> rules, const NuevoMatch* reuse_models_from);
  /// iSets whose model the last build() reused instead of training.
  [[nodiscard]] size_t reused_isets() const noexcept { return reused_isets_; }
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;

  /// iSet path only (used by the parallel engine and breakdown benches).
  [[nodiscard]] MatchResult match_isets(const Packet& p) const;

  /// Batched lookup (paper §5.1 processes packets in batches of 128): a
  /// software pipeline feeds whole tiles through the cross-packet RQ-RMI
  /// kernels (one SIMD lane per packet, see rqrmi/kernel.hpp) per iSet, then
  /// runs the bounded searches with wave-ahead window prefetch, then
  /// validation + remainder per packet. Early-termination semantics are
  /// identical to match(). Results are written per packet; out.size() must
  /// equal packets.size().
  void match_batch(std::span<const Packet> packets, std::span<MatchResult> out) const;

  /// Batched iSet-only path: the first two pipeline stages of match_batch
  /// plus validation, without the remainder merge. Element-for-element
  /// identical to match_isets(). The parallel engine's calling core runs
  /// this so the iSet half of the two-core split gets the SIMD batch
  /// kernels too.
  void match_isets_batch(std::span<const Packet> packets,
                         std::span<MatchResult> out) const;

  // --- updates (paper §3.9) ---------------------------------------------
  // Synchronous, single-threaded update primitives. The concurrent wrapper
  // (OnlineNuevoMatch, nuevomatch/online.hpp) layers reader/writer exclusion
  // and background retraining on top of these.
  [[nodiscard]] bool supports_updates() const override;
  /// New rules are absorbed by the remainder classifier (§3.9 insertion
  /// path). Rule ids must be unique across the live rule-set; inserting a
  /// duplicate id fails. O(1) plus the remainder engine's insert cost.
  bool insert(const Rule& r) override;
  /// Tombstone in the owning iSet, or remove from the remainder. O(1) id
  /// lookup plus the owning structure's erase cost.
  bool erase(uint32_t rule_id) override;
  /// Online-engine deletion primitive: tombstone `rule_id` in whichever
  /// iSet holds it alive — an atomic in-place byte flip, safe against
  /// concurrent wait-free lookups — touching NOTHING else. The logical
  /// rule bookkeeping (rules()/size()/pressure) intentionally goes stale:
  /// on a frozen generation it belongs to the online wrapper, which tracks
  /// it on the writer side (DESIGN.md "Update path"). Offline callers want
  /// erase(), not this.
  bool erase_in_isets(uint32_t rule_id) noexcept;
  /// Fraction of rules that have migrated to the remainder since build.
  [[nodiscard]] double update_pressure() const noexcept;
  /// Retrain from the current rule-set (the paper's periodic retraining).
  void rebuild();

  /// Reinstate a built classifier from its parts without retraining the
  /// RQ-RMIs (the serializer's load path). The remainder classifier is
  /// rebuilt from `remainder_rules` via the configured factory — external
  /// engines build fast; only model training is expensive.
  void restore(std::vector<IsetIndex> isets, std::vector<Rule> remainder_rules);

  /// Serializer v2 load path: additionally re-applies iSet tombstones
  /// (`erased_ids`) and reinstates the update-pressure counters, so a
  /// classifier with pending updates round-trips exactly. Pass
  /// `built_size == kAutoBuiltSize` to derive it from the restored rules.
  static constexpr size_t kAutoBuiltSize = static_cast<size_t>(-1);
  void restore(std::vector<IsetIndex> isets, std::vector<Rule> remainder_rules,
               std::span<const uint32_t> erased_ids, size_t built_size,
               size_t migrated);

  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override { return rules_.size(); }
  [[nodiscard]] std::string name() const override;

  // --- introspection ------------------------------------------------------
  [[nodiscard]] double coverage() const noexcept;  ///< fraction in iSets
  [[nodiscard]] const std::vector<IsetIndex>& isets() const noexcept { return isets_; }
  [[nodiscard]] const Classifier& remainder() const noexcept { return *remainder_; }
  [[nodiscard]] Classifier& remainder() noexcept { return *remainder_; }
  [[nodiscard]] size_t remainder_size() const noexcept { return remainder_->size(); }
  /// The logical rule-set of the remainder engine (everything not covered by
  /// an iSet, including rules migrated there by updates). Serializer input.
  [[nodiscard]] std::vector<Rule> remainder_rules() const;
  /// Current logical rule-set (live iSet rules + remainder, including rules
  /// migrated by updates). Retrain snapshots copy this.
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }
  /// Rules at the last (re)build and updates absorbed since — the inputs to
  /// update_pressure(); serialized so pressure survives a round-trip.
  [[nodiscard]] size_t built_size() const noexcept { return built_size_; }
  [[nodiscard]] size_t migrated() const noexcept { return migrated_; }
  [[nodiscard]] uint32_t max_search_error() const noexcept;
  [[nodiscard]] const NuevoMatchConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] rqrmi::RqRmiConfig rqrmi_config(size_t iset_size) const;
  void rebuild_pos_map();
  /// One tile (≤ kTile packets) of the batched iSet pipeline: stage 1 model
  /// inference, stage 2 bounded search, stage 3 validation. Shared by
  /// match_batch and match_isets_batch.
  void match_isets_tile(const Packet* packets, size_t tile, MatchResult* out) const;

  NuevoMatchConfig cfg_;
  std::vector<Rule> rules_;          // current logical rule-set
  std::unordered_map<uint32_t, size_t> pos_by_id_;  // id → index in rules_
  std::vector<IsetIndex> isets_;
  std::unique_ptr<Classifier> remainder_;
  size_t built_size_ = 0;            // rules at last (re)build
  size_t migrated_ = 0;              // updates routed to remainder since build
  size_t reused_isets_ = 0;          // models reused by the last build()
};

}  // namespace nuevomatch
