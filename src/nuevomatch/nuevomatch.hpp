// NuevoMatch (paper Figure 1): iSets indexed by RQ-RMIs + a remainder set
// indexed by an external classifier, with a selector returning the highest
// priority validated match. Acts as an accelerator for the remainder engine:
// construct it with the factory of whichever classifier you want to speed up.
#pragma once

#include <memory>
#include <vector>

#include "classifiers/classifier.hpp"
#include "isets/iset_index.hpp"
#include "isets/partition.hpp"
#include "rqrmi/model.hpp"

namespace nuevomatch {

struct NuevoMatchConfig {
  /// iSet extraction (paper §5.1 uses max 4 iSets; coverage floor 25% vs
  /// decision trees, 5% vs TupleMerge).
  int max_isets = 4;
  double min_iset_coverage = 0.25;

  /// RQ-RMI training (paper §5.1: error threshold 64; Table 4 widths are
  /// auto-selected per iSet size unless stage_widths_override is non-empty).
  uint32_t error_threshold = 64;
  std::vector<uint32_t> stage_widths_override{};
  int initial_samples = 512;
  int adam_epochs = 100;
  int max_retrain_attempts = 4;

  /// Query the remainder only when the iSet result can still be beaten, and
  /// let the remainder engine cut its own search (paper §4).
  bool early_termination = true;

  /// Builds the remainder classifier (and the fallback when no iSet covers
  /// enough rules). Must be set.
  ClassifierFactory remainder_factory;

  uint64_t seed = 7;
};

class NuevoMatch final : public Classifier {
 public:
  explicit NuevoMatch(NuevoMatchConfig cfg);

  void build(std::span<const Rule> rules) override;
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;

  /// iSet path only (used by the parallel engine and breakdown benches).
  [[nodiscard]] MatchResult match_isets(const Packet& p) const;

  /// Batched lookup (paper §5.1 processes packets in batches of 128): a
  /// software pipeline feeds whole tiles through the cross-packet RQ-RMI
  /// kernels (one SIMD lane per packet, see rqrmi/kernel.hpp) per iSet, then
  /// runs the bounded searches with wave-ahead window prefetch, then
  /// validation + remainder per packet. Early-termination semantics are
  /// identical to match(). Results are written per packet; out.size() must
  /// equal packets.size().
  void match_batch(std::span<const Packet> packets, std::span<MatchResult> out) const;

  // --- updates (paper §3.9) ---------------------------------------------
  [[nodiscard]] bool supports_updates() const override;
  bool insert(const Rule& r) override;   ///< new rules go to the remainder
  bool erase(uint32_t rule_id) override; ///< tombstone in iSet or remainder
  /// Fraction of rules that have migrated to the remainder since build.
  [[nodiscard]] double update_pressure() const noexcept;
  /// Retrain from the current rule-set (the paper's periodic retraining).
  void rebuild();

  /// Reinstate a built classifier from its parts without retraining the
  /// RQ-RMIs (the serializer's load path). The remainder classifier is
  /// rebuilt from `remainder_rules` via the configured factory — external
  /// engines build fast; only model training is expensive.
  void restore(std::vector<IsetIndex> isets, std::vector<Rule> remainder_rules);

  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override { return rules_.size(); }
  [[nodiscard]] std::string name() const override;

  // --- introspection ------------------------------------------------------
  [[nodiscard]] double coverage() const noexcept;  ///< fraction in iSets
  [[nodiscard]] const std::vector<IsetIndex>& isets() const noexcept { return isets_; }
  [[nodiscard]] const Classifier& remainder() const noexcept { return *remainder_; }
  [[nodiscard]] Classifier& remainder() noexcept { return *remainder_; }
  [[nodiscard]] size_t remainder_size() const noexcept { return remainder_->size(); }
  /// The logical rule-set of the remainder engine (everything not covered by
  /// an iSet, including rules migrated there by updates). Serializer input.
  [[nodiscard]] std::vector<Rule> remainder_rules() const;
  [[nodiscard]] uint32_t max_search_error() const noexcept;
  [[nodiscard]] const NuevoMatchConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] rqrmi::RqRmiConfig rqrmi_config(size_t iset_size) const;

  NuevoMatchConfig cfg_;
  std::vector<Rule> rules_;          // current logical rule-set
  std::vector<IsetIndex> isets_;
  std::unique_ptr<Classifier> remainder_;
  size_t built_size_ = 0;            // rules at last (re)build
  size_t migrated_ = 0;              // updates routed to remainder since build
};

}  // namespace nuevomatch
