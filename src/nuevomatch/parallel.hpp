// Two-core execution model (paper Section 4, "Parallelization"): one core
// runs the RQ-RMI iSets, the other runs the remainder classifier; packets are
// processed in batches (128 in the paper) to amortize synchronization.
//
// BatchParallelEngine uses a persistent worker thread and produces results
// identical to NuevoMatch::match with early termination disabled (the
// parallel layout cannot prune the remainder — the paper makes the same
// observation and uses early termination only in single-core mode).
//
// Two construction modes:
//   * static — over a frozen NuevoMatch (the original engine);
//   * online — over an OnlineNuevoMatch: every classify() call pins the
//     current generation through the RCU swap (per-batch generation
//     pinning: the whole batch, on both cores, runs against ONE immutable
//     generation; a swap published mid-batch is picked up at the next
//     batch boundary). This is how multi-core serving and the §3.9 update
//     path compose — see DESIGN.md "Update path".
//
// The calling core runs the iSet half through the batched SIMD pipeline
// (match_isets_batch); the worker core runs the remainder per packet.
#pragma once

#include <condition_variable>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "nuevomatch/nuevomatch.hpp"
#include "nuevomatch/online.hpp"

namespace nuevomatch {

inline constexpr size_t kDefaultBatchSize = 128;

class BatchParallelEngine {
 public:
  /// Static mode: classify against one frozen classifier.
  explicit BatchParallelEngine(const NuevoMatch& nm);
  /// Online mode: classify against whatever generation is live at each
  /// classify() call. Safe to run while writers churn `online` and while
  /// background retrains swap generations; several engines may serve the
  /// same OnlineNuevoMatch from different threads.
  explicit BatchParallelEngine(const OnlineNuevoMatch& online);
  ~BatchParallelEngine();

  BatchParallelEngine(const BatchParallelEngine&) = delete;
  BatchParallelEngine& operator=(const BatchParallelEngine&) = delete;

  /// Classify a batch; `out` must have the same length as `batch`. In online
  /// mode the batch is generation-pinned: writers stall until the batch
  /// completes, so keep batches kDefaultBatchSize-ish, not trace-sized.
  void classify(std::span<const Packet> batch, std::span<MatchResult> out);

 private:
  void classify_on(const NuevoMatch& nm, std::span<const Packet> batch,
                   std::span<MatchResult> out);
  void worker_loop();

  const NuevoMatch* static_nm_ = nullptr;
  const OnlineNuevoMatch* online_ = nullptr;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::span<const Packet> pending_{};    // batch handed to the worker
  const NuevoMatch* job_nm_ = nullptr;   // generation pinned for that batch
  std::vector<MatchResult> worker_out_;  // remainder results
  bool job_ready_ = false;
  bool job_done_ = false;
  bool stop_ = false;
};

}  // namespace nuevomatch
