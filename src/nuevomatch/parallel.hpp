// Two-core execution model (paper Section 4, "Parallelization"): one core
// runs the RQ-RMI iSets, the other runs the remainder classifier; packets are
// processed in batches (128 in the paper) to amortize synchronization.
//
// BatchParallelEngine uses a persistent worker thread and produces results
// identical to NuevoMatch::match with early termination disabled (the
// parallel layout cannot prune the remainder — the paper makes the same
// observation and uses early termination only in single-core mode).
//
// Two construction modes:
//   * static — over a frozen NuevoMatch (the original engine);
//   * online — over an OnlineNuevoMatch: every classify() call takes an
//     epoch-pinned view of the live generation + update layer (per-batch
//     generation pinning: the whole batch, on both cores, runs against ONE
//     consistent view; a commit or swap published mid-batch is picked up at
//     the next batch boundary). The pin is wait-free — it does NOT stall
//     writers, it only defers reclamation of whatever it pinned — so the
//     engine and saturating update bursts coexist without either starving
//     the other (DESIGN.md "Update path").
//
// The calling core runs the iSet half through the batched SIMD pipeline
// (match_isets_batch); the worker core runs the remainder half (base
// remainder or its copy-on-write override, merged with the churn delta) per
// packet through the pinned view.
#pragma once

#include <condition_variable>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "nuevomatch/nuevomatch.hpp"
#include "nuevomatch/online.hpp"

namespace nuevomatch {

inline constexpr size_t kDefaultBatchSize = 128;

class BatchParallelEngine {
 public:
  /// Static mode: classify against one frozen classifier.
  explicit BatchParallelEngine(const NuevoMatch& nm);
  /// Online mode: classify against whatever view is live at each classify()
  /// call. Safe to run while writers churn `online` and while background
  /// retrains swap generations; several engines may serve the same
  /// OnlineNuevoMatch from different threads.
  explicit BatchParallelEngine(const OnlineNuevoMatch& online);
  ~BatchParallelEngine();

  BatchParallelEngine(const BatchParallelEngine&) = delete;
  BatchParallelEngine& operator=(const BatchParallelEngine&) = delete;

  /// Classify a batch; `out` must have the same length as `batch`. In online
  /// mode the batch is generation-pinned: both cores see one consistent
  /// view, and the pinned objects cannot be reclaimed until the batch
  /// completes (writers proceed regardless — only reclamation waits).
  void classify(std::span<const Packet> batch, std::span<MatchResult> out);

 private:
  void run_batch(const NuevoMatch& nm, const OnlineNuevoMatch::Pin* pin,
                 std::span<const Packet> batch, std::span<MatchResult> out);
  void worker_loop();

  const NuevoMatch* static_nm_ = nullptr;
  const OnlineNuevoMatch* online_ = nullptr;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::span<const Packet> pending_{};    // batch handed to the worker
  const NuevoMatch* job_nm_ = nullptr;   // static mode: frozen classifier
  const OnlineNuevoMatch::Pin* job_pin_ = nullptr;  // online mode: pinned view
  std::vector<MatchResult> worker_out_;  // remainder results
  bool job_ready_ = false;
  bool job_done_ = false;
  bool stop_ = false;
};

}  // namespace nuevomatch
