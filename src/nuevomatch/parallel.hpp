// Two-core execution model (paper Section 4, "Parallelization"): one core
// runs the RQ-RMI iSets, the other runs the remainder classifier; packets are
// processed in batches (128 in the paper) to amortize synchronization.
//
// BatchParallelEngine uses a persistent worker thread and produces results
// identical to NuevoMatch::match with early termination disabled (the
// parallel layout cannot prune the remainder — the paper makes the same
// observation and uses early termination only in single-core mode).
#pragma once

#include <condition_variable>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "nuevomatch/nuevomatch.hpp"

namespace nuevomatch {

inline constexpr size_t kDefaultBatchSize = 128;

class BatchParallelEngine {
 public:
  explicit BatchParallelEngine(const NuevoMatch& nm);
  ~BatchParallelEngine();

  BatchParallelEngine(const BatchParallelEngine&) = delete;
  BatchParallelEngine& operator=(const BatchParallelEngine&) = delete;

  /// Classify a batch; `out` must have the same length as `batch`.
  void classify(std::span<const Packet> batch, std::span<MatchResult> out);

 private:
  void worker_loop();

  const NuevoMatch& nm_;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::span<const Packet> pending_{};    // batch handed to the worker
  std::vector<MatchResult> worker_out_;  // remainder results
  bool job_ready_ = false;
  bool job_done_ = false;
  bool stop_ = false;
};

}  // namespace nuevomatch
