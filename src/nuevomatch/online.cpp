#include "nuevomatch/online.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"

namespace nuevomatch {

OnlineNuevoMatch::OnlineNuevoMatch(OnlineConfig cfg) : cfg_(std::move(cfg)) {
  backoff_rng_.reseed(cfg_.backoff_seed);
  // An empty generation (with an empty layer) up front means match() never
  // needs a null check.
  gen_owner_ = std::make_shared<Generation>(cfg_.base);
  layer_owner_ = std::make_shared<const Layer>();
  gen_owner_->layer.store(layer_owner_.get(), std::memory_order_relaxed);
  gen_pub_.store(gen_owner_.get(), std::memory_order_seq_cst);
  const int n_shards = std::clamp(cfg_.update_shards, 1, 256);
  shards_.reserve(static_cast<size_t>(n_shards));
  for (int i = 0; i < n_shards; ++i) shards_.push_back(std::make_unique<Shard>());
  worker_ = std::thread([this] { worker_loop(); });
}

OnlineNuevoMatch::~OnlineNuevoMatch() {
  {
    std::lock_guard lk{wk_mu_};
    stop_ = true;
  }
  wk_cv_.notify_all();
  worker_.join();
  // No readers may be in flight here (standard object-lifetime contract);
  // the retire list and the owner pointers free everything else.
}

// --- data path --------------------------------------------------------------

MatchResult OnlineNuevoMatch::Pin::match(const Packet& p) const {
  // Same composition as NuevoMatch::match, with the layer folded in after
  // the base remainder: iSets first, then the remainder engine (or its
  // copy-on-write override), then the churn delta — each stage floored by
  // the running best when early termination is on.
  const NuevoMatch& nm = g_->nm;
  MatchResult best = nm.match_isets(p);
  const bool et = nm.config().early_termination;
  const Classifier& base =
      l_->base_override != nullptr ? *l_->base_override : nm.remainder();
  MatchResult r = et && best.hit() ? base.match_with_floor(p, best.priority)
                                   : base.match(p);
  if (r.beats(best)) best = r;
  if (l_->churn != nullptr) {
    // The churn delta always takes the running best as its floor: a miss
    // carries priority INT32_MAX, so the unfloored case falls out for free.
    r = l_->churn->match_with_floor(p, best.priority);
    if (r.beats(best)) best = r;
  }
  return best;
}

void OnlineNuevoMatch::Pin::match_batch(std::span<const Packet> packets,
                                        std::span<MatchResult> out) const {
  const NuevoMatch& nm = g_->nm;
  nm.match_isets_batch(packets, out);  // SIMD tile pipeline for the iSet half
  const bool et = nm.config().early_termination;
  const Classifier& base =
      l_->base_override != nullptr ? *l_->base_override : nm.remainder();
  for (size_t i = 0; i < packets.size(); ++i) {
    const Packet& p = packets[i];
    MatchResult best = out[i];
    MatchResult r = et && best.hit() ? base.match_with_floor(p, best.priority)
                                     : base.match(p);
    if (r.beats(best)) best = r;
    if (l_->churn != nullptr) {
      r = l_->churn->match_with_floor(p, best.priority);
      if (r.beats(best)) best = r;
    }
    out[i] = best;
  }
}

MatchResult OnlineNuevoMatch::Pin::remainder_match(const Packet& p) const {
  // The parallel engine's worker half: remainder + churn, no floor (the
  // iSet result is being computed concurrently on the other core).
  const Classifier& base =
      l_->base_override != nullptr ? *l_->base_override : g_->nm.remainder();
  MatchResult best = base.match(p);
  if (l_->churn != nullptr) {
    const MatchResult r = l_->churn->match_with_floor(p, best.priority);
    if (r.beats(best)) best = r;
  }
  return best;
}

MatchResult OnlineNuevoMatch::match(const Packet& p) const { return Pin{*this}.match(p); }

MatchResult OnlineNuevoMatch::match_with_floor(const Packet& p,
                                               int32_t priority_floor) const {
  const MatchResult r = Pin{*this}.match(p);
  if (r.hit() && r.priority >= priority_floor) return MatchResult{};
  return r;
}

void OnlineNuevoMatch::match_batch(std::span<const Packet> packets,
                                   std::span<MatchResult> out) const {
  Pin{*this}.match_batch(packets, out);
}

// --- writer commits ---------------------------------------------------------

void OnlineNuevoMatch::journal_locked(Op op) {
  Shard& sh = shard_for(op.kind == Op::Kind::kInsert ? op.rule.id : op.id);
  sh.ops.fetch_add(1, std::memory_order_relaxed);
  if (journal_open_) {
    sh.journal.push_back(std::move(op));
    journal_depth_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool OnlineNuevoMatch::insert_locked(const Rule& r, bool& churn_dirty) {
  if (live_loc_.contains(r.id)) return false;  // ids are unique; see header
  pending_inserts_.push_back(r);
  live_loc_.emplace(r.id, LiveInfo{Loc::kChurn, r.priority});
  ++migrated_;
  live_count_.fetch_add(1, std::memory_order_relaxed);
  churn_dirty = true;
  return true;
}

bool OnlineNuevoMatch::erase_locked(uint32_t rule_id, bool& churn_dirty,
                                    bool& base_dirty, uint32_t& bands) {
  const auto it = live_loc_.find(rule_id);
  if (it == live_loc_.end()) return false;
  // An erase of r can only change answers whose cached decision IS r (a
  // packet not matched by r keeps its best match), so it invalidates
  // exactly r's band — never the catch-all (a miss cannot become a hit by
  // removing a rule).
  bands |= 1u << coherence_band(it->second.priority);
  switch (it->second.loc) {
    case Loc::kIset:
      // In-place atomic tombstone: visible to readers immediately, no
      // copy-on-write publication needed.
      gen_owner_->nm.erase_in_isets(rule_id);
      break;
    case Loc::kBaseRemainder:
      erased_base_.insert(rule_id);
      base_dirty = true;
      break;
    case Loc::kChurn:
      pending_churn_erases_.push_back(rule_id);
      churn_dirty = true;
      break;
  }
  live_loc_.erase(it);
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void OnlineNuevoMatch::bump_coherence(uint32_t bands) noexcept {
  if (NM_METRICS_ENABLED) {
    static telemetry::Counter& m = telemetry::registry().counter(
        "nm_engine_coherence_bumps_total",
        "cache-invalidation stamp bumps (commits + swaps)");
    m.add(1);
  }
  // One global bump covers the whole commit; each affected band is marked
  // with the post-bump value. Callers hold wmu_, so marks are monotone per
  // band. Ordering: the fetch_add is the release fence for the commit's
  // publications (layer store / tombstones / band map); the mark stores
  // after it are what lets OTHER bands keep serving — a probe that reads a
  // not-yet-stored mark serves a decision the in-flight call has not yet
  // invalidated, which linearizes before that call's return exactly like a
  // lock-free lookup racing erase().
  const uint64_t v = coherence_.fetch_add(1, std::memory_order_release) + 1;
  for (int b = 0; b <= kCoherenceCatchAll; ++b) {
    if ((bands >> b) & 1u)
      band_marks_[static_cast<size_t>(b)].store(v, std::memory_order_release);
  }
}

std::shared_ptr<const Classifier> OnlineNuevoMatch::rebuild_base_locked() const {
  // Generic base-remainder deletion: rebuild the engine over the surviving
  // base rules via the configured factory. O(remainder) — the rare path
  // (iSet deletions are O(1) tombstones, churn deletions O(delta)); a batch
  // of base deletions pays for ONE rebuild.
  std::vector<Rule> live;
  live.reserve(base_rules_.size());
  for (const Rule& r : base_rules_) {
    if (!erased_base_.contains(r.id)) live.push_back(r);
  }
  auto eng = cfg_.base.remainder_factory();
  eng->build(live);
  return std::shared_ptr<const Classifier>(std::move(eng));
}

void OnlineNuevoMatch::publish_layer_locked(bool churn_dirty, bool base_dirty) {
  auto fresh = std::make_shared<Layer>();
  fresh->base_override =
      base_dirty ? rebuild_base_locked() : layer_owner_->base_override;

  if (!churn_dirty) {
    fresh->churn = layer_owner_->churn;
  } else {
    // Rebuild the flat delta: one merge pass over (previous delta minus
    // this commit's erases) and (this commit's inserts, sorted). O(delta +
    // burst) with memcpy-class constants — flat enough that per-commit cost
    // stays negligible even at single-op commit rates, and independent of
    // reader behavior (no grace period involved).
    const auto less = [](const Rule& a, const Rule& b) {
      return a.priority != b.priority ? a.priority < b.priority : a.id < b.id;
    };
    std::sort(pending_inserts_.begin(), pending_inserts_.end(), less);
    const std::unordered_set<uint32_t> dead(pending_churn_erases_.begin(),
                                            pending_churn_erases_.end());
    static const std::vector<Rule> kEmpty;
    const std::vector<Rule>& old =
        layer_owner_->churn != nullptr ? layer_owner_->churn->rules : kEmpty;
    auto list = std::make_shared<ChurnList>();
    list->rules.reserve(old.size() + pending_inserts_.size());
    size_t j = 0;
    for (const Rule& r : old) {
      if (dead.contains(r.id)) continue;
      while (j < pending_inserts_.size() && less(pending_inserts_[j], r))
        list->rules.push_back(pending_inserts_[j++]);
      list->rules.push_back(r);
    }
    for (; j < pending_inserts_.size(); ++j) list->rules.push_back(pending_inserts_[j]);
    if (!list->rules.empty()) fresh->churn = std::move(list);
  }

  // One seq_cst store publishes the whole commit; the superseded layer is
  // epoch-stamped and reclaimed once every pinned reader has moved on.
  gen_owner_->layer.store(fresh.get(), std::memory_order_seq_cst);
  retired_.retire(layer_owner_, epochs_.retire_stamp());
  layer_owner_ = std::move(fresh);
  churn_size_.store(
      layer_owner_->churn != nullptr ? layer_owner_->churn->rules.size() : 0,
      std::memory_order_relaxed);
  retired_.collect(epochs_.min_active());
  if (NM_METRICS_ENABLED) {
    static telemetry::Gauge& g = telemetry::registry().gauge(
        "nm_epoch_retired_depth",
        "epoch-domain retire-list depth after collection");
    g.set(static_cast<int64_t>(retired_.size()));
  }
}

size_t OnlineNuevoMatch::insert_batch(std::span<const Rule> rules) {
  if (rules.empty()) return 0;
  const uint64_t m_t0 = NM_METRICS_ENABLED ? telemetry::now_ns() : 0;
  const bool bounded = cfg_.max_churn_rules > 0 || cfg_.max_journal_ops > 0;
  const bool block = cfg_.overload_policy == OverloadPolicy::kBlock;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(cfg_.overload_block_timeout_ms);
  size_t accepted = 0;
  size_t next = 0;  // first op not yet admitted
  // Unbounded (the default): the loop body runs exactly once — one
  // writer-lock hold, one op-sequence range, one publication, identical to
  // the pre-overload-control commit. With a cap armed, each iteration
  // commits the slice overload control admits; kBlock waits for capacity
  // between slices, kShed (and a kBlock timeout) drops the rest.
  for (;;) {
    size_t slice = 0;
    double pressure = 0.0;
    {
      std::lock_guard lk{wmu_};
      pending_inserts_.clear();
      pending_churn_erases_.clear();
      uint64_t seq =
          op_seq_.fetch_add(rules.size() - next, std::memory_order_relaxed);
      size_t room = bounded ? insert_room_locked() : SIZE_MAX;
      bool churn_dirty = false;
      int min_band = kCoherenceCatchAll;
      while (next < rules.size() && room > 0) {
        const Rule& r = rules[next++];
        if (insert_locked(r, churn_dirty)) {
          journal_locked(Op{Op::Kind::kInsert, r, r.id, seq});
          min_band = std::min(min_band, coherence_band(r.priority));
          ++slice;
          // Each accepted insert grows the churn delta and (journal open)
          // the journal by one; duplicates consume no capacity.
          if (room != SIZE_MAX) --room;
        }
        ++seq;
      }
      if (churn_dirty) publish_layer_locked(churn_dirty, /*base_dirty=*/false);
      // The commit is reader-visible; invalidate decision caches (the bump
      // must follow the publication — coherence_stamp()'s contract). An
      // insert of r only beats cached decisions with WORSE priority, so it
      // marks r's band and every band above it — plus the catch-all, since
      // a cached miss can become a hit.
      if (slice > 0)
        bump_coherence((0x1FFFFu << min_band) & 0x1FFFFu);
      pressure = built_size_ > 0
                     ? static_cast<double>(migrated_) / static_cast<double>(built_size_)
                     : 0.0;
    }
    accepted += slice;
    if (slice > 0 && cfg_.auto_retrain && pressure >= cfg_.retrain_threshold)
      request_retrain(/*forced=*/false);
    if (next >= rules.size()) break;
    if (!block || std::chrono::steady_clock::now() >= deadline) {
      // Shed the rest: the caller sees a short count, health() the tally.
      shed_ops_.fetch_add(rules.size() - next, std::memory_order_relaxed);
      break;
    }
    // Wait for a commit to free capacity (swap, erase, journal drain). The
    // predicate reads the mirror atomics, so a notify that lands before we
    // acquire ov_mu_ is still observed; the next slice re-checks
    // authoritatively under wmu_.
    std::unique_lock lk{ov_mu_};
    ov_cv_.wait_until(lk, deadline, [&] { return approx_room(); });
  }
  if (NM_METRICS_ENABLED && accepted > 0) {
    static telemetry::Counter& mc = telemetry::registry().counter(
        "nm_engine_commits_total", "batch commits accepted (insert + erase)");
    static telemetry::Counter& mo = telemetry::registry().counter(
        "nm_engine_commit_ops_total", "individual ops accepted by commits");
    static telemetry::Histogram& mh = telemetry::registry().histogram(
        "nm_engine_commit_ns",
        "commit latency, call to publication (incl. overload waits)");
    mc.add(1);
    mo.add(accepted);
    mh.record(telemetry::now_ns() - m_t0);
  }
  return accepted;
}

size_t OnlineNuevoMatch::erase_batch(std::span<const uint32_t> rule_ids) {
  if (rule_ids.empty()) return 0;
  const uint64_t m_t0 = NM_METRICS_ENABLED ? telemetry::now_ns() : 0;
  // Erases never consume overload capacity — they shrink state, so capping
  // them could wedge the one operation that relieves pressure.
  size_t accepted = 0;
  bool freed = false;
  {
    std::lock_guard lk{wmu_};
    pending_inserts_.clear();
    pending_churn_erases_.clear();
    uint64_t seq = op_seq_.fetch_add(rule_ids.size(), std::memory_order_relaxed);
    bool churn_dirty = false;
    bool base_dirty = false;
    uint32_t bands = 0;
    for (const uint32_t id : rule_ids) {
      if (erase_locked(id, churn_dirty, base_dirty, bands)) {
        journal_locked(Op{Op::Kind::kErase, Rule{}, id, seq});
        ++accepted;
      }
      ++seq;
    }
    // iSet tombstones are already visible in place; only churn/base changes
    // need a copy-on-write publication.
    if (churn_dirty || base_dirty) publish_layer_locked(churn_dirty, base_dirty);
    // Tombstone-only erases mutated the live view too, so any accepted op
    // invalidates decision caches — but only the erased rules' OWN bands
    // (erase_locked's argument): cached decisions elsewhere provably stand.
    if (accepted > 0) bump_coherence(bands);
    freed = churn_dirty;  // a churn erase shrank the delta
  }
  if (freed) notify_overload();
  if (NM_METRICS_ENABLED && accepted > 0) {
    static telemetry::Counter& mc = telemetry::registry().counter(
        "nm_engine_commits_total", "batch commits accepted (insert + erase)");
    static telemetry::Counter& mo = telemetry::registry().counter(
        "nm_engine_commit_ops_total", "individual ops accepted by commits");
    static telemetry::Histogram& mh = telemetry::registry().histogram(
        "nm_engine_commit_ns",
        "commit latency, call to publication (incl. overload waits)");
    mc.add(1);
    mo.add(accepted);
    mh.record(telemetry::now_ns() - m_t0);
  }
  return accepted;
}

bool OnlineNuevoMatch::insert(const Rule& r) { return insert_batch({&r, 1}) == 1; }

bool OnlineNuevoMatch::erase(uint32_t rule_id) {
  return erase_batch({&rule_id, 1}) == 1;
}

// --- generation installation ------------------------------------------------

void OnlineNuevoMatch::install_generation_locked(
    std::shared_ptr<Generation> fresh, const std::vector<uint64_t>* shard_ops,
    bool reset_counters) {
  auto fresh_layer = std::make_shared<const Layer>();
  fresh->layer.store(fresh_layer.get(), std::memory_order_relaxed);
  fresh->seq = generation_count_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Rebuild the writer-side routing state from the frozen index. O(n), under
  // the writer lock only — the read path never notices.
  base_rules_ = fresh->nm.remainder_rules();
  erased_base_.clear();
  pending_inserts_.clear();
  pending_churn_erases_.clear();
  live_loc_.clear();
  live_loc_.reserve(fresh->nm.size());
  int64_t prio_lo = INT64_MAX;
  int64_t prio_hi = INT64_MIN;
  for (const IsetIndex& is : fresh->nm.isets()) {
    for (size_t i = 0; i < is.rules().size(); ++i) {
      if (!is.alive(i)) continue;
      const Rule& r = is.rules()[i];
      live_loc_.emplace(r.id, LiveInfo{Loc::kIset, r.priority});
      prio_lo = std::min<int64_t>(prio_lo, r.priority);
      prio_hi = std::max<int64_t>(prio_hi, r.priority);
    }
  }
  for (const Rule& r : base_rules_) {
    live_loc_.emplace(r.id, LiveInfo{Loc::kBaseRemainder, r.priority});
    prio_lo = std::min<int64_t>(prio_lo, r.priority);
    prio_hi = std::max<int64_t>(prio_hi, r.priority);
  }
  // Recompute the band map over the installed rules' priority range: 16
  // equal-width bands, clamped at both ends (priorities inserted later that
  // fall outside the range land in band 0 / 15). Stored BEFORE this
  // install's release bump, and every band is marked below — so an entry
  // that survives the install was stamped after it and therefore banded
  // under THIS map; no entry banded under the old map can ever be served
  // against it.
  uint64_t map = 0;
  if (prio_lo <= prio_hi) {
    const uint64_t span = static_cast<uint64_t>(prio_hi - prio_lo) + 1;
    const uint64_t width =
        (span + kCoherenceBands - 1) / static_cast<uint64_t>(kCoherenceBands);
    map = (static_cast<uint64_t>(static_cast<uint32_t>(prio_lo)) << 32) |
          static_cast<uint32_t>(width);
  }
  band_map_.store(map, std::memory_order_relaxed);
  built_size_ = fresh->nm.built_size();
  migrated_ = fresh->nm.migrated();
  live_count_.store(fresh->nm.size(), std::memory_order_relaxed);
  journal_open_ = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->journal.clear();
    if (reset_counters) {
      shards_[i]->ops.store(shard_ops != nullptr ? (*shard_ops)[i] : 0,
                            std::memory_order_relaxed);
    }
  }
  journal_depth_.store(0, std::memory_order_relaxed);
  churn_size_.store(0, std::memory_order_relaxed);  // fresh layer is empty

  gen_pub_.store(fresh.get(), std::memory_order_seq_cst);
  const uint64_t stamp = epochs_.retire_stamp();
  retired_.retire(layer_owner_, stamp);
  retired_.retire(gen_owner_, stamp);
  gen_owner_ = std::move(fresh);
  layer_owner_ = std::move(fresh_layer);
  retired_.collect(epochs_.min_active());
  if (NM_METRICS_ENABLED) {
    static telemetry::Gauge& g = telemetry::registry().gauge(
        "nm_epoch_retired_depth",
        "epoch-domain retire-list depth after collection");
    g.set(static_cast<int64_t>(retired_.size()));
  }
  // A swap preserves every answer (journals replayed), but cached decisions
  // predate the replayed erases' tombstone relocations, and the band map
  // just moved — mark EVERY band; conservative invalidation is always
  // coherent.
  bump_coherence(0x1FFFFu);
}

void OnlineNuevoMatch::publish_fresh(std::shared_ptr<Generation> fresh,
                                     const std::vector<uint64_t>* shard_ops) {
  // Cancel any pending retrain and wait out a running one, so a stale
  // generation trained on pre-build rules can never swap over this one.
  {
    std::unique_lock lk{wk_mu_};
    retrain_requested_ = false;
    wk_cv_.wait(lk, [&] { return !retrain_running_; });
    // A cycle that failed while we waited may have re-armed a backoff
    // retry; this install supersedes it — and failure accounting restarts
    // from a clean slate (a fresh generation has no retrain history).
    retrain_requested_ = false;
    retrain_retry_ = false;
    backoff_ms_ = 0;
    backoff_until_ = {};
    last_error_.clear();
  }
  retrain_failures_.store(0, std::memory_order_relaxed);
  degraded_.store(false, std::memory_order_release);
  // A retrain requested between the wait above and the lock below loses
  // either way: its snapshot section runs after this install (fresh rules),
  // or it already ran and the journal_open_ reset here discards it at replay.
  {
    std::lock_guard lk{wmu_};
    install_generation_locked(std::move(fresh), shard_ops, /*reset_counters=*/true);
  }
  notify_overload();  // the install reset the delta and the journal
}

void OnlineNuevoMatch::build(std::span<const Rule> rules) {
  auto fresh = std::make_shared<Generation>(cfg_.base);
  try {
    if (failpoint::should_fire(failpoint::kOnlineBuild))
      throw std::runtime_error("failpoint: online.build");
    // Train before cancelling the worker: the long part needs no exclusion.
    fresh->nm.build(rules);
  } catch (const std::exception& e) {
    // Graceful degradation instead of an unusable engine: an engine whose
    // training failed can still answer every query correctly with the
    // remainder side alone — restore() with zero iSets routes all rules to
    // the configured remainder engine and skips RQ-RMI training entirely.
    // health() raises the degraded flag; a later successful retrain_now()
    // (or build()/adopt()) swaps a trained index in and clears it.
    fresh = std::make_shared<Generation>(cfg_.base);
    fresh->nm.restore({}, std::vector<Rule>(rules.begin(), rules.end()));
    publish_fresh(std::move(fresh));
    // publish_fresh wipes failure state; record the degradation after it.
    retrain_failures_.store(1, std::memory_order_relaxed);
    retrain_failures_total_.fetch_add(1, std::memory_order_relaxed);
    degraded_.store(true, std::memory_order_release);
    {
      std::lock_guard lk{wk_mu_};
      last_error_ = std::string{"initial build: "} + e.what();
    }
    return;
  }
  publish_fresh(std::move(fresh));
}

void OnlineNuevoMatch::adopt(NuevoMatch nm) {
  publish_fresh(std::make_shared<Generation>(std::move(nm)));
}

void OnlineNuevoMatch::adopt(NuevoMatch nm, std::span<const uint64_t> shard_ops) {
  std::vector<uint64_t> counts(shards_.size(), 0);
  if (shard_ops.size() == shards_.size()) {
    counts.assign(shard_ops.begin(), shard_ops.end());
  } else {
    // Shard count changed between save and load: id→shard assignment is
    // recomputed from the hash anyway, so only the aggregate count is
    // meaningful. Spread it evenly.
    uint64_t total = 0;
    for (const uint64_t c : shard_ops) total += c;
    const auto n = static_cast<uint64_t>(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i)
      counts[i] = total / n + (i < total % n ? 1 : 0);
  }
  publish_fresh(std::make_shared<Generation>(std::move(nm)), &counts);
}

// --- retraining -------------------------------------------------------------

double OnlineNuevoMatch::absorption() const {
  std::lock_guard lk{wmu_};
  return built_size_ > 0
             ? static_cast<double>(migrated_) / static_cast<double>(built_size_)
             : 0.0;
}

bool OnlineNuevoMatch::retrain_in_progress() const {
  std::lock_guard lk{wk_mu_};
  return retrain_requested_ || retrain_running_;
}

void OnlineNuevoMatch::retrain_now() { request_retrain(/*forced=*/true); }

void OnlineNuevoMatch::request_retrain(bool forced) {
  // Degraded mode suppresses auto-retrains: the backoff ladder already
  // burned max_retrain_failures attempts, so pressure-triggered requests
  // would spin CPU on a persistently failing train. Recovery is explicit —
  // retrain_now() (forced) still attempts, and a success clears the flag.
  if (!forced && degraded_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard lk{wk_mu_};
    if (stop_) return;
    retrain_requested_ = true;
    retrain_forced_ |= forced;
  }
  wk_cv_.notify_all();
}

void OnlineNuevoMatch::quiesce() const {
  std::unique_lock lk{wk_mu_};
  wk_cv_.wait(lk, [&] { return !retrain_requested_ && !retrain_running_; });
}

std::vector<Rule> OnlineNuevoMatch::compose_rules_locked() const {
  // The logical rule-set: live iSet rules + surviving base-remainder rules +
  // the churn delta. (The frozen nm's own rules() is NOT authoritative here:
  // in-place tombstones and layered updates supersede it.)
  std::vector<Rule> out;
  out.reserve(live_count_.load(std::memory_order_relaxed));
  for (const IsetIndex& is : gen_owner_->nm.isets()) {
    for (size_t i = 0; i < is.rules().size(); ++i) {
      if (is.alive(i)) out.push_back(is.rules()[i]);
    }
  }
  for (const Rule& r : base_rules_) {
    if (!erased_base_.contains(r.id)) out.push_back(r);
  }
  if (layer_owner_->churn != nullptr) {
    const auto& churn = layer_owner_->churn->rules;
    out.insert(out.end(), churn.begin(), churn.end());
  }
  return out;
}

void OnlineNuevoMatch::with_stable_view(
    const std::function<void(const NuevoMatch&)>& fn) const {
  // Compose an offline classifier equivalent to the live view: copies of the
  // iSets (tombstones included) + the layered remainder folded back into one
  // rule list. Writers are excluded for the duration, so the composition is
  // consistent; O(n) + the remainder rebuild, bounded even under sustained
  // churn (no quiesce).
  std::lock_guard lk{wmu_};
  std::vector<IsetIndex> isets_copy = gen_owner_->nm.isets();
  std::vector<Rule> rem;
  const std::vector<Rule>* churn =
      layer_owner_->churn != nullptr ? &layer_owner_->churn->rules : nullptr;
  rem.reserve(base_rules_.size() + (churn != nullptr ? churn->size() : 0));
  for (const Rule& r : base_rules_) {
    if (!erased_base_.contains(r.id)) rem.push_back(r);
  }
  if (churn != nullptr) rem.insert(rem.end(), churn->begin(), churn->end());
  NuevoMatch tmp{cfg_.base};
  tmp.restore(std::move(isets_copy), std::move(rem),
              /*erased_ids=*/{}, built_size_, migrated_);
  fn(tmp);
}

std::vector<uint64_t> OnlineNuevoMatch::shard_op_counts() const {
  std::vector<uint64_t> out(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i)
    out[i] = shards_[i]->ops.load(std::memory_order_relaxed);
  return out;
}

uint64_t OnlineNuevoMatch::update_ops() const {
  uint64_t total = 0;
  for (const uint64_t c : shard_op_counts()) total += c;
  return total;
}

size_t OnlineNuevoMatch::memory_bytes() const {
  const Pin v{*this};
  size_t bytes = v.g_->nm.memory_bytes();
  if (v.l_->base_override != nullptr) bytes += v.l_->base_override->memory_bytes();
  if (v.l_->churn != nullptr) bytes += v.l_->churn->rules.size() * sizeof(Rule);
  return bytes;
}

std::string OnlineNuevoMatch::name() const {
  const Pin v{*this};
  return "online-" + v.g_->nm.name();
}

void OnlineNuevoMatch::worker_loop() {
  for (;;) {
    bool forced = false;
    bool retry = false;
    {
      std::unique_lock lk{wk_mu_};
      wk_cv_.wait(lk, [&] { return retrain_requested_ || stop_; });
      // Backoff gate: a failed cycle's retry waits out its delay here
      // (retrain_requested_ stays true, so quiesce() keeps waiting through
      // the whole failure→retry→success sequence); an explicit
      // retrain_now() or shutdown breaks through immediately.
      while (!stop_ && !retrain_forced_ &&
             std::chrono::steady_clock::now() < backoff_until_) {
        wk_cv_.wait_until(lk, backoff_until_);
      }
      if (stop_) return;
      retrain_requested_ = false;
      forced = retrain_forced_;
      retrain_forced_ = false;
      retry = retrain_retry_;
      retrain_retry_ = false;
      retrain_running_ = true;
    }
    // Auto-triggered requests re-arm on every insert past the threshold, so
    // a burst overlapping a running retrain leaves a pending request whose
    // work the swap already absorbed (journal replay). Skip the redundant
    // seconds-long cycle unless the live pressure still warrants it; an
    // explicit retrain_now() always runs — and so does a backoff retry (the
    // failed cycle was warranted when triggered; its journal was dropped,
    // so current pressure alone under-reports the debt).
    CycleOutcome outcome = CycleOutcome::kCancelled;
    if (forced || retry || absorption() >= cfg_.retrain_threshold) {
      const uint64_t m_t0 = NM_METRICS_ENABLED ? telemetry::now_ns() : 0;
      outcome = retrain_cycle();
      if (NM_METRICS_ENABLED && outcome == CycleOutcome::kSwapped) {
        static telemetry::Counter& mc = telemetry::registry().counter(
            "nm_engine_retrains_total", "successful retrain swaps");
        static telemetry::Histogram& mh = telemetry::registry().histogram(
            "nm_engine_retrain_ns", "retrain cycle duration (swapped only)");
        mc.add(1);
        mh.record(telemetry::now_ns() - m_t0);
      }
    }
    {
      std::lock_guard lk{wk_mu_};
      retrain_running_ = false;
      if (outcome == CycleOutcome::kSwapped) {
        // Recovery: a successful swap clears the failure ladder, the
        // degraded flag, and the recorded error.
        retrain_failures_.store(0, std::memory_order_relaxed);
        degraded_.store(false, std::memory_order_release);
        backoff_ms_ = 0;
        backoff_until_ = {};
        last_error_.clear();
      } else if (outcome == CycleOutcome::kFailed) {
        const uint64_t k =
            retrain_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
        retrain_failures_total_.fetch_add(1, std::memory_order_relaxed);
        const auto cap =
            static_cast<uint64_t>(std::max(1, cfg_.max_retrain_failures));
        if (k >= cap) {
          // Degraded: stop burning CPU on a persistently failing train. The
          // old generation + churn delta keep serving correct answers;
          // request_retrain() suppresses further auto attempts until an
          // explicit retrain_now()/build()/adopt() recovers.
          degraded_.store(true, std::memory_order_release);
          backoff_ms_ = 0;
          backoff_until_ = {};
        } else {
          // Exponential backoff with seeded jitter: delay doubles per
          // consecutive failure (clamped to backoff_max_ms), then jitters
          // uniformly within [d/2, d] so co-failing engines desynchronize —
          // deterministically, from cfg_.backoff_seed.
          const int shift = static_cast<int>(std::min<uint64_t>(k - 1, 20));
          uint64_t d =
              std::min<uint64_t>(static_cast<uint64_t>(cfg_.backoff_initial_ms)
                                     << shift,
                                 cfg_.backoff_max_ms);
          if (d > 0) d = d / 2 + backoff_rng_.below(d / 2 + 1);
          backoff_ms_ = d;
          backoff_until_ =
              std::chrono::steady_clock::now() + std::chrono::milliseconds(d);
          retrain_requested_ = true;
          retrain_retry_ = true;
        }
      }
    }
    wk_cv_.notify_all();  // wake quiesce()rs / a publish_fresh() waiter
  }
}

OnlineNuevoMatch::CycleOutcome OnlineNuevoMatch::abandon_cycle(const char* what) {
  {
    std::lock_guard lk{wmu_};
    // journal_open_ false here means a concurrent build()/adopt() already
    // installed over this cycle: it is superseded, not failed — recording a
    // failure against the fresh install would be a lie.
    if (!journal_open_) return CycleOutcome::kCancelled;
    // The journals are dropped because every journaled update was also
    // applied to the live view — nothing is lost.
    journal_open_ = false;
    for (const auto& sh : shards_) sh->journal.clear();
    journal_depth_.store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard lk{wk_mu_};
    last_error_ = what;
  }
  notify_overload();  // the dropped journal freed capacity
  return CycleOutcome::kFailed;
}

OnlineNuevoMatch::CycleOutcome OnlineNuevoMatch::retrain_cycle() {
  // 1) Snapshot the logical rule-set and open the journals. Writers are
  //    excluded only for the duration of one composition pass. `prev` keeps
  //    the donor generation alive for the model-reuse scan during training
  //    (a concurrent build()/adopt() is excluded while a retrain runs, but
  //    the shared_ptr makes the lifetime local and obvious).
  std::shared_ptr<const Generation> prev;
  std::vector<Rule> snapshot;
  {
    std::lock_guard lk{wmu_};
    prev = gen_owner_;
    snapshot = compose_rules_locked();
    journal_open_ = true;
    for (const auto& sh : shards_) sh->journal.clear();
  }

  // 2) Train with no locks held — this is the seconds-long part, and the
  //    data path runs at full speed against the old generation throughout.
  //    iSets whose partitioned rule arrays are unchanged reuse the donor's
  //    trained model and certified error bounds outright (remainder-only
  //    churn retrains nothing — the sawtooth shrinks to a remainder
  //    rebuild). The donor scan reads only the immutable rule arrays, never
  //    the concurrently-flipped tombstone flags.
  auto fresh = std::make_shared<Generation>(cfg_.base);
  try {
    if (failpoint::should_fire(failpoint::kOnlineRetrain))
      throw std::runtime_error("failpoint: online.retrain");
    fresh->nm.build(snapshot, &prev->nm);
  } catch (const std::exception& e) {
    // Training failure keeps the old generation serving. The error is
    // preserved (count + message in health()), and the worker schedules a
    // backoff retry — see worker_loop.
    return abandon_cycle(e.what());
  }
  last_retrain_reused_.store(fresh->nm.reused_isets(), std::memory_order_relaxed);

  // 3) Replay the shard journals onto the fresh generation, then install
  //    it. Writers are excluded only while journals are DRAINED (a vector
  //    move) and for the final residue: the bulk replay runs with no lock
  //    held, in catch-up rounds — under heavy multi-writer churn the
  //    journal accumulated during training can rival the training time
  //    itself, and replaying it under the writer lock would lock every
  //    writer out for exactly that long (measured as a multi-writer
  //    throughput collapse). Correctness is unchanged: only this worker
  //    consumes journals, writers only append, and op seq is monotone in
  //    lock-acquisition order — so each drained batch sorts internally and
  //    follows every earlier batch. An update still lands either in a
  //    journal (replayed here) or on the fresh generation after the
  //    install — never lost, never duplicated. Readers are untouched
  //    throughout: in-flight lookups finish on the old generation, which
  //    the epoch machinery keeps alive until the last pinned reader exits.
  const auto drain_locked = [&]() -> std::vector<Op> {
    std::vector<Op> merged;
    for (const auto& sh : shards_) {
      merged.insert(merged.end(), sh->journal.begin(), sh->journal.end());
      sh->journal.clear();
    }
    journal_depth_.store(0, std::memory_order_relaxed);
    std::sort(merged.begin(), merged.end(),
              [](const Op& a, const Op& b) { return a.seq < b.seq; });
    return merged;
  };
  const auto replay = [&](const std::vector<Op>& ops) {
    for (const Op& op : ops) {
      if (failpoint::should_fire(failpoint::kOnlineReplay))
        throw std::runtime_error("failpoint: online.replay");
      if (op.kind == Op::Kind::kInsert) {
        fresh->nm.insert(op.rule);
      } else {
        fresh->nm.erase(op.id);
      }
    }
  };
  std::vector<Op> carry;  // drained but not yet replayed (always in seq order)
  try {
    for (int round = 0; round < 4; ++round) {
      {
        std::lock_guard lk{wmu_};
        // A concurrent build()/adopt() invalidates this cycle by resetting
        // journal_open_ (install_generation_locked): the snapshot predates
        // the explicit reset, so publishing it would resurrect pre-build
        // rules.
        if (!journal_open_) return CycleOutcome::kCancelled;
        carry = drain_locked();
      }
      notify_overload();  // the drain freed journal capacity
      if (carry.size() < 256) break;  // small enough to finish under the lock
      replay(carry);
      carry.clear();
    }
    {
      std::lock_guard lk{wmu_};
      if (!journal_open_) return CycleOutcome::kCancelled;
      replay(carry);            // the last drained batch, if the loop broke early
      replay(drain_locked());   // stragglers journaled since
      install_generation_locked(std::move(fresh), /*shard_ops=*/nullptr,
                                /*reset_counters=*/false);
    }
  } catch (const std::exception& e) {
    // A replay failure abandons the fresh generation exactly like a
    // training failure: the live view already holds every journaled update,
    // so dropping the journal loses nothing.
    return abandon_cycle(e.what());
  }
  notify_overload();  // the install reset the delta and the journal
  return CycleOutcome::kSwapped;
}

// --- health -----------------------------------------------------------------

EngineHealth OnlineNuevoMatch::health() const {
  EngineHealth h;
  h.degraded = degraded_.load(std::memory_order_acquire);
  h.generation = generations();
  h.retrain_failures = retrain_failures_.load(std::memory_order_relaxed);
  h.retrain_failures_total =
      retrain_failures_total_.load(std::memory_order_relaxed);
  h.journal_depth = journal_depth_.load(std::memory_order_relaxed);
  h.churn_rules = churn_size_.load(std::memory_order_relaxed);
  h.shed_ops = shed_ops_.load(std::memory_order_relaxed);
  h.absorption = absorption();  // takes wmu_ (released before wk_mu_ below)
  {
    std::lock_guard lk{wk_mu_};
    h.retrain_pending = retrain_requested_ || retrain_running_;
    // retrain_retry_ is armed by a failed cycle and cleared when the worker
    // begins the retry attempt — exactly the backoff window.
    h.in_backoff = retrain_retry_;
    h.backoff_ms = backoff_ms_;
    h.last_error = last_error_;
  }
  return h;
}

// --- overload control helpers ----------------------------------------------

size_t OnlineNuevoMatch::insert_room_locked() const {
  size_t room = SIZE_MAX;
  if (cfg_.max_churn_rules > 0) {
    const size_t used = churn_size_.load(std::memory_order_relaxed);
    room = used >= cfg_.max_churn_rules ? 0 : cfg_.max_churn_rules - used;
  }
  if (cfg_.max_journal_ops > 0 && journal_open_) {
    const size_t used = journal_depth_.load(std::memory_order_relaxed);
    room = std::min(room, used >= cfg_.max_journal_ops
                              ? size_t{0}
                              : cfg_.max_journal_ops - used);
  }
  return room;
}

bool OnlineNuevoMatch::approx_room() const noexcept {
  if (cfg_.max_churn_rules > 0 &&
      churn_size_.load(std::memory_order_relaxed) >= cfg_.max_churn_rules)
    return false;
  if (cfg_.max_journal_ops > 0 &&
      journal_depth_.load(std::memory_order_relaxed) >= cfg_.max_journal_ops)
    return false;
  return true;
}

void OnlineNuevoMatch::notify_overload() const {
  // The empty critical section orders the capacity-freeing stores (made
  // before this call) against a blocked writer's predicate check under
  // ov_mu_, closing the lost-wakeup window without holding ov_mu_ while
  // publishing.
  { std::lock_guard lk{ov_mu_}; }
  ov_cv_.notify_all();
}

}  // namespace nuevomatch
