#include "nuevomatch/online.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace nuevomatch {

OnlineNuevoMatch::OnlineNuevoMatch(OnlineConfig cfg) : cfg_(std::move(cfg)) {
  // An empty generation up front means match() never needs a null check.
  gen_ = std::make_shared<Generation>(cfg_.base);
  const int n_shards = std::clamp(cfg_.update_shards, 1, 256);
  shards_.reserve(static_cast<size_t>(n_shards));
  for (int i = 0; i < n_shards; ++i) shards_.push_back(std::make_unique<Shard>());
  worker_ = std::thread([this] { worker_loop(); });
}

OnlineNuevoMatch::~OnlineNuevoMatch() {
  {
    std::lock_guard lk{wk_mu_};
    stop_ = true;
  }
  wk_cv_.notify_all();
  worker_.join();
}

std::vector<std::unique_lock<std::mutex>> OnlineNuevoMatch::lock_all_shards() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sh : shards_) locks.emplace_back(sh->mu);
  return locks;
}

void OnlineNuevoMatch::build(std::span<const Rule> rules) {
  auto fresh = std::make_shared<Generation>(cfg_.base);
  // Train before cancelling the worker: the long part needs no exclusion.
  fresh->nm.build(rules);
  publish_fresh(std::move(fresh));
}

void OnlineNuevoMatch::adopt(NuevoMatch nm) {
  publish_fresh(std::make_shared<Generation>(std::move(nm)));
}

void OnlineNuevoMatch::adopt(NuevoMatch nm, std::span<const uint64_t> shard_ops) {
  std::vector<uint64_t> counts(shards_.size(), 0);
  if (shard_ops.size() == shards_.size()) {
    counts.assign(shard_ops.begin(), shard_ops.end());
  } else {
    // Shard count changed between save and load: id→shard assignment is
    // recomputed from the hash anyway, so only the aggregate count is
    // meaningful. Spread it evenly.
    uint64_t total = 0;
    for (const uint64_t c : shard_ops) total += c;
    const auto n = static_cast<uint64_t>(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i)
      counts[i] = total / n + (i < total % n ? 1 : 0);
  }
  publish_fresh(std::make_shared<Generation>(std::move(nm)), &counts);
}

void OnlineNuevoMatch::publish_fresh(std::shared_ptr<Generation> fresh,
                                     const std::vector<uint64_t>* shard_ops) {
  // Cancel any pending retrain and wait out a running one, so a stale
  // generation trained on pre-build rules can never swap over this one.
  {
    std::unique_lock lk{wk_mu_};
    retrain_requested_ = false;
    wk_cv_.wait(lk, [&] { return !retrain_running_; });
  }
  // A retrain requested between the wait above and the locks below loses
  // either way: its snapshot section runs after this swap (fresh rules), or
  // it already ran and the snapshot_open reset here discards it at replay.
  // Counter reset/install happens inside the same all-shard-lock section as
  // the publication, so a concurrent writer's op can never land between the
  // swap and the counter write (its count would be silently overwritten).
  const auto locks = lock_all_shards();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->journal.clear();
    shards_[i]->snapshot_open = false;
    shards_[i]->ops = shard_ops != nullptr ? (*shard_ops)[i] : 0;
  }
  publish(std::move(fresh));
}

MatchResult OnlineNuevoMatch::match(const Packet& p) const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.match(p);
}

MatchResult OnlineNuevoMatch::match_with_floor(const Packet& p,
                                               int32_t priority_floor) const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.match_with_floor(p, priority_floor);
}

void OnlineNuevoMatch::match_batch(std::span<const Packet> packets,
                                   std::span<MatchResult> out) const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  g->nm.match_batch(packets, out);
}

bool OnlineNuevoMatch::insert(const Rule& r) {
  Shard& sh = shard_for(r.id);
  double pressure = 0.0;
  {
    std::lock_guard sg{sh.mu};
    // Holding a shard lock pins the swap out (snapshot/swap/publish take ALL
    // shard locks), so the generation loaded here is live for the whole
    // critical section.
    const auto g = live();
    uint64_t seq = 0;
    {
      std::unique_lock lk{g->mu};
      if (!g->nm.insert(r)) return false;
      pressure = g->nm.update_pressure();
      // Sequenced under the generation lock: journal-merge order at swap
      // time is exactly the order the live generation absorbed the ops.
      seq = op_seq_.fetch_add(1, std::memory_order_relaxed);
    }
    ++sh.ops;
    if (sh.snapshot_open) sh.journal.push_back(Op{Op::Kind::kInsert, r, r.id, seq});
  }
  if (cfg_.auto_retrain && pressure >= cfg_.retrain_threshold)
    request_retrain(/*forced=*/false);
  return true;
}

bool OnlineNuevoMatch::erase(uint32_t rule_id) {
  Shard& sh = shard_for(rule_id);
  std::lock_guard sg{sh.mu};
  const auto g = live();
  uint64_t seq = 0;
  {
    std::unique_lock lk{g->mu};
    if (!g->nm.erase(rule_id)) return false;
    seq = op_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  ++sh.ops;
  if (sh.snapshot_open) sh.journal.push_back(Op{Op::Kind::kErase, Rule{}, rule_id, seq});
  return true;
}

double OnlineNuevoMatch::absorption() const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.update_pressure();
}

bool OnlineNuevoMatch::retrain_in_progress() const {
  std::lock_guard lk{wk_mu_};
  return retrain_requested_ || retrain_running_;
}

void OnlineNuevoMatch::retrain_now() { request_retrain(/*forced=*/true); }

void OnlineNuevoMatch::request_retrain(bool forced) {
  {
    std::lock_guard lk{wk_mu_};
    if (stop_) return;
    retrain_requested_ = true;
    retrain_forced_ |= forced;
  }
  wk_cv_.notify_all();
}

void OnlineNuevoMatch::quiesce() const {
  std::unique_lock lk{wk_mu_};
  wk_cv_.wait(lk, [&] { return !retrain_requested_ && !retrain_running_; });
}

void OnlineNuevoMatch::with_stable_view(
    const std::function<void(const NuevoMatch&)>& fn) const {
  const auto g = live();
  std::shared_lock lk{g->mu};  // excludes writers while fn reads
  fn(g->nm);
}

std::vector<uint64_t> OnlineNuevoMatch::shard_op_counts() const {
  std::vector<uint64_t> out(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard lk{shards_[i]->mu};
    out[i] = shards_[i]->ops;
  }
  return out;
}

uint64_t OnlineNuevoMatch::update_ops() const {
  uint64_t total = 0;
  for (const uint64_t c : shard_op_counts()) total += c;
  return total;
}

size_t OnlineNuevoMatch::memory_bytes() const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.memory_bytes();
}

size_t OnlineNuevoMatch::size() const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.size();
}

std::string OnlineNuevoMatch::name() const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return "online-" + g->nm.name();
}

void OnlineNuevoMatch::worker_loop() {
  for (;;) {
    bool forced = false;
    {
      std::unique_lock lk{wk_mu_};
      wk_cv_.wait(lk, [&] { return retrain_requested_ || stop_; });
      if (stop_) return;
      retrain_requested_ = false;
      forced = retrain_forced_;
      retrain_forced_ = false;
      retrain_running_ = true;
    }
    // Auto-triggered requests re-arm on every insert past the threshold, so
    // a burst overlapping a running retrain leaves a pending request whose
    // work the swap already absorbed (journal replay). Skip the redundant
    // seconds-long cycle unless the live pressure still warrants it; an
    // explicit retrain_now() always runs.
    if (forced || absorption() >= cfg_.retrain_threshold) retrain_cycle();
    {
      std::lock_guard lk{wk_mu_};
      retrain_running_ = false;
    }
    wk_cv_.notify_all();  // wake quiesce()rs
  }
}

void OnlineNuevoMatch::retrain_cycle() {
  // 1) Snapshot the logical rule-set and open every shard's journal. Writers
  //    are excluded only for the duration of one vector copy.
  std::vector<Rule> snapshot;
  {
    const auto locks = lock_all_shards();
    const auto g = live();
    std::shared_lock lk{g->mu};
    snapshot = g->nm.rules();
    for (const auto& sh : shards_) {
      sh->journal.clear();
      sh->snapshot_open = true;
    }
  }

  // 2) Train with no locks held — this is the seconds-long part, and the
  //    data path runs at full speed against the old generation throughout.
  auto fresh = std::make_shared<Generation>(cfg_.base);
  try {
    fresh->nm.build(snapshot);
  } catch (const std::exception&) {
    // Training failure keeps the old generation serving; the journals are
    // dropped because every journaled update was also applied to the live
    // generation — nothing is lost.
    const auto locks = lock_all_shards();
    for (const auto& sh : shards_) {
      sh->journal.clear();
      sh->snapshot_open = false;
    }
    return;
  }

  // 3) Merge the shard journals into global apply order and replay them onto
  //    the fresh generation, then publish it. Writers on every shard are
  //    excluded during the replay, so an update lands either in a shard
  //    journal (and is replayed here) or on the fresh generation after the
  //    swap — never lost, never duplicated. The merge is deterministic: Op
  //    seq is assigned under the generation lock, so sorting by it replays
  //    exactly the interleaving the live generation absorbed (ops on one
  //    rule-id additionally share a shard, so their order is fixed twice
  //    over). Readers are untouched: in-flight lookups finish on the old
  //    generation, which the shared_ptr refcount keeps alive until the last
  //    one drops it (the RCU grace period).
  {
    const auto locks = lock_all_shards();
    // A concurrent build()/adopt() invalidates this cycle by clearing
    // snapshot_open (publish_fresh): the snapshot predates the explicit
    // reset, so publishing it would resurrect pre-build rules. Discard.
    // The flags are set and cleared for all shards together, so checking
    // the first one is checking all of them.
    if (!shards_[0]->snapshot_open) return;
    std::vector<Op> merged;
    for (const auto& sh : shards_)
      merged.insert(merged.end(), sh->journal.begin(), sh->journal.end());
    std::sort(merged.begin(), merged.end(),
              [](const Op& a, const Op& b) { return a.seq < b.seq; });
    for (const Op& op : merged) {
      if (op.kind == Op::Kind::kInsert) {
        fresh->nm.insert(op.rule);
      } else {
        fresh->nm.erase(op.id);
      }
    }
    for (const auto& sh : shards_) {
      sh->journal.clear();
      sh->snapshot_open = false;
    }
    publish(std::move(fresh));
  }
}

}  // namespace nuevomatch
