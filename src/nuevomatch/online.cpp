#include "nuevomatch/online.hpp"

#include <exception>
#include <utility>

namespace nuevomatch {

OnlineNuevoMatch::OnlineNuevoMatch(OnlineConfig cfg) : cfg_(std::move(cfg)) {
  // An empty generation up front means match() never needs a null check.
  gen_ = std::make_shared<Generation>(cfg_.base);
  worker_ = std::thread([this] { worker_loop(); });
}

OnlineNuevoMatch::~OnlineNuevoMatch() {
  {
    std::lock_guard lk{wk_mu_};
    stop_ = true;
  }
  wk_cv_.notify_all();
  worker_.join();
}

void OnlineNuevoMatch::build(std::span<const Rule> rules) {
  auto fresh = std::make_shared<Generation>(cfg_.base);
  // Train before cancelling the worker: the long part needs no exclusion.
  fresh->nm.build(rules);
  publish_fresh(std::move(fresh));
}

void OnlineNuevoMatch::adopt(NuevoMatch nm) {
  publish_fresh(std::make_shared<Generation>(std::move(nm)));
}

void OnlineNuevoMatch::publish_fresh(std::shared_ptr<Generation> fresh) {
  // Cancel any pending retrain and wait out a running one, so a stale
  // generation trained on pre-build rules can never swap over this one.
  {
    std::unique_lock lk{wk_mu_};
    retrain_requested_ = false;
    wk_cv_.wait(lk, [&] { return !retrain_running_; });
  }
  std::lock_guard ug{upd_mu_};
  journal_.clear();
  snapshot_taken_ = false;
  publish(std::move(fresh));
}

MatchResult OnlineNuevoMatch::match(const Packet& p) const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.match(p);
}

MatchResult OnlineNuevoMatch::match_with_floor(const Packet& p,
                                               int32_t priority_floor) const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.match_with_floor(p, priority_floor);
}

void OnlineNuevoMatch::match_batch(std::span<const Packet> packets,
                                   std::span<MatchResult> out) const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  g->nm.match_batch(packets, out);
}

bool OnlineNuevoMatch::insert(const Rule& r) {
  double pressure = 0.0;
  {
    std::lock_guard ug{upd_mu_};
    const auto g = live();
    {
      std::unique_lock lk{g->mu};
      if (!g->nm.insert(r)) return false;
      pressure = g->nm.update_pressure();
    }
    if (snapshot_taken_)
      journal_.push_back(Op{Op::Kind::kInsert, r, r.id});
  }
  if (cfg_.auto_retrain && pressure >= cfg_.retrain_threshold)
    request_retrain(/*forced=*/false);
  return true;
}

bool OnlineNuevoMatch::erase(uint32_t rule_id) {
  std::lock_guard ug{upd_mu_};
  const auto g = live();
  {
    std::unique_lock lk{g->mu};
    if (!g->nm.erase(rule_id)) return false;
  }
  if (snapshot_taken_)
    journal_.push_back(Op{Op::Kind::kErase, Rule{}, rule_id});
  return true;
}

double OnlineNuevoMatch::absorption() const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.update_pressure();
}

bool OnlineNuevoMatch::retrain_in_progress() const {
  std::lock_guard lk{wk_mu_};
  return retrain_requested_ || retrain_running_;
}

void OnlineNuevoMatch::retrain_now() { request_retrain(/*forced=*/true); }

void OnlineNuevoMatch::request_retrain(bool forced) {
  {
    std::lock_guard lk{wk_mu_};
    if (stop_) return;
    retrain_requested_ = true;
    retrain_forced_ |= forced;
  }
  wk_cv_.notify_all();
}

void OnlineNuevoMatch::quiesce() const {
  std::unique_lock lk{wk_mu_};
  wk_cv_.wait(lk, [&] { return !retrain_requested_ && !retrain_running_; });
}

void OnlineNuevoMatch::with_stable_view(
    const std::function<void(const NuevoMatch&)>& fn) const {
  const auto g = live();
  std::shared_lock lk{g->mu};  // excludes writers while fn reads
  fn(g->nm);
}

size_t OnlineNuevoMatch::memory_bytes() const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.memory_bytes();
}

size_t OnlineNuevoMatch::size() const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return g->nm.size();
}

std::string OnlineNuevoMatch::name() const {
  const auto g = live();
  std::shared_lock lk{g->mu};
  return "online-" + g->nm.name();
}

void OnlineNuevoMatch::worker_loop() {
  for (;;) {
    bool forced = false;
    {
      std::unique_lock lk{wk_mu_};
      wk_cv_.wait(lk, [&] { return retrain_requested_ || stop_; });
      if (stop_) return;
      retrain_requested_ = false;
      forced = retrain_forced_;
      retrain_forced_ = false;
      retrain_running_ = true;
    }
    // Auto-triggered requests re-arm on every insert past the threshold, so
    // a burst overlapping a running retrain leaves a pending request whose
    // work the swap already absorbed (journal replay). Skip the redundant
    // seconds-long cycle unless the live pressure still warrants it; an
    // explicit retrain_now() always runs.
    if (forced || absorption() >= cfg_.retrain_threshold) retrain_cycle();
    {
      std::lock_guard lk{wk_mu_};
      retrain_running_ = false;
    }
    wk_cv_.notify_all();  // wake quiesce()rs
  }
}

void OnlineNuevoMatch::retrain_cycle() {
  // 1) Snapshot the logical rule-set and open the journal. Writers are
  //    excluded only for the duration of one vector copy.
  std::vector<Rule> snapshot;
  {
    std::lock_guard ug{upd_mu_};
    const auto g = live();
    std::shared_lock lk{g->mu};
    snapshot = g->nm.rules();
    journal_.clear();
    snapshot_taken_ = true;
  }

  // 2) Train with no locks held — this is the seconds-long part, and the
  //    data path runs at full speed against the old generation throughout.
  auto fresh = std::make_shared<Generation>(cfg_.base);
  try {
    fresh->nm.build(snapshot);
  } catch (const std::exception&) {
    // Training failure keeps the old generation serving; the journal is
    // dropped because every journaled update was also applied to the live
    // generation — nothing is lost.
    std::lock_guard ug{upd_mu_};
    journal_.clear();
    snapshot_taken_ = false;
    return;
  }

  // 3) Replay updates that raced the training onto the fresh generation,
  //    then publish it. Writers are excluded during the replay, so an
  //    update lands either in the journal (and is replayed here) or on the
  //    fresh generation after the swap — never lost, never duplicated.
  //    Readers are untouched: in-flight lookups finish on the old
  //    generation, which the shared_ptr refcount keeps alive until the last
  //    one drops it (the RCU grace period).
  {
    std::lock_guard ug{upd_mu_};
    // A concurrent build()/adopt() invalidates this cycle by clearing
    // snapshot_taken_ (publish_fresh): the snapshot predates the explicit
    // reset, so publishing it would resurrect pre-build rules. Discard.
    if (!snapshot_taken_) return;
    for (const Op& op : journal_) {
      if (op.kind == Op::Kind::kInsert) {
        fresh->nm.insert(op.rule);
      } else {
        fresh->nm.erase(op.id);
      }
    }
    journal_.clear();
    snapshot_taken_ = false;
    publish(std::move(fresh));
  }
}

}  // namespace nuevomatch
