// Epoch-based reclamation (EBR) for the online engine's wait-free read path.
//
// The problem this solves: lookups must be able to dereference the live
// generation (and its copy-on-write update layer) without taking any lock,
// while writers publish successors and eventually free the superseded
// objects. The classic answer in read-mostly network datapaths is RCU /
// epoch reclamation: readers announce "I am reading, and the global epoch
// was E when I started" in a slot private to them; writers stamp every
// retired object with the epoch at retirement and free it only once every
// announced reader epoch has advanced past the stamp.
//
// Reader protocol (Domain::enter / Domain::exit, or the RAII Guard):
//
//   1. load the global epoch E (acquire);
//   2. claim a slot by CASing kQuiescent -> E into a cache-line-padded
//      atomic. The CAS is a seq_cst RMW, which is the store-load barrier
//      the protocol needs: the slot announcement is globally visible
//      BEFORE any subsequent load of a protected pointer;
//   3. read protected pointers (the caller's acquire loads) and use them;
//   4. store kQuiescent (release) back into the slot.
//
// Writer protocol (under the caller's writer lock — Domain is not itself
// multi-writer-safe for retirement bookkeeping, only the slots are):
//
//   1. unpublish: store the successor pointer (seq_cst);
//   2. stamp = retire_stamp()  — fetch_add on the global epoch; the value
//      BEFORE the bump stamps everything retired in this commit;
//   3. push the superseded object(s) onto a RetireList with that stamp;
//   4. collect(min_active()): free every item whose stamp is strictly
//      below the smallest epoch any in-critical-section reader announced
//      (quiescent slots don't block).
//
// Why this is safe (the Dekker pairing): the reader's slot CAS and pointer
// load, and the writer's pointer store and slot scan, are all seq_cst. If
// the writer's scan does not observe a reader's announcement, then in the
// seq_cst total order the reader's CAS came after the scan's load, so the
// reader's pointer load (later still) observes the successor — the retired
// object is unreachable from that reader. If the scan does observe the
// announcement, the announced epoch is <= the stamp and the item stays on
// the list. A reader that parks inside a lookup only delays reclamation
// (memory), never correctness; critical sections here are one lookup or one
// batch, so the backlog is bounded.
//
// Slots are claimed per-entry with a thread-local hint, so a steady-state
// reader CASes the same slot every time (its own cache line — no sharing,
// no registration lifetime to manage, and a domain can be destroyed and a
// new one constructed at the same address without stale-hint hazards: the
// hint is only an index, and a mismatched or out-of-range slot is simply
// re-claimed from the start).
//
// The slot array GROWS ON DEMAND in fixed chunks (a serving tier with
// hundreds of threads sharing one classifier was the ROADMAP case): slots
// live in kChunkSlots-sized chunks reached through a fixed directory of
// atomic chunk pointers, installed densely in order by whichever reader
// first finds every existing slot busy. Existing slots NEVER move — a
// chunk, once installed, is freed only by the Domain destructor — so a
// concurrent exit() or writer scan can keep using any slot index it ever
// observed. Growth is a plain `new` + one CAS (losers free their chunk and
// re-probe); after the burst that forced it, the capacity remains, so
// oversubscription is a one-time allocation, not a steady-state spin. Only
// past kMaxChunks * kChunkSlots slots (4096 — far beyond any real thread
// count) does enter() degrade to the old spin-until-free behavior.
//
// The Dekker pairing extends to the directory: a reader's chunk-install
// CAS and slot CAS are both seq_cst, and the writer's scan loads chunk
// pointers and slots seq_cst. If the scan saw a null chunk pointer, the
// install CAS — and every slot CAS inside that chunk — comes later in the
// seq_cst total order, so that reader's protected loads observe the
// writer's publication; if it saw the chunk, it scanned its slots.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/failpoint.hpp"

namespace nuevomatch::epoch {

inline constexpr uint64_t kQuiescent = ~uint64_t{0};

class Domain {
 public:
  /// Slots per directory chunk. Two cache lines of directory pointers
  /// (kMaxChunks) cap the registered-reader population at 4096 — the
  /// grow-on-demand range; past that, enter() falls back to spinning.
  static constexpr size_t kChunkSlots = 64;
  static constexpr size_t kMaxChunks = 64;
  /// Slots available without any growth (chunk 0 is pre-installed so the
  /// common case never allocates).
  static constexpr size_t kInitialSlots = kChunkSlots;

  Domain() { chunks_[0].store(new Chunk, std::memory_order_relaxed); }
  ~Domain() {
    for (auto& c : chunks_) delete c.load(std::memory_order_relaxed);
  }
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Announce a read-side critical section; returns the claimed slot index.
  /// Lock-free: a full probe round that finds every slot busy installs a
  /// new chunk instead of waiting for another reader to leave.
  [[nodiscard]] size_t enter() const noexcept {
    static thread_local uint32_t hint = 0;
    for (;;) {
      const size_t cap =
          n_chunks_.load(std::memory_order_acquire) * kChunkSlots;
      // One probe round over the installed slots, starting at the hint (a
      // steady-state reader re-claims its private cache line immediately;
      // a hint from a previous, larger Domain wraps back into range).
      for (size_t a = 0; a < cap; ++a) {
        const size_t s = (hint + a) % cap;
        // Re-read the epoch per attempt: a stale (smaller) announcement is
        // merely conservative, but there is no reason to publish one.
        const uint64_t e = epoch_.load(std::memory_order_acquire);
        uint64_t expected = kQuiescent;
        if (chunk(s)->slots[s % kChunkSlots].v.compare_exchange_strong(
                expected, e, std::memory_order_seq_cst)) {
          hint = static_cast<uint32_t>(s);
          return s;
        }
      }
      grow();  // every installed slot busy: add capacity (no-op at the cap,
               // which degrades this loop to the pre-growth spin)
    }
  }

  void exit(size_t slot) const noexcept {
    chunk(slot)->slots[slot % kChunkSlots].v.store(kQuiescent,
                                                   std::memory_order_release);
  }

  /// Writer side: bump the global epoch; the returned value stamps the
  /// objects retired by this commit.
  [[nodiscard]] uint64_t retire_stamp() noexcept {
    return epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Smallest epoch announced by any in-critical-section reader (quiescent
  /// slots don't count); kQuiescent when no reader is inside. Scans the
  /// directory with seq_cst loads — the writer half of the Dekker pairing
  /// (a chunk installed after a null-pointer load cannot hold a reader
  /// that misses this writer's publication; see the header comment).
  [[nodiscard]] uint64_t min_active() const noexcept {
    uint64_t min = kQuiescent;
    for (const auto& cp : chunks_) {
      const Chunk* c = cp.load(std::memory_order_seq_cst);
      if (c == nullptr) break;  // chunks install densely in order
      for (const PaddedSlot& s : c->slots) {
        const uint64_t e = s.v.load(std::memory_order_seq_cst);
        if (e < min) min = e;
      }
    }
    return min;
  }

  /// Installed capacity (tests / telemetry).
  [[nodiscard]] size_t capacity() const noexcept {
    return n_chunks_.load(std::memory_order_acquire) * kChunkSlots;
  }

 private:
  struct alignas(64) PaddedSlot {
    std::atomic<uint64_t> v{kQuiescent};
  };
  struct Chunk {
    PaddedSlot slots[kChunkSlots];
  };

  [[nodiscard]] Chunk* chunk(size_t slot) const noexcept {
    return chunks_[slot / kChunkSlots].load(std::memory_order_relaxed);
  }

  void grow() const noexcept {
    const size_t n = n_chunks_.load(std::memory_order_acquire);
    if (n >= kMaxChunks) return;
    // Injected chunk-allocation failure (failpoint "epoch.grow"): return
    // without installing, exactly as if capacity were exhausted — enter()
    // degrades to the pre-growth spin-until-free loop and recovers the
    // moment the point is disarmed. Graceful, never fatal.
    if (failpoint::should_fire(failpoint::kEpochGrow)) return;
    Chunk* fresh = new Chunk;  // alloc failure terminates; acceptable here
    Chunk* expected = nullptr;
    if (!chunks_[n].compare_exchange_strong(expected, fresh,
                                            std::memory_order_seq_cst)) {
      delete fresh;  // another reader grew first; use theirs
    }
    // Either way chunks_[n] is now installed; publish the new capacity
    // (CAS so racing losers can publish when the winner hasn't yet).
    size_t expect_n = n;
    n_chunks_.compare_exchange_strong(expect_n, n + 1,
                                      std::memory_order_acq_rel);
  }

  mutable std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  mutable std::atomic<size_t> n_chunks_{1};
  std::atomic<uint64_t> epoch_{1};
};

/// RAII read-side critical section.
class Guard {
 public:
  explicit Guard(const Domain& d) noexcept : d_(&d), slot_(d.enter()) {}
  ~Guard() { d_->exit(slot_); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  const Domain* d_;
  size_t slot_;
};

/// Deferred-free list of epoch-stamped objects. NOT thread-safe: the online
/// engine mutates it only under its writer lock. Objects are type-erased
/// shared_ptrs, so one list can retire generations, layers, and engines.
class RetireList {
 public:
  void retire(std::shared_ptr<const void> obj, uint64_t stamp) {
    items_.push_back(Item{stamp, std::move(obj)});
  }

  /// Free every item retired before any still-announced reader entered.
  void collect(uint64_t min_active_epoch) {
    size_t kept = 0;
    for (Item& it : items_) {
      if (it.stamp >= min_active_epoch) items_[kept++] = std::move(it);
    }
    items_.resize(kept);
  }

  void drain() { items_.clear(); }
  [[nodiscard]] size_t size() const noexcept { return items_.size(); }

 private:
  struct Item {
    uint64_t stamp;
    std::shared_ptr<const void> obj;
  };
  std::vector<Item> items_;
};

}  // namespace nuevomatch::epoch
