#include "nuevomatch/parallel.hpp"

namespace nuevomatch {

BatchParallelEngine::BatchParallelEngine(const NuevoMatch& nm) : static_nm_(&nm) {
  worker_ = std::thread([this] { worker_loop(); });
}

BatchParallelEngine::BatchParallelEngine(const OnlineNuevoMatch& online)
    : online_(&online) {
  worker_ = std::thread([this] { worker_loop(); });
}

BatchParallelEngine::~BatchParallelEngine() {
  {
    std::lock_guard lock{mu_};
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void BatchParallelEngine::worker_loop() {
  std::unique_lock lock{mu_};
  for (;;) {
    cv_.wait(lock, [this] { return job_ready_ || stop_; });
    if (stop_) return;
    job_ready_ = false;
    const std::span<const Packet> batch = pending_;
    const NuevoMatch* nm = job_nm_;
    const OnlineNuevoMatch::Pin* pin = job_pin_;
    worker_out_.assign(batch.size(), MatchResult{});
    lock.unlock();
    // Remainder path runs on the worker core (no early termination possible:
    // the iSet result is being computed concurrently on the other core). In
    // online mode the caller's pin supplies the consistent remainder view
    // (base or copy-on-write override + churn delta) and its epoch slot
    // keeps everything reachable; the job mutex above carries the
    // happens-before edge from pin acquisition to these reads.
    if (pin != nullptr) {
      for (size_t i = 0; i < batch.size(); ++i)
        worker_out_[i] = pin->remainder_match(batch[i]);
    } else {
      for (size_t i = 0; i < batch.size(); ++i)
        worker_out_[i] = nm->remainder().match(batch[i]);
    }
    lock.lock();
    job_done_ = true;
    cv_.notify_all();
  }
}

void BatchParallelEngine::classify(std::span<const Packet> batch,
                                   std::span<MatchResult> out) {
  if (online_ != nullptr) {
    // Per-batch generation pinning: resolve the live generation + layer
    // once (wait-free), then run the entire batch — both cores — against
    // that view. Writers keep committing while the batch runs; this batch
    // is immune (layers are immutable, the pinned objects are
    // reclamation-protected), and the next classify() call picks up
    // whatever has been published since.
    const OnlineNuevoMatch::Pin pin = online_->pin();
    run_batch(pin.nm(), &pin, batch, out);
    return;
  }
  run_batch(*static_nm_, nullptr, batch, out);
}

void BatchParallelEngine::run_batch(const NuevoMatch& nm,
                                    const OnlineNuevoMatch::Pin* pin,
                                    std::span<const Packet> batch,
                                    std::span<MatchResult> out) {
  {
    std::lock_guard lock{mu_};
    pending_ = batch;
    job_nm_ = &nm;
    job_pin_ = pin;
    job_ready_ = true;
    job_done_ = false;
  }
  cv_.notify_all();

  // iSet path on the calling core, overlapping the worker — batched through
  // the SIMD pipeline (one predict_batch per iSet per tile instead of a
  // scalar predict per packet per iSet).
  nm.match_isets_batch(batch, out);

  std::unique_lock lock{mu_};
  cv_.wait(lock, [this] { return job_done_; });
  for (size_t i = 0; i < batch.size(); ++i) {
    if (worker_out_[i].beats(out[i])) out[i] = worker_out_[i];
  }
}

}  // namespace nuevomatch
