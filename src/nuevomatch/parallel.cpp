#include "nuevomatch/parallel.hpp"

namespace nuevomatch {

BatchParallelEngine::BatchParallelEngine(const NuevoMatch& nm) : static_nm_(&nm) {
  worker_ = std::thread([this] { worker_loop(); });
}

BatchParallelEngine::BatchParallelEngine(const OnlineNuevoMatch& online)
    : online_(&online) {
  worker_ = std::thread([this] { worker_loop(); });
}

BatchParallelEngine::~BatchParallelEngine() {
  {
    std::lock_guard lock{mu_};
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void BatchParallelEngine::worker_loop() {
  std::unique_lock lock{mu_};
  for (;;) {
    cv_.wait(lock, [this] { return job_ready_ || stop_; });
    if (stop_) return;
    job_ready_ = false;
    const std::span<const Packet> batch = pending_;
    const NuevoMatch* nm = job_nm_;
    worker_out_.assign(batch.size(), MatchResult{});
    lock.unlock();
    // Remainder path runs on the worker core (no early termination possible:
    // the iSet result is being computed concurrently on the other core).
    for (size_t i = 0; i < batch.size(); ++i)
      worker_out_[i] = nm->remainder().match(batch[i]);
    lock.lock();
    job_done_ = true;
    cv_.notify_all();
  }
}

void BatchParallelEngine::classify(std::span<const Packet> batch,
                                   std::span<MatchResult> out) {
  if (online_ != nullptr) {
    // Per-batch generation pinning: resolve the live generation through the
    // RCU swap once, then run the entire batch — both cores — against it.
    // The pin's reader lock excludes writers for the batch duration (so the
    // worker core reads an immutable index without taking any lock itself),
    // and its shared_ptr keeps the generation alive even if a retrain
    // publishes a successor mid-batch. Journal replay keeps this correct
    // across the swap: the next pin resolves the successor, which already
    // contains every update this batch's generation absorbed.
    const OnlineNuevoMatch::Pin pin = online_->pin();
    classify_on(pin.nm(), batch, out);
    return;
  }
  classify_on(*static_nm_, batch, out);
}

void BatchParallelEngine::classify_on(const NuevoMatch& nm,
                                      std::span<const Packet> batch,
                                      std::span<MatchResult> out) {
  {
    std::lock_guard lock{mu_};
    pending_ = batch;
    job_nm_ = &nm;
    job_ready_ = true;
    job_done_ = false;
  }
  cv_.notify_all();

  // iSet path on the calling core, overlapping the worker — batched through
  // the SIMD pipeline (one predict_batch per iSet per tile instead of a
  // scalar predict per packet per iSet).
  nm.match_isets_batch(batch, out);

  std::unique_lock lock{mu_};
  cv_.wait(lock, [this] { return job_done_; });
  for (size_t i = 0; i < batch.size(); ++i) {
    if (worker_out_[i].beats(out[i])) out[i] = worker_out_[i];
  }
}

}  // namespace nuevomatch
