#include "nuevomatch/parallel.hpp"

namespace nuevomatch {

BatchParallelEngine::BatchParallelEngine(const NuevoMatch& nm) : nm_(nm) {
  worker_ = std::thread([this] { worker_loop(); });
}

BatchParallelEngine::~BatchParallelEngine() {
  {
    std::lock_guard lock{mu_};
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void BatchParallelEngine::worker_loop() {
  std::unique_lock lock{mu_};
  for (;;) {
    cv_.wait(lock, [this] { return job_ready_ || stop_; });
    if (stop_) return;
    job_ready_ = false;
    const std::span<const Packet> batch = pending_;
    worker_out_.assign(batch.size(), MatchResult{});
    lock.unlock();
    // Remainder path runs on the worker core (no early termination possible:
    // the iSet result is being computed concurrently on the other core).
    for (size_t i = 0; i < batch.size(); ++i)
      worker_out_[i] = nm_.remainder().match(batch[i]);
    lock.lock();
    job_done_ = true;
    cv_.notify_all();
  }
}

void BatchParallelEngine::classify(std::span<const Packet> batch,
                                   std::span<MatchResult> out) {
  {
    std::lock_guard lock{mu_};
    pending_ = batch;
    job_ready_ = true;
    job_done_ = false;
  }
  cv_.notify_all();

  // iSet path on the calling core, overlapping the worker.
  for (size_t i = 0; i < batch.size(); ++i) out[i] = nm_.match_isets(batch[i]);

  std::unique_lock lock{mu_};
  cv_.wait(lock, [this] { return job_done_; });
  for (size_t i = 0; i < batch.size(); ++i) {
    if (worker_out_[i].beats(out[i])) out[i] = worker_out_[i];
  }
}

}  // namespace nuevomatch
