// Online rule-update subsystem (paper §3.9, "Handling rule-set updates"):
// NuevoMatch stays practical under churn by absorbing inserted rules into
// the remainder classifier and periodically retraining the RQ-RMI index in
// the background. OnlineNuevoMatch packages that deployment loop:
//
//   * insert()/erase() route updates into the live generation — additions
//     are absorbed by the remainder engine, deletions tombstone the owning
//     iSet — and track the absorption ratio;
//   * when the ratio crosses `retrain_threshold`, a background worker
//     retrains a fresh NuevoMatch on a snapshot of the rule-set and
//     atomically swaps it in (RCU-style shared_ptr publication) without
//     stalling match()/match_batch();
//   * updates that arrive while a retrain is running are journaled and
//     replayed onto the fresh generation just before the swap, so no update
//     is ever lost to the race between snapshot and publication.
//
// Concurrency model (see DESIGN.md "Update path" for the full rationale):
//
//   * the live generation is a shared_ptr swapped atomically (via the
//     std::atomic_load/atomic_store free functions — see live() below for
//     why not std::atomic<std::shared_ptr>); readers load it and keep the
//     generation alive for the duration of their lookup (the shared_ptr
//     refcount is the RCU grace period — a superseded generation is
//     destroyed when its last in-flight reader drops it);
//   * each generation carries a shared_mutex: lookups take it shared,
//     insert()/erase() take it unique (updates mutate the remainder's hash
//     tables and iSet tombstones in place). Retraining takes NO lock while
//     training — only the brief snapshot and swap sections serialize with
//     writers via the update mutex, which readers never touch;
//   * lock order is always update-mutex → generation-mutex; readers take
//     only the latter, writers take both, the worker takes them in the same
//     order. No cycle, no reader-induced stall of the swap.
//
// The certified §3.3 error margins are untouched by all of this: between
// swaps the trained index is immutable (tombstones only mask validation
// results), and a swap installs a freshly certified model.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "nuevomatch/nuevomatch.hpp"

namespace nuevomatch {

struct OnlineConfig {
  /// Configuration of every generation (initial build and each retrain).
  /// base.remainder_factory must build an updatable engine (e.g. TupleMerge
  /// or CutSplit) or insert() will fail.
  NuevoMatchConfig base;

  /// Absorption ratio — rules routed to the remainder since the last swap
  /// over the rules the live index was trained on (update_pressure()) — at
  /// which a background retrain is triggered. The paper sizes this so the
  /// remainder stays small enough to keep the speedup (§5: throughput
  /// degrades roughly linearly in the migrated fraction, Figure 7).
  double retrain_threshold = 0.05;

  /// Trigger retrains automatically from insert(). When false, the caller
  /// schedules retrains itself via retrain_now() (e.g. off-peak).
  bool auto_retrain = true;
};

class OnlineNuevoMatch final : public Classifier {
 public:
  explicit OnlineNuevoMatch(OnlineConfig cfg);
  ~OnlineNuevoMatch() override;
  OnlineNuevoMatch(const OnlineNuevoMatch&) = delete;
  OnlineNuevoMatch& operator=(const OnlineNuevoMatch&) = delete;

  /// Synchronous initial train. NOT safe against concurrent updates or
  /// lookups — call once at setup (a pending background retrain is cancelled
  /// and waited out first, so build() can also reset a long-running system).
  void build(std::span<const Rule> rules) override;

  /// Install an already-built classifier as the live generation without
  /// retraining (the serializer's load path). Same caveats as build().
  void adopt(NuevoMatch nm);

  // --- data path (safe from any number of threads) ------------------------
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;
  /// Batched lookup; out.size() must equal packets.size(). The whole batch
  /// runs against one generation — a swap mid-batch affects only later
  /// batches.
  void match_batch(std::span<const Packet> packets, std::span<MatchResult> out) const;

  // --- update path (safe from any number of threads) ----------------------
  [[nodiscard]] bool supports_updates() const override { return true; }
  bool insert(const Rule& r) override;
  bool erase(uint32_t rule_id) override;

  // --- retraining ---------------------------------------------------------
  /// Absorption ratio of the live generation (== its update_pressure()).
  [[nodiscard]] double absorption() const;
  /// True while the background worker is training or swapping.
  [[nodiscard]] bool retrain_in_progress() const;
  /// Number of generations published so far (initial build() counts).
  [[nodiscard]] uint64_t generations() const noexcept {
    return generation_count_.load(std::memory_order_relaxed);
  }
  /// Request a background retrain now (idempotent while one is pending).
  void retrain_now();
  /// Block until no retrain is pending or running. Tests, benchmarks and
  /// serialization use this to reach a stable state.
  void quiesce() const;

  /// Run `fn` against an update-stable view of the live generation: writers
  /// are excluded while fn runs, so the view is consistent even with
  /// concurrent churn or a retrain in flight (journaled updates are already
  /// applied to the live generation, so nothing pending is missing from the
  /// view). Deliberately does NOT quiesce — under sustained churn a retrain
  /// may always be pending, and a checkpoint must stay bounded.
  /// Serialization entry point.
  void with_stable_view(const std::function<void(const NuevoMatch&)>& fn) const;

  // --- Classifier plumbing ------------------------------------------------
  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override;
  [[nodiscard]] std::string name() const override;

 private:
  /// One immutable-between-swaps trained index plus its reader/writer gate.
  struct Generation {
    NuevoMatch nm;
    /// Lookups shared, insert()/erase() unique. Never held across training.
    mutable std::shared_mutex mu;
    explicit Generation(NuevoMatchConfig c) : nm(std::move(c)) {}
    explicit Generation(NuevoMatch m) : nm(std::move(m)) {}
  };

  /// Journal entry for updates concurrent with a retrain.
  struct Op {
    enum class Kind : uint8_t { kInsert, kErase };
    Kind kind;
    Rule rule;    // kInsert payload
    uint32_t id;  // kErase payload
  };

  // Atomic shared_ptr access via the std::atomic_load/store free functions
  // rather than std::atomic<std::shared_ptr>: libstdc++ 12's _Sp_atomic
  // releases its reader spin-lock with a relaxed RMW, which ThreadSanitizer
  // (correctly, per the formal model) reports as a read/write race against
  // the next store — GCC 13 papers over it with TSAN annotations. The free
  // functions use a mutex pool, which is modeled exactly and costs about
  // the same on this lock-per-lookup design. Semantics are identical:
  // seq_cst load/store of the pointer, refcounted lifetime.
  [[nodiscard]] std::shared_ptr<Generation> live() const {
    return std::atomic_load(&gen_);
  }
  void publish(std::shared_ptr<Generation> fresh) {
    std::atomic_store(&gen_, std::move(fresh));
    generation_count_.fetch_add(1, std::memory_order_relaxed);
  }
  void worker_loop();
  void retrain_cycle();
  void publish_fresh(std::shared_ptr<Generation> fresh);
  void request_retrain(bool forced);

  OnlineConfig cfg_;
  std::shared_ptr<Generation> gen_;
  std::atomic<uint64_t> generation_count_{0};

  /// Serializes writers and the snapshot/swap sections; readers never take
  /// it. Guards journal_ and snapshot_taken_.
  mutable std::mutex upd_mu_;
  std::vector<Op> journal_;
  bool snapshot_taken_ = false;

  /// Worker signalling (guards the three flags below).
  mutable std::mutex wk_mu_;
  mutable std::condition_variable wk_cv_;
  bool retrain_requested_ = false;
  bool retrain_forced_ = false;  // explicit retrain_now(): never skipped
  bool retrain_running_ = false;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace nuevomatch
