// Online rule-update subsystem (paper §3.9, "Handling rule-set updates"):
// NuevoMatch stays practical under churn by absorbing inserted rules into
// the remainder side and periodically retraining the RQ-RMI index in the
// background. OnlineNuevoMatch packages that deployment loop:
//
//   * insert()/erase() — and their batched forms insert_batch()/
//     erase_batch(), which amortize one writer-lock acquisition and one
//     copy-on-write commit over a controller's whole update burst — route
//     updates into the live generation's update layer and track the
//     absorption ratio;
//   * when the ratio crosses `retrain_threshold`, a background worker
//     retrains a fresh NuevoMatch on a snapshot of the rule-set (reusing
//     trained models for iSets whose rule arrays are unchanged) and
//     atomically swaps it in without stalling match()/match_batch();
//   * updates that arrive while a retrain is running are journaled and
//     replayed onto the fresh generation just before the swap, so no update
//     is ever lost to the race between snapshot and publication;
//   * the journal is sharded by rule-id hash (`update_shards`) with
//     per-shard atomic op counters (serializer v3 telemetry).
//
// Concurrency model (see DESIGN.md "Update path" for the full rationale).
// The read path is WAIT-FREE between swaps — no lock, no shared_ptr
// refcount, no contended cache line:
//
//   * readers announce themselves in a cache-line-padded epoch slot (the
//     registered-reader array in nuevomatch/epoch.hpp — one CAS on a line
//     private to the thread in steady state), load the current generation
//     with a single acquire load, and classify against it; exit is one
//     release store. Writers NEVER wait for readers and readers never wait
//     for writers — the rwlock reader-preference starvation documented by
//     bench_updates §(d) in PR 3 is gone by construction;
//   * the generation's trained state is immutable between swaps. Updates
//     publish through two reader-safe channels only: (1) iSet deletions
//     flip an ATOMIC tombstone byte in place (monotone 1→0; a concurrent
//     reader sees the rule either alive or dead, both linearizable), and
//     (2) everything else lands in an immutable copy-on-write *layer* —
//     a small delta engine holding churn inserts plus, after a base-
//     remainder deletion, a replacement remainder engine. A commit builds
//     the successor layer, publishes it with one release store, and
//     retires the predecessor through epoch reclamation: it is freed only
//     once every reader epoch has advanced past the commit;
//   * writers serialize on one writer-only mutex (the generation lock of
//     PR 3, now never touched by the data path). A batch commit takes it
//     once, allocates its global op-sequence range with one atomic
//     fetch_add, fans journal entries out to the id-hashed shards (plain
//     vectors — the writer lock already serializes writers, so the
//     per-shard mutexes of PR 3 are gone), and performs ONE copy-on-write
//     publication for the whole burst;
//   * the retrain worker snapshots the logical rule-set under the writer
//     lock (one composition pass), trains with no locks held, then
//     reacquires the writer lock, replays the journals, and publishes the
//     fresh generation the same way — readers migrate at their next epoch
//     enter, and the superseded generation is reclaimed once the last
//     straggler exits.
//
// The certified §3.3 error margins are untouched by all of this: between
// swaps the trained index is immutable (tombstones only mask validation
// results), and a swap installs a freshly certified model — or reuses a
// prior certified (model, array) pair verbatim when the array is unchanged.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "nuevomatch/epoch.hpp"
#include "nuevomatch/nuevomatch.hpp"

namespace nuevomatch {

/// Writer-side behavior when an insert would push the churn delta or the
/// retrain journal past its configured cap (OnlineConfig::max_churn_rules /
/// max_journal_ops).
enum class OverloadPolicy : uint8_t {
  /// Reject the overflowing inserts: insert() returns false, insert_batch()
  /// accepts a prefix; every shed op is counted in health().shed_ops. The
  /// controller sees the refusal immediately and can retry after the next
  /// swap drains the delta.
  kShed,
  /// Block the writer (lock-free readers are unaffected) until a commit
  /// frees capacity — a swap resets the delta, an erase shrinks it, a
  /// journal drain empties the shards — or `overload_block_timeout_ms`
  /// elapses, after which the remaining ops are shed as above. Under this
  /// policy one insert_batch() may commit in several slices as capacity
  /// frees up, so burst-atomic visibility is NOT guaranteed when the cap
  /// is hit (each slice is still commit-atomic).
  kBlock,
};

struct OnlineConfig {
  /// Configuration of every generation (initial build and each retrain).
  /// base.remainder_factory must build an updatable engine (e.g. TupleMerge
  /// or CutSplit): journal replay at swap time applies updates to the fresh
  /// generation's remainder in place. (Between swaps, updates never touch
  /// the live remainder — they go to the copy-on-write layer — so the
  /// data-path requirement is only on the replay path.)
  NuevoMatchConfig base;

  /// Absorption ratio — rules routed to the update layer since the last
  /// swap over the rules the live index was trained on — at which a
  /// background retrain is triggered. The paper sizes this so the delta
  /// stays small enough to keep the speedup (§5: throughput degrades
  /// roughly linearly in the migrated fraction, Figure 7).
  double retrain_threshold = 0.05;

  /// Trigger retrains automatically from insert(). When false, the caller
  /// schedules retrains itself via retrain_now() (e.g. off-peak).
  bool auto_retrain = true;

  /// Journal/telemetry shards: journal entries hash by rule-id onto
  /// `update_shards` journal+counter slots (serializer v3 round-trips the
  /// per-shard counters). Writers serialize on the writer lock regardless —
  /// the shards exist for deterministic replay bookkeeping and checkpoint
  /// compatibility, not writer-side locking. Clamped to [1, 256].
  int update_shards = 4;

  // --- fault tolerance (DESIGN.md "Failure model") -------------------------
  /// Consecutive retrain failures after which the engine enters *degraded*
  /// mode: it keeps serving the old generation + churn delta correctly, but
  /// stops auto-retrying (an explicit retrain_now() still attempts, and a
  /// success clears the flag). Clamped to >= 1.
  int max_retrain_failures = 5;
  /// Exponential-backoff schedule between failed retrain attempts: attempt
  /// k (1-based) retries after jitter(min(backoff_initial_ms << (k-1),
  /// backoff_max_ms)), where jitter picks uniformly from [d/2, d] out of a
  /// stream seeded with `backoff_seed` — deterministic for a given seed, so
  /// fault drills replay exactly.
  uint32_t backoff_initial_ms = 10;
  uint32_t backoff_max_ms = 2000;
  uint64_t backoff_seed = 0x9E3779B9u;

  // --- overload control ----------------------------------------------------
  /// Cap on the churn delta (update-layer insert count). 0 = unbounded
  /// (the pre-PR-6 behavior). Erases always pass — they shrink state.
  size_t max_churn_rules = 0;
  /// Cap on journal depth (ops queued across all shards while a retrain is
  /// in flight). 0 = unbounded. Only inserts are capped, as above.
  size_t max_journal_ops = 0;
  /// What a writer does when an insert hits either cap.
  OverloadPolicy overload_policy = OverloadPolicy::kShed;
  /// kBlock only: how long a writer waits for capacity before shedding.
  uint32_t overload_block_timeout_ms = 100;
};

/// One consistent-enough snapshot of the engine's fault/overload state —
/// the operator surface the pipeline's Classifier element and the churn
/// harness consume. Counters are sampled individually (relaxed atomics plus
/// one short writer/worker lock hold each), so a snapshot taken mid-commit
/// can mix adjacent states; every field is monotone or self-describing, so
/// that is benign for health reporting.
struct EngineHealth {
  /// True after max_retrain_failures consecutive retrain failures (or an
  /// initial-build fallback): serving continues on the old generation +
  /// churn delta, auto-retrain is suppressed, operator action is expected.
  bool degraded = false;
  /// Generations published so far (mirrors generations()).
  uint64_t generation = 0;
  /// Consecutive retrain failures since the last successful swap (resets
  /// to zero on success).
  uint64_t retrain_failures = 0;
  /// All retrain failures over the engine's lifetime (never resets).
  uint64_t retrain_failures_total = 0;
  /// what() of the most recent retrain/build failure; empty after a
  /// successful swap (the satellite fix for the silently-swallowed
  /// exception in retrain_cycle()).
  std::string last_error;
  /// A retrain is requested or currently running.
  bool retrain_pending = false;
  /// A failed retrain is waiting out its backoff delay before retrying.
  bool in_backoff = false;
  /// The delay of the currently scheduled (or most recent) backoff wait.
  uint64_t backoff_ms = 0;
  /// Ops queued in the retrain journal right now (0 when no retrain is in
  /// flight).
  size_t journal_depth = 0;
  /// Rules in the published churn delta right now.
  size_t churn_rules = 0;
  /// Inserts rejected by overload control since construction.
  uint64_t shed_ops = 0;
  /// Absorption ratio (mirrors absorption()).
  double absorption = 0.0;

  /// The one-glance operator verdict.
  [[nodiscard]] bool ok() const noexcept {
    return !degraded && retrain_failures == 0;
  }
};

class OnlineNuevoMatch final : public Classifier {
 private:
  struct Layer;       // immutable copy-on-write update overlay
  struct Generation;  // frozen trained index + published layer pointer

 public:
  explicit OnlineNuevoMatch(OnlineConfig cfg);
  ~OnlineNuevoMatch() override;
  OnlineNuevoMatch(const OnlineNuevoMatch&) = delete;
  OnlineNuevoMatch& operator=(const OnlineNuevoMatch&) = delete;

  /// Synchronous initial train. NOT safe against concurrent updates or
  /// lookups — call once at setup (a pending background retrain is cancelled
  /// and waited out first, so build() can also reset a long-running system).
  void build(std::span<const Rule> rules) override;

  /// Install an already-built classifier as the live generation without
  /// retraining (the serializer's load path). Same caveats as build().
  void adopt(NuevoMatch nm);
  /// Serializer v3 load path: adopt + reinstate the per-shard update
  /// counters captured at save time. A checkpoint taken with a different
  /// shard count redistributes evenly — the total is the contract, the
  /// split is telemetry.
  void adopt(NuevoMatch nm, std::span<const uint64_t> shard_ops);

  // --- data path (wait-free; safe from any number of threads) -------------
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;
  /// Batched lookup; out.size() must equal packets.size(). The whole batch
  /// runs against one pinned view — a swap mid-batch affects only later
  /// batches.
  void match_batch(std::span<const Packet> packets, std::span<MatchResult> out) const;

  /// An epoch-pinned, consistent view of one generation + one update layer.
  /// While a Pin is alive neither can be reclaimed (the pin's epoch slot
  /// blocks the writer's retire protocol) and the layer's contents cannot
  /// change (layers are immutable; commits publish successors the pin does
  /// not observe). Unlike the PR 3 rwlock pin, holding one does NOT stall
  /// writers — it only delays memory reclamation — so pins are cheap to
  /// hold for a batch. Concurrent iSet tombstone flips remain visible
  /// through a pin (they are in-place and atomic); every existing
  /// batch==scalar invariant is preserved because both paths read the same
  /// flags. This is how the parallel engine gets per-batch generation
  /// pinning (DESIGN.md "Update path").
  class Pin {
   public:
    /// The pinned generation's frozen trained index (iSets + base
    /// remainder). NOTE: lookups against nm() alone ignore the update
    /// layer; use match()/match_batch()/remainder_match() for the full
    /// online answer.
    [[nodiscard]] const NuevoMatch& nm() const noexcept { return g_->nm; }
    /// Sequence number of the pinned generation (1 = first publication).
    [[nodiscard]] uint64_t generation() const noexcept { return g_->seq; }

    /// Full online lookup against the pinned view (iSets + remainder +
    /// update layer), identical to OnlineNuevoMatch::match resolved at pin
    /// time.
    [[nodiscard]] MatchResult match(const Packet& p) const;
    /// Batched form; element-for-element identical to match().
    void match_batch(std::span<const Packet> packets,
                     std::span<MatchResult> out) const;
    /// The remainder half only (base or its layer override, merged with the
    /// churn delta, no floor) — the parallel engine's worker core runs this
    /// while the calling core runs nm().match_isets_batch.
    [[nodiscard]] MatchResult remainder_match(const Packet& p) const;

    ~Pin() = default;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    friend class OnlineNuevoMatch;
    // Both protected loads are seq_cst: the epoch protocol's Dekker
    // argument (epoch.hpp) needs them ordered after the slot CAS in the
    // seq_cst total order, so a writer whose slot scan missed this reader
    // is guaranteed the reader observes its publications. (On x86 a
    // seq_cst load is a plain load — only stores/RMWs pay.)
    explicit Pin(const OnlineNuevoMatch& o)
        : guard_(o.epochs_),
          g_(o.gen_pub_.load(std::memory_order_seq_cst)),
          l_(g_->layer.load(std::memory_order_seq_cst)) {}
    epoch::Guard guard_;
    const Generation* g_;
    const Layer* l_;
  };
  [[nodiscard]] Pin pin() const { return Pin{*this}; }

  // --- update path (safe from any number of threads) ----------------------
  [[nodiscard]] bool supports_updates() const override { return true; }
  bool insert(const Rule& r) override;
  bool erase(uint32_t rule_id) override;
  /// Batched writer commits: one writer-lock acquisition, one op-sequence
  /// range, ONE copy-on-write publication for the whole burst — the
  /// amortization that makes bulk controller pushes cheap. Returns the
  /// number of accepted ops (duplicates / unknown ids are skipped, exactly
  /// like their scalar counterparts). Visibility is batch-atomic for
  /// lookups that pin after the commit.
  size_t insert_batch(std::span<const Rule> rules);
  size_t erase_batch(std::span<const uint32_t> rule_ids);

  // --- retraining ---------------------------------------------------------
  /// Absorption ratio of the live generation (update-layer inserts over the
  /// rules the index was trained on).
  [[nodiscard]] double absorption() const;
  /// True while the background worker is training or swapping.
  [[nodiscard]] bool retrain_in_progress() const;
  /// Number of generations published so far (initial build() counts).
  [[nodiscard]] uint64_t generations() const noexcept {
    return generation_count_.load(std::memory_order_relaxed);
  }
  /// iSet models the last background retrain reused instead of training
  /// (remainder-only churn reuses all of them — the retrain sawtooth
  /// shrinks to the remainder rebuild).
  [[nodiscard]] size_t last_retrain_reused_isets() const noexcept {
    return last_retrain_reused_.load(std::memory_order_relaxed);
  }
  /// Request a background retrain now (idempotent while one is pending).
  /// Breaks through a backoff wait, and is the operator's recovery path out
  /// of degraded mode: a successful forced retrain clears the flag.
  void retrain_now();
  /// Fault/overload snapshot (see EngineHealth). Safe from any thread;
  /// takes the writer and worker locks briefly (never nested), so it is a
  /// control-plane call, not a data-path one.
  [[nodiscard]] EngineHealth health() const;
  /// The configuration this engine was constructed with (immutable after
  /// construction). The pipeline scheduler's retrain maintenance task
  /// reads the absorption threshold through this.
  [[nodiscard]] const OnlineConfig& config() const noexcept { return cfg_; }
  /// Block until no retrain is pending or running. Tests, benchmarks and
  /// serialization use this to reach a stable state.
  void quiesce() const;

  /// Run `fn` against an update-stable composition of the live view:
  /// writers are excluded while fn runs, and the composed classifier folds
  /// the update layer back in (churn inserts in the remainder rule-set,
  /// tombstones re-applied), so the view round-trips through the serializer
  /// exactly. Deliberately does NOT quiesce — under sustained churn a
  /// retrain may always be pending, and a checkpoint must stay bounded.
  /// Serialization entry point.
  void with_stable_view(const std::function<void(const NuevoMatch&)>& fn) const;

  // --- cache coherence ----------------------------------------------------
  /// Priority bands for dependency-aware cache invalidation. The rule
  /// priority range of the live generation is split into kCoherenceBands
  /// equal-width bands (computed at install time); kCoherenceCatchAll is the
  /// extra band that cached MISS decisions live in (a miss can only be
  /// changed by an insert, never by an erase).
  static constexpr int kCoherenceBands = 16;
  static constexpr int kCoherenceCatchAll = kCoherenceBands;  // index 16

  /// Monotone stamp bumped (release) AFTER every completed mutation becomes
  /// reader-visible: each insert/erase commit (copy-on-write layer publish
  /// and/or in-place iSet tombstone flips) and each generation install
  /// (build/adopt/retrain swap). A decision cache in front of this engine
  /// (pipeline::FlowCache) reads the stamp BEFORE classifying a missed
  /// packet and stores it with the cached decision (plus the decision's
  /// priority band); a lookup serves the entry only while no commit that
  /// could have changed decisions in that band has bumped past the stored
  /// stamp — i.e. while coherence_band_mark(band) <= stored stamp.
  ///
  /// Why that is coherent, per band: an acquire read returning stamp S means
  /// every mutation whose release-bump is <= S happened-before the read, so
  /// the classification that follows sees all of them. A commit AFTER the
  /// read bumps the global counter past S and marks the bands it could have
  /// affected with the post-bump value (> S):
  ///   * an INSERT of rule r can only change a cached decision d when r
  ///     beats d, i.e. r.priority < d.priority — so it marks r's band and
  ///     every WORSE band (a suffix), plus the catch-all (a miss can become
  ///     a hit);
  ///   * an ERASE of rule r can only change a cached decision d when d IS r
  ///     (erasing a rule the packet didn't match leaves its best match
  ///     intact) — so it marks exactly r's band, and never the catch-all;
  ///   * a generation INSTALL (build/adopt/retrain swap) marks every band —
  ///     the band map itself may move, so everything older is conservatively
  ///     dead.
  /// A cached decision in band b with stamp S is therefore provably current
  /// whenever coherence_band_mark(b) <= S: every commit that could have
  /// changed it has a mark in band b, and all such marks are <= S, so they
  /// all happened-before the stamp read that preceded the classification.
  /// Commits in other bands may be arbitrarily newer — they provably cannot
  /// change this decision. The only overlap is a lookup racing the mutating
  /// call itself, which is linearized before it — exactly the guarantee a
  /// lock-free lookup racing erase() gives without a cache. (DESIGN.md
  /// "Pipeline" has the full memory-ordering rationale, including why the
  /// band-map republish at install time cannot race a band computation into
  /// a stale serve.)
  [[nodiscard]] uint64_t coherence_stamp() const noexcept {
    return coherence_.load(std::memory_order_acquire);
  }

  /// The band a rule priority falls in under the CURRENT band map
  /// ([lo, lo+width) -> 0, clamped at both ends). Callers caching a MISS
  /// must use kCoherenceCatchAll instead — a miss has no priority.
  [[nodiscard]] int coherence_band(int32_t priority) const noexcept {
    const uint64_t m = band_map_.load(std::memory_order_relaxed);
    const auto width = static_cast<uint32_t>(m);
    if (width == 0) return 0;
    const auto lo = static_cast<int32_t>(static_cast<uint32_t>(m >> 32));
    const int64_t off = static_cast<int64_t>(priority) - lo;
    if (off < 0) return 0;
    const int64_t b = off / width;
    return b >= kCoherenceBands ? kCoherenceBands - 1 : static_cast<int>(b);
  }

  /// Post-bump global counter value of the last commit that could have
  /// changed decisions in `band` (0 <= band <= kCoherenceCatchAll). An entry
  /// (band b, stamp S) is still current iff coherence_band_mark(b) <= S.
  [[nodiscard]] uint64_t coherence_band_mark(int band) const noexcept {
    return band_marks_[static_cast<size_t>(band)].load(std::memory_order_acquire);
  }

  // --- shard introspection -------------------------------------------------
  [[nodiscard]] int update_shards() const noexcept {
    return static_cast<int>(shards_.size());
  }
  /// Applied updates routed through each shard since the last build()/
  /// adopt() (telemetry; serialized by save_online so churn accounting
  /// survives a checkpoint — build() and plain adopt() reset to zero, the
  /// checkpoint-loading adopt() reinstates the saved counts). Lock-free.
  [[nodiscard]] std::vector<uint64_t> shard_op_counts() const;
  /// Total applied updates across all shards.
  [[nodiscard]] uint64_t update_ops() const;

  // --- Classifier plumbing ------------------------------------------------
  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override {
    return live_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string name() const override;

 private:
  /// Immutable churn delta: every rule inserted since the last swap, sorted
  /// by (priority, id) — best first, LinearSearch order. Published
  /// copy-on-write per commit: one reserve + one merge pass, O(delta +
  /// burst) with memcpy-class constants, deliberately NOT a pointer-based
  /// engine — a flat array is the only structure whose per-commit copy
  /// stays cheap when a preempted reader parks mid-pin for a whole
  /// scheduler slice (which on a loaded single core is the common case, so
  /// any grace-period-gated in-place scheme degrades to cloning anyway).
  /// Lookups scan with the caller's running best as a floor: a packet
  /// already matched by a better base rule exits at element 0; the
  /// unfloored worst case is O(delta), bounded by retrain_threshold.
  struct ChurnList {
    std::vector<Rule> rules;
    [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                               int32_t floor) const noexcept {
      for (const Rule& r : rules) {
        if (r.priority >= floor) break;  // sorted: nothing later can beat it
        if (r.matches(p)) return MatchResult{static_cast<int32_t>(r.id), r.priority};
      }
      return MatchResult{};
    }
  };

  /// Immutable update overlay. A commit never mutates the published layer —
  /// it builds a successor from the writer's pending state and publishes it
  /// with one release store; readers hold whichever layer they pinned.
  struct Layer {
    /// Replacement for the generation's base remainder engine after a
    /// base-remainder deletion; null = use the generation's own.
    std::shared_ptr<const Classifier> base_override;
    /// The churn delta since the last swap; null while no churn is pending
    /// (the common fast path skips the whole probe).
    std::shared_ptr<const ChurnList> churn;
  };

  /// One published generation: a frozen trained index plus the current
  /// update layer. nm is never structurally mutated after publication; the
  /// only in-place writes are the iSets' atomic tombstone bytes.
  struct Generation {
    NuevoMatch nm;
    std::atomic<const Layer*> layer{nullptr};
    uint64_t seq = 0;
    explicit Generation(NuevoMatchConfig c) : nm(std::move(c)) {}
    explicit Generation(NuevoMatch m) : nm(std::move(m)) {}
  };

  /// Journal entry for updates concurrent with a retrain.
  struct Op {
    enum class Kind : uint8_t { kInsert, kErase };
    Kind kind;
    Rule rule;     // kInsert payload
    uint32_t id;   // kErase payload
    uint64_t seq;  // global apply order (assigned under the writer lock)
  };

  /// One journal/telemetry shard. The journal vector is guarded by the
  /// writer lock; the op counter is atomic so shard_op_counts() (and the
  /// serializer) never block behind a writer.
  struct Shard {
    std::vector<Op> journal;
    std::atomic<uint64_t> ops{0};
  };

  /// Where a live rule-id currently resides (writer-side routing state).
  enum class Loc : uint8_t { kIset, kBaseRemainder, kChurn };
  /// live_loc_ value: residence + the rule's priority, kept so erase commits
  /// can report WHICH coherence band they invalidate (an erase only changes
  /// answers whose cached decision IS the erased rule — same band).
  struct LiveInfo {
    Loc loc;
    int32_t priority;
  };

  [[nodiscard]] Shard& shard_for(uint32_t rule_id) const {
    // Fibonacci multiplicative hash: controller-assigned sequential ids
    // spread across shards instead of marching through them in lockstep.
    const uint64_t h = (static_cast<uint64_t>(rule_id) * 0x9E3779B97F4A7C15ull) >> 32;
    return *shards_[h % shards_.size()];
  }

  // Writer-side commit machinery; all *_locked functions require wmu_.
  bool insert_locked(const Rule& r, bool& churn_dirty);
  /// `bands` accumulates the coherence-band bitmask this erase invalidates.
  bool erase_locked(uint32_t rule_id, bool& churn_dirty, bool& base_dirty,
                    uint32_t& bands);
  /// Bump the global coherence counter once and mark every band in `bands`
  /// (bit b = band b, bit kCoherenceCatchAll = the miss band) with the
  /// post-bump value. Must run AFTER the commit is reader-visible.
  void bump_coherence(uint32_t bands) noexcept;
  void publish_layer_locked(bool churn_dirty, bool base_dirty);
  void journal_locked(Op op);
  [[nodiscard]] std::shared_ptr<const Classifier> rebuild_base_locked() const;
  [[nodiscard]] std::vector<Rule> compose_rules_locked() const;
  void install_generation_locked(std::shared_ptr<Generation> fresh,
                                 const std::vector<uint64_t>* shard_ops,
                                 bool reset_counters);

  /// How a retrain cycle ended. kFailed feeds the retry/backoff/degraded
  /// machinery; kCancelled (a concurrent build()/adopt() superseded the
  /// cycle, or pressure subsided) is not a failure.
  enum class CycleOutcome : uint8_t { kSwapped, kFailed, kCancelled };

  void worker_loop();
  [[nodiscard]] CycleOutcome retrain_cycle();
  /// Failure path out of retrain_cycle(): close + clear the journal, record
  /// `what` as the last error. Returns kCancelled instead when a concurrent
  /// install already closed the journal (the cycle was moot, not broken).
  [[nodiscard]] CycleOutcome abandon_cycle(const char* what);
  /// build()/adopt(): cancel pending retrains, install `fresh` as the live
  /// generation and reset the whole update path (journals, layer, counters —
  /// per-shard op counters set to `shard_ops` or zeroed when null; failure/
  /// backoff state cleared — a fresh install is a clean slate).
  void publish_fresh(std::shared_ptr<Generation> fresh,
                     const std::vector<uint64_t>* shard_ops = nullptr);
  void request_retrain(bool forced);

  /// How many more inserts overload control admits right now (SIZE_MAX when
  /// unbounded). Requires wmu_.
  [[nodiscard]] size_t insert_room_locked() const;
  /// Approximate room check from atomics only — the kBlock wait predicate
  /// (the admitting slice re-checks authoritatively under wmu_).
  [[nodiscard]] bool approx_room() const noexcept;
  /// Wake writers blocked on overload capacity. Call WITHOUT wmu_ held,
  /// after a commit that may have freed capacity (swap, erase, drain).
  void notify_overload() const;

  OnlineConfig cfg_;

  // --- reader-visible publication state -----------------------------------
  /// Registered-reader epoch slots (one padded cache line each) + the
  /// global epoch — the wait-free read path's only shared state.
  mutable epoch::Domain epochs_;
  std::atomic<const Generation*> gen_pub_{nullptr};
  std::atomic<uint64_t> coherence_{1};  // see coherence_stamp()
  /// Per-band last-invalidation marks (see coherence_band_mark()). Index
  /// kCoherenceCatchAll is the miss band; installs mark all of them.
  std::array<std::atomic<uint64_t>, kCoherenceBands + 1> band_marks_{};
  /// Packed band map: (uint32)lo << 32 | (uint32)width, recomputed at each
  /// generation install from the installed rules' priority range and stored
  /// BEFORE the install's release bump — so a stamp read that admits
  /// post-install entries also proves visibility of the new map, and every
  /// pre-install entry is dead regardless of which map stamped its band.
  std::atomic<uint64_t> band_map_{0};
  std::atomic<uint64_t> generation_count_{0};
  std::atomic<size_t> live_count_{0};
  std::atomic<size_t> last_retrain_reused_{0};

  // --- writer state (guarded by wmu_ unless noted) ------------------------
  /// The writer-only generation lock: serializes insert/erase/batch commits,
  /// snapshot composition, journal replay and publication. Lookups never
  /// touch it.
  mutable std::mutex wmu_;
  std::shared_ptr<Generation> gen_owner_;        // owns what gen_pub_ points at
  std::shared_ptr<const Layer> layer_owner_;     // owns what gen->layer points at
  epoch::RetireList retired_;
  std::unordered_map<uint32_t, LiveInfo> live_loc_;  // id → residence+priority
  std::vector<Rule> base_rules_;                 // base-remainder rules at swap
  std::unordered_set<uint32_t> erased_base_;     // base-remainder ids erased since
  std::vector<Rule> pending_inserts_;            // this commit's churn adds
  std::vector<uint32_t> pending_churn_erases_;   // this commit's churn removals
  size_t built_size_ = 0;   // rules the live index was trained on
  size_t migrated_ = 0;     // inserts absorbed since the last swap
  bool journal_open_ = false;
  std::atomic<uint64_t> op_seq_{0};
  std::vector<std::unique_ptr<Shard>> shards_;

  // --- fault/overload telemetry (atomics: health() reads them lock-free) --
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> retrain_failures_{0};        // consecutive
  std::atomic<uint64_t> retrain_failures_total_{0};  // lifetime
  std::atomic<uint64_t> shed_ops_{0};
  /// Mirrors the shard journals' total size (maintained under wmu_, read by
  /// approx_room()/health() without it).
  std::atomic<size_t> journal_depth_{0};
  /// Mirrors the published churn delta's size, same discipline.
  std::atomic<size_t> churn_size_{0};

  /// Overload wait channel (kBlock). Leaf lock: taken with no other lock
  /// held by waiters; notifiers touch it only via notify_overload() after
  /// releasing wmu_.
  mutable std::mutex ov_mu_;
  mutable std::condition_variable ov_cv_;

  /// Worker signalling (guards the flags below plus the backoff schedule
  /// and the last-error string).
  mutable std::mutex wk_mu_;
  mutable std::condition_variable wk_cv_;
  bool retrain_requested_ = false;
  bool retrain_forced_ = false;  // explicit retrain_now(): never skipped
  bool retrain_running_ = false;
  bool stop_ = false;
  /// A failed cycle re-armed itself: the next attempt runs regardless of
  /// absorption (the failed cycle was warranted when triggered) after
  /// waiting out backoff_until_.
  bool retrain_retry_ = false;
  uint64_t backoff_ms_ = 0;
  std::chrono::steady_clock::time_point backoff_until_{};
  Rng backoff_rng_{1};
  std::string last_error_;
  std::thread worker_;
};

}  // namespace nuevomatch
