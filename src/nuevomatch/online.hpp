// Online rule-update subsystem (paper §3.9, "Handling rule-set updates"):
// NuevoMatch stays practical under churn by absorbing inserted rules into
// the remainder classifier and periodically retraining the RQ-RMI index in
// the background. OnlineNuevoMatch packages that deployment loop:
//
//   * insert()/erase() route updates into the live generation — additions
//     are absorbed by the remainder engine, deletions tombstone the owning
//     iSet — and track the absorption ratio;
//   * when the ratio crosses `retrain_threshold`, a background worker
//     retrains a fresh NuevoMatch on a snapshot of the rule-set and
//     atomically swaps it in (RCU-style shared_ptr publication) without
//     stalling match()/match_batch();
//   * updates that arrive while a retrain is running are journaled and
//     replayed onto the fresh generation just before the swap, so no update
//     is ever lost to the race between snapshot and publication;
//   * the update path is sharded by rule-id hash (`update_shards`): each
//     shard has its own lock, journal, and op counter, so writer threads on
//     different shards never contend with each other on the journal path —
//     only on the brief in-place mutation of the live generation.
//
// Concurrency model (see DESIGN.md "Update path" for the full rationale):
//
//   * the live generation is a shared_ptr swapped atomically (via the
//     std::atomic_load/atomic_store free functions — see live() below for
//     why not std::atomic<std::shared_ptr>); readers load it and keep the
//     generation alive for the duration of their lookup (the shared_ptr
//     refcount is the RCU grace period — a superseded generation is
//     destroyed when its last in-flight reader drops it). pin() exposes
//     the same mechanism to callers that need several lookups against ONE
//     generation — the parallel engine pins once per batch;
//   * each generation carries a shared_mutex: lookups take it shared,
//     insert()/erase() take it unique (updates mutate the remainder's hash
//     tables and iSet tombstones in place). Retraining takes NO lock while
//     training — only the brief snapshot and swap sections serialize with
//     writers via the shard locks, which readers never touch;
//   * lock order is always shard-mutexes (ascending index) → generation
//     mutex; readers take only the latter, writers take their one shard
//     lock then the generation lock, the snapshot/swap sections take ALL
//     shard locks then the generation lock. No cycle, no reader-induced
//     stall of the swap. Holding any shard lock pins the swap out, which is
//     what lets a writer treat live() as stable across its critical section;
//   * journaled ops carry a global sequence number assigned under the
//     generation lock, so the per-shard journals merge into exactly the
//     order the live generation absorbed them (deterministic replay; ops on
//     the same rule-id land on the same shard and stay ordered twice over).
//
// The certified §3.3 error margins are untouched by all of this: between
// swaps the trained index is immutable (tombstones only mask validation
// results), and a swap installs a freshly certified model.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "nuevomatch/nuevomatch.hpp"

namespace nuevomatch {

struct OnlineConfig {
  /// Configuration of every generation (initial build and each retrain).
  /// base.remainder_factory must build an updatable engine (e.g. TupleMerge
  /// or CutSplit) or insert() will fail.
  NuevoMatchConfig base;

  /// Absorption ratio — rules routed to the remainder since the last swap
  /// over the rules the live index was trained on (update_pressure()) — at
  /// which a background retrain is triggered. The paper sizes this so the
  /// remainder stays small enough to keep the speedup (§5: throughput
  /// degrades roughly linearly in the migrated fraction, Figure 7).
  double retrain_threshold = 0.05;

  /// Trigger retrains automatically from insert(). When false, the caller
  /// schedules retrains itself via retrain_now() (e.g. off-peak).
  bool auto_retrain = true;

  /// Writer shards: updates hash by rule-id onto `update_shards` independent
  /// lock+journal pairs, so multi-writer churn scales instead of serializing
  /// on one update mutex. Clamped to [1, 256]. One shard reproduces the
  /// single-writer-mutex behavior exactly.
  int update_shards = 4;
};

class OnlineNuevoMatch final : public Classifier {
 private:
  struct Generation;  // defined below; named here so Pin can refer to it

 public:
  explicit OnlineNuevoMatch(OnlineConfig cfg);
  ~OnlineNuevoMatch() override;
  OnlineNuevoMatch(const OnlineNuevoMatch&) = delete;
  OnlineNuevoMatch& operator=(const OnlineNuevoMatch&) = delete;

  /// Synchronous initial train. NOT safe against concurrent updates or
  /// lookups — call once at setup (a pending background retrain is cancelled
  /// and waited out first, so build() can also reset a long-running system).
  void build(std::span<const Rule> rules) override;

  /// Install an already-built classifier as the live generation without
  /// retraining (the serializer's load path). Same caveats as build().
  void adopt(NuevoMatch nm);
  /// Serializer v3 load path: adopt + reinstate the per-shard update
  /// counters captured at save time. A checkpoint taken with a different
  /// shard count redistributes evenly — the total is the contract, the
  /// split is telemetry.
  void adopt(NuevoMatch nm, std::span<const uint64_t> shard_ops);

  // --- data path (safe from any number of threads) ------------------------
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;
  /// Batched lookup; out.size() must equal packets.size(). The whole batch
  /// runs against one generation — a swap mid-batch affects only later
  /// batches.
  void match_batch(std::span<const Packet> packets, std::span<MatchResult> out) const;

  /// An RCU-pinned, update-stable view of one generation. While a Pin is
  /// alive the generation cannot be mutated (its reader lock is held) or
  /// reclaimed (the shared_ptr refcount is the grace period) — but swaps
  /// still publish: later pins resolve the newer generation. Writers stall
  /// while a Pin exists, so keep pins batch-scoped. This is how the parallel
  /// engine gets per-batch generation pinning (DESIGN.md "Update path").
  class Pin {
   public:
    [[nodiscard]] const NuevoMatch& nm() const noexcept { return g_->nm; }
    /// Sequence number of the pinned generation (1 = first publication).
    [[nodiscard]] uint64_t generation() const noexcept { return g_->seq; }

   private:
    friend class OnlineNuevoMatch;
    explicit Pin(std::shared_ptr<Generation> g) : g_(std::move(g)), lk_(g_->mu) {}
    std::shared_ptr<Generation> g_;
    std::shared_lock<std::shared_mutex> lk_;
  };
  [[nodiscard]] Pin pin() const { return Pin{live()}; }

  // --- update path (safe from any number of threads) ----------------------
  [[nodiscard]] bool supports_updates() const override { return true; }
  bool insert(const Rule& r) override;
  bool erase(uint32_t rule_id) override;

  // --- retraining ---------------------------------------------------------
  /// Absorption ratio of the live generation (== its update_pressure()).
  [[nodiscard]] double absorption() const;
  /// True while the background worker is training or swapping.
  [[nodiscard]] bool retrain_in_progress() const;
  /// Number of generations published so far (initial build() counts).
  [[nodiscard]] uint64_t generations() const noexcept {
    return generation_count_.load(std::memory_order_relaxed);
  }
  /// Request a background retrain now (idempotent while one is pending).
  void retrain_now();
  /// Block until no retrain is pending or running. Tests, benchmarks and
  /// serialization use this to reach a stable state.
  void quiesce() const;

  /// Run `fn` against an update-stable view of the live generation: writers
  /// are excluded while fn runs, so the view is consistent even with
  /// concurrent churn or a retrain in flight (journaled updates are already
  /// applied to the live generation, so nothing pending is missing from the
  /// view). Deliberately does NOT quiesce — under sustained churn a retrain
  /// may always be pending, and a checkpoint must stay bounded.
  /// Serialization entry point.
  void with_stable_view(const std::function<void(const NuevoMatch&)>& fn) const;

  // --- shard introspection -------------------------------------------------
  [[nodiscard]] int update_shards() const noexcept {
    return static_cast<int>(shards_.size());
  }
  /// Applied updates routed through each shard since the last build()/
  /// adopt() (telemetry; serialized by save_online so churn accounting
  /// survives a checkpoint — build() and plain adopt() reset to zero, the
  /// checkpoint-loading adopt() reinstates the saved counts).
  [[nodiscard]] std::vector<uint64_t> shard_op_counts() const;
  /// Total applied updates across all shards.
  [[nodiscard]] uint64_t update_ops() const;

  // --- Classifier plumbing ------------------------------------------------
  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override;
  [[nodiscard]] std::string name() const override;

 private:
  /// One immutable-between-swaps trained index plus its reader/writer gate.
  struct Generation {
    NuevoMatch nm;
    /// Lookups shared, insert()/erase() unique. Never held across training.
    mutable std::shared_mutex mu;
    /// Publication sequence number (0 = the empty pre-build generation).
    uint64_t seq = 0;
    explicit Generation(NuevoMatchConfig c) : nm(std::move(c)) {}
    explicit Generation(NuevoMatch m) : nm(std::move(m)) {}
  };

  /// Journal entry for updates concurrent with a retrain.
  struct Op {
    enum class Kind : uint8_t { kInsert, kErase };
    Kind kind;
    Rule rule;     // kInsert payload
    uint32_t id;   // kErase payload
    uint64_t seq;  // global apply order (assigned under the generation lock)
  };

  /// One writer shard. Its lock serializes every update whose rule-id hashes
  /// here; its journal captures the ones that race a retrain. snapshot_open
  /// is set/cleared for all shards together, under all shard locks.
  struct Shard {
    std::mutex mu;
    std::vector<Op> journal;
    uint64_t ops = 0;  // applied updates routed through this shard
    bool snapshot_open = false;
  };

  // Atomic shared_ptr access via the std::atomic_load/store free functions
  // rather than std::atomic<std::shared_ptr>: libstdc++ 12's _Sp_atomic
  // releases its reader spin-lock with a relaxed RMW, which ThreadSanitizer
  // (correctly, per the formal model) reports as a read/write race against
  // the next store — GCC 13 papers over it with TSAN annotations. The free
  // functions use a mutex pool, which is modeled exactly and costs about
  // the same on this lock-per-lookup design. Semantics are identical:
  // seq_cst load/store of the pointer, refcounted lifetime.
  [[nodiscard]] std::shared_ptr<Generation> live() const {
    return std::atomic_load(&gen_);
  }
  void publish(std::shared_ptr<Generation> fresh) {
    fresh->seq = generation_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::atomic_store(&gen_, std::move(fresh));
  }
  [[nodiscard]] Shard& shard_for(uint32_t rule_id) const {
    // Fibonacci multiplicative hash: controller-assigned sequential ids
    // spread across shards instead of marching through them in lockstep.
    const uint64_t h = (static_cast<uint64_t>(rule_id) * 0x9E3779B97F4A7C15ull) >> 32;
    return *shards_[h % shards_.size()];
  }
  /// Lock every shard, ascending index (the global half of the lock order).
  [[nodiscard]] std::vector<std::unique_lock<std::mutex>> lock_all_shards() const;
  void worker_loop();
  void retrain_cycle();
  /// Install `fresh` as the live generation, resetting the update path:
  /// journals cleared, snapshot invalidated, per-shard op counters set to
  /// `shard_ops` (size must equal shards_.size()) or zeroed when null —
  /// all under every shard lock, atomically with the publication.
  void publish_fresh(std::shared_ptr<Generation> fresh,
                     const std::vector<uint64_t>* shard_ops = nullptr);
  void request_retrain(bool forced);

  OnlineConfig cfg_;
  std::shared_ptr<Generation> gen_;
  std::atomic<uint64_t> generation_count_{0};

  /// Writer shards (fixed count for the object's lifetime; unique_ptr keeps
  /// the mutex-holding Shard immovable while the vector stays regular).
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Global journal order; see Op::seq.
  std::atomic<uint64_t> op_seq_{0};

  /// Worker signalling (guards the three flags below).
  mutable std::mutex wk_mu_;
  mutable std::condition_variable wk_cv_;
  bool retrain_requested_ = false;
  bool retrain_forced_ = false;  // explicit retrain_now(): never skipped
  bool retrain_running_ = false;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace nuevomatch
