// MetricsExporter — the dataplane's scrape surface as a pipeline element.
//
// Placed anywhere in a graph (`src -> met -> cache -> ...`) it forwards
// bursts untouched; its real work happens in poll(), which a scheduler
// daemon task fires (ReplicatedGraph::run auto-registers one per exporter,
// mirroring the retrain-maintenance task) or, in scalar single-threaded
// graphs, piggy-backs on process() every few bursts. poll() serves two
// sinks, both optional:
//
//   * a tiny TCP listener on 127.0.0.1:<port> (plain sockets, nonblocking
//     accept + blocking per-client I/O with short timeouts) answering any
//     HTTP GET with the current telemetry::Snapshot — Prometheus text by
//     default, JSON when the request path contains "json";
//   * an interval file dump (same two formats, picked by `json`).
//
// Config form: met :: MetricsExporter(port=9100);
//              met :: MetricsExporter(file=/tmp/m.prom, interval_ms=500);
// port=0 binds an ephemeral port (tests read it back via port()).
//
// Replicated graphs parse the SAME config N times, so N exporters may ask
// for one port: binding is lazy and first-binder-wins — siblings that lose
// the race disable their listener and say so in report(). All exporters
// share the process-global registry, so any one listener serves the truth.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/element.hpp"
#include "pipeline/telemetry.hpp"

namespace nuevomatch::pipeline {

class ClassifierElement;
class FlowCacheElement;

class MetricsExporter final : public Element {
 public:
  struct Options {
    /// >= 0: serve scrapes on 127.0.0.1:port (0 = ephemeral). -1: no listener.
    int port = -1;
    /// Non-empty: dump a snapshot to this path every interval (and at
    /// finish()). Written atomically via rename of a .tmp sibling.
    std::string file;
    uint64_t interval_ms = 1000;
    bool json = false;  ///< file-dump format (the listener serves both)
  };

  explicit MetricsExporter(Options opt);
  ~MetricsExporter() override;

  [[nodiscard]] std::string_view kind() const override {
    return "MetricsExporter";
  }
  void process(Burst& b) override;
  /// Locates the graph's engine and caches so snapshots can join their
  /// health surfaces without the graph's help.
  void initialize(Graph& g) override;
  void finish() override;  ///< final file dump + listener close
  [[nodiscard]] std::string report() const override;

  /// Serve due work: pending scrape connections and/or an interval file
  /// dump. Returns true if anything was served (daemon-task fire body —
  /// false lets the scheduler back off the task as idle). Safe from any
  /// thread; concurrent callers don't block (try-lock, losers no-op).
  bool poll();

  /// Actual bound listener port (after the lazy bind), or -1.
  [[nodiscard]] int port() const noexcept {
    return bound_port_.load(std::memory_order_acquire);
  }
  /// Force the lazy bind now (tests; returns port() or -1 on failure).
  int ensure_listener();

  /// Replica-layer health feed: ReplicatedGraph::run installs a callback
  /// returning its live PipelineHealth so scrapes include the supervision
  /// layer (an element cannot see above its own graph otherwise).
  void set_pipeline_health_source(std::function<PipelineHealth()> fn);

  /// Build the exporter's current view: global registry + engine health +
  /// summed cache stats + replica layer when attached.
  [[nodiscard]] telemetry::Snapshot snapshot() const;

  [[nodiscard]] uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t dumps() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }

 private:
  void serve_pending_scrapes_locked(bool& did_work);
  void dump_file_locked(bool force, bool& did_work);

  Options opt_;
  std::atomic<int> bound_port_{-1};
  std::atomic<bool> bind_failed_{false};
  int listen_fd_ = -1;          // guarded by poll_mu_
  std::string bind_error_;      // guarded by poll_mu_
  uint64_t last_dump_ns_ = 0;   // guarded by poll_mu_
  mutable std::mutex poll_mu_;
  std::atomic<uint64_t> scrapes_{0};
  std::atomic<uint64_t> dumps_{0};
  uint64_t bursts_seen_ = 0;  // process()-thread private (inline poll pacing)

  // Snapshot sources, wired once in initialize()/run() before traffic.
  ClassifierElement* classifier_ = nullptr;
  std::vector<FlowCacheElement*> caches_;
  std::function<PipelineHealth()> pipeline_health_;
  mutable std::mutex source_mu_;  // guards pipeline_health_ installation
};

}  // namespace nuevomatch::pipeline
