#include "pipeline/telemetry.hpp"

#include <cinttypes>
#include <cstdio>

namespace nuevomatch::telemetry {

namespace {

using pipeline::PipelineHealth;
using pipeline::ReplicaHealth;
using pipeline::RuntimeHealth;

std::string u64s(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string replica_label(size_t i) {
  return "{replica=\"" + u64s(i) + "\"}";
}

void render_engine_prom(std::string& out, const EngineHealth& e) {
  prometheus_gauge(out, "nm_engine_degraded",
                   "1 when the engine gave up auto-retraining", e.degraded);
  prometheus_gauge(out, "nm_engine_generation",
                   "index generations published", static_cast<double>(e.generation));
  prometheus_gauge(out, "nm_engine_retrain_failures",
                   "consecutive retrain failures since last swap",
                   static_cast<double>(e.retrain_failures));
  prometheus_counter(out, "nm_engine_retrain_failures_total",
                     "lifetime retrain failures", e.retrain_failures_total);
  prometheus_gauge(out, "nm_engine_retrain_pending",
                   "1 while a retrain is requested or running",
                   e.retrain_pending);
  prometheus_gauge(out, "nm_engine_in_backoff",
                   "1 while a failed retrain waits out its backoff",
                   e.in_backoff);
  prometheus_gauge(out, "nm_engine_backoff_ms",
                   "current/most recent retrain backoff delay",
                   static_cast<double>(e.backoff_ms));
  prometheus_gauge(out, "nm_engine_journal_depth",
                   "ops queued in the retrain journal",
                   static_cast<double>(e.journal_depth));
  prometheus_gauge(out, "nm_engine_churn_rules",
                   "rules in the published churn delta",
                   static_cast<double>(e.churn_rules));
  prometheus_counter(out, "nm_engine_shed_ops_total",
                     "inserts rejected by overload control", e.shed_ops);
  prometheus_gauge(out, "nm_engine_absorption",
                   "fraction of churn absorbed without retrain", e.absorption);
}

void render_runtime_prom(std::string& out, const RuntimeHealth& r) {
  prometheus_counter(out, "nm_runtime_restarts_total",
                     "task restart re-arms across all tasks", r.restarts);
  prometheus_counter(out, "nm_runtime_quarantines_total",
                     "task quarantine entries across all tasks",
                     r.quarantines);
  prometheus_counter(out, "nm_runtime_suppressed_errors_total",
                     "task errors dropped after the first recorded one",
                     r.suppressed_errors);
  prometheus_gauge(out, "nm_runtime_tasks", "tasks registered",
                   static_cast<double>(r.tasks.size()));
  uint64_t stalled = 0;
  for (const auto& t : r.tasks) stalled += t.stalled ? 1 : 0;
  prometheus_gauge(out, "nm_runtime_stalled_tasks",
                   "tasks flagged stalled by the watchdog",
                   static_cast<double>(stalled));
}

void render_pipeline_prom(std::string& out, const PipelineHealth& p) {
  render_runtime_prom(out, p.runtime);
  prometheus_counter(out, "nm_pipeline_trainer_failovers_total",
                     "times training duty migrated replicas",
                     p.trainer_failovers);
  prometheus_counter(out, "nm_pipeline_rejoin_failures_total",
                     "replica rejoin attempts aborted", p.rejoin_failures);
  prometheus_gauge(out, "nm_pipeline_steer_epochs",
                   "steering-table epochs installed",
                   static_cast<double>(p.steer_epochs));
  prometheus_counter(out, "nm_pipeline_recovery_ns_total",
                     "wall time spent inside quarantine handling",
                     p.recovery_ns);
  // Per-replica series share one # TYPE header each.
  const struct {
    const char* name;
    const char* help;
  } series[] = {
      {"nm_replica_quarantines_total", "times the replica was quarantined"},
      {"nm_replica_rejoins_total", "successful respawn+reinstate cycles"},
      {"nm_replica_drained_entries_total",
       "live cache entries dropped by drains"},
      {"nm_replica_steps_total", "bursts stepped by the replica"},
      {"nm_replica_live", "1 live, 0 quarantined"},
  };
  for (const auto& s : series) {
    out += "# HELP ";
    out += s.name;
    out += ' ';
    out += s.help;
    out += "\n# TYPE ";
    out += s.name;
    out += (std::string_view(s.name).ends_with("_total") ? " counter\n"
                                                         : " gauge\n");
  }
  for (size_t i = 0; i < p.replicas.size(); ++i) {
    const ReplicaHealth& r = p.replicas[i];
    const std::string lbl = replica_label(i);
    out += "nm_replica_quarantines_total" + lbl + ' ' + u64s(r.quarantines) + '\n';
    out += "nm_replica_rejoins_total" + lbl + ' ' + u64s(r.rejoins) + '\n';
    out += "nm_replica_drained_entries_total" + lbl + ' ' +
           u64s(r.drained_entries) + '\n';
    out += "nm_replica_steps_total" + lbl + ' ' + u64s(r.steps) + '\n';
    out += "nm_replica_live" + lbl + ' ' +
           (r.state == ReplicaHealth::State::kQuarantined ? "0" : "1") + '\n';
  }
}

void render_cache_prom(std::string& out, const pipeline::FlowCache::Stats& c,
                       uint64_t entries, uint64_t capacity) {
  prometheus_counter(out, "nm_flowcache_hits_total", "cache hits", c.hits);
  prometheus_counter(out, "nm_flowcache_misses_total",
                     "lookups with no entry for the key", c.misses);
  prometheus_counter(out, "nm_flowcache_stale_total",
                     "entries found but invalidated by their band", c.stale);
  prometheus_counter(out, "nm_flowcache_retained_total",
                     "hits served by entries that survived a commit",
                     c.retained);
  prometheus_counter(out, "nm_flowcache_future_total",
                     "hits fresher than the probe's stamp view", c.future);
  prometheus_counter(out, "nm_flowcache_inserts_total", "cache inserts",
                     c.inserts);
  prometheus_counter(out, "nm_flowcache_evictions_total",
                     "inserts that displaced a live entry", c.evictions);
  prometheus_counter(out, "nm_flowcache_insert_drops_total",
                     "inserts dropped (fresher entry already cached)",
                     c.insert_drops);
  prometheus_gauge(out, "nm_flowcache_entries", "live entries resident",
                   static_cast<double>(entries));
  prometheus_gauge(out, "nm_flowcache_capacity", "configured capacity",
                   static_cast<double>(capacity));
}

// --- JSON renderers (object per section; keys mirror struct fields) -------

void json_kv(std::string& out, bool& first, std::string_view key,
             uint64_t v) {
  if (!first) out += ',';
  first = false;
  out += '"';
  json_escape(out, key);
  out += "\":";
  out += u64s(v);
}

void json_kv_d(std::string& out, bool& first, std::string_view key,
               double v) {
  if (!first) out += ',';
  first = false;
  out += '"';
  json_escape(out, key);
  out += "\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

void json_kv_s(std::string& out, bool& first, std::string_view key,
               std::string_view v) {
  if (!first) out += ',';
  first = false;
  out += '"';
  json_escape(out, key);
  out += "\":\"";
  json_escape(out, v);
  out += '"';
}

std::string engine_json(const EngineHealth& e) {
  std::string out = "{";
  bool f = true;
  json_kv(out, f, "degraded", e.degraded);
  json_kv(out, f, "generation", e.generation);
  json_kv(out, f, "retrain_failures", e.retrain_failures);
  json_kv(out, f, "retrain_failures_total", e.retrain_failures_total);
  json_kv_s(out, f, "last_error", e.last_error);
  json_kv(out, f, "retrain_pending", e.retrain_pending);
  json_kv(out, f, "in_backoff", e.in_backoff);
  json_kv(out, f, "backoff_ms", e.backoff_ms);
  json_kv(out, f, "journal_depth", e.journal_depth);
  json_kv(out, f, "churn_rules", e.churn_rules);
  json_kv(out, f, "shed_ops", e.shed_ops);
  json_kv_d(out, f, "absorption", e.absorption);
  out += '}';
  return out;
}

std::string runtime_json(const RuntimeHealth& r) {
  std::string out = "{";
  bool f = true;
  json_kv(out, f, "restarts", r.restarts);
  json_kv(out, f, "quarantines", r.quarantines);
  json_kv(out, f, "suppressed_errors", r.suppressed_errors);
  json_kv(out, f, "tasks", r.tasks.size());
  uint64_t stalled = 0;
  for (const auto& t : r.tasks) stalled += t.stalled ? 1 : 0;
  json_kv(out, f, "stalled_tasks", stalled);
  out += '}';
  return out;
}

std::string pipeline_json(const PipelineHealth& p) {
  std::string out = "{";
  bool f = true;
  if (!f) out += ',';  // keep structure uniform with json_kv usage below
  f = false;
  out += "\"runtime\":" + runtime_json(p.runtime);
  json_kv(out, f, "trainer", p.trainer);
  json_kv(out, f, "trainer_failovers", p.trainer_failovers);
  json_kv(out, f, "rejoin_failures", p.rejoin_failures);
  json_kv(out, f, "steer_epochs", p.steer_epochs);
  json_kv(out, f, "recovery_ns", p.recovery_ns);
  out += ",\"replicas\":[";
  for (size_t i = 0; i < p.replicas.size(); ++i) {
    const ReplicaHealth& r = p.replicas[i];
    if (i) out += ',';
    std::string ro = "{";
    bool rf = true;
    json_kv_s(ro, rf, "state",
              r.state == ReplicaHealth::State::kLive        ? "live"
              : r.state == ReplicaHealth::State::kRejoined ? "rejoined"
                                                           : "quarantined");
    json_kv(ro, rf, "quarantines", r.quarantines);
    json_kv(ro, rf, "rejoins", r.rejoins);
    json_kv(ro, rf, "drained_entries", r.drained_entries);
    json_kv(ro, rf, "steps", r.steps);
    ro += '}';
    out += ro;
  }
  out += "]}";
  return out;
}

std::string cache_json(const pipeline::FlowCache::Stats& c, uint64_t entries,
                       uint64_t capacity) {
  std::string out = "{";
  bool f = true;
  json_kv(out, f, "hits", c.hits);
  json_kv(out, f, "misses", c.misses);
  json_kv(out, f, "stale", c.stale);
  json_kv(out, f, "retained", c.retained);
  json_kv(out, f, "future", c.future);
  json_kv(out, f, "inserts", c.inserts);
  json_kv(out, f, "evictions", c.evictions);
  json_kv(out, f, "insert_drops", c.insert_drops);
  json_kv_d(out, f, "hit_rate", c.hit_rate());
  json_kv(out, f, "entries", entries);
  json_kv(out, f, "capacity", capacity);
  out += '}';
  return out;
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::string out = registry.to_prometheus();
  if (engine) render_engine_prom(out, *engine);
  if (pipeline)
    render_pipeline_prom(out, *pipeline);
  else if (runtime)
    render_runtime_prom(out, *runtime);
  if (cache) render_cache_prom(out, *cache, cache_entries, cache_capacity);
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"registry\":" + registry.to_json();
  if (engine) out += ",\"engine\":" + engine_json(*engine);
  if (pipeline)
    out += ",\"pipeline\":" + pipeline_json(*pipeline);
  else if (runtime)
    out += ",\"runtime\":" + runtime_json(*runtime);
  if (cache)
    out += ",\"flowcache\":" + cache_json(*cache, cache_entries, cache_capacity);
  out += '}';
  return out;
}

Snapshot capture(const EngineHealth* engine,
                 const pipeline::RuntimeHealth* runtime,
                 const pipeline::PipelineHealth* pipeline,
                 const pipeline::FlowCache::Stats* cache) {
  Snapshot s;
  s.registry = registry().snapshot();
  if (engine) s.engine = *engine;
  if (runtime) s.runtime = *runtime;
  if (pipeline) s.pipeline = *pipeline;
  if (cache) s.cache = *cache;
  return s;
}

}  // namespace nuevomatch::telemetry
