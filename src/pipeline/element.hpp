// Click-style composable dataplane elements (see /root/related README and
// DESIGN.md "Pipeline"): the classifier stops being a library you call and
// becomes a stage in a packet-processing graph. Elements are batch-oriented
// — the unit of work is a Burst of up to kBurstSize packets, pushed through
// the graph by a source element — and are wired into a DAG either
// programmatically or by the textual config parser (graph.hpp):
//
//   src :: PcapSource(trace.pcap);
//   src -> FlowCache(8192) -> Classifier(acl.rules) -> Dispatch(permit, deny);
//
// Element contract:
//   * process(Burst&) consumes one burst, mutates it in place, and pushes
//     it (or per-port splits of it) downstream via forward(). The burst is
//     STACK-OWNED BY THE SOURCE's pump loop: an element may read and write
//     it during process() but must not retain a pointer past return —
//     anything it wants to keep (recorded decisions, frames written to
//     disk) it copies out. Splitting elements (Dispatch) build their
//     per-port bursts in their own reused buffers, which is safe because
//     the graph is a DAG (Graph::initialize rejects cycles), so process()
//     can never re-enter the same element.
//   * per-packet annotations travel IN the burst (result / action /
//     resolved bits / cache-fill note), Click-annotation style, so stages
//     compose without knowing each other: FlowCache resolves what it can
//     and notes the fill obligation; Classifier resolves the rest and
//     honors the note; Dispatch routes on whatever is resolved.
//   * sources implement pump() instead of receiving process() calls;
//     Graph::run() drives every source to exhaustion and then calls
//     finish() on each element in declaration order (flush file writers,
//     final stats).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/failpoint.hpp"
#include "common/types.hpp"
#include "pipeline/flow_cache.hpp"

namespace nuevomatch::pipeline {

/// Packets per burst. 32 keeps one burst's five-tuples + annotations inside
/// a few cache lines and matches the SIMD tile width of the batched
/// inference kernels (kernel.hpp processes 8-lane tiles; a 32-packet burst
/// is four full tiles with no remainder lanes).
inline constexpr size_t kBurstSize = 32;

/// One batch of packets moving through the graph, with per-packet
/// annotations. `resolved` bit i means result[i]/action[i] are final — a
/// downstream Classifier skips those lanes.
struct Burst {
  std::array<Packet, kBurstSize> pkt;
  std::array<uint64_t, kBurstSize> ts_ns;    ///< capture/synthesis timestamp
  std::array<uint64_t, kBurstSize> index;    ///< source-assigned packet number
  std::array<MatchResult, kBurstSize> result;
  std::array<int32_t, kBurstSize> action;    ///< resolved rule action; -1 = none
  uint32_t size = 0;
  uint32_t resolved = 0;                     ///< bitmask over [0, size)
  /// Lanes whose decision was served from a FlowCache (subset of
  /// `resolved`). Provenance for the staleness oracle: a recording Sink
  /// keeps the flag, so a differential over the records can pinpoint
  /// cache-SERVED mismatches (stale decisions) as distinct from classifier
  /// bugs. Travels through Dispatch splits like `resolved`.
  uint32_t from_cache = 0;
  /// Cache-fill note: set by FlowCache for bursts with unresolved lanes.
  /// The element that resolves a lane inserts the decision into `fill`
  /// stamped with `fill_stamp` (read BEFORE classification — the coherence
  /// contract, flow_cache.hpp).
  FlowCache* fill = nullptr;
  uint64_t fill_stamp = 0;

  void reset() noexcept {
    size = 0;
    resolved = 0;
    from_cache = 0;
    fill = nullptr;
    fill_stamp = 0;
  }
  [[nodiscard]] bool is_resolved(size_t i) const noexcept {
    return (resolved >> i) & 1u;
  }
  void mark_resolved(size_t i) noexcept { resolved |= 1u << i; }
};
static_assert(kBurstSize <= 32, "resolved bitmask is 32 bits");

class Graph;

class Element {
 public:
  virtual ~Element() = default;
  Element() = default;
  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  /// Config-language type name ("FlowCache", "Dispatch", ...).
  [[nodiscard]] virtual std::string_view kind() const = 0;
  [[nodiscard]] virtual size_t n_outputs() const { return 1; }
  [[nodiscard]] virtual bool is_source() const { return false; }

  /// Consume one burst and push it (possibly split) downstream.
  virtual void process(Burst& b) = 0;

  /// Post-wiring hook: runs once, after every connection is made and before
  /// the first burst (elements locate their collaborators here — e.g.
  /// FlowCache finds the graph's Classifier to couple coherence stamps).
  virtual void initialize(Graph&) {}

  /// End-of-stream: flush writers, close files. Declaration order.
  virtual void finish() {}

  /// One human-readable stats line for Graph::report() ("" = silent).
  [[nodiscard]] virtual std::string report() const { return {}; }

  /// Instance name (from `name :: Kind(...)`, or auto-generated).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Element* output(size_t port) const noexcept {
    return port < outs_.size() ? outs_[port] : nullptr;
  }

 protected:
  /// Push a burst out of `port`; an unconnected port drops (by design — a
  /// Dispatch leg nobody wired is a drop leg). The pipeline.push failpoint
  /// sits on this seam: an injected throw abandons the in-flight burst
  /// mid-graph — the mid-fire fault the supervision layer must contain
  /// (losing at most this one burst), as opposed to the lossless
  /// between-fire seam (pipeline.task.fire).
  void forward(Burst& b, size_t port = 0) {
    if (b.size > 0 && port < outs_.size() && outs_[port] != nullptr) {
      if (failpoint::should_fire(failpoint::kPipelinePush))
        throw std::runtime_error("injected: pipeline.push");
      outs_[port]->process(b);
    }
  }

 private:
  friend class Graph;
  std::string name_;
  std::vector<Element*> outs_;
};

/// RSS-style five-tuple hash: the replica-split function. Everything a flow
/// is (all five header fields) goes in, so all packets of a flow land on
/// the same replica — the property the flow-affinity ordering argument in
/// DESIGN.md "Scheduler" rests on. Finalized FNV-1a like FlowCache::hash,
/// but an independent function on purpose: cache sharding inside a replica
/// and traffic splitting across replicas must not correlate, or one cache
/// shard per replica would absorb that replica's whole population.
[[nodiscard]] inline uint32_t rss_hash(const Packet& p) noexcept {
  uint64_t h = 14695981039346656037ull;
  for (const uint32_t f : p.field) {
    h ^= f;
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return static_cast<uint32_t>(h >> 32);
}

/// Piecewise-position replica steering: the quarantine/rejoin extension of
/// the plain modulo split. The stream is divided into EPOCHS — half-open
/// position ranges, each with a live-replica bitmask — and a packet at
/// position p is owned by exactly one replica: its natural rss_hash slot if
/// that replica is live in p's epoch, else a deterministic re-hash onto the
/// live set (the dead slice spreads across survivors). Because ownership is
/// a pure function of (hash, position), every source evaluates the SAME
/// table and the split stays a partition — no packet is lost or duplicated
/// across a re-steer — and Burst::index remains the order-independent merge
/// key the replica-vs-scalar differential joins on.
///
/// Mutation contract: epochs are appended with nondecreasing `from`, only
/// while every source is quiesced at a position < `from` (ReplicatedGraph
/// pauses all replica tasks, waits out in-flight pumps, and picks the
/// cutover ahead of every source's published position). Readers therefore
/// never race a mutation; the pause/resume atomics publish the new epochs.
class ReplicaSteering {
 public:
  static constexpr size_t kMaxEpochs = 16;

  explicit ReplicaSteering(uint32_t n_replicas)
      : n_(n_replicas == 0 ? 1 : n_replicas) {
    if (n_ > 32)
      throw std::runtime_error("ReplicaSteering: more than 32 replicas");
    epochs_[0] = Epoch{0, full_mask()};
  }

  [[nodiscard]] uint32_t full_mask() const noexcept {
    return n_ >= 32 ? ~0u : (1u << n_) - 1u;
  }

  /// Append an epoch: packets at position >= `from` are steered by
  /// `live_mask`. `from` must be >= the previous epoch's start (callers
  /// clamp) and ahead of every quiesced source.
  void append(uint64_t from, uint32_t live_mask) {
    if (count_ == kMaxEpochs)
      throw std::runtime_error("ReplicaSteering: epoch table full");
    if (from < epochs_[count_ - 1].from)
      throw std::runtime_error("ReplicaSteering: epochs must be ordered");
    epochs_[count_++] = Epoch{from, live_mask & full_mask()};
  }

  /// The replica that owns the packet with `hash` at stream position `pos`.
  [[nodiscard]] uint32_t owner_of(uint32_t hash, uint64_t pos) const noexcept {
    uint32_t mask = epochs_[0].mask;
    for (size_t i = count_; i-- > 0;) {
      if (epochs_[i].from <= pos) {
        mask = epochs_[i].mask;
        break;
      }
    }
    const uint32_t nat = hash % n_;
    if ((mask >> nat) & 1u) return nat;
    const auto live = static_cast<uint32_t>(std::popcount(mask));
    if (live == 0) return nat;  // nobody live — ownership is moot
    // Re-steer with an independent slice of the hash so one dead replica's
    // load spreads over all survivors instead of aliasing one neighbor.
    uint32_t k = (hash / n_) % live;
    for (uint32_t r = 0; r < 32; ++r) {
      if (!((mask >> r) & 1u)) continue;
      if (k-- == 0) return r;
    }
    return nat;  // unreachable: popcount(mask) > k
  }

  [[nodiscard]] bool accepts(uint32_t replica, uint32_t hash,
                             uint64_t pos) const noexcept {
    return owner_of(hash, pos) == replica;
  }

  [[nodiscard]] size_t epochs() const noexcept { return count_; }
  [[nodiscard]] uint64_t last_from() const noexcept {
    return epochs_[count_ - 1].from;
  }

 private:
  struct Epoch {
    uint64_t from = 0;   ///< applies to positions >= from
    uint32_t mask = 0;   ///< live-replica bitmask
  };
  std::array<Epoch, kMaxEpochs> epochs_{};
  size_t count_ = 1;
  uint32_t n_;
};

/// A packet source: pumped by Graph::run() instead of receiving bursts.
class SourceElement : public Element {
 public:
  [[nodiscard]] bool is_source() const final { return true; }
  /// Fill `b` (already reset) with the next burst; false at end of stream.
  /// A partial final burst returns true with b.size < kBurstSize.
  [[nodiscard]] virtual bool pump(Burst& b) = 0;
  void process(Burst&) final {}  // sources have no input side

  /// Replica split (ReplicatedGraph): emit only packets whose rss_hash
  /// lands on `replica` of `n_replicas`. Filtered-out packets still
  /// advance the source's stream position, so Burst::index stays the
  /// GLOBAL trace position — the order-independent merge key the
  /// replica-vs-scalar differential tests join on.
  void set_replica_filter(uint32_t replica, uint32_t n_replicas) noexcept {
    replica_ = replica;
    n_replicas_ = n_replicas == 0 ? 1 : n_replicas;
  }
  [[nodiscard]] uint32_t n_replicas() const noexcept { return n_replicas_; }

  /// Supervised runs swap the fixed modulo split for a shared piecewise
  /// steering table (quarantine re-steer / rejoin). Not owned; must outlive
  /// the run. Null restores the plain split.
  void set_steering(const ReplicaSteering* s) noexcept { steering_ = s; }

  /// Stream position published by the last completed pump (every consumed
  /// packet, filtered or not). The replication supervisor reads this while
  /// sources are quiesced to pick a re-steer cutover ahead of everyone.
  [[nodiscard]] uint64_t stream_pos() const noexcept {
    return published_pos_.load(std::memory_order_relaxed);
  }

 protected:
  /// Does the replica filter accept the packet at stream position `pos`?
  /// (Always true unfiltered.)
  [[nodiscard]] bool accepts(const Packet& p, uint64_t pos) const noexcept {
    if (steering_ != nullptr)
      return steering_->accepts(replica_, rss_hash(p), pos);
    return n_replicas_ <= 1 || rss_hash(p) % n_replicas_ == replica_;
  }

  /// Publish the consumed position (once per pump is enough — the reader
  /// quiesces pumps before trusting it).
  void publish_pos(uint64_t pos) noexcept {
    published_pos_.store(pos, std::memory_order_relaxed);
  }

 private:
  uint32_t replica_ = 0;
  uint32_t n_replicas_ = 1;
  const ReplicaSteering* steering_ = nullptr;
  std::atomic<uint64_t> published_pos_{0};
};

/// Factory signature for the config language: args are the raw
/// comma-separated strings between the parentheses, trimmed.
using ElementFactory =
    std::function<std::unique_ptr<Element>(const std::vector<std::string>& args)>;

/// Register a factory under a kind name; returns false if the name is
/// taken. The built-in elements self-register on first registry access.
bool register_element(std::string kind, ElementFactory factory);

/// Instantiate a registered kind; throws std::runtime_error for unknown
/// kinds or bad args (factories signal bad args the same way).
[[nodiscard]] std::unique_ptr<Element> make_element(
    std::string_view kind, const std::vector<std::string>& args);

}  // namespace nuevomatch::pipeline
