#include "pipeline/graph.hpp"

#include <cctype>
#include <charconv>
#include <exception>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "common/metrics.hpp"

namespace nuevomatch::pipeline {

// --- registry ---------------------------------------------------------------

namespace {

std::map<std::string, ElementFactory, std::less<>>& registry_map() {
  static std::map<std::string, ElementFactory, std::less<>> m;
  return m;
}

// Built-ins register through an explicit call (elements.cpp), not static
// initializers — a static library may never pull in elements.o otherwise.
void ensure_builtins_registered();

}  // namespace

bool register_element(std::string kind, ElementFactory factory) {
  return registry_map().emplace(std::move(kind), std::move(factory)).second;
}

std::unique_ptr<Element> make_element(std::string_view kind,
                                      const std::vector<std::string>& args) {
  ensure_builtins_registered();
  const auto it = registry_map().find(kind);
  if (it == registry_map().end())
    throw std::runtime_error("unknown element kind '" + std::string(kind) + "'");
  return it->second(args);
}

// --- graph core -------------------------------------------------------------

void Graph::add_impl(std::unique_ptr<Element> e, std::string name) {
  if (name.empty())
    name = std::string(e->kind()) + "@" + std::to_string(anon_counter_++);
  if (by_name_.contains(name))
    throw std::runtime_error("duplicate element name '" + name + "'");
  e->name_ = name;
  e->outs_.assign(e->n_outputs(), nullptr);
  by_name_.emplace(std::move(name), e.get());
  elems_.push_back(std::move(e));
}

void Graph::connect(Element& from, size_t port, Element& to) {
  if (port >= from.n_outputs())
    throw std::runtime_error("element '" + from.name() + "' has no output port [" +
                             std::to_string(port) + "]");
  if (from.outs_[port] != nullptr)
    throw std::runtime_error("output port '" + from.name() + "[" +
                             std::to_string(port) + "]' connected twice");
  from.outs_[port] = &to;
}

Element* Graph::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : it->second;
}

void Graph::check_acyclic() const {
  // Iterative three-color DFS over the port edges.
  enum class Color : uint8_t { kWhite, kGray, kBlack };
  std::unordered_map<const Element*, Color> color;
  for (const auto& e : elems_) color[e.get()] = Color::kWhite;
  for (const auto& root : elems_) {
    if (color[root.get()] != Color::kWhite) continue;
    std::vector<std::pair<const Element*, size_t>> stack{{root.get(), 0}};
    color[root.get()] = Color::kGray;
    while (!stack.empty()) {
      auto& [e, next_port] = stack.back();
      if (next_port >= e->n_outputs()) {
        color[e] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const Element* succ = e->output(next_port++);
      if (succ == nullptr) continue;
      if (color[succ] == Color::kGray)
        throw std::runtime_error("pipeline graph has a cycle through '" +
                                 succ->name() + "'");
      if (color[succ] == Color::kWhite) {
        color[succ] = Color::kGray;
        stack.emplace_back(succ, 0);
      }
    }
  }
}

void Graph::initialize() {
  if (initialized_) return;
  check_acyclic();
  for (const auto& e : elems_) e->initialize(*this);
  initialized_ = true;
}

uint64_t Graph::run(const std::function<void(uint64_t)>& tick) {
  initialize();
  uint64_t packets = 0;
  Burst b;
  // Resolve the registry series once per run, not per burst: the enabled
  // gate is re-checked inside the loop (it can flip at runtime) but the
  // name lookup / init-guard never repeats on the pump path.
  telemetry::Counter* mb = nullptr;
  telemetry::Counter* mp = nullptr;
  telemetry::Histogram* mh = nullptr;
  if (NM_METRICS_ENABLED) {
    mb = &telemetry::registry().counter("nm_pipeline_bursts_total",
                                        "bursts pumped through any graph");
    mp = &telemetry::registry().counter("nm_pipeline_packets_total",
                                        "packets pumped through any graph");
    mh = &telemetry::registry().histogram(
        "nm_pipeline_burst_ns",
        "end-to-end burst latency, pump to sink (sampled 1-in-32)");
  }
  // Batch the per-burst counts locally and flush every 64 bursts: a
  // registry add is a TLS-shard fetch_add (~10ns), too dear to pay twice
  // per burst on the pump path. A live scrape lags by at most one batch.
  uint64_t acc_bursts = 0;
  uint64_t acc_packets = 0;
  for (const auto& e : elems_) {
    if (!e->is_source()) continue;
    auto& src = static_cast<SourceElement&>(*e);
    for (;;) {
      b.reset();
      const bool counted = mb != nullptr && NM_METRICS_ENABLED;
      const bool lat_sampled = counted && NM_SAMPLE_EVERY(32);
      const uint64_t t0 = lat_sampled ? telemetry::now_ns() : 0;
      if (!src.pump(b)) break;
      packets += b.size;
      ++health_.steps;
      health_.packets += b.size;
      if (b.size > 0) src.forward(b);
      if (counted) {
        ++acc_bursts;
        acc_packets += b.size;
        if (acc_bursts == 64) {
          mb->add(acc_bursts);
          mp->add(acc_packets);
          acc_bursts = acc_packets = 0;
        }
        if (lat_sampled) mh->record(telemetry::now_ns() - t0);
      }
      if (tick) tick(packets);
    }
  }
  if (mb != nullptr && acc_bursts > 0) {
    mb->add(acc_bursts);
    mp->add(acc_packets);
  }
  health_.eos = true;
  finish_run();
  return packets;
}

bool Graph::step(uint64_t* pumped) {
  initialize();
  if (step_src_ == nullptr) {
    for (const auto& e : elems_) {
      if (!e->is_source()) continue;
      if (step_src_ != nullptr)
        throw std::runtime_error(
            "Graph::step() needs exactly one source element (this graph has "
            "several; drive it with run() instead)");
      step_src_ = static_cast<SourceElement*>(e.get());
    }
    if (step_src_ == nullptr)
      throw std::runtime_error("Graph::step(): graph has no source element");
  }
  if (step_eos_) return false;
  step_burst_.reset();
  const bool lat_sampled = NM_METRICS_ENABLED && NM_SAMPLE_EVERY(32);
  const uint64_t t0 = lat_sampled ? telemetry::now_ns() : 0;
  if (!step_src_->pump(step_burst_)) {
    step_eos_ = true;
    health_.eos = true;
    return false;
  }
  if (pumped != nullptr) *pumped += step_burst_.size;
  ++health_.steps;
  health_.packets += step_burst_.size;
  if (step_burst_.size > 0) step_src_->forward(step_burst_);
  if (NM_METRICS_ENABLED) {
    // Same local-batching rationale as run(); the accumulators are members
    // because step() state lives across calls. Flushed in finish_run().
    ++m_acc_bursts_;
    m_acc_packets_ += step_burst_.size;
    if (m_acc_bursts_ >= 64) flush_metrics_acc();
    if (lat_sampled) {
      static telemetry::Histogram& h = telemetry::registry().histogram(
          "nm_pipeline_burst_ns",
          "end-to-end burst latency, pump to sink (sampled 1-in-32)");
      h.record(telemetry::now_ns() - t0);
    }
  }
  return true;
}

void Graph::flush_metrics_acc() {
  if (m_acc_bursts_ == 0 && m_acc_packets_ == 0) return;
  static telemetry::Counter& mb = telemetry::registry().counter(
      "nm_pipeline_bursts_total", "bursts pumped through any graph");
  static telemetry::Counter& mp = telemetry::registry().counter(
      "nm_pipeline_packets_total", "packets pumped through any graph");
  mb.add(m_acc_bursts_);
  mp.add(m_acc_packets_);
  m_acc_bursts_ = 0;
  m_acc_packets_ = 0;
}

void Graph::finish_run() {
  flush_metrics_acc();
  // Every element gets its finish() (writers flushed, files closed) even
  // when an earlier one throws — the first error is re-thrown afterwards.
  std::exception_ptr first_error;
  for (const auto& e : elems_) {
    try {
      e->finish();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  health_.finished = true;
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

std::string Graph::report() const {
  std::string out;
  for (const auto& e : elems_) {
    const std::string line = e->report();
    if (line.empty()) continue;
    out += "  ";
    out += e->name();
    out.append(e->name().size() < 24 ? 24 - e->name().size() : 1, ' ');
    out += line;
    out += '\n';
  }
  return out;
}

// --- config language --------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;
  int line = 1;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("pipeline config line " + std::to_string(line) +
                             ": " + msg);
  }

  void skip_space_and_comments() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '#' || (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/')) {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else if (c == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos;
      } else {
        return;
      }
    }
  }

  [[nodiscard]] bool at_end() {
    skip_space_and_comments();
    return pos >= text.size();
  }

  [[nodiscard]] bool accept(std::string_view tok) {
    skip_space_and_comments();
    if (text.substr(pos, tok.size()) != tok) return false;
    pos += tok.size();
    return true;
  }

  [[nodiscard]] std::string ident() {
    skip_space_and_comments();
    const size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '_')) {
      ++pos;
    }
    if (pos == start) fail("expected an identifier");
    return std::string(text.substr(start, pos - start));
  }

  /// Raw comma-separated args up to the matching ')'; nested parens allowed
  /// inside an arg (file paths with parens are unlikely but cheap to honor).
  [[nodiscard]] std::vector<std::string> arg_list() {
    std::vector<std::string> args;
    std::string cur;
    int depth = 1;
    const auto push = [&] {
      size_t b = 0, e = cur.size();
      while (b < e && std::isspace(static_cast<unsigned char>(cur[b])) != 0) ++b;
      while (e > b && std::isspace(static_cast<unsigned char>(cur[e - 1])) != 0) --e;
      if (e > b) args.push_back(cur.substr(b, e - b));
      cur.clear();
    };
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '\n') ++line;
      if (c == '(') {
        ++depth;
      } else if (c == ')') {
        if (--depth == 0) {
          push();
          return args;
        }
      } else if (c == ',' && depth == 1) {
        push();
        continue;
      }
      cur.push_back(c);
    }
    fail("unterminated '(' in element arguments");
  }

  [[nodiscard]] size_t port_selector() {
    // caller has consumed '['
    skip_space_and_comments();
    size_t start = pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])) != 0)
      ++pos;
    if (pos == start) fail("expected a port number after '['");
    const std::string digits(text.substr(start, pos - start));
    size_t port = 0;
    const auto [p, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), port);
    if (ec != std::errc{} || p != digits.data() + digits.size())
      fail("port number '" + digits + "' out of range");
    if (!accept("]")) fail("expected ']' after port number");
    return port;
  }
};

}  // namespace

Graph Graph::parse(std::string_view config) {
  Graph g;
  Parser p{config};

  // A node reference: existing name, or inline `Kind(args)` instantiation,
  // plus the output port selected by a trailing [n].
  struct Node {
    Element* elem;
    size_t port;
    bool inline_decl;
    bool has_selector;  // an explicit [n] — meaningless on a chain's tail
  };
  const auto parse_node = [&]() -> Node {
    const std::string id = p.ident();
    Node n{nullptr, 0, false, false};
    if (p.accept("(")) {
      const std::vector<std::string> args = p.arg_list();
      try {
        n.elem = &g.add(make_element(id, args));
      } catch (const std::runtime_error& e) {
        p.fail(e.what());
      }
      n.inline_decl = true;
    } else {
      n.elem = g.find(id);
      if (n.elem == nullptr)
        p.fail("unknown element '" + id +
               "' (declare it with `name :: Kind(...)` or instantiate inline)");
    }
    if (p.accept("[")) {
      n.port = p.port_selector();
      n.has_selector = true;
    }
    return n;
  };
  // Wiring errors (port out of range, port connected twice) surface at a
  // config line, like every other parse diagnostic — not as a bare
  // topology exception.
  const auto connect_checked = [&](const Node& from, Element& to) {
    try {
      g.connect(*from.elem, from.port, to);
    } catch (const std::runtime_error& e) {
      p.fail(e.what());
    }
  };
  // A selector on the final element of a chain has no '->' to feed — it
  // would be dropped silently, and forward() treats unwired ports as
  // intentional drop legs, so the mistake must die here, loudly.
  const auto reject_tail_selector = [&](const Node& tail) {
    if (tail.has_selector)
      p.fail("output port selector on '" + tail.elem->name() +
             "' ends the chain — it selects a port but connects nothing");
  };

  while (!p.at_end()) {
    if (p.accept(";")) continue;  // empty statement

    // Lookahead for a declaration: IDENT '::' Kind '(' args ')'
    const size_t save_pos = p.pos;
    const int save_line = p.line;
    const std::string first = p.ident();
    if (p.accept("::")) {
      const std::string kind = p.ident();
      if (!p.accept("(")) p.fail("expected '(' after kind '" + kind + "'");
      const std::vector<std::string> args = p.arg_list();
      try {
        g.add(make_element(kind, args), first);
      } catch (const std::runtime_error& e) {
        p.fail(e.what());
      }
      if (!p.accept(";") && !p.at_end()) {
        // A declaration may head a chain: `a :: Counter(x) -> b;`
        if (!p.accept("->")) p.fail("expected ';' or '->' after declaration");
        Node prev{g.find(first), 0, false, false};
        for (;;) {
          const Node next = parse_node();
          connect_checked(prev, *next.elem);
          prev = next;
          if (!p.accept("->")) break;
        }
        reject_tail_selector(prev);
        if (!p.accept(";") && !p.at_end()) p.fail("expected ';' after chain");
      }
      continue;
    }
    // Not a declaration: rewind and parse a chain.
    p.pos = save_pos;
    p.line = save_line;
    Node prev = parse_node();
    bool connected = false;
    while (p.accept("->")) {
      const Node next = parse_node();
      connect_checked(prev, *next.elem);
      prev = next;
      connected = true;
    }
    if (!connected && !prev.inline_decl)
      p.fail("statement has no effect (a bare element reference)");
    reject_tail_selector(prev);
    if (!p.accept(";") && !p.at_end()) p.fail("expected ';' after chain");
  }
  return g;
}

// --- built-in registration hook ---------------------------------------------

void register_builtin_elements();  // elements.cpp

namespace {
void ensure_builtins_registered() {
  static const bool once = [] {
    register_builtin_elements();
    return true;
  }();
  (void)once;
}
}  // namespace

}  // namespace nuevomatch::pipeline
