// telemetry::Snapshot — the join between the generic metric registry
// (common/metrics.hpp) and the four structured health surfaces the dataplane
// already exposes: EngineHealth (nuevomatch/online.hpp), RuntimeHealth
// (pipeline/scheduler.hpp), PipelineHealth (pipeline/replicate.hpp) and
// FlowCache::Stats (pipeline/flow_cache.hpp).
//
// Division of labour (and why there are no duplicate series): the registry
// holds EVENT metrics — things that happen on hot paths and must be counted
// where they happen (fires, bursts, commits, latency samples). The health
// structs hold STATE — snapshots already maintained, mutex-guarded, by their
// owners. Snapshot renders both into one exposition: registry metrics
// verbatim, health fields as derived nm_* series. No subsystem reports the
// same fact through both channels.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/metrics.hpp"
#include "nuevomatch/online.hpp"
#include "pipeline/flow_cache.hpp"
#include "pipeline/replicate.hpp"
#include "pipeline/scheduler.hpp"

namespace nuevomatch::telemetry {

/// One coherent view of the whole dataplane, exportable as Prometheus text
/// exposition or JSON. Every section is optional except the registry: a
/// scalar pipeline has no PipelineHealth, an engine-less graph no
/// EngineHealth — absent sections are simply omitted from the output.
struct Snapshot {
  RegistrySnapshot registry;

  std::optional<EngineHealth> engine;
  std::optional<pipeline::RuntimeHealth> runtime;
  /// Replica supervision layer (implies a runtime section of its own —
  /// when both `pipeline` and `runtime` are set, `pipeline->runtime` wins).
  std::optional<pipeline::PipelineHealth> pipeline;
  /// Summed across every FlowCache feeding this snapshot.
  std::optional<pipeline::FlowCache::Stats> cache;
  uint64_t cache_entries = 0;   ///< live entries (point-in-time occupancy)
  uint64_t cache_capacity = 0;  ///< summed configured capacity

  [[nodiscard]] std::string to_prometheus() const;
  [[nodiscard]] std::string to_json() const;
};

/// Collect the process-wide registry plus whichever surfaces are provided.
/// (Convenience for call sites that have the structs in hand; members can
/// equally be filled field by field.)
[[nodiscard]] Snapshot capture(
    const EngineHealth* engine = nullptr,
    const pipeline::RuntimeHealth* runtime = nullptr,
    const pipeline::PipelineHealth* pipeline = nullptr,
    const pipeline::FlowCache::Stats* cache = nullptr);

}  // namespace nuevomatch::telemetry
