#include "pipeline/replicate.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace nuevomatch::pipeline {

ReplicatedGraph::ReplicatedGraph(std::vector<Graph> graphs)
    : graphs_(std::move(graphs)) {
  if (graphs_.empty())
    throw std::runtime_error("ReplicatedGraph needs at least one replica");
  install_filters();
}

ReplicatedGraph::ReplicatedGraph(uint32_t n_replicas, const Builder& build)
    : ReplicatedGraph([&] {
        if (n_replicas == 0)
          throw std::runtime_error("ReplicatedGraph needs at least one replica");
        std::vector<Graph> gs;
        gs.reserve(n_replicas);
        for (uint32_t i = 0; i < n_replicas; ++i)
          gs.push_back(build(i, n_replicas));
        return gs;
      }()) {}

ReplicatedGraph ReplicatedGraph::parse(std::string_view config,
                                       uint32_t n_replicas) {
  if (n_replicas == 0)
    throw std::runtime_error("ReplicatedGraph needs at least one replica");
  std::vector<Graph> gs;
  gs.reserve(n_replicas);
  // Replica 0 pays for training; the rest adopt its engine. No donor scope
  // is opened when replica 0 has no Classifier — each parse is then
  // self-contained anyway (counters, sinks, caches are per-replica).
  gs.push_back(Graph::parse(config));
  const auto* proto = gs.front().find_kind<ClassifierElement>();
  for (uint32_t i = 1; i < n_replicas; ++i) {
    if (proto != nullptr) {
      const ScopedEngineDonor donor(*proto);
      gs.push_back(Graph::parse(config));
    } else {
      gs.push_back(Graph::parse(config));
    }
  }
  return ReplicatedGraph(std::move(gs));
}

void ReplicatedGraph::install_filters() {
  const auto n = static_cast<uint32_t>(graphs_.size());
  for (uint32_t i = 0; i < n; ++i) {
    bool has_source = false;
    for (const auto& e : graphs_[i].elements()) {
      if (!e->is_source()) continue;
      static_cast<SourceElement&>(*e).set_replica_filter(i, n);
      has_source = true;
    }
    if (!has_source)
      throw std::runtime_error("ReplicatedGraph: replica graph has no source");
  }
}

OnlineNuevoMatch* ReplicatedGraph::shared_online() const {
  OnlineNuevoMatch* shared = nullptr;
  for (const Graph& g : graphs_) {
    for (const auto& e : g.elements()) {
      const auto* cls = dynamic_cast<const ClassifierElement*>(e.get());
      if (cls == nullptr || cls->online() == nullptr) continue;
      if (shared != nullptr && shared != cls->online())
        throw std::runtime_error(
            "ReplicatedGraph: replicas hold DIFFERENT online engines — the "
            "fan-in contract is one shared engine (adopt_shared / attach the "
            "same shared_ptr in every replica)");
      shared = cls->online();
    }
  }
  return shared;
}

uint64_t ReplicatedGraph::run(const ReplicatedRunOptions& opts) {
  if (ran_) throw std::runtime_error("ReplicatedGraph::run is one-shot");
  ran_ = true;

  // Initialize on the calling thread: engine checks and cache/classifier
  // coupling fail here, with a clean stack, not inside a worker.
  for (Graph& g : graphs_) g.initialize();

  std::atomic<uint64_t> total{0};
  Scheduler::Options sopt;
  sopt.quantum = opts.quantum;
  Scheduler sched(opts.threads, sopt);

  const auto n_threads = static_cast<uint32_t>(sched.threads());
  for (uint32_t i = 0; i < graphs_.size(); ++i) {
    Graph* g = &graphs_[i];
    Task::Options topt;
    topt.home = i % n_threads;  // round-robin initial placement
    topt.label = "replica@" + std::to_string(i);
    sched.add(
        [g, &total, &opts]() -> TaskState {
          uint64_t pumped = 0;
          if (!g->step(&pumped)) return TaskState::kDone;
          const uint64_t cum =
              total.fetch_add(pumped, std::memory_order_relaxed) + pumped;
          if (opts.tick) opts.tick(cum);
          return TaskState::kWorked;
        },
        std::move(topt));
  }

  if (opts.retrain_task) {
    if (OnlineNuevoMatch* eng = shared_online(); eng != nullptr) {
      Task::Options topt;
      topt.daemon = true;
      topt.label = "retrain-maintenance";
      sched.add(
          [eng]() -> TaskState {
            if (eng->retrain_in_progress()) return TaskState::kIdle;
            if (eng->absorption() < eng->config().retrain_threshold)
              return TaskState::kIdle;
            eng->retrain_now();
            return TaskState::kWorked;
          },
          std::move(topt));
    }
  }

  sched.run();
  stats_ = sched.stats();
  for (Graph& g : graphs_) g.finish_run();
  return total.load(std::memory_order_relaxed);
}

std::vector<Sink::Record> ReplicatedGraph::merged_records() const {
  std::vector<Sink::Record> all;
  for (const Graph& g : graphs_) {
    for (const auto& e : g.elements()) {
      const auto* s = dynamic_cast<const Sink*>(e.get());
      if (s == nullptr) continue;
      all.insert(all.end(), s->records().begin(), s->records().end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const Sink::Record& a, const Sink::Record& b) {
              return a.index < b.index;
            });
  return all;
}

uint64_t ReplicatedGraph::total_counter_packets() const {
  uint64_t total = 0;
  for (const Graph& g : graphs_) {
    for (const auto& e : g.elements()) {
      if (const auto* c = dynamic_cast<const Counter*>(e.get()); c != nullptr)
        total += c->packets();
    }
  }
  return total;
}

uint64_t ReplicatedGraph::total_sink_packets() const {
  uint64_t total = 0;
  for (const Graph& g : graphs_) {
    for (const auto& e : g.elements()) {
      if (const auto* s = dynamic_cast<const Sink*>(e.get()); s != nullptr)
        total += s->packets();
    }
  }
  return total;
}

std::string ReplicatedGraph::report() const {
  std::string out;
  for (size_t i = 0; i < graphs_.size(); ++i) {
    out += "replica " + std::to_string(i) + ":\n";
    out += graphs_[i].report();
  }
  return out;
}

}  // namespace nuevomatch::pipeline
