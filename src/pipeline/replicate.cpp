#include "pipeline/replicate.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/failpoint.hpp"
#include "pipeline/metrics_exporter.hpp"

namespace nuevomatch::pipeline {

namespace {
const char* replica_state_name(ReplicaHealth::State s) {
  switch (s) {
    case ReplicaHealth::State::kLive: return "live";
    case ReplicaHealth::State::kQuarantined: return "quarantined";
    case ReplicaHealth::State::kRejoined: return "rejoined";
  }
  return "?";
}

const char* phase_name(TaskPhase p) {
  switch (p) {
    case TaskPhase::kRunnable: return "runnable";
    case TaskPhase::kBackoff: return "backoff";
    case TaskPhase::kQuarantined: return "quarantined";
    case TaskPhase::kDone: return "done";
  }
  return "?";
}
}  // namespace

std::string PipelineHealth::to_string() const {
  std::string out = "runtime: " + std::to_string(runtime.tasks.size()) +
                    " tasks, " + std::to_string(runtime.quarantines) +
                    " quarantines, " + std::to_string(runtime.restarts) +
                    " restarts, " + std::to_string(runtime.suppressed_errors) +
                    " suppressed errors\n";
  for (const TaskHealth& t : runtime.tasks) {
    out += "  task " + t.label + ": " + phase_name(t.phase) +
           (t.daemon ? " (daemon)" : "") + ", fires=" + std::to_string(t.fires) +
           " worked=" + std::to_string(t.worked) +
           " restarts=" + std::to_string(t.restarts) +
           " quarantines=" + std::to_string(t.quarantines);
    if (t.budget_overruns > 0)
      out += " budget_overruns=" + std::to_string(t.budget_overruns);
    if (t.stalled) out += " STALLED";
    if (!t.last_error.empty()) out += " last_error=\"" + t.last_error + "\"";
    out += "\n";
  }
  for (size_t i = 0; i < replicas.size(); ++i) {
    const ReplicaHealth& r = replicas[i];
    out += "  replica " + std::to_string(i) + ": " +
           replica_state_name(r.state) +
           ", quarantines=" + std::to_string(r.quarantines) +
           " rejoins=" + std::to_string(r.rejoins) +
           " drained=" + std::to_string(r.drained_entries) +
           " steps=" + std::to_string(r.steps) + "\n";
  }
  out += "  trainer: ";
  out += trainer == kNoTrainer ? "none" : ("replica " + std::to_string(trainer));
  out += " (failovers=" + std::to_string(trainer_failovers) +
         "), rejoin failures=" + std::to_string(rejoin_failures) +
         ", steer epochs=" + std::to_string(steer_epochs) +
         ", recovery=" + std::to_string(recovery_ns / 1000) + " us\n";
  return out;
}

ReplicatedGraph::ReplicatedGraph(std::vector<Graph> graphs)
    : graphs_(std::move(graphs)) {
  if (graphs_.empty())
    throw std::runtime_error("ReplicatedGraph needs at least one replica");
  rhealth_.resize(graphs_.size());
  install_filters();
}

ReplicatedGraph::ReplicatedGraph(uint32_t n_replicas, const Builder& build)
    : ReplicatedGraph([&] {
        if (n_replicas == 0)
          throw std::runtime_error("ReplicatedGraph needs at least one replica");
        std::vector<Graph> gs;
        gs.reserve(n_replicas);
        for (uint32_t i = 0; i < n_replicas; ++i)
          gs.push_back(build(i, n_replicas));
        return gs;
      }()) {}

ReplicatedGraph ReplicatedGraph::parse(std::string_view config,
                                       uint32_t n_replicas) {
  if (n_replicas == 0)
    throw std::runtime_error("ReplicatedGraph needs at least one replica");
  std::vector<Graph> gs;
  gs.reserve(n_replicas);
  // Replica 0 pays for training; the rest adopt its engine. No donor scope
  // is opened when replica 0 has no Classifier — each parse is then
  // self-contained anyway (counters, sinks, caches are per-replica).
  gs.push_back(Graph::parse(config));
  const auto* proto = gs.front().find_kind<ClassifierElement>();
  for (uint32_t i = 1; i < n_replicas; ++i) {
    if (proto != nullptr) {
      if (failpoint::should_fire(failpoint::kPipelineAdopt))
        throw std::runtime_error("injected: pipeline.replica.adopt");
      const ScopedEngineDonor donor(*proto);
      gs.push_back(Graph::parse(config));
    } else {
      gs.push_back(Graph::parse(config));
    }
  }
  return ReplicatedGraph(std::move(gs));
}

void ReplicatedGraph::install_filters() {
  const auto n = static_cast<uint32_t>(graphs_.size());
  for (uint32_t i = 0; i < n; ++i) {
    bool has_source = false;
    for (const auto& e : graphs_[i].elements()) {
      if (!e->is_source()) continue;
      static_cast<SourceElement&>(*e).set_replica_filter(i, n);
      has_source = true;
    }
    if (!has_source)
      throw std::runtime_error("ReplicatedGraph: replica graph has no source");
  }
}

OnlineNuevoMatch* ReplicatedGraph::shared_online() const {
  OnlineNuevoMatch* shared = nullptr;
  for (const Graph& g : graphs_) {
    for (const auto& e : g.elements()) {
      const auto* cls = dynamic_cast<const ClassifierElement*>(e.get());
      if (cls == nullptr || cls->online() == nullptr) continue;
      if (shared != nullptr && shared != cls->online())
        throw std::runtime_error(
            "ReplicatedGraph: replicas hold DIFFERENT online engines — the "
            "fan-in contract is one shared engine (adopt_shared / attach the "
            "same shared_ptr in every replica)");
      shared = cls->online();
    }
  }
  return shared;
}

void ReplicatedGraph::readopt(uint32_t idx) {
  if (failpoint::should_fire(failpoint::kPipelineAdopt))
    throw std::runtime_error("injected: pipeline.replica.adopt");
  OnlineNuevoMatch* eng = shared_online();
  for (const auto& e : graphs_[idx].elements()) {
    if (auto* fc = dynamic_cast<FlowCacheElement*>(e.get()); fc != nullptr)
      fc->cache().set_stamp_source(eng);
    if (const auto* cls = dynamic_cast<const ClassifierElement*>(e.get());
        cls != nullptr && cls->online() != nullptr && cls->online() != eng)
      throw std::runtime_error(
          "rejoin: replica lost the shared engine (fan-in broken)");
  }
}

void ReplicatedGraph::quarantine_replica(uint32_t idx, Task& t,
                                         Scheduler& sched,
                                         const ReplicatedRunOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  // 0. Serialize: a second replica crashing while this ladder runs blocks
  //    here until the first recovery is COMPLETE (pause cleared). The
  //    blocked thread is a catcher, not a pump — its crashed task already
  //    left the pumping_ bracket — so holding it cannot deadlock the
  //    quiesce below, and every ladder runs against a settled steering
  //    table, trainer assignment, and health record.
  const std::lock_guard<std::mutex> rec(recovery_mu_);
  // 1. Quiesce: no source may advance while we pick the re-steer cutover.
  //    The catching thread sits BETWEEN fires of the crashed task, so only
  //    sibling replicas can be mid-pump; they run to burst completion and
  //    park on the paused gate. (The pumping_/paused_ pair is seq_cst: a
  //    pump either sees paused and backs out, or its increment is seen
  //    here and we wait it out — never neither.)
  paused_.store(true, std::memory_order_seq_cst);
  while (pumping_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();

  // 2. Cutover: ahead of every source's consumed position, so no survivor
  //    has already passed work the new epoch assigns to it — the ordering
  //    half of the re-steer argument (the other half is Burst::index
  //    staying the global merge key; see DESIGN.md).
  uint64_t cut = 0;
  for (Graph& g : graphs_) {
    for (const auto& e : g.elements()) {
      if (!e->is_source()) continue;
      cut = std::max(cut, static_cast<SourceElement&>(*e).stream_pos());
    }
  }
  cut = std::max(cut, steering_->last_from());

  // 3. Decide the rejoin BEFORE installing epochs — the table must promise
  //    only what will actually happen.
  bool rejoining = opts.rejoin;
  if (rejoining && failpoint::should_fire(failpoint::kPipelineRejoin))
    rejoining = false;
  if (rejoining) {
    try {
      readopt(idx);
    } catch (...) {
      rejoining = false;
    }
  }

  // 4. Re-steer epochs: the dead replica's slice is owned by survivors for
  //    [cut, cut+window), then by the rejoined replica again. Positions the
  //    crashed replica consumed before `cut` stay ITS property — its source
  //    state survived the crash (the fire seam is between bursts), so the
  //    reinstated task serves them and nothing is lost or duplicated. If
  //    the epoch table is full (pathological repeated crashes), skip the
  //    re-steer: ownership then simply never leaves the replica, which is
  //    still a partition — just without survivor coverage of the window.
  const uint32_t full = steering_->full_mask();
  const uint32_t without = full & ~(1u << idx);
  const size_t need = rejoining ? 2 : 1;
  if (without != 0 && steering_->epochs() + need <= ReplicaSteering::kMaxEpochs) {
    steering_->append(cut, without);
    if (rejoining) steering_->append(cut + opts.resteer_window, full);
  }

  // 5. Drain: the replica's serving state — its flow cache — is dropped,
  //    as a cold respawn would arrive with. Decision records (sinks,
  //    counters) are audit state the differential joins on; they survive.
  uint64_t drained = 0;
  for (const auto& e : graphs_[idx].elements()) {
    if (auto* fc = dynamic_cast<FlowCacheElement*>(e.get()); fc != nullptr) {
      // Occupancy at drain time — NOT cumulative inserts, which would
      // overstate the drop (and double-count across repeated quarantines).
      drained += fc->cache().size();
      fc->cache().clear();
    }
  }

  // 6. Trainer failover: training duties migrate to the lowest live
  //    replica the moment their host dies — no failback on rejoin (the
  //    migrated daemon is already committing; moving it again buys
  //    nothing). With no other replica to migrate to, duties stay with a
  //    rejoining host, or are suspended entirely (kNoTrainer) on a lossy
  //    non-rejoin quarantine.
  bool failover = false;
  if (trainer_.load(std::memory_order_acquire) == idx) {
    if (without != 0) {
      trainer_.store(static_cast<uint32_t>(std::countr_zero(without)),
                     std::memory_order_release);
      failover = true;
    } else if (!rejoining) {
      trainer_.store(PipelineHealth::kNoTrainer, std::memory_order_release);
    }
  }

  // 7. Respawn: re-enter the task on its home queue. Happens before the
  //    liveness release in the scheduler (the hook is synchronous), so the
  //    run can never slip out from under a rejoining replica.
  const bool rejoined = rejoining && sched.reinstate(t);

  {
    const std::lock_guard<std::mutex> lk(health_mu_);
    ReplicaHealth& rh = rhealth_[idx];
    rh.state = rejoined ? ReplicaHealth::State::kRejoined
                        : ReplicaHealth::State::kQuarantined;
    ++rh.quarantines;
    if (rejoined) ++rh.rejoins;
    rh.drained_entries += drained;
    if (opts.rejoin && !rejoined) ++rejoin_failures_;
    if (failover) ++trainer_failovers_;
    recovery_ns_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  paused_.store(false, std::memory_order_seq_cst);
}

uint64_t ReplicatedGraph::run(const ReplicatedRunOptions& opts) {
  if (ran_) throw std::runtime_error("ReplicatedGraph::run is one-shot");
  ran_ = true;

  // Initialize on the calling thread: engine checks and cache/classifier
  // coupling fail here, with a clean stack, not inside a worker.
  for (Graph& g : graphs_) g.initialize();

  const auto n = static_cast<uint32_t>(graphs_.size());
  const bool supervised = opts.policy != SupervisorPolicy::kEscalate;
  if (supervised) {
    // Swap the fixed modulo split for the piecewise steering table. Its
    // epoch-0 owner function is IDENTICAL to the modulo split, so an
    // uneventful supervised run produces the exact PR 7 partition.
    steering_ = std::make_unique<ReplicaSteering>(n);
    for (Graph& g : graphs_) {
      for (const auto& e : g.elements()) {
        if (e->is_source())
          static_cast<SourceElement&>(*e).set_steering(steering_.get());
      }
    }
  }
  trainer_.store(0, std::memory_order_release);  // replica 0 trains (PR 7)

  std::atomic<uint64_t> total{0};
  Scheduler::Options sopt;
  sopt.quantum = opts.quantum;
  Scheduler sched(opts.threads, sopt);

  const auto n_threads = static_cast<uint32_t>(sched.threads());
  std::vector<Task*> rtasks(n, nullptr);
  for (uint32_t i = 0; i < n; ++i) {
    Graph* g = &graphs_[i];
    Task::Options topt;
    topt.home = i % n_threads;  // round-robin initial placement
    topt.label = "replica@" + std::to_string(i);
    topt.policy = opts.policy;
    topt.max_restarts = opts.max_restarts;
    topt.backoff_seed = 0x5CEDu + i;  // desynchronize co-failing replicas
    rtasks[i] = &sched.add(
        [g, this, &total, &opts]() -> TaskState {
          // Pump accounting brackets the step so the quarantine path can
          // quiesce: increment FIRST, then check the gate (seq_cst pairs
          // with quarantine_replica's store/load order).
          pumping_.fetch_add(1, std::memory_order_seq_cst);
          if (paused_.load(std::memory_order_seq_cst)) {
            pumping_.fetch_sub(1, std::memory_order_release);
            return TaskState::kIdle;
          }
          uint64_t pumped = 0;
          bool more = false;
          try {
            more = g->step(&pumped);
          } catch (...) {
            pumping_.fetch_sub(1, std::memory_order_release);
            throw;  // the scheduler's supervisor takes it from here
          }
          pumping_.fetch_sub(1, std::memory_order_release);
          if (!more) return TaskState::kDone;
          if (Task* self = Scheduler::current_task()) self->beat();
          const uint64_t cum =
              total.fetch_add(pumped, std::memory_order_relaxed) + pumped;
          if (opts.tick) opts.tick(cum);
          return TaskState::kWorked;
        },
        std::move(topt));
  }

  if (opts.retrain_task) {
    if (OnlineNuevoMatch* eng = shared_online(); eng != nullptr) {
      Task::Options topt;
      topt.daemon = true;
      topt.label = "retrain-maintenance";
      topt.policy = opts.policy;
      sched.add(
          [eng, this]() -> TaskState {
            // Updates commit only while a live replica hosts training
            // duties; the quarantine path migrates this assignment when
            // the trainer dies (trainer failover).
            if (trainer_.load(std::memory_order_acquire) ==
                PipelineHealth::kNoTrainer)
              return TaskState::kIdle;
            if (eng->retrain_in_progress()) return TaskState::kIdle;
            if (eng->absorption() < eng->config().retrain_threshold)
              return TaskState::kIdle;
            eng->retrain_now();
            return TaskState::kWorked;
          },
          std::move(topt));
    }
  }

  // Telemetry daemon: every replica parsed from one config text gets its
  // own MetricsExporter clone; each is wired to this pipeline's live health
  // and polled by ONE daemon task (the exporters themselves serialize via
  // try-lock, and only one wins the listener port — first-binder-wins).
  std::vector<MetricsExporter*> exporters;
  for (Graph& g : graphs_)
    for (const auto& e : g.elements())
      if (auto* me = dynamic_cast<MetricsExporter*>(e.get()))
        exporters.push_back(me);
  for (MetricsExporter* me : exporters)
    me->set_pipeline_health_source([this] { return health(); });
  if (!exporters.empty()) {
    Task::Options topt;
    topt.daemon = true;
    topt.label = "metrics-exporter";
    topt.policy = opts.policy;
    sched.add(
        [exporters]() -> TaskState {
          bool worked = false;
          for (MetricsExporter* me : exporters) worked |= me->poll();
          return worked ? TaskState::kWorked : TaskState::kIdle;
        },
        std::move(topt));
  }

  if (supervised) {
    sched.set_on_quarantine([this, &sched, &rtasks, &opts](Task& t) {
      for (uint32_t i = 0; i < rtasks.size(); ++i) {
        if (rtasks[i] == &t) {
          quarantine_replica(i, t, sched, opts);
          return;
        }
      }
      // Not a replica: the retrain daemon itself crashed. Respawn it in
      // place — engine-side failures already have their own backoff ladder
      // inside OnlineNuevoMatch, so the task just needs to keep existing.
      sched.reinstate(t);
    });
  }

  std::exception_ptr run_err;
  try {
    sched.run();
  } catch (...) {
    run_err = std::current_exception();
  }
  stats_ = sched.stats();
  {
    const std::lock_guard<std::mutex> lk(health_mu_);
    runtime_health_ = sched.health();
    for (uint32_t i = 0; i < n; ++i)
      rhealth_[i].steps = graphs_[i].health().steps;
  }
  // Escalated errors keep the PR 7 surface: rethrow without finishing the
  // graphs (exactly what a direct sched.run() throw did before).
  if (run_err != nullptr) std::rethrow_exception(run_err);
  for (Graph& g : graphs_) g.finish_run();
  return total.load(std::memory_order_relaxed);
}

PipelineHealth ReplicatedGraph::health() const {
  PipelineHealth h;
  const std::lock_guard<std::mutex> lk(health_mu_);
  h.runtime = runtime_health_;
  h.replicas = rhealth_;
  h.trainer = trainer_.load(std::memory_order_acquire);
  h.trainer_failovers = trainer_failovers_;
  h.rejoin_failures = rejoin_failures_;
  h.steer_epochs = steering_ != nullptr ? steering_->epochs() : 1;
  h.recovery_ns = recovery_ns_;
  return h;
}

std::vector<Sink::Record> ReplicatedGraph::merged_records() const {
  std::vector<Sink::Record> all;
  for (const Graph& g : graphs_) {
    for (const auto& e : g.elements()) {
      const auto* s = dynamic_cast<const Sink*>(e.get());
      if (s == nullptr) continue;
      all.insert(all.end(), s->records().begin(), s->records().end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const Sink::Record& a, const Sink::Record& b) {
              return a.index < b.index;
            });
  return all;
}

uint64_t ReplicatedGraph::total_counter_packets() const {
  uint64_t total = 0;
  for (const Graph& g : graphs_) {
    for (const auto& e : g.elements()) {
      if (const auto* c = dynamic_cast<const Counter*>(e.get()); c != nullptr)
        total += c->packets();
    }
  }
  return total;
}

uint64_t ReplicatedGraph::total_sink_packets() const {
  uint64_t total = 0;
  for (const Graph& g : graphs_) {
    for (const auto& e : g.elements()) {
      if (const auto* s = dynamic_cast<const Sink*>(e.get()); s != nullptr)
        total += s->packets();
    }
  }
  return total;
}

std::string ReplicatedGraph::report() const {
  std::string out;
  for (size_t i = 0; i < graphs_.size(); ++i) {
    out += "replica " + std::to_string(i) + ":\n";
    out += graphs_[i].report();
  }
  return out;
}

}  // namespace nuevomatch::pipeline
