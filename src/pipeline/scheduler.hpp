// Click-style task scheduler: the Task / RouterThread analogue that turns
// the single-threaded element graph into a per-core replicated dataplane
// (DESIGN.md "Scheduler").
//
// Model — run-to-completion tasks on per-thread run queues:
//
//   * A Task wraps a fire callback. One fire is one unit of run-to-
//     completion work (for a pipeline replica: pump one burst from the
//     source and push it through the whole graph). The callback reports
//     kWorked (made progress), kIdle (nothing to do right now), or kDone
//     (permanently finished — the task leaves its queue forever).
//   * Each scheduler thread owns a run queue and loops: pop the front
//     task, fire it up to `quantum` consecutive times while it keeps
//     reporting kWorked, push it back, take the next. The quantum is the
//     fairness knob — a saturated source cannot starve its queue-mates
//     for longer than one quantum (Click's task tickets, simplified to a
//     fixed slice).
//   * An idle thread steals: it locks another thread's queue and takes one
//     migratable task. Migration happens only BETWEEN fires — a task is
//     popped (invisible to other threads) while firing, so a task's fires
//     are totally ordered no matter how often it migrates, and every
//     handoff goes through a queue mutex. That release/acquire pair is
//     what lets tasks keep plain (non-atomic) element state: the next
//     thread to fire a task sees everything the previous one wrote.
//   * Daemon tasks (background retrain kicks, housekeeping) never count
//     toward liveness: the scheduler exits when every NON-daemon task is
//     done, daemons simply stop being fired. Each live daemon is fired
//     exactly once more while the scheduler drains (unless stopped by
//     request_stop() or an error), so a short or lopsided run can never
//     skip a pending maintenance action entirely.
//
// The flow-affinity argument (why per-flow packet order survives all of
// this) is in DESIGN.md: a flow hashes to exactly one replica, a replica
// is exactly one task, and a task's fires are totally ordered.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nuevomatch::pipeline {

/// What one fire of a task accomplished.
enum class TaskState : uint8_t {
  kWorked,  ///< made progress; may be fired again immediately
  kIdle,    ///< nothing to do right now; reschedule and try later
  kDone,    ///< permanently finished; remove from the scheduler
};

class Scheduler;

/// A schedulable unit of run-to-completion work. Created via
/// Scheduler::add(); the Scheduler owns it (references stay valid for the
/// scheduler's lifetime — stats can be read after run() returns).
class Task {
 public:
  using Fire = std::function<TaskState()>;

  struct Options {
    uint32_t home = 0;        ///< queue the task starts on (mod n_threads)
    bool migratable = true;   ///< may be stolen by an idle thread
    bool daemon = false;      ///< does not keep the scheduler alive
    std::string label;        ///< for stats / debugging
  };

  [[nodiscard]] const std::string& label() const noexcept { return opt_.label; }
  [[nodiscard]] bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }
  /// Total fire() invocations / fires that reported kWorked.
  [[nodiscard]] uint64_t fires() const noexcept {
    return fires_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t worked() const noexcept {
    return worked_.load(std::memory_order_relaxed);
  }
  /// Times the task was stolen onto a different thread than it last ran on.
  [[nodiscard]] uint64_t migrations() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }

 private:
  friend class Scheduler;
  Task(Fire fire, Options opt) : fire_(std::move(fire)), opt_(std::move(opt)) {}

  Fire fire_;
  Options opt_;
  std::atomic<uint64_t> fires_{0};
  std::atomic<uint64_t> worked_{0};
  std::atomic<uint64_t> migrations_{0};
  std::atomic<bool> done_{false};
  uint32_t last_thread_ = 0;  // written only by the thread holding the task
};

/// Post-run scheduler telemetry (aggregated after every worker joins).
struct SchedulerStats {
  uint64_t fires = 0;       ///< task fires across all threads
  uint64_t worked = 0;      ///< fires that reported kWorked
  uint64_t idle_fires = 0;  ///< fires that reported kIdle
  uint64_t steals = 0;      ///< successful cross-thread steals
  std::vector<uint64_t> fires_per_thread;
};

class Scheduler {
 public:
  struct Options {
    /// Max consecutive fires of one task before yielding the thread to its
    /// queue-mates. Click's STRIDE slice equivalent.
    uint32_t quantum = 8;
  };

  // Two constructors instead of `Options opt = {}`: gcc rejects a braced
  // default argument of a nested class with default member initializers.
  explicit Scheduler(size_t n_threads) : Scheduler(n_threads, Options{}) {}
  Scheduler(size_t n_threads, Options opt);

  /// Register a task before run(). The returned reference stays valid for
  /// the scheduler's lifetime.
  Task& add(Task::Fire fire, Task::Options topt = {});

  /// Run until every non-daemon task reports kDone (or request_stop()).
  /// The CALLING thread becomes scheduler thread 0; n_threads-1 workers
  /// are spawned. One-shot: a Scheduler instance runs once. A task
  /// callback that throws stops the scheduler cleanly (in-flight fires
  /// complete) and the first exception is re-thrown here after all
  /// workers joined.
  void run();

  /// Ask every thread to drain out. Safe from any thread, including from
  /// inside a task fire; threads finish their current fire (bursts are
  /// never abandoned mid-element) and exit.
  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }

  [[nodiscard]] size_t threads() const noexcept { return states_.size(); }
  /// Valid after run() returns.
  [[nodiscard]] const SchedulerStats& stats() const noexcept { return stats_; }

  /// Scheduler thread index of the calling thread, or -1 outside a fire.
  /// Lets tests (and affinity-aware tasks) observe where they run.
  [[nodiscard]] static int current_thread() noexcept;

 private:
  struct ThreadState {
    std::mutex mu;
    std::deque<Task*> queue;  // guarded by mu
    // Thread-private counters (aggregated into stats_ after joins).
    uint64_t fires = 0;
    uint64_t worked = 0;
    uint64_t idle_fires = 0;
    uint64_t steals = 0;
    uint32_t consec_idle = 0;
  };

  void thread_loop(uint32_t tid);
  [[nodiscard]] Task* pop_local(ThreadState& ts);
  [[nodiscard]] Task* try_steal(uint32_t thief);
  void record_error() noexcept;

  Options opt_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<ThreadState>> states_;
  std::atomic<size_t> live_{0};  ///< non-daemon tasks not yet done
  std::atomic<bool> stop_{false};
  std::mutex err_mu_;
  std::exception_ptr first_error_;  // guarded by err_mu_
  SchedulerStats stats_;
  bool ran_ = false;
};

}  // namespace nuevomatch::pipeline
