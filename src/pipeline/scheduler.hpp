// Click-style task scheduler: the Task / RouterThread analogue that turns
// the single-threaded element graph into a per-core replicated dataplane
// (DESIGN.md "Scheduler").
//
// Model — run-to-completion tasks on per-thread run queues:
//
//   * A Task wraps a fire callback. One fire is one unit of run-to-
//     completion work (for a pipeline replica: pump one burst from the
//     source and push it through the whole graph). The callback reports
//     kWorked (made progress), kIdle (nothing to do right now), or kDone
//     (permanently finished — the task leaves its queue forever).
//   * Each scheduler thread owns a run queue and loops: pop the front
//     task, fire it up to `quantum` consecutive times while it keeps
//     reporting kWorked, push it back, take the next. The quantum is the
//     fairness knob — a saturated source cannot starve its queue-mates
//     for longer than one quantum (Click's task tickets, simplified to a
//     fixed slice).
//   * An idle thread steals: it locks another thread's queue and takes one
//     migratable task. Migration happens only BETWEEN fires — a task is
//     popped (invisible to other threads) while firing, so a task's fires
//     are totally ordered no matter how often it migrates, and every
//     handoff goes through a queue mutex. That release/acquire pair is
//     what lets tasks keep plain (non-atomic) element state: the next
//     thread to fire a task sees everything the previous one wrote.
//   * Daemon tasks (background retrain kicks, housekeeping) never count
//     toward liveness: the scheduler exits when every NON-daemon task is
//     done, daemons simply stop being fired. Each live daemon is fired
//     exactly once more while the scheduler drains (unless stopped by
//     request_stop() or an error), so a short or lopsided run can never
//     skip a pending maintenance action entirely.
//   * Supervision (DESIGN.md "Failure model"): every task carries a
//     SupervisorPolicy deciding what a THROWING fire does. kEscalate is
//     the original fail-stop behavior — record the error, stop the world,
//     rethrow out of run(). kRestart re-arms the task after a seeded
//     exponential backoff (the engine's PR 6 backoff shape: delay =
//     min(initial·2^(k-1), max), jittered to [d/2, d]); a task that
//     exhausts max_restarts falls through to quarantine. kQuarantine
//     detaches the task — siblings keep firing — and invokes the
//     on_quarantine hook synchronously on the catching thread, which may
//     drain/respawn state and reinstate() the task. A cooperative watchdog
//     samples each task BETWEEN fires (no signals, no preemption): fires
//     exceeding fire_budget_ns are counted as budget overruns, and a task
//     that keeps claiming kWorked without advancing its heartbeat for
//     stall_fires consecutive fires is flagged stalled. All of it surfaces
//     in RuntimeHealth.
//
// The flow-affinity argument (why per-flow packet order survives all of
// this) is in DESIGN.md: a flow hashes to exactly one replica, a replica
// is exactly one task, and a task's fires are totally ordered.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace nuevomatch::pipeline {

/// What one fire of a task accomplished.
enum class TaskState : uint8_t {
  kWorked,  ///< made progress; may be fired again immediately
  kIdle,    ///< nothing to do right now; reschedule and try later
  kDone,    ///< permanently finished; remove from the scheduler
};

/// What the scheduler does with a task whose fire threw.
enum class SupervisorPolicy : uint8_t {
  kEscalate,    ///< stop the world, rethrow out of run() (the default)
  kRestart,     ///< re-arm after seeded exponential backoff; quarantine
                ///< once max_restarts consecutive failures are exhausted
  kQuarantine,  ///< detach the task; siblings keep firing; reinstate()able
};

/// Where a task currently is in its supervision lifecycle.
enum class TaskPhase : uint8_t {
  kRunnable,     ///< queued or firing
  kBackoff,      ///< waiting out a restart delay (kRestart)
  kQuarantined,  ///< detached after a failure; reinstate() re-enters it
  kDone,         ///< reported kDone (or was finished by escalation)
};

class Scheduler;

/// A schedulable unit of run-to-completion work. Created via
/// Scheduler::add(); the Scheduler owns it (references stay valid for the
/// scheduler's lifetime — stats can be read after run() returns).
class Task {
 public:
  using Fire = std::function<TaskState()>;

  struct Options {
    uint32_t home = 0;        ///< queue the task starts on (mod n_threads)
    bool migratable = true;   ///< may be stolen by an idle thread
    bool daemon = false;      ///< does not keep the scheduler alive
    std::string label;        ///< for stats / debugging
    /// Supervision: what a throwing fire does (see SupervisorPolicy).
    SupervisorPolicy policy = SupervisorPolicy::kEscalate;
    /// kRestart: consecutive failures tolerated before quarantining. The
    /// streak resets on any fire that returns (success clears the ladder,
    /// like the engine's retrain recovery).
    uint32_t max_restarts = 3;
    /// kRestart backoff shape — identical to OnlineConfig's retrain
    /// backoff: delay = min(backoff_initial_ms·2^(k-1), backoff_max_ms),
    /// jittered deterministically to [d/2, d] from backoff_seed.
    uint32_t backoff_initial_ms = 10;
    uint32_t backoff_max_ms = 2000;
    uint64_t backoff_seed = 0x5CEDu;
    /// Watchdog: a fire taking longer than this is counted as a budget
    /// overrun (sampled AFTER the fire returns — cooperative, no
    /// preemption). 0 disables the timer entirely (no clock reads).
    uint64_t fire_budget_ns = 0;
    /// Watchdog: flag the task stalled after this many consecutive
    /// kWorked fires without a heartbeat advance (beat()). 0 disables.
    uint32_t stall_fires = 0;
  };

  [[nodiscard]] const std::string& label() const noexcept { return opt_.label; }
  [[nodiscard]] bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }
  /// Total fire() invocations / fires that reported kWorked.
  [[nodiscard]] uint64_t fires() const noexcept {
    return fires_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t worked() const noexcept {
    return worked_.load(std::memory_order_relaxed);
  }
  /// Times the task was stolen onto a different thread than it last ran on.
  [[nodiscard]] uint64_t migrations() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }

  // --- supervision surface ------------------------------------------------
  [[nodiscard]] TaskPhase phase() const noexcept {
    return static_cast<TaskPhase>(phase_.load(std::memory_order_acquire));
  }
  /// Restart-with-backoff re-arms / times the task entered quarantine.
  [[nodiscard]] uint32_t restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint32_t quarantines() const noexcept {
    return quarantines_.load(std::memory_order_relaxed);
  }
  /// Progress heartbeat for the stall watchdog: the fire body calls beat()
  /// (e.g. via Scheduler::current_task()) whenever it makes REAL progress.
  void beat() noexcept { heartbeat_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] bool stalled() const noexcept {
    return stalled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t budget_overruns() const noexcept {
    return budget_overruns_.load(std::memory_order_relaxed);
  }

 private:
  friend class Scheduler;
  Task(Fire fire, Options opt)
      : fire_(std::move(fire)),
        opt_(std::move(opt)),
        backoff_rng_(opt_.backoff_seed) {}

  Fire fire_;
  Options opt_;
  std::atomic<uint64_t> fires_{0};
  std::atomic<uint64_t> worked_{0};
  std::atomic<uint64_t> migrations_{0};
  std::atomic<bool> done_{false};
  uint32_t last_thread_ = 0;  // written only by the thread holding the task

  // Supervision state. Atomics are the cross-thread surface (health
  // readers); the plain members below them are touched only by the thread
  // holding the task (ordered by the queue-mutex handoffs, like
  // last_thread_) or, for a quarantined task, by the reinstate()r before
  // the queue push that hands the task to its next holder.
  std::atomic<uint8_t> phase_{static_cast<uint8_t>(TaskPhase::kRunnable)};
  std::atomic<uint32_t> restarts_{0};
  std::atomic<uint32_t> quarantines_{0};
  std::atomic<uint64_t> heartbeat_{0};
  std::atomic<uint64_t> budget_overruns_{0};
  std::atomic<bool> stalled_{false};
  uint32_t fail_streak_ = 0;
  std::chrono::steady_clock::time_point backoff_until_{};
  uint64_t hb_seen_ = 0;
  uint32_t fires_since_hb_ = 0;
  Rng backoff_rng_;
  bool counted_live_ = false;  // guarded by Scheduler::sup_mu_
  std::string last_error_;     // guarded by Scheduler::sup_mu_
};

/// Post-run scheduler telemetry (aggregated after every worker joins).
struct SchedulerStats {
  uint64_t fires = 0;       ///< task fires across all threads
  uint64_t worked = 0;      ///< fires that reported kWorked
  uint64_t idle_fires = 0;  ///< fires that reported kIdle
  uint64_t steals = 0;      ///< successful cross-thread steals
  std::vector<uint64_t> fires_per_thread;
};

/// One task's supervision snapshot (Scheduler::health()).
struct TaskHealth {
  std::string label;
  TaskPhase phase = TaskPhase::kRunnable;
  bool daemon = false;
  uint64_t fires = 0;
  uint64_t worked = 0;
  uint32_t restarts = 0;
  uint32_t quarantines = 0;
  uint64_t budget_overruns = 0;
  bool stalled = false;
  std::string last_error;  ///< what() of the task's most recent failure
};

/// Runtime supervision report (safe to take during or after run()).
struct RuntimeHealth {
  std::vector<TaskHealth> tasks;
  uint32_t restarts = 0;     ///< restart re-arms across all tasks
  uint32_t quarantines = 0;  ///< quarantine entries across all tasks
  /// Errors DROPPED because first_error_ was already recorded — without
  /// this counter a multi-task failure looks like a single failure (the
  /// scheduler previously discarded every later exception silently).
  uint64_t suppressed_errors = 0;
};

class Scheduler {
 public:
  struct Options {
    /// Max consecutive fires of one task before yielding the thread to its
    /// queue-mates. Click's STRIDE slice equivalent.
    uint32_t quantum = 8;
  };

  // Two constructors instead of `Options opt = {}`: gcc rejects a braced
  // default argument of a nested class with default member initializers.
  explicit Scheduler(size_t n_threads) : Scheduler(n_threads, Options{}) {}
  Scheduler(size_t n_threads, Options opt);

  /// Register a task before run(). The returned reference stays valid for
  /// the scheduler's lifetime.
  Task& add(Task::Fire fire, Task::Options topt = {});

  /// Run until every non-daemon task reports kDone (or request_stop()).
  /// The CALLING thread becomes scheduler thread 0; n_threads-1 workers
  /// are spawned. One-shot: a Scheduler instance runs once. A task
  /// callback that throws stops the scheduler cleanly (in-flight fires
  /// complete) and the first exception is re-thrown here after all
  /// workers joined.
  void run();

  /// Ask every thread to drain out. Safe from any thread, including from
  /// inside a task fire; threads finish their current fire (bursts are
  /// never abandoned mid-element) and exit.
  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }

  [[nodiscard]] size_t threads() const noexcept { return states_.size(); }
  /// Valid after run() returns.
  [[nodiscard]] const SchedulerStats& stats() const noexcept { return stats_; }

  /// Scheduler thread index of the calling thread, or -1 outside a fire.
  /// Lets tests (and affinity-aware tasks) observe where they run.
  [[nodiscard]] static int current_thread() noexcept;
  /// The task the calling thread is currently firing, or null outside a
  /// fire. Lets fire bodies reach their own Task (heartbeat) without a
  /// capture cycle at add() time.
  [[nodiscard]] static Task* current_task() noexcept;

  /// Invoked synchronously, on the catching thread, right after a task is
  /// quarantined (policy kQuarantine, or kRestart exhausted) and BEFORE the
  /// task's liveness is released — so a hook that reinstate()s the task
  /// keeps the scheduler seamlessly alive. Runs outside all queue locks.
  /// A THROWING hook escalates (a broken supervisor is fatal). Set before
  /// run().
  void set_on_quarantine(std::function<void(Task&)> hook) {
    on_quarantine_ = std::move(hook);
  }

  /// Re-enter a quarantined task on its home queue (its fail streak is
  /// cleared; its graph/closure state is whatever the owner rebuilt).
  /// Callable during run() from any thread — typically from the
  /// on_quarantine hook or a supervisor daemon task. Returns false if the
  /// task is not currently quarantined.
  bool reinstate(Task& t);

  /// Supervision snapshot: per-task state plus the suppressed-error count.
  /// Safe from any thread, during or after run().
  [[nodiscard]] RuntimeHealth health() const;

 private:
  struct ThreadState {
    std::mutex mu;
    std::deque<Task*> queue;  // guarded by mu
    // Thread-private counters (aggregated into stats_ after joins).
    uint64_t fires = 0;
    uint64_t worked = 0;
    uint64_t idle_fires = 0;
    uint64_t steals = 0;
    uint32_t consec_idle = 0;
    /// Consecutive pops that were not-yet-due backoff tasks, and the
    /// earliest of their deadlines — once consec_backoff covers the whole
    /// queue, nothing here is runnable and the thread sleeps (bounded)
    /// toward that deadline instead of hot-requeueing.
    uint32_t consec_backoff = 0;
    std::chrono::steady_clock::time_point earliest_backoff{};
  };

  /// What thread_loop does with a task after supervise_failure().
  enum class FailureAction : uint8_t {
    kFinish,   ///< escalated: mark done, release liveness (original path)
    kRequeue,  ///< restarting: requeue; backoff gate holds it until due
    kDetach,   ///< quarantined: drop from the queues (reinstate() re-enters)
  };

  void thread_loop(uint32_t tid);
  [[nodiscard]] Task* pop_local(ThreadState& ts);
  [[nodiscard]] Task* try_steal(uint32_t thief);
  void record_error() noexcept;
  /// Called from inside a catch block around fire_(); applies the task's
  /// SupervisorPolicy to the in-flight exception.
  [[nodiscard]] FailureAction supervise_failure(Task& t);
  /// Between-fire watchdog sample (budget + heartbeat stall).
  void watchdog_sample(Task& t, TaskState st,
                       std::chrono::steady_clock::time_point fire_start);

  Options opt_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<ThreadState>> states_;
  std::atomic<size_t> live_{0};  ///< non-daemon tasks not yet done
  std::atomic<bool> stop_{false};
  mutable std::mutex err_mu_;
  std::exception_ptr first_error_;      // guarded by err_mu_
  uint64_t suppressed_errors_ = 0;      // guarded by err_mu_ (satellite fix)
  mutable std::mutex sup_mu_;           // supervision transitions + last_error
  uint32_t restarts_total_ = 0;         // guarded by sup_mu_
  uint32_t quarantines_total_ = 0;      // guarded by sup_mu_
  std::function<void(Task&)> on_quarantine_;
  SchedulerStats stats_;
  bool ran_ = false;
};

}  // namespace nuevomatch::pipeline
