#include "pipeline/scheduler.hpp"

#include <stdexcept>
#include <thread>

namespace nuevomatch::pipeline {

namespace {
// Scheduler thread index of the current OS thread while inside run(); -1
// elsewhere. One scheduler runs at a time per OS thread, so a plain
// thread_local is enough even when schedulers nest across threads.
thread_local int tl_thread_id = -1;
}  // namespace

int Scheduler::current_thread() noexcept { return tl_thread_id; }

Scheduler::Scheduler(size_t n_threads, Options opt) : opt_(opt) {
  if (n_threads == 0) n_threads = 1;
  if (opt_.quantum == 0) opt_.quantum = 1;
  states_.reserve(n_threads);
  for (size_t i = 0; i < n_threads; ++i)
    states_.push_back(std::make_unique<ThreadState>());
}

Task& Scheduler::add(Task::Fire fire, Task::Options topt) {
  if (ran_) throw std::runtime_error("Scheduler::add after run()");
  if (topt.label.empty()) topt.label = "task@" + std::to_string(tasks_.size());
  topt.home = topt.home % static_cast<uint32_t>(states_.size());
  tasks_.push_back(
      std::unique_ptr<Task>(new Task(std::move(fire), std::move(topt))));
  return *tasks_.back();
}

Task* Scheduler::pop_local(ThreadState& ts) {
  const std::lock_guard<std::mutex> lk(ts.mu);
  if (ts.queue.empty()) return nullptr;
  Task* t = ts.queue.front();
  ts.queue.pop_front();
  return t;
}

Task* Scheduler::try_steal(uint32_t thief) {
  const size_t n = states_.size();
  for (size_t off = 1; off < n; ++off) {
    ThreadState& victim = *states_[(thief + off) % n];
    const std::lock_guard<std::mutex> lk(victim.mu);
    for (auto it = victim.queue.begin(); it != victim.queue.end(); ++it) {
      if (!(*it)->opt_.migratable) continue;
      Task* t = *it;
      victim.queue.erase(it);
      return t;
    }
  }
  return nullptr;
}

void Scheduler::record_error() noexcept {
  {
    const std::lock_guard<std::mutex> lk(err_mu_);
    if (first_error_ == nullptr) first_error_ = std::current_exception();
  }
  request_stop();
}

void Scheduler::thread_loop(uint32_t tid) {
  tl_thread_id = static_cast<int>(tid);
  ThreadState& me = *states_[tid];
  while (!stop_.load(std::memory_order_acquire) &&
         live_.load(std::memory_order_acquire) > 0) {
    Task* t = pop_local(me);
    bool stolen = false;
    if (t == nullptr && states_.size() > 1) {
      t = try_steal(tid);
      stolen = t != nullptr;
    }
    if (t == nullptr) {
      // Nothing runnable here right now: another thread holds the last
      // live tasks mid-fire. Yield until they finish or push back.
      std::this_thread::yield();
      continue;
    }
    if (stolen) {
      ++me.steals;
      if (t->last_thread_ != tid)
        t->migrations_.fetch_add(1, std::memory_order_relaxed);
    }
    // The task is popped — invisible to every other thread — for the whole
    // quantum: its fires are serialized, and the queue mutex hand-off
    // orders them across threads.
    t->last_thread_ = tid;
    TaskState st = TaskState::kIdle;
    uint32_t left = opt_.quantum;
    do {
      try {
        st = t->fire_();
      } catch (...) {
        record_error();
        st = TaskState::kDone;  // a throwing task never fires again
      }
      t->fires_.fetch_add(1, std::memory_order_relaxed);
      ++me.fires;
      if (st == TaskState::kWorked) {
        t->worked_.fetch_add(1, std::memory_order_relaxed);
        ++me.worked;
        me.consec_idle = 0;
      } else if (st == TaskState::kIdle) {
        ++me.idle_fires;
      }
    } while (st == TaskState::kWorked && --left > 0);
    if (st == TaskState::kDone) {
      t->done_.store(true, std::memory_order_release);
      if (!t->opt_.daemon) live_.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      {
        const std::lock_guard<std::mutex> lk(me.mu);
        me.queue.push_back(t);
      }
      // A queue of nothing-but-idle tasks (e.g. only the retrain daemon is
      // left alive somewhere) must not hot-spin; back off after a streak.
      if (st == TaskState::kIdle && ++me.consec_idle >= 8) {
        me.consec_idle = 0;
        std::this_thread::yield();
      }
    }
  }
  tl_thread_id = -1;
}

void Scheduler::run() {
  if (ran_) throw std::runtime_error("Scheduler::run is one-shot");
  ran_ = true;

  size_t live = 0;
  for (const auto& t : tasks_) {
    if (!t->opt_.daemon) ++live;
  }
  live_.store(live, std::memory_order_release);
  for (const auto& t : tasks_) {
    t->last_thread_ = t->opt_.home;
    ThreadState& home = *states_[t->opt_.home];
    const std::lock_guard<std::mutex> lk(home.mu);
    home.queue.push_back(t.get());
  }
  if (live == 0 && !tasks_.empty()) {
    // Only daemon tasks — nothing to wait for; run() would spin forever.
    stop_.store(true, std::memory_order_release);
  }

  std::vector<std::thread> workers;
  workers.reserve(states_.size() - 1);
  const int outer_id = tl_thread_id;
  if (live > 0) {
    for (uint32_t tid = 1; tid < states_.size(); ++tid)
      workers.emplace_back([this, tid] { thread_loop(tid); });
    thread_loop(0);
  }
  for (std::thread& w : workers) w.join();

  // Drain fire: every daemon still alive gets exactly one more fire now
  // that all non-daemon work is done. Daemons are fired opportunistically
  // during the run, but nothing guarantees a thread ever reaches one — on
  // a one-core box the spawned worker can steal and finish every pipeline
  // task before the calling thread enters its loop, in which case a daemon
  // homed there would get ZERO fires and a pending maintenance action
  // (e.g. a retrain kick) would be silently skipped. Skipped after
  // request_stop() or a task error: a stopped scheduler starts no new work.
  if (!stop_.load(std::memory_order_acquire)) {
    tl_thread_id = 0;
    ThreadState& t0 = *states_[0];
    for (const auto& t : tasks_) {
      if (!t->opt_.daemon || t->done()) continue;
      t->last_thread_ = 0;
      TaskState st = TaskState::kIdle;
      try {
        st = t->fire_();
      } catch (...) {
        record_error();
        st = TaskState::kDone;
      }
      t->fires_.fetch_add(1, std::memory_order_relaxed);
      ++t0.fires;
      if (st == TaskState::kWorked) {
        t->worked_.fetch_add(1, std::memory_order_relaxed);
        ++t0.worked;
      } else if (st == TaskState::kIdle) {
        ++t0.idle_fires;
      } else {
        t->done_.store(true, std::memory_order_release);
      }
    }
  }
  tl_thread_id = outer_id;

  stats_ = SchedulerStats{};
  stats_.fires_per_thread.reserve(states_.size());
  for (const auto& s : states_) {
    stats_.fires += s->fires;
    stats_.worked += s->worked;
    stats_.idle_fires += s->idle_fires;
    stats_.steals += s->steals;
    stats_.fires_per_thread.push_back(s->fires);
  }

  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lk(err_mu_);
    err = first_error_;
  }
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace nuevomatch::pipeline
