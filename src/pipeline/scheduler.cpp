#include "pipeline/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"

namespace nuevomatch::pipeline {

namespace {
// Scheduler thread index of the current OS thread while inside run(); -1
// elsewhere. One scheduler runs at a time per OS thread, so a plain
// thread_local is enough even when schedulers nest across threads.
thread_local int tl_thread_id = -1;
// The task the current OS thread is firing right now (null between fires).
thread_local Task* tl_task = nullptr;

// what() of the exception currently being handled (supervision telemetry).
std::string current_error_text() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-std exception";
  }
}
}  // namespace

int Scheduler::current_thread() noexcept { return tl_thread_id; }
Task* Scheduler::current_task() noexcept { return tl_task; }

Scheduler::Scheduler(size_t n_threads, Options opt) : opt_(opt) {
  if (n_threads == 0) n_threads = 1;
  if (opt_.quantum == 0) opt_.quantum = 1;
  states_.reserve(n_threads);
  for (size_t i = 0; i < n_threads; ++i)
    states_.push_back(std::make_unique<ThreadState>());
}

Task& Scheduler::add(Task::Fire fire, Task::Options topt) {
  if (ran_) throw std::runtime_error("Scheduler::add after run()");
  if (topt.label.empty()) topt.label = "task@" + std::to_string(tasks_.size());
  topt.home = topt.home % static_cast<uint32_t>(states_.size());
  tasks_.push_back(
      std::unique_ptr<Task>(new Task(std::move(fire), std::move(topt))));
  return *tasks_.back();
}

Task* Scheduler::pop_local(ThreadState& ts) {
  const std::lock_guard<std::mutex> lk(ts.mu);
  if (ts.queue.empty()) return nullptr;
  Task* t = ts.queue.front();
  ts.queue.pop_front();
  return t;
}

Task* Scheduler::try_steal(uint32_t thief) {
  const size_t n = states_.size();
  for (size_t off = 1; off < n; ++off) {
    ThreadState& victim = *states_[(thief + off) % n];
    const std::lock_guard<std::mutex> lk(victim.mu);
    for (auto it = victim.queue.begin(); it != victim.queue.end(); ++it) {
      if (!(*it)->opt_.migratable) continue;
      Task* t = *it;
      victim.queue.erase(it);
      return t;
    }
  }
  return nullptr;
}

void Scheduler::record_error() noexcept {
  {
    const std::lock_guard<std::mutex> lk(err_mu_);
    if (first_error_ == nullptr)
      first_error_ = std::current_exception();
    else
      // Only the first exception can be rethrown from run(), but dropping
      // the rest SILENTLY made a multi-task failure indistinguishable from
      // a single one. Count what we suppress; RuntimeHealth surfaces it
      // (and the per-task last_error keeps each message).
      ++suppressed_errors_;
  }
  request_stop();
}

Scheduler::FailureAction Scheduler::supervise_failure(Task& t) {
  const std::string msg = current_error_text();
  {
    const std::lock_guard<std::mutex> lk(sup_mu_);
    t.last_error_ = msg;
  }

  if (t.opt_.policy == SupervisorPolicy::kEscalate) {
    record_error();
    return FailureAction::kFinish;
  }

  if (t.opt_.policy == SupervisorPolicy::kRestart) {
    const uint32_t k = ++t.fail_streak_;
    if (k <= t.opt_.max_restarts) {
      t.restarts_.fetch_add(1, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lk(sup_mu_);
        ++restarts_total_;
      }
      if (NM_METRICS_ENABLED) {
        static telemetry::Counter& m = telemetry::registry().counter(
            "nm_sched_restarts_total", "task restart re-arms");
        m.add(1);
      }
      // PR 6's engine backoff shape, reused verbatim: delay doubles per
      // consecutive failure (clamped), then jitters deterministically to
      // [d/2, d] so co-failing tasks desynchronize reproducibly.
      const int shift = static_cast<int>(std::min<uint32_t>(k - 1, 20));
      uint64_t d = std::min<uint64_t>(
          static_cast<uint64_t>(t.opt_.backoff_initial_ms) << shift,
          t.opt_.backoff_max_ms);
      if (d > 0) d = d / 2 + t.backoff_rng_.below(d / 2 + 1);
      t.backoff_until_ =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(d);
      t.phase_.store(static_cast<uint8_t>(TaskPhase::kBackoff),
                     std::memory_order_release);
      return FailureAction::kRequeue;
    }
    // Restart budget exhausted — fall through to quarantine.
  }

  t.quarantines_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lk(sup_mu_);
    ++quarantines_total_;
    t.phase_.store(static_cast<uint8_t>(TaskPhase::kQuarantined),
                   std::memory_order_release);
  }
  if (NM_METRICS_ENABLED) {
    static telemetry::Counter& m = telemetry::registry().counter(
        "nm_sched_quarantines_total", "task quarantine entries");
    m.add(1);
  }
  if (on_quarantine_) {
    try {
      on_quarantine_(t);
    } catch (...) {
      record_error();  // a broken supervisor is fatal
    }
  }
  {
    // Release liveness only if the hook did not reinstate the task: a
    // synchronous drain-and-rejoin never lets live_ dip, so the scheduler
    // cannot race to exit under the supervisor's feet.
    const std::lock_guard<std::mutex> lk(sup_mu_);
    if (t.phase() == TaskPhase::kQuarantined && t.counted_live_) {
      t.counted_live_ = false;
      live_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  return FailureAction::kDetach;
}

bool Scheduler::reinstate(Task& t) {
  {
    const std::lock_guard<std::mutex> lk(sup_mu_);
    if (t.phase() != TaskPhase::kQuarantined) return false;
    t.phase_.store(static_cast<uint8_t>(TaskPhase::kRunnable),
                   std::memory_order_release);
    // The task is detached (no holder): safe to reset holder-thread state
    // here; the queue push below hands it to its next holder with the
    // usual mutex ordering.
    t.fail_streak_ = 0;
    t.backoff_until_ = {};
    // Watchdog state resets with the restart ladder: the owner rebuilt the
    // task's state, so a pre-quarantine STALLED flag (or a half-counted
    // heartbeat window) must not outlive the rejoin in RuntimeHealth.
    t.stalled_.store(false, std::memory_order_relaxed);
    t.hb_seen_ = t.heartbeat_.load(std::memory_order_relaxed);
    t.fires_since_hb_ = 0;
    if (!t.opt_.daemon && !t.counted_live_) {
      t.counted_live_ = true;
      live_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  ThreadState& home = *states_[t.opt_.home];
  const std::lock_guard<std::mutex> lk(home.mu);
  home.queue.push_back(&t);
  return true;
}

RuntimeHealth Scheduler::health() const {
  RuntimeHealth h;
  h.tasks.reserve(tasks_.size());
  {
    const std::lock_guard<std::mutex> lk(sup_mu_);
    h.restarts = restarts_total_;
    h.quarantines = quarantines_total_;
    for (const auto& t : tasks_) {
      TaskHealth th;
      th.label = t->opt_.label;
      th.phase = t->phase();
      th.daemon = t->opt_.daemon;
      th.fires = t->fires();
      th.worked = t->worked();
      th.restarts = t->restarts();
      th.quarantines = t->quarantines();
      th.budget_overruns = t->budget_overruns();
      th.stalled = t->stalled();
      th.last_error = t->last_error_;
      h.tasks.push_back(std::move(th));
    }
  }
  {
    const std::lock_guard<std::mutex> lk(err_mu_);
    h.suppressed_errors = suppressed_errors_;
  }
  return h;
}

void Scheduler::watchdog_sample(
    Task& t, TaskState st, std::chrono::steady_clock::time_point fire_start) {
  if (t.opt_.fire_budget_ns > 0) {
    const auto el = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - fire_start)
                        .count();
    if (el > 0 && static_cast<uint64_t>(el) > t.opt_.fire_budget_ns)
      t.budget_overruns_.fetch_add(1, std::memory_order_relaxed);
  }
  // Stall detection only judges fires that CLAIM progress: a task idling
  // (e.g. a daemon waiting for work) is waiting, not stuck.
  if (t.opt_.stall_fires > 0 && st == TaskState::kWorked) {
    const uint64_t hb = t.heartbeat_.load(std::memory_order_relaxed);
    if (hb != t.hb_seen_) {
      t.hb_seen_ = hb;
      t.fires_since_hb_ = 0;
    } else if (++t.fires_since_hb_ >= t.opt_.stall_fires) {
      t.stalled_.store(true, std::memory_order_relaxed);
    }
  }
}

void Scheduler::thread_loop(uint32_t tid) {
  tl_thread_id = static_cast<int>(tid);
  ThreadState& me = *states_[tid];
  while (!stop_.load(std::memory_order_acquire) &&
         live_.load(std::memory_order_acquire) > 0) {
    Task* t = pop_local(me);
    bool stolen = false;
    if (t == nullptr && states_.size() > 1) {
      t = try_steal(tid);
      stolen = t != nullptr;
    }
    if (t == nullptr) {
      // Nothing runnable here right now: another thread holds the last
      // live tasks mid-fire. Yield until they finish or push back.
      std::this_thread::yield();
      continue;
    }
    if (stolen) {
      ++me.steals;
      if (t->last_thread_ != tid)
        t->migrations_.fetch_add(1, std::memory_order_relaxed);
    }
    // The task is popped — invisible to every other thread — for the whole
    // quantum: its fires are serialized, and the queue mutex hand-off
    // orders them across threads.
    t->last_thread_ = tid;
    // Backoff gate (kRestart): a task waiting out its restart delay is
    // requeued untouched; its fire stays suppressed until the deadline.
    if (t->phase() == TaskPhase::kBackoff) {
      const auto now = std::chrono::steady_clock::now();
      if (now < t->backoff_until_) {
        size_t qsize;
        {
          const std::lock_guard<std::mutex> lk(me.mu);
          me.queue.push_back(t);
          qsize = me.queue.size();
        }
        if (me.earliest_backoff == std::chrono::steady_clock::time_point{} ||
            t->backoff_until_ < me.earliest_backoff)
          me.earliest_backoff = t->backoff_until_;
        // Once a whole queue's worth of consecutive pops were backing-off
        // tasks, nothing runnable is left here: SLEEP toward the earliest
        // deadline instead of hot-requeueing (a fault storm would otherwise
        // burn this core for up to backoff_max_ms). The sleep is bounded so
        // a steal target, a reinstate() push, or request_stop() is noticed
        // within ~1 ms rather than after the full delay.
        if (++me.consec_backoff >= qsize) {
          me.consec_backoff = 0;
          const auto until =
              std::min(me.earliest_backoff,
                       now + std::chrono::milliseconds(1));
          // Rebuild the deadline from fresh pops next cycle — a deadline
          // that already passed (its task was stolen and fired elsewhere)
          // must not pin `until` in the past and turn the sleep into a spin.
          me.earliest_backoff = {};
          if (until > now) std::this_thread::sleep_until(until);
        }
        continue;
      }
      t->phase_.store(static_cast<uint8_t>(TaskPhase::kRunnable),
                      std::memory_order_release);
    }
    me.consec_backoff = 0;
    me.earliest_backoff = {};
    TaskState st = TaskState::kIdle;
    FailureAction act = FailureAction::kFinish;
    bool failed = false;
    uint32_t left = opt_.quantum;
    do {
      // 1-in-64 sampled fire-latency stamps piggy-back on the watchdog's
      // fire_start clock read: a sampled fire pays one extra now() at the
      // end, every other fire pays nothing beyond the budget check.
      const bool sampled = NM_METRICS_ENABLED && NM_SAMPLE_EVERY(64);
      const bool timed = t->opt_.fire_budget_ns > 0 || sampled;
      const auto fire_start = timed ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
      try {
        tl_task = t;
        if (failpoint::should_fire(failpoint::kPipelineTaskFire))
          throw std::runtime_error("injected: pipeline.task.fire");
        st = t->fire_();
        tl_task = nullptr;
        t->fail_streak_ = 0;  // a completed fire clears the restart ladder
      } catch (...) {
        tl_task = nullptr;
        failed = true;
        act = supervise_failure(*t);
        // Escalation keeps the original shape: a throwing task never fires
        // again. Restart/quarantine leave the loop through `failed`.
        st = act == FailureAction::kFinish ? TaskState::kDone : TaskState::kIdle;
      }
      t->fires_.fetch_add(1, std::memory_order_relaxed);
      ++me.fires;
      if (!failed) {
        if (sampled) {
          static telemetry::Histogram& h = telemetry::registry().histogram(
              "nm_sched_fire_ns", "task fire latency (sampled 1-in-64)");
          h.record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - fire_start)
                  .count()));
        }
        watchdog_sample(*t, st, fire_start);
        if (st == TaskState::kWorked) {
          t->worked_.fetch_add(1, std::memory_order_relaxed);
          ++me.worked;
          me.consec_idle = 0;
        } else if (st == TaskState::kIdle) {
          ++me.idle_fires;
        }
      }
    } while (!failed && st == TaskState::kWorked && --left > 0);
    if (failed && act == FailureAction::kDetach) {
      // Quarantined: not requeued. supervise_failure already settled the
      // liveness accounting (and ran the on_quarantine hook, which may
      // have reinstate()d the task onto a queue).
      continue;
    }
    if (st == TaskState::kDone) {
      t->done_.store(true, std::memory_order_release);
      t->phase_.store(static_cast<uint8_t>(TaskPhase::kDone),
                      std::memory_order_release);
      if (!t->opt_.daemon) {
        const std::lock_guard<std::mutex> lk(sup_mu_);
        if (t->counted_live_) {
          t->counted_live_ = false;
          live_.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    } else {
      {
        const std::lock_guard<std::mutex> lk(me.mu);
        me.queue.push_back(t);
      }
      // A queue of nothing-but-idle tasks (e.g. only the retrain daemon is
      // left alive somewhere) must not hot-spin; back off after a streak.
      if (st == TaskState::kIdle && ++me.consec_idle >= 8) {
        me.consec_idle = 0;
        std::this_thread::yield();
      }
    }
  }
  tl_thread_id = -1;
}

void Scheduler::run() {
  if (ran_) throw std::runtime_error("Scheduler::run is one-shot");
  ran_ = true;

  size_t live = 0;
  for (const auto& t : tasks_) {
    if (!t->opt_.daemon) {
      ++live;
      t->counted_live_ = true;
    }
  }
  live_.store(live, std::memory_order_release);
  for (const auto& t : tasks_) {
    t->last_thread_ = t->opt_.home;
    ThreadState& home = *states_[t->opt_.home];
    const std::lock_guard<std::mutex> lk(home.mu);
    home.queue.push_back(t.get());
  }
  if (live == 0 && !tasks_.empty()) {
    // Only daemon tasks — nothing to wait for; run() would spin forever.
    stop_.store(true, std::memory_order_release);
  }

  std::vector<std::thread> workers;
  workers.reserve(states_.size() - 1);
  const int outer_id = tl_thread_id;
  if (live > 0) {
    for (uint32_t tid = 1; tid < states_.size(); ++tid)
      workers.emplace_back([this, tid] { thread_loop(tid); });
    thread_loop(0);
  }
  for (std::thread& w : workers) w.join();

  // Drain fire: every daemon still alive gets exactly one more fire now
  // that all non-daemon work is done. Daemons are fired opportunistically
  // during the run, but nothing guarantees a thread ever reaches one — on
  // a one-core box the spawned worker can steal and finish every pipeline
  // task before the calling thread enters its loop, in which case a daemon
  // homed there would get ZERO fires and a pending maintenance action
  // (e.g. a retrain kick) would be silently skipped. Skipped after
  // request_stop() or a task error: a stopped scheduler starts no new work.
  // A throwing drain fire always records (never restarts/quarantines — the
  // scheduler is already past the point of re-running anything), so two
  // daemons failing here surface as first_error_ + a suppressed count.
  if (!stop_.load(std::memory_order_acquire)) {
    tl_thread_id = 0;
    ThreadState& t0 = *states_[0];
    for (const auto& t : tasks_) {
      if (!t->opt_.daemon || t->done() ||
          t->phase() == TaskPhase::kQuarantined)
        continue;
      t->last_thread_ = 0;
      TaskState st = TaskState::kIdle;
      try {
        tl_task = t.get();
        st = t->fire_();
        tl_task = nullptr;
      } catch (...) {
        tl_task = nullptr;
        {
          const std::lock_guard<std::mutex> lk(sup_mu_);
          t->last_error_ = current_error_text();
        }
        record_error();
        st = TaskState::kDone;
      }
      t->fires_.fetch_add(1, std::memory_order_relaxed);
      ++t0.fires;
      if (st == TaskState::kWorked) {
        t->worked_.fetch_add(1, std::memory_order_relaxed);
        ++t0.worked;
      } else if (st == TaskState::kIdle) {
        ++t0.idle_fires;
      } else {
        t->done_.store(true, std::memory_order_release);
        t->phase_.store(static_cast<uint8_t>(TaskPhase::kDone),
                        std::memory_order_release);
      }
    }
  }
  tl_thread_id = outer_id;

  stats_ = SchedulerStats{};
  stats_.fires_per_thread.reserve(states_.size());
  for (const auto& s : states_) {
    stats_.fires += s->fires;
    stats_.worked += s->worked;
    stats_.idle_fires += s->idle_fires;
    stats_.steals += s->steals;
    stats_.fires_per_thread.push_back(s->fires);
  }
  // Registry totals in one bulk add per run — the per-fire hot path keeps
  // its thread-private counters and pays nothing for these.
  if (NM_METRICS_ENABLED) {
    static telemetry::Counter& mf = telemetry::registry().counter(
        "nm_sched_fires_total", "task fires across all scheduler runs");
    static telemetry::Counter& mw = telemetry::registry().counter(
        "nm_sched_worked_total", "fires that reported kWorked");
    static telemetry::Counter& mi = telemetry::registry().counter(
        "nm_sched_idle_fires_total", "fires that reported kIdle");
    static telemetry::Counter& ms = telemetry::registry().counter(
        "nm_sched_steals_total", "cross-thread task steals");
    mf.add(stats_.fires);
    mw.add(stats_.worked);
    mi.add(stats_.idle_fires);
    ms.add(stats_.steals);
  }

  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lk(err_mu_);
    err = first_error_;
  }
  if (err != nullptr) std::rethrow_exception(err);
}

}  // namespace nuevomatch::pipeline
