#include "pipeline/metrics_exporter.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"

namespace nuevomatch::pipeline {

namespace {

/// Serve one accepted connection: best-effort request read (we only care
/// whether the path asks for JSON), full response write, close.
void serve_client(int fd, const telemetry::Snapshot& snap) {
  // A stuck client must not wedge the daemon task: short I/O timeouts.
  timeval tv{};
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  char req[1024];
  const ssize_t n = ::recv(fd, req, sizeof(req) - 1, 0);
  bool want_json = false;
  if (n > 0) {
    req[n] = '\0';
    want_json = std::strstr(req, "json") != nullptr;
  }

  const std::string body = want_json ? snap.to_json() : snap.to_prometheus();
  std::string resp = "HTTP/1.0 200 OK\r\nContent-Type: ";
  resp += want_json ? "application/json" : "text/plain; version=0.0.4";
  resp += "\r\nContent-Length: " + std::to_string(body.size()) +
          "\r\nConnection: close\r\n\r\n";
  resp += body;

  size_t off = 0;
  while (off < resp.size()) {
    const ssize_t w = ::send(fd, resp.data() + off, resp.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (w <= 0) break;
    off += static_cast<size_t>(w);
  }
  ::close(fd);
}

}  // namespace

MetricsExporter::MetricsExporter(Options opt) : opt_(std::move(opt)) {}

MetricsExporter::~MetricsExporter() {
  std::lock_guard<std::mutex> lk(poll_mu_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsExporter::initialize(Graph& g) {
  classifier_ = g.find_kind<ClassifierElement>();
  caches_.clear();
  for (const auto& e : g.elements())
    if (auto* fc = dynamic_cast<FlowCacheElement*>(e.get()))
      caches_.push_back(fc);
}

void MetricsExporter::set_pipeline_health_source(
    std::function<PipelineHealth()> fn) {
  std::lock_guard<std::mutex> lk(source_mu_);
  pipeline_health_ = std::move(fn);
}

telemetry::Snapshot MetricsExporter::snapshot() const {
  telemetry::Snapshot s;
  s.registry = telemetry::registry().snapshot();
  if (classifier_ != nullptr && classifier_->online() != nullptr)
    s.engine = classifier_->online()->health();
  if (!caches_.empty()) {
    FlowCache::Stats sum{};
    uint64_t entries = 0, capacity = 0;
    for (const FlowCacheElement* fc : caches_) {
      const FlowCache::Stats st = fc->cache().stats();
      sum.hits += st.hits;
      sum.misses += st.misses;
      sum.stale += st.stale;
      sum.inserts += st.inserts;
      sum.evictions += st.evictions;
      sum.retained += st.retained;
      sum.future += st.future;
      sum.insert_drops += st.insert_drops;
      entries += fc->cache().size();
      capacity += fc->cache().capacity();
    }
    s.cache = sum;
    s.cache_entries = entries;
    s.cache_capacity = capacity;
  }
  std::function<PipelineHealth()> src;
  {
    std::lock_guard<std::mutex> lk(source_mu_);
    src = pipeline_health_;
  }
  if (src) s.pipeline = src();
  return s;
}

int MetricsExporter::ensure_listener() {
  std::lock_guard<std::mutex> lk(poll_mu_);
  if (listen_fd_ >= 0) return bound_port_.load(std::memory_order_acquire);
  if (opt_.port < 0 || bind_failed_.load(std::memory_order_acquire)) return -1;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    bind_error_ = std::strerror(errno);
    bind_failed_.store(true, std::memory_order_release);
    return -1;
  }
  // No SO_REUSEADDR on purpose: in replicated graphs N sibling exporters
  // race for one port and exactly one must win (first-binder-wins; the
  // losers see EADDRINUSE and disable themselves).
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(opt_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    bind_error_ = std::strerror(errno);
    bind_failed_.store(true, std::memory_order_release);
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    bind_error_ = std::strerror(errno);
    bind_failed_.store(true, std::memory_order_release);
    ::close(fd);
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);  // nonblocking accept only
  listen_fd_ = fd;
  bound_port_.store(ntohs(addr.sin_port), std::memory_order_release);
  return bound_port_.load(std::memory_order_acquire);
}

void MetricsExporter::serve_pending_scrapes_locked(bool& did_work) {
  if (listen_fd_ < 0) return;
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) break;  // EAGAIN/EWOULDBLOCK: drained
    serve_client(client, snapshot());
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    did_work = true;
  }
}

void MetricsExporter::dump_file_locked(bool force, bool& did_work) {
  if (opt_.file.empty()) return;
  const uint64_t now = telemetry::now_ns();
  const uint64_t interval_ns = opt_.interval_ms * 1'000'000ULL;
  if (!force && last_dump_ns_ != 0 && now - last_dump_ns_ < interval_ns)
    return;
  last_dump_ns_ = now;

  const telemetry::Snapshot s = snapshot();
  const std::string tmp = opt_.file + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << (opt_.json ? s.to_json() : s.to_prometheus());
  }
  std::rename(tmp.c_str(), opt_.file.c_str());
  dumps_.fetch_add(1, std::memory_order_relaxed);
  did_work = true;
}

bool MetricsExporter::poll() {
  if (opt_.port >= 0 && bound_port_.load(std::memory_order_acquire) < 0 &&
      !bind_failed_.load(std::memory_order_acquire))
    ensure_listener();
  std::unique_lock<std::mutex> lk(poll_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return false;  // a sibling caller is already serving
  bool did_work = false;
  serve_pending_scrapes_locked(did_work);
  dump_file_locked(/*force=*/false, did_work);
  return did_work;
}

void MetricsExporter::process(Burst& b) {
  // Pass-through element; in scalar (no-scheduler) graphs it also paces an
  // inline poll so file dumps and scrapes happen without a daemon task.
  if ((++bursts_seen_ & 63u) == 0) poll();
  forward(b);
}

void MetricsExporter::finish() {
  std::lock_guard<std::mutex> lk(poll_mu_);
  bool did_work = false;
  dump_file_locked(/*force=*/true, did_work);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::string MetricsExporter::report() const {
  char buf[160];
  std::string listener;
  {
    std::lock_guard<std::mutex> lk(poll_mu_);
    if (bind_failed_.load(std::memory_order_acquire))
      listener = "listener disabled (" + bind_error_ +
                 "; a sibling replica likely owns the port)";
    else if (listen_fd_ >= 0)
      listener = "listening on 127.0.0.1:" +
                 std::to_string(bound_port_.load(std::memory_order_acquire));
    else if (opt_.port >= 0)
      listener = "listener pending bind";
    else
      listener = "no listener";
  }
  std::snprintf(buf, sizeof(buf), "%s, scrapes %llu, file dumps %llu",
                listener.c_str(),
                static_cast<unsigned long long>(scrapes()),
                static_cast<unsigned long long>(dumps()));
  return buf;
}

}  // namespace nuevomatch::pipeline
