// Sharded exact-match flow cache — the dataplane front-end that absorbs
// traffic skew before the classifier (the OVS EMC role the paper models in
// §5.2). Promoted out of examples/ovs_cache_accel.cpp and made
// UPDATE-COHERENT: every cached decision is stamped with the classifier's
// coherence stamp (OnlineNuevoMatch::coherence_stamp()), read BEFORE the
// decision was computed, and a lookup serves an entry only while the
// current stamp still equals the stored one — so a cached decision never
// survives the rule insert/erase (or generation swap) that could change it.
// RVH (PAPERS.md) motivates exactly this: an update-native fast path is
// worthless if a front-end cache keeps serving pre-update answers.
//
// Shape: set-associative (kWays per set) over hash-sharded fixed-size
// arrays — no allocation after construction, eviction is a bounded
// round-robin within one set, and the full five-tuple key is compared on
// every probe (a hash-only key could alias two flows onto one decision; the
// pipeline's oracle differential would catch it, so we store the tuple).
// Shards take one small mutex each so several pipeline threads can share
// one cache; a single-threaded caller pays one uncontended lock (and one
// stamp load) per PROBE — deliberately per packet, not per burst: the stamp
// check at each probe is what keeps the coherence contract at packet
// granularity when a commit lands mid-burst. (A shard-grouped burst probe
// that amortizes the locking is a ROADMAP item; the fix there is to
// re-check the stamp per shard hold, not to hoist it out of the burst.)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace nuevomatch {

class OnlineNuevoMatch;

namespace pipeline {

/// A cached classification decision (what Dispatch routes on).
struct Decision {
  int32_t rule_id = MatchResult::kNoMatch;
  int32_t priority = 0;
  int32_t action = -1;  ///< resolved rule action; -1 = miss / unknown
};

class FlowCache {
 public:
  static constexpr size_t kWays = 4;

  /// `capacity` is rounded up to shards * ways * power-of-two sets.
  explicit FlowCache(size_t capacity, size_t shards = 8);

  /// Couple the cache to an online classifier: current_stamp() follows its
  /// coherence stamp and every mutation invalidates all entries. Null (the
  /// default) pins the stamp to a constant — a pure cache for frozen
  /// rule-sets.
  void set_stamp_source(const OnlineNuevoMatch* src) noexcept { stamp_src_ = src; }

  /// The stamp a caller must read BEFORE classifying a missed packet and
  /// pass back to insert() with the computed decision (coherence contract —
  /// see OnlineNuevoMatch::coherence_stamp()).
  [[nodiscard]] uint64_t current_stamp() const noexcept;

  /// Serve a cached decision for `p` if one exists and its stamp is still
  /// current. Counts hit/miss/stale statistics.
  [[nodiscard]] bool lookup(const Packet& p, Decision& out);

  /// Cache `d` for `p`, stamped with `stamp` (from current_stamp(), read
  /// before `d` was computed). An entry whose stamp is already obsolete is
  /// still stored — the next lookup simply rejects it — so callers never
  /// need to re-read the stamp after classifying.
  void insert(const Packet& p, const Decision& d, uint64_t stamp);

  /// Drop every entry (bulk reconfiguration; not needed for coherence).
  void clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;    ///< no entry for the key
    uint64_t stale = 0;     ///< entry found but its stamp was obsolete
    uint64_t inserts = 0;
    uint64_t evictions = 0; ///< inserts that displaced a live entry
    [[nodiscard]] double hit_rate() const noexcept {
      const uint64_t total = hits + misses + stale;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] size_t capacity() const noexcept;
  [[nodiscard]] size_t shards() const noexcept { return shards_.size(); }

 private:
  struct Entry {
    std::array<uint32_t, kNumFields> key{};
    Decision d;
    uint64_t stamp = kEmpty;
  };
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<Entry> entries;  // sets * kWays
    std::vector<uint8_t> hand;   // per-set round-robin victim cursor
    uint64_t hits = 0, misses = 0, stale = 0, inserts = 0, evictions = 0;
  };

  [[nodiscard]] static uint64_t hash(const Packet& p) noexcept {
    uint64_t h = 14695981039346656037ull;  // FNV-1a over the five fields
    for (const uint32_t v : p.field) {
      h ^= v;
      h *= 1099511628211ull;
    }
    // Finalize: FNV's low bits are weak, and we index sets with them.
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return h;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t sets_per_shard_;  // power of two
  const OnlineNuevoMatch* stamp_src_ = nullptr;
};

}  // namespace pipeline
}  // namespace nuevomatch
