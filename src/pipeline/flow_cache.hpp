// Sharded exact-match flow cache — the dataplane front-end that absorbs
// traffic skew before the classifier (the OVS EMC role the paper models in
// §5.2). Promoted out of examples/ovs_cache_accel.cpp and made
// UPDATE-COHERENT and DEPENDENCY-AWARE: every cached decision is stamped
// with the classifier's coherence stamp (OnlineNuevoMatch::
// coherence_stamp()), read BEFORE the decision was computed, plus the
// decision's PRIORITY BAND (OnlineNuevoMatch::coherence_band); a lookup
// serves an entry only while no commit that could have changed decisions in
// that band has bumped past the stored stamp (coherence_band_mark(band) <=
// stamp). A commit in another band — the common case under focused churn —
// leaves the entry serving, which is what keeps the hit rate up during
// sustained updates (the OVS megaflow property: keep entries whose matched
// rule provably didn't change). RVH (PAPERS.md) motivates exactly this: an
// update-native fast path is worthless if a front-end cache keeps serving
// pre-update answers — or re-classifying answers no update could have
// changed.
//
// Shape: set-associative (kWays per set) over hash-sharded fixed-size
// arrays — no allocation after construction, eviction is a bounded
// round-robin within one set, and the full five-tuple key is compared on
// every probe (a hash-only key could alias two flows onto one decision; the
// pipeline's oracle differential would catch it, so we store the tuple).
// Shards take one small mutex each so several pipeline threads can share
// one cache. The scalar lookup()/insert() pay one uncontended lock per
// PROBE; the burst forms lookup_burst()/insert_burst() group a burst's
// lanes by shard and take each touched shard's lock ONCE — but re-check the
// band marks per shard hold, never hoisted over the burst, so a commit
// landing mid-burst still invalidates at packet granularity (the coherence
// contract is per probe, and amortizing the locking must not weaken it).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace nuevomatch {

class OnlineNuevoMatch;

namespace pipeline {

/// A cached classification decision (what Dispatch routes on).
struct Decision {
  int32_t rule_id = MatchResult::kNoMatch;
  int32_t priority = 0;
  int32_t action = -1;  ///< resolved rule action; -1 = miss / unknown
};

class FlowCache {
 public:
  static constexpr size_t kWays = 4;
  /// Burst-probe width (mirrors pipeline::kBurstSize; lane masks are u32).
  static constexpr size_t kBurstLanes = 32;
  /// Burst probes group lanes into direct-indexed per-shard masks while the
  /// shard count fits one bitmap word; beyond that (no real configuration)
  /// they degrade to per-lane locking.
  static constexpr size_t kMaxGroupedShards = 64;

  /// `capacity` is rounded up to shards * ways * power-of-two sets.
  explicit FlowCache(size_t capacity, size_t shards = 8);

  /// Couple the cache to an online classifier: current_stamp() follows its
  /// coherence stamp, entries are banded by their decision's priority, and
  /// a mutation invalidates exactly the bands it could have changed. Null
  /// (the default) pins the stamp to a constant — a pure cache for frozen
  /// rule-sets.
  void set_stamp_source(const OnlineNuevoMatch* src) noexcept { stamp_src_ = src; }

  /// The stamp a caller must read BEFORE classifying a missed packet and
  /// pass back to insert() with the computed decision (coherence contract —
  /// see OnlineNuevoMatch::coherence_stamp()).
  [[nodiscard]] uint64_t current_stamp() const noexcept;

  /// Serve a cached decision for `p` if one exists and its band is still
  /// clean. Counts hit/miss/stale statistics (plus the retained/future
  /// sub-counts of hits — see Stats).
  [[nodiscard]] bool lookup(const Packet& p, Decision& out);

  /// Cache `d` for `p`, stamped with `stamp` (from current_stamp(), read
  /// before `d` was computed). An entry whose stamp is already obsolete is
  /// still stored — the next lookup simply rejects it — so callers never
  /// need to re-read the stamp after classifying. A fresher-stamped entry
  /// for the same flow is never downgraded (the drop is counted in
  /// Stats::insert_drops).
  void insert(const Packet& p, const Decision& d, uint64_t stamp);

  /// Burst probe: serve cached decisions for the lanes of `active` (bit i =
  /// pkts[i]), grouping lanes by shard so each touched shard's lock is
  /// taken once. Returns the hit mask; out[i] is written for every hit
  /// lane. Band marks are re-checked inside EACH shard hold — a commit
  /// landing mid-burst invalidates the not-yet-probed shards' lanes exactly
  /// as per-packet probing would. n <= kBurstLanes.
  [[nodiscard]] uint32_t lookup_burst(const Packet* pkts, uint32_t n,
                                      uint32_t active, Decision* out);

  /// Burst fill: insert ds[i] for pkts[i] for every lane in `mask`, all
  /// stamped with `stamp`, grouped by shard like lookup_burst. Semantics
  /// per lane are identical to insert(). n <= kBurstLanes.
  void insert_burst(const Packet* pkts, uint32_t n, uint32_t mask,
                    const Decision* ds, uint64_t stamp);

  /// Drop every entry (bulk reconfiguration; not needed for coherence).
  void clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;    ///< no entry for the key
    uint64_t stale = 0;     ///< entry found but its band was invalidated
    uint64_t inserts = 0;
    uint64_t evictions = 0; ///< inserts that displaced a live entry
    /// Sub-counts of `hits` (telemetry, not part of the denominator):
    /// `retained` hits were served from entries that SURVIVED at least one
    /// commit (entry stamp older than the probe's stamp view) — the
    /// dependency-aware win; `future` hits were served from entries FRESHER
    /// than the probe's stamp view (a concurrent reader refilled the flow
    /// after a commit this probe hasn't observed — the band marks prove the
    /// entry current regardless; the pre-band cache miscounted these as
    /// plain misses).
    uint64_t retained = 0;
    uint64_t future = 0;
    /// insert() calls dropped because a fresher-stamped entry for the same
    /// flow was already cached (previously a silent early return).
    uint64_t insert_drops = 0;
    /// The one probe-outcome denominator: every lookup is exactly one of
    /// hit / miss / stale. Bench and report() both derive from this.
    [[nodiscard]] uint64_t lookups() const noexcept {
      return hits + misses + stale;
    }
    [[nodiscard]] double hit_rate() const noexcept {
      const uint64_t total = lookups();
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
    /// Interval delta (bench sections subtract a baseline snapshot).
    [[nodiscard]] Stats operator-(const Stats& b) const noexcept {
      return Stats{hits - b.hits,           misses - b.misses,
                   stale - b.stale,         inserts - b.inserts,
                   evictions - b.evictions, retained - b.retained,
                   future - b.future,       insert_drops - b.insert_drops};
    }
  };
  [[nodiscard]] Stats stats() const;

  /// Live (non-empty) entries currently resident, summed across shards.
  /// Takes each shard's lock once; a point-in-time occupancy, not a rate.
  [[nodiscard]] size_t size() const;

  [[nodiscard]] size_t capacity() const noexcept;
  [[nodiscard]] size_t shards() const noexcept { return shards_.size(); }

 private:
  struct Entry {
    std::array<uint32_t, kNumFields> key{};
    Decision d;
    uint64_t stamp = kEmpty;
    uint8_t band = 0;  ///< coherence band of `d` (catch-all for misses)
  };
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<Entry> entries;  // sets * kWays
    std::vector<uint8_t> hand;   // per-set round-robin victim cursor
    uint64_t hits = 0, misses = 0, stale = 0, inserts = 0, evictions = 0;
    uint64_t retained = 0, future = 0, insert_drops = 0;
  };

  [[nodiscard]] static uint64_t hash(const Packet& p) noexcept {
    uint64_t h = 14695981039346656037ull;  // FNV-1a over the five fields
    for (const uint32_t v : p.field) {
      h ^= v;
      h *= 1099511628211ull;
    }
    // Finalize: FNV's low bits are weak, and we index sets with them.
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return h;
  }

  /// The band `d` lives in (catch-all for misses; 0 with no stamp source).
  [[nodiscard]] uint8_t band_of(const Decision& d) const noexcept;
  /// Last-invalidation mark for `band` (0 with no stamp source — every
  /// entry is then permanently clean, matching the frozen-rule-set use).
  [[nodiscard]] uint64_t band_mark(uint8_t band) const noexcept;

  /// Scalar probe/fill bodies, run with the shard lock held.
  [[nodiscard]] bool probe_locked(Shard& sh, size_t set, const Packet& p,
                                  uint64_t now, Decision& out);
  void fill_locked(Shard& sh, size_t set, const Packet& p, const Decision& d,
                   uint64_t stamp, uint8_t band);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t sets_per_shard_;  // power of two
  const OnlineNuevoMatch* stamp_src_ = nullptr;
};

}  // namespace pipeline
}  // namespace nuevomatch
