// The built-in dataplane elements. Config-language signatures:
//
//   PcapSource(file.pcap)                 packets from a capture file
//   TraceSource(rules.file, n[, kind])    synthetic trace over a rule file;
//                                         kind: uniform | zipf[:alpha] | caida
//   FlowCache(capacity[, shards])         update-coherent exact-match cache
//   Classifier(rules.file[, parallel][, manual][, threshold=X][, shards=N])
//                                         OnlineNuevoMatch slow path (32-pkt
//                                         match_batch bursts). Options:
//                                         `parallel` routes through
//                                         BatchParallelEngine; `manual`
//                                         disables auto-retrain (swaps only
//                                         via retrain_now()); `threshold=X`
//                                         sets the absorption retrain
//                                         threshold; `shards=N` the journal
//                                         shard count
//   Dispatch(name0, name1, ...)           route on the matched rule's action
//                                         (action i -> port i; miss or
//                                         out-of-range -> last port)
//   Counter([label])                      count packets passing through
//   Sink([record])                        terminal drop + stats; `record`
//                                         keeps (index, decision) per packet
//   PcapSink(file.pcap)                   write synthesized frames, then
//                                         forward (a tap, not a terminal)
//
// Every element also has a programmatic constructor; benches and tests
// build graphs without config text and attach pre-built engines
// (ClassifierElement::attach) before Graph::initialize() runs.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nuevomatch/online.hpp"
#include "nuevomatch/parallel.hpp"
#include "pipeline/element.hpp"
#include "trace/pcap.hpp"
#include "trace/trace.hpp"

namespace nuevomatch::pipeline {

/// Register every element above; called automatically on first
/// make_element()/Graph::parse(). Idempotent.
void register_builtin_elements();

// --- sources ----------------------------------------------------------------

class PcapSource final : public SourceElement {
 public:
  explicit PcapSource(const std::string& path);
  [[nodiscard]] std::string_view kind() const override { return "PcapSource"; }
  [[nodiscard]] bool pump(Burst& b) override;
  [[nodiscard]] std::string report() const override;
  /// Frames that could not be projected onto a five-tuple (non-IPv4 ...).
  [[nodiscard]] uint64_t skipped() const noexcept {
    return skipped_.load(std::memory_order_relaxed);
  }
  /// Packets EMITTED by this source (excludes replica-filtered ones).
  [[nodiscard]] uint64_t packets() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }
  /// Parseable frames belonging to other replicas (0 unfiltered).
  [[nodiscard]] uint64_t filtered() const noexcept {
    return filtered_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<PcapReader> reader_;
  // Relaxed atomics, not plain u64: pumped by one task thread but read
  // cross-thread (reports, telemetry scrapes, replica supervision) while
  // the run is live. Single-writer, so relaxed increments stay exact.
  std::atomic<uint64_t> packets_{0};
  std::atomic<uint64_t> skipped_{0};
  std::atomic<uint64_t> filtered_{0};
  uint64_t stream_pos_ = 0;  ///< global capture position (index annotation)
};

class TraceSource final : public SourceElement {
 public:
  /// Programmatic: pump a pre-built packet vector.
  explicit TraceSource(std::vector<Packet> packets);
  /// Config-language: generate a trace over a ClassBench-format rule file.
  TraceSource(const std::string& rules_path, size_t n_packets,
              const TraceConfig& cfg);
  [[nodiscard]] std::string_view kind() const override { return "TraceSource"; }
  [[nodiscard]] bool pump(Burst& b) override;
  [[nodiscard]] std::string report() const override;
  /// Rewind so the same trace can be pumped again (bench warm-up passes).
  void rewind() noexcept { next_ = 0; }
  [[nodiscard]] const std::vector<Packet>& packets() const noexcept {
    return packets_;
  }

 private:
  std::vector<Packet> packets_;
  size_t next_ = 0;
};

// --- processing -------------------------------------------------------------

class ClassifierElement;

class FlowCacheElement final : public Element {
 public:
  explicit FlowCacheElement(size_t capacity, size_t shards = 8);
  [[nodiscard]] std::string_view kind() const override { return "FlowCache"; }
  void process(Burst& b) override;
  /// Couples the coherence stamp to the graph's Classifier (if any).
  void initialize(Graph& g) override;
  [[nodiscard]] std::string report() const override;
  [[nodiscard]] FlowCache& cache() noexcept { return cache_; }
  [[nodiscard]] const FlowCache& cache() const noexcept { return cache_; }

 private:
  FlowCache cache_;
};

class ClassifierElement final : public Element {
 public:
  struct Options {
    bool parallel = false;        ///< two-core BatchParallelEngine path
    double retrain_threshold = 0.05;
    bool auto_retrain = true;
    int update_shards = 4;
  };

  /// Empty shell: attach an engine before Graph::initialize().
  ClassifierElement() = default;
  /// Build an OnlineNuevoMatch (TupleMerge remainder) over a ClassBench-
  /// format rule file.
  ClassifierElement(const std::string& rules_path, Options opts);

  [[nodiscard]] std::string_view kind() const override { return "Classifier"; }
  void process(Burst& b) override;
  void initialize(Graph& g) override;
  void finish() override;
  [[nodiscard]] std::string report() const override;

  /// Attach a shared online engine (tests/benches; several elements may
  /// share one). Call set_actions() too if Dispatch routing matters.
  void attach(std::shared_ptr<OnlineNuevoMatch> engine);
  /// Become another Classifier's sibling: share its engine (online or
  /// scalar), action map, and parallel flag. The replica-graph fan-in —
  /// ReplicatedGraph::parse builds replica 0 normally (one training run)
  /// and every other replica adopts, all N feeding one engine through the
  /// epoch domain.
  void adopt_shared(const ClassifierElement& proto);
  /// Attach any frozen Classifier (e.g. bare TupleSpaceSearch) as a scalar
  /// slow path: per-packet match(), no coherence stamps (the engine is
  /// immutable, so a constant stamp IS coherent).
  void attach_scalar(std::shared_ptr<const nuevomatch::Classifier> engine);
  void enable_parallel();

  /// The online engine, or null when a scalar engine is attached.
  [[nodiscard]] OnlineNuevoMatch* online() const noexcept { return online_.get(); }

  /// Rule-id -> action map used to annotate decisions for Dispatch. Built
  /// from the rule file automatically; programmatic attachments provide it
  /// here. Rules inserted later default to action -1 (Dispatch's last
  /// port) unless refreshed — the map is read-only while the graph runs.
  void set_actions(std::span<const Rule> rules);

  [[nodiscard]] uint64_t classified() const noexcept {
    return classified_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] int32_t action_of(int32_t rule_id) const;

  std::shared_ptr<OnlineNuevoMatch> online_;
  std::shared_ptr<const nuevomatch::Classifier> scalar_;
  std::unique_ptr<BatchParallelEngine> parallel_;
  bool want_parallel_ = false;
  std::unordered_map<uint32_t, int32_t> actions_;
  // Relaxed atomics: incremented by the replica's worker thread, read by
  // reports/telemetry while firing (was a torn read as plain u64).
  std::atomic<uint64_t> classified_{0};
  std::atomic<uint64_t> bursts_{0};
  // Registry-add batch (worker-thread private): flushed every 64 classified
  // bursts and in finish(), so a live scrape lags by at most one batch.
  void flush_metrics_acc();
  uint64_t m_acc_bursts_ = 0;
  uint64_t m_acc_pkts_ = 0;
};

class Dispatch final : public Element {
 public:
  explicit Dispatch(std::vector<std::string> port_names);
  [[nodiscard]] std::string_view kind() const override { return "Dispatch"; }
  [[nodiscard]] size_t n_outputs() const override { return names_.size(); }
  void process(Burst& b) override;
  [[nodiscard]] std::string report() const override;
  [[nodiscard]] uint64_t port_packets(size_t port) const {
    return counts_.at(port).load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::string> names_;
  /// Sized once in the constructor, never resized (vector<atomic> must not
  /// reallocate); relaxed increments, cross-thread reads.
  std::vector<std::atomic<uint64_t>> counts_;
  std::vector<Burst> split_;  // reused per-port staging (DAG => no reentry)
};

class Counter final : public Element {
 public:
  explicit Counter(std::string label = {});
  [[nodiscard]] std::string_view kind() const override { return "Counter"; }
  void process(Burst& b) override;
  [[nodiscard]] std::string report() const override;
  [[nodiscard]] uint64_t packets() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t bursts() const noexcept {
    return bursts_.load(std::memory_order_relaxed);
  }

 private:
  std::string label_;
  // Read cross-thread while replicas fire (ReplicatedGraph's merged tick
  // totals, telemetry): relaxed atomics, single writer each.
  std::atomic<uint64_t> packets_{0};
  std::atomic<uint64_t> bursts_{0};
};

// --- terminals --------------------------------------------------------------

class Sink final : public Element {
 public:
  struct Record {
    uint64_t index;
    int32_t rule_id;
    int32_t priority;
    int32_t action;
    /// Decision was served from a FlowCache (Burst::from_cache) — the
    /// provenance bit the stale-served oracle keys on.
    bool cached = false;
  };

  explicit Sink(bool record = false);
  [[nodiscard]] std::string_view kind() const override { return "Sink"; }
  void process(Burst& b) override;
  [[nodiscard]] std::string report() const override;
  [[nodiscard]] uint64_t packets() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }
  /// Recorded decisions in arrival order (empty unless `record`).
  /// NOT safe to read while the graph runs (unsynchronized vector) —
  /// differential tests read it post-join only.
  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }

 private:
  bool record_;
  std::atomic<uint64_t> packets_{0};
  std::vector<Record> records_;
};

/// Parse-scoped engine sharing for replicated graphs: while an instance is
/// alive (on this thread), config-language `Classifier(...)` factories
/// adopt_shared() from the donor instead of loading the rule file and
/// training their own engine. ReplicatedGraph::parse wraps the parses of
/// replicas 1..n-1 in one of these; nobody else should need it.
class ScopedEngineDonor {
 public:
  explicit ScopedEngineDonor(const ClassifierElement& proto) noexcept;
  ~ScopedEngineDonor();
  ScopedEngineDonor(const ScopedEngineDonor&) = delete;
  ScopedEngineDonor& operator=(const ScopedEngineDonor&) = delete;

 private:
  const ClassifierElement* prev_;
};

class PcapSink final : public Element {
 public:
  explicit PcapSink(const std::string& path, PcapWriterOptions opts = {});
  [[nodiscard]] std::string_view kind() const override { return "PcapSink"; }
  void process(Burst& b) override;
  void finish() override;
  [[nodiscard]] std::string report() const override;

 private:
  std::unique_ptr<PcapWriter> writer_;
  uint64_t packets_ = 0;
};

}  // namespace nuevomatch::pipeline
