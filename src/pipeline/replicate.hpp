// Per-core pipeline replication (DESIGN.md "Scheduler"): N copies of one
// element graph, an RSS five-tuple split across their sources, one shared
// OnlineNuevoMatch fanned into through the epoch domain, all driven by the
// Click-style task scheduler (scheduler.hpp) — one Task per replica, one
// fire = one burst through the whole replica graph, background retrain as
// a daemon task.
//
//   ReplicatedGraph rg = ReplicatedGraph::parse(config_text, 4);
//   ReplicatedRunOptions opts;
//   opts.threads = 4;
//   const uint64_t packets = rg.run(opts);
//   for (const Sink::Record& r : rg.merged_records()) ...
//
// What is replicated and what is shared:
//   * each replica owns its elements — source (filtered), FlowCache,
//     Classifier element, Dispatch/Counter/Sink — so the hot path touches
//     no cross-replica state at all;
//   * the online engine behind every replica's Classifier is ONE object
//     (config parses share it via ScopedEngineDonor; programmatic builders
//     attach the same shared_ptr); its wait-free read path was built for
//     exactly this fan-in;
//   * decisions carry the source's GLOBAL stream position in Burst::index,
//     so merged_records() is a total, order-independent join key against a
//     scalar run of the same input — the differential-test contract.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/scheduler.hpp"

namespace nuevomatch::pipeline {

struct ReplicatedRunOptions {
  size_t threads = 1;   ///< scheduler threads (1 = deterministic inline run)
  uint32_t quantum = 8; ///< bursts per scheduler slice (fairness knob)
  /// Schedule the shared engine's retrain as a daemon task: when the
  /// absorption ratio crosses the engine's configured threshold, kick
  /// retrain_now() from whatever thread the daemon lands on — Click's
  /// "background work is just another task". Meant for engines built with
  /// auto_retrain=false; harmless (idle) otherwise.
  bool retrain_task = false;
  /// Runs after every burst with the CUMULATIVE packet count across all
  /// replicas. May fire concurrently from several scheduler threads —
  /// the hook must be thread-safe (differential tests serialize inside).
  std::function<void(uint64_t)> tick;
};

class ReplicatedGraph {
 public:
  /// Builds one replica's graph. Called n times; each returned graph must
  /// have exactly one source. Sharing the engine across replicas is the
  /// builder's business (attach the same shared_ptr in each call); the
  /// replica filter is installed on every source afterwards by the
  /// constructor, so builders don't set it themselves.
  using Builder = std::function<Graph(uint32_t replica, uint32_t n_replicas)>;

  ReplicatedGraph(uint32_t n_replicas, const Builder& build);

  /// Config-text form: replica 0 parses (and trains) normally; replicas
  /// 1..n-1 parse under a ScopedEngineDonor so their Classifier elements
  /// adopt replica 0's engine instead of training their own.
  [[nodiscard]] static ReplicatedGraph parse(std::string_view config,
                                             uint32_t n_replicas);

  [[nodiscard]] uint32_t replicas() const noexcept {
    return static_cast<uint32_t>(graphs_.size());
  }
  [[nodiscard]] Graph& replica(size_t i) { return graphs_[i]; }
  [[nodiscard]] const Graph& replica(size_t i) const { return graphs_[i]; }

  /// The one online engine behind every replica's Classifier, or null
  /// when the replicas have no online Classifier (scalar/none). Throws if
  /// replicas disagree — that graph shape is a bug, not a configuration.
  [[nodiscard]] OnlineNuevoMatch* shared_online() const;

  /// Drive all replicas to exhaustion on `opts.threads` scheduler threads
  /// (the calling thread is one of them), then finish_run() each replica.
  /// One-shot, like Scheduler::run. Returns total packets pumped.
  uint64_t run(const ReplicatedRunOptions& opts = {});

  /// Scheduler telemetry from the last run().
  [[nodiscard]] const SchedulerStats& last_stats() const noexcept {
    return stats_;
  }

  // --- order-independent merged views (the differential-test surface) ----
  /// All recording Sinks' records across replicas, sorted by the global
  /// stream index. A replicated run over the same input as a scalar run
  /// must produce the IDENTICAL vector.
  [[nodiscard]] std::vector<Sink::Record> merged_records() const;
  /// Sum of Counter::packets() over all replicas (aggregate totals merge
  /// by addition — order never matters for counts).
  [[nodiscard]] uint64_t total_counter_packets() const;
  [[nodiscard]] uint64_t total_sink_packets() const;
  /// Per-replica reports concatenated, replica-tagged.
  [[nodiscard]] std::string report() const;

 private:
  explicit ReplicatedGraph(std::vector<Graph> graphs);
  void install_filters();

  std::vector<Graph> graphs_;
  SchedulerStats stats_;
  bool ran_ = false;
};

}  // namespace nuevomatch::pipeline
