// Per-core pipeline replication (DESIGN.md "Scheduler"): N copies of one
// element graph, an RSS five-tuple split across their sources, one shared
// OnlineNuevoMatch fanned into through the epoch domain, all driven by the
// Click-style task scheduler (scheduler.hpp) — one Task per replica, one
// fire = one burst through the whole replica graph, background retrain as
// a daemon task.
//
//   ReplicatedGraph rg = ReplicatedGraph::parse(config_text, 4);
//   ReplicatedRunOptions opts;
//   opts.threads = 4;
//   const uint64_t packets = rg.run(opts);
//   for (const Sink::Record& r : rg.merged_records()) ...
//
// What is replicated and what is shared:
//   * each replica owns its elements — source (filtered), FlowCache,
//     Classifier element, Dispatch/Counter/Sink — so the hot path touches
//     no cross-replica state at all;
//   * the online engine behind every replica's Classifier is ONE object
//     (config parses share it via ScopedEngineDonor; programmatic builders
//     attach the same shared_ptr); its wait-free read path was built for
//     exactly this fan-in;
//   * decisions carry the source's GLOBAL stream position in Burst::index,
//     so merged_records() is a total, order-independent join key against a
//     scalar run of the same input — the differential-test contract.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/elements.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/scheduler.hpp"

namespace nuevomatch::pipeline {

struct ReplicatedRunOptions {
  size_t threads = 1;   ///< scheduler threads (1 = deterministic inline run)
  uint32_t quantum = 8; ///< bursts per scheduler slice (fairness knob)
  /// Schedule the shared engine's retrain as a daemon task: when the
  /// absorption ratio crosses the engine's configured threshold, kick
  /// retrain_now() from whatever thread the daemon lands on — Click's
  /// "background work is just another task". Meant for engines built with
  /// auto_retrain=false; harmless (idle) otherwise.
  bool retrain_task = false;
  /// Runs after every burst with the CUMULATIVE packet count across all
  /// replicas. May fire concurrently from several scheduler threads —
  /// the hook must be thread-safe (differential tests serialize inside).
  std::function<void(uint64_t)> tick;

  // --- supervision (DESIGN.md "Failure model") ---------------------------
  /// Policy applied to every replica task (and the retrain daemon).
  /// kEscalate — the default — preserves the PR 7 fail-stop semantics
  /// bit-for-bit: one crash stops the world and rethrows out of run().
  /// kQuarantine arms the full recovery ladder: crash → quiesce sources →
  /// re-steer the dead slice to survivors → drain the replica's cache →
  /// respawn (re-adopt the shared engine) → rejoin. kRestart retries the
  /// task in place first (seeded backoff), quarantining after max_restarts.
  SupervisorPolicy policy = SupervisorPolicy::kEscalate;
  uint32_t max_restarts = 3;
  /// Width, in stream positions, of the re-steer window opened at a
  /// quarantine: [C, C+resteer_window) of the dead replica's RSS slice is
  /// served by survivors (C = a cutover ahead of every source's quiesced
  /// position), after which the rejoined replica owns its slice again.
  uint64_t resteer_window = 4 * kBurstSize;
  /// Respawn + reinstate a quarantined replica after draining it. When
  /// false the replica stays down: its undelivered slice outside the
  /// re-steer window is never served (a lossy degraded mode the
  /// differential surfaces deliberately); health records the quarantine.
  bool rejoin = true;
};

/// Per-replica supervision state (PipelineHealth).
struct ReplicaHealth {
  enum class State : uint8_t { kLive, kQuarantined, kRejoined };
  State state = State::kLive;
  uint32_t quarantines = 0;      ///< times this replica was quarantined
  uint32_t rejoins = 0;          ///< successful respawn+reinstate cycles
  uint64_t drained_entries = 0;  ///< live cache entries dropped by drains
  uint64_t steps = 0;            ///< bursts stepped (GraphHealth)
};

/// The replicated dataplane's full supervision report: the scheduler's
/// per-task RuntimeHealth plus the replica layer above it. Complete after
/// run() returns (the runtime part is snapshotted then); the replica-layer
/// counters are live during the run as well.
struct PipelineHealth {
  static constexpr uint32_t kNoTrainer = ~0u;

  RuntimeHealth runtime;
  std::vector<ReplicaHealth> replicas;
  uint32_t trainer = 0;            ///< replica hosting training duties
  uint32_t trainer_failovers = 0;  ///< times the trainer migrated
  uint32_t rejoin_failures = 0;    ///< rejoins aborted (failpoint/adopt)
  uint64_t steer_epochs = 1;       ///< steering-table epochs installed
  uint64_t recovery_ns = 0;        ///< wall time inside quarantine handling

  /// Human-readable multi-line report (pipeline_router prints this).
  [[nodiscard]] std::string to_string() const;
};

class ReplicatedGraph {
 public:
  /// Builds one replica's graph. Called n times; each returned graph must
  /// have exactly one source. Sharing the engine across replicas is the
  /// builder's business (attach the same shared_ptr in each call); the
  /// replica filter is installed on every source afterwards by the
  /// constructor, so builders don't set it themselves.
  using Builder = std::function<Graph(uint32_t replica, uint32_t n_replicas)>;

  ReplicatedGraph(uint32_t n_replicas, const Builder& build);

  /// Config-text form: replica 0 parses (and trains) normally; replicas
  /// 1..n-1 parse under a ScopedEngineDonor so their Classifier elements
  /// adopt replica 0's engine instead of training their own.
  [[nodiscard]] static ReplicatedGraph parse(std::string_view config,
                                             uint32_t n_replicas);

  [[nodiscard]] uint32_t replicas() const noexcept {
    return static_cast<uint32_t>(graphs_.size());
  }
  [[nodiscard]] Graph& replica(size_t i) { return graphs_[i]; }
  [[nodiscard]] const Graph& replica(size_t i) const { return graphs_[i]; }

  /// The one online engine behind every replica's Classifier, or null
  /// when the replicas have no online Classifier (scalar/none). Throws if
  /// replicas disagree — that graph shape is a bug, not a configuration.
  [[nodiscard]] OnlineNuevoMatch* shared_online() const;

  /// Drive all replicas to exhaustion on `opts.threads` scheduler threads
  /// (the calling thread is one of them), then finish_run() each replica.
  /// One-shot, like Scheduler::run. Returns total packets pumped.
  uint64_t run(const ReplicatedRunOptions& opts = {});

  /// Scheduler telemetry from the last run().
  [[nodiscard]] const SchedulerStats& last_stats() const noexcept {
    return stats_;
  }

  // --- order-independent merged views (the differential-test surface) ----
  /// All recording Sinks' records across replicas, sorted by the global
  /// stream index. A replicated run over the same input as a scalar run
  /// must produce the IDENTICAL vector.
  [[nodiscard]] std::vector<Sink::Record> merged_records() const;
  /// Sum of Counter::packets() over all replicas (aggregate totals merge
  /// by addition — order never matters for counts).
  [[nodiscard]] uint64_t total_counter_packets() const;
  [[nodiscard]] uint64_t total_sink_packets() const;
  /// Per-replica reports concatenated, replica-tagged.
  [[nodiscard]] std::string report() const;

  /// Supervision report (scheduler runtime + replica layer). The runtime
  /// part is snapshotted when run() returns; replica-layer counters are
  /// maintained live by the quarantine path.
  [[nodiscard]] PipelineHealth health() const;

 private:
  explicit ReplicatedGraph(std::vector<Graph> graphs);
  void install_filters();
  /// The on_quarantine hook body for a replica task: quiesce → re-steer →
  /// drain → (maybe) rejoin → trainer failover. Runs on the catching
  /// thread, synchronously, between that task's fires.
  void quarantine_replica(uint32_t idx, Task& t, Scheduler& sched,
                          const ReplicatedRunOptions& opts);
  /// Respawn step of a rejoin: re-couple the replica's cache stamp source
  /// and verify it still feeds the ONE shared engine. Throws on mismatch
  /// (and on the pipeline.replica.adopt failpoint).
  void readopt(uint32_t idx);

  std::vector<Graph> graphs_;
  SchedulerStats stats_;
  bool ran_ = false;

  // Supervision state (unused — and cost-free — under kEscalate).
  std::unique_ptr<ReplicaSteering> steering_;
  /// Serializes whole recovery ladders: two replicas crashing near-
  /// simultaneously (failpoint count > 1, or a kRestart exhaustion landing
  /// during another crash) each run the on_quarantine hook on their own
  /// catching thread. The ladder mutates single-writer state (the steering
  /// table, the trainer assignment) and relies on the paused_/pumping_
  /// quiesce holding until IT clears the pause — so the second quarantine
  /// must wait out the first entirely, not interleave with it.
  std::mutex recovery_mu_;
  std::atomic<bool> paused_{false};    ///< quiesce gate for replica pumps
  std::atomic<uint32_t> pumping_{0};   ///< pumps currently in flight
  std::atomic<uint32_t> trainer_{0};   ///< replica hosting training duties
  mutable std::mutex health_mu_;
  std::vector<ReplicaHealth> rhealth_;       // guarded by health_mu_
  uint32_t trainer_failovers_ = 0;           // guarded by health_mu_
  uint32_t rejoin_failures_ = 0;             // guarded by health_mu_
  uint64_t recovery_ns_ = 0;                 // guarded by health_mu_
  RuntimeHealth runtime_health_;             // guarded by health_mu_
};

}  // namespace nuevomatch::pipeline
