#include "pipeline/elements.hpp"

#include <bit>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "classbench/parser.hpp"
#include "common/metrics.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/metrics_exporter.hpp"
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch::pipeline {

namespace {

[[nodiscard]] RuleSet load_rules_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open rule file '" + path + "'");
  size_t skipped = 0;
  RuleSet rules = parse_classbench(in, &skipped);
  if (rules.empty())
    throw std::runtime_error("rule file '" + path + "' contains no rules");
  return rules;
}

[[nodiscard]] size_t to_size(const std::string& s, const char* what) {
  size_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size())
    throw std::runtime_error(std::string("bad ") + what + " '" + s + "'");
  return v;
}

[[nodiscard]] double to_double(const std::string& s, const char* what) {
  try {
    size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad ") + what + " '" + s + "'");
  }
}

[[nodiscard]] std::string fmt(const char* f, auto... a) {
  char buf[160];
  std::snprintf(buf, sizeof buf, f, a...);
  return buf;
}

}  // namespace

// --- PcapSource -------------------------------------------------------------

PcapSource::PcapSource(const std::string& path)
    : reader_(std::make_unique<PcapReader>(path)) {
  if (!reader_->ok()) throw std::runtime_error(reader_->error());
}

bool PcapSource::pump(Burst& b) {
  PcapRecord rec;
  while (b.size < kBurstSize) {
    if (!reader_->next(rec)) {
      if (!reader_->ok()) throw std::runtime_error(reader_->error());
      break;  // clean EOF
    }
    const auto p = parse_frame(rec.frame, reader_->link_type());
    if (!p.has_value()) {
      skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // The stream position advances for every parseable frame, filter or
    // not: Burst::index is the GLOBAL capture position, so decisions from
    // different replicas merge 1:1 against a scalar run of the same file.
    const uint64_t pos = stream_pos_++;
    if (!accepts(*p, pos)) {
      filtered_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const uint32_t i = b.size++;
    b.pkt[i] = *p;
    b.ts_ns[i] = rec.ts_ns;
    b.index[i] = pos;
    b.result[i] = MatchResult{};
    b.action[i] = -1;
    packets_.fetch_add(1, std::memory_order_relaxed);
  }
  publish_pos(stream_pos_);
  return b.size > 0;
}

std::string PcapSource::report() const {
  std::string line =
      fmt("pcap source: %llu packets, %llu frames skipped (not IPv4)",
          static_cast<unsigned long long>(packets()),
          static_cast<unsigned long long>(skipped()));
  if (n_replicas() > 1)
    line += fmt(", %llu filtered to other replicas",
                static_cast<unsigned long long>(filtered()));
  return line;
}

// --- TraceSource ------------------------------------------------------------

TraceSource::TraceSource(std::vector<Packet> packets)
    : packets_(std::move(packets)) {}

TraceSource::TraceSource(const std::string& rules_path, size_t n_packets,
                         const TraceConfig& cfg) {
  const RuleSet rules = load_rules_file(rules_path);
  TraceConfig tc = cfg;
  tc.n_packets = n_packets;
  packets_ = generate_trace(rules, tc);
}

bool TraceSource::pump(Burst& b) {
  while (b.size < kBurstSize && next_ < packets_.size()) {
    const uint64_t pos = next_++;
    if (!accepts(packets_[pos], pos)) continue;  // index stays global — see PcapSource
    const uint32_t i = b.size++;
    b.pkt[i] = packets_[pos];
    b.ts_ns[i] = pos * 1'000;
    b.index[i] = pos;
    b.result[i] = MatchResult{};
    b.action[i] = -1;
  }
  publish_pos(next_);
  return b.size > 0;
}

std::string TraceSource::report() const {
  if (n_replicas() > 1)
    return fmt("trace source: %zu packets (replica filter %u-way)",
               packets_.size(), n_replicas());
  return fmt("trace source: %zu packets", packets_.size());
}

// --- FlowCacheElement -------------------------------------------------------

FlowCacheElement::FlowCacheElement(size_t capacity, size_t shards)
    : cache_(capacity, shards) {}

void FlowCacheElement::initialize(Graph& g) {
  // Couple coherence: the graph's classifier (if online) invalidates our
  // entries through its stamp. A scalar/absent classifier leaves the stamp
  // constant — a frozen rule-set needs no invalidation.
  //
  // The stamp is ONE source, so a graph feeding one cache from several
  // DISTINCT online engines cannot be made coherent this way (updates to
  // engine B would never invalidate decisions engine A... and vice versa).
  // Reject the ambiguity at wiring time instead of serving stale decisions.
  const OnlineNuevoMatch* src = nullptr;
  for (const auto& e : g.elements()) {
    const auto* cls = dynamic_cast<const ClassifierElement*>(e.get());
    if (cls == nullptr || cls->online() == nullptr) continue;
    if (src != nullptr && src != cls->online())
      throw std::runtime_error(
          "FlowCache '" + name() +
          "': graph has Classifier elements over DIFFERENT online engines; "
          "one coherence stamp cannot cover both (use one cache per engine)");
    src = cls->online();
  }
  cache_.set_stamp_source(src);
}

void FlowCacheElement::process(Burst& b) {
  // Read the fill stamp BEFORE any lane can be classified downstream: a
  // mutation committing after this read bumps the stamp past it, so the
  // decisions the classifier computes for this burst can never be served
  // once that mutation's call returns (coherence contract, flow_cache.hpp).
  const uint64_t stamp = cache_.current_stamp();
  const uint32_t lanes =
      (b.size >= kBurstSize ? ~uint32_t{0} : (1u << b.size) - 1) & ~b.resolved;
  if (lanes != 0) {
    // One shard-grouped burst probe instead of one lock per packet; the
    // cache re-checks the band marks per shard hold (flow_cache.hpp).
    std::array<Decision, kBurstSize> d;
    const uint32_t hits = cache_.lookup_burst(b.pkt.data(), b.size, lanes, d.data());
    for (uint32_t m = hits; m != 0; m &= m - 1) {
      const auto i = static_cast<uint32_t>(std::countr_zero(m));
      b.result[i] = MatchResult{d[i].rule_id, d[i].priority};
      b.action[i] = d[i].action;
      b.mark_resolved(i);
      b.from_cache |= 1u << i;
    }
    if ((lanes & ~hits) != 0) {
      b.fill = &cache_;
      b.fill_stamp = stamp;
    }
  }
  forward(b);
}

std::string FlowCacheElement::report() const {
  const FlowCache::Stats s = cache_.stats();
  return fmt("flow cache: %.1f%% hit rate (%llu hits — %llu retained past "
             "commits, %llu fresher than probe; %llu misses, %llu stale, "
             "%llu evictions, %llu insert drops; capacity %zu)",
             s.hit_rate() * 100.0, static_cast<unsigned long long>(s.hits),
             static_cast<unsigned long long>(s.retained),
             static_cast<unsigned long long>(s.future),
             static_cast<unsigned long long>(s.misses),
             static_cast<unsigned long long>(s.stale),
             static_cast<unsigned long long>(s.evictions),
             static_cast<unsigned long long>(s.insert_drops), cache_.capacity());
}

// --- ClassifierElement ------------------------------------------------------

ClassifierElement::ClassifierElement(const std::string& rules_path, Options opts) {
  const RuleSet rules = load_rules_file(rules_path);
  OnlineConfig cfg;
  cfg.base.remainder_factory = [] { return std::make_unique<TupleMerge>(); };
  cfg.base.min_iset_coverage = 0.05;  // §5.1 floor vs TupleMerge-class engines
  cfg.retrain_threshold = opts.retrain_threshold;
  cfg.auto_retrain = opts.auto_retrain;
  cfg.update_shards = opts.update_shards;
  auto engine = std::make_shared<OnlineNuevoMatch>(std::move(cfg));
  engine->build(rules);
  attach(std::move(engine));
  set_actions(rules);
  want_parallel_ = opts.parallel;
}

void ClassifierElement::attach(std::shared_ptr<OnlineNuevoMatch> engine) {
  online_ = std::move(engine);
  scalar_.reset();
  parallel_.reset();
}

void ClassifierElement::attach_scalar(
    std::shared_ptr<const nuevomatch::Classifier> engine) {
  scalar_ = std::move(engine);
  online_.reset();
  parallel_.reset();
}

void ClassifierElement::adopt_shared(const ClassifierElement& proto) {
  online_ = proto.online_;  // shared_ptr copy: N elements, ONE engine
  scalar_ = proto.scalar_;
  parallel_.reset();
  actions_ = proto.actions_;
  want_parallel_ = proto.want_parallel_;
}

void ClassifierElement::enable_parallel() { want_parallel_ = true; }

void ClassifierElement::set_actions(std::span<const Rule> rules) {
  actions_.clear();
  actions_.reserve(rules.size());
  for (const Rule& r : rules) actions_.emplace(r.id, r.action);
}

int32_t ClassifierElement::action_of(int32_t rule_id) const {
  if (rule_id < 0) return -1;
  const auto it = actions_.find(static_cast<uint32_t>(rule_id));
  return it == actions_.end() ? -1 : it->second;
}

void ClassifierElement::initialize(Graph&) {
  if (online_ == nullptr && scalar_ == nullptr)
    throw std::runtime_error("Classifier element '" + name() +
                             "' has no engine (config rule file missing and "
                             "no attach() before initialize)");
  if (want_parallel_) {
    if (online_ == nullptr)
      throw std::runtime_error("Classifier 'parallel' needs an online engine");
    parallel_ = std::make_unique<BatchParallelEngine>(*online_);
  }
}

void ClassifierElement::process(Burst& b) {
  // Classify the unresolved lanes as one burst-sized batch and honor the
  // cache-fill note. The common fully-unresolved burst (no cache upstream,
  // or a cold one) classifies straight out of / into the burst arrays; a
  // partially-resolved burst compacts the miss lanes first.
  const auto classify = [&](std::span<const Packet> in, std::span<MatchResult> out) {
    if (parallel_ != nullptr) {
      parallel_->classify(in, out);
    } else if (online_ != nullptr) {
      online_->match_batch(in, out);
    } else {
      for (size_t k = 0; k < in.size(); ++k) out[k] = scalar_->match(in[k]);
    }
  };
  // The cache-fill obligation is met with ONE shard-grouped burst insert
  // after the classify pass, not one locked insert per lane.
  std::array<Decision, kBurstSize> fill_d;
  uint32_t fill_mask = 0;
  const auto annotate = [&](uint32_t i) {
    b.action[i] = action_of(b.result[i].rule_id);
    b.mark_resolved(i);
    if (b.fill != nullptr) {
      fill_d[i] = Decision{b.result[i].rule_id, b.result[i].priority, b.action[i]};
      fill_mask |= 1u << i;
    }
  };

  const auto count = [this](uint32_t n) {
    bursts_.fetch_add(1, std::memory_order_relaxed);
    classified_.fetch_add(n, std::memory_order_relaxed);
    if (NM_METRICS_ENABLED) {
      ++m_acc_bursts_;
      m_acc_pkts_ += n;
      if (m_acc_bursts_ >= 64) flush_metrics_acc();
    }
  };

  if (b.size > 0 && b.resolved == 0) {
    count(b.size);
    classify({b.pkt.data(), b.size}, {b.result.data(), b.size});
    for (uint32_t i = 0; i < b.size; ++i) annotate(i);
  } else {
    std::array<Packet, kBurstSize> pkts;
    std::array<uint32_t, kBurstSize> lane;
    std::array<MatchResult, kBurstSize> res;
    uint32_t n = 0;
    for (uint32_t i = 0; i < b.size; ++i) {
      if (b.is_resolved(i)) continue;
      pkts[n] = b.pkt[i];
      lane[n] = i;
      ++n;
    }
    if (n > 0) {
      count(n);
      classify({pkts.data(), n}, {res.data(), n});
      for (uint32_t k = 0; k < n; ++k) {
        b.result[lane[k]] = res[k];
        annotate(lane[k]);
      }
    }
  }
  if (fill_mask != 0)
    b.fill->insert_burst(b.pkt.data(), b.size, fill_mask, fill_d.data(), b.fill_stamp);
  b.fill = nullptr;  // obligation met; downstream must not double-fill
  forward(b);
}

void ClassifierElement::flush_metrics_acc() {
  if (m_acc_bursts_ == 0 && m_acc_pkts_ == 0) return;
  static telemetry::Counter& mb = telemetry::registry().counter(
      "nm_classifier_bursts_total", "bursts classified by the slow path");
  static telemetry::Counter& mp = telemetry::registry().counter(
      "nm_classifier_packets_total", "packets classified by the slow path");
  mb.add(m_acc_bursts_);
  mp.add(m_acc_pkts_);
  m_acc_bursts_ = 0;
  m_acc_pkts_ = 0;
}

void ClassifierElement::finish() { flush_metrics_acc(); }

std::string ClassifierElement::report() const {
  std::string line = fmt("classified %llu packets in %llu bursts",
                         static_cast<unsigned long long>(classified()),
                         static_cast<unsigned long long>(
                             bursts_.load(std::memory_order_relaxed)));
  if (online_ != nullptr) {
    line += fmt(" (online engine: %llu generations, %llu updates%s)",
                static_cast<unsigned long long>(online_->generations()),
                static_cast<unsigned long long>(online_->update_ops()),
                parallel_ != nullptr ? ", two-core" : "");
    // The operator surface: a healthy engine reports one word, an unhealthy
    // one reports exactly what is wrong (the reason a run's numbers are off
    // should be in the run's own report, not in a debugger).
    const EngineHealth h = online_->health();
    if (h.ok()) {
      line += "\n  health: ok";
    } else {
      line += fmt("\n  health: %s — %llu consecutive retrain failure(s) "
                  "(%llu lifetime)",
                  h.degraded ? "DEGRADED" : "retrying",
                  static_cast<unsigned long long>(h.retrain_failures),
                  static_cast<unsigned long long>(h.retrain_failures_total));
      if (h.in_backoff)
        line += fmt(", backoff %llu ms",
                    static_cast<unsigned long long>(h.backoff_ms));
      if (!h.last_error.empty()) line += ", last error: " + h.last_error;
    }
    if (h.shed_ops > 0)
      line += fmt("\n  overload: %llu inserts shed",
                  static_cast<unsigned long long>(h.shed_ops));
  } else if (scalar_ != nullptr) {
    line += " (scalar engine: " + scalar_->name() + ")";
  }
  return line;
}

// --- Dispatch ---------------------------------------------------------------

Dispatch::Dispatch(std::vector<std::string> port_names)
    : names_(std::move(port_names)) {
  if (names_.empty())
    throw std::runtime_error("Dispatch needs at least one output port name");
  counts_ = std::vector<std::atomic<uint64_t>>(names_.size());
  split_.resize(names_.size());
}

void Dispatch::process(Burst& b) {
  for (Burst& s : split_) {
    s.reset();
    // The cache-fill note travels with the split: a Classifier on a
    // Dispatch leg must still honor the upstream FlowCache's obligation.
    s.fill = b.fill;
    s.fill_stamp = b.fill_stamp;
  }
  const size_t last = names_.size() - 1;
  for (uint32_t i = 0; i < b.size; ++i) {
    const int32_t a = b.action[i];
    const size_t port =
        a >= 0 && static_cast<size_t>(a) < names_.size() ? static_cast<size_t>(a)
                                                         : last;
    Burst& s = split_[port];
    const uint32_t j = s.size++;
    s.pkt[j] = b.pkt[i];
    s.ts_ns[j] = b.ts_ns[i];
    s.index[j] = b.index[i];
    s.result[j] = b.result[i];
    s.action[j] = b.action[i];
    if (b.is_resolved(i)) s.mark_resolved(j);
    if ((b.from_cache >> i) & 1u) s.from_cache |= 1u << j;
    counts_[port].fetch_add(1, std::memory_order_relaxed);
  }
  for (size_t port = 0; port < split_.size(); ++port)
    forward(split_[port], port);
}

std::string Dispatch::report() const {
  std::string line = "dispatch:";
  for (size_t i = 0; i < names_.size(); ++i) {
    line += fmt(" %s=%llu", names_[i].c_str(),
                static_cast<unsigned long long>(port_packets(i)));
  }
  return line;
}

// --- Counter ----------------------------------------------------------------

Counter::Counter(std::string label) : label_(std::move(label)) {}

void Counter::process(Burst& b) {
  packets_.fetch_add(b.size, std::memory_order_relaxed);
  bursts_.fetch_add(1, std::memory_order_relaxed);
  forward(b);
}

std::string Counter::report() const {
  return fmt("counter%s%s%s: %llu packets / %llu bursts",
             label_.empty() ? "" : " (", label_.c_str(),
             label_.empty() ? "" : ")", static_cast<unsigned long long>(packets()),
             static_cast<unsigned long long>(bursts()));
}

// --- Sink -------------------------------------------------------------------

Sink::Sink(bool record) : record_(record) {}

void Sink::process(Burst& b) {
  packets_.fetch_add(b.size, std::memory_order_relaxed);
  if (record_) {
    for (uint32_t i = 0; i < b.size; ++i) {
      records_.push_back(Record{b.index[i], b.result[i].rule_id,
                                b.result[i].priority, b.action[i],
                                ((b.from_cache >> i) & 1u) != 0});
    }
  }
}

std::string Sink::report() const {
  return fmt("sink: %llu packets%s", static_cast<unsigned long long>(packets()),
             record_ ? " (recorded)" : "");
}

// --- PcapSink ---------------------------------------------------------------

PcapSink::PcapSink(const std::string& path, PcapWriterOptions opts)
    : writer_(std::make_unique<PcapWriter>(path, opts)) {
  if (!writer_->ok()) throw std::runtime_error(writer_->error());
}

void PcapSink::process(Burst& b) {
  for (uint32_t i = 0; i < b.size; ++i)
    writer_->write(b.ts_ns[i], synthesize_frame(b.pkt[i]));
  packets_ += b.size;
  forward(b);
}

void PcapSink::finish() {
  if (writer_ != nullptr) {
    if (!writer_->ok()) throw std::runtime_error(writer_->error());
    writer_->close();
  }
}

std::string PcapSink::report() const {
  return fmt("pcap sink: %llu frames written",
             static_cast<unsigned long long>(packets_));
}

// --- ScopedEngineDonor ------------------------------------------------------

namespace {
// thread_local: a donor installed while parsing replica k must not leak
// into an unrelated Graph::parse on another thread.
thread_local const ClassifierElement* g_engine_donor = nullptr;
}  // namespace

ScopedEngineDonor::ScopedEngineDonor(const ClassifierElement& proto) noexcept
    : prev_(g_engine_donor) {
  g_engine_donor = &proto;
}

ScopedEngineDonor::~ScopedEngineDonor() { g_engine_donor = prev_; }

// --- config-language factories ----------------------------------------------

namespace {

[[noreturn]] void usage(const char* msg) { throw std::runtime_error(msg); }

std::unique_ptr<Element> make_pcap_source(const std::vector<std::string>& a) {
  if (a.size() != 1) usage("PcapSource(file.pcap)");
  return std::make_unique<PcapSource>(a[0]);
}

std::unique_ptr<Element> make_trace_source(const std::vector<std::string>& a) {
  if (a.size() < 2 || a.size() > 3)
    usage("TraceSource(rules.file, n_packets[, uniform|zipf[:alpha]|caida])");
  TraceConfig tc;
  if (a.size() == 3) {
    const std::string& k = a[2];
    if (k == "uniform") {
      tc.kind = TraceConfig::Kind::kUniform;
    } else if (k == "caida") {
      tc.kind = TraceConfig::Kind::kCaidaLike;
    } else if (k.rfind("zipf", 0) == 0) {
      tc.kind = TraceConfig::Kind::kZipf;
      if (k.size() > 5 && k[4] == ':')
        tc.zipf_alpha = to_double(k.substr(5), "zipf alpha");
    } else {
      usage("TraceSource kind must be uniform, zipf[:alpha] or caida");
    }
  }
  return std::make_unique<TraceSource>(a[0], to_size(a[1], "packet count"), tc);
}

std::unique_ptr<Element> make_flow_cache(const std::vector<std::string>& a) {
  if (a.empty() || a.size() > 2) usage("FlowCache(capacity[, shards])");
  const size_t cap = to_size(a[0], "cache capacity");
  const size_t shards = a.size() == 2 ? to_size(a[1], "shard count") : 8;
  return std::make_unique<FlowCacheElement>(cap, shards);
}

std::unique_ptr<Element> make_classifier(const std::vector<std::string>& a) {
  if (a.empty())
    usage("Classifier(rules.file[, parallel][, manual][, threshold=X][, shards=N])");
  ClassifierElement::Options opts;
  for (size_t i = 1; i < a.size(); ++i) {
    const std::string& arg = a[i];
    if (arg == "parallel") {
      opts.parallel = true;
    } else if (arg == "manual") {
      opts.auto_retrain = false;
    } else if (arg.rfind("threshold=", 0) == 0) {
      opts.retrain_threshold = to_double(arg.substr(10), "retrain threshold");
    } else if (arg.rfind("shards=", 0) == 0) {
      opts.update_shards =
          static_cast<int>(to_size(arg.substr(7), "update shards"));
    } else {
      usage("unknown Classifier option (want parallel, manual, threshold=, shards=)");
    }
  }
  // Replica parse in progress: options were validated above, but the engine
  // (and the training run behind it) comes from the donor, not the file.
  if (g_engine_donor != nullptr) {
    auto el = std::make_unique<ClassifierElement>();
    el->adopt_shared(*g_engine_donor);
    return el;
  }
  return std::make_unique<ClassifierElement>(a[0], opts);
}

std::unique_ptr<Element> make_dispatch(const std::vector<std::string>& a) {
  return std::make_unique<Dispatch>(a);
}

std::unique_ptr<Element> make_counter(const std::vector<std::string>& a) {
  if (a.size() > 1) usage("Counter([label])");
  return std::make_unique<Counter>(a.empty() ? std::string{} : a[0]);
}

std::unique_ptr<Element> make_sink(const std::vector<std::string>& a) {
  if (a.empty()) return std::make_unique<Sink>();
  if (a.size() == 1 && a[0] == "record") return std::make_unique<Sink>(true);
  usage("Sink([record])");
}

std::unique_ptr<Element> make_pcap_sink(const std::vector<std::string>& a) {
  if (a.size() != 1) usage("PcapSink(file.pcap)");
  return std::make_unique<PcapSink>(a[0]);
}

std::unique_ptr<Element> make_metrics_exporter(
    const std::vector<std::string>& a) {
  MetricsExporter::Options o;
  for (const std::string& arg : a) {
    if (arg.rfind("port=", 0) == 0) {
      o.port = static_cast<int>(to_size(arg.substr(5), "metrics port"));
    } else if (arg.rfind("file=", 0) == 0) {
      o.file = arg.substr(5);
    } else if (arg.rfind("interval_ms=", 0) == 0) {
      o.interval_ms = to_size(arg.substr(12), "metrics interval");
    } else if (arg == "json") {
      o.json = true;
    } else {
      usage("MetricsExporter([port=N][, file=PATH][, interval_ms=MS][, json])");
    }
  }
  return std::make_unique<MetricsExporter>(std::move(o));
}

}  // namespace

void register_builtin_elements() {
  static const bool once = [] {
    register_element("PcapSource", make_pcap_source);
    register_element("TraceSource", make_trace_source);
    register_element("FlowCache", make_flow_cache);
    register_element("Classifier", make_classifier);
    register_element("Dispatch", make_dispatch);
    register_element("Counter", make_counter);
    register_element("Sink", make_sink);
    register_element("PcapSink", make_pcap_sink);
    register_element("MetricsExporter", make_metrics_exporter);
    return true;
  }();
  (void)once;
}

}  // namespace nuevomatch::pipeline
