#include "pipeline/flow_cache.hpp"

#include <bit>

#include "nuevomatch/online.hpp"

namespace nuevomatch::pipeline {

FlowCache::FlowCache(size_t capacity, size_t shards) {
  if (shards == 0) shards = 1;
  if (capacity < shards * kWays) capacity = shards * kWays;
  sets_per_shard_ = std::bit_ceil((capacity / shards + kWays - 1) / kWays);
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->entries.resize(sets_per_shard_ * kWays);
    sh->hand.resize(sets_per_shard_, 0);
    shards_.push_back(std::move(sh));
  }
}

uint64_t FlowCache::current_stamp() const noexcept {
  return stamp_src_ != nullptr ? stamp_src_->coherence_stamp() : 0;
}

bool FlowCache::lookup(const Packet& p, Decision& out) {
  const uint64_t h = hash(p);
  Shard& sh = *shards_[h % shards_.size()];
  const size_t set = (h / shards_.size()) & (sets_per_shard_ - 1);
  // One stamp read covers the whole probe: entries newer than this read are
  // rejected too (their stamp differs), which only costs a recomputation.
  const uint64_t now = current_stamp();
  std::lock_guard lk{sh.mu};
  Entry* base = sh.entries.data() + set * kWays;
  for (size_t w = 0; w < kWays; ++w) {
    Entry& e = base[w];
    if (e.stamp == kEmpty || e.key != p.field) continue;
    if (e.stamp < now) {
      // Stamps are monotone, so an older stamp means the classifier
      // definitively mutated since this decision was computed: the entry
      // is dead, whatever the mutation was. Retire it so the way frees up.
      e.stamp = kEmpty;
      ++sh.stale;
      return false;
    }
    if (e.stamp > now) {
      // OUR stamp read is the stale one (a concurrent reader refilled this
      // flow after a commit we haven't observed). The entry may well be
      // valid, but we cannot prove it against an old stamp — miss, and
      // leave the fresher entry for readers with a current view.
      ++sh.misses;
      return false;
    }
    out = e.d;
    ++sh.hits;
    return true;
  }
  ++sh.misses;
  return false;
}

void FlowCache::insert(const Packet& p, const Decision& d, uint64_t stamp) {
  if (stamp == kEmpty) return;  // reserved sentinel; unreachable in practice
  const uint64_t h = hash(p);
  Shard& sh = *shards_[h % shards_.size()];
  const size_t set = (h / shards_.size()) & (sets_per_shard_ - 1);
  std::lock_guard lk{sh.mu};
  Entry* base = sh.entries.data() + set * kWays;
  Entry* victim = nullptr;
  for (size_t w = 0; w < kWays; ++w) {
    Entry& e = base[w];
    if (e.key == p.field && e.stamp != kEmpty) {
      // The flow is already cached. Never replace a fresher-stamped entry
      // with an older-stamped one: a reader whose burst-level stamp read
      // predates a concurrent refill would otherwise downgrade a valid
      // entry into one every current-view lookup retires as stale.
      if (e.stamp > stamp) return;
      victim = &e;  // re-stamp the existing entry for this flow
      break;
    }
    if (victim == nullptr && e.stamp == kEmpty) victim = &e;
  }
  if (victim == nullptr) {
    victim = base + sh.hand[set];
    sh.hand[set] = static_cast<uint8_t>((sh.hand[set] + 1) % kWays);
    ++sh.evictions;
  }
  victim->key = p.field;
  victim->d = d;
  victim->stamp = stamp;
  ++sh.inserts;
}

void FlowCache::clear() {
  for (auto& sh : shards_) {
    std::lock_guard lk{sh->mu};
    for (Entry& e : sh->entries) e.stamp = kEmpty;
    for (uint8_t& hd : sh->hand) hd = 0;
  }
}

FlowCache::Stats FlowCache::stats() const {
  Stats s;
  for (const auto& sh : shards_) {
    std::lock_guard lk{sh->mu};
    s.hits += sh->hits;
    s.misses += sh->misses;
    s.stale += sh->stale;
    s.inserts += sh->inserts;
    s.evictions += sh->evictions;
  }
  return s;
}

size_t FlowCache::capacity() const noexcept {
  return shards_.size() * sets_per_shard_ * kWays;
}

}  // namespace nuevomatch::pipeline
