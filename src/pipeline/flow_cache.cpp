#include "pipeline/flow_cache.hpp"

#include <bit>
#include <stdexcept>

#include "common/failpoint.hpp"
#include "nuevomatch/online.hpp"

namespace nuevomatch::pipeline {

FlowCache::FlowCache(size_t capacity, size_t shards) {
  if (shards == 0) shards = 1;
  if (capacity < shards * kWays) capacity = shards * kWays;
  sets_per_shard_ = std::bit_ceil((capacity / shards + kWays - 1) / kWays);
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->entries.resize(sets_per_shard_ * kWays);
    sh->hand.resize(sets_per_shard_, 0);
    shards_.push_back(std::move(sh));
  }
}

uint64_t FlowCache::current_stamp() const noexcept {
  return stamp_src_ != nullptr ? stamp_src_->coherence_stamp() : 0;
}

uint8_t FlowCache::band_of(const Decision& d) const noexcept {
  if (stamp_src_ == nullptr) return 0;
  // A miss has no priority; it lives in the catch-all band, which inserts
  // mark (a miss can become a hit) and erases never do (it cannot stop
  // being a miss by removing a rule).
  if (d.rule_id == MatchResult::kNoMatch)
    return static_cast<uint8_t>(OnlineNuevoMatch::kCoherenceCatchAll);
  return static_cast<uint8_t>(stamp_src_->coherence_band(d.priority));
}

uint64_t FlowCache::band_mark(uint8_t band) const noexcept {
  // No stamp source: marks are pinned to 0, so every entry is permanently
  // clean — the frozen-rule-set mode.
  return stamp_src_ != nullptr ? stamp_src_->coherence_band_mark(band) : 0;
}

bool FlowCache::probe_locked(Shard& sh, size_t set, const Packet& p,
                             uint64_t now, Decision& out) {
  Entry* base = sh.entries.data() + set * kWays;
  for (size_t w = 0; w < kWays; ++w) {
    Entry& e = base[w];
    if (e.stamp == kEmpty || e.key != p.field) continue;
    if (band_mark(e.band) > e.stamp) {
      // A commit that could have changed decisions in this entry's band
      // landed after the entry was stamped: the entry is definitively dead,
      // whatever the commit was. Retire it so the way frees up.
      e.stamp = kEmpty;
      ++sh.stale;
      return false;
    }
    // The band marks prove the decision current — including when the entry
    // is FRESHER than our own stamp view (a concurrent reader refilled the
    // flow after a commit we haven't observed; pre-band code miscounted
    // that as a miss) and when it is OLDER (the entry survived commits in
    // other bands — the dependency-aware retention this cache exists for).
    out = e.d;
    ++sh.hits;
    if (e.stamp < now) {
      ++sh.retained;
    } else if (e.stamp > now) {
      ++sh.future;
    }
    return true;
  }
  ++sh.misses;
  return false;
}

void FlowCache::fill_locked(Shard& sh, size_t set, const Packet& p,
                            const Decision& d, uint64_t stamp, uint8_t band) {
  Entry* base = sh.entries.data() + set * kWays;
  Entry* victim = nullptr;
  for (size_t w = 0; w < kWays; ++w) {
    Entry& e = base[w];
    if (e.key == p.field && e.stamp != kEmpty) {
      // The flow is already cached. Never replace a fresher-stamped entry
      // with an older-stamped one: a reader whose burst-level stamp read
      // predates a concurrent refill would otherwise downgrade a valid
      // entry into one a same-band commit already invalidated.
      if (e.stamp > stamp) {
        ++sh.insert_drops;
        return;
      }
      victim = &e;  // re-stamp the existing entry for this flow
      break;
    }
    if (victim == nullptr && e.stamp == kEmpty) victim = &e;
  }
  if (victim == nullptr) {
    victim = base + sh.hand[set];
    sh.hand[set] = static_cast<uint8_t>((sh.hand[set] + 1) % kWays);
    ++sh.evictions;
  }
  victim->key = p.field;
  victim->d = d;
  victim->stamp = stamp;
  victim->band = band;
  ++sh.inserts;
}

bool FlowCache::lookup(const Packet& p, Decision& out) {
  const uint64_t h = hash(p);
  Shard& sh = *shards_[h % shards_.size()];
  const size_t set = (h / shards_.size()) & (sets_per_shard_ - 1);
  // The stamp view is only hit-accounting context (retained/future); the
  // serve/retire verdict comes from the per-band marks inside the lock.
  const uint64_t now = current_stamp();
  std::lock_guard lk{sh.mu};
  return probe_locked(sh, set, p, now, out);
}

void FlowCache::insert(const Packet& p, const Decision& d, uint64_t stamp) {
  if (failpoint::should_fire(failpoint::kPipelineCacheInsert))
    throw std::runtime_error("injected: pipeline.cache.insert");
  if (stamp == kEmpty) return;  // reserved sentinel; unreachable in practice
  const uint64_t h = hash(p);
  Shard& sh = *shards_[h % shards_.size()];
  const size_t set = (h / shards_.size()) & (sets_per_shard_ - 1);
  const uint8_t band = band_of(d);
  std::lock_guard lk{sh.mu};
  fill_locked(sh, set, p, d, stamp, band);
}

uint32_t FlowCache::lookup_burst(const Packet* pkts, uint32_t n,
                                 uint32_t active, Decision* out) {
  if (n > kBurstLanes) n = kBurstLanes;
  const uint32_t lanes = n == kBurstLanes ? active : active & ((1u << n) - 1);
  uint32_t hit_mask = 0;
  std::array<uint32_t, kBurstLanes> set_of;
  // One pass buckets the lanes into per-shard masks (direct-indexed while
  // the shard count fits the `touched` bitmap — every real instance; huge
  // shard counts fall back to per-lane locking). Then each touched shard's
  // lock is taken ONCE and the scalar probe body runs for its lanes. The
  // band marks (and the stamp view for hit accounting) are read fresh per
  // shard hold — NOT hoisted over the burst — so a commit landing mid-burst
  // invalidates the lanes of every not-yet-probed shard exactly as
  // per-packet probing would.
  if (shards_.size() <= kMaxGroupedShards) {
    std::array<uint32_t, kMaxGroupedShards> shard_mask{};
    uint64_t touched = 0;
    for (uint32_t m = lanes; m != 0; m &= m - 1) {
      const auto i = static_cast<uint32_t>(std::countr_zero(m));
      const uint64_t h = hash(pkts[i]);
      const auto s = static_cast<uint32_t>(h % shards_.size());
      set_of[i] =
          static_cast<uint32_t>((h / shards_.size()) & (sets_per_shard_ - 1));
      shard_mask[s] |= 1u << i;
      touched |= uint64_t{1} << s;
    }
    for (; touched != 0; touched &= touched - 1) {
      const auto s = static_cast<uint32_t>(std::countr_zero(touched));
      Shard& sh = *shards_[s];
      const uint64_t now = current_stamp();
      std::lock_guard lk{sh.mu};
      for (uint32_t m = shard_mask[s]; m != 0; m &= m - 1) {
        const auto i = static_cast<uint32_t>(std::countr_zero(m));
        if (probe_locked(sh, set_of[i], pkts[i], now, out[i]))
          hit_mask |= 1u << i;
      }
    }
    return hit_mask;
  }
  for (uint32_t m = lanes; m != 0; m &= m - 1) {
    const auto i = static_cast<uint32_t>(std::countr_zero(m));
    if (lookup(pkts[i], out[i])) hit_mask |= 1u << i;
  }
  return hit_mask;
}

void FlowCache::insert_burst(const Packet* pkts, uint32_t n, uint32_t mask,
                             const Decision* ds, uint64_t stamp) {
  if (mask != 0 && failpoint::should_fire(failpoint::kPipelineCacheInsert))
    throw std::runtime_error("injected: pipeline.cache.insert");
  if (stamp == kEmpty) return;
  if (n > kBurstLanes) n = kBurstLanes;
  const uint32_t lanes = n == kBurstLanes ? mask : mask & ((1u << n) - 1);
  if (shards_.size() > kMaxGroupedShards) {
    for (uint32_t m = lanes; m != 0; m &= m - 1) {
      const auto i = static_cast<uint32_t>(std::countr_zero(m));
      insert(pkts[i], ds[i], stamp);
    }
    return;
  }
  std::array<uint32_t, kBurstLanes> set_of;
  std::array<uint8_t, kBurstLanes> band;
  std::array<uint32_t, kMaxGroupedShards> shard_mask{};
  uint64_t touched = 0;
  for (uint32_t m = lanes; m != 0; m &= m - 1) {
    const auto i = static_cast<uint32_t>(std::countr_zero(m));
    const uint64_t h = hash(pkts[i]);
    const auto s = static_cast<uint32_t>(h % shards_.size());
    set_of[i] =
        static_cast<uint32_t>((h / shards_.size()) & (sets_per_shard_ - 1));
    band[i] = band_of(ds[i]);
    shard_mask[s] |= 1u << i;
    touched |= uint64_t{1} << s;
  }
  for (; touched != 0; touched &= touched - 1) {
    const auto s = static_cast<uint32_t>(std::countr_zero(touched));
    Shard& sh = *shards_[s];
    std::lock_guard lk{sh.mu};
    for (uint32_t m = shard_mask[s]; m != 0; m &= m - 1) {
      const auto i = static_cast<uint32_t>(std::countr_zero(m));
      fill_locked(sh, set_of[i], pkts[i], ds[i], stamp, band[i]);
    }
  }
}

void FlowCache::clear() {
  for (auto& sh : shards_) {
    std::lock_guard lk{sh->mu};
    for (Entry& e : sh->entries) e.stamp = kEmpty;
    for (uint8_t& hd : sh->hand) hd = 0;
  }
}

FlowCache::Stats FlowCache::stats() const {
  Stats s;
  for (const auto& sh : shards_) {
    std::lock_guard lk{sh->mu};
    s.hits += sh->hits;
    s.misses += sh->misses;
    s.stale += sh->stale;
    s.inserts += sh->inserts;
    s.evictions += sh->evictions;
    s.retained += sh->retained;
    s.future += sh->future;
    s.insert_drops += sh->insert_drops;
  }
  return s;
}

size_t FlowCache::size() const {
  size_t live = 0;
  for (const auto& sh : shards_) {
    std::lock_guard lk{sh->mu};
    for (const Entry& e : sh->entries)
      if (e.stamp != kEmpty) ++live;
  }
  return live;
}

size_t FlowCache::capacity() const noexcept {
  return shards_.size() * sets_per_shard_ * kWays;
}

}  // namespace nuevomatch::pipeline
