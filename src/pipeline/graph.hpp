// The processing graph: owns elements, wires ports, runs sources — plus the
// Click-inspired textual config language that assembles all of it:
//
//   # declarations bind a name to an element instance
//   cache :: FlowCache(8192);
//   cls   :: Classifier(acl.rules);
//   disp  :: Dispatch(permit, deny);
//   # chains connect output port 0 unless a [port] selector says otherwise;
//   # anonymous elements can be declared inline
//   PcapSource(trace.pcap) -> cache -> cls -> disp;
//   disp[0] -> Counter(permit) -> Sink(record);
//   disp[1] -> Sink();
//
// Statements end with ';' (whitespace, including newlines, is free-form);
// '#' and '//' comment to end of line.
// The graph must be a DAG (initialize() rejects cycles — a cycle
// would recurse process() into an element whose burst buffers are in use).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pipeline/element.hpp"

namespace nuevomatch::pipeline {

/// Lightweight per-graph runtime telemetry (the per-replica slice of the
/// pipeline's RuntimeHealth report). Plain fields: read it only while the
/// graph is not being stepped — after run()/finish_run(), or from the
/// replication supervisor while the replica's task is quiesced.
struct GraphHealth {
  uint64_t steps = 0;     ///< bursts pumped through step()/run()
  uint64_t packets = 0;   ///< packets those bursts carried
  bool eos = false;       ///< source exhausted (step() latched false)
  bool finished = false;  ///< finish_run() completed
};

class Graph {
 public:
  Graph() = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Assemble a graph from config text. Throws std::runtime_error with a
  /// line-numbered message on syntax errors, unknown kinds/names, port
  /// numbers out of range, or duplicate connections. The returned graph is
  /// NOT yet initialized — attach programmatic engines first, then run()
  /// (which initializes on first call) or initialize() explicitly.
  [[nodiscard]] static Graph parse(std::string_view config);

  /// Programmatic construction (benches build graphs without config text).
  /// Returns a reference of the concrete element type.
  template <typename T>
  T& add(std::unique_ptr<T> e, std::string name = {}) {
    T& ref = *e;
    add_impl(std::move(e), std::move(name));
    return ref;
  }
  void connect(Element& from, size_t port, Element& to);

  /// Run initialize() hooks + DAG check. Idempotent; run() calls it.
  void initialize();

  /// Drive every source to exhaustion, then finish() all elements.
  /// `tick`, if given, runs after every burst with the cumulative packet
  /// count — the hook mid-stream drivers (forced retrains, churn) use.
  /// Returns the number of packets pumped.
  uint64_t run(const std::function<void(uint64_t)>& tick = {});

  /// Incremental drive — the scheduler's unit of work (one Task fire is
  /// one step()): pump ONE burst from the graph's source and push it
  /// through. Returns false at end of stream (and stays false); adds the
  /// burst's packet count to *pumped when given. Requires exactly one
  /// source (the replicated dataplane shape); run() keeps the
  /// multi-source loop. Initializes the graph on first call.
  [[nodiscard]] bool step(uint64_t* pumped = nullptr);
  /// finish() every element (writers flushed) — run() does this itself;
  /// step() drivers call it once after the last step. First error rethrown
  /// after every element got its finish().
  void finish_run();

  [[nodiscard]] Element* find(std::string_view name) const;
  /// First element of a concrete type (e.g. find_kind<ClassifierElement>()).
  template <typename T>
  [[nodiscard]] T* find_kind() const {
    for (const auto& e : elems_) {
      if (auto* t = dynamic_cast<T*>(e.get()); t != nullptr) return t;
    }
    return nullptr;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Element>>& elements() const noexcept {
    return elems_;
  }

  /// Per-element stats lines (elements with empty report() are skipped).
  [[nodiscard]] std::string report() const;

  /// Runtime telemetry (see GraphHealth for when it is safe to read).
  [[nodiscard]] const GraphHealth& health() const noexcept { return health_; }

 private:
  void add_impl(std::unique_ptr<Element> e, std::string name);
  void check_acyclic() const;

  std::vector<std::unique_ptr<Element>> elems_;
  std::unordered_map<std::string, Element*> by_name_;
  int anon_counter_ = 0;
  bool initialized_ = false;
  // step() state: the single source, end-of-stream latch, and the burst
  // buffer (a member so a scheduler fire needs no per-step allocation).
  SourceElement* step_src_ = nullptr;
  bool step_eos_ = false;
  Burst step_burst_;
  GraphHealth health_;
  // Telemetry accumulators for the step() path: registry counters cost a
  // TLS-shard fetch_add, so bursts/packets batch locally and flush every
  // 64 bursts (and in finish_run()) — a live scrape lags by at most that.
  void flush_metrics_acc();
  uint64_t m_acc_bursts_ = 0;
  uint64_t m_acc_packets_ = 0;
};

}  // namespace nuevomatch::pipeline
