#include "trace/trace.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace nuevomatch {

std::vector<Packet> representative_packets(std::span<const Rule> rules, uint64_t seed) {
  Rng rng{seed};
  std::vector<Packet> pkts(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    for (int f = 0; f < kNumFields; ++f) {
      const Range& r = rules[i].field[static_cast<size_t>(f)];
      pkts[i].field[static_cast<size_t>(f)] =
          static_cast<uint32_t>(rng.between(r.lo, r.hi));
    }
  }
  return pkts;
}

std::vector<Packet> generate_trace(std::span<const Rule> rules, const TraceConfig& cfg) {
  std::vector<Packet> out;
  if (rules.empty() || cfg.n_packets == 0) return out;
  out.reserve(cfg.n_packets);
  Rng rng{cfg.seed};
  const std::vector<Packet> reps = representative_packets(rules, cfg.seed ^ 0x5EED);

  // Random rule->rank permutation so that skew is not correlated with
  // priority order.
  std::vector<uint32_t> perm(rules.size());
  for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);

  switch (cfg.kind) {
    case TraceConfig::Kind::kUniform: {
      for (size_t i = 0; i < cfg.n_packets; ++i)
        out.push_back(reps[rng.below(reps.size())]);
      break;
    }
    case TraceConfig::Kind::kZipf: {
      const ZipfSampler zipf{rules.size(), cfg.zipf_alpha};
      for (size_t i = 0; i < cfg.n_packets; ++i)
        out.push_back(reps[perm[zipf.sample(rng)]]);
      break;
    }
    case TraceConfig::Kind::kCaidaLike: {
      // Flow-level heavy tail + temporal locality via an LRU working set.
      const ZipfSampler zipf{rules.size(), 1.2};
      std::vector<uint32_t> working;
      working.reserve(cfg.working_set);
      for (size_t i = 0; i < cfg.n_packets; ++i) {
        uint32_t flow = 0;
        if (!working.empty() && rng.chance(cfg.locality)) {
          flow = working[rng.below(working.size())];
        } else {
          flow = perm[zipf.sample(rng)];
          if (working.size() < cfg.working_set) {
            working.push_back(flow);
          } else {
            working[rng.below(working.size())] = flow;  // evict random entry
          }
        }
        out.push_back(reps[flow]);
      }
      break;
    }
  }
  return out;
}

}  // namespace nuevomatch
