// Libpcap-free pcap file I/O + header parsing for the dataplane pipeline
// (src/pipeline): PcapSource reads capture files straight into the repo's
// five-tuple Packet model, PcapSink writes synthesized frames back out, and
// the golden-trace CI smoke runs the router example over a checked-in file.
//
// Format coverage (the classic fixed-header container, not pcapng):
//
//   * both magic numbers — 0xA1B2C3D4 (microsecond timestamps) and
//     0xA1B23C4D (nanosecond) — in both byte orders, so files written on a
//     foreign-endian machine load transparently;
//   * link types EN10MB (Ethernet, with one optional 802.1Q VLAN tag) and
//     RAW (bare IPv4);
//   * IPv4 with options (IHL honored); TCP/UDP ports; SCTP/UDP-Lite share
//     the TCP/UDP port layout and parse the same way; other protocols (and
//     non-first fragments, whose L4 header is absent) get ports 0 — they
//     still classify on the three remaining fields.
//
// Frames that cannot be projected onto a five-tuple (ARP, IPv6, truncated
// captures) are skipped and counted, never fabricated.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nuevomatch {

/// One capture record: raw frame bytes + capture timestamp.
struct PcapRecord {
  uint64_t ts_ns = 0;            ///< capture timestamp, nanoseconds since epoch
  uint32_t orig_len = 0;         ///< original wire length (frame may be truncated)
  std::vector<uint8_t> frame;    ///< captured bytes (incl_len of them)
};

/// pcap link types this reader understands.
inline constexpr uint32_t kLinkEthernet = 1;    // LINKTYPE_EN10MB
inline constexpr uint32_t kLinkRawIpv4 = 101;   // LINKTYPE_RAW

/// Streaming reader. Construction reads and validates the global header:
/// a bad magic, truncated header, unsupported format version, or a link
/// type this parser cannot project onto five-tuples (anything but EN10MB /
/// RAW) leaves the reader !ok() with a per-file error message — callers
/// never have to discover a garbage link type by watching every frame
/// skip. Record-level damage (truncated header/body, incl_len > orig_len,
/// implausible lengths) fails next() with the 1-based record index in the
/// error. No exceptions on the data path.
class PcapReader {
 public:
  explicit PcapReader(const std::string& path);
  ~PcapReader();
  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] uint32_t link_type() const noexcept { return link_type_; }
  [[nodiscard]] bool nanosecond() const noexcept { return nanosecond_; }
  [[nodiscard]] bool byte_swapped() const noexcept { return swapped_; }

  /// Read the next record. Returns false at clean EOF or on error (check
  /// ok() to tell the two apart — a record truncated mid-file is an error).
  bool next(PcapRecord& out);

 private:
  std::FILE* f_ = nullptr;
  std::string error_;
  uint32_t link_type_ = kLinkEthernet;
  bool nanosecond_ = false;
  bool swapped_ = false;
  uint64_t n_records_ = 0;  ///< records read so far (error-message index)
};

struct PcapWriterOptions {
  bool nanosecond = false;   ///< write the 0xA1B23C4D nanosecond variant
  bool byte_swapped = false; ///< emit the opposite byte order (test fodder)
  uint32_t link_type = kLinkEthernet;
  uint32_t snaplen = 65535;
};

/// Streaming writer; the global header is written on construction.
class PcapWriter {
 public:
  PcapWriter(const std::string& path, PcapWriterOptions opts = {});
  ~PcapWriter();
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  void write(uint64_t ts_ns, std::span<const uint8_t> frame);
  /// Flush and close early (the destructor does the same).
  void close();

 private:
  std::FILE* f_ = nullptr;
  std::string error_;
  PcapWriterOptions opts_;
};

/// True when `proto`'s L4 header starts with (src port, dst port) — TCP,
/// UDP, SCTP, UDP-Lite. For any other protocol the wire carries no ports,
/// so a five-tuple with nonzero ports cannot round-trip through a frame;
/// sanitize with zero ports before synthesizing (the golden-trace recipe
/// and the pipeline tests do).
[[nodiscard]] bool proto_has_ports(uint8_t proto) noexcept;

/// Project one captured frame onto the classification five-tuple.
/// nullopt when the frame is not parseable IPv4 (wrong ethertype, truncated,
/// bad IHL...). Ports are 0 for port-less protocols and non-first fragments.
[[nodiscard]] std::optional<Packet> parse_frame(std::span<const uint8_t> frame,
                                                uint32_t link_type = kLinkEthernet);

/// Synthesize a minimal, well-formed frame for a five-tuple: Ethernet +
/// IPv4 (correct header checksum) + TCP/UDP header when the protocol has
/// ports, so parse_frame(synthesize_frame(p)) == p for any in-domain packet.
[[nodiscard]] std::vector<uint8_t> synthesize_frame(const Packet& p);

/// Convenience: parse every projectable frame in a file. Frames that don't
/// parse are counted in *skipped (if given). Returns nullopt when the file
/// itself is unreadable (error in *err if given).
[[nodiscard]] std::optional<std::vector<Packet>> read_pcap_packets(
    const std::string& path, size_t* skipped = nullptr, std::string* err = nullptr);

/// Convenience: write packets as synthesized frames, 1 µs apart starting at
/// `base_ts_ns` (deterministic output — golden files diff bit-for-bit).
bool write_pcap_packets(const std::string& path, std::span<const Packet> packets,
                        PcapWriterOptions opts = {},
                        uint64_t base_ts_ns = 1'700'000'000ull * 1'000'000'000ull);

}  // namespace nuevomatch
