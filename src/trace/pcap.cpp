#include "trace/pcap.hpp"

#include <cstdio>
#include <cstring>

#include "common/failpoint.hpp"

namespace nuevomatch {

namespace {

constexpr uint32_t kMagicUsec = 0xA1B2C3D4u;
constexpr uint32_t kMagicNsec = 0xA1B23C4Du;

constexpr uint32_t bswap32(uint32_t v) noexcept {
  return (v >> 24) | ((v >> 8) & 0x0000FF00u) | ((v << 8) & 0x00FF0000u) | (v << 24);
}
constexpr uint16_t bswap16(uint16_t v) noexcept {
  return static_cast<uint16_t>((v >> 8) | (v << 8));
}

/// pcap global header (24 bytes) in file order.
struct GlobalHeader {
  uint32_t magic;
  uint16_t version_major;
  uint16_t version_minor;
  int32_t thiszone;
  uint32_t sigfigs;
  uint32_t snaplen;
  uint32_t network;
};
static_assert(sizeof(GlobalHeader) == 24);

/// Per-record header (16 bytes): seconds, fraction (µs or ns), lengths.
struct RecordHeader {
  uint32_t ts_sec;
  uint32_t ts_frac;
  uint32_t incl_len;
  uint32_t orig_len;
};
static_assert(sizeof(RecordHeader) == 16);

// Big-endian byte readers for the network headers.
uint16_t be16(const uint8_t* p) noexcept {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}
uint32_t be32(const uint8_t* p) noexcept {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}
void put_be16(std::vector<uint8_t>& v, uint16_t x) {
  v.push_back(static_cast<uint8_t>(x >> 8));
  v.push_back(static_cast<uint8_t>(x));
}
void put_be32(std::vector<uint8_t>& v, uint32_t x) {
  v.push_back(static_cast<uint8_t>(x >> 24));
  v.push_back(static_cast<uint8_t>(x >> 16));
  v.push_back(static_cast<uint8_t>(x >> 8));
  v.push_back(static_cast<uint8_t>(x));
}

constexpr uint16_t kEtherIpv4 = 0x0800;
constexpr uint16_t kEtherVlan = 0x8100;

}  // namespace

bool proto_has_ports(uint8_t proto) noexcept {
  return proto == 6 || proto == 17 || proto == 132 || proto == 136;
}

// --- reader ----------------------------------------------------------------

PcapReader::PcapReader(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (f_ == nullptr) {
    error_ = "cannot open " + path;
    return;
  }
  GlobalHeader gh;
  if (std::fread(&gh, sizeof gh, 1, f_) != 1) {
    error_ = path + ": truncated pcap global header";
    return;
  }
  switch (gh.magic) {
    case kMagicUsec: break;
    case kMagicNsec: nanosecond_ = true; break;
    default:
      if (bswap32(gh.magic) == kMagicUsec) {
        swapped_ = true;
      } else if (bswap32(gh.magic) == kMagicNsec) {
        swapped_ = true;
        nanosecond_ = true;
      } else {
        char buf[64];
        std::snprintf(buf, sizeof buf, ": bad pcap magic 0x%08X", gh.magic);
        error_ = path + buf;
        return;
      }
  }
  const uint16_t version = swapped_ ? bswap16(gh.version_major) : gh.version_major;
  if (version != 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, ": unsupported pcap version %u", version);
    error_ = path + buf;
    return;
  }
  link_type_ = swapped_ ? bswap32(gh.network) : gh.network;
  if (link_type_ != kLinkEthernet && link_type_ != kLinkRawIpv4) {
    // Reject at open: every frame of an unknown link type would fail to
    // project onto a five-tuple, and a silent 100% skip rate looks exactly
    // like an empty trace. Better one clean per-file error.
    char buf[64];
    std::snprintf(buf, sizeof buf, ": unsupported pcap link type %u", link_type_);
    error_ = path + buf;
    return;
  }
}

PcapReader::~PcapReader() {
  if (f_ != nullptr) std::fclose(f_);
}

bool PcapReader::next(PcapRecord& out) {
  if (!ok() || f_ == nullptr) return false;
  // Per-record errors carry the 1-based record index: "record 3: ..." is
  // actionable on a multi-gigabyte capture, "truncated body" is not.
  const auto fail = [&](const char* what) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "pcap record %llu: %s",
                  static_cast<unsigned long long>(n_records_ + 1), what);
    error_ = buf;
    return false;
  };
  RecordHeader rh;
  const size_t got = std::fread(&rh, 1, sizeof rh, f_);
  if (got == 0) return false;  // clean EOF
  if (got != sizeof rh) return fail("truncated record header");
  if (swapped_) {
    rh.ts_sec = bswap32(rh.ts_sec);
    rh.ts_frac = bswap32(rh.ts_frac);
    rh.incl_len = bswap32(rh.incl_len);
    rh.orig_len = bswap32(rh.orig_len);
  }
  if (rh.incl_len > (1u << 26))  // 64 MiB: no sane snaplen, corrupt file
    return fail("incl_len implausibly large");
  if (rh.incl_len > rh.orig_len)
    return fail("incl_len exceeds orig_len (corrupt lengths)");
  out.frame.resize(rh.incl_len);
  if (rh.incl_len > 0 &&
      std::fread(out.frame.data(), 1, rh.incl_len, f_) != rh.incl_len)
    return fail("truncated record body");
  out.orig_len = rh.orig_len;
  out.ts_ns = static_cast<uint64_t>(rh.ts_sec) * 1'000'000'000ull +
              static_cast<uint64_t>(rh.ts_frac) * (nanosecond_ ? 1ull : 1'000ull);
  ++n_records_;
  return true;
}

// --- writer ----------------------------------------------------------------

PcapWriter::PcapWriter(const std::string& path, PcapWriterOptions opts)
    : opts_(opts) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    error_ = "cannot open " + path + " for writing";
    return;
  }
  GlobalHeader gh{};
  gh.magic = opts_.nanosecond ? kMagicNsec : kMagicUsec;
  gh.version_major = 2;
  gh.version_minor = 4;
  gh.snaplen = opts_.snaplen;
  gh.network = opts_.link_type;
  if (opts_.byte_swapped) {
    gh.magic = bswap32(gh.magic);
    gh.version_major = bswap16(gh.version_major);
    gh.version_minor = bswap16(gh.version_minor);
    gh.snaplen = bswap32(gh.snaplen);
    gh.network = bswap32(gh.network);
  }
  if (std::fwrite(&gh, sizeof gh, 1, f_) != 1) error_ = "short write: global header";
}

PcapWriter::~PcapWriter() { close(); }

void PcapWriter::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

void PcapWriter::write(uint64_t ts_ns, std::span<const uint8_t> frame) {
  if (!ok() || f_ == nullptr) return;
  RecordHeader rh;
  rh.ts_sec = static_cast<uint32_t>(ts_ns / 1'000'000'000ull);
  const uint64_t frac_ns = ts_ns % 1'000'000'000ull;
  rh.ts_frac = static_cast<uint32_t>(opts_.nanosecond ? frac_ns : frac_ns / 1'000ull);
  rh.incl_len = static_cast<uint32_t>(frame.size());
  rh.orig_len = static_cast<uint32_t>(frame.size());
  if (opts_.byte_swapped) {
    rh.ts_sec = bswap32(rh.ts_sec);
    rh.ts_frac = bswap32(rh.ts_frac);
    rh.incl_len = bswap32(rh.incl_len);
    rh.orig_len = bswap32(rh.orig_len);
  }
  if (std::fwrite(&rh, sizeof rh, 1, f_) != 1 ||
      (!frame.empty() &&
       std::fwrite(frame.data(), 1, frame.size(), f_) != frame.size())) {
    error_ = "short write: pcap record";
  }
}

// --- frame parse / synthesis ------------------------------------------------

std::optional<Packet> parse_frame(std::span<const uint8_t> frame, uint32_t link_type) {
  // Injected parse failure (failpoint "pcap.parse"): the frame reports as
  // unprojectable through the same skip-and-count channel as real damage.
  if (failpoint::should_fire(failpoint::kPcapParse)) return std::nullopt;
  size_t off = 0;
  if (link_type == kLinkEthernet) {
    if (frame.size() < 14) return std::nullopt;
    uint16_t ethertype = be16(frame.data() + 12);
    off = 14;
    if (ethertype == kEtherVlan) {  // one 802.1Q tag
      if (frame.size() < 18) return std::nullopt;
      ethertype = be16(frame.data() + 16);
      off = 18;
    }
    if (ethertype != kEtherIpv4) return std::nullopt;
  } else if (link_type != kLinkRawIpv4) {
    return std::nullopt;
  }

  if (frame.size() < off + 20) return std::nullopt;
  const uint8_t* ip = frame.data() + off;
  if ((ip[0] >> 4) != 4) return std::nullopt;
  const size_t ihl = static_cast<size_t>(ip[0] & 0x0F) * 4;
  if (ihl < 20 || frame.size() < off + ihl) return std::nullopt;

  Packet p;
  p.field[kSrcIp] = be32(ip + 12);
  p.field[kDstIp] = be32(ip + 16);
  const uint8_t proto = ip[9];
  p.field[kProto] = proto;
  p.field[kSrcPort] = 0;
  p.field[kDstPort] = 0;
  // L4 ports: only for the first fragment (offset 0) of a port-bearing
  // protocol, and only when the capture actually includes them.
  const uint16_t frag = be16(ip + 6);
  const bool first_fragment = (frag & 0x1FFF) == 0;
  if (proto_has_ports(proto) && first_fragment && frame.size() >= off + ihl + 4) {
    p.field[kSrcPort] = be16(ip + ihl);
    p.field[kDstPort] = be16(ip + ihl + 2);
  }
  return p;
}

std::vector<uint8_t> synthesize_frame(const Packet& p) {
  std::vector<uint8_t> f;
  f.reserve(64);
  // Ethernet: locally-administered placeholder MACs, IPv4 ethertype.
  const uint8_t dst_mac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  const uint8_t src_mac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  f.insert(f.end(), dst_mac, dst_mac + 6);
  f.insert(f.end(), src_mac, src_mac + 6);
  put_be16(f, kEtherIpv4);

  const uint8_t proto = static_cast<uint8_t>(p[kProto]);
  const bool ports = proto_has_ports(proto);
  // TCP gets its full 20-byte minimal header; every other port-bearing
  // protocol gets the 8-byte UDP-shaped header; port-less protocols carry
  // a 4-byte dummy payload so the datagram is non-empty.
  const size_t l4_len = proto == 6 ? 20 : (ports ? 8 : 4);
  const size_t ip_total = 20 + l4_len;

  const size_t ip_off = f.size();
  f.push_back(0x45);  // v4, IHL 5
  f.push_back(0);     // DSCP/ECN
  put_be16(f, static_cast<uint16_t>(ip_total));
  put_be16(f, 0);       // identification
  put_be16(f, 0x4000);  // don't-fragment
  f.push_back(64);      // TTL
  f.push_back(proto);
  put_be16(f, 0);  // checksum placeholder
  put_be32(f, p[kSrcIp]);
  put_be32(f, p[kDstIp]);
  // IPv4 header checksum: one's-complement sum of the 10 header words.
  uint32_t sum = 0;
  for (size_t i = 0; i < 20; i += 2) sum += be16(f.data() + ip_off + i);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  const uint16_t csum = static_cast<uint16_t>(~sum);
  f[ip_off + 10] = static_cast<uint8_t>(csum >> 8);
  f[ip_off + 11] = static_cast<uint8_t>(csum);

  if (ports) {
    put_be16(f, static_cast<uint16_t>(p[kSrcPort]));
    put_be16(f, static_cast<uint16_t>(p[kDstPort]));
    if (proto == 6) {
      put_be32(f, 0);       // seq
      put_be32(f, 0);       // ack
      f.push_back(0x50);    // data offset 5
      f.push_back(0x02);    // SYN
      put_be16(f, 0xFFFF);  // window
      put_be16(f, 0);       // checksum (not validated by parse_frame)
      put_be16(f, 0);       // urgent
    } else {
      put_be16(f, static_cast<uint16_t>(l4_len));  // UDP length
      put_be16(f, 0);                              // checksum optional
    }
  } else {
    f.insert(f.end(), {0xDE, 0xAD, 0xBE, 0xEF});
  }
  return f;
}

std::optional<std::vector<Packet>> read_pcap_packets(const std::string& path,
                                                     size_t* skipped,
                                                     std::string* err) {
  PcapReader r{path};
  if (!r.ok()) {
    if (err != nullptr) *err = r.error();
    return std::nullopt;
  }
  std::vector<Packet> out;
  size_t skip = 0;
  PcapRecord rec;
  while (r.next(rec)) {
    if (auto p = parse_frame(rec.frame, r.link_type()); p.has_value()) {
      out.push_back(*p);
    } else {
      ++skip;
    }
  }
  if (!r.ok()) {
    if (err != nullptr) *err = r.error();
    return std::nullopt;
  }
  if (skipped != nullptr) *skipped = skip;
  return out;
}

bool write_pcap_packets(const std::string& path, std::span<const Packet> packets,
                        PcapWriterOptions opts, uint64_t base_ts_ns) {
  if (opts.link_type != kLinkEthernet && opts.link_type != kLinkRawIpv4)
    return false;  // records would not parse back; refuse to write them
  PcapWriter w{path, opts};
  uint64_t ts = base_ts_ns;
  for (const Packet& p : packets) {
    const std::vector<uint8_t> frame = synthesize_frame(p);
    // RAW records carry the bare IP datagram: strip the 14-byte Ethernet
    // header synthesize_frame always emits.
    const std::span<const uint8_t> record =
        opts.link_type == kLinkRawIpv4 ? std::span{frame}.subspan(14)
                                       : std::span{frame};
    w.write(ts, record);
    ts += 1'000;  // 1 µs spacing keeps µs and ns variants both exact
  }
  w.close();
  return w.ok();
}

}  // namespace nuevomatch
