// Stable-core verification workload, shared by the update tests and
// bench_updates: packets drawn from a rule-set that HIT some rule, paired
// with the linear-search oracle's answer. As long as churn only ever
// touches rules with strictly worse priority than every base rule, these
// expected answers are invariant — which is what lets lookups be verified
// packet-by-packet while concurrent updates and background retrains race
// them.
#pragma once

#include <cstdint>
#include <vector>

#include "classifiers/linear.hpp"
#include "trace/trace.hpp"

namespace nuevomatch {

struct StableCore {
  std::vector<Packet> packets;
  std::vector<int32_t> expected;  // oracle rule id per packet
};

inline StableCore make_stable_core(const RuleSet& rules, size_t n_packets,
                                   uint64_t seed) {
  LinearSearch oracle;
  oracle.build(rules);
  TraceConfig tc;
  tc.n_packets = n_packets;
  tc.seed = seed;
  StableCore core;
  for (const Packet& p : generate_trace(rules, tc)) {
    const MatchResult r = oracle.match(p);
    if (!r.hit()) continue;
    core.packets.push_back(p);
    core.expected.push_back(r.rule_id);
  }
  return core;
}

}  // namespace nuevomatch
