// Packet trace generation (paper §5.1.1).
//
//   * uniform  — every rule equally likely: the worst-case memory access
//     pattern the headline results use;
//   * zipf     — skew parameterized as in Figure 12 (share of traffic in the
//     3% most frequent flows);
//   * caida    — locality-preserving synthetic stand-in for the CAIDA
//     Equinix trace: heavy-tailed flow sizes plus an LRU-style working set,
//     with five-tuples drawn from the rule-set exactly the way the paper
//     remaps CAIDA headers onto each rule-set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace nuevomatch {

struct TraceConfig {
  enum class Kind { kUniform, kZipf, kCaidaLike };
  Kind kind = Kind::kUniform;
  size_t n_packets = 700'000;  ///< the paper's trace length
  double zipf_alpha = 1.05;    ///< for kZipf (Figure 12: 1.05/1.10/1.15/1.25)
  double locality = 0.7;       ///< for kCaidaLike: P(next packet from working set)
  size_t working_set = 64;     ///< for kCaidaLike
  uint64_t seed = 3;
};

/// One representative packet per rule (a point inside its hyper-rectangle) —
/// the paper's "for each rule, we generate one matching five-tuple".
[[nodiscard]] std::vector<Packet> representative_packets(std::span<const Rule> rules,
                                                         uint64_t seed = 3);

[[nodiscard]] std::vector<Packet> generate_trace(std::span<const Rule> rules,
                                                 const TraceConfig& cfg);

}  // namespace nuevomatch
