#include "wide/wide.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"

namespace nuevomatch::wide {

WideValue WideValue::next() const noexcept {
  WideValue out = *this;
  for (int i = kLimbs - 1; i >= 0; --i) {
    if (++out.limb[static_cast<size_t>(i)] != 0) return out;  // no carry
  }
  return WideValue::max();  // saturate instead of wrapping
}

WideRange wide_prefix(const WideValue& base, int len) noexcept {
  WideRange out;
  for (int i = 0; i < kLimbs; ++i) {
    const int hi_bits = std::clamp(len - 32 * i, 0, 32);
    const uint32_t mask =
        hi_bits == 0 ? 0u : (hi_bits >= 32 ? ~0u : ~0u << (32 - hi_bits));
    out.lo.limb[static_cast<size_t>(i)] = base.limb[static_cast<size_t>(i)] & mask;
    out.hi.limb[static_cast<size_t>(i)] = out.lo.limb[static_cast<size_t>(i)] | ~mask;
  }
  return out;
}

void canonicalize(WideRuleSet& rules) {
  for (size_t i = 0; i < rules.size(); ++i) {
    rules[i].id = static_cast<uint32_t>(i);
    rules[i].priority = static_cast<int32_t>(i);
  }
}

Range subfield_range(const WideRule& r, int field, int limb) noexcept {
  const WideRange& w = r.field[static_cast<size_t>(field)];
  for (int i = 0; i < limb; ++i) {
    if (w.lo.limb[static_cast<size_t>(i)] != w.hi.limb[static_cast<size_t>(i)])
      return Range{0, 0xFFFF'FFFFu};  // a higher limb ranges: no information here
  }
  return Range{w.lo.limb[static_cast<size_t>(limb)], w.hi.limb[static_cast<size_t>(limb)]};
}

double normalize_wide(const WideValue& v) noexcept {
  // Horner over limbs: v / 2^128 in [0,1). Bits beyond the 53-bit mantissa
  // are rounded away — deliberately so; this IS the lossy encoding.
  double acc = 0.0;
  for (int i = kLimbs - 1; i >= 0; --i)
    acc = (acc + static_cast<double>(v.limb[static_cast<size_t>(i)])) / 4294967296.0;
  return acc;
}

std::string to_string(const WideValue& v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%08x:%08x:%08x:%08x", v.limb[0], v.limb[1], v.limb[2],
                v.limb[3]);
  return buf;
}

WideRuleSet generate_mac_rules(size_t n, uint64_t seed) {
  Rng rng{seed};
  WideRuleSet rules;
  rules.reserve(n);
  // A station pool under a modest number of OUIs (vendor /24 blocks), like a
  // campus L2 table: ~90% exact stations, ~10% OUI aggregates.
  std::vector<uint64_t> ouis;
  for (int i = 0; i < 64; ++i)
    ouis.push_back((rng.next_u64() & 0xFFFFFFull) << 24);  // high 24 of 48
  uint64_t station_counter = seed * 0x9E3779B97F4A7C15ull;
  while (rules.size() < n) {
    WideRule r;
    r.field.resize(1);
    if (rng.chance(0.9)) {
      // Unique station address: OUI + mixed counter for the NIC part.
      uint64_t nic = station_counter++;
      nic = (nic ^ (nic >> 17)) * 0xBF58476D1CE4E5B9ull;
      const uint64_t mac = ouis[rng.below(ouis.size())] | (nic & 0xFFFFFFull);
      const WideValue v = WideValue::from_u64(mac);
      r.field[0] = WideRange{v, v};
    } else {
      // The 48-bit MAC occupies 128-bit MSB positions 80..127, so its OUI
      // (high 24 MAC bits) is a /104 prefix of the wide value.
      r.field[0] =
          wide_prefix(WideValue::from_u64(ouis[rng.below(ouis.size())]), 80 + 24);
    }
    r.action = static_cast<int32_t>(rng.below(48));
    rules.push_back(r);
  }
  canonicalize(rules);
  return rules;
}

WideRuleSet generate_ipv6_rules(size_t n, uint64_t seed) {
  Rng rng{seed};
  WideRuleSet rules;
  rules.reserve(n);
  // Deployment-like structure: all routes live under one registry /32 (high
  // bits shared — exactly what starves a 53-bit mantissa), with a modest
  // pool of /48 sites each carrying many /64 subnets and /128 hosts. Dense
  // sites are what make the float encoding collapse: inside one site only
  // the top handful of subnet bits survive the mantissa.
  WideValue registry{};
  registry.limb[0] = 0x20010db8u;  // 2001:db8::/32
  uint64_t counter = seed * 1315423911ull;
  const auto mix = [](uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    return z ^ (z >> 27);
  };
  std::vector<uint16_t> sites;
  const size_t n_sites = std::max<size_t>(4, n / 256);
  for (size_t i = 0; i < n_sites; ++i)
    sites.push_back(static_cast<uint16_t>(mix(counter++)));
  while (rules.size() < n) {
    WideRule r;
    r.field.resize(1);
    WideValue base = registry;
    base.limb[1] = static_cast<uint32_t>(sites[rng.below(sites.size())]) << 16;
    const double u = rng.next_double();
    // Subnets are numbered sequentially per site (0..255), as real sites
    // allocate them — their distinguishing bits sit at the bottom of limb 1,
    // far below what a double retains once the /32 registry prefix has
    // consumed the mantissa's top bits.
    if (u < 0.05) {
      r.field[0] = wide_prefix(base, 48);  // site aggregate
    } else if (u < 0.70) {
      base.limb[1] |= static_cast<uint32_t>(rng.below(256));  // /64 subnet id
      r.field[0] = wide_prefix(base, 64);
    } else {
      base.limb[1] |= static_cast<uint32_t>(rng.below(256));
      base.limb[2] = static_cast<uint32_t>(mix(counter++));
      base.limb[3] = static_cast<uint32_t>(mix(counter++));
      r.field[0] = WideRange{base, base};  // /128 host route
    }
    r.action = static_cast<int32_t>(rng.below(48));
    rules.push_back(r);
  }
  canonicalize(rules);
  return rules;
}

std::vector<WidePacket> generate_wide_trace(const WideRuleSet& rules, size_t n_packets,
                                            uint64_t seed) {
  Rng rng{seed};
  std::vector<WidePacket> trace;
  trace.reserve(n_packets);
  if (rules.empty()) return trace;
  for (size_t i = 0; i < n_packets; ++i) {
    const WideRule& r = rules[rng.below(rules.size())];
    WidePacket p;
    p.reserve(r.field.size());
    for (const WideRange& w : r.field) {
      // Uniform point inside the range: randomize limbs below the common
      // prefix of lo/hi, clamped back into the range.
      WideValue v = w.lo;
      for (int l = 0; l < kLimbs; ++l) {
        if (w.lo.limb[static_cast<size_t>(l)] == w.hi.limb[static_cast<size_t>(l)]) continue;
        for (int k = l; k < kLimbs; ++k)
          v.limb[static_cast<size_t>(k)] = rng.next_u32();
        break;
      }
      if (!(w.lo <= v)) v = w.lo;
      if (!(v <= w.hi)) v = w.hi;
      p.push_back(v);
    }
    trace.push_back(std::move(p));
  }
  return trace;
}

}  // namespace nuevomatch::wide
