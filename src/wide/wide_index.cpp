#include "wide/wide_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nuevomatch::wide {

namespace {

/// Normalized half-open key interval of a rule in one dimension, plus the
/// inclusive key of a packet value in the same dimension. Both encodings
/// funnel through this so the partitioner, the index and the lookup agree
/// exactly on what "overlap" means.
struct KeySpan {
  double lo = 0.0;  // inclusive
  double hi = 0.0;  // exclusive
};

KeySpan span_of(Encoding enc, const WideRule& r, int field, int limb) noexcept {
  if (enc == Encoding::kSplit) {
    const Range sub = subfield_range(r, field, limb);
    return {static_cast<double>(sub.lo) / 4294967296.0,
            (static_cast<double>(sub.hi) + 1.0) / 4294967296.0};
  }
  const WideRange& w = r.field[static_cast<size_t>(field)];
  const double lo = normalize_wide(w.lo);
  const double hi_true = normalize_wide(w.hi);
  double hi = normalize_wide(w.hi.next());
  // The span must strictly contain every in-range key: keys are <= hi_true
  // (normalize is monotone), so the half-open end must exceed hi_true even
  // when mantissa collapse rounds hi.next() onto hi — otherwise an in-range
  // packet lands on the boundary, where the model gives no guarantee.
  if (hi <= hi_true) hi = std::nextafter(hi_true, 2.0);
  if (hi <= lo) hi = std::nextafter(lo, 2.0);
  return {lo, hi};
}

double key_of_value(Encoding enc, const WideValue& v, int limb) noexcept {
  if (enc == Encoding::kSplit)
    return static_cast<double>(v.limb[static_cast<size_t>(limb)]) / 4294967296.0;
  return normalize_wide(v);
}

int limbs_for(Encoding enc) noexcept { return enc == Encoding::kSplit ? kLimbs : 1; }

}  // namespace

std::string to_string(Encoding e) {
  return e == Encoding::kSplit ? "split32" : "float";
}

void WideIsetIndex::build(Encoding enc, int field, int limb, std::vector<WideRule> rules,
                          const rqrmi::RqRmiConfig& cfg) {
  enc_ = enc;
  field_ = field;
  limb_ = limb;
  rules_ = std::move(rules);
  key_lo_.resize(rules_.size());
  key_hi_.resize(rules_.size());
  std::vector<rqrmi::KeyInterval> intervals;
  intervals.reserve(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    const KeySpan s = span_of(enc_, rules_[i], field_, limb_);
    key_lo_[i] = s.lo;
    key_hi_[i] = s.hi;
    if (i > 0 && key_lo_[i] < key_hi_[i - 1])
      throw std::invalid_argument{"WideIsetIndex: rules must be disjoint in the key space"};
    intervals.push_back(rqrmi::KeyInterval{s.lo, s.hi, static_cast<uint32_t>(i)});
  }
  model_.build(std::move(intervals), cfg);
}

double WideIsetIndex::key_of(const WidePacket& p) const noexcept {
  return key_of_value(enc_, p[static_cast<size_t>(field_)], limb_);
}

MatchResult WideIsetIndex::lookup(const WidePacket& p) const noexcept {
  if (rules_.empty()) return MatchResult{};
  const double key = key_of(p);
  const auto pred = model_.lookup(static_cast<float>(key));
  const auto n = static_cast<int64_t>(rules_.size());
  const int64_t first = std::max<int64_t>(0, static_cast<int64_t>(pred.index) - pred.search_error);
  const int64_t last = std::min<int64_t>(n - 1, static_cast<int64_t>(pred.index) + pred.search_error);
  // Last stored span with lo <= key inside the window.
  const auto begin = key_lo_.begin() + first;
  const auto end = key_lo_.begin() + last + 1;
  const auto it = std::upper_bound(begin, end, key);
  if (it == begin) return MatchResult{};
  const auto pos = static_cast<size_t>((it - 1) - key_lo_.begin());
  // Validate on the ORIGINAL wide fields: float collapse can only produce a
  // candidate that validation rejects, never a wrong accept. When the
  // packet's key falls exactly on a collapsed boundary (the true interval's
  // end rounds onto the next interval's start), the true match is one slot
  // earlier; key_lo_ is strictly increasing, so one step back is complete.
  if (rules_[pos].matches(p))
    return MatchResult{static_cast<int32_t>(rules_[pos].id), rules_[pos].priority};
  if (pos > 0 && key_lo_[pos] == key && rules_[pos - 1].matches(p))
    return MatchResult{static_cast<int32_t>(rules_[pos - 1].id), rules_[pos - 1].priority};
  return MatchResult{};
}

WidePartition partition_wide(const WideRuleSet& rules, const WidePartitionConfig& cfg) {
  WidePartition out;
  out.total_rules = rules.size();
  if (rules.empty()) return out;
  const size_t n_fields = rules.front().field.size();
  const auto min_rules = static_cast<size_t>(
      cfg.min_coverage_fraction * static_cast<double>(rules.size()));

  std::vector<WideRule> pool = rules;
  for (int round = 0; round < cfg.max_isets && !pool.empty(); ++round) {
    // Interval scheduling per dimension; keep the largest winner.
    std::vector<size_t> best_pick;
    int best_field = -1;
    int best_limb = 0;
    for (size_t f = 0; f < n_fields; ++f) {
      for (int limb = 0; limb < limbs_for(cfg.encoding); ++limb) {
        std::vector<size_t> order(pool.size());
        for (size_t i = 0; i < pool.size(); ++i) order[i] = i;
        std::vector<KeySpan> spans(pool.size());
        for (size_t i = 0; i < pool.size(); ++i)
          spans[i] = span_of(cfg.encoding, pool[i], static_cast<int>(f), limb);
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return spans[a].hi < spans[b].hi; });
        std::vector<size_t> pick;
        double frontier = -1.0;
        for (size_t i : order) {
          if (spans[i].lo >= frontier) {
            pick.push_back(i);
            frontier = spans[i].hi;
          }
        }
        if (pick.size() > best_pick.size()) {
          best_pick = std::move(pick);
          best_field = static_cast<int>(f);
          best_limb = limb;
        }
      }
    }
    if (best_field < 0 || best_pick.size() < std::max<size_t>(1, min_rules)) break;

    WidePartition::Iset iset;
    iset.field = best_field;
    iset.limb = best_limb;
    std::vector<uint8_t> taken(pool.size(), 0);
    for (size_t i : best_pick) taken[i] = 1;
    for (size_t i = 0; i < pool.size(); ++i)
      if (taken[i]) iset.rules.push_back(pool[i]);
    std::sort(iset.rules.begin(), iset.rules.end(), [&](const WideRule& a, const WideRule& b) {
      return span_of(cfg.encoding, a, best_field, best_limb).lo <
             span_of(cfg.encoding, b, best_field, best_limb).lo;
    });
    out.isets.push_back(std::move(iset));

    std::vector<WideRule> rest;
    rest.reserve(pool.size() - best_pick.size());
    for (size_t i = 0; i < pool.size(); ++i)
      if (!taken[i]) rest.push_back(pool[i]);
    pool = std::move(rest);
  }
  out.remainder = std::move(pool);
  return out;
}

void WideClassifier::build(WideRuleSet rules, const Config& cfg) {
  n_rules_ = rules.size();
  isets_.clear();
  WidePartitionConfig pc;
  pc.encoding = cfg.encoding;
  pc.max_isets = cfg.max_isets;
  pc.min_coverage_fraction = cfg.min_coverage_fraction;
  WidePartition part = partition_wide(rules, pc);
  for (auto& is : part.isets) {
    auto rc = rqrmi::default_config(is.rules.size());
    rc.error_threshold = cfg.error_threshold;
    rc.seed = cfg.seed;
    WideIsetIndex idx;
    idx.build(cfg.encoding, is.field, is.limb, std::move(is.rules), rc);
    isets_.push_back(std::move(idx));
  }
  remainder_ = std::move(part.remainder);
  std::sort(remainder_.begin(), remainder_.end(),
            [](const WideRule& a, const WideRule& b) { return a.priority < b.priority; });
}

MatchResult WideClassifier::match(const WidePacket& p) const noexcept {
  MatchResult best;
  for (const WideIsetIndex& is : isets_) {
    const MatchResult r = is.lookup(p);
    if (r.beats(best)) best = r;
  }
  for (const WideRule& r : remainder_) {
    if (best.hit() && r.priority >= best.priority) break;  // sorted by priority
    if (r.matches(p)) {
      best = MatchResult{static_cast<int32_t>(r.id), r.priority};
      break;
    }
  }
  return best;
}

double WideClassifier::coverage() const noexcept {
  if (n_rules_ == 0) return 0.0;
  size_t covered = 0;
  for (const auto& is : isets_) covered += is.size();
  return static_cast<double>(covered) / static_cast<double>(n_rules_);
}

size_t WideClassifier::model_bytes() const noexcept {
  size_t bytes = 0;
  for (const auto& is : isets_) bytes += is.model_bytes();
  return bytes;
}

void WideLinearSearch::build(WideRuleSet rules) {
  rules_ = std::move(rules);
  std::sort(rules_.begin(), rules_.end(),
            [](const WideRule& a, const WideRule& b) { return a.priority < b.priority; });
}

MatchResult WideLinearSearch::match(const WidePacket& p) const noexcept {
  for (const WideRule& r : rules_) {
    if (r.matches(p)) return MatchResult{static_cast<int32_t>(r.id), r.priority};
  }
  return MatchResult{};
}

}  // namespace nuevomatch::wide
