// iSet partitioning + RQ-RMI indexing for long-field rules under the two
// encodings of paper Section 4 (SPLIT into 32-bit sub-fields vs one lossy
// FLOAT scalar). Validation always runs against the original wide fields, so
// both encodings are exact classifiers; the encoding decides only how many
// rules the partitioner can place into iSets (coverage) — the quantity the
// paper compares.
#pragma once

#include <memory>
#include <vector>

#include "rqrmi/model.hpp"
#include "wide/wide.hpp"

namespace nuevomatch::wide {

enum class Encoding {
  kSplit,  ///< 32-bit sub-fields; dimension = (field, limb)
  kFloat,  ///< one double per field; dimension = field
};

[[nodiscard]] std::string to_string(Encoding e);

/// One wide iSet: rules non-overlapping in the chosen dimension, indexed by
/// an RQ-RMI over normalized keys, validated against the wide fields.
class WideIsetIndex {
 public:
  /// `rules` must be sorted and pairwise disjoint in the dimension's key
  /// space (what WidePartition produces).
  void build(Encoding enc, int field, int limb, std::vector<WideRule> rules,
             const rqrmi::RqRmiConfig& cfg);

  [[nodiscard]] MatchResult lookup(const WidePacket& p) const noexcept;

  [[nodiscard]] size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] int field() const noexcept { return field_; }
  [[nodiscard]] int limb() const noexcept { return limb_; }
  [[nodiscard]] size_t model_bytes() const noexcept { return model_.memory_bytes(); }
  [[nodiscard]] uint32_t max_search_error() const noexcept {
    return model_.max_search_error();
  }
  [[nodiscard]] const std::vector<WideRule>& rules() const noexcept { return rules_; }

 private:
  [[nodiscard]] double key_of(const WidePacket& p) const noexcept;

  Encoding enc_ = Encoding::kSplit;
  int field_ = 0;
  int limb_ = 0;
  std::vector<double> key_lo_;  // sorted normalized range starts
  std::vector<double> key_hi_;  // inclusive normalized range ends
  std::vector<WideRule> rules_;
  rqrmi::RqRmi model_;
};

/// Greedy largest-iSet-first partition over every dimension the encoding
/// exposes (paper Section 3.6.1 generalized to wide dimensions).
struct WidePartition {
  struct Iset {
    int field = 0;
    int limb = 0;  // meaningful for kSplit only
    std::vector<WideRule> rules;
  };
  std::vector<Iset> isets;
  std::vector<WideRule> remainder;
  size_t total_rules = 0;

  [[nodiscard]] double coverage() const noexcept {
    if (total_rules == 0) return 0.0;
    size_t covered = 0;
    for (const auto& s : isets) covered += s.rules.size();
    return static_cast<double>(covered) / static_cast<double>(total_rules);
  }
};

struct WidePartitionConfig {
  Encoding encoding = Encoding::kSplit;
  int max_isets = 4;
  double min_coverage_fraction = 0.05;
};

[[nodiscard]] WidePartition partition_wide(const WideRuleSet& rules,
                                           const WidePartitionConfig& cfg);

/// End-to-end wide classifier: iSets under the chosen encoding + a linear
/// remainder, selector by priority (the NuevoMatch flow of Figure 1 on wide
/// rules; the remainder engine is linear because the substrate baselines are
/// 32-bit-field only).
class WideClassifier {
 public:
  struct Config {
    Encoding encoding = Encoding::kSplit;
    int max_isets = 4;
    double min_coverage_fraction = 0.05;
    uint32_t error_threshold = 64;
    uint64_t seed = 7;
  };

  void build(WideRuleSet rules, const Config& cfg);
  [[nodiscard]] MatchResult match(const WidePacket& p) const noexcept;

  [[nodiscard]] double coverage() const noexcept;
  [[nodiscard]] size_t size() const noexcept { return n_rules_; }
  [[nodiscard]] const std::vector<WideIsetIndex>& isets() const noexcept { return isets_; }
  [[nodiscard]] size_t remainder_size() const noexcept { return remainder_.size(); }
  [[nodiscard]] size_t model_bytes() const noexcept;

 private:
  std::vector<WideIsetIndex> isets_;
  std::vector<WideRule> remainder_;  // priority-sorted for early exit
  size_t n_rules_ = 0;
};

/// Ground-truth oracle.
class WideLinearSearch {
 public:
  void build(WideRuleSet rules);
  [[nodiscard]] MatchResult match(const WidePacket& p) const noexcept;

 private:
  WideRuleSet rules_;  // priority-sorted
};

}  // namespace nuevomatch::wide
