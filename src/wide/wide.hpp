// Long-field classification (paper Section 4, "Handling long fields").
//
// iSet partitioning and RQ-RMI models operate on single-precision keys. For
// 64-bit (MAC) and 128-bit (IPv6) fields the paper compares two encodings:
//
//   1. SPLIT  — break the field into 32-bit sub-fields and treat each as a
//               distinct dimension. Lossless, but a sub-field carries range
//               information only while all more-significant sub-fields are
//               exact.
//   2. FLOAT  — map the whole field to one floating-point scalar. Compact,
//               but values differing only below the 53-bit mantissa collapse
//               to the same key, which destroys the partitioner's ability to
//               tell rules apart.
//
// The paper reports the two behave alike on 48-bit MACs (they fit the
// mantissa) while SPLIT wins on IPv6 — behaviour these types reproduce from
// first principles. Validation always runs on the original wide fields, so
// both encodings classify correctly; the encoding only affects coverage.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nuevomatch::wide {

/// Limbs per wide value: 4 x 32 = 128 bits, most-significant limb first.
inline constexpr int kLimbs = 4;

/// A fixed-width 128-bit unsigned value (big-endian limb order).
struct WideValue {
  std::array<uint32_t, kLimbs> limb{};

  [[nodiscard]] friend constexpr auto operator<=>(const WideValue& a,
                                                  const WideValue& b) noexcept {
    for (int i = 0; i < kLimbs; ++i) {
      if (a.limb[static_cast<size_t>(i)] != b.limb[static_cast<size_t>(i)])
        return a.limb[static_cast<size_t>(i)] <=> b.limb[static_cast<size_t>(i)];
    }
    return std::strong_ordering::equal;
  }
  [[nodiscard]] friend constexpr bool operator==(const WideValue&,
                                                 const WideValue&) = default;

  /// Construct from a 64-bit scalar (lands in the two low limbs).
  [[nodiscard]] static constexpr WideValue from_u64(uint64_t v) noexcept {
    WideValue out;
    out.limb[2] = static_cast<uint32_t>(v >> 32);
    out.limb[3] = static_cast<uint32_t>(v);
    return out;
  }
  /// Value with every bit set (the all-wildcard upper bound).
  [[nodiscard]] static constexpr WideValue max() noexcept {
    WideValue out;
    for (auto& l : out.limb) l = 0xFFFF'FFFFu;
    return out;
  }
  /// +1 with carry; saturates at max().
  [[nodiscard]] WideValue next() const noexcept;
};

/// Inclusive range over wide values.
struct WideRange {
  WideValue lo{};
  WideValue hi{};

  [[nodiscard]] bool contains(const WideValue& v) const noexcept {
    return lo <= v && v <= hi;
  }
  [[nodiscard]] bool overlaps(const WideRange& o) const noexcept {
    return lo <= o.hi && o.lo <= hi;
  }
  [[nodiscard]] bool is_exact() const noexcept { return lo == hi; }
  [[nodiscard]] static WideRange full() noexcept { return {WideValue{}, WideValue::max()}; }
  friend bool operator==(const WideRange&, const WideRange&) = default;
};

/// Prefix of length `len` (0..128) starting at `base` -> inclusive range.
[[nodiscard]] WideRange wide_prefix(const WideValue& base, int len) noexcept;

/// A classification rule over `n_fields` wide dimensions.
struct WideRule {
  std::vector<WideRange> field;
  int32_t priority = 0;
  uint32_t id = 0;
  int32_t action = 0;

  [[nodiscard]] bool matches(const std::vector<WideValue>& packet) const noexcept {
    for (size_t f = 0; f < field.size(); ++f) {
      if (!field[f].contains(packet[f])) return false;
    }
    return true;
  }
};

using WideRuleSet = std::vector<WideRule>;
using WidePacket = std::vector<WideValue>;

/// Re-number ids/priorities to the dense convention, preserving order.
void canonicalize(WideRuleSet& rules);

// --- encoding 1: 32-bit sub-fields ------------------------------------------

/// The 32-bit range rule `r` induces on sub-field (field, limb): the limb's
/// [lo, hi] when every more-significant limb is exact, otherwise the full
/// 32-bit wildcard (the information the split encoding genuinely preserves).
[[nodiscard]] Range subfield_range(const WideRule& r, int field, int limb) noexcept;

// --- encoding 2: one lossy float --------------------------------------------

/// Normalize a wide value into [0,1) in double precision. Monotone
/// (non-decreasing), but NOT injective: bits below the 53-bit mantissa are
/// lost — the precise failure mode Section 4 reports for IPv6.
[[nodiscard]] double normalize_wide(const WideValue& v) noexcept;

// --- formatting ---------------------------------------------------------------

[[nodiscard]] std::string to_string(const WideValue& v);  // hex, ipv6-style

// --- synthetic workloads (paper Section 4's two cases) -----------------------

/// L2-forwarding-style rule-set: one 48-bit MAC field, mostly exact
/// station addresses plus a few OUI (/24) aggregates.
[[nodiscard]] WideRuleSet generate_mac_rules(size_t n, uint64_t seed);

/// IPv6 forwarding-style rule-set: one 128-bit destination field with
/// production-like prefix lengths (/32../64 aggregates, /128 hosts) that
/// differ only far below double precision.
[[nodiscard]] WideRuleSet generate_ipv6_rules(size_t n, uint64_t seed);

/// Uniform packet trace over the rules (every rule equally likely).
[[nodiscard]] std::vector<WidePacket> generate_wide_trace(const WideRuleSet& rules,
                                                          size_t n_packets,
                                                          uint64_t seed);

}  // namespace nuevomatch::wide
