// NeuroCuts-style autotuned decision tree (paper baseline "nc").
//
// The published NeuroCuts uses reinforcement learning to explore the space of
// decision-tree construction actions (cut dimension, fan-out, top-level
// partitioning) offline and emits an optimized tree. What the runtime — and
// NuevoMatch's comparison — interacts with is the *resulting tree*. This
// substitute explores the same configuration space with seeded randomized
// search over whole-tree configurations and keeps the best tree under the
// chosen reward (classification time or memory), mirroring NeuroCuts' two
// reward modes. See DESIGN.md "Substitutions".
#pragma once

#include <vector>

#include "classifiers/classifier.hpp"
#include "cutsplit/cut_tree.hpp"

namespace nuevomatch {

struct NeuroCutsConfig {
  enum class Reward { kTime, kSpace };
  Reward reward = Reward::kTime;
  int search_iterations = 8;  ///< tree configurations sampled per build
  uint64_t seed = 42;
};

class NeuroCutsLike final : public Classifier {
 public:
  explicit NeuroCutsLike(NeuroCutsConfig cfg = {});

  void build(std::span<const Rule> rules) override;
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;

  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override { return n_rules_; }
  [[nodiscard]] std::string name() const override { return "neurocuts"; }

  /// Configuration chosen by the search (introspection / ablation benches).
  [[nodiscard]] const CutTreeConfig& chosen_config() const noexcept { return best_cfg_; }
  [[nodiscard]] bool chose_top_partition() const noexcept { return best_partitioned_; }

 private:
  [[nodiscard]] double score(const std::vector<CutTree>& trees,
                             std::span<const Packet> probes) const;

  NeuroCutsConfig cfg_;
  std::vector<CutTree> trees_;
  CutTreeConfig best_cfg_{};
  bool best_partitioned_ = false;
  size_t n_rules_ = 0;
  mutable int64_t score_sink_ = 0;  // defeats dead-code elimination in score()
};

}  // namespace nuevomatch
