#include "neurocuts/neurocuts.hpp"

#include <chrono>
#include <limits>

#include "common/rng.hpp"
#include "cutsplit/cutsplit.hpp"

namespace nuevomatch {

NeuroCutsLike::NeuroCutsLike(NeuroCutsConfig cfg) : cfg_(cfg) {}

namespace {

/// Probe packets drawn uniformly from the rules' hyper-cubes — the same
/// distribution the evaluation traces use, so the reward ranks candidate
/// trees by the cost they will actually pay.
std::vector<Packet> make_probes(std::span<const Rule> rules, size_t count, Rng& rng) {
  std::vector<Packet> probes;
  probes.reserve(count);
  if (rules.empty()) return probes;
  for (size_t i = 0; i < count; ++i) {
    const Rule& r = rules[rng.below(rules.size())];
    Packet p;
    for (int f = 0; f < kNumFields; ++f) {
      const Range& rg = r.field[static_cast<size_t>(f)];
      p.field[static_cast<size_t>(f)] =
          rg.lo + static_cast<uint32_t>(rng.below(rg.span()));
    }
    probes.push_back(p);
  }
  return probes;
}

}  // namespace

double NeuroCutsLike::score(const std::vector<CutTree>& trees,
                            std::span<const Packet> probes) const {
  // NeuroCuts' reward is (negative) classification time or memory footprint.
  // The time reward is measured directly: mean lookup cost over the probes.
  size_t bytes = 0;
  for (const CutTree& t : trees) bytes += t.memory_bytes();
  const auto t0 = std::chrono::steady_clock::now();
  int64_t sink = 0;
  for (const Packet& p : probes) {
    MatchResult best;
    for (const CutTree& t : trees) {
      const MatchResult r = t.match_with_floor(p, best.priority);
      if (r.beats(best)) best = r;
    }
    sink += best.rule_id;
  }
  const auto t1 = std::chrono::steady_clock::now();
  score_sink_ = sink;
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                    static_cast<double>(std::max<size_t>(1, probes.size()));
  if (cfg_.reward == NeuroCutsConfig::Reward::kTime)
    return ns + 1e-7 * static_cast<double>(bytes);
  return static_cast<double>(bytes) + 1e-3 * ns;
}

void NeuroCutsLike::build(std::span<const Rule> rules) {
  n_rules_ = rules.size();
  Rng rng{cfg_.seed};
  const std::vector<Packet> probes = make_probes(rules, 2048, rng);

  const int fanouts[] = {4, 8, 16, 32};
  const int binths[] = {4, 8, 16};
  const double repls[] = {1.5, 3.0, 6.0};
  const CutTreeConfig::DimPolicy policies[] = {
      CutTreeConfig::DimPolicy::kMaxDistinct,
      CutTreeConfig::DimPolicy::kLargestSpan,
      CutTreeConfig::DimPolicy::kMinReplication,
  };

  double best_score = std::numeric_limits<double>::infinity();
  for (int it = 0; it < cfg_.search_iterations; ++it) {
    // Episode 0 replays the known-good heuristic configuration (partitioned,
    // distinct-dimension cuts, split fallback); later episodes explore. This
    // mirrors how the RL search warm-starts from existing heuristics and
    // guarantees the output never regresses below them.
    CutTreeConfig tc;
    bool partitioned = true;  // NeuroCuts' top-node partition action
    if (it > 0) {
      tc.max_fanout = fanouts[rng.below(4)];
      tc.binth = binths[rng.below(3)];
      tc.max_replication = repls[rng.below(3)];
      tc.dim_policy = policies[rng.below(3)];
      tc.enable_split_phase = rng.chance(0.5);
      partitioned = rng.chance(0.5);
    }

    std::vector<CutTree> trees;
    if (partitioned) {
      for (auto& group : partition_by_small_fields(rules, 16)) {
        if (group.empty()) continue;
        CutTree t;
        t.build(group, tc);
        trees.push_back(std::move(t));
      }
    } else {
      CutTree t;
      t.build(rules, tc);
      trees.push_back(std::move(t));
    }
    const double s = score(trees, probes);
    if (s < best_score) {
      best_score = s;
      trees_ = std::move(trees);
      best_cfg_ = tc;
      best_partitioned_ = partitioned;
    }
  }
}

MatchResult NeuroCutsLike::match(const Packet& p) const {
  return match_with_floor(p, std::numeric_limits<int32_t>::max());
}

MatchResult NeuroCutsLike::match_with_floor(const Packet& p, int32_t priority_floor) const {
  MatchResult best;
  int32_t floor = priority_floor;
  for (const CutTree& t : trees_) {
    const MatchResult r = t.match_with_floor(p, floor);
    if (r.beats(best)) {
      best = r;
      floor = best.priority;
    }
  }
  return best;
}

size_t NeuroCutsLike::memory_bytes() const {
  size_t bytes = 0;
  for (const CutTree& t : trees_) bytes += t.memory_bytes();
  return bytes;
}

}  // namespace nuevomatch
