// CutSplit (Li et al., INFOCOM'18 — paper baseline "cs"): FiCuts-style
// pre-partitioning of the rule-set by which IP fields are "small" (specific),
// then one cut/split tree per group. binth = 8 as in the paper (§5.1).
#pragma once

#include <array>
#include <vector>

#include "classifiers/classifier.hpp"
#include "cutsplit/cut_tree.hpp"

namespace nuevomatch {

struct CutSplitConfig {
  int binth = 8;
  /// A field is "small" (specific enough to cut on) when its range spans at
  /// most 2^small_threshold_bits values.
  int small_threshold_bits = 16;
  CutTreeConfig tree{};  // binth is overridden by the field above
};

/// FiCuts grouping: index = (src small ? 1 : 0) | (dst small ? 2 : 0).
[[nodiscard]] std::array<std::vector<Rule>, 4> partition_by_small_fields(
    std::span<const Rule> rules, int small_threshold_bits);

class CutSplit final : public Classifier {
 public:
  explicit CutSplit(CutSplitConfig cfg = {});

  void build(std::span<const Rule> rules) override;
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;

  /// --- incremental updates (paper §3.9) --------------------------------
  /// Decision trees cannot absorb arbitrary inserts without re-cutting, so
  /// insertions land in a small linear-scan overflow list probed after the
  /// trees (the CutSplit paper's own update story is a partial rebuild; the
  /// overflow list is what makes cs usable as NuevoMatch's updatable
  /// remainder, where a background retrain folds it back in periodically).
  /// Deletions tombstone in the owning tree (CutTree::erase) or drop the
  /// rule from the overflow list.
  [[nodiscard]] bool supports_updates() const override { return true; }
  bool insert(const Rule& r) override;
  bool erase(uint32_t rule_id) override;
  [[nodiscard]] size_t overflow_size() const noexcept { return overflow_.size(); }

  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override { return n_rules_; }
  [[nodiscard]] std::string name() const override { return "cutsplit"; }

  [[nodiscard]] const std::vector<CutTree>& trees() const noexcept { return trees_; }

 private:
  CutSplitConfig cfg_;
  std::vector<CutTree> trees_;
  std::vector<Rule> overflow_;  // inserted since build, linear probe
  size_t n_rules_ = 0;
};

}  // namespace nuevomatch
