// CutSplit (Li et al., INFOCOM'18 — paper baseline "cs"): FiCuts-style
// pre-partitioning of the rule-set by which IP fields are "small" (specific),
// then one cut/split tree per group. binth = 8 as in the paper (§5.1).
#pragma once

#include <array>
#include <vector>

#include "classifiers/classifier.hpp"
#include "cutsplit/cut_tree.hpp"

namespace nuevomatch {

struct CutSplitConfig {
  int binth = 8;
  /// A field is "small" (specific enough to cut on) when its range spans at
  /// most 2^small_threshold_bits values.
  int small_threshold_bits = 16;
  CutTreeConfig tree{};  // binth is overridden by the field above
};

/// FiCuts grouping: index = (src small ? 1 : 0) | (dst small ? 2 : 0).
[[nodiscard]] std::array<std::vector<Rule>, 4> partition_by_small_fields(
    std::span<const Rule> rules, int small_threshold_bits);

class CutSplit final : public Classifier {
 public:
  explicit CutSplit(CutSplitConfig cfg = {});

  void build(std::span<const Rule> rules) override;
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;

  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override { return n_rules_; }
  [[nodiscard]] std::string name() const override { return "cutsplit"; }

  [[nodiscard]] const std::vector<CutTree>& trees() const noexcept { return trees_; }

 private:
  CutSplitConfig cfg_;
  std::vector<CutTree> trees_;
  size_t n_rules_ = 0;
};

}  // namespace nuevomatch
