#include "cutsplit/cut_tree.hpp"

#include "common/mem.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace nuevomatch {

namespace {

constexpr size_t kSampleCap = 256;  // rule sample for heuristic estimates

Range intersect(const Range& a, const Range& b) noexcept {
  return Range{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

}  // namespace

void CutTree::build(std::span<const Rule> rules, const CutTreeConfig& cfg) {
  cfg_ = cfg;
  rules_.assign(rules.begin(), rules.end());
  nodes_.clear();
  leaf_rules_.clear();
  n_rules_ = rules_.size();
  pos_by_id_.clear();
  pos_by_id_.reserve(rules_.size());
  for (uint32_t i = 0; i < rules_.size(); ++i) pos_by_id_.emplace(rules_[i].id, i);

  // Every rule-set must at least fit in one root leaf; beyond that the
  // budget scales linearly so replication stays <= ref_budget_factor.
  ref_budget_ = std::max(rules_.size(),
                         static_cast<size_t>(cfg_.ref_budget_factor *
                                             static_cast<double>(rules_.size())));
  pending_refs_ = 0;

  Region root_region;
  for (int f = 0; f < kNumFields; ++f) root_region[static_cast<size_t>(f)] = full_range(f);
  std::vector<uint32_t> all(rules_.size());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  nodes_.emplace_back();
  build_node(0, std::move(all), root_region, 0, 1.0);
}

int CutTree::choose_dim(std::span<const uint32_t> rule_idx, const Region& region) const {
  const size_t sample = std::min(rule_idx.size(), kSampleCap);
  int best_dim = 0;
  double best_score = -1.0;
  for (int f = 0; f < kNumFields; ++f) {
    const Range& reg = region[static_cast<size_t>(f)];
    if (reg.lo >= reg.hi) continue;  // cannot cut a single point
    double score = 0.0;
    switch (cfg_.dim_policy) {
      case CutTreeConfig::DimPolicy::kMaxDistinct: {
        std::unordered_set<uint64_t> distinct;
        for (size_t i = 0; i < sample; ++i) {
          const Range r = intersect(rules_[rule_idx[i]].field[static_cast<size_t>(f)], reg);
          distinct.insert((static_cast<uint64_t>(r.lo) << 32) | r.hi);
        }
        score = static_cast<double>(distinct.size());
        break;
      }
      case CutTreeConfig::DimPolicy::kLargestSpan:
        score = static_cast<double>(reg.span()) /
                static_cast<double>(kFieldDomain[static_cast<size_t>(f)] + 1);
        break;
      case CutTreeConfig::DimPolicy::kMinReplication:
        score = -replication_estimate(rule_idx, f, region, cfg_.max_fanout);
        break;
    }
    if (score > best_score) {
      best_score = score;
      best_dim = f;
    }
  }
  return best_dim;
}

double CutTree::replication_estimate(std::span<const uint32_t> rule_idx, int dim,
                                     const Region& region, int fanout) const {
  const Range& reg = region[static_cast<size_t>(dim)];
  const uint64_t span = reg.span();
  const uint64_t width = std::max<uint64_t>(1, (span + static_cast<uint64_t>(fanout) - 1) /
                                                   static_cast<uint64_t>(fanout));
  const size_t sample = std::min(rule_idx.size(), kSampleCap);
  if (sample == 0) return 1.0;
  double total = 0.0;
  for (size_t i = 0; i < sample; ++i) {
    const Range r = intersect(rules_[rule_idx[i]].field[static_cast<size_t>(dim)], reg);
    const uint64_t c0 = (r.lo - reg.lo) / width;
    const uint64_t c1 = (r.hi - reg.lo) / width;
    total += static_cast<double>(c1 - c0 + 1);
  }
  return total / static_cast<double>(sample);
}

void CutTree::build_node(uint32_t node_idx, std::vector<uint32_t>&& rule_idx,
                         const Region& region, uint32_t depth, double repl_so_far) {
  Node& self = nodes_[node_idx];
  self.depth = depth;
  self.best_priority = std::numeric_limits<int32_t>::max();
  for (uint32_t i : rule_idx) self.best_priority = std::min(self.best_priority, rules_[i].priority);

  const auto make_leaf = [&](std::vector<uint32_t>& idx) {
    Node& n = nodes_[node_idx];  // re-fetch: nodes_ may have reallocated
    n.kind = Node::Kind::kLeaf;
    n.leaf_begin = static_cast<uint32_t>(leaf_rules_.size());
    n.leaf_count = static_cast<uint32_t>(idx.size());
    std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
      if (rules_[a].priority != rules_[b].priority)
        return rules_[a].priority < rules_[b].priority;
      return rules_[a].id < rules_[b].id;
    });
    leaf_rules_.insert(leaf_rules_.end(), idx.begin(), idx.end());
  };

  if (rule_idx.size() <= static_cast<size_t>(cfg_.binth) ||
      depth >= static_cast<uint32_t>(cfg_.max_depth) ||
      nodes_.size() + static_cast<size_t>(cfg_.max_fanout) >= cfg_.max_nodes) {
    make_leaf(rule_idx);
    return;
  }

  // Refinement may proceed only while the projected reference total —
  // committed leaves, every pending frontier node, and this node's children —
  // fits the budget. This makes `replication <= ref_budget_factor` a hard
  // post-condition rather than a best-effort goal.
  const auto refs_available = [&](size_t child_total) {
    return leaf_rules_.size() + pending_refs_ + child_total <= ref_budget_;
  };

  const int dim = choose_dim(rule_idx, region);
  const Range& reg = region[static_cast<size_t>(dim)];

  // --- cut phase ---------------------------------------------------------
  const uint64_t span = reg.span();
  const int fanout = static_cast<int>(
      std::min<uint64_t>(static_cast<uint64_t>(cfg_.max_fanout), span));
  const double repl = replication_estimate(rule_idx, dim, region, fanout);
  const bool cut_effective = fanout >= 2 && repl <= cfg_.max_replication &&
                             repl * repl_so_far <= cfg_.path_replication_budget;

  if (cut_effective) {
    const uint64_t width =
        std::max<uint64_t>(1, (span + static_cast<uint64_t>(fanout) - 1) /
                                  static_cast<uint64_t>(fanout));
    const auto n_children =
        static_cast<uint32_t>((span + width - 1) / width);

    // Exact per-child occupancy (each rule lands in children [c0, c1]).
    std::vector<size_t> child_count(n_children, 0);
    size_t child_total = 0;
    for (uint32_t i : rule_idx) {
      const Range r = intersect(rules_[i].field[static_cast<size_t>(dim)], reg);
      const uint64_t c0 = (r.lo - reg.lo) / width;
      const uint64_t c1 = (r.hi - reg.lo) / width;
      for (uint64_t c = c0; c <= c1; ++c) ++child_count[c];
      child_total += static_cast<size_t>(c1 - c0 + 1);
    }

    if (refs_available(child_total)) {
      const uint32_t first = static_cast<uint32_t>(nodes_.size());
      {
        Node& n = nodes_[node_idx];
        n.kind = Node::Kind::kCut;
        n.dim = static_cast<uint8_t>(dim);
        n.first_child = first;
        n.n_children = n_children;
        n.cut_lo = reg.lo;
        n.child_width = width;
      }
      nodes_.resize(nodes_.size() + n_children);
      pending_refs_ += child_total;
      for (uint32_t c = 0; c < n_children; ++c) {
        const uint64_t clo = reg.lo + static_cast<uint64_t>(c) * width;
        const uint64_t chi = std::min<uint64_t>(reg.hi, clo + width - 1);
        Region child_region = region;
        child_region[static_cast<size_t>(dim)] =
            Range{static_cast<uint32_t>(clo), static_cast<uint32_t>(chi)};
        std::vector<uint32_t> child_rules;
        child_rules.reserve(child_count[c]);
        for (uint32_t i : rule_idx) {
          if (rules_[i].field[static_cast<size_t>(dim)].overlaps(
                  child_region[static_cast<size_t>(dim)]))
            child_rules.push_back(i);
        }
        pending_refs_ -= child_rules.size();
        build_node(first + c, std::move(child_rules), child_region, depth + 1,
                   repl_so_far * std::max(1.0, repl));
      }
      return;
    }
  }

  // --- split phase (HyperSplit-style binary endpoint split) ---------------
  if (cfg_.enable_split_phase && span >= 2) {
    // Candidate split points: projected range endpoints inside the region.
    std::vector<uint32_t> points;
    const size_t sample = std::min(rule_idx.size(), kSampleCap);
    for (size_t i = 0; i < sample; ++i) {
      const Range r = intersect(rules_[rule_idx[i]].field[static_cast<size_t>(dim)], reg);
      if (r.hi < reg.hi) points.push_back(r.hi);
      if (r.lo > reg.lo) points.push_back(r.lo - 1);
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());

    // left(pt) = #rules with lo <= pt, right(pt) = #rules with hi > pt:
    // both answered in O(log n) from sorted endpoint arrays.
    std::vector<uint32_t> los, his;
    los.reserve(rule_idx.size());
    his.reserve(rule_idx.size());
    for (uint32_t i : rule_idx) {
      const Range& r = rules_[i].field[static_cast<size_t>(dim)];
      los.push_back(r.lo);
      his.push_back(r.hi);
    }
    std::sort(los.begin(), los.end());
    std::sort(his.begin(), his.end());

    uint32_t best_point = 0;
    size_t best_worst = rule_idx.size();
    for (uint32_t pt : points) {
      const size_t left = static_cast<size_t>(
          std::upper_bound(los.begin(), los.end(), pt) - los.begin());
      const size_t right = rule_idx.size() -
                           static_cast<size_t>(std::upper_bound(his.begin(), his.end(),
                                                                pt) -
                                               his.begin());
      const size_t worst = std::max(left, right);
      if (worst < best_worst) {
        best_worst = worst;
        best_point = pt;
      }
    }
    if (best_worst < rule_idx.size() && nodes_.size() + 2 < cfg_.max_nodes) {
      std::array<std::vector<uint32_t>, 2> side_rules;
      std::array<Region, 2> side_region{region, region};
      side_region[0][static_cast<size_t>(dim)] = Range{reg.lo, best_point};
      side_region[1][static_cast<size_t>(dim)] = Range{best_point + 1, reg.hi};
      for (uint32_t i : rule_idx) {
        for (int side = 0; side < 2; ++side) {
          if (rules_[i].field[static_cast<size_t>(dim)].overlaps(
                  side_region[static_cast<size_t>(side)][static_cast<size_t>(dim)]))
            side_rules[static_cast<size_t>(side)].push_back(i);
        }
      }
      if (refs_available(side_rules[0].size() + side_rules[1].size())) {
        const uint32_t first = static_cast<uint32_t>(nodes_.size());
        {
          Node& n = nodes_[node_idx];
          n.kind = Node::Kind::kSplit;
          n.dim = static_cast<uint8_t>(dim);
          n.first_child = first;
          n.split_point = best_point;
        }
        nodes_.resize(nodes_.size() + 2);
        // Splits replicate only straddling rules; charge the measured factor.
        const double split_repl =
            static_cast<double>(side_rules[0].size() + side_rules[1].size()) /
            static_cast<double>(rule_idx.size());
        pending_refs_ += side_rules[0].size() + side_rules[1].size();
        for (int side = 0; side < 2; ++side) {
          pending_refs_ -= side_rules[static_cast<size_t>(side)].size();
          build_node(first + static_cast<uint32_t>(side),
                     std::move(side_rules[static_cast<size_t>(side)]),
                     side_region[static_cast<size_t>(side)], depth + 1,
                     repl_so_far * std::max(1.0, split_repl));
        }
        return;
      }
    }
  }

  make_leaf(rule_idx);  // no effective refinement possible
}

bool CutTree::erase(uint32_t rule_id) noexcept {
  const auto it = pos_by_id_.find(rule_id);
  if (it == pos_by_id_.end()) return false;
  // Range{1, 0} contains no value, so every leaf probe of this body fails.
  rules_[it->second].field[0] = Range{1, 0};
  pos_by_id_.erase(it);
  return true;
}

MatchResult CutTree::match(const Packet& p) const noexcept {
  return match_with_floor(p, std::numeric_limits<int32_t>::max());
}

MatchResult CutTree::match_with_floor(const Packet& p, int32_t priority_floor) const noexcept {
  if (nodes_.empty()) return MatchResult{};
  const Node* n = &nodes_[0];
  for (;;) {
    if (n->best_priority >= priority_floor) return MatchResult{};
    switch (n->kind) {
      case Node::Kind::kLeaf: {
        for (uint32_t i = 0; i < n->leaf_count; ++i) {
          const Rule& r = rules_[leaf_rules_[n->leaf_begin + i]];
          if (r.priority >= priority_floor) break;  // leaf sorted by priority
          if (r.matches(p)) return MatchResult{static_cast<int32_t>(r.id), r.priority};
        }
        return MatchResult{};
      }
      case Node::Kind::kCut: {
        const uint32_t v = p[n->dim];
        uint64_t c = (static_cast<uint64_t>(v) - n->cut_lo) / n->child_width;
        if (c >= n->n_children) c = n->n_children - 1;
        n = &nodes_[n->first_child + static_cast<uint32_t>(c)];
        break;
      }
      case Node::Kind::kSplit: {
        const uint32_t v = p[n->dim];
        n = &nodes_[n->first_child + (v <= n->split_point ? 0u : 1u)];
        break;
      }
    }
  }
}

size_t CutTree::memory_bytes() const noexcept {
  return nodes_.size() * sizeof(Node) + leaf_rules_.size() * sizeof(uint32_t) +
         map_overhead_bytes(pos_by_id_);
}

CutTree::Stats CutTree::stats() const noexcept {
  Stats s;
  s.nodes = nodes_.size();
  double depth_sum = 0.0;
  for (const Node& n : nodes_) {
    s.max_depth = std::max<size_t>(s.max_depth, n.depth);
    if (n.kind == Node::Kind::kLeaf) {
      ++s.leaves;
      depth_sum += n.depth;
      s.max_leaf_rules = std::max<size_t>(s.max_leaf_rules, n.leaf_count);
    }
  }
  if (s.leaves > 0) s.avg_leaf_depth = depth_sum / static_cast<double>(s.leaves);
  if (n_rules_ > 0)
    s.replication =
        static_cast<double>(leaf_rules_.size()) / static_cast<double>(n_rules_);
  return s;
}

}  // namespace nuevomatch
