// Generic multi-way cut / binary split decision tree over the rule space —
// the substrate for CutSplit (Li et al., INFOCOM'18) and for the
// NeuroCuts-style autotuned tree (Liang et al., SIGCOMM'19).
//
// "Cut" nodes divide the node's region into equal-width slices along one
// dimension (HiCuts-style); "split" nodes cut at a rule endpoint chosen to
// minimize the larger side (HyperSplit-style). Every node stores the best
// priority in its subtree so lookups can terminate early against a priority
// floor (paper Section 4, "Early termination").
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "classifiers/classifier.hpp"

namespace nuevomatch {

struct CutTreeConfig {
  int binth = 8;           ///< max rules in a leaf (paper: binth=8 for cs)
  int max_fanout = 16;     ///< power-of-two children per cut node
  int max_depth = 24;
  double max_replication = 4.0;  ///< switch from cut to split above this
  /// Bound on the replication factor accumulated along a root-to-node path.
  /// Per-node estimates compound multiplicatively down the tree; once a
  /// path's product would exceed this, the node falls back to binary splits
  /// (which replicate only rules straddling the split point).
  double path_replication_budget = 16.0;
  size_t max_nodes = size_t{1} << 20;
  /// Hard global budget on stored rule references, as a multiple of the
  /// input size: a node may refine only when the projected reference total
  /// (committed leaves + every pending frontier node's rules + its own
  /// children) stays within the budget, so the final replication factor is
  /// guaranteed <= this value. This is the guard that keeps HiCuts-style
  /// replication blow-up (paper §2.1) from exhausting memory under
  /// adversarial configurations.
  double ref_budget_factor = 20.0;
  enum class DimPolicy {
    kMaxDistinct,      ///< dimension with most distinct projected ranges
    kLargestSpan,      ///< widest region extent relative to the field domain
    kMinReplication,   ///< dimension minimizing estimated rule duplication
  } dim_policy = DimPolicy::kMaxDistinct;
  bool enable_split_phase = true;  ///< CutSplit's split stage; off = pure cuts
};

class CutTree {
 public:
  using Region = std::array<Range, kNumFields>;

  void build(std::span<const Rule> rules, const CutTreeConfig& cfg);

  [[nodiscard]] MatchResult match(const Packet& p) const noexcept;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const noexcept;

  /// §3.9 deletion path: tombstone by rewriting the stored rule body to an
  /// unmatchable range. Tree shape, leaf refs and cached subtree
  /// best-priorities are untouched — a stale (too-good) bound only costs
  /// extra probes, never a wrong result — so the lookup hot path carries no
  /// liveness check at all. Returns false when the id is not (or no longer)
  /// live in this tree.
  bool erase(uint32_t rule_id) noexcept;

  [[nodiscard]] size_t memory_bytes() const noexcept;
  [[nodiscard]] size_t num_rules() const noexcept { return n_rules_; }
  [[nodiscard]] size_t num_nodes() const noexcept { return nodes_.size(); }

  struct Stats {
    size_t nodes = 0;
    size_t leaves = 0;
    size_t max_depth = 0;
    double avg_leaf_depth = 0.0;    // averaged over leaves
    double replication = 0.0;       // stored rule refs / input rules
    size_t max_leaf_rules = 0;
  };
  [[nodiscard]] Stats stats() const noexcept;

 private:
  struct Node {
    enum class Kind : uint8_t { kLeaf, kCut, kSplit };
    Kind kind = Kind::kLeaf;
    uint8_t dim = 0;
    int32_t best_priority = 0;   // min numeric priority in subtree
    // cut node
    uint32_t first_child = 0;
    uint32_t n_children = 0;
    uint32_t cut_lo = 0;         // region lo in `dim`
    uint64_t child_width = 0;    // slice width
    // split node: children at first_child (left) / first_child+1 (right)
    uint32_t split_point = 0;    // left covers [.., split_point]
    // leaf
    uint32_t leaf_begin = 0;
    uint32_t leaf_count = 0;
    uint32_t depth = 0;
  };

  void build_node(uint32_t node_idx, std::vector<uint32_t>&& rule_idx,
                  const Region& region, uint32_t depth, double repl_so_far);
  [[nodiscard]] int choose_dim(std::span<const uint32_t> rule_idx,
                               const Region& region) const;
  [[nodiscard]] double replication_estimate(std::span<const uint32_t> rule_idx, int dim,
                                            const Region& region, int fanout) const;

  CutTreeConfig cfg_;
  std::vector<Rule> rules_;          // rule bodies (shared, unreplicated)
  std::unordered_map<uint32_t, uint32_t> pos_by_id_;  // live ids only
  std::vector<Node> nodes_;
  std::vector<uint32_t> leaf_rules_; // replicated refs, leaf-contiguous
  size_t n_rules_ = 0;
  size_t ref_budget_ = 0;     // hard cap on final leaf_rules_ size
  size_t pending_refs_ = 0;   // rules held by not-yet-expanded frontier nodes
};

}  // namespace nuevomatch
