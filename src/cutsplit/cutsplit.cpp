#include "cutsplit/cutsplit.hpp"

namespace nuevomatch {

std::array<std::vector<Rule>, 4> partition_by_small_fields(std::span<const Rule> rules,
                                                           int small_threshold_bits) {
  const uint64_t limit = uint64_t{1} << small_threshold_bits;
  std::array<std::vector<Rule>, 4> groups;
  for (const Rule& r : rules) {
    const bool src_small = r.field[kSrcIp].span() <= limit;
    const bool dst_small = r.field[kDstIp].span() <= limit;
    const size_t g = (src_small ? 1u : 0u) | (dst_small ? 2u : 0u);
    groups[g].push_back(r);
  }
  return groups;
}

CutSplit::CutSplit(CutSplitConfig cfg) : cfg_(cfg) {}

void CutSplit::build(std::span<const Rule> rules) {
  trees_.clear();
  n_rules_ = rules.size();
  CutTreeConfig tc = cfg_.tree;
  tc.binth = cfg_.binth;
  for (auto& group : partition_by_small_fields(rules, cfg_.small_threshold_bits)) {
    if (group.empty()) continue;
    CutTree tree;
    tree.build(group, tc);
    trees_.push_back(std::move(tree));
  }
}

MatchResult CutSplit::match(const Packet& p) const {
  return match_with_floor(p, std::numeric_limits<int32_t>::max());
}

MatchResult CutSplit::match_with_floor(const Packet& p, int32_t priority_floor) const {
  MatchResult best;
  int32_t floor = priority_floor;
  for (const CutTree& t : trees_) {
    const MatchResult r = t.match_with_floor(p, floor);
    if (r.beats(best)) {
      best = r;
      floor = best.priority;  // later trees prune against the running best
    }
  }
  return best;
}

size_t CutSplit::memory_bytes() const {
  size_t bytes = 0;
  for (const CutTree& t : trees_) bytes += t.memory_bytes();
  return bytes;
}

}  // namespace nuevomatch
