#include "cutsplit/cutsplit.hpp"

namespace nuevomatch {

std::array<std::vector<Rule>, 4> partition_by_small_fields(std::span<const Rule> rules,
                                                           int small_threshold_bits) {
  const uint64_t limit = uint64_t{1} << small_threshold_bits;
  std::array<std::vector<Rule>, 4> groups;
  for (const Rule& r : rules) {
    const bool src_small = r.field[kSrcIp].span() <= limit;
    const bool dst_small = r.field[kDstIp].span() <= limit;
    const size_t g = (src_small ? 1u : 0u) | (dst_small ? 2u : 0u);
    groups[g].push_back(r);
  }
  return groups;
}

CutSplit::CutSplit(CutSplitConfig cfg) : cfg_(cfg) {}

void CutSplit::build(std::span<const Rule> rules) {
  trees_.clear();
  overflow_.clear();
  n_rules_ = rules.size();
  CutTreeConfig tc = cfg_.tree;
  tc.binth = cfg_.binth;
  for (auto& group : partition_by_small_fields(rules, cfg_.small_threshold_bits)) {
    if (group.empty()) continue;
    CutTree tree;
    tree.build(group, tc);
    trees_.push_back(std::move(tree));
  }
}

MatchResult CutSplit::match(const Packet& p) const {
  return match_with_floor(p, std::numeric_limits<int32_t>::max());
}

MatchResult CutSplit::match_with_floor(const Packet& p, int32_t priority_floor) const {
  MatchResult best;
  int32_t floor = priority_floor;
  for (const CutTree& t : trees_) {
    const MatchResult r = t.match_with_floor(p, floor);
    if (r.beats(best)) {
      best = r;
      floor = best.priority;  // later trees prune against the running best
    }
  }
  // Overflow probe: bound by the CALLER's floor (strict, per the
  // match_with_floor contract), but ties against the running best are
  // broken by smaller id via beats() — the (priority, id) order the
  // LinearSearch oracle uses — so equal-priority rules cannot make CutSplit
  // diverge from it.
  for (const Rule& r : overflow_) {
    if (r.priority >= priority_floor) continue;
    const MatchResult cand{static_cast<int32_t>(r.id), r.priority};
    if (cand.beats(best) && r.matches(p)) best = cand;
  }
  return best;
}

bool CutSplit::insert(const Rule& r) {
  overflow_.push_back(r);
  ++n_rules_;
  return true;
}

bool CutSplit::erase(uint32_t rule_id) {
  for (size_t i = 0; i < overflow_.size(); ++i) {
    if (overflow_[i].id == rule_id) {
      overflow_[i] = overflow_.back();
      overflow_.pop_back();
      --n_rules_;
      return true;
    }
  }
  for (CutTree& t : trees_) {
    if (t.erase(rule_id)) {
      --n_rules_;
      return true;
    }
  }
  return false;
}

size_t CutSplit::memory_bytes() const {
  size_t bytes = 0;
  for (const CutTree& t : trees_) bytes += t.memory_bytes();
  // The overflow list is itself the index for inserted rules.
  bytes += overflow_.size() * sizeof(Rule);
  return bytes;
}

}  // namespace nuevomatch
