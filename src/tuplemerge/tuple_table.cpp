#include "tuplemerge/tuple_table.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/prefix.hpp"

namespace nuevomatch {

namespace {

uint64_t hash_key(const std::array<uint32_t, kNumFields>& key) noexcept {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (uint32_t v : key) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 29;
  }
  return h;
}

/// Overflow is folded into the flat layout once it exceeds this fraction of
/// the table (or this many entries on small tables). Folding costs O(table)
/// but runs once per kOverflowSlack..n/32 inserts, keeping inserts O(1)
/// amortized while the linear-scan region stays a few cache lines.
constexpr size_t kOverflowSlack = 16;

size_t bucket_count_for(size_t entries) noexcept {
  size_t want = 16;
  while (want < entries * 2) want <<= 1;  // target load ~0.5
  return want;
}

}  // namespace

int field_bits(int f) noexcept {
  switch (f) {
    case kSrcIp:
    case kDstIp: return 32;
    case kSrcPort:
    case kDstPort: return 16;
    default: return 8;
  }
}

uint32_t mask_field(uint32_t v, int field, uint8_t len) noexcept {
  const int bits = field_bits(field);
  if (len == 0) return 0;
  if (len >= bits) return v;
  return v & (~0u << (bits - len));
}

TupleMask tuple_of(const Rule& r) noexcept {
  TupleMask t;
  for (int f = 0; f < kNumFields; ++f) {
    const Range& rg = r.field[static_cast<size_t>(f)];
    const int bits = field_bits(f);
    if (rg.is_exact()) {
      t.len[static_cast<size_t>(f)] = static_cast<uint8_t>(bits);
    } else if (bits == 32) {
      const auto len = range_to_prefix_len(rg);
      t.len[static_cast<size_t>(f)] = static_cast<uint8_t>(len.value_or(0));
    } else {
      // Non-exact port/proto ranges are verified at candidate check.
      t.len[static_cast<size_t>(f)] = 0;
    }
  }
  return t;
}

TupleTable::TupleTable(TupleMask mask)
    : mask_(mask), heads_(16, 0), counts_(16, 0) {}

std::array<uint32_t, kNumFields> TupleTable::key_of(const Rule& r) const noexcept {
  std::array<uint32_t, kNumFields> key{};
  for (int f = 0; f < kNumFields; ++f)
    key[static_cast<size_t>(f)] =
        mask_field(r.field[static_cast<size_t>(f)].lo, f, mask_.len[static_cast<size_t>(f)]);
  return key;
}

size_t TupleTable::bucket_of(const std::array<uint32_t, kNumFields>& key) const noexcept {
  return hash_key(key) & (heads_.size() - 1);
}

void TupleTable::rebuild(std::vector<Entry> live) {
  n_entries_ = live.size();
  n_dead_ = 0;
  overflow_.clear();
  const size_t n_buckets = bucket_count_for(live.size());
  heads_.assign(n_buckets, 0);
  counts_.assign(n_buckets, 0);

  // Group by bucket, order by priority inside each bucket so probes can
  // terminate at the first entry that cannot beat the current best.
  std::vector<std::pair<uint32_t, uint32_t>> order;  // (bucket, index in live)
  order.reserve(live.size());
  for (uint32_t i = 0; i < live.size(); ++i)
    order.emplace_back(static_cast<uint32_t>(bucket_of(live[i].key)), i);
  std::sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return live[a.second].priority < live[b.second].priority;
  });
  entries_.clear();
  entries_.reserve(live.size());
  for (const auto& [bucket, idx] : order) {
    if (counts_[bucket] == 0) heads_[bucket] = static_cast<uint32_t>(entries_.size());
    ++counts_[bucket];
    entries_.push_back(live[idx]);
  }
  recompute_stats();
}

void TupleTable::compact() {
  std::vector<Entry> live = all_entries();
  rebuild(std::move(live));
}

void TupleTable::insert(const Rule& r, uint32_t rule_pos) {
  Entry e;
  e.key = key_of(r);
  e.rule_pos = rule_pos;
  e.priority = r.priority;
  e.exact_tuple = tuple_of(r);
  overflow_.push_back(e);
  ++n_entries_;
  best_priority_ = std::min(best_priority_, e.priority);
  // Same-key multiplicity for the split trigger: count key twins.
  size_t twins = 1;
  const size_t b = bucket_of(e.key);
  for (uint32_t i = heads_[b], c = 0; c < counts_[b]; ++i, ++c)
    if (entries_[i].rule_pos != kDead && entries_[i].key == e.key) ++twins;
  for (const Entry& o : overflow_)
    if (o.rule_pos != rule_pos && o.key == e.key) ++twins;
  max_chain_ = std::max(max_chain_, twins);

  if (overflow_.size() > std::max(kOverflowSlack, n_entries_ / 32)) compact();
}

bool TupleTable::erase(uint32_t rule_pos, const Rule& r) {
  const auto key = key_of(r);
  const size_t b = bucket_of(key);
  for (uint32_t i = heads_[b], c = 0; c < counts_[b]; ++i, ++c) {
    Entry& e = entries_[i];
    if (e.rule_pos == rule_pos && e.key == key) {
      e.rule_pos = kDead;
      --n_entries_;
      ++n_dead_;
      if (n_dead_ > n_entries_ / 2) compact();
      recompute_stats();
      return true;
    }
  }
  for (size_t i = 0; i < overflow_.size(); ++i) {
    if (overflow_[i].rule_pos == rule_pos && overflow_[i].key == key) {
      overflow_.erase(overflow_.begin() + static_cast<long>(i));
      --n_entries_;
      recompute_stats();
      return true;
    }
  }
  return false;
}

void TupleTable::probe(const Packet& p, std::vector<uint32_t>& out) const {
  std::array<uint32_t, kNumFields> key{};
  for (int f = 0; f < kNumFields; ++f)
    key[static_cast<size_t>(f)] = mask_field(p[f], f, mask_.len[static_cast<size_t>(f)]);
  const size_t b = bucket_of(key);
  for (uint32_t i = heads_[b], c = 0; c < counts_[b]; ++i, ++c) {
    const Entry& e = entries_[i];
    if (e.rule_pos != kDead && e.key == key) out.push_back(e.rule_pos);
  }
  for (const Entry& e : overflow_) {
    if (e.key == key) out.push_back(e.rule_pos);
  }
}

void TupleTable::probe_best(const Packet& p, std::span<const Rule> rules,
                            std::span<const uint8_t> alive,
                            MatchResult& best) const noexcept {
  std::array<uint32_t, kNumFields> key{};
  for (int f = 0; f < kNumFields; ++f)
    key[static_cast<size_t>(f)] = mask_field(p[f], f, mask_.len[static_cast<size_t>(f)]);
  const size_t b = bucket_of(key);
  for (uint32_t i = heads_[b], c = 0; c < counts_[b]; ++i, ++c) {
    const Entry& e = entries_[i];
    if (e.priority >= best.priority) break;  // bucket sorted by priority
    if (e.rule_pos == kDead || e.key != key) continue;
    const Rule& r = rules[e.rule_pos];
    if (alive[e.rule_pos] && r.matches(p)) {
      best.rule_id = static_cast<int32_t>(r.id);
      best.priority = r.priority;
    }
  }
  for (const Entry& e : overflow_) {
    if (e.priority >= best.priority || e.key != key) continue;
    const Rule& r = rules[e.rule_pos];
    if (alive[e.rule_pos] && r.matches(p)) {
      best.rule_id = static_cast<int32_t>(r.id);
      best.priority = r.priority;
    }
  }
}

void TupleTable::recompute_stats() noexcept {
  max_chain_ = 0;
  best_priority_ = std::numeric_limits<int32_t>::max();
  std::unordered_map<uint64_t, size_t> per_key;
  const auto account = [&](const Entry& e) {
    if (e.rule_pos == kDead) return;
    best_priority_ = std::min(best_priority_, e.priority);
    max_chain_ = std::max(max_chain_, ++per_key[hash_key(e.key)]);
  };
  for (const Entry& e : entries_) account(e);
  for (const Entry& e : overflow_) account(e);
}

std::vector<TupleTable::Entry> TupleTable::extract_tuple(const TupleMask& t) {
  std::vector<Entry> moved;
  for (Entry& e : entries_) {
    if (e.rule_pos != kDead && e.exact_tuple == t) {
      moved.push_back(e);
      e.rule_pos = kDead;
      --n_entries_;
      ++n_dead_;
    }
  }
  for (size_t i = overflow_.size(); i-- > 0;) {
    if (overflow_[i].exact_tuple == t) {
      moved.push_back(overflow_[i]);
      overflow_.erase(overflow_.begin() + static_cast<long>(i));
      --n_entries_;
    }
  }
  recompute_stats();
  return moved;
}

std::vector<TupleTable::Entry> TupleTable::all_entries() const {
  std::vector<Entry> out;
  out.reserve(n_entries_);
  for (const Entry& e : entries_) {
    if (e.rule_pos != kDead) out.push_back(e);
  }
  for (const Entry& e : overflow_) out.push_back(e);
  return out;
}

size_t TupleTable::memory_bytes() const noexcept {
  return (entries_.size() + overflow_.size()) * sizeof(Entry) +
         heads_.size() * (sizeof(uint32_t) + sizeof(uint32_t));
}

}  // namespace nuevomatch
