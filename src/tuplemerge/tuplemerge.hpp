// TupleMerge (Daly et al., ToN'19 — paper baseline "tm") and classic Tuple
// Space Search (Srinivasan et al., SIGCOMM'99 — the Open vSwitch slow path).
//
// TupleMerge reduces the number of hash tables by storing rules in tables
// with *relaxed* (less specific) masks; a collision limit (40 in the paper)
// triggers splitting an overfull table back out into an exact-tuple table.
// Tables are kept sorted by their best priority so lookups (and the
// early-termination variant, paper Section 4) stop as soon as no remaining
// table can beat the current best match. Hash tables support O(1) rule
// insertion/deletion, which is why the paper uses tm as the updatable
// remainder backend (Section 3.9).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "classifiers/classifier.hpp"
#include "tuplemerge/tuple_table.hpp"

namespace nuevomatch {

struct TupleMergeConfig {
  /// Longest tolerated bucket chain before a table is split (paper: 40).
  size_t collision_limit = 40;
  /// Relax IPv4 prefix lengths down to multiples of this granularity when
  /// creating tables, letting nearby tuples share one table.
  int ip_len_granularity = 8;
  /// Cap table IPv4 mask lengths: /32 host rules live in the /24 table and
  /// are disambiguated by the candidate check (Daly et al. Section 5.1 keeps
  /// the table population coarse for exactly this reason).
  int ip_len_cap = 24;
  /// Disable merging/relaxation to obtain classic Tuple Space Search.
  bool enable_merging = true;
};

class TupleMerge : public Classifier {
 public:
  explicit TupleMerge(TupleMergeConfig cfg = {});
  /// Deep copy (tables are cloned). The online engine's copy-on-write
  /// update layers publish cheap clones of a writer-private mirror, so the
  /// instance readers see is never mutated in place.
  TupleMerge(const TupleMerge& o);
  TupleMerge& operator=(const TupleMerge& o);
  TupleMerge(TupleMerge&&) noexcept = default;
  TupleMerge& operator=(TupleMerge&&) noexcept = default;

  void build(std::span<const Rule> rules) override;
  [[nodiscard]] MatchResult match(const Packet& p) const override;
  [[nodiscard]] MatchResult match_with_floor(const Packet& p,
                                             int32_t priority_floor) const override;

  [[nodiscard]] bool supports_updates() const override { return true; }
  /// O(1) hash insert (plus a possible table split) — the property that
  /// makes tm the paper's updatable remainder backend (§3.9).
  bool insert(const Rule& r) override;
  /// O(1) id lookup + hash-bucket removal. Falls back to a linear scan when
  /// the id is not in the map (duplicate-id inserts keep first-wins there).
  bool erase(uint32_t rule_id) override;

  [[nodiscard]] size_t memory_bytes() const override;
  [[nodiscard]] size_t size() const override { return live_rules_; }
  [[nodiscard]] std::string name() const override {
    return cfg_.enable_merging ? "tuplemerge" : "tss";
  }

  [[nodiscard]] size_t num_tables() const noexcept { return tables_.size(); }
  /// Table inventory (diagnostics, benches and tests).
  [[nodiscard]] const std::vector<std::unique_ptr<TupleTable>>& tables() const noexcept {
    return tables_;
  }

 private:
  void insert_into_tables(uint32_t rule_pos);
  void sort_tables();

  TupleMergeConfig cfg_;
  std::vector<Rule> rules_;                // rule bodies (not counted as index)
  std::vector<uint8_t> alive_;
  std::unordered_map<uint32_t, uint32_t> pos_by_id_;  // first-wins on dup ids
  size_t live_rules_ = 0;
  std::vector<std::unique_ptr<TupleTable>> tables_;  // sorted by best priority
};

/// Classic Tuple Space Search: one exact table per tuple.
class TupleSpaceSearch final : public TupleMerge {
 public:
  TupleSpaceSearch()
      : TupleMerge(TupleMergeConfig{.collision_limit = 40,
                                    .ip_len_granularity = 1,
                                    .ip_len_cap = 32,
                                    .enable_merging = false}) {}
};

}  // namespace nuevomatch
