#include "tuplemerge/tuplemerge.hpp"

#include <algorithm>

#include "common/mem.hpp"

namespace nuevomatch {

TupleMerge::TupleMerge(TupleMergeConfig cfg) : cfg_(cfg) {}

TupleMerge::TupleMerge(const TupleMerge& o)
    : cfg_(o.cfg_),
      rules_(o.rules_),
      alive_(o.alive_),
      pos_by_id_(o.pos_by_id_),
      live_rules_(o.live_rules_) {
  tables_.reserve(o.tables_.size());
  for (const auto& t : o.tables_) tables_.push_back(std::make_unique<TupleTable>(*t));
}

TupleMerge& TupleMerge::operator=(const TupleMerge& o) {
  if (this != &o) *this = TupleMerge{o};  // copy-construct, then move-assign
  return *this;
}

namespace {

/// Table mask for a new table holding rules of tuple `t`: TupleMerge relaxes
/// IPv4 lengths so similar tuples can share the table; TSS keeps `t` as-is.
/// Rounding down to a coarse granularity and capping the length keeps the
/// total table count small — the quantity that dominates lookup cost —
/// while the collision limit bounds how much relaxation can hurt.
TupleMask relaxed_mask(const TupleMask& t, const TupleMergeConfig& cfg) {
  if (!cfg.enable_merging) return t;
  TupleMask m = t;
  for (int f : {kSrcIp, kDstIp}) {
    const int g = std::max(1, cfg.ip_len_granularity);
    m.len[static_cast<size_t>(f)] = static_cast<uint8_t>(
        std::min(cfg.ip_len_cap, m.len[static_cast<size_t>(f)] / g * g));
  }
  return m;
}

}  // namespace

void TupleMerge::build(std::span<const Rule> rules) {
  rules_.assign(rules.begin(), rules.end());
  alive_.assign(rules_.size(), 1);
  live_rules_ = rules_.size();
  pos_by_id_.clear();
  pos_by_id_.reserve(rules_.size());
  for (uint32_t i = 0; i < rules_.size(); ++i) pos_by_id_.emplace(rules_[i].id, i);
  tables_.clear();
  // Priority order makes early termination effective from the start.
  std::vector<uint32_t> order(rules_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return rules_[a].priority < rules_[b].priority;
  });
  for (uint32_t pos : order) insert_into_tables(pos);
  // Fold every table's update region into its flat layout: bulk build must
  // leave nothing on the linear-scan path.
  for (auto& tbl : tables_) tbl->compact();
  sort_tables();
}

void TupleMerge::insert_into_tables(uint32_t rule_pos) {
  const Rule& r = rules_[rule_pos];
  const TupleMask t = tuple_of(r);

  // Most specific existing table that can hold this rule.
  TupleTable* best = nullptr;
  for (auto& tbl : tables_) {
    if (!tbl->mask().covers(t)) continue;
    if (!cfg_.enable_merging && !(tbl->mask() == t)) continue;
    if (best == nullptr || tbl->mask().specificity() > best->mask().specificity())
      best = tbl.get();
  }
  if (best == nullptr) {
    tables_.push_back(std::make_unique<TupleTable>(relaxed_mask(t, cfg_)));
    best = tables_.back().get();
  }
  best->insert(r, rule_pos);

  // TupleMerge split: an overfull relaxed table spills the colliding tuple
  // back into its own exact table.
  if (cfg_.enable_merging && best->max_collisions() > cfg_.collision_limit &&
      !(best->mask() == t)) {
    auto moved = best->extract_tuple(t);
    if (!moved.empty()) {
      tables_.push_back(std::make_unique<TupleTable>(t));
      TupleTable* fresh = tables_.back().get();
      for (const auto& e : moved) fresh->insert(rules_[e.rule_pos], e.rule_pos);
    }
  }
}

void TupleMerge::sort_tables() {
  std::sort(tables_.begin(), tables_.end(), [](const auto& a, const auto& b) {
    return a->best_priority() < b->best_priority();
  });
}

MatchResult TupleMerge::match(const Packet& p) const {
  return match_with_floor(p, std::numeric_limits<int32_t>::max());
}

MatchResult TupleMerge::match_with_floor(const Packet& p, int32_t priority_floor) const {
  MatchResult best;
  best.priority = priority_floor;  // acts as the pruning bound; not a hit yet
  for (const auto& tbl : tables_) {
    if (tbl->best_priority() >= best.priority) break;  // sorted: nothing better left
    tbl->probe_best(p, rules_, alive_, best);
  }
  return best.rule_id != MatchResult::kNoMatch ? best : MatchResult{};
}

bool TupleMerge::insert(const Rule& r) {
  rules_.push_back(r);
  alive_.push_back(1);
  ++live_rules_;
  const auto pos = static_cast<uint32_t>(rules_.size() - 1);
  pos_by_id_.emplace(r.id, pos);  // emplace keeps the oldest on dup ids
  insert_into_tables(pos);
  sort_tables();
  return true;
}

bool TupleMerge::erase(uint32_t rule_id) {
  uint32_t pos = 0;
  const auto it = pos_by_id_.find(rule_id);
  if (it != pos_by_id_.end()) {
    pos = it->second;
  } else {
    // Not mapped: either absent, already erased, or a duplicate id whose
    // mapped occurrence was erased earlier. Match the legacy semantics
    // (first *alive* occurrence) with a scan.
    while (pos < rules_.size() && !(rules_[pos].id == rule_id && alive_[pos])) ++pos;
    if (pos == rules_.size()) return false;
  }
  if (!alive_[pos]) return false;
  for (auto& tbl : tables_) {
    const int32_t best_before = tbl->best_priority();
    if (tbl->erase(pos, rules_[pos])) {
      alive_[pos] = 0;
      --live_rules_;
      if (it != pos_by_id_.end()) pos_by_id_.erase(it);
      // Erasing a table's best rule RAISES its best_priority, breaking the
      // ascending order match_with_floor's early-termination break relies
      // on — later tables with better rules would be skipped. Restore it
      // (only when the bound actually moved: this runs inside the online
      // writer's generation-exclusive section).
      if (tbl->best_priority() != best_before) sort_tables();
      return true;
    }
  }
  return false;
}

size_t TupleMerge::memory_bytes() const {
  size_t bytes = tables_.size() * sizeof(TupleTable);
  for (const auto& t : tables_) bytes += t->memory_bytes();
  bytes += map_overhead_bytes(pos_by_id_);
  return bytes;
}

}  // namespace nuevomatch
