// TupleSpaceSearch is TupleMerge with merging disabled (see tuplemerge.hpp).
// This translation unit exists to give the class its own home for future
// divergence (e.g. OVS-style staged lookups) and to anchor the vtable.
#include "tuplemerge/tuplemerge.hpp"

namespace nuevomatch {
// Currently header-only; implementation shared with TupleMerge.
}  // namespace nuevomatch
