// Shared machinery for tuple-space classifiers (Srinivasan et al. '99;
// Daly et al. TupleMerge '19): rules whose fields share a prefix-length
// tuple live in one hash table keyed by the masked field values.
//
// Arbitrary ranges (ports) participate as exact (len 16/8) when lo==hi and
// as wildcard (len 0) otherwise; the candidate check against the full rule
// removes false positives — the classic tuple-space treatment of ranges.
//
// Storage layout: bucket headers index a flat entry array in which each
// bucket's entries are contiguous and sorted by priority. A probe is one
// header load plus a linear walk that stops at the first entry that cannot
// beat the current best match — the same "pack values densely, terminate
// early" treatment the paper applies to its own secondary search (§4).
// Updates append to a small per-table overflow region that is folded back
// into the flat layout once it grows past a threshold, keeping inserts O(1)
// amortized (TupleMerge's selling point as the updatable remainder, §3.9).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace nuevomatch {

/// Per-field significant-bit counts defining one tuple.
struct TupleMask {
  std::array<uint8_t, kNumFields> len{};

  /// True when every field of *this is no more specific than `o` — rules of
  /// tuple `o` can be stored in a table masked by *this.
  [[nodiscard]] bool covers(const TupleMask& o) const noexcept {
    for (int f = 0; f < kNumFields; ++f)
      if (len[static_cast<size_t>(f)] > o.len[static_cast<size_t>(f)]) return false;
    return true;
  }
  [[nodiscard]] int specificity() const noexcept {
    int s = 0;
    for (uint8_t l : len) s += l;
    return s;
  }
  friend bool operator==(const TupleMask&, const TupleMask&) = default;
};

/// Field bit-width (32/32/16/16/8 for the classic 5-tuple).
[[nodiscard]] int field_bits(int f) noexcept;

/// Keep the `len` most significant bits of a field value.
[[nodiscard]] uint32_t mask_field(uint32_t v, int field, uint8_t len) noexcept;

/// The natural tuple of a rule: exact prefix length per field, or 0 for
/// fields whose range is not a prefix block.
[[nodiscard]] TupleMask tuple_of(const Rule& r) noexcept;

/// One hash table holding rules under a common mask.
class TupleTable {
 public:
  explicit TupleTable(TupleMask mask);

  struct Entry {
    std::array<uint32_t, kNumFields> key{};
    uint32_t rule_pos = kDead;  // position in the owning classifier's rule array
    int32_t priority = 0;
    TupleMask exact_tuple{};  // the rule's own tuple (used when splitting)
  };
  static constexpr uint32_t kDead = std::numeric_limits<uint32_t>::max();

  void insert(const Rule& r, uint32_t rule_pos);
  bool erase(uint32_t rule_pos, const Rule& r);

  /// Probe with a packet; appends candidate rule positions to `out`.
  void probe(const Packet& p, std::vector<uint32_t>& out) const;

  /// Allocation-free probe: fold every full-matching candidate better than
  /// `best` directly into `best` (the classifier's hot path).
  void probe_best(const Packet& p, std::span<const Rule> rules,
                  std::span<const uint8_t> alive, MatchResult& best) const noexcept;

  /// Most rules sharing one masked key (TupleMerge's split trigger — rules
  /// that genuinely collide must all be walked by a matching probe).
  [[nodiscard]] size_t max_collisions() const noexcept { return max_chain_; }
  [[nodiscard]] const TupleMask& mask() const noexcept { return mask_; }
  [[nodiscard]] size_t size() const noexcept { return n_entries_; }
  [[nodiscard]] int32_t best_priority() const noexcept { return best_priority_; }
  [[nodiscard]] size_t memory_bytes() const noexcept;

  /// Remove and return all entries whose exact tuple equals `t`.
  [[nodiscard]] std::vector<Entry> extract_tuple(const TupleMask& t);

  /// All entries (rebuild support).
  [[nodiscard]] std::vector<Entry> all_entries() const;

  /// Fold overflow into the flat layout and drop tombstones.
  void compact();

 private:
  [[nodiscard]] std::array<uint32_t, kNumFields> key_of(const Rule& r) const noexcept;
  [[nodiscard]] size_t bucket_of(const std::array<uint32_t, kNumFields>& key) const noexcept;
  void rebuild(std::vector<Entry> live);
  void recompute_stats() noexcept;

  TupleMask mask_;
  // Flat region: per-bucket contiguous, priority-sorted entries.
  std::vector<uint32_t> heads_;   // bucket -> first entry; power-of-two size
  std::vector<uint32_t> counts_;  // bucket -> entry count
  std::vector<Entry> entries_;
  // Update region: recent inserts, folded in by compact().
  std::vector<Entry> overflow_;
  size_t n_entries_ = 0;
  size_t n_dead_ = 0;  // tombstones inside entries_
  size_t max_chain_ = 0;  // max same-key multiplicity
  int32_t best_priority_ = std::numeric_limits<int32_t>::max();
};

}  // namespace nuevomatch
