#include "rqrmi/trainer.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace nuevomatch::rqrmi {

namespace {

constexpr int kParams = 3 * kHiddenWidth + 1;  // w1, b1, w2, b2

/// Dense symmetric positive-definite solve via Cholesky with a ridge term.
/// Returns false if the matrix is not SPD even after regularization.
bool cholesky_solve(std::array<double, 9 * 9>& a, std::array<double, 9>& b, int n) {
  std::array<double, 9 * 9> l{};
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a[static_cast<size_t>(i * 9 + j)];
      for (int k = 0; k < j; ++k)
        sum -= l[static_cast<size_t>(i * 9 + k)] * l[static_cast<size_t>(j * 9 + k)];
      if (i == j) {
        if (sum <= 0.0) return false;
        l[static_cast<size_t>(i * 9 + j)] = std::sqrt(sum);
      } else {
        l[static_cast<size_t>(i * 9 + j)] = sum / l[static_cast<size_t>(j * 9 + j)];
      }
    }
  }
  // Forward substitution L z = b, then backward L^T x = z.
  std::array<double, 9> z{};
  for (int i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) sum -= l[static_cast<size_t>(i * 9 + k)] * z[static_cast<size_t>(k)];
    z[static_cast<size_t>(i)] = sum / l[static_cast<size_t>(i * 9 + i)];
  }
  for (int i = n - 1; i >= 0; --i) {
    double sum = z[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k)
      sum -= l[static_cast<size_t>(k * 9 + i)] * b[static_cast<size_t>(k)];
    b[static_cast<size_t>(i)] = sum / l[static_cast<size_t>(i * 9 + i)];
  }
  return true;
}

/// Least-squares fit of the output layer with ReLU knots at x-quantiles:
/// basis phi_k(x) = relu(x - q_k) (w1 = 1), plus a constant column.
Submodel least_squares_init(std::span<const TrainSample> samples) {
  Submodel m;
  std::vector<double> xs;
  xs.reserve(samples.size());
  for (const TrainSample& s : samples) xs.push_back(s.x);
  std::sort(xs.begin(), xs.end());

  std::array<double, kHiddenWidth> knots{};
  for (int k = 0; k < kHiddenWidth; ++k) {
    const size_t pos = xs.size() * static_cast<size_t>(k) / kHiddenWidth;
    knots[static_cast<size_t>(k)] = xs[std::min(pos, xs.size() - 1)];
  }
  // Shift the first knot slightly below min(x) so the first basis function is
  // active over the whole dataset (gives the fit an affine component).
  knots[0] -= 1e-6;

  constexpr int n = kHiddenWidth + 1;  // 8 basis weights + bias
  std::array<double, 9 * 9> ata{};
  std::array<double, 9> aty{};
  std::array<double, 9> phi{};
  for (const TrainSample& s : samples) {
    for (int k = 0; k < kHiddenWidth; ++k)
      phi[static_cast<size_t>(k)] = std::max(0.0, s.x - knots[static_cast<size_t>(k)]);
    phi[kHiddenWidth] = 1.0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j <= i; ++j)
        ata[static_cast<size_t>(i * 9 + j)] += phi[static_cast<size_t>(i)] * phi[static_cast<size_t>(j)];
      aty[static_cast<size_t>(i)] += phi[static_cast<size_t>(i)] * s.y;
    }
  }
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      ata[static_cast<size_t>(i * 9 + j)] = ata[static_cast<size_t>(j * 9 + i)];

  // Ridge-regularized solve; escalate the ridge until SPD.
  std::array<double, 9> sol{};
  for (double ridge = 1e-8; ridge < 1.0; ridge *= 100.0) {
    std::array<double, 9 * 9> a = ata;
    for (int i = 0; i < n; ++i) a[static_cast<size_t>(i * 9 + i)] += ridge;
    sol = aty;
    if (cholesky_solve(a, sol, n)) break;
    sol = {};  // retry with a larger ridge
  }

  for (int k = 0; k < kHiddenWidth; ++k) {
    m.w1[static_cast<size_t>(k)] = 1.0f;
    m.b1[static_cast<size_t>(k)] = static_cast<float>(-knots[static_cast<size_t>(k)]);
    m.w2[static_cast<size_t>(k)] = static_cast<float>(sol[static_cast<size_t>(k)]);
  }
  m.b2 = static_cast<float>(sol[kHiddenWidth]);
  return m;
}

struct AdamState {
  std::array<double, kParams> p{};  // parameters
  std::array<double, kParams> m{};  // first moment
  std::array<double, kParams> v{};  // second moment
};

void pack(const Submodel& sm, std::array<double, kParams>& p) {
  for (int k = 0; k < kHiddenWidth; ++k) {
    p[static_cast<size_t>(k)] = sm.w1[static_cast<size_t>(k)];
    p[static_cast<size_t>(kHiddenWidth + k)] = sm.b1[static_cast<size_t>(k)];
    p[static_cast<size_t>(2 * kHiddenWidth + k)] = sm.w2[static_cast<size_t>(k)];
  }
  p[3 * kHiddenWidth] = sm.b2;
}

Submodel unpack(const std::array<double, kParams>& p) {
  Submodel sm;
  for (int k = 0; k < kHiddenWidth; ++k) {
    sm.w1[static_cast<size_t>(k)] = static_cast<float>(p[static_cast<size_t>(k)]);
    sm.b1[static_cast<size_t>(k)] = static_cast<float>(p[static_cast<size_t>(kHiddenWidth + k)]);
    sm.w2[static_cast<size_t>(k)] = static_cast<float>(p[static_cast<size_t>(2 * kHiddenWidth + k)]);
  }
  sm.b2 = static_cast<float>(p[3 * kHiddenWidth]);
  return sm;
}

double loss_and_grad(const std::array<double, kParams>& p,
                     std::span<const TrainSample> samples,
                     std::array<double, kParams>& grad) {
  grad.fill(0.0);
  double loss = 0.0;
  const double inv_n = 1.0 / static_cast<double>(samples.size());
  for (const TrainSample& s : samples) {
    double f = p[3 * kHiddenWidth];
    std::array<double, kHiddenWidth> h{};
    for (int k = 0; k < kHiddenWidth; ++k) {
      const double z = p[static_cast<size_t>(k)] * s.x + p[static_cast<size_t>(kHiddenWidth + k)];
      h[static_cast<size_t>(k)] = z > 0.0 ? z : 0.0;
      f += p[static_cast<size_t>(2 * kHiddenWidth + k)] * h[static_cast<size_t>(k)];
    }
    const double e = f - s.y;
    loss += e * e;
    const double d = 2.0 * e * inv_n;
    grad[3 * kHiddenWidth] += d;
    for (int k = 0; k < kHiddenWidth; ++k) {
      grad[static_cast<size_t>(2 * kHiddenWidth + k)] += d * h[static_cast<size_t>(k)];
      if (h[static_cast<size_t>(k)] > 0.0) {
        const double w2 = p[static_cast<size_t>(2 * kHiddenWidth + k)];
        grad[static_cast<size_t>(k)] += d * w2 * s.x;
        grad[static_cast<size_t>(kHiddenWidth + k)] += d * w2;
      }
    }
  }
  return loss * inv_n;
}

}  // namespace

Submodel fit_submodel(std::span<const TrainSample> samples, const TrainerConfig& cfg) {
  if (samples.empty()) return Submodel{};

  Submodel init = least_squares_init(samples);
  if (cfg.adam_epochs <= 0) return init;

  AdamState st;
  pack(init, st.p);
  std::array<double, kParams> grad{};
  std::array<double, kParams> best_p = st.p;
  double best_loss = loss_and_grad(st.p, samples, grad);

  constexpr double beta1 = 0.9;
  constexpr double beta2 = 0.999;
  constexpr double eps = 1e-8;
  double b1t = 1.0;
  double b2t = 1.0;
  for (int epoch = 0; epoch < cfg.adam_epochs; ++epoch) {
    const double loss = loss_and_grad(st.p, samples, grad);
    if (loss < best_loss) {
      best_loss = loss;
      best_p = st.p;
    }
    b1t *= beta1;
    b2t *= beta2;
    for (int i = 0; i < kParams; ++i) {
      auto idx = static_cast<size_t>(i);
      st.m[idx] = beta1 * st.m[idx] + (1.0 - beta1) * grad[idx];
      st.v[idx] = beta2 * st.v[idx] + (1.0 - beta2) * grad[idx] * grad[idx];
      const double mhat = st.m[idx] / (1.0 - b1t);
      const double vhat = st.v[idx] / (1.0 - b2t);
      st.p[idx] -= cfg.learning_rate * mhat / (std::sqrt(vhat) + eps);
    }
  }
  // Keep whichever parameters achieved the lowest loss (Adam may overshoot).
  const double final_loss = loss_and_grad(st.p, samples, grad);
  return unpack(final_loss < best_loss ? st.p : best_p);
}

double mse(const Submodel& m, std::span<const TrainSample> samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (const TrainSample& s : samples) {
    const double e = eval_raw(m, s.x) - s.y;
    acc += e * e;
  }
  return acc / static_cast<double>(samples.size());
}

double float_eval_deviation(const Submodel& m) noexcept {
  // Term magnitudes over x in [0,1]: |w2_k| * max(0, |w1_k| + |b1_k|).
  double term_sum = std::abs(static_cast<double>(m.b2));
  for (int k = 0; k < kHiddenWidth; ++k) {
    const double zmax = std::abs(static_cast<double>(m.w1[static_cast<size_t>(k)])) +
                        std::abs(static_cast<double>(m.b1[static_cast<size_t>(k)]));
    term_sum += std::abs(static_cast<double>(m.w2[static_cast<size_t>(k)])) * zmax;
  }
  // Per-term rounding (~2 ulp) plus any summation order of <= 10 adds:
  // conservative factor 16 * machine epsilon * total magnitude.
  constexpr double kFloatEps = 1.1920929e-7;
  return 16.0 * kFloatEps * term_sum;
}

}  // namespace nuevomatch::rqrmi
