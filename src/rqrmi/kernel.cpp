#include "rqrmi/kernel.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rqrmi/arch.hpp"
#include "rqrmi/model.hpp"

#if NM_X86_KERNELS
#include <immintrin.h>
#endif

namespace nuevomatch::rqrmi {

// ---------------------------------------------------------------------------
// AlignedFloats
// ---------------------------------------------------------------------------

void AlignedFloats::resize(size_t n) {
  if (n == 0) {
    clear();
    return;
  }
  p_.reset(static_cast<float*>(
      ::operator new[](n * sizeof(float), std::align_val_t{64})));
  n_ = n;
}

void AlignedFloats::assign(const float* src, size_t n) {
  resize(n);
  if (n > 0) std::memcpy(p_.get(), src, n * sizeof(float));
}

// ---------------------------------------------------------------------------
// FlatArena
// ---------------------------------------------------------------------------

void FlatArena::clear() {
  stages_.clear();
  data_.clear();
  leaf_errors_.clear();
  n_values_ = 0;
  n_scale_ = 0.0f;
}

void FlatArena::build(const std::vector<std::vector<Submodel>>& stages,
                      const std::vector<uint32_t>& leaf_errors, size_t n_values) {
  clear();
  if (stages.empty()) return;

  // Lay blocks out back to back, each starting on a fresh cache line so a
  // gather base pointer never straddles two blocks' lines.
  constexpr size_t kLineFloats = 16;
  size_t off = 0;
  const auto block = [&off](size_t count) {
    const size_t o = off;
    off += (count + kLineFloats - 1) / kLineFloats * kLineFloats;
    return o;
  };
  stages_.resize(stages.size());
  for (size_t s = 0; s < stages.size(); ++s) {
    const auto width = static_cast<uint32_t>(stages[s].size());
    Stage& st = stages_[s];
    st.width = width;
    const size_t wide = static_cast<size_t>(kHiddenWidth) * width;
    st.w1 = block(wide);
    st.b1 = block(wide);
    st.w2 = block(wide);
    st.b2 = block(width);
  }
  data_.resize(off);
  std::memset(data_.data(), 0, off * sizeof(float));
  for (size_t s = 0; s < stages.size(); ++s) {
    const Stage& st = stages_[s];
    float* d = data_.data();
    for (size_t j = 0; j < stages[s].size(); ++j) {
      const Submodel& m = stages[s][j];
      for (size_t k = 0; k < static_cast<size_t>(kHiddenWidth); ++k) {
        d[st.w1 + k * st.width + j] = m.w1[k];
        d[st.b1 + k * st.width + j] = m.b1[k];
        d[st.w2 + k * st.width + j] = m.w2[k];
      }
      d[st.b2 + j] = m.b2;
    }
  }
  leaf_errors_.assign(stages.back().size(), 0);
  for (size_t i = 0; i < leaf_errors.size() && i < leaf_errors_.size(); ++i)
    leaf_errors_[i] = leaf_errors[i];
  n_values_ = static_cast<uint32_t>(n_values);
  n_scale_ = static_cast<float>(n_values);
}

size_t FlatArena::memory_bytes() const noexcept {
  return data_.size() * sizeof(float) + leaf_errors_.size() * sizeof(uint32_t) +
         stages_.size() * sizeof(Stage);
}

// ---------------------------------------------------------------------------
// Kernels. Every lane reproduces the scalar serial arithmetic exactly:
// acc = b2; for k: z = w1[k]*x + b1[k]; relu; acc += w2[k]*z — in that order,
// mul and add unfused (the library builds with -ffp-contract=off, and the
// SIMD bodies use separate mul/add intrinsics under targets without FMA).
// ---------------------------------------------------------------------------

namespace {

Prediction lookup_one_flat(const FlatArena& a, float x) noexcept {
  const float* d = a.data();
  const size_t n_stages = a.num_stages();
  uint32_t j = 0;
  uint32_t leaf = 0;
  for (size_t s = 0; s < n_stages; ++s) {
    const FlatArena::Stage& st = a.stage(s);
    float acc = d[st.b2 + j];
    for (size_t k = 0; k < static_cast<size_t>(kHiddenWidth); ++k) {
      const float z = d[st.w1 + k * st.width + j] * x + d[st.b1 + k * st.width + j];
      if (z > 0.0f) acc += d[st.w2 + k * st.width + j] * z;
    }
    const float y = clamp_unit(acc);
    if (s + 1 < n_stages) {
      const uint32_t width = a.stage(s + 1).width;
      j = static_cast<uint32_t>(y * static_cast<float>(width));
      if (j >= width) j = width - 1;
      leaf = j;
    } else {
      auto idx = static_cast<uint32_t>(y * a.n_scale());
      if (idx >= a.n_values()) idx = a.n_values() - 1;
      return Prediction{idx, a.leaf_errors()[leaf]};
    }
  }
  return Prediction{};
}

void batch_scalar(const FlatArena& a, const float* keys, size_t n,
                  Prediction* out) noexcept {
  for (size_t i = 0; i < n; ++i) out[i] = lookup_one_flat(a, keys[i]);
}

#if NM_X86_KERNELS

/// 4 lanes per iteration. SSE2 has no gather; per-lane weight fetches are
/// assembled with setr from scalar loads (still one stage walk for 4 keys,
/// and the transposed layout keeps the 4 loads of one neuron on one line for
/// narrow stages). Processes floor(n/4)*4 keys; returns the count handled.
__attribute__((target("sse2"))) size_t batch_sse2(const FlatArena& a,
                                                  const float* keys, size_t n,
                                                  Prediction* out) noexcept {
  const float* d = a.data();
  const size_t n_stages = a.num_stages();
  const __m128 zero = _mm_setzero_ps();
  const __m128 one_below = _mm_set1_ps(kOneBelow);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 x = _mm_loadu_ps(keys + i);
    uint32_t j[4] = {0, 0, 0, 0};
    uint32_t leaf[4] = {0, 0, 0, 0};
    for (size_t s = 0; s < n_stages; ++s) {
      const FlatArena::Stage& st = a.stage(s);
      __m128 acc;
      if (st.width == 1) {
        acc = _mm_set1_ps(d[st.b2]);
        for (size_t k = 0; k < static_cast<size_t>(kHiddenWidth); ++k) {
          __m128 z = _mm_add_ps(_mm_mul_ps(_mm_set1_ps(d[st.w1 + k]), x),
                                _mm_set1_ps(d[st.b1 + k]));
          z = _mm_max_ps(z, zero);
          acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(d[st.w2 + k]), z));
        }
      } else {
        acc = _mm_setr_ps(d[st.b2 + j[0]], d[st.b2 + j[1]], d[st.b2 + j[2]],
                          d[st.b2 + j[3]]);
        for (size_t k = 0; k < static_cast<size_t>(kHiddenWidth); ++k) {
          const size_t w1o = st.w1 + k * st.width;
          const size_t b1o = st.b1 + k * st.width;
          const size_t w2o = st.w2 + k * st.width;
          const __m128 w1 = _mm_setr_ps(d[w1o + j[0]], d[w1o + j[1]],
                                        d[w1o + j[2]], d[w1o + j[3]]);
          const __m128 b1 = _mm_setr_ps(d[b1o + j[0]], d[b1o + j[1]],
                                        d[b1o + j[2]], d[b1o + j[3]]);
          __m128 z = _mm_add_ps(_mm_mul_ps(w1, x), b1);
          z = _mm_max_ps(z, zero);
          const __m128 w2 = _mm_setr_ps(d[w2o + j[0]], d[w2o + j[1]],
                                        d[w2o + j[2]], d[w2o + j[3]]);
          acc = _mm_add_ps(acc, _mm_mul_ps(w2, z));
        }
      }
      const __m128 y = _mm_min_ps(_mm_max_ps(acc, zero), one_below);
      alignas(16) int32_t lane[4];
      if (s + 1 < n_stages) {
        const uint32_t width = a.stage(s + 1).width;
        const __m128i nj =
            _mm_cvttps_epi32(_mm_mul_ps(y, _mm_set1_ps(static_cast<float>(width))));
        _mm_store_si128(reinterpret_cast<__m128i*>(lane), nj);
        for (int t = 0; t < 4; ++t) {
          uint32_t v = static_cast<uint32_t>(lane[t]);
          if (v >= width) v = width - 1;
          j[t] = v;
          leaf[t] = v;
        }
      } else {
        const __m128i idx = _mm_cvttps_epi32(_mm_mul_ps(y, _mm_set1_ps(a.n_scale())));
        _mm_store_si128(reinterpret_cast<__m128i*>(lane), idx);
        for (int t = 0; t < 4; ++t) {
          uint32_t v = static_cast<uint32_t>(lane[t]);
          if (v >= a.n_values()) v = a.n_values() - 1;
          out[i + static_cast<size_t>(t)] =
              Prediction{v, a.leaf_errors()[leaf[t]]};
        }
      }
    }
  }
  return i;
}

/// 8 lanes per group: per-lane submodel selection via AVX2 gathers over the
/// transposed blocks. The main loop interleaves TWO independent 8-lane
/// groups (16 keys per iteration): the stage walk of one group is a serial
/// dependency chain (gathers -> arithmetic -> routing -> next stage's
/// gathers), so a second in-flight chain roughly doubles the ILP without
/// changing any lane's arithmetic. Processes floor(n/8)*8 keys; returns the
/// count handled. After the last routing step `j` IS the leaf index, so the
/// error table is gathered with it directly.
__attribute__((target("avx2"))) size_t batch_avx2(const FlatArena& a,
                                                   const float* keys, size_t n,
                                                   Prediction* out) noexcept {
  const float* d = a.data();
  const size_t n_stages = a.num_stages();
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one_below = _mm256_set1_ps(kOneBelow);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 xA = _mm256_loadu_ps(keys + i);
    const __m256 xB = _mm256_loadu_ps(keys + i + 8);
    __m256i jA = _mm256_setzero_si256();
    __m256i jB = _mm256_setzero_si256();
    for (size_t s = 0; s < n_stages; ++s) {
      const FlatArena::Stage& st = a.stage(s);
      __m256 accA;
      __m256 accB;
      if (st.width == 1) {
        accA = _mm256_set1_ps(d[st.b2]);
        accB = accA;
        for (size_t k = 0; k < static_cast<size_t>(kHiddenWidth); ++k) {
          const __m256 w1 = _mm256_set1_ps(d[st.w1 + k]);
          const __m256 b1 = _mm256_set1_ps(d[st.b1 + k]);
          const __m256 w2 = _mm256_set1_ps(d[st.w2 + k]);
          __m256 zA = _mm256_add_ps(_mm256_mul_ps(w1, xA), b1);
          __m256 zB = _mm256_add_ps(_mm256_mul_ps(w1, xB), b1);
          zA = _mm256_max_ps(zA, zero);
          zB = _mm256_max_ps(zB, zero);
          accA = _mm256_add_ps(accA, _mm256_mul_ps(w2, zA));
          accB = _mm256_add_ps(accB, _mm256_mul_ps(w2, zB));
        }
      } else {
        accA = _mm256_i32gather_ps(d + st.b2, jA, 4);
        accB = _mm256_i32gather_ps(d + st.b2, jB, 4);
        for (size_t k = 0; k < static_cast<size_t>(kHiddenWidth); ++k) {
          const __m256 w1A = _mm256_i32gather_ps(d + st.w1 + k * st.width, jA, 4);
          const __m256 w1B = _mm256_i32gather_ps(d + st.w1 + k * st.width, jB, 4);
          const __m256 b1A = _mm256_i32gather_ps(d + st.b1 + k * st.width, jA, 4);
          const __m256 b1B = _mm256_i32gather_ps(d + st.b1 + k * st.width, jB, 4);
          __m256 zA = _mm256_add_ps(_mm256_mul_ps(w1A, xA), b1A);
          __m256 zB = _mm256_add_ps(_mm256_mul_ps(w1B, xB), b1B);
          zA = _mm256_max_ps(zA, zero);
          zB = _mm256_max_ps(zB, zero);
          const __m256 w2A = _mm256_i32gather_ps(d + st.w2 + k * st.width, jA, 4);
          const __m256 w2B = _mm256_i32gather_ps(d + st.w2 + k * st.width, jB, 4);
          accA = _mm256_add_ps(accA, _mm256_mul_ps(w2A, zA));
          accB = _mm256_add_ps(accB, _mm256_mul_ps(w2B, zB));
        }
      }
      const __m256 yA = _mm256_min_ps(_mm256_max_ps(accA, zero), one_below);
      const __m256 yB = _mm256_min_ps(_mm256_max_ps(accB, zero), one_below);
      if (s + 1 < n_stages) {
        const uint32_t width = a.stage(s + 1).width;
        const __m256 w = _mm256_set1_ps(static_cast<float>(width));
        const __m256i cap = _mm256_set1_epi32(static_cast<int32_t>(width) - 1);
        jA = _mm256_min_epi32(_mm256_cvttps_epi32(_mm256_mul_ps(yA, w)), cap);
        jB = _mm256_min_epi32(_mm256_cvttps_epi32(_mm256_mul_ps(yB, w)), cap);
      } else {
        const __m256 ns = _mm256_set1_ps(a.n_scale());
        const __m256i cap = _mm256_set1_epi32(static_cast<int32_t>(a.n_values()) - 1);
        const __m256i idxA = _mm256_min_epi32(_mm256_cvttps_epi32(_mm256_mul_ps(yA, ns)), cap);
        const __m256i idxB = _mm256_min_epi32(_mm256_cvttps_epi32(_mm256_mul_ps(yB, ns)), cap);
        const auto* errs = reinterpret_cast<const int32_t*>(a.leaf_errors());
        const __m256i errA = _mm256_i32gather_epi32(errs, jA, 4);
        const __m256i errB = _mm256_i32gather_epi32(errs, jB, 4);
        alignas(32) int32_t idx_lane[16];
        alignas(32) int32_t err_lane[16];
        _mm256_store_si256(reinterpret_cast<__m256i*>(idx_lane), idxA);
        _mm256_store_si256(reinterpret_cast<__m256i*>(idx_lane + 8), idxB);
        _mm256_store_si256(reinterpret_cast<__m256i*>(err_lane), errA);
        _mm256_store_si256(reinterpret_cast<__m256i*>(err_lane + 8), errB);
        for (int t = 0; t < 16; ++t)
          out[i + static_cast<size_t>(t)] =
              Prediction{static_cast<uint32_t>(idx_lane[t]),
                         static_cast<uint32_t>(err_lane[t])};
      }
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(keys + i);
    __m256i j = _mm256_setzero_si256();
    for (size_t s = 0; s < n_stages; ++s) {
      const FlatArena::Stage& st = a.stage(s);
      __m256 acc;
      if (st.width == 1) {
        acc = _mm256_set1_ps(d[st.b2]);
        for (size_t k = 0; k < static_cast<size_t>(kHiddenWidth); ++k) {
          __m256 z = _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(d[st.w1 + k]), x),
                                   _mm256_set1_ps(d[st.b1 + k]));
          z = _mm256_max_ps(z, zero);
          acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(d[st.w2 + k]), z));
        }
      } else {
        acc = _mm256_i32gather_ps(d + st.b2, j, 4);
        for (size_t k = 0; k < static_cast<size_t>(kHiddenWidth); ++k) {
          const __m256 w1 = _mm256_i32gather_ps(d + st.w1 + k * st.width, j, 4);
          const __m256 b1 = _mm256_i32gather_ps(d + st.b1 + k * st.width, j, 4);
          __m256 z = _mm256_add_ps(_mm256_mul_ps(w1, x), b1);
          z = _mm256_max_ps(z, zero);
          const __m256 w2 = _mm256_i32gather_ps(d + st.w2 + k * st.width, j, 4);
          acc = _mm256_add_ps(acc, _mm256_mul_ps(w2, z));
        }
      }
      const __m256 y = _mm256_min_ps(_mm256_max_ps(acc, zero), one_below);
      if (s + 1 < n_stages) {
        const uint32_t width = a.stage(s + 1).width;
        j = _mm256_min_epi32(
            _mm256_cvttps_epi32(
                _mm256_mul_ps(y, _mm256_set1_ps(static_cast<float>(width)))),
            _mm256_set1_epi32(static_cast<int32_t>(width) - 1));
      } else {
        __m256i idx = _mm256_cvttps_epi32(_mm256_mul_ps(y, _mm256_set1_ps(a.n_scale())));
        idx = _mm256_min_epi32(
            idx, _mm256_set1_epi32(static_cast<int32_t>(a.n_values()) - 1));
        const __m256i err = _mm256_i32gather_epi32(
            reinterpret_cast<const int32_t*>(a.leaf_errors()), j, 4);
        alignas(32) int32_t idx_lane[8];
        alignas(32) int32_t err_lane[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(idx_lane), idx);
        _mm256_store_si256(reinterpret_cast<__m256i*>(err_lane), err);
        for (int t = 0; t < 8; ++t)
          out[i + static_cast<size_t>(t)] =
              Prediction{static_cast<uint32_t>(idx_lane[t]),
                         static_cast<uint32_t>(err_lane[t])};
      }
    }
  }
  return i;
}

#endif  // NM_X86_KERNELS

/// Parse the NM_SIMD_MAX environment cap once. An unrecognized value caps to
/// serial and warns: the variable exists to *restrict* dispatch (CI coverage
/// of the narrow paths), so a typo must never silently un-cap it.
SimdLevel env_cap() noexcept {
  const char* env = std::getenv("NM_SIMD_MAX");
  if (env == nullptr) return SimdLevel::kAvx;
  const std::string v{env};
  if (v == "serial") return SimdLevel::kSerial;
  if (v == "sse") return SimdLevel::kSse;
  if (v == "avx") return SimdLevel::kAvx;
  std::fprintf(stderr,
               "nuevomatch: unknown NM_SIMD_MAX value \"%s\" "
               "(expected serial|sse|avx); capping dispatch to serial\n",
               env);
  return SimdLevel::kSerial;
}

// __builtin_cpu_supports requires literal arguments; one helper per feature.
bool cpu_has_sse2() noexcept {
#if NM_X86_KERNELS
  return __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}
bool cpu_has_avx() noexcept {
#if NM_X86_KERNELS
  return __builtin_cpu_supports("avx");
#else
  return false;
#endif
}
bool cpu_has_avx2() noexcept {
#if NM_X86_KERNELS
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

bool cpu_supports(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kSerial: return true;
    case SimdLevel::kSse: return cpu_has_sse2();
    case SimdLevel::kAvx: return cpu_has_avx();
  }
  return false;
}

SimdLevel dispatch_ceiling() noexcept {
  static const SimdLevel cached = [] {
    const SimdLevel cap = env_cap();
    SimdLevel best = SimdLevel::kSerial;
    if (cap >= SimdLevel::kSse && cpu_supports(SimdLevel::kSse))
      best = SimdLevel::kSse;
    if (cap >= SimdLevel::kAvx && cpu_supports(SimdLevel::kAvx))
      best = SimdLevel::kAvx;
    return best;
  }();
  return cached;
}

SimdLevel batch_level(SimdLevel requested) noexcept {
#if NM_X86_KERNELS
  if (requested == SimdLevel::kAvx && cpu_has_avx2()) return SimdLevel::kAvx;
  if (requested >= SimdLevel::kSse && cpu_has_sse2()) return SimdLevel::kSse;
#endif
  (void)requested;
  return SimdLevel::kSerial;
}

void lookup_batch(const FlatArena& arena, std::span<const float> keys,
                  Prediction* out, SimdLevel level) noexcept {
  size_t done = 0;
  const size_t n = keys.size();
#if NM_X86_KERNELS
  // kAvx requests the gather kernel (needs AVX2); AVX-only CPUs degrade to
  // SSE2 lanes (see batch_level). Results are identical at every level by
  // the kernel contract.
  switch (batch_level(level)) {
    case SimdLevel::kAvx:
      done = batch_avx2(arena, keys.data(), n, out);
      break;
    case SimdLevel::kSse:
      done = batch_sse2(arena, keys.data(), n, out);
      break;
    case SimdLevel::kSerial:
      break;
  }
#endif
  batch_scalar(arena, keys.data() + done, n - done, out + done);
}

}  // namespace nuevomatch::rqrmi
