// RQ-RMI submodel: a 3-layer fully-connected network with one scalar input,
// one scalar output and 8 hidden ReLU neurons (paper Definition 3.1 and
// Section 4 "Submodel structure").
//
//   N(x)  = A(x * w1 + b1) x w2 + b2          (A = element-wise ReLU)
//   M(x)  = H(N(x))                           (H trims the output to [0,1))
//
// The 8-wide hidden layer is deliberate: one AVX register evaluates the whole
// hidden layer in a handful of instructions (paper Table 1). Serial, SSE and
// AVX kernels are provided; all share the same clamping semantics.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace nuevomatch::rqrmi {

inline constexpr int kHiddenWidth = 8;

/// Largest float strictly below 1.0 — the top of the trimmed output domain.
inline constexpr float kOneBelow = 0x1.fffffep-1f;

/// Clamp a raw network output into [0, 1).
[[nodiscard]] constexpr float clamp_unit(float v) noexcept {
  if (v < 0.0f) return 0.0f;
  if (v > kOneBelow) return kOneBelow;
  return v;
}
[[nodiscard]] constexpr double clamp_unit(double v) noexcept {
  if (v < 0.0) return 0.0;
  if (v > 0x1.fffffep-1) return 0x1.fffffep-1;  // same ceiling as the float path
  return v;
}

/// Weights of one submodel. 25 floats; padded/aligned for vector loads.
struct alignas(32) Submodel {
  std::array<float, kHiddenWidth> w1{};  // input -> hidden weights
  std::array<float, kHiddenWidth> b1{};  // hidden biases
  std::array<float, kHiddenWidth> w2{};  // hidden -> output weights
  float b2 = 0.0f;                       // output bias

  /// Bytes that count toward the model's memory footprint.
  [[nodiscard]] static constexpr size_t packed_bytes() noexcept {
    return (3 * kHiddenWidth + 1) * sizeof(float);
  }
};

enum class SimdLevel { kSerial, kSse, kAvx };

[[nodiscard]] std::string to_string(SimdLevel level);

/// Highest kernel the default dispatch will use at run time: the SIMD
/// kernels are compiled via function target attributes in every build, so
/// this is min(CPUID capability, NM_SIMD_MAX environment cap) — see
/// DESIGN.md "Runtime SIMD dispatch".
[[nodiscard]] SimdLevel best_simd_level() noexcept;
/// Can `level` be forced explicitly on this machine? (Pure CPUID check; the
/// NM_SIMD_MAX cap only lowers the *default* dispatch, never this.)
[[nodiscard]] bool simd_level_available(SimdLevel level) noexcept;

/// Clamped model output M(x) via the requested kernel (float arithmetic —
/// this is the production inference path).
[[nodiscard]] float eval(const Submodel& m, float x, SimdLevel level) noexcept;
[[nodiscard]] float eval(const Submodel& m, float x) noexcept;  // best level

/// Clamped model output evaluated in double precision over the float
/// weights. Reference semantics for the piecewise-linear analysis.
[[nodiscard]] double eval_exact(const Submodel& m, double x) noexcept;

/// Raw (unclamped) double-precision output N(x); used by the trainer.
[[nodiscard]] double eval_raw(const Submodel& m, double x) noexcept;

}  // namespace nuevomatch::rqrmi
