#include "rqrmi/nn.hpp"

#include "rqrmi/arch.hpp"
#include "rqrmi/kernel.hpp"

#if NM_X86_KERNELS
#include <immintrin.h>
#endif

namespace nuevomatch::rqrmi {

namespace {

// "Serial(1)" in Table 1 means one float per instruction; keep the compiler
// from silently auto-vectorizing the reference path, or the vector-width
// comparison measures nothing.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#endif
float eval_serial_impl(const Submodel& m, float x) noexcept {
  float acc = m.b2;
  for (int k = 0; k < kHiddenWidth; ++k) {
    const float z = m.w1[static_cast<size_t>(k)] * x + m.b1[static_cast<size_t>(k)];
    if (z > 0.0f) acc += m.w2[static_cast<size_t>(k)] * z;
  }
  return clamp_unit(acc);
}

#if NM_X86_KERNELS

// The SIMD kernels are compiled with function-level target attributes, so
// they exist in every build regardless of -m flags; runtime CPUID dispatch
// (kernel.cpp) decides which one actually runs (DESIGN.md "Runtime SIMD
// dispatch").

__attribute__((target("sse2"))) float eval_sse_impl(const Submodel& m,
                                                    float x) noexcept {
  const __m128 vx = _mm_set1_ps(x);
  const __m128 zero = _mm_setzero_ps();
  float acc = m.b2;
  for (int half = 0; half < 2; ++half) {
    const float* w1 = m.w1.data() + half * 4;
    const float* b1 = m.b1.data() + half * 4;
    const float* w2 = m.w2.data() + half * 4;
    __m128 z = _mm_add_ps(_mm_mul_ps(_mm_load_ps(w1), vx), _mm_load_ps(b1));
    z = _mm_max_ps(z, zero);
    const __m128 prod = _mm_mul_ps(z, _mm_load_ps(w2));
    alignas(16) float lanes[4];
    _mm_store_ps(lanes, prod);
    acc += lanes[0] + lanes[1] + lanes[2] + lanes[3];
  }
  return clamp_unit(acc);
}

__attribute__((target("avx"))) float eval_avx_impl(const Submodel& m,
                                                   float x) noexcept {
  const __m256 vx = _mm256_set1_ps(x);
  __m256 z = _mm256_add_ps(_mm256_mul_ps(_mm256_load_ps(m.w1.data()), vx),
                           _mm256_load_ps(m.b1.data()));
  z = _mm256_max_ps(z, _mm256_setzero_ps());
  const __m256 prod = _mm256_mul_ps(z, _mm256_load_ps(m.w2.data()));
  // Horizontal sum of 8 lanes.
  const __m128 lo = _mm256_castps256_ps128(prod);
  const __m128 hi = _mm256_extractf128_ps(prod, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x1));
  return clamp_unit(_mm_cvtss_f32(sum) + m.b2);
}

#endif  // NM_X86_KERNELS

}  // namespace

std::string to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSerial: return "serial(1)";
    case SimdLevel::kSse: return "sse(4)";
    case SimdLevel::kAvx: return "avx(8)";
  }
  return "?";
}

bool simd_level_available(SimdLevel level) noexcept {
#if NM_X86_KERNELS
  // Compiled in every build (target attributes); availability is a pure
  // run-time property of the CPU.
  return cpu_supports(level);
#else
  return level == SimdLevel::kSerial;
#endif
}

SimdLevel best_simd_level() noexcept { return dispatch_ceiling(); }

float eval(const Submodel& m, float x, SimdLevel level) noexcept {
#if NM_X86_KERNELS
  if (level == SimdLevel::kAvx && cpu_supports(SimdLevel::kAvx))
    return eval_avx_impl(m, x);
  if (level >= SimdLevel::kSse && cpu_supports(SimdLevel::kSse))
    return eval_sse_impl(m, x);
#endif
  (void)level;
  return eval_serial_impl(m, x);
}

float eval(const Submodel& m, float x) noexcept {
  return eval(m, x, dispatch_ceiling());
}

double eval_raw(const Submodel& m, double x) noexcept {
  double acc = static_cast<double>(m.b2);
  for (int k = 0; k < kHiddenWidth; ++k) {
    const double z = static_cast<double>(m.w1[static_cast<size_t>(k)]) * x +
                     static_cast<double>(m.b1[static_cast<size_t>(k)]);
    if (z > 0.0) acc += static_cast<double>(m.w2[static_cast<size_t>(k)]) * z;
  }
  return acc;
}

double eval_exact(const Submodel& m, double x) noexcept { return clamp_unit(eval_raw(m, x)); }

}  // namespace nuevomatch::rqrmi
