#include "rqrmi/pwl.hpp"

#include <algorithm>
#include <cmath>

namespace nuevomatch::rqrmi {

namespace {

constexpr double kTrimTop = 0x1.fffffep-1;  // upper clamp value (== kOneBelow)

/// Remove near-duplicate points (the domain is [0,1], so an absolute
/// tolerance is appropriate).
void sort_dedup(std::vector<double>& xs) {
  std::sort(xs.begin(), xs.end());
  constexpr double kTol = 1e-15;
  size_t out = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (out == 0 || xs[i] - xs[out - 1] > kTol) xs[out++] = xs[i];
  }
  xs.resize(out);
}

/// Linear coefficients of the *raw* network N(x) = a*x + b on a region where
/// the ReLU active-set does not change; the active set is probed at `mid`.
void raw_coeffs(const Submodel& m, double mid, double& a, double& b) {
  a = 0.0;
  b = static_cast<double>(m.b2);
  for (int k = 0; k < kHiddenWidth; ++k) {
    const double w1 = m.w1[static_cast<size_t>(k)];
    const double b1 = m.b1[static_cast<size_t>(k)];
    if (w1 * mid + b1 > 0.0) {
      const double w2 = m.w2[static_cast<size_t>(k)];
      a += w2 * w1;
      b += w2 * b1;
    }
  }
}

}  // namespace

std::vector<double> trigger_inputs(const Submodel& m, double lo, double hi) {
  std::vector<double> pts{lo, hi};
  // ReLU knees: x = -b1/w1.
  for (int k = 0; k < kHiddenWidth; ++k) {
    const double w1 = m.w1[static_cast<size_t>(k)];
    if (w1 == 0.0) continue;
    const double knee = -static_cast<double>(m.b1[static_cast<size_t>(k)]) / w1;
    if (knee > lo && knee < hi) pts.push_back(knee);
  }
  sort_dedup(pts);

  // Trim crossings: within each raw-linear region, N(x) may cross 0 or the
  // upper trim; those crossings are additional slope changes of M.
  std::vector<double> extra;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const double p = pts[i];
    const double q = pts[i + 1];
    double a = 0.0;
    double b = 0.0;
    raw_coeffs(m, (p + q) / 2.0, a, b);
    if (a == 0.0) continue;
    for (const double c : {0.0, kTrimTop}) {
      const double x = (c - b) / a;
      if (x > p && x < q) extra.push_back(x);
    }
  }
  pts.insert(pts.end(), extra.begin(), extra.end());
  sort_dedup(pts);
  return pts;
}

std::vector<QuantizedPiece> quantized_pieces(const Submodel& m, uint32_t width,
                                             double lo, double hi) {
  std::vector<QuantizedPiece> pieces;
  if (!(lo < hi) || width == 0) return pieces;

  std::vector<double> cuts = trigger_inputs(m, lo, hi);
  const double w = static_cast<double>(width);

  // Between adjacent trigger inputs M is linear: add every x where M(x)*W
  // crosses an integer (Lemma A.8's construction, both slope signs).
  std::vector<double> crossings;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double p = cuts[i];
    const double q = cuts[i + 1];
    const double mp = eval_exact(m, p);
    const double mq = eval_exact(m, q);
    if (mp == mq) continue;
    const double vlo = std::min(mp, mq) * w;
    const double vhi = std::max(mp, mq) * w;
    for (double y = std::ceil(vlo); y <= std::floor(vhi); y += 1.0) {
      const double x = p + (y / w - mp) * (q - p) / (mq - mp);
      if (x > p && x < q) crossings.push_back(x);
    }
  }
  cuts.insert(cuts.end(), crossings.begin(), crossings.end());
  sort_dedup(cuts);

  const auto bucket_at = [&](double x) -> uint32_t {
    const double v = eval_exact(m, x) * w;
    const auto b = static_cast<uint32_t>(v);  // v >= 0
    return std::min(b, width - 1);
  };

  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double p = cuts[i];
    const double q = cuts[i + 1];
    const uint32_t b = bucket_at((p + q) / 2.0);
    if (!pieces.empty() && pieces.back().bucket == b) {
      pieces.back().x1 = q;  // coalesce equal-bucket neighbours
    } else {
      pieces.push_back(QuantizedPiece{p, q, b});
    }
  }
  if (pieces.empty()) pieces.push_back(QuantizedPiece{lo, hi, bucket_at((lo + hi) / 2.0)});
  return pieces;
}

std::vector<double> transition_inputs(const Submodel& m, uint32_t width, double lo,
                                      double hi) {
  const auto pieces = quantized_pieces(m, width, lo, hi);
  std::vector<double> out;
  for (size_t i = 1; i < pieces.size(); ++i) out.push_back(pieces[i].x0);
  return out;
}

}  // namespace nuevomatch::rqrmi
