// Range-Query Recursive Model Index (paper Section 3).
//
// An RQ-RMI indexes a sorted array of non-overlapping key intervals over the
// normalized domain [0,1). lookup(key) walks the submodel stages (paper
// Figure 3), and returns a predicted array position together with that leaf's
// worst-case search error; the true position of the interval containing the
// key — if one exists — is guaranteed to lie within +-error of the
// prediction. The guarantee holds for EVERY representable key, sampled during
// training or not, by the analytic arguments of Appendix A plus an explicit
// float-path deviation margin (see DESIGN.md, "Key design decisions").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rqrmi/kernel.hpp"
#include "rqrmi/nn.hpp"

namespace nuevomatch::rqrmi {

/// Half-open normalized interval [lo, hi) mapped to array position `index`.
/// RqRmi::build requires intervals sorted by lo, pairwise disjoint, with
/// index equal to the position in the input vector.
struct KeyInterval {
  double lo = 0.0;
  double hi = 0.0;
  uint32_t index = 0;
};

struct RqRmiConfig {
  /// Stage widths, first entry must be 1 (paper Table 4, e.g. {1,8,256}).
  std::vector<uint32_t> stage_widths{1, 4};
  /// Target worst-case search distance; leaves above it are retrained with
  /// doubled sampling (paper Figure 5). The achieved bound may exceed this
  /// when training does not converge — exactly as the paper allows (§3.5.6).
  uint32_t error_threshold = 64;
  int max_retrain_attempts = 4;
  int initial_samples = 512;  ///< per-submodel dataset size before doubling
  int adam_epochs = 100;
  double learning_rate = 5e-3;
  uint64_t seed = 1;
};

/// Paper Table 4: stage widths as a function of the indexed set size.
[[nodiscard]] RqRmiConfig default_config(size_t n_intervals);

struct Prediction {
  uint32_t index = 0;         ///< predicted array position
  uint32_t search_error = 0;  ///< certified max distance to the true position
};

class RqRmi {
 public:
  /// Train the model on the interval set. Empty input builds a trivial model.
  void build(std::vector<KeyInterval> intervals, const RqRmiConfig& cfg);

  /// Predict the array position for a normalized key (production path).
  [[nodiscard]] Prediction lookup(float key) const noexcept;
  /// Same, forcing a specific SIMD kernel (Table 1 benchmarking).
  [[nodiscard]] Prediction lookup(float key, SimdLevel level) const noexcept;

  /// Cross-packet batched lookup over the flat weight arena: one SIMD lane
  /// per key (AVX2 8 / SSE2 4 / scalar, runtime-dispatched). Writes
  /// keys.size() predictions to `out` (out.size() >= keys.size()). Every
  /// kernel returns predictions byte-identical to lookup(key, kSerial) —
  /// see kernel.hpp for the contract.
  void lookup_batch(std::span<const float> keys, std::span<Prediction> out) const noexcept;
  void lookup_batch(std::span<const float> keys, std::span<Prediction> out,
                    SimdLevel level) const noexcept;

  /// Worst case over all leaves (the paper's epsilon).
  [[nodiscard]] uint32_t max_search_error() const noexcept;

  /// Model weights + error table (the bytes that must stay cache-resident).
  [[nodiscard]] size_t memory_bytes() const noexcept;
  /// The transposed SoA copy used by lookup_batch (rebuilt on build/restore).
  [[nodiscard]] const FlatArena& arena() const noexcept { return arena_; }
  [[nodiscard]] size_t arena_bytes() const noexcept { return arena_.memory_bytes(); }

  [[nodiscard]] size_t num_intervals() const noexcept { return n_values_; }
  [[nodiscard]] size_t num_submodels() const noexcept;
  [[nodiscard]] bool trained() const noexcept { return !stages_.empty(); }

  // --- introspection for tests & benches --------------------------------
  struct DomainInterval {
    double lo = 0.0;
    double hi = 0.0;
  };
  [[nodiscard]] const std::vector<std::vector<Submodel>>& stages() const noexcept {
    return stages_;
  }
  [[nodiscard]] const std::vector<uint32_t>& leaf_errors() const noexcept {
    return leaf_errors_;
  }
  [[nodiscard]] const std::vector<std::vector<DomainInterval>>& leaf_responsibilities()
      const noexcept {
    return leaf_resp_;
  }
  [[nodiscard]] int training_rounds() const noexcept { return training_rounds_; }

  /// Reinstate a trained model from its parts without retraining (the
  /// serializer's load path). Shape invariants are validated; throws
  /// std::invalid_argument on mismatch.
  void restore(std::vector<std::vector<Submodel>> stages,
               std::vector<uint32_t> leaf_errors,
               std::vector<std::vector<DomainInterval>> leaf_resp, size_t n_values);

 private:
  std::vector<std::vector<Submodel>> stages_;
  std::vector<uint32_t> leaf_errors_;                  // per leaf submodel
  std::vector<std::vector<DomainInterval>> leaf_resp_; // per leaf submodel
  FlatArena arena_;          // transposed weights for lookup_batch
  size_t n_values_ = 0;
  int training_rounds_ = 0;  // total submodel fits incl. retraining
};

/// Normalize an integer key from [0, domain_max] into [0,1) — the single
/// conversion used by both training analysis and the inference hot path.
[[nodiscard]] inline float normalize_key(uint32_t key, uint64_t domain_max) noexcept {
  return static_cast<float>(static_cast<double>(key) / static_cast<double>(domain_max + 1));
}
[[nodiscard]] inline double normalize_key_exact(uint64_t key, uint64_t domain_max) noexcept {
  return static_cast<double>(key) / static_cast<double>(domain_max + 1);
}

/// Hot-path variant of normalize_key: multiply by a precomputed reciprocal of
/// (domain_max + 1) instead of dividing per lookup (IsetIndex caches the
/// reciprocal). The reciprocal adds <= 1 ulp of *double* error (~1e-16)
/// before the float rounding, far inside the normalization margin the
/// training analysis budgets (DESIGN.md "Key design decisions").
[[nodiscard]] inline double normalize_reciprocal(uint64_t domain_max) noexcept {
  return 1.0 / static_cast<double>(domain_max + 1);
}
[[nodiscard]] inline float normalize_key_mul(uint32_t key, double inv_domain) noexcept {
  return static_cast<float>(static_cast<double>(key) * inv_domain);
}

}  // namespace nuevomatch::rqrmi
