// Submodel training (paper Sections 3.5.4-3.5.5).
//
// The paper trains each 1-8-1 submodel with TensorFlow + Adam on a sampled
// dataset. We keep the identical architecture, loss (MSE) and optimizer, but
// implement both directly (see DESIGN.md "Substitutions"):
//
//   1. closed-form least-squares initialization: ReLU knots are placed at
//      the dataset's x-quantiles, which makes the output layer a linear
//      regression solved exactly via Cholesky;
//   2. full-batch Adam refinement of all 25 parameters with analytic
//      gradients.
//
// This is deterministic given the seed and orders of magnitude faster than a
// TF round-trip on such tiny models (the paper itself flags TF as its
// training bottleneck, Section 4).
#pragma once

#include <cstdint>
#include <span>

#include "rqrmi/nn.hpp"

namespace nuevomatch::rqrmi {

struct TrainSample {
  double x = 0.0;
  double y = 0.0;
};

struct TrainerConfig {
  int adam_epochs = 100;       ///< 0 = least-squares fit only
  double learning_rate = 5e-3;
  uint64_t seed = 1;
};

/// Fit one submodel to the samples. Empty input yields the zero model.
[[nodiscard]] Submodel fit_submodel(std::span<const TrainSample> samples,
                                    const TrainerConfig& cfg);

/// Mean squared error of the raw network on the samples (training metric).
[[nodiscard]] double mse(const Submodel& m, std::span<const TrainSample> samples);

/// Analytic bound on |float-path eval - double-path eval| for this
/// submodel over x in [0,1]. Derived from weight magnitudes; consumers use
/// it to keep the correctness proof valid on the float inference path.
[[nodiscard]] double float_eval_deviation(const Submodel& m) noexcept;

}  // namespace nuevomatch::rqrmi
