// Single definition of "does this build ship the x86 SIMD kernels?" shared
// by the per-key kernels (nn.cpp) and the batch engine (kernel.cpp), so the
// compiled-kernel set can never diverge from what the runtime dispatch layer
// (cpu_supports / dispatch_ceiling) claims. The kernels use function-level
// target attributes, which GCC and Clang support on x86-64; anything else
// falls back to scalar everywhere.
#pragma once

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NM_X86_KERNELS 1
#else
#define NM_X86_KERNELS 0
#endif
