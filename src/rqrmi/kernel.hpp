// Cross-packet batched RQ-RMI inference (DESIGN.md "Batched inference
// engine").
//
// The per-key kernels in nn.cpp vectorize *within* one submodel: the 8 hidden
// neurons of a single key fill one AVX register. That caps throughput at one
// key per serial walk of the stages. The batch engine flips the vectorization
// axis — one SIMD *lane per packet* — so 8 (AVX2) or 4 (SSE2) keys traverse
// the stages together, each lane gathering the weights of the submodel it was
// routed to.
//
// Two pieces live here:
//
//  * FlatArena — a single cache-aligned SoA buffer holding all stage weights
//    transposed for lane-parallel access (element (neuron k, submodel j) of a
//    stage sits at `w1 + k*width + j`, so a per-lane gather with index j
//    fetches neuron k's weight for every lane at once) plus the leaf-error
//    table. Built once after training/restore; the hot path never touches
//    std::vector<std::vector<Submodel>>.
//
//  * lookup_batch — the lane-per-packet kernels (AVX2 / SSE2 / scalar),
//    selected by runtime CPUID dispatch, not compile flags: the SIMD variants
//    are compiled with function-level target attributes, so a baseline -O2
//    build still ships them and picks the widest one the running CPU
//    supports. `NM_SIMD_MAX=serial|sse|avx` in the environment caps the
//    default dispatch (CI uses it to exercise the narrow paths).
//
// Kernel contract: every lane computes bit-for-bit the arithmetic of the
// scalar serial reference (same summation order, mul+add kept unfused, same
// clamp semantics), so lookup_batch at ANY SIMD level returns Predictions
// byte-identical to RqRmi::lookup(key, SimdLevel::kSerial). The certified
// search-error guarantee therefore transfers to the batch path unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rqrmi/nn.hpp"

namespace nuevomatch::rqrmi {

struct Prediction;  // defined in model.hpp

/// Float storage aligned to a cache line (the arena's backing memory).
class AlignedFloats {
 public:
  AlignedFloats() = default;
  explicit AlignedFloats(size_t n) { resize(n); }
  AlignedFloats(const AlignedFloats& o) { assign(o.p_.get(), o.n_); }
  AlignedFloats(AlignedFloats&& o) noexcept = default;
  AlignedFloats& operator=(const AlignedFloats& o) {
    if (this != &o) assign(o.p_.get(), o.n_);
    return *this;
  }
  AlignedFloats& operator=(AlignedFloats&& o) noexcept = default;

  void resize(size_t n);
  void clear() {
    p_.reset();
    n_ = 0;
  }
  [[nodiscard]] float* data() noexcept { return p_.get(); }
  [[nodiscard]] const float* data() const noexcept { return p_.get(); }
  [[nodiscard]] size_t size() const noexcept { return n_; }

 private:
  void assign(const float* src, size_t n);

  struct Deleter {
    void operator()(float* p) const noexcept {
      ::operator delete[](p, std::align_val_t{64});
    }
  };
  std::unique_ptr<float[], Deleter> p_;
  size_t n_ = 0;
};

/// Flat SoA weight arena for one RQ-RMI (see file comment for the layout).
class FlatArena {
 public:
  struct Stage {
    size_t w1 = 0;  ///< transposed input weights: (k, j) at w1 + k*width + j
    size_t b1 = 0;  ///< transposed hidden biases, same indexing
    size_t w2 = 0;  ///< transposed output weights, same indexing
    size_t b2 = 0;  ///< output biases: submodel j at b2 + j
    uint32_t width = 0;
  };

  /// (Re)build from trained stages. `leaf_errors` may be empty (treated as
  /// all-zero). Called by RqRmi::build and RqRmi::restore.
  void build(const std::vector<std::vector<Submodel>>& stages,
             const std::vector<uint32_t>& leaf_errors, size_t n_values);
  void clear();

  [[nodiscard]] bool empty() const noexcept { return stages_.empty(); }
  [[nodiscard]] size_t num_stages() const noexcept { return stages_.size(); }
  [[nodiscard]] const Stage& stage(size_t s) const noexcept { return stages_[s]; }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] const uint32_t* leaf_errors() const noexcept {
    return leaf_errors_.data();
  }
  [[nodiscard]] uint32_t n_values() const noexcept { return n_values_; }
  /// float(n_values), the single conversion shared with the scalar path.
  [[nodiscard]] float n_scale() const noexcept { return n_scale_; }
  /// Bytes of the flat buffer + leaf table (the transposed cache copy).
  [[nodiscard]] size_t memory_bytes() const noexcept;

 private:
  std::vector<Stage> stages_;
  AlignedFloats data_;
  std::vector<uint32_t> leaf_errors_;  // always sized to the last stage width
  uint32_t n_values_ = 0;
  float n_scale_ = 0.0f;
};

// --- runtime dispatch ------------------------------------------------------

/// Does the *running CPU* support the per-key kernel for `level`?
/// (Independent of compile flags; SIMD kernels are compiled via function
/// target attributes whenever the toolchain allows.)
[[nodiscard]] bool cpu_supports(SimdLevel level) noexcept;

/// Highest level the default dispatch may use: min(compiled, CPUID,
/// NM_SIMD_MAX environment cap). Computed once and cached.
[[nodiscard]] SimdLevel dispatch_ceiling() noexcept;

/// The batch kernel family that would actually run for a requested level on
/// this CPU: kAvx needs AVX2 (gathers) and degrades to kSse on AVX-only
/// CPUs; kSse needs SSE2. Benches use this to label measurements with the
/// kernel that really executed.
[[nodiscard]] SimdLevel batch_level(SimdLevel requested) noexcept;

/// Batched lookup over the arena. Writes keys.size() Predictions to `out`.
/// `level` requests a kernel family: kAvx -> AVX2 lanes (needs AVX2 for the
/// gathers; falls back to SSE2 on AVX-only CPUs — see batch_level), kSse ->
/// SSE2 lanes, kSerial -> scalar. Results are identical at every level.
void lookup_batch(const FlatArena& arena, std::span<const float> keys,
                  Prediction* out, SimdLevel level) noexcept;

}  // namespace nuevomatch::rqrmi
