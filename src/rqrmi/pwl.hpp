// Piecewise-linear analysis of a trained submodel (paper Sections 3.3-3.5 and
// Appendix A). Because M(x) = H(N(x)) is piecewise linear (Corollary 3.2),
// three quantities can be computed *analytically*, with no key enumeration:
//
//   * trigger inputs  (Definition A.5): inputs where M changes slope — the
//     ReLU knees plus the points where N(x) crosses the [0,1) trim;
//   * transition inputs (Definition A.6): inputs where floor(M(x)*W) changes;
//   * quantized pieces: the partition of the domain into maximal intervals on
//     which floor(M(x)*W) is constant — the workhorse for computing submodel
//     responsibilities (Theorem A.1) and worst-case prediction error bounds
//     (Theorem A.13).
//
// All analysis runs in double precision over the float weights used at
// inference time; consumers add a routing margin + error slack so that float
// rounding on the production path can never step outside the analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "rqrmi/nn.hpp"

namespace nuevomatch::rqrmi {

/// Maximal interval [x0, x1] on which floor(M(x)*W) == bucket.
struct QuantizedPiece {
  double x0 = 0.0;
  double x1 = 0.0;
  uint32_t bucket = 0;
};

/// Sorted breakpoints of M over [lo, hi]: lo, hi, ReLU knees and trim
/// crossings that fall strictly inside. Between two adjacent breakpoints M is
/// exactly linear. (Trigger inputs, Definition A.5.)
[[nodiscard]] std::vector<double> trigger_inputs(const Submodel& m, double lo, double hi);

/// Inputs in (lo, hi) where floor(M(x)*W) changes value.
/// (Transition inputs, Definition A.6 / Lemma A.8.)
[[nodiscard]] std::vector<double> transition_inputs(const Submodel& m, uint32_t width,
                                                    double lo, double hi);

/// Partition [lo, hi] into maximal constant-bucket pieces under quantization
/// width `width`. Buckets are clamped to [0, width-1]. Pieces are returned in
/// increasing x order and exactly tile [lo, hi].
[[nodiscard]] std::vector<QuantizedPiece> quantized_pieces(const Submodel& m, uint32_t width,
                                                           double lo, double hi);

}  // namespace nuevomatch::rqrmi
