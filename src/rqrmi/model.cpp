#include "rqrmi/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "rqrmi/pwl.hpp"
#include "rqrmi/trainer.hpp"

namespace nuevomatch::rqrmi {

namespace {

using Resp = std::vector<RqRmi::DomainInterval>;

/// Extra x-space margin absorbing key-normalization rounding (<= 1 ulp of a
/// value in [0,1)) when responsibilities are computed in double precision.
constexpr double kXMargin = 1e-7;
/// Extra y-space margin absorbing the float multiply y*W at routing time.
constexpr double kYMargin = 4e-7;

void merge_intervals(Resp& v) {
  if (v.empty()) return;
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.lo < b.lo; });
  Resp out;
  out.push_back(v.front());
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i].lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, v[i].hi);
    } else {
      out.push_back(v[i]);
    }
  }
  v = std::move(out);
}

double total_length(const Resp& v) {
  double acc = 0.0;
  for (const auto& i : v) acc += i.hi - i.lo;
  return acc;
}

/// Index of the interval containing x, or -1. Intervals are sorted/disjoint.
int find_interval(std::span<const KeyInterval> ivs, double x) {
  const auto it = std::upper_bound(
      ivs.begin(), ivs.end(), x,
      [](double v, const KeyInterval& k) { return v < k.lo; });
  if (it == ivs.begin()) return -1;
  const auto& cand = *(it - 1);
  return (x >= cand.lo && x < cand.hi) ? static_cast<int>(cand.index) : -1;
}

/// Sampled training set over the submodel's responsibility (paper §3.5.4):
/// stratified-uniform samples proportional to range size, plus strided
/// midpoints of covered pieces so no sizable range is missed entirely.
std::vector<TrainSample> make_dataset(const Resp& resp,
                                      std::span<const KeyInterval> ivs,
                                      int n_samples, Rng& rng) {
  std::vector<TrainSample> out;
  const double total = total_length(resp);
  if (total <= 0.0 || ivs.empty()) return out;
  const double n = static_cast<double>(ivs.size());

  // Stratified uniform sampling over the responsibility measure.
  std::vector<double> prefix(resp.size() + 1, 0.0);
  for (size_t i = 0; i < resp.size(); ++i)
    prefix[i + 1] = prefix[i] + (resp[i].hi - resp[i].lo);
  for (int t = 0; t < n_samples; ++t) {
    const double u =
        (static_cast<double>(t) + rng.next_double()) / static_cast<double>(n_samples) * total;
    const auto it = std::upper_bound(prefix.begin(), prefix.end(), u);
    const size_t seg = std::min(resp.size() - 1, static_cast<size_t>(it - prefix.begin()) - 1);
    const double x = resp[seg].lo + (u - prefix[seg]);
    const int idx = find_interval(ivs, x);
    if (idx >= 0) out.push_back(TrainSample{x, (idx + 0.5) / n});
  }

  // Midpoint seeding of covered pieces, strided to at most n_samples extras.
  size_t covered = 0;
  for (const auto& r : resp) {
    for (auto it = std::upper_bound(ivs.begin(), ivs.end(), r.lo,
                                    [](double v, const KeyInterval& k) { return v < k.hi; });
         it != ivs.end() && it->lo < r.hi; ++it)
      ++covered;
  }
  const size_t stride = std::max<size_t>(1, covered / std::max(1, n_samples));
  size_t c = 0;
  for (const auto& r : resp) {
    for (auto it = std::upper_bound(ivs.begin(), ivs.end(), r.lo,
                                    [](double v, const KeyInterval& k) { return v < k.hi; });
         it != ivs.end() && it->lo < r.hi; ++it) {
      if (c++ % stride != 0) continue;
      const double a = std::max(r.lo, it->lo);
      const double b = std::min(r.hi, it->hi);
      out.push_back(TrainSample{(a + b) / 2.0, (it->index + 0.5) / n});
    }
  }
  return out;
}

/// Compute the responsibilities of the next stage (Theorem A.1): for every
/// linear segment of M, invert analytically the x-intervals routed into each
/// output bucket, widening by the float-path deviation `dev` in y and
/// kXMargin in x so float inference can never route a key outside the
/// responsibility its leaf was certified on.
void route_responsibilities(const Submodel& m, uint32_t width, const Resp& resp,
                            double dev, std::vector<Resp>& next) {
  const double w = static_cast<double>(width);
  const double margin = dev + kYMargin;
  for (const auto& region : resp) {
    const auto bps = trigger_inputs(m, region.lo, region.hi);
    for (size_t i = 0; i + 1 < bps.size(); ++i) {
      const double p = bps[i];
      const double q = bps[i + 1];
      const double mp = eval_exact(m, p);
      const double mq = eval_exact(m, q);
      const double vlo = std::min(mp, mq) - margin;
      const double vhi = std::max(mp, mq) + margin;
      const auto blo = static_cast<int64_t>(std::floor(vlo * w));
      const auto bhi = static_cast<int64_t>(std::floor(vhi * w));
      const int64_t first = std::clamp<int64_t>(blo, 0, width - 1);
      const int64_t last = std::clamp<int64_t>(bhi, 0, width - 1);
      if (first == last || mp == mq) {
        for (int64_t b = first; b <= last; ++b)
          next[static_cast<size_t>(b)].push_back({p - kXMargin, q + kXMargin});
        continue;
      }
      // M is linear on [p,q]: x-interval routed to bucket b is the preimage
      // of [b/W - margin, (b+1)/W + margin].
      const double slope = (mq - mp) / (q - p);
      for (int64_t b = first; b <= last; ++b) {
        const double ylo = static_cast<double>(b) / w - margin;
        const double yhi = static_cast<double>(b + 1) / w + margin;
        double x0 = (ylo - mp) / slope + p;
        double x1 = (yhi - mp) / slope + p;
        if (x0 > x1) std::swap(x0, x1);
        x0 = std::max(x0, p);
        x1 = std::min(x1, q);
        if (x0 <= x1)
          next[static_cast<size_t>(b)].push_back({x0 - kXMargin, x1 + kXMargin});
      }
    }
  }
}

/// Worst-case prediction error of a leaf submodel over its responsibility
/// (Theorem A.13): on each linear segment of M the extreme predicted indices
/// for a range are attained at the segment/range intersection endpoints.
uint32_t leaf_error(const Submodel& m, const Resp& resp,
                    std::span<const KeyInterval> ivs) {
  if (ivs.empty()) return 0;
  const double n = static_cast<double>(ivs.size());
  const auto predict = [&](double x) -> int64_t {
    const double v = clamp_unit(eval_exact(m, x)) * n;
    return std::min(static_cast<int64_t>(v), static_cast<int64_t>(ivs.size()) - 1);
  };
  int64_t err = 0;
  for (const auto& region : resp) {
    const auto bps = trigger_inputs(m, region.lo, region.hi);
    for (size_t i = 0; i + 1 < bps.size(); ++i) {
      const double p = bps[i];
      const double q = bps[i + 1];
      // Ranges overlapping [p,q].
      for (auto it = std::upper_bound(ivs.begin(), ivs.end(), p,
                                      [](double v, const KeyInterval& k) { return v < k.hi; });
           it != ivs.end() && it->lo < q; ++it) {
        const double a = std::max(p, it->lo);
        const double b = std::min(q, it->hi);
        const auto truth = static_cast<int64_t>(it->index);
        err = std::max(err, std::abs(predict(a) - truth));
        err = std::max(err, std::abs(predict(b) - truth));
      }
    }
  }
  return static_cast<uint32_t>(err);
}

}  // namespace

RqRmiConfig default_config(size_t n_intervals) {
  RqRmiConfig cfg;
  if (n_intervals < 1'000) {
    cfg.stage_widths = {1, 4};
  } else if (n_intervals < 10'000) {
    cfg.stage_widths = {1, 4, 16};
  } else if (n_intervals < 100'000) {
    cfg.stage_widths = {1, 4, 128};
  } else if (n_intervals < 300'000) {
    cfg.stage_widths = {1, 8, 256};
  } else {
    cfg.stage_widths = {1, 8, 512};
  }
  return cfg;
}

void RqRmi::build(std::vector<KeyInterval> intervals, const RqRmiConfig& cfg) {
  stages_.clear();
  leaf_errors_.clear();
  leaf_resp_.clear();
  training_rounds_ = 0;
  arena_.clear();
  n_values_ = intervals.size();
  if (cfg.stage_widths.empty() || cfg.stage_widths.front() != 1)
    throw std::invalid_argument{"RqRmiConfig: stage_widths must start with 1"};
  for (size_t i = 0; i < intervals.size(); ++i) {
    const auto& iv = intervals[i];
    if (iv.index != i) throw std::invalid_argument{"KeyInterval.index must equal position"};
    if (!(iv.lo < iv.hi)) throw std::invalid_argument{"KeyInterval must be non-empty"};
    if (i > 0 && intervals[i - 1].hi > iv.lo)
      throw std::invalid_argument{"KeyIntervals must be sorted and disjoint"};
  }
  if (intervals.empty()) return;

  Rng rng{cfg.seed};
  const TrainerConfig tcfg{cfg.adam_epochs, cfg.learning_rate, cfg.seed};
  const size_t n_stages = cfg.stage_widths.size();
  std::vector<Resp> cur_resp(1);
  cur_resp[0] = Resp{{0.0, 1.0}};
  stages_.resize(n_stages);

  for (size_t s = 0; s < n_stages; ++s) {
    const uint32_t width = cfg.stage_widths[s];
    const bool last = (s + 1 == n_stages);
    stages_[s].resize(width);
    if (last) {
      leaf_errors_.assign(width, 0);
      leaf_resp_.assign(width, {});
    }
    std::vector<Resp> next_resp;
    if (!last) next_resp.resize(cfg.stage_widths[s + 1]);

    for (uint32_t j = 0; j < width; ++j) {
      Resp& resp = cur_resp[j];
      merge_intervals(resp);
      if (resp.empty()) continue;

      int samples = cfg.initial_samples;
      auto ds = make_dataset(resp, intervals, samples, rng);
      Submodel model = fit_submodel(ds, tcfg);
      ++training_rounds_;

      if (last) {
        // Error-bound / retraining loop (paper Figure 5, dashed path).
        uint32_t err = leaf_error(model, resp, intervals);
        for (int attempt = 0;
             err > cfg.error_threshold && attempt < cfg.max_retrain_attempts; ++attempt) {
          samples *= 2;
          ds = make_dataset(resp, intervals, samples, rng);
          const Submodel retry = fit_submodel(ds, tcfg);
          ++training_rounds_;
          const uint32_t retry_err = leaf_error(retry, resp, intervals);
          if (retry_err < err) {
            model = retry;
            err = retry_err;
          }
        }
        const double dev = float_eval_deviation(model);
        const auto slack =
            static_cast<uint32_t>(std::ceil(dev * static_cast<double>(n_values_))) + 2;
        leaf_errors_[j] = err + slack;
        leaf_resp_[j] = resp;
      } else {
        route_responsibilities(model, cfg.stage_widths[s + 1], resp,
                               float_eval_deviation(model), next_resp);
      }
      stages_[s][j] = model;
    }
    if (!last) cur_resp = std::move(next_resp);
  }
  arena_.build(stages_, leaf_errors_, n_values_);
}

void RqRmi::restore(std::vector<std::vector<Submodel>> stages,
                    std::vector<uint32_t> leaf_errors,
                    std::vector<std::vector<DomainInterval>> leaf_resp,
                    size_t n_values) {
  if (stages.empty()) {
    if (!leaf_errors.empty() || !leaf_resp.empty() || n_values != 0)
      throw std::invalid_argument{"RqRmi::restore: trivial model must be empty"};
    stages_.clear();
    leaf_errors_.clear();
    leaf_resp_.clear();
    arena_.clear();
    n_values_ = 0;
    training_rounds_ = 0;
    return;
  }
  if (stages.front().size() != 1)
    throw std::invalid_argument{"RqRmi::restore: first stage width must be 1"};
  const size_t leaves = stages.back().size();
  if (leaf_errors.size() != leaves || leaf_resp.size() != leaves)
    throw std::invalid_argument{"RqRmi::restore: leaf table size mismatch"};
  stages_ = std::move(stages);
  leaf_errors_ = std::move(leaf_errors);
  leaf_resp_ = std::move(leaf_resp);
  n_values_ = n_values;
  training_rounds_ = 0;
  // The serializer stores only the nested weights; the flat inference arena
  // is derived state and is rebuilt on every load.
  arena_.build(stages_, leaf_errors_, n_values_);
}

Prediction RqRmi::lookup(float key, SimdLevel level) const noexcept {
  if (stages_.empty()) return Prediction{};
  uint32_t leaf = 0;
  const Submodel* m = &stages_[0][0];
  for (size_t s = 0; s + 1 < stages_.size(); ++s) {
    const float y = eval(*m, key, level);
    const auto width = static_cast<uint32_t>(stages_[s + 1].size());
    uint32_t j = static_cast<uint32_t>(y * static_cast<float>(width));
    if (j >= width) j = width - 1;
    leaf = j;
    m = &stages_[s + 1][j];
  }
  const float y = eval(*m, key, level);
  auto idx = static_cast<uint32_t>(y * static_cast<float>(n_values_));
  if (idx >= n_values_) idx = static_cast<uint32_t>(n_values_) - 1;
  return Prediction{idx, leaf_errors_.empty() ? 0 : leaf_errors_[leaf]};
}

Prediction RqRmi::lookup(float key) const noexcept {
  return lookup(key, best_simd_level());
}

void RqRmi::lookup_batch(std::span<const float> keys, std::span<Prediction> out,
                         SimdLevel level) const noexcept {
  if (arena_.empty()) {
    for (size_t i = 0; i < keys.size(); ++i) out[i] = Prediction{};
    return;
  }
  rqrmi::lookup_batch(arena_, keys, out.data(), level);
}

void RqRmi::lookup_batch(std::span<const float> keys,
                         std::span<Prediction> out) const noexcept {
  lookup_batch(keys, out, best_simd_level());
}

uint32_t RqRmi::max_search_error() const noexcept {
  uint32_t worst = 0;
  for (uint32_t e : leaf_errors_) worst = std::max(worst, e);
  return worst;
}

size_t RqRmi::memory_bytes() const noexcept {
  size_t bytes = 0;
  for (const auto& stage : stages_) bytes += stage.size() * Submodel::packed_bytes();
  bytes += leaf_errors_.size() * sizeof(uint32_t);
  return bytes;
}

size_t RqRmi::num_submodels() const noexcept {
  size_t n = 0;
  for (const auto& stage : stages_) n += stage.size();
  return n;
}

}  // namespace nuevomatch::rqrmi
