// Shared memory-accounting helpers for Classifier::memory_bytes()
// implementations (paper Figure 13 convention: index structures only).
#pragma once

#include <cstddef>

namespace nuevomatch {

/// Approximate heap footprint of a node-based hash map (the id→position
/// maps the update path adds): one node per entry — key/value pair plus a
/// bucket-chain pointer. Bucket-array overhead is deliberately ignored; the
/// estimate is a floor, consistent across every engine that carries such a
/// map.
template <typename Map>
[[nodiscard]] constexpr size_t map_overhead_bytes(const Map& m) noexcept {
  return m.size() * (sizeof(typename Map::value_type) + sizeof(void*));
}

}  // namespace nuevomatch
