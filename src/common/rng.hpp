// Deterministic, seedable RNG used everywhere instead of std::mt19937 so
// that rule-sets, traces, and trained models are reproducible bit-for-bit
// across runs and platforms.
//
// xoshiro256** (Blackman/Vigna, public domain algorithm) seeded via
// splitmix64, per the authors' recommendation.
#pragma once

#include <cstdint>

namespace nuevomatch {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept { reseed(seed); }

  void reseed(uint64_t seed) noexcept {
    uint64_t x = seed;
    for (auto& word : s_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() noexcept {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  uint32_t next_u32() noexcept { return static_cast<uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t below(uint64_t n) noexcept {
    // Lemire's multiply-shift rejection-free-enough reduction; the tiny bias
    // (< 2^-64 * n) is irrelevant for workload generation.
    const unsigned __int128 m = static_cast<unsigned __int128>(next_u64()) * n;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t between(uint64_t lo, uint64_t hi) noexcept { return lo + below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) noexcept { return next_double() < p; }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4]{};
};

}  // namespace nuevomatch
