#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace nuevomatch {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted{xs.begin(), xs.end()};
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace nuevomatch
