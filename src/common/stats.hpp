// Small numeric helpers used by the benchmark harness to print the paper's
// tables (geometric means of speedups, mean +- stddev coverage, ...).
#pragma once

#include <cstddef>
#include <span>

namespace nuevomatch {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);          // population
[[nodiscard]] double geometric_mean(std::span<const double> xs);  // xs > 0
[[nodiscard]] double percentile(std::span<const double> xs, double p);  // p in [0,100]

}  // namespace nuevomatch
