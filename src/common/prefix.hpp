// Prefix <-> range conversions and textual IPv4 helpers.
//
// ClassBench expresses IP fields as prefixes (addr/len); internally every
// classifier works on inclusive integer ranges. These helpers are the single
// point of truth for that conversion.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace nuevomatch {

/// [addr masked to len, broadcast] for a /len prefix over a 32-bit field.
[[nodiscard]] Range prefix_to_range(uint32_t addr, int len) noexcept;

/// If `r` is exactly a prefix block, return its length; otherwise nullopt.
[[nodiscard]] std::optional<int> range_to_prefix_len(const Range& r) noexcept;

/// Longest prefix length L such that the /L block containing r.lo covers r.
/// Always defined (worst case 0 = wildcard). Used by hash-based classifiers
/// to place arbitrary ranges into tuple tables.
[[nodiscard]] int covering_prefix_len(const Range& r) noexcept;

/// Parse dotted-quad "a.b.c.d" into a host-order u32.
[[nodiscard]] std::optional<uint32_t> parse_ipv4(std::string_view s);

/// Render a host-order u32 as dotted-quad.
[[nodiscard]] std::string format_ipv4(uint32_t addr);

/// Number of leading bits shared by the two values (0..32).
[[nodiscard]] int common_prefix_bits(uint32_t a, uint32_t b) noexcept;

}  // namespace nuevomatch
