#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nuevomatch {

ZipfSampler::ZipfSampler(size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be positive"};
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding at the tail
}

size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::top_share(size_t top) const {
  if (top == 0) return 0.0;
  if (top >= cdf_.size()) return 1.0;
  return cdf_[top - 1];
}

double zipf_alpha_for_top3_share(double share) {
  // Figure 12 legend of the paper.
  if (share <= 0.80) return 1.05;
  if (share <= 0.85) return 1.10;
  if (share <= 0.90) return 1.15;
  return 1.25;
}

}  // namespace nuevomatch
