#include "common/failpoint.hpp"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/rng.hpp"

namespace nuevomatch::failpoint {

namespace {

struct Point {
  Trigger trigger;
  uint64_t evaluations = 0;
  uint64_t fires = 0;
  Rng rng{1};  // kProb stream; reseeded at arm time
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Point> points;
};

// Function-local statics: usable from any static-initialization context and
// never destroyed before the last should_fire (leaked at exit by design —
// failpoints may be evaluated from detached/worker threads during teardown).
Registry& registry() {
  static auto* r = new Registry;
  return *r;
}

/// The hot-path gate: number of armed points, updated under the registry
/// mutex, read with one relaxed load by every should_fire.
std::atomic<uint64_t>& armed_count() {
  static std::atomic<uint64_t> n{0};
  return n;
}

/// NM_FAILPOINTS is parsed once, before the first gate check, so env-armed
/// points are active for any evaluation in the process.
void arm_from_env_once() {
  static const bool once = [] {
    if (const char* env = std::getenv("NM_FAILPOINTS"); env != nullptr)
      arm_from_spec(env);
    return true;
  }();
  (void)once;
}

[[nodiscard]] bool decide(Point& p) {
  ++p.evaluations;
  bool fire = false;
  switch (p.trigger.kind) {
    case Trigger::Kind::kAlways: fire = true; break;
    case Trigger::Kind::kFirstN: fire = p.evaluations <= p.trigger.n; break;
    case Trigger::Kind::kNth: fire = p.evaluations == p.trigger.n; break;
    case Trigger::Kind::kProb: fire = p.rng.chance(p.trigger.p); break;
  }
  if (fire) ++p.fires;
  return fire;
}

[[nodiscard]] std::optional<Trigger> parse_trigger(std::string_view spec) {
  const auto num = [](std::string_view s, uint64_t& out) {
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && ptr == s.data() + s.size();
  };
  if (spec == "always") return Trigger::always();
  if (spec.rfind("first:", 0) == 0) {
    uint64_t n = 0;
    if (!num(spec.substr(6), n)) return std::nullopt;
    return Trigger::first(n);
  }
  if (spec.rfind("nth:", 0) == 0) {
    uint64_t n = 0;
    if (!num(spec.substr(4), n)) return std::nullopt;
    return Trigger::nth(n);
  }
  if (spec.rfind("prob:", 0) == 0) {
    std::string_view rest = spec.substr(5);
    uint64_t seed = 1;
    if (const size_t colon = rest.find(':'); colon != std::string_view::npos) {
      if (!num(rest.substr(colon + 1), seed)) return std::nullopt;
      rest = rest.substr(0, colon);
    }
    char* end = nullptr;
    const std::string p_str{rest};
    const double p = std::strtod(p_str.c_str(), &end);
    if (end != p_str.c_str() + p_str.size() || p < 0.0 || p > 1.0)
      return std::nullopt;
    return Trigger::prob(p, seed);
  }
  return std::nullopt;
}

}  // namespace

bool arm(std::string_view name, Trigger trigger) {
  if (name.empty()) return false;
  Registry& r = registry();
  std::lock_guard lk{r.mu};
  Point& p = r.points[std::string{name}];  // insert or reset
  p.trigger = trigger;
  p.evaluations = 0;
  p.fires = 0;
  p.rng.reseed(trigger.seed);
  armed_count().store(r.points.size(), std::memory_order_relaxed);
  return true;
}

size_t arm_from_spec(std::string_view spec) {
  size_t armed = 0;
  size_t at = 0;
  while (at < spec.size()) {
    size_t end = spec.find_first_of(",;", at);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(at, end - at);
    at = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    const std::string_view name = entry.substr(0, eq);
    const std::string_view body =
        eq == std::string_view::npos ? std::string_view{"always"}
                                     : entry.substr(eq + 1);
    if (name.empty()) {
      std::fprintf(stderr, "failpoint: ignoring malformed spec entry '%.*s'\n",
                   static_cast<int>(entry.size()), entry.data());
      continue;
    }
    if (body == "off") {
      disarm(name);
      continue;
    }
    const auto trig = parse_trigger(body);
    if (!trig.has_value()) {
      std::fprintf(stderr, "failpoint: ignoring malformed spec entry '%.*s'\n",
                   static_cast<int>(entry.size()), entry.data());
      continue;
    }
    if (arm(name, *trig)) ++armed;
  }
  return armed;
}

void disarm(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lk{r.mu};
  r.points.erase(std::string{name});
  armed_count().store(r.points.size(), std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard lk{r.mu};
  r.points.clear();
  armed_count().store(0, std::memory_order_relaxed);
}

bool should_fire(std::string_view name) noexcept {
  arm_from_env_once();
  if (armed_count().load(std::memory_order_relaxed) == 0) return false;
  Registry& r = registry();
  std::lock_guard lk{r.mu};
  // Transparent lookup would avoid the temporary string; armed evaluations
  // are off the steady-state path, so clarity wins.
  const auto it = r.points.find(std::string{name});
  if (it == r.points.end()) return false;
  return decide(it->second);
}

uint64_t evaluations(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lk{r.mu};
  const auto it = r.points.find(std::string{name});
  return it == r.points.end() ? 0 : it->second.evaluations;
}

uint64_t fires(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lk{r.mu};
  const auto it = r.points.find(std::string{name});
  return it == r.points.end() ? 0 : it->second.fires;
}

std::vector<std::string> armed_points() {
  Registry& r = registry();
  std::lock_guard lk{r.mu};
  std::vector<std::string> out;
  out.reserve(r.points.size());
  for (const auto& [name, _] : r.points) out.push_back(name);
  return out;
}

bool any_armed() noexcept {
  arm_from_env_once();
  return armed_count().load(std::memory_order_relaxed) != 0;
}

}  // namespace nuevomatch::failpoint
