// Unified telemetry layer (DESIGN.md "Telemetry"): a process-wide metric
// registry whose hot-path cost is ONE relaxed atomic increment.
//
//   * Counter — monotone u64, sharded over kShards cache-line-aligned slots;
//     each thread owns (modulo kShards) a private slot, so concurrent
//     increments never contend on a cache line. Aggregation happens only at
//     snapshot time (sum of relaxed loads — counters are monotone, so a
//     snapshot racing increments reads a value that WAS true at some point
//     between its first and last slot load; see the ordering argument in
//     DESIGN.md).
//   * Gauge — a single atomic i64 (set from control-plane paths: depths,
//     flags, sizes). Not sharded: gauges are last-write-wins by nature.
//   * Histogram — log2-bucketed latency distribution, HDR-style: 64 fixed
//     buckets on a nanosecond scale (bucket b >= 1 holds [2^(b-1), 2^b-1];
//     bucket 0 holds {0}; the last bucket absorbs everything above 2^62 ns).
//     Sharded like counters; snapshots are mergeable by bucket addition and
//     extract p50/p99/p99.9 with the same rank convention as
//     nuevomatch::percentile (linear interpolation at rank (p/100)*(N-1),
//     with samples inside a bucket assumed evenly spread over its span).
//
// Two switches keep instrumented hot paths within the ~1-2% budget:
//   * compile-time: build with -DNM_METRICS=0 and every NM_METRICS_ENABLED
//     guard collapses to `if (false)` — the instrumentation (including its
//     registry lookups and clock reads) is dead code the optimizer strips;
//   * runtime: set_metrics_enabled(false) leaves exactly one relaxed bool
//     load per instrumentation site (bench_pipeline's telemetry row measures
//     the on/off delta through this gate in one binary).
// Latency sites additionally SAMPLE (NM_SAMPLE_EVERY) so steady_clock reads
// are paid on 1-in-N events, not per packet.
//
// The registry is deliberately dependency-free (no pipeline/ or nuevomatch/
// types): the join with the health surfaces (EngineHealth, RuntimeHealth,
// PipelineHealth, FlowCache::Stats) lives in pipeline/telemetry.hpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef NM_METRICS
#define NM_METRICS 1
#endif

namespace nuevomatch::telemetry {

/// Runtime master gate. Default on; bench_pipeline flips it to price the
/// instrumentation. One relaxed load — never a fence.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// steady_clock in nanoseconds (the one clock every latency metric uses).
[[nodiscard]] inline uint64_t now_ns() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Small dense thread id used to pick metric shards: the Nth thread that
/// ever touches a sharded metric gets slot N (mod the shard count). Two
/// threads aliasing one slot is a contention detail, never a correctness
/// one — slots are atomics.
[[nodiscard]] inline size_t thread_slot() noexcept {
  static std::atomic<size_t> next{0};
  static thread_local size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

#if NM_METRICS
#define NM_METRICS_ENABLED (::nuevomatch::telemetry::metrics_enabled())
/// Per-call-site 1-in-N sampling gate (thread-local counter; no atomics).
#define NM_SAMPLE_EVERY(n)                                             \
  ([]() noexcept {                                                     \
    static thread_local uint32_t nm_sample_c_ = 0;                     \
    return ++nm_sample_c_ >= (n) ? (nm_sample_c_ = 0, true) : false;   \
  }())
#else
#define NM_METRICS_ENABLED false
#define NM_SAMPLE_EVERY(n) false
#endif

/// One cache line per shard slot: a thread's increments dirty only its own
/// line (the whole point of sharding).
struct alignas(64) MetricSlot {
  std::atomic<uint64_t> v{0};
};

class Counter {
 public:
  static constexpr size_t kShards = 64;

  void add(uint64_t n = 1) noexcept {
    slots_[thread_slot() % kShards].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Sum across slots (relaxed loads; monotone, see header comment).
  [[nodiscard]] uint64_t value() const noexcept {
    uint64_t sum = 0;
    for (const MetricSlot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<MetricSlot, kShards> slots_{};
};

class Gauge {
 public:
  void set(int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> v_{0};
};

/// Aggregated histogram state: the mergeable, percentile-bearing snapshot
/// form (also the serial oracle the tests compare the sharded recorder to).
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 64;

  std::array<uint64_t, kBuckets> count{};
  uint64_t sum_ns = 0;

  /// Bucket index of a recorded value: 0 for 0, else bit_width(v) clamped
  /// to the last bucket — so bucket b >= 1 spans [2^(b-1), 2^b - 1].
  [[nodiscard]] static size_t bucket_of(uint64_t ns) noexcept {
    if (ns == 0) return 0;
    const auto b = static_cast<size_t>(std::bit_width(ns));
    return b >= kBuckets ? kBuckets - 1 : b;
  }
  /// Inclusive value span of bucket b ([lo, hi]; bucket 0 is {0}).
  [[nodiscard]] static uint64_t bucket_lo(size_t b) noexcept {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  [[nodiscard]] static uint64_t bucket_hi(size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= kBuckets - 1) return ~uint64_t{0};
    return (uint64_t{1} << b) - 1;
  }

  [[nodiscard]] uint64_t total() const noexcept {
    uint64_t n = 0;
    for (const uint64_t c : count) n += c;
    return n;
  }
  void merge(const HistogramSnapshot& o) noexcept {
    for (size_t b = 0; b < kBuckets; ++b) count[b] += o.count[b];
    sum_ns += o.sum_ns;
  }

  /// Percentile with the nuevomatch::percentile rank convention: linear
  /// interpolation between the floor/ceil sorted samples at rank
  /// (p/100)*(N-1), where the k samples of a bucket are assumed evenly
  /// spread over its span (sample j of k sits at lo + span*(j+0.5)/k).
  /// Exact to the recorded values up to bucket granularity (<= 2x).
  [[nodiscard]] double percentile(double p) const noexcept;
  [[nodiscard]] double p50() const noexcept { return percentile(50.0); }
  [[nodiscard]] double p99() const noexcept { return percentile(99.0); }
  [[nodiscard]] double p999() const noexcept { return percentile(99.9); }

 private:
  /// Value of the i-th (0-based) sorted sample under the spread assumption.
  [[nodiscard]] double value_at(uint64_t i) const noexcept;
};

class Histogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;
  /// Fewer shards than Counter: a histogram slot is 8 cache lines already,
  /// and latency sites are sampled — contention is bounded by sampling.
  static constexpr size_t kShards = 16;

  void record(uint64_t ns) noexcept {
    Shard& s = shards_[thread_slot() % kShards];
    s.bucket[HistogramSnapshot::bucket_of(ns)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    for (const Shard& s : shards_) {
      for (size_t b = 0; b < kBuckets; ++b)
        out.count[b] += s.bucket[b].load(std::memory_order_relaxed);
      out.sum_ns += s.sum.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> bucket{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_{};
};

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

/// One aggregated metric in a snapshot.
struct MetricValue {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  HistogramSnapshot hist;
};

/// Point-in-time aggregation of a whole registry, plus the dependency-free
/// exporters (Prometheus text exposition v0.0.4 and JSON).
struct RegistrySnapshot {
  std::vector<MetricValue> metrics;  ///< sorted by name

  [[nodiscard]] const MetricValue* find(std::string_view name) const noexcept;
  [[nodiscard]] std::string to_prometheus() const;
  [[nodiscard]] std::string to_json() const;
};

// Exposition building blocks, shared with the health-surface exporters in
// pipeline/telemetry.cpp (which render EngineHealth & co. as series without
// duplicating the formatting rules here).
void prometheus_counter(std::string& out, std::string_view name,
                        std::string_view help, uint64_t value,
                        std::string_view labels = {});
void prometheus_gauge(std::string& out, std::string_view name,
                      std::string_view help, double value,
                      std::string_view labels = {});
void prometheus_histogram(std::string& out, std::string_view name,
                          std::string_view help, const HistogramSnapshot& h);
void json_escape(std::string& out, std::string_view s);

/// Name -> metric registry. Metric objects are created on first use and
/// never destroyed before the registry (instrumentation sites hold plain
/// references via function-local statics — one map lookup per site per
/// process, then one relaxed increment per event).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Throws std::runtime_error if `name` is already
  /// registered as a different metric type.
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::string_view help = {});

  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// The process-wide registry every built-in instrumentation site uses.
  [[nodiscard]] static Registry& global();

 private:
  struct Entry {
    MetricType type;
    std::string help;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };
  Entry& entry(std::string_view name, std::string_view help, MetricType t);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;  // guarded by mu_
};

[[nodiscard]] inline Registry& registry() { return Registry::global(); }

}  // namespace nuevomatch::telemetry
