// Core packet/rule model shared by every classifier in the repository.
//
// A rule matches a packet when every field value lies inside the rule's
// per-field inclusive range (the paper's hyper-cube view, Section 2.1).
// Priorities follow the paper's convention (Figure 2): a numerically
// *smaller* priority value wins. Ties are broken by smaller rule id so that
// every classifier is a deterministic function of the rule-set.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace nuevomatch {

/// Number of fields in the classic 5-tuple used throughout the evaluation.
inline constexpr int kNumFields = 5;

/// Canonical field order (matches ClassBench filter format).
enum Field : int {
  kSrcIp = 0,
  kDstIp = 1,
  kSrcPort = 2,
  kDstPort = 3,
  kProto = 4,
};

/// Inclusive upper bound of each field's domain.
inline constexpr std::array<uint64_t, kNumFields> kFieldDomain = {
    0xFFFF'FFFFull,  // src ip
    0xFFFF'FFFFull,  // dst ip
    0xFFFFull,       // src port
    0xFFFFull,       // dst port
    0xFFull,         // protocol
};

/// Inclusive integer range [lo, hi] over a single field.
struct Range {
  uint32_t lo = 0;
  uint32_t hi = 0;

  [[nodiscard]] constexpr bool contains(uint32_t v) const noexcept {
    return lo <= v && v <= hi;
  }
  [[nodiscard]] constexpr bool overlaps(const Range& o) const noexcept {
    return lo <= o.hi && o.lo <= hi;
  }
  /// Number of integer points covered (fits in u64 even for [0, 2^32-1]).
  [[nodiscard]] constexpr uint64_t span() const noexcept {
    return static_cast<uint64_t>(hi) - lo + 1;
  }
  [[nodiscard]] constexpr bool is_exact() const noexcept { return lo == hi; }
  friend constexpr bool operator==(const Range&, const Range&) = default;
};

/// Wildcard range for a given field.
[[nodiscard]] constexpr Range full_range(int field) noexcept {
  return Range{0, static_cast<uint32_t>(kFieldDomain[static_cast<size_t>(field)])};
}

/// A packet header projected onto the classification fields.
struct Packet {
  std::array<uint32_t, kNumFields> field{};

  [[nodiscard]] constexpr uint32_t operator[](int f) const noexcept {
    return field[static_cast<size_t>(f)];
  }
};

/// A classification rule: one range per field plus priority and action.
struct Rule {
  std::array<Range, kNumFields> field{};
  int32_t priority = 0;  ///< smaller value = higher priority
  uint32_t id = 0;       ///< dense id, also the index into the rule array
  int32_t action = 0;    ///< opaque action token

  [[nodiscard]] bool matches(const Packet& p) const noexcept {
    for (int f = 0; f < kNumFields; ++f) {
      if (!field[static_cast<size_t>(f)].contains(p[f])) return false;
    }
    return true;
  }
  [[nodiscard]] bool is_wildcard(int f) const noexcept {
    return field[static_cast<size_t>(f)] == full_range(f);
  }
};

/// Result of a classification lookup.
struct MatchResult {
  static constexpr int32_t kNoMatch = -1;
  int32_t rule_id = kNoMatch;
  int32_t priority = std::numeric_limits<int32_t>::max();

  [[nodiscard]] constexpr bool hit() const noexcept { return rule_id != kNoMatch; }

  /// True when *this beats `o` under (priority, id) lexicographic order.
  [[nodiscard]] constexpr bool beats(const MatchResult& o) const noexcept {
    if (!hit()) return false;
    if (!o.hit()) return true;
    if (priority != o.priority) return priority < o.priority;
    return rule_id < o.rule_id;
  }
};

/// A rule-set: rules with dense ids [0, n) in priority order by convention.
using RuleSet = std::vector<Rule>;

/// Re-number ids/priorities to the dense convention (id = index,
/// priority = index) preserving the current order.
void canonicalize(RuleSet& rules);

/// Sanity-check a rule-set: ranges within field domains, dense unique ids.
/// Returns an empty string when valid, otherwise a description of the issue.
[[nodiscard]] std::string validate_ruleset(std::span<const Rule> rules);

/// Human-readable rendering (for logging and golden tests).
[[nodiscard]] std::string to_string(const Range& r);
[[nodiscard]] std::string to_string(const Rule& r);
[[nodiscard]] std::string to_string(const Packet& p);

}  // namespace nuevomatch
