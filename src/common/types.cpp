#include "common/types.hpp"

#include <sstream>

namespace nuevomatch {

void canonicalize(RuleSet& rules) {
  for (size_t i = 0; i < rules.size(); ++i) {
    rules[i].id = static_cast<uint32_t>(i);
    rules[i].priority = static_cast<int32_t>(i);
  }
}

std::string validate_ruleset(std::span<const Rule> rules) {
  std::vector<bool> seen(rules.size(), false);
  for (const Rule& r : rules) {
    if (r.id >= rules.size()) return "rule id out of dense range";
    if (seen[r.id]) return "duplicate rule id";
    seen[r.id] = true;
    for (int f = 0; f < kNumFields; ++f) {
      const Range& rg = r.field[static_cast<size_t>(f)];
      if (rg.lo > rg.hi) return "inverted range";
      if (rg.hi > kFieldDomain[static_cast<size_t>(f)]) return "range exceeds field domain";
    }
  }
  return {};
}

std::string to_string(const Range& r) {
  std::ostringstream os;
  os << '[' << r.lo << ',' << r.hi << ']';
  return os.str();
}

std::string to_string(const Rule& r) {
  std::ostringstream os;
  os << "rule{id=" << r.id << " prio=" << r.priority;
  for (int f = 0; f < kNumFields; ++f) os << ' ' << to_string(r.field[static_cast<size_t>(f)]);
  os << '}';
  return os.str();
}

std::string to_string(const Packet& p) {
  std::ostringstream os;
  os << "pkt{";
  for (int f = 0; f < kNumFields; ++f) {
    if (f) os << ' ';
    os << p[f];
  }
  os << '}';
  return os.str();
}

}  // namespace nuevomatch
