#include "common/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace nuevomatch::telemetry {

namespace {

std::atomic<bool> g_enabled{true};

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

void append_double(std::string& out, double v) {
  char buf[64];
  // %.17g round-trips doubles but litters exposition with noise digits;
  // metric values are counts and ns, %g at default precision is exact for
  // anything a scrape cares about.
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

void append_u64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HistogramSnapshot percentiles
// ---------------------------------------------------------------------------

double HistogramSnapshot::value_at(uint64_t i) const noexcept {
  uint64_t before = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    const uint64_t k = count[b];
    if (k == 0) continue;
    if (i < before + k) {
      const uint64_t j = i - before;
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      // Sample j of k sits at quantile (j + 0.5) / k of the bucket span.
      return lo + (hi - lo) * ((static_cast<double>(j) + 0.5) /
                               static_cast<double>(k));
    }
    before += k;
  }
  // i past the last sample: clamp to the top of the highest occupied bucket.
  for (size_t b = kBuckets; b-- > 0;)
    if (count[b] != 0) return static_cast<double>(bucket_hi(b));
  return 0.0;
}

double HistogramSnapshot::percentile(double p) const noexcept {
  const uint64_t n = total();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Same rank convention as nuevomatch::percentile (common/stats.cpp):
  // fractional rank over N-1 intervals, linear blend of the two neighbours.
  const double rank = (p / 100.0) * static_cast<double>(n - 1);
  const auto lo = static_cast<uint64_t>(rank);
  const uint64_t hi = std::min<uint64_t>(lo + 1, n - 1);
  const double frac = rank - static_cast<double>(lo);
  const double vlo = value_at(lo);
  if (frac == 0.0 || hi == lo) return vlo;
  return vlo + (value_at(hi) - vlo) * frac;
}

// ---------------------------------------------------------------------------
// Exposition helpers
// ---------------------------------------------------------------------------

void prometheus_counter(std::string& out, std::string_view name,
                        std::string_view help, uint64_t value,
                        std::string_view labels) {
  if (!help.empty()) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += '\n';
  }
  out += "# TYPE ";
  out += name;
  out += " counter\n";
  out += name;
  out += labels;
  out += ' ';
  append_u64(out, value);
  out += '\n';
}

void prometheus_gauge(std::string& out, std::string_view name,
                      std::string_view help, double value,
                      std::string_view labels) {
  if (!help.empty()) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += '\n';
  }
  out += "# TYPE ";
  out += name;
  out += " gauge\n";
  out += name;
  out += labels;
  out += ' ';
  append_double(out, value);
  out += '\n';
}

void prometheus_histogram(std::string& out, std::string_view name,
                          std::string_view help, const HistogramSnapshot& h) {
  if (!help.empty()) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += '\n';
  }
  out += "# TYPE ";
  out += name;
  out += " histogram\n";
  // Cumulative `le` buckets. Only emit occupied boundaries (plus +Inf) to
  // keep 64-bucket histograms from dominating the exposition.
  uint64_t cum = 0;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    if (h.count[b] == 0) continue;
    cum += h.count[b];
    out += name;
    out += "_bucket{le=\"";
    if (b >= HistogramSnapshot::kBuckets - 1) {
      out += "+Inf";
    } else {
      append_u64(out, HistogramSnapshot::bucket_hi(b));
    }
    out += "\"} ";
    append_u64(out, cum);
    out += '\n';
  }
  out += name;
  out += "_bucket{le=\"+Inf\"} ";
  append_u64(out, cum);
  out += '\n';
  out += name;
  out += "_sum ";
  append_u64(out, h.sum_ns);
  out += '\n';
  out += name;
  out += "_count ";
  append_u64(out, cum);
  out += '\n';
}

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// ---------------------------------------------------------------------------
// RegistrySnapshot
// ---------------------------------------------------------------------------

const MetricValue* RegistrySnapshot::find(std::string_view name) const noexcept {
  for (const MetricValue& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

std::string RegistrySnapshot::to_prometheus() const {
  std::string out;
  out.reserve(metrics.size() * 96);
  for (const MetricValue& m : metrics) {
    switch (m.type) {
      case MetricType::kCounter:
        prometheus_counter(out, m.name, m.help, m.counter);
        break;
      case MetricType::kGauge:
        prometheus_gauge(out, m.name, m.help, static_cast<double>(m.gauge));
        break;
      case MetricType::kHistogram:
        prometheus_histogram(out, m.name, m.help, m.hist);
        break;
    }
  }
  return out;
}

std::string RegistrySnapshot::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, m.name);
    out += "\":";
    switch (m.type) {
      case MetricType::kCounter:
        append_u64(out, m.counter);
        break;
      case MetricType::kGauge:
        append_u64(out, static_cast<uint64_t>(std::max<int64_t>(m.gauge, 0)));
        break;
      case MetricType::kHistogram: {
        out += "{\"count\":";
        append_u64(out, m.hist.total());
        out += ",\"sum_ns\":";
        append_u64(out, m.hist.sum_ns);
        out += ",\"p50_ns\":";
        append_double(out, m.hist.p50());
        out += ",\"p99_ns\":";
        append_double(out, m.hist.p99());
        out += ",\"p999_ns\":";
        append_double(out, m.hist.p999());
        out += '}';
        break;
      }
    }
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Entry& Registry::entry(std::string_view name, std::string_view help,
                                 MetricType t) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.type != t)
      throw std::runtime_error("metric '" + std::string(name) +
                               "' already registered as " +
                               type_name(it->second.type));
    if (it->second.help.empty() && !help.empty())
      it->second.help = std::string(help);
    return it->second;
  }
  Entry e;
  e.type = t;
  e.help = std::string(help);
  switch (t) {
    case MetricType::kCounter: e.c = std::make_unique<Counter>(); break;
    case MetricType::kGauge: e.g = std::make_unique<Gauge>(); break;
    case MetricType::kHistogram: e.h = std::make_unique<Histogram>(); break;
  }
  return metrics_.emplace(std::string(name), std::move(e)).first->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  return *entry(name, help, MetricType::kCounter).c;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  return *entry(name, help, MetricType::kGauge).g;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help) {
  return *entry(name, help, MetricType::kHistogram).h;
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot out;
  std::lock_guard<std::mutex> lk(mu_);
  out.metrics.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricValue v;
    v.name = name;
    v.help = e.help;
    v.type = e.type;
    switch (e.type) {
      case MetricType::kCounter: v.counter = e.c->value(); break;
      case MetricType::kGauge: v.gauge = e.g->value(); break;
      case MetricType::kHistogram: v.hist = e.h->snapshot(); break;
    }
    out.metrics.push_back(std::move(v));
  }
  return out;  // std::map iteration order == sorted by name
}

Registry& Registry::global() {
  // Leaked on purpose: instrumentation sites cache references in
  // function-local statics and may fire during static destruction.
  static Registry* g = new Registry();
  return *g;
}

}  // namespace nuevomatch::telemetry
