// Deterministic fault-injection framework (the robustness PR's foundation):
// named failpoints compiled permanently into production code paths —
// retrain training, epoch chunk allocation, journal replay, serializer
// loads, pcap frame parsing — that tests and operators can arm to make a
// specific failure happen at a specific time, instead of hoping a flaky
// environment reproduces it.
//
// A call site asks one question:
//
//   if (failpoint::should_fire("online.retrain"))
//     throw std::runtime_error("injected: online.retrain");
//
// and the framework answers according to the point's armed trigger:
//
//   * fire-always        — every evaluation fires;
//   * fire-first:N       — the first N evaluations fire, later ones pass
//                          (the "fail K consecutive retrains" shape);
//   * fire-on-nth:N      — exactly the Nth evaluation fires (1-based);
//   * fire-prob:P[:seed] — each evaluation fires with probability P from a
//                          seeded xoshiro stream, so a "random" failure
//                          schedule replays bit-for-bit.
//
// Arming is programmatic (failpoint::arm / ScopedFailpoint for tests) or
// environmental: NM_FAILPOINTS="online.retrain=first:3,serialize.load=nth:2"
// arms points before main() logic runs, so any binary in the tree — tests,
// benches, the pipeline router — can be driven through its failure paths
// without a recompile.
//
// Cost model: the data path pays ONE relaxed atomic load of a global
// armed-point count when nothing is armed (branch-predicted false; no lock,
// no string hashing, no registry lookup). Only once at least one point is
// armed anywhere does should_fire take the registry mutex to match the
// name. Disarmed is therefore safe to leave compiled into per-packet code.
//
// Thread model: should_fire/arm/disarm are safe from any thread (the churn
// harness arms points while writer/reader/retrain threads race); trigger
// state (hit counters, the probability stream) advances under the registry
// mutex, so fire-first:N fires on exactly N evaluations no matter how many
// threads evaluate concurrently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nuevomatch::failpoint {

/// What an armed failpoint does on each evaluation.
struct Trigger {
  enum class Kind : uint8_t {
    kAlways,   ///< every evaluation fires
    kFirstN,   ///< evaluations 1..n fire, later ones pass
    kNth,      ///< exactly evaluation n fires (1-based)
    kProb,     ///< each evaluation fires with probability p (seeded stream)
  };
  Kind kind = Kind::kAlways;
  uint64_t n = 0;       ///< kFirstN / kNth parameter
  double p = 0.0;       ///< kProb parameter
  uint64_t seed = 1;    ///< kProb stream seed

  static Trigger always() { return Trigger{}; }
  static Trigger first(uint64_t n) { return Trigger{Kind::kFirstN, n, 0.0, 1}; }
  static Trigger nth(uint64_t n) { return Trigger{Kind::kNth, n, 0.0, 1}; }
  static Trigger prob(double p, uint64_t seed = 1) {
    return Trigger{Kind::kProb, 0, p, seed};
  }
};

/// Arm `name` with `trigger` (replacing any previous arming and resetting
/// its counters). Returns false (and arms nothing) for an empty name.
bool arm(std::string_view name, Trigger trigger);

/// Parse and arm a "name=spec" list: specs are `always`, `first:N`, `nth:N`,
/// `prob:P[:SEED]`, `off`, separated by ',' or ';'. Returns the number of
/// points armed; malformed entries are skipped (reported once to stderr —
/// a misspelled env var must not silently disable a fault drill).
size_t arm_from_spec(std::string_view spec);

/// Disarm one point / all points. Counters for disarmed points are dropped.
void disarm(std::string_view name);
void disarm_all();

/// The hot-path question. When `name` is not armed this is one relaxed
/// atomic load; when armed, the trigger decides and both counters advance.
[[nodiscard]] bool should_fire(std::string_view name) noexcept;

/// Evaluations / fires since arming (0 / 0 when the point is not armed).
[[nodiscard]] uint64_t evaluations(std::string_view name);
[[nodiscard]] uint64_t fires(std::string_view name);

/// Names of every currently armed point (operator/introspection surface).
[[nodiscard]] std::vector<std::string> armed_points();

/// True once any point is armed (the cheap global gate, exposed for tests).
[[nodiscard]] bool any_armed() noexcept;

/// RAII arming for tests: arms on construction, disarms on destruction, so
/// a failing ASSERT can never leak an armed point into the next test.
class Scoped {
 public:
  Scoped(std::string_view name, Trigger trigger) : name_(name) {
    arm(name_, trigger);
  }
  ~Scoped() { disarm(name_); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string name_;
};

/// Canonical failpoint names wired through the tree (one place to grep).
/// Arming any other name is legal — it just has no call site yet.
inline constexpr std::string_view kOnlineRetrain = "online.retrain";
inline constexpr std::string_view kOnlineReplay = "online.replay";
inline constexpr std::string_view kOnlineBuild = "online.build";
inline constexpr std::string_view kEpochGrow = "epoch.grow";
inline constexpr std::string_view kSerializeLoad = "serialize.load";
inline constexpr std::string_view kPcapParse = "pcap.parse";
// Pipeline runtime seams (DESIGN.md "Failure model" — pipeline supervision).
// kPipelineTaskFire is evaluated by the SCHEDULER before every scheduled
// task fire, so an injected crash lands BETWEEN bursts — the lossless fault
// domain the quarantine/rejoin drill relies on. kPipelinePush fires inside
// element forwarding (mid-burst: at most one in-flight burst is lost).
inline constexpr std::string_view kPipelinePush = "pipeline.push";
inline constexpr std::string_view kPipelineCacheInsert = "pipeline.cache.insert";
inline constexpr std::string_view kPipelineTaskFire = "pipeline.task.fire";
inline constexpr std::string_view kPipelineAdopt = "pipeline.replica.adopt";
inline constexpr std::string_view kPipelineRejoin = "pipeline.replica.rejoin";

}  // namespace nuevomatch::failpoint
