#include "common/prefix.hpp"

#include <bit>
#include <charconv>
#include <sstream>

namespace nuevomatch {

Range prefix_to_range(uint32_t addr, int len) noexcept {
  if (len <= 0) return Range{0, 0xFFFF'FFFFu};
  if (len >= 32) return Range{addr, addr};
  const uint32_t mask = ~0u << (32 - len);
  return Range{addr & mask, (addr & mask) | ~mask};
}

std::optional<int> range_to_prefix_len(const Range& r) noexcept {
  const uint64_t n = r.span();
  if (!std::has_single_bit(n)) return std::nullopt;
  const int zero_bits = std::countr_zero(n);
  if (zero_bits > 32) return std::nullopt;
  const int len = 32 - zero_bits;
  // lo must be aligned to the block size. 64-bit shift: len == 0 (the full
  // /0 range) would shift a 32-bit 1 by 32 — UB; 1ull << 32 is fine and
  // yields the full 0xFFFFFFFF alignment mask that /0 requires.
  if ((r.lo & ((1ull << (32 - len)) - 1)) != 0) return std::nullopt;
  return len;
}

int covering_prefix_len(const Range& r) noexcept {
  if (r.lo == r.hi) return 32;
  const int shared = common_prefix_bits(r.lo, r.hi);
  // The /shared block containing lo also contains hi by construction; check
  // whether r occupies the whole block (then the range *is* that prefix) or
  // only part of it (the covering prefix is still /shared).
  return shared;
}

std::optional<uint32_t> parse_ipv4(std::string_view s) {
  uint32_t out = 0;
  const char* p = s.data();
  const char* end = s.data() + s.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [ptr, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255) return std::nullopt;
    out = (out << 8) | octet;
    p = ptr;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return out;
}

std::string format_ipv4(uint32_t addr) {
  std::ostringstream os;
  os << ((addr >> 24) & 0xFF) << '.' << ((addr >> 16) & 0xFF) << '.'
     << ((addr >> 8) & 0xFF) << '.' << (addr & 0xFF);
  return os.str();
}

int common_prefix_bits(uint32_t a, uint32_t b) noexcept {
  const uint32_t diff = a ^ b;
  return diff == 0 ? 32 : std::countl_zero(diff);
}

}  // namespace nuevomatch
