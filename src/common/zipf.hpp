// Zipf(alpha) sampler over [0, n) built on a precomputed CDF.
//
// Used to generate skewed packet traces (paper Section 5.1.1 / Figure 12):
// the paper parameterizes skew by the share of traffic accounted for by the
// 3% most frequent flows and reports the matching alpha (80%/1.05, 85%/1.10,
// 90%/1.15, 95%/1.25).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace nuevomatch {

class ZipfSampler {
 public:
  /// Frequency of item k is proportional to 1 / (k+1)^alpha.
  ZipfSampler(size_t n, double alpha);

  /// Draw an item index in [0, n); item 0 is the most frequent.
  [[nodiscard]] size_t sample(Rng& rng) const;

  [[nodiscard]] size_t size() const noexcept { return cdf_.size(); }

  /// Fraction of probability mass held by the `top` most frequent items.
  [[nodiscard]] double top_share(size_t top) const;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(item <= k)
};

/// Paper's skew notation: alpha such that the top 3% of flows draw `share`
/// of the traffic (values straight from Figure 12's axis labels).
[[nodiscard]] double zipf_alpha_for_top3_share(double share);

}  // namespace nuevomatch
